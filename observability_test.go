package sentry

import (
	"bytes"
	"errors"
	"testing"

	"sentry/internal/core"
	"sentry/internal/mem"
)

func TestOpenUnknownPlatform(t *testing.T) {
	t.Parallel()
	_, err := Open(Platform(99), "4321")
	if !errors.Is(err, ErrUnsupportedPlatform) {
		t.Fatalf("want ErrUnsupportedPlatform, got %v", err)
	}
}

func TestOpenOptions(t *testing.T) {
	t.Parallel()
	tr := NewTracer(0)
	dev, err := Open(Tegra3, "4321", WithSeed(7), WithTracer(tr), WithConfig(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if dev.Trace() != tr {
		t.Fatal("Device.Trace should return the installed tracer")
	}
	if dev.Metrics() == nil {
		t.Fatal("Device.Metrics should be non-nil")
	}
	if dev.SoC.RNG == nil || dev.Sentry == nil {
		t.Fatal("device not fully booted")
	}
}

func TestOpenWithoutTracer(t *testing.T) {
	t.Parallel()
	dev, err := Open(Nexus4, "4321")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Trace() != nil {
		t.Fatal("tracing should be off by default")
	}
	if dev.Metrics() == nil {
		t.Fatal("metrics registry should exist even without tracing (Stats reads it)")
	}
	if _, err := dev.Launch(Contacts(), true); err != nil {
		t.Fatal(err)
	}
	dev.Lock()
	if dev.Stats().LockEncryptedBytes == 0 {
		t.Fatal("Stats must keep working without a tracer")
	}
}

func TestMetricsSinkOptionImpliesTracer(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	dev, err := Open(Tegra3, "4321", WithMetricsSink(NewJSONLSink(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	if dev.Trace() == nil {
		t.Fatal("WithMetricsSink alone should create a tracer to feed the sink")
	}
	dev.Lock()
	events, err := ReadTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("sink received no events")
	}
}

func TestTypedErrors(t *testing.T) {
	t.Parallel()
	dev, err := Open(Tegra3, "4321")
	if err != nil {
		t.Fatal(err)
	}
	dev.Lock()
	if err := dev.Unlock("0000"); !errors.Is(err, ErrBadPIN) {
		t.Fatalf("want ErrBadPIN, got %v", err)
	}
	for i := 0; i < 10; i++ {
		_ = dev.Unlock("0000")
	}
	if err := dev.Unlock("4321"); !errors.Is(err, ErrLocked) {
		t.Fatalf("deep-locked unlock: want ErrLocked, got %v", err)
	}
}

func TestBackgroundUnsupportedOnNexus(t *testing.T) {
	t.Parallel()
	dev, err := Open(Nexus4, "4321")
	if err != nil {
		t.Fatal(err)
	}
	app, err := dev.LaunchBackground(Vlock())
	if err != nil {
		t.Fatal(err)
	}
	dev.Lock()
	if err := dev.BeginBackground(app, 128); !errors.Is(err, ErrUnsupportedPlatform) {
		t.Fatalf("want ErrUnsupportedPlatform, got %v", err)
	}
}

func TestProbesUnsupportedOnNexus(t *testing.T) {
	t.Parallel()
	dev, err := Open(Nexus4, "4321")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.AttachBusMonitor(); !errors.Is(err, ErrUnsupportedPlatform) {
		t.Fatalf("bus monitor on PoP DRAM: want ErrUnsupportedPlatform, got %v", err)
	}
	if _, err := dev.MountDMAScrape(); !errors.Is(err, ErrUnsupportedPlatform) {
		t.Fatalf("DMA scrape without open port: want ErrUnsupportedPlatform, got %v", err)
	}
}

// TestLockColdBootUnlockEventSequence drives the paper's headline scenario
// and checks the trace tells the story in order: key derivation at boot,
// the lock transition with its page seals, the attack probe, and the
// unlock transition with eager unseals after it.
func TestLockColdBootUnlockEventSequence(t *testing.T) {
	t.Parallel()
	tr := NewTracer(0)
	sink := NewMemorySink(TraceMask(
		TraceStateChange, TracePageSeal, TracePageUnseal,
		TraceKeyDerive, TraceAttackProbe))
	tr.AddSink(sink)
	dev, err := Open(Tegra3, "4321", WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Launch(Contacts(), true); err != nil {
		t.Fatal(err)
	}
	dev.Lock()
	if _, err := dev.MountColdBoot(Reflash); err != nil {
		t.Fatal(err)
	}
	if err := dev.Unlock("4321"); err != nil {
		t.Fatal(err)
	}

	seqOf := func(pred func(TraceEvent) bool, what string) uint64 {
		for _, ev := range sink.Events() {
			if pred(ev) {
				return ev.Seq
			}
		}
		t.Fatalf("event not found in trace: %s", what)
		return 0
	}
	keyDerive := seqOf(func(e TraceEvent) bool {
		return e.Kind == TraceKeyDerive && e.Label == "volatile"
	}, "volatile key derivation")
	locked := seqOf(func(e TraceEvent) bool {
		return e.Kind == TraceStateChange && e.Label == "unlocked->screen-locked"
	}, "lock transition")
	firstSeal := seqOf(func(e TraceEvent) bool {
		return e.Kind == TracePageSeal && e.Label == core.SealLock
	}, "encrypt-on-lock page seal")
	probe := seqOf(func(e TraceEvent) bool {
		return e.Kind == TraceAttackProbe && e.Label == "cold-boot:device-reflash"
	}, "cold-boot probe")
	unlocked := seqOf(func(e TraceEvent) bool {
		return e.Kind == TraceStateChange && e.Label == "screen-locked->unlocked"
	}, "unlock transition")
	firstUnseal := seqOf(func(e TraceEvent) bool {
		return e.Kind == TracePageUnseal
	}, "post-unlock unseal")

	// Encrypt-on-lock runs inside the lock operation, so every seal
	// precedes the ScreenLocked transition: the device is not "locked"
	// until its memory is ciphertext.
	order := []struct {
		name string
		seq  uint64
	}{
		{"key derive", keyDerive},
		{"first page seal", firstSeal},
		{"lock transition", locked},
		{"cold-boot probe", probe},
		{"unlock transition", unlocked},
		{"first page unseal", firstUnseal},
	}
	for i := 1; i < len(order); i++ {
		if order[i-1].seq >= order[i].seq {
			t.Fatalf("%s (seq %d) should precede %s (seq %d)",
				order[i-1].name, order[i-1].seq, order[i].name, order[i].seq)
		}
	}
	for _, ev := range sink.Events() {
		if ev.Kind == TracePageSeal && ev.Label == core.SealLock && ev.Seq > locked {
			t.Fatalf("page sealed (seq %d) after the lock transition (seq %d)", ev.Seq, locked)
		}
	}
}

// TestTraceSumsEqualStats is the consistency contract behind the
// trace-derived bench reports: summing seal/unseal event sizes by label
// reproduces the Stats counters exactly.
func TestTraceSumsEqualStats(t *testing.T) {
	t.Parallel()
	tr := NewTracer(0)
	sink := NewMemorySink(TraceMask(TracePageSeal, TracePageUnseal))
	tr.AddSink(sink)
	dev, err := Open(Tegra3, "4321", WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	app, err := dev.Launch(Contacts(), true)
	if err != nil {
		t.Fatal(err)
	}
	dev.Lock()
	if err := dev.Unlock("4321"); err != nil {
		t.Fatal(err)
	}
	if err := app.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := app.TouchMB(2); err != nil {
		t.Fatal(err)
	}

	byLabel := map[string]uint64{}
	for _, ev := range sink.Events() {
		byLabel[ev.Label] += ev.Size
	}
	st := dev.Stats()
	if got := byLabel[core.SealLock]; got != st.LockEncryptedBytes {
		t.Fatalf("lock seals: trace %d != stats %d", got, st.LockEncryptedBytes)
	}
	if got := byLabel[core.SealEager]; got != st.EagerDecryptedBytes {
		t.Fatalf("eager unseals: trace %d != stats %d", got, st.EagerDecryptedBytes)
	}
	if got := byLabel[core.SealDemand]; got != st.DemandDecryptedBytes {
		t.Fatalf("demand unseals: trace %d != stats %d", got, st.DemandDecryptedBytes)
	}
	if st.DemandDecryptedBytes == 0 {
		t.Fatal("scenario produced no demand decryption; the comparison is vacuous")
	}
	if uint64(mem.PageSize)*uint64(sink.Count(TracePageSeal)) != st.LockEncryptedBytes {
		t.Fatal("every seal event should cover exactly one page")
	}
}

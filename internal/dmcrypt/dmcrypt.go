// Package dmcrypt is the transparent block-level encryption layer of §7
// "Securing Persistent State": every sector is encrypted with AES-CBC
// under a per-sector ESSIV-style IV before it reaches the device, and
// decrypted on the way back. The cipher itself comes from the kernel
// Crypto API, so when Sentry registers AES On SoC at higher priority,
// dm-crypt transparently stops leaking crypto state to DRAM — the paper's
// "any legacy software already designed to use this API automatically
// works with our system".
package dmcrypt

import (
	"encoding/binary"
	"fmt"

	"sentry/internal/aes"
	"sentry/internal/blockdev"
	"sentry/internal/kernel"
)

// DMCrypt layers sector encryption over a block device.
type DMCrypt struct {
	dev    blockdev.Device
	cipher kernel.CipherProvider
	// ivgen derives per-sector IVs (ESSIV: encrypt the sector number under
	// a key derived from the volume key, so IVs are unpredictable without
	// the key and watermarking attacks fail).
	ivgen *aes.Cipher
}

// New builds a dm-crypt target over dev. The data cipher is resolved from
// the crypto API registry (highest priority wins); key seeds the ESSIV
// generator. This mirrors dm-crypt's three Crypto API calls: set key,
// encrypt, decrypt.
func New(dev blockdev.Device, api *kernel.CryptoAPI, key []byte) (*DMCrypt, error) {
	provider, err := api.Best()
	if err != nil {
		return nil, fmt.Errorf("dmcrypt: %w", err)
	}
	return newWith(dev, provider, key)
}

// NewWithProvider builds a dm-crypt target with an explicit cipher
// provider (benchmarks pin the provider rather than racing priorities).
func NewWithProvider(dev blockdev.Device, provider kernel.CipherProvider, key []byte) (*DMCrypt, error) {
	return newWith(dev, provider, key)
}

func newWith(dev blockdev.Device, provider kernel.CipherProvider, key []byte) (*DMCrypt, error) {
	// ESSIV key: the volume key encrypted under itself stands in for the
	// usual hash (stdlib-only build; the salt only needs to be a fixed
	// one-way-ish derivation of the key).
	kc, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	salt := make([]byte, 16)
	kc.Encrypt(salt, key[:16])
	ivc, err := aes.NewCipher(salt)
	if err != nil {
		return nil, err
	}
	return &DMCrypt{dev: dev, cipher: provider, ivgen: ivc}, nil
}

// Refit rebuilds the target over a forked device and cipher provider,
// reusing the ESSIV generator. The generator is pure software keyed only by
// the volume key — it holds no per-world simulation state — so the refit
// target derives the exact IV sequence the original would, which is what
// keeps a forked volume byte-compatible with its parent.
func (d *DMCrypt) Refit(dev blockdev.Device, provider kernel.CipherProvider) *DMCrypt {
	return &DMCrypt{dev: dev, cipher: provider, ivgen: d.ivgen}
}

// CipherName reports which Crypto API provider the target resolved.
func (d *DMCrypt) CipherName() string { return d.cipher.Name() }

// Sectors returns the underlying capacity.
func (d *DMCrypt) Sectors() uint64 { return d.dev.Sectors() }

// essiv derives the IV for sector n.
func (d *DMCrypt) essiv(n uint64) []byte {
	var blk [16]byte
	binary.LittleEndian.PutUint64(blk[:], n)
	iv := make([]byte, 16)
	d.ivgen.Encrypt(iv, blk[:])
	return iv
}

// ReadSector decrypts sector n into dst.
func (d *DMCrypt) ReadSector(n uint64, dst []byte) error {
	if err := d.dev.ReadSector(n, dst); err != nil {
		return err
	}
	return d.cipher.DecryptCBC(dst, dst, d.essiv(n))
}

// WriteSector encrypts src onto sector n.
func (d *DMCrypt) WriteSector(n uint64, src []byte) error {
	ct := make([]byte, blockdev.SectorSize)
	if err := d.cipher.EncryptCBC(ct, src, d.essiv(n)); err != nil {
		return err
	}
	return d.dev.WriteSector(n, ct)
}

var _ blockdev.Device = (*DMCrypt)(nil)

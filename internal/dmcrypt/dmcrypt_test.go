package dmcrypt

import (
	"bytes"
	"testing"

	"sentry/internal/attack"
	"sentry/internal/blockdev"
	"sentry/internal/core"
	"sentry/internal/kernel"
	"sentry/internal/soc"
)

func rig(t *testing.T) (*soc.SoC, *kernel.Kernel, *core.Sentry, *blockdev.RAMDisk) {
	t.Helper()
	s := soc.Tegra3(1)
	k := kernel.New(s, "1234")
	sn, err := core.New(k, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s, k, sn, blockdev.NewRAMDisk(s, 4<<20)
}

func TestDMCryptRoundTrip(t *testing.T) {
	s, k, sn, disk := rig(t)
	sn.RegisterOnSoC()
	key := bytes.Repeat([]byte{7}, 16)
	dm, err := New(disk, k.Crypto, key)
	if err != nil {
		t.Fatal(err)
	}
	if dm.CipherName() != "aes-onsoc" {
		t.Fatalf("resolved %s, want aes-onsoc", dm.CipherName())
	}
	data := bytes.Repeat([]byte("filesystem-block"), blockdev.SectorSize/16)
	if err := dm.WriteSector(3, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.SectorSize)
	if err := dm.ReadSector(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
	_ = s
}

func TestDMCryptDataAtRestIsCiphertext(t *testing.T) {
	_, k, sn, disk := rig(t)
	sn.RegisterOnSoC()
	dm, _ := New(disk, k.Crypto, bytes.Repeat([]byte{7}, 16))
	plaintext := bytes.Repeat([]byte("SECRET-FILE-DATA"), blockdev.SectorSize/16)
	_ = dm.WriteSector(0, plaintext)
	if attack.Contains(disk.Store(), []byte("SECRET-FILE-DATA")) {
		t.Fatal("plaintext reached the device")
	}
}

func TestDMCryptDistinctSectorsDistinctCiphertext(t *testing.T) {
	_, k, sn, disk := rig(t)
	sn.RegisterOnSoC()
	dm, _ := New(disk, k.Crypto, bytes.Repeat([]byte{7}, 16))
	same := bytes.Repeat([]byte{0x11}, blockdev.SectorSize)
	_ = dm.WriteSector(0, same)
	_ = dm.WriteSector(1, same)
	a := make([]byte, blockdev.SectorSize)
	b := make([]byte, blockdev.SectorSize)
	_ = disk.ReadSector(0, a)
	_ = disk.ReadSector(1, b)
	if bytes.Equal(a, b) {
		t.Fatal("ESSIV failed: identical sectors produced identical ciphertext (watermarking attack possible)")
	}
}

func TestDMCryptKeyMatters(t *testing.T) {
	_, k, sn, disk := rig(t)
	sn.RegisterOnSoC()
	dm1, _ := New(disk, k.Crypto, bytes.Repeat([]byte{1}, 16))
	data := bytes.Repeat([]byte{0xAA}, blockdev.SectorSize)
	_ = dm1.WriteSector(0, data)

	// A provider keyed differently must not decrypt it. Build a generic
	// provider with another key and a fresh dm-crypt view of the same disk.
	s := soc.Tegra3(2)
	gp, err := core.NewGenericProvider(s, soc.DRAMBase+0x100000, bytes.Repeat([]byte{2}, 16))
	if err != nil {
		t.Fatal(err)
	}
	dm2, _ := NewWithProvider(disk, gp, bytes.Repeat([]byte{2}, 16))
	got := make([]byte, blockdev.SectorSize)
	_ = dm2.ReadSector(0, got)
	if bytes.Equal(got, data) {
		t.Fatal("wrong key decrypted the sector")
	}
}

func TestDMCryptRequiresProvider(t *testing.T) {
	s := soc.Tegra3(1)
	disk := blockdev.NewRAMDisk(s, 1<<20)
	if _, err := New(disk, &kernel.CryptoAPI{}, make([]byte, 16)); err == nil {
		t.Fatal("empty registry accepted")
	}
}

func TestDMCryptBadKey(t *testing.T) {
	_, k, sn, disk := rig(t)
	sn.RegisterOnSoC()
	if _, err := New(disk, k.Crypto, make([]byte, 7)); err == nil {
		t.Fatal("bad key size accepted")
	}
}

// Refit rebuilds the target over a forked disk while reusing the ESSIV
// generator: data written before the fork decrypts on the refit target, and
// both sides derive identical IV sequences (same ciphertext for the same
// plaintext and sector) while staying isolated.
func TestDMCryptRefit(t *testing.T) {
	_, k, sn, disk := rig(t)
	sn.RegisterOnSoC()
	key := bytes.Repeat([]byte{7}, 16)
	dm, err := New(disk, k.Crypto, key)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("pre-fork-content"), blockdev.SectorSize/16)
	if err := dm.WriteSector(2, data); err != nil {
		t.Fatal(err)
	}

	s2 := soc.Tegra3(2)
	disk2 := disk.Fork(s2)
	dm2 := dm.Refit(disk2, dm.cipher)
	got := make([]byte, blockdev.SectorSize)
	if err := dm2.ReadSector(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("refit target cannot decrypt pre-fork data")
	}

	// Identical plaintext at the same sector yields identical ciphertext on
	// both sides — the ESSIV sequence survived the refit.
	fresh := bytes.Repeat([]byte("post-fork-write!"), blockdev.SectorSize/16)
	if err := dm.WriteSector(9, fresh); err != nil {
		t.Fatal(err)
	}
	if err := dm2.WriteSector(9, fresh); err != nil {
		t.Fatal(err)
	}
	ctA, ctB := make([]byte, blockdev.SectorSize), make([]byte, blockdev.SectorSize)
	if err := disk.ReadSector(9, ctA); err != nil {
		t.Fatal(err)
	}
	if err := disk2.ReadSector(9, ctB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ctA, ctB) {
		t.Fatal("refit target derives a different IV/ciphertext sequence")
	}

	// And the two volumes stay isolated.
	other := bytes.Repeat([]byte("divergent-branch"), blockdev.SectorSize/16)
	if err := dm2.WriteSector(2, other); err != nil {
		t.Fatal(err)
	}
	if err := dm.ReadSector(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("refit write leaked into the parent volume")
	}
}

// The confidentiality invariant driver used to live in this file as a
// one-off random-op loop. It has been promoted into the reusable model
// checker in internal/check (operation alphabet, seeded campaigns,
// delta-debugged reproducers); this file keeps the original test names as
// thin campaign invocations so the core package's own suite still pins the
// guarantee.
package core_test

import (
	"fmt"
	"testing"

	"sentry/internal/check"
	"sentry/internal/faults"
)

// TestConfidentialityInvariantUnderRandomOps model-checks Sentry's central
// guarantee over randomised schedules: at no point while the device is
// screen-locked is a plaintext sensitive byte in DRAM, on the external bus,
// one legal write-back from DRAM, DMA-readable, or recoverable from a
// post-power-loss image.
func TestConfidentialityInvariantUnderRandomOps(t *testing.T) {
	for _, platform := range []string{"tegra3", "nexus4"} {
		for _, prof := range []faults.Profile{faults.None(), faults.Benign()} {
			platform, prof := platform, prof
			t.Run(fmt.Sprintf("%s-%s", platform, prof.Name), func(t *testing.T) {
				t.Parallel()
				cfg := check.Config{
					Platform: platform,
					Defences: check.AllDefences(),
					Faults:   prof,
				}
				res := check.Campaign(cfg, 1, 8)
				if res.Repro != nil {
					t.Fatalf("invariant violated: %s\n  repro: %s",
						res.Repro.Violation, res.Repro)
				}
				for _, f := range res.IntegrityFailures {
					t.Errorf("data integrity failure: %s", f)
				}
			})
		}
	}
}

// TestInvariantCatchesDeliberateLeak proves the checker is not vacuous:
// disabling any single defence layer must let it find the secret and shrink
// the witness to a minimal replayable schedule.
func TestInvariantCatchesDeliberateLeak(t *testing.T) {
	for _, ctl := range check.Controls() {
		ctl := ctl
		t.Run(ctl.Name, func(t *testing.T) {
			t.Parallel()
			repro, err := check.RunControl("tegra3", ctl.Name, 32, 0)
			if err != nil {
				t.Fatalf("checker is blind with %s disabled: %v", ctl.Name, err)
			}
			if rr := check.Replay(repro.Config, repro.Seed, repro.Ops); rr.Violation == nil {
				t.Fatalf("repro does not replay: %s", repro)
			}
			t.Logf("caught: %s", repro)
		})
	}
}

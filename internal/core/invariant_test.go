package core

import (
	"bytes"
	"fmt"
	"testing"

	"sentry/internal/bus"
	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/sim"
	"sentry/internal/soc"
)

// This file model-checks Sentry's central guarantee over randomised
// operation sequences: AT NO POINT while the device is screen-locked is a
// plaintext byte of a sensitive page (a) present in the DRAM chips,
// (b) carried over the external bus, or (c) readable by DMA.
//
// The driver applies random operations — lock, unlock, foreground touches,
// background sessions, background touches, page frees, cache pressure,
// cache maintenance — and after every step scans the simulated hardware
// for the planted plaintext marker.

type invariantDriver struct {
	t   *testing.T
	s   *soc.SoC
	k   *kernel.Kernel
	sn  *Sentry
	rng *sim.RNG

	fg     *kernel.Process
	bg     *kernel.Process
	fgBase mmu.VirtAddr
	bgBase mmu.VirtAddr

	marker []byte
	bgOn   bool
	step   int
	probe  busProbe
}

func newInvariantDriver(t *testing.T, seed int64) *invariantDriver {
	s := soc.Tegra3(seed)
	k := kernel.New(s, pin)
	sn, err := New(k, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := &invariantDriver{
		t: t, s: s, k: k, sn: sn, rng: sim.NewRNG(seed * 31),
		marker: []byte("INVARIANT-MARKER-XYZZY"),
	}
	d.fg = k.NewProcess("fg", true, false)
	d.bg = k.NewProcess("bg", true, true)
	d.fgBase, _ = k.MapAnon(d.fg, 12)
	d.bgBase, _ = k.MapAnon(d.bg, 48)
	d.fill(d.fg, d.fgBase, 12)
	d.fill(d.bg, d.bgBase, 48)
	d.probe.d = d
	s.Bus.Attach(&d.probe)
	return d
}

// busProbe records whether the marker ever crossed the external bus during
// a locked period — clause (b) of the invariant. It scans each transaction
// as it happens and latches a violation.
type busProbe struct {
	d       *invariantDriver
	tripped string
}

func (p *busProbe) Observe(tx bus.Transaction) {
	if p.d == nil || p.d.k.State() == kernel.Unlocked || p.tripped != "" {
		return
	}
	if bytes.Contains(tx.Data, p.d.marker) {
		p.tripped = fmt.Sprintf("%s %#x (%d bytes) at step %d",
			tx.Op, uint64(tx.Addr), len(tx.Data), p.d.step)
	}
}

func (d *invariantDriver) fill(p *kernel.Process, base mmu.VirtAddr, pages int) {
	d.k.Switch(p)
	for i := 0; i < pages; i++ {
		line := append(append([]byte{}, d.marker...), byte(i))
		if err := d.s.CPU.Store(base+mmu.VirtAddr(i*mem.PageSize), line); err != nil {
			d.t.Fatal(err)
		}
	}
}

// scan enforces the invariant when the device is locked.
func (d *invariantDriver) scan(op string) {
	// Clause (b): no plaintext on the bus during any locked period.
	if d.probe.tripped != "" {
		d.t.Fatalf("step %d (%s): plaintext crossed the bus while locked: %s",
			d.step, op, d.probe.tripped)
	}
	if d.k.State() == kernel.Unlocked {
		return
	}
	// (a) DRAM contents — after draining what the kernel may legally drain.
	d.s.L2.CleanWays(d.sn.flushMask())
	buf := make([]byte, mem.PageSize+len(d.marker))
	for _, off := range d.s.DRAM.Store().TouchedPages() {
		n := uint64(len(buf))
		if off+n > d.s.DRAM.Store().Size() {
			n = d.s.DRAM.Store().Size() - off
		}
		d.s.DRAM.Store().Read(off, buf[:n])
		if bytes.Contains(buf[:n], d.marker) {
			d.t.Fatalf("step %d (%s): plaintext in DRAM at %#x", d.step, op, off)
		}
	}
}

// ops table: each entry may fail benignly (e.g. touching a parked process).
func (d *invariantDriver) randomOp() string {
	switch d.rng.Intn(10) {
	case 0:
		d.k.Lock()
		return "lock"
	case 1:
		if d.bgOn {
			d.bgOn = false // session ends inside Unlock
		}
		_ = d.k.Unlock(pin)
		return "unlock"
	case 2, 3:
		// Foreground touch (only works unlocked).
		if d.k.State() == kernel.Unlocked {
			d.k.Switch(d.fg)
			page := d.rng.Intn(12)
			_ = d.s.CPU.Load(d.fgBase+mmu.VirtAddr(page*mem.PageSize), make([]byte, 32))
		}
		return "fg-touch"
	case 4:
		if d.k.State() != kernel.Unlocked && !d.bgOn {
			if err := d.sn.BeginBackground(d.bg, 128); err == nil {
				d.bgOn = true
			}
		}
		return "bg-begin"
	case 5, 6:
		if d.bgOn {
			d.k.Switch(d.bg)
			page := d.rng.Intn(48)
			if err := d.s.CPU.Load(d.bgBase+mmu.VirtAddr(page*mem.PageSize), make([]byte, 32)); err != nil {
				d.t.Fatalf("step %d: bg touch failed: %v", d.step, err)
			}
		}
		return "bg-touch"
	case 7:
		// Cache pressure from unrelated traffic.
		junk := make([]byte, 4096)
		for i := 0; i < 8; i++ {
			d.s.CPU.ReadPhys(soc.DRAMBase+mem.PhysAddr(0x2000000+d.rng.Intn(64)*0x40000), junk)
		}
		return "pressure"
	case 8:
		// Legal cache maintenance (the patched kernel path).
		d.s.L2.CleanInvalidateWays(d.sn.flushMask())
		return "flush-masked"
	default:
		// Free a foreground page while unlocked (it re-arms via zero queue).
		if d.k.State() == kernel.Unlocked {
			d.k.Switch(d.fg)
			page := d.rng.Intn(12)
			v := d.fgBase + mmu.VirtAddr(page*mem.PageSize)
			if pte := d.fg.AS.Lookup(v); pte != nil {
				d.k.UnmapAndFree(d.fg, v)
				// Remap a fresh page so later touches stay valid.
				frame, err := d.k.Pages().Alloc()
				if err == nil {
					d.fg.AS.Map(v, mmu.PTE{Phys: frame, Present: true, Writable: true, Young: true})
					line := append(append([]byte{}, d.marker...), byte(page))
					_ = d.s.CPU.Store(v, line)
				}
			}
		}
		return "free-page"
	}
}

func TestConfidentialityInvariantUnderRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			d := newInvariantDriver(t, seed)
			const steps = 120
			for d.step = 0; d.step < steps; d.step++ {
				op := d.randomOp()
				d.scan(op)
			}
			// Always end by verifying data integrity end-to-end.
			_ = d.k.Unlock(pin)
			d.k.Switch(d.fg)
			got := make([]byte, len(d.marker))
			for i := 0; i < 12; i++ {
				if err := d.s.CPU.Load(d.fgBase+mmu.VirtAddr(i*mem.PageSize), got); err != nil {
					t.Fatalf("fg page %d unreadable after run: %v", i, err)
				}
				if !bytes.Equal(got, d.marker) {
					t.Fatalf("fg page %d corrupted after run", i)
				}
			}
			d.k.Switch(d.bg)
			for i := 0; i < 48; i++ {
				if err := d.s.CPU.Load(d.bgBase+mmu.VirtAddr(i*mem.PageSize), got); err != nil {
					t.Fatalf("bg page %d unreadable after run: %v", i, err)
				}
				if !bytes.Equal(got, d.marker) {
					t.Fatalf("bg page %d corrupted after run", i)
				}
			}
		})
	}
}

// TestInvariantCatchesDeliberateLeak proves the scanner is not vacuous: an
// intentionally buggy "kernel" that flushes without the mask while a
// background session holds plaintext in a locked way must trip it.
func TestInvariantCatchesDeliberateLeak(t *testing.T) {
	d := newInvariantDriver(t, 99)
	d.k.Lock()
	if err := d.sn.BeginBackground(d.bg, 128); err != nil {
		t.Fatal(err)
	}
	d.k.Switch(d.bg)
	if err := d.s.CPU.Load(d.bgBase, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	// The bug: full flush, ignoring the lock mask.
	d.s.L2.CleanInvalidateWays(d.s.L2.AllWaysMask())
	buf := make([]byte, mem.PageSize)
	leaked := false
	for _, off := range d.s.DRAM.Store().TouchedPages() {
		d.s.DRAM.Store().Read(off, buf)
		if bytes.Contains(buf, d.marker) {
			leaked = true
			break
		}
	}
	if !leaked {
		t.Fatal("deliberate unmasked flush did not leak — the invariant scan proves nothing")
	}
}

package core

import (
	"bytes"
	"testing"

	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/soc"
)

// bgSetup boots a Tegra with a locked background session for an mp3-like
// process of the given footprint.
func bgSetup(t *testing.T, pages, lockedKB int) (*Sentry, *kernel.Kernel, *soc.SoC, *kernel.Process, []byte) {
	t.Helper()
	sn, k, s := bootTegra(t, Config{})
	p := k.NewProcess("xmms2", true, true)
	base, _ := k.MapAnon(p, pages)
	secret := fillSecret(t, s, k, p, base, pages)
	k.Lock()
	if err := sn.BeginBackground(p, lockedKB); err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	_ = base
	return sn, k, s, p, secret
}

func TestBackgroundReadsCorrectPlaintext(t *testing.T) {
	sn, _, s, p, secret := bgSetup(t, 4, 128)
	base := p.AS.Pages()[0]
	got := make([]byte, len(secret))
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("background process read wrong plaintext")
	}
	if sn.Stats().BgPageIns != 4 {
		t.Fatalf("page-ins = %d", sn.Stats().BgPageIns)
	}
}

// TestBackgroundNeverExposesPlaintextToDRAM is the paper's core security
// claim for §5: while a background app runs on its decrypted pages, DRAM
// holds only ciphertext.
func TestBackgroundNeverExposesPlaintextToDRAM(t *testing.T) {
	sn, _, s, p, _ := bgSetup(t, 8, 128)
	base := p.AS.Pages()[0]
	needle := []byte("TOP-SECRET-EMAIL")

	scan := func(when string) {
		// Drain everything the kernel may legally flush.
		s.L2.CleanWays(sn.flushMask())
		buf := make([]byte, mem.PageSize)
		for _, off := range s.DRAM.Store().TouchedPages() {
			s.DRAM.Store().Read(off, buf)
			if bytes.Contains(buf, needle) {
				t.Fatalf("plaintext visible in DRAM %s (offset %#x)", when, off)
			}
		}
	}
	scan("before any touch")
	for i := 0; i < 8; i++ {
		chunk := make([]byte, 16)
		if err := s.CPU.Load(base+mmu.VirtAddr(i*mem.PageSize), chunk); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(chunk, needle) {
			t.Fatalf("page %d plaintext wrong: %q", i, chunk)
		}
	}
	scan("while resident")
}

func TestBackgroundEvictionUnderPressure(t *testing.T) {
	// 128 KB locked = 32 slots; touch 40 pages to force evictions.
	sn, _, s, p, secret := bgSetup(t, 40, 128)
	base := p.AS.Pages()[0]
	got := make([]byte, len(secret))
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("data corrupted under eviction pressure")
	}
	st := sn.Stats()
	if st.BgPageIns != 40 || st.BgPageOuts != 40-32 {
		t.Fatalf("ins=%d outs=%d", st.BgPageIns, st.BgPageOuts)
	}
	if sn.BackgroundResidentPages() != 32 || sn.BackgroundCapacityPages() != 32 {
		t.Fatalf("resident=%d capacity=%d",
			sn.BackgroundResidentPages(), sn.BackgroundCapacityPages())
	}
	// Re-reading an evicted page must page it back in correctly.
	first := make([]byte, 16)
	if err := s.CPU.Load(base, first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, secret[:16]) {
		t.Fatal("evicted page did not survive the round trip")
	}
}

func TestBackgroundWritesSurviveEviction(t *testing.T) {
	sn, _, s, p, _ := bgSetup(t, 40, 128)
	base := p.AS.Pages()[0]
	if err := s.CPU.Store(base, []byte("FRESH-EMAIL-BODY")); err != nil {
		t.Fatal(err)
	}
	// Touch everything else to evict page 0.
	for i := 1; i < 40; i++ {
		_ = s.CPU.Load(base+mmu.VirtAddr(i*mem.PageSize), make([]byte, 1))
	}
	got := make([]byte, 16)
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("FRESH-EMAIL-BODY")) {
		t.Fatal("background write lost across eviction")
	}
	_ = sn
}

func TestUnlockEndsBackgroundSession(t *testing.T) {
	sn, k, s, p, secret := bgSetup(t, 4, 128)
	base := p.AS.Pages()[0]
	if err := s.CPU.Load(base, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := k.Unlock(pin); err != nil {
		t.Fatal(err)
	}
	if sn.Locker().LockedMask() != 0 {
		t.Fatal("ways still locked after unlock")
	}
	if sn.BackgroundCapacityPages() != 0 {
		t.Fatal("session not ended")
	}
	// Data is intact in the foreground path.
	k.Switch(p)
	got := make([]byte, len(secret))
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("data lost when session ended")
	}
}

func TestBeginBackgroundValidation(t *testing.T) {
	sn, k, _ := bootTegra(t, Config{})
	fg := k.NewProcess("fg", true, false)
	bg := k.NewProcess("bg", true, true)

	if err := sn.BeginBackground(bg, 128); err == nil {
		t.Fatal("session started while unlocked")
	}
	k.Lock()
	if err := sn.BeginBackground(fg, 128); err == nil {
		t.Fatal("non-background process accepted")
	}
	if err := sn.BeginBackground(bg, 100); err == nil {
		t.Fatal("non-way-multiple capacity accepted")
	}
	if err := sn.BeginBackground(bg, 128); err != nil {
		t.Fatal(err)
	}
	if err := sn.BeginBackground(bg, 128); err == nil {
		t.Fatal("double session accepted")
	}

	// Nexus: no locker at all.
	snN, kN, _ := bootNexus(t)
	bgN := kN.NewProcess("bg", true, true)
	kN.Lock()
	if err := snN.BeginBackground(bgN, 128); err == nil {
		t.Fatal("Nexus accepted a background session")
	}
}

func TestBackgroundCapacityScalesWithWays(t *testing.T) {
	sn, k, _ := bootTegra(t, Config{})
	p := k.NewProcess("bg", true, true)
	if _, err := k.MapAnon(p, 1); err != nil {
		t.Fatal(err)
	}
	k.Lock()
	if err := sn.BeginBackground(p, 256); err != nil { // two ways
		t.Fatal(err)
	}
	if sn.BackgroundCapacityPages() != 64 {
		t.Fatalf("capacity = %d pages, want 64", sn.BackgroundCapacityPages())
	}
	if sn.Locker().LockedBytes() != 256<<10 {
		t.Fatal("locked bytes wrong")
	}
}

func TestBackgroundPinnedSession(t *testing.T) {
	// The §10 pin-on-SoC variant must provide the same guarantees from
	// plain iRAM: correct data, no plaintext in DRAM, erased on release.
	sn, k, s := bootTegra(t, Config{})
	p := k.NewProcess("bg", true, true)
	base, _ := k.MapAnon(p, 8)
	secret := fillSecret(t, s, k, p, base, 8)
	k.Lock()
	if err := sn.BeginBackgroundPinned(p, 4); err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	got := make([]byte, len(secret))
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("pinned session read wrong data")
	}
	if sn.Stats().BgPageIns != 8 || sn.Stats().BgPageOuts != 8-4 {
		t.Fatalf("ins/outs = %d/%d", sn.Stats().BgPageIns, sn.Stats().BgPageOuts)
	}
	// DRAM clean while running.
	s.L2.CleanWays(sn.flushMask())
	buf := make([]byte, mem.PageSize)
	for _, off := range s.DRAM.Store().TouchedPages() {
		s.DRAM.Store().Read(off, buf)
		if bytes.Contains(buf, []byte("TOP-SECRET-EMAIL")) {
			t.Fatal("pinned session leaked plaintext to DRAM")
		}
	}
	free := sn.IRAM().Free()
	if err := k.Unlock(pin); err != nil {
		t.Fatal(err)
	}
	if sn.IRAM().Free() <= free {
		t.Fatal("pinned pool not released on unlock")
	}
	k.Switch(p)
	if err := s.CPU.Load(base, got); err != nil || !bytes.Equal(got, secret) {
		t.Fatal("data lost after pinned session ended")
	}
}

func TestBackgroundPinnedValidation(t *testing.T) {
	sn, k, _ := bootTegra(t, Config{})
	p := k.NewProcess("bg", true, true)
	if err := sn.BeginBackgroundPinned(p, 4); err == nil {
		t.Fatal("pinned session started while unlocked")
	}
	k.Lock()
	if err := sn.BeginBackgroundPinned(p, 0); err == nil {
		t.Fatal("zero pool accepted")
	}
	if err := sn.BeginBackgroundPinned(p, 1<<20); err == nil {
		t.Fatal("absurd pool fit in 192KB of iRAM")
	}
	if err := sn.BeginBackgroundPinned(p, 4); err != nil {
		t.Fatal(err)
	}
	if err := sn.BeginBackgroundPinned(p, 4); err == nil {
		t.Fatal("double session accepted")
	}
}

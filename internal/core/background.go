package core

import (
	"fmt"

	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/soc"
)

// Background execution with encrypted DRAM (paper §5, Figure 1): while the
// device is locked, a background process runs with its working set paged
// through a locked L2 way. DRAM only ever holds ciphertext; cleartext pages
// exist solely inside the locked way.
//
// Page-in (on young-bit trap): copy the encrypted page from its DRAM home
// into a free locked-way slot, decrypt it in place on the SoC, repoint the
// PTE at the slot, and set the young bit. Page-out (slot pressure): encrypt
// the slot in place, copy the ciphertext back to the home frame, repoint
// the PTE home, and clear the young bit.

type bgSlot struct {
	addr     mem.PhysAddr // page-sized region inside a locked way
	occupied bool
	v        mmu.VirtAddr // virtual page currently resident
	home     mem.PhysAddr // its DRAM home frame
}

type bgState struct {
	proc  *kernel.Process
	slots []*bgSlot
	fifo  []*bgSlot // occupied slots in arrival order (FIFO eviction)
	ways  []int     // ways locked for this session
	// pinned holds iRAM allocations when the session uses the §10
	// pin-on-SoC abstraction instead of locked cache ways.
	pinned []mem.PhysAddr
}

// BeginBackground starts an encrypted-DRAM session for p using lockedKB of
// pinned L2 (the paper evaluates 256 KB and 512 KB). The process must be a
// sensitive background process, the device must be locked, and the platform
// must support cache locking.
func (sn *Sentry) BeginBackground(p *kernel.Process, lockedKB int) error {
	return sn.beginBackground(p, lockedKB, 0)
}

// BeginBackgroundLimited is BeginBackground with the slot pool capped at
// maxPoolPages. The paper's minimum configuration (§7) is a single page for
// the application plus one for AES On SoC: functional, but thrashing.
func (sn *Sentry) BeginBackgroundLimited(p *kernel.Process, lockedKB, maxPoolPages int) error {
	return sn.beginBackground(p, lockedKB, maxPoolPages)
}

func (sn *Sentry) beginBackground(p *kernel.Process, lockedKB, maxPoolPages int) error {
	switch {
	case sn.locker == nil:
		return fmt.Errorf("core: platform %s cannot run locked background sessions: %w", sn.S.Prof.Name, soc.ErrUnsupported)
	case sn.K.State() == kernel.Unlocked:
		return fmt.Errorf("core: background sessions only run while locked: %w", kernel.ErrLocked)
	case sn.bg != nil:
		return fmt.Errorf("core: a background session is already active")
	case !p.Sensitive || !p.Background:
		return fmt.Errorf("core: process %q is not a sensitive background process", p.Name)
	}
	waySizeKB := sn.S.Prof.Cache.WaySize / 1024
	if lockedKB%waySizeKB != 0 || lockedKB == 0 {
		return fmt.Errorf("core: locked capacity %d KB is not a multiple of the way size %d KB", lockedKB, waySizeKB)
	}
	st := &bgState{proc: p}
	for locked := 0; locked < lockedKB; locked += waySizeKB {
		way, base, err := sn.locker.LockWay()
		if err != nil {
			sn.releaseBgWays(st)
			return err
		}
		st.ways = append(st.ways, way)
		for off := 0; off < sn.S.Prof.Cache.WaySize; off += mem.PageSize {
			if maxPoolPages > 0 && len(st.slots) >= maxPoolPages {
				break
			}
			st.slots = append(st.slots, &bgSlot{addr: base + mem.PhysAddr(off)})
		}
	}
	sn.bg = st
	p.Schedulable = true
	return nil
}

// BackgroundResidentPages reports how many pages are currently decrypted in
// the locked way.
func (sn *Sentry) BackgroundResidentPages() int {
	if sn.bg == nil {
		return 0
	}
	return len(sn.bg.fifo)
}

// BackgroundCapacityPages reports the session's slot count.
func (sn *Sentry) BackgroundCapacityPages() int {
	if sn.bg == nil {
		return 0
	}
	return len(sn.bg.slots)
}

// cryptAt encrypts/decrypts one page in place at addr, with the IV bound to
// the page's home frame (stable across page-in/out cycles within a lock
// epoch).
func (sn *Sentry) cryptAt(addr, ivFrame mem.PhysAddr, decrypt bool) {
	var page [mem.PageSize]byte
	startCycle := sn.S.Clock.Cycles()
	sn.S.CPU.ReadPhys(addr, page[:])
	iv := sn.pageIV(ivFrame, sn.epochFor(ivFrame, decrypt))
	var err error
	if sn.cfg.Fidelity {
		if decrypt {
			err = sn.engine.DecryptCBC(page[:], page[:], iv)
		} else {
			err = sn.engine.EncryptCBC(page[:], page[:], iv)
		}
	} else {
		if decrypt {
			err = sn.engine.DecryptCBCBulk(page[:], page[:], iv)
		} else {
			err = sn.engine.EncryptCBCBulk(page[:], page[:], iv)
		}
	}
	if err != nil {
		panic(fmt.Sprintf("core: background crypt failed: %v", err))
	}
	sn.S.CPU.WritePhys(addr, page[:])
	sn.observeCrypt(addr, decrypt, SealBg, startCycle)
}

// copyPage moves one page between physical locations through the CPU.
func (sn *Sentry) copyPage(dst, src mem.PhysAddr) {
	var page [mem.PageSize]byte
	sn.S.CPU.ReadPhys(src, page[:])
	sn.S.CPU.WritePhys(dst, page[:])
}

// bgPageOut evicts one slot: encrypt in place in the locked way, copy the
// ciphertext to the DRAM home, re-arm the trap.
func (sn *Sentry) bgPageOut(slot *bgSlot) {
	sn.cryptAt(slot.addr, slot.home, false)
	sn.copyPage(slot.home, slot.addr)
	if pte := sn.bg.proc.AS.Lookup(slot.v); pte != nil {
		pte.Phys = slot.home
		pte.Encrypted = true
		pte.Young = false
	}
	slot.occupied = false
	sn.ctrBgOuts.Inc()
}

// bgPageIn services a young-bit fault for the background process.
func (sn *Sentry) bgPageIn(p *kernel.Process, v mmu.VirtAddr, pte *mmu.PTE) bool {
	st := sn.bg
	var slot *bgSlot
	for _, c := range st.slots {
		if !c.occupied {
			slot = c
			break
		}
	}
	if slot == nil {
		// Evict the oldest resident page.
		slot = st.fifo[0]
		st.fifo = st.fifo[1:]
		sn.bgPageOut(slot)
	}
	home := mem.PageBase(pte.Phys)
	sn.copyPage(slot.addr, home)
	sn.cryptAt(slot.addr, home, true)
	slot.occupied = true
	slot.v = mmu.PageBase(v)
	slot.home = home
	st.fifo = append(st.fifo, slot)

	pte.Phys = slot.addr
	pte.Encrypted = false
	pte.Young = true
	sn.ctrBgIns.Inc()
	return true
}

// BeginBackgroundPinned is the §10 "architecture suggestions" variant: the
// session's on-SoC page pool comes from a dedicated pinned SRAM region
// (more iRAM) instead of locked cache ways. Functionally identical to
// BeginBackground, but it costs the rest of the system no L2 capacity and
// needs none of the way-locking choreography — the simplification the
// paper argues hardware vendors should offer.
func (sn *Sentry) BeginBackgroundPinned(p *kernel.Process, poolPages int) error {
	switch {
	case sn.K.State() == kernel.Unlocked:
		return fmt.Errorf("core: background sessions only run while locked: %w", kernel.ErrLocked)
	case sn.bg != nil:
		return fmt.Errorf("core: a background session is already active")
	case !p.Sensitive || !p.Background:
		return fmt.Errorf("core: process %q is not a sensitive background process", p.Name)
	case poolPages <= 0:
		return fmt.Errorf("core: pool must be at least one page")
	}
	st := &bgState{proc: p}
	for i := 0; i < poolPages; i++ {
		addr, err := sn.iram.Alloc(mem.PageSize)
		if err != nil {
			for _, a := range st.pinned {
				sn.iram.Release(a)
			}
			return fmt.Errorf("core: pinned pool: %w", err)
		}
		st.pinned = append(st.pinned, addr)
		st.slots = append(st.slots, &bgSlot{addr: addr})
	}
	sn.bg = st
	p.Schedulable = true
	return nil
}

// endBackground flushes every resident page back to encrypted DRAM and
// releases the session's on-SoC memory (erasing it). Runs on unlock;
// idempotent.
func (sn *Sentry) endBackground() {
	if sn.bg == nil {
		return
	}
	for _, slot := range sn.bg.fifo {
		if slot.occupied {
			sn.bgPageOut(slot)
		}
	}
	sn.bg.fifo = nil
	sn.releaseBgWays(sn.bg)
	ff := make([]byte, mem.PageSize)
	for i := range ff {
		ff[i] = 0xFF
	}
	for _, addr := range sn.bg.pinned {
		sn.S.CPU.WritePhys(addr, ff) // erase before release, like unlock does
		sn.iram.Release(addr)
	}
	sn.bg = nil
}

func (sn *Sentry) releaseBgWays(st *bgState) {
	for _, way := range st.ways {
		if err := sn.locker.UnlockWay(way); err != nil {
			panic(fmt.Sprintf("core: unlock way %d: %v", way, err))
		}
	}
	st.ways = nil
}

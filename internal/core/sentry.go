// Package core implements Sentry, the paper's primary contribution: a
// system that guarantees the sensitive state of selected applications and
// OS subsystems is never in cleartext in DRAM while the device is
// screen-locked.
//
// The mechanism is the paper's §2/§5/§7 design:
//
//   - Encrypt-on-lock: when the device transitions to screen-locked, Sentry
//     waits for the freed-page zeroing thread, then walks the page tables of
//     every sensitive process and encrypts its pages in place with the
//     volatile root key, arming a young-bit trap on each page. Processes
//     without background privileges are parked unschedulable.
//   - Decrypt-on-unlock: decryption is lazy. DMA regions (which fault
//     never) are decrypted eagerly at unlock; everything else decrypts on
//     first touch from the page-fault handler, saving time and energy when
//     the user glances at the phone and re-locks it.
//   - Encrypted DRAM for background apps (background.go): while locked,
//     background processes execute with their pages paged through a locked
//     L2 way — decrypt on page-in to the SoC, encrypt on page-out to DRAM.
//   - Keys (keys.go): a per-boot volatile root key held in iRAM (protected
//     from DMA by TrustZone where available) and a persistent key derived
//     from the user's boot password and the secure hardware fuse.
//
// All cryptography goes through AES On SoC (package onsoc), so the
// encryption machinery itself leaks nothing to DRAM.
package core

import (
	"fmt"

	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/obs"
	"sentry/internal/onsoc"
	"sentry/internal/soc"
)

// Config selects Sentry's mechanisms for a platform.
type Config struct {
	// EngineInLockedWay places the AES On SoC arena in a locked L2 way
	// instead of iRAM (Tegra only; iRAM is the default and works on both
	// prototypes).
	EngineInLockedWay bool

	// Fidelity runs all page cryptography with per-access memory
	// simulation instead of the bulk cost model. Orders of magnitude
	// slower; used by security tests on small footprints.
	Fidelity bool

	// ReservedWays locks a constant way budget at boot (see
	// onsoc.WayLocker.ReserveWays): session lock/unlock cycles served from
	// the budget never change the externally observable lock state, closing
	// the way-locking occupancy channel. Ignored on platforms that cannot
	// lock ways.
	ReservedWays int

	// Defence ablations. Each switches off one layer of the paper's
	// defence-in-depth so the model checker's positive controls can prove
	// it detects the resulting leak (internal/check). Production
	// configurations leave both false.

	// NoLockFlush skips the masked clean+invalidate at the end of
	// encrypt-on-lock, leaving ciphertext dirty in the cache and stale
	// plaintext in any DRAM frame it was evicted to.
	NoLockFlush bool
	// NoDrainOnLock skips waiting for the freed-page zeroing thread at
	// lock time, leaving freed frames (and their stale cache lines) full
	// of secrets.
	NoDrainOnLock bool
}

// FaultProbe is core's slice of a fault injector: a callback after each
// page sealed during encrypt-on-lock. Implementations may panic (with a
// faults.Abort) to model power loss mid-encryption — the device never
// reaches the locked state, so the interrupted plaintext window falls in
// the pre-lock exposure the threat model accepts.
type FaultProbe interface {
	OnLockPage(pagesSealed int)
}

// Stats counts Sentry activity. Since the observability layer landed it is
// a snapshot view over the metrics registry (see Sentry.Stats); the struct
// shape is kept so existing callers read it unchanged.
type Stats struct {
	LockEncryptedBytes   uint64 // encrypt-on-lock volume (cumulative)
	DemandDecryptedBytes uint64 // lazy decrypt volume
	EagerDecryptedBytes  uint64 // DMA-region decrypt volume at unlock
	DemandFaults         uint64 // page faults that triggered decryption
	BgPageIns            uint64
	BgPageOuts           uint64
	SkippedSharedPages   uint64 // pages shared with non-sensitive processes
}

// Registry names of the Stats counters, and the seal/unseal latency
// histograms cryptPage feeds.
const (
	MetricLockEncryptedBytes   = "sentry.lock_encrypted_bytes"
	MetricDemandDecryptedBytes = "sentry.demand_decrypted_bytes"
	MetricEagerDecryptedBytes  = "sentry.eager_decrypted_bytes"
	MetricDemandFaults         = "sentry.demand_faults"
	MetricBgPageIns            = "sentry.bg_page_ins"
	MetricBgPageOuts           = "sentry.bg_page_outs"
	MetricSkippedSharedPages   = "sentry.skipped_shared_pages"
	MetricSealCycles           = "sentry.seal_cycles"   // per-page encrypt latency
	MetricUnsealCycles         = "sentry.unseal_cycles" // per-page decrypt latency
)

// Seal labels distinguish why a page was sealed or unsealed in the trace;
// they match 1:1 with the Stats counters so reports derived from either
// agree exactly.
const (
	SealLock   = "lock"   // encrypt-on-lock
	SealDemand = "demand" // decrypt-on-first-touch
	SealEager  = "eager"  // eager decrypt at unlock (DMA regions, kernel)
	SealBg     = "bg"     // background-session page-in/out
)

// Sentry is one instance of the system, bound to a kernel.
type Sentry struct {
	K   *kernel.Kernel
	S   *soc.SoC
	cfg Config

	iram   *onsoc.IRAMAlloc
	locker *onsoc.WayLocker // nil when the platform cannot lock ways

	keys   *KeyStore
	engine *onsoc.AES

	epoch uint64 // bumps on every lock; part of each page's IV
	// frameEpoch records the epoch each still-encrypted frame was sealed
	// under: a page that goes untouched across several lock/unlock cycles
	// keeps its original ciphertext and must decrypt with the IV of the
	// epoch that produced it.
	frameEpoch map[mem.PhysAddr]uint64

	bg *bgState // non-nil while a background session is active

	// sealedKernelFrames are OS-subsystem frames encrypted at the last
	// lock; they decrypt eagerly at unlock (kernel code cannot fault).
	sealedKernelFrames []mem.PhysAddr

	// faults is nil unless a fault injector is attached.
	faults FaultProbe

	// Activity counters live in the platform's metrics registry; Stats()
	// rebuilds the legacy struct from them.
	reg            *obs.Registry
	ctrLockEnc     *obs.Counter
	ctrDemandDec   *obs.Counter
	ctrEagerDec    *obs.Counter
	ctrDemandFault *obs.Counter
	ctrBgIns       *obs.Counter
	ctrBgOuts      *obs.Counter
	ctrSkipped     *obs.Counter
	histSeal       *obs.Histogram
	histUnseal     *obs.Histogram
}

// New installs Sentry into k. On platforms with secure-world access the
// volatile key's iRAM home is shielded from DMA via TrustZone; on lockable
// platforms a WayLocker is prepared over the kernel's alias region.
func New(k *kernel.Kernel, cfg Config) (*Sentry, error) {
	s := k.SoC
	base, size := s.UsableIRAM()
	sn := &Sentry{
		K: k, S: s, cfg: cfg,
		iram:       onsoc.NewIRAMAlloc(base, size),
		frameEpoch: make(map[mem.PhysAddr]uint64),
	}

	// Sentry's activity counters live in the platform registry. If the
	// caller has not instrumented the SoC, install a private registry now
	// so Stats() always works and later consumers (per-process MMU fault
	// counters) share it. Deliberately do NOT wire the per-transaction
	// component instruments here: bus and cache counters cost an atomic
	// update on every simulated transfer, and without a caller-provided
	// tracer or registry nothing ever reads them. An explicitly
	// instrumented SoC (s.Metrics != nil) is left untouched.
	if s.Metrics == nil {
		if s.Trace != nil {
			s.Instrument(s.Trace, obs.NewRegistry())
		} else {
			s.Metrics = obs.NewRegistry()
		}
	}
	sn.reg = s.Metrics
	sn.ctrLockEnc = sn.reg.Counter(MetricLockEncryptedBytes)
	sn.ctrDemandDec = sn.reg.Counter(MetricDemandDecryptedBytes)
	sn.ctrEagerDec = sn.reg.Counter(MetricEagerDecryptedBytes)
	sn.ctrDemandFault = sn.reg.Counter(MetricDemandFaults)
	sn.ctrBgIns = sn.reg.Counter(MetricBgPageIns)
	sn.ctrBgOuts = sn.reg.Counter(MetricBgPageOuts)
	sn.ctrSkipped = sn.reg.Counter(MetricSkippedSharedPages)
	// Page seal/unseal run tens of thousands of cycles on the bulk model
	// and millions under full fidelity; geometric buckets span both.
	sealBounds := obs.ExpBounds(4096, 2, 16)
	sn.histSeal = sn.reg.Histogram(MetricSealCycles, sealBounds)
	sn.histUnseal = sn.reg.Histogram(MetricUnsealCycles, sealBounds)

	if s.Prof.CacheLockable {
		locker, err := onsoc.NewWayLocker(s, k.AliasRegion.Base)
		if err != nil {
			return nil, err
		}
		sn.locker = locker
		if cfg.ReservedWays > 0 {
			if err := locker.ReserveWays(cfg.ReservedWays); err != nil {
				return nil, err
			}
		}
	}

	keys, err := NewKeyStore(s, sn.iram)
	if err != nil {
		return nil, err
	}
	sn.keys = keys

	if cfg.EngineInLockedWay {
		if sn.locker == nil {
			return nil, fmt.Errorf("core: locked-way engine requested but platform %s cannot lock ways", s.Prof.Name)
		}
		sn.engine, err = onsoc.NewInLockedWay(s, sn.locker, keys.VolatileKey())
	} else {
		sn.engine, err = onsoc.NewInIRAM(s, sn.iram, keys.VolatileKey())
	}
	if err != nil {
		return nil, err
	}

	k.FlushMaskFn = sn.flushMask
	k.OnLock = append(k.OnLock, sn.encryptOnLock)
	k.OnUnlock = append(k.OnUnlock, sn.onUnlock)
	// Deep lock is terminal until a power cycle, so the volatile key serves
	// no further purpose — destroy it rather than leave it in iRAM.
	k.OnDeepLock = append(k.OnDeepLock, sn.keys.Zeroize)
	prevHook := k.FaultHook
	k.FaultHook = func(p *kernel.Process, f *mmu.Fault) bool {
		if sn.handleFault(p, f) {
			return true
		}
		return prevHook != nil && prevHook(p, f)
	}
	return sn, nil
}

// Clone rebuilds this Sentry over the forked kernel k2 (produced by
// kernel.Clone on a soc.Fork of this Sentry's platform). pm is the old→new
// process map kernel.Clone returned; it re-binds the background session's
// process reference. No simulated time is charged: page contents, the
// volatile key, and the AES arena all travel with the forked memory, and
// the engine adopts its arena rather than re-initialising it.
//
// The clone re-installs Sentry's kernel hooks on k2 exactly as New does on
// a fresh kernel. A fault probe is NOT carried — the harness that owns the
// injector re-attaches it to the clone.
func (sn *Sentry) Clone(k2 *kernel.Kernel, pm map[*kernel.Process]*kernel.Process) (*Sentry, error) {
	s2 := k2.SoC
	n := &Sentry{
		K: k2, S: s2, cfg: sn.cfg,
		iram:       sn.iram.Clone(),
		epoch:      sn.epoch,
		frameEpoch: make(map[mem.PhysAddr]uint64, len(sn.frameEpoch)),
	}
	for f, e := range sn.frameEpoch {
		n.frameEpoch[f] = e
	}
	if len(sn.sealedKernelFrames) > 0 {
		n.sealedKernelFrames = append([]mem.PhysAddr(nil), sn.sealedKernelFrames...)
	}
	if sn.locker != nil {
		n.locker = sn.locker.Clone(s2)
	}
	n.keys = sn.keys.clone(s2)

	// Re-resolve instruments by name from the cloned registry — the same
	// wiring-time resolution New performs. soc.Fork guarantees s2.Metrics is
	// a clone of the parent's registry (New ensured the parent had one).
	n.reg = s2.Metrics
	n.ctrLockEnc = n.reg.Counter(MetricLockEncryptedBytes)
	n.ctrDemandDec = n.reg.Counter(MetricDemandDecryptedBytes)
	n.ctrEagerDec = n.reg.Counter(MetricEagerDecryptedBytes)
	n.ctrDemandFault = n.reg.Counter(MetricDemandFaults)
	n.ctrBgIns = n.reg.Counter(MetricBgPageIns)
	n.ctrBgOuts = n.reg.Counter(MetricBgPageOuts)
	n.ctrSkipped = n.reg.Counter(MetricSkippedSharedPages)
	sealBounds := obs.ExpBounds(4096, 2, 16)
	n.histSeal = n.reg.Histogram(MetricSealCycles, sealBounds)
	n.histUnseal = n.reg.Histogram(MetricUnsealCycles, sealBounds)

	var engineAlloc *onsoc.IRAMAlloc
	if !sn.cfg.EngineInLockedWay {
		engineAlloc = n.iram
	}
	eng, err := sn.engine.Adopt(s2, n.keys.peekKey(), engineAlloc)
	if err != nil {
		return nil, err
	}
	n.engine = eng

	if sn.bg != nil {
		st := &bgState{proc: pm[sn.bg.proc]}
		slotMap := make(map[*bgSlot]*bgSlot, len(sn.bg.slots))
		for _, s := range sn.bg.slots {
			c := *s
			st.slots = append(st.slots, &c)
			slotMap[s] = &c
		}
		for _, s := range sn.bg.fifo {
			st.fifo = append(st.fifo, slotMap[s])
		}
		st.ways = append([]int(nil), sn.bg.ways...)
		st.pinned = append([]mem.PhysAddr(nil), sn.bg.pinned...)
		n.bg = st
	}

	k2.FlushMaskFn = n.flushMask
	k2.OnLock = append(k2.OnLock, n.encryptOnLock)
	k2.OnUnlock = append(k2.OnUnlock, n.onUnlock)
	k2.OnDeepLock = append(k2.OnDeepLock, n.keys.Zeroize)
	prevHook := k2.FaultHook
	k2.FaultHook = func(p *kernel.Process, f *mmu.Fault) bool {
		if n.handleFault(p, f) {
			return true
		}
		return prevHook != nil && prevHook(p, f)
	}
	return n, nil
}

// Stats returns a snapshot of activity counters, read from the metrics
// registry.
func (sn *Sentry) Stats() Stats {
	return Stats{
		LockEncryptedBytes:   sn.ctrLockEnc.Value(),
		DemandDecryptedBytes: sn.ctrDemandDec.Value(),
		EagerDecryptedBytes:  sn.ctrEagerDec.Value(),
		DemandFaults:         sn.ctrDemandFault.Value(),
		BgPageIns:            sn.ctrBgIns.Value(),
		BgPageOuts:           sn.ctrBgOuts.Value(),
		SkippedSharedPages:   sn.ctrSkipped.Value(),
	}
}

// Metrics returns the registry Sentry records into.
func (sn *Sentry) Metrics() *obs.Registry { return sn.reg }

// SetFaults attaches (or, with nil, detaches) a fault probe.
func (sn *Sentry) SetFaults(p FaultProbe) { sn.faults = p }

// Engine exposes the AES On SoC instance (benchmarks compare it against
// generic providers).
func (sn *Sentry) Engine() *onsoc.AES { return sn.engine }

// Locker exposes the way locker, nil on platforms without cache locking.
func (sn *Sentry) Locker() *onsoc.WayLocker { return sn.locker }

// IRAM exposes the iRAM allocator.
func (sn *Sentry) IRAM() *onsoc.IRAMAlloc { return sn.iram }

// Keys exposes the key store.
func (sn *Sentry) Keys() *KeyStore { return sn.keys }

// Rekey replaces the volatile root key and re-expands the on-SoC engine's
// schedule over the new key, in place. Only legal before anything has been
// sealed: a page encrypted under the old key would be garbage after. Hosts
// that stamp per-device keys onto a forked base image (internal/fleet) call
// this right after the fork, before any process locks.
func (sn *Sentry) Rekey(key []byte) error {
	if len(sn.frameEpoch) != 0 || len(sn.sealedKernelFrames) != 0 {
		return fmt.Errorf("core: rekey with %d sealed frames outstanding", len(sn.frameEpoch)+len(sn.sealedKernelFrames))
	}
	if err := sn.keys.Rekey(key); err != nil {
		return err
	}
	return sn.engine.Rekey(key)
}

// pageIV derives the CBC IV for a page: the volatile-key encryption of
// (frame number, lock epoch), so re-encrypting at every lock never reuses
// an IV for changed content.
func (sn *Sentry) pageIV(frame mem.PhysAddr, epoch uint64) []byte {
	var block [16]byte
	f := uint64(frame)
	for i := 0; i < 8; i++ {
		block[i] = byte(f >> (8 * i))
		block[8+i] = byte(epoch >> (8 * i))
	}
	iv := make([]byte, 16)
	sn.engine.Cipher.EncryptBlock(iv, block[:])
	return iv
}

// epochFor returns the IV epoch for an operation on frame: a decrypt must
// use the epoch the ciphertext was sealed under; an encrypt seals under
// the current epoch and records it.
func (sn *Sentry) epochFor(frame mem.PhysAddr, decrypt bool) uint64 {
	if decrypt {
		if e, ok := sn.frameEpoch[frame]; ok {
			delete(sn.frameEpoch, frame)
			return e
		}
		return sn.epoch
	}
	sn.frameEpoch[frame] = sn.epoch
	return sn.epoch
}

// cryptPage encrypts or decrypts the 4 KB at frame in place. label says why
// (SealLock, SealDemand, SealEager, SealBg) and is carried on the trace
// event so trace-derived reports can split volumes the same way Stats does.
func (sn *Sentry) cryptPage(frame mem.PhysAddr, decrypt bool, label string) {
	var page [mem.PageSize]byte
	cpu := sn.S.CPU
	startCycle := sn.S.Clock.Cycles()
	cpu.ReadPhys(frame, page[:])
	iv := sn.pageIV(frame, sn.epochFor(frame, decrypt))
	var err error
	if sn.cfg.Fidelity {
		if decrypt {
			err = sn.engine.DecryptCBC(page[:], page[:], iv)
		} else {
			err = sn.engine.EncryptCBC(page[:], page[:], iv)
		}
	} else {
		if decrypt {
			err = sn.engine.DecryptCBCBulk(page[:], page[:], iv)
		} else {
			err = sn.engine.EncryptCBCBulk(page[:], page[:], iv)
		}
	}
	if err != nil {
		panic(fmt.Sprintf("core: page crypt failed: %v", err)) // sizes are fixed; cannot happen
	}
	cpu.WritePhys(frame, page[:])
	sn.observeCrypt(frame, decrypt, label, startCycle)
}

// observeCrypt records one page seal/unseal: a latency observation and,
// when tracing is on, a PageSeal/PageUnseal event whose Arg is the cycle
// span the operation took.
func (sn *Sentry) observeCrypt(frame mem.PhysAddr, decrypt bool, label string, startCycle uint64) {
	span := sn.S.Clock.Cycles() - startCycle
	kind := obs.KindPageSeal
	if decrypt {
		kind = obs.KindPageUnseal
		sn.histUnseal.Observe(span)
	} else {
		sn.histSeal.Observe(span)
	}
	if tr := sn.S.Trace; tr != nil {
		tr.Emit(obs.Event{
			Cycle: sn.S.Clock.Cycles(),
			Kind:  kind,
			Addr:  uint64(frame),
			Size:  mem.PageSize,
			Arg:   span,
			Label: label,
		})
	}
}

// pageSafeToSkip implements the shared-page policy: a page shared with any
// non-sensitive process is assumed non-secret and left alone.
func (sn *Sentry) pageSafeToSkip(p *kernel.Process, v mmu.VirtAddr) bool {
	pte := p.AS.Lookup(v)
	if pte == nil || !pte.Shared {
		return false
	}
	for _, pid := range sn.K.SharedPeers(p, v) {
		peer := sn.K.Process(pid)
		if peer != nil && !peer.Sensitive {
			return true
		}
	}
	return false
}

// encryptOnLock is the OnLock hook: zero freed pages, then encrypt every
// sensitive process's resident pages and DMA regions, arm traps, park
// non-background processes.
func (sn *Sentry) encryptOnLock() {
	// Freed pages of sensitive apps may hold secrets; the paper eliminates
	// the risk by waiting for the zeroing thread before locking.
	if !sn.cfg.NoDrainOnLock {
		sn.K.DrainZeroQueue()
	}
	sn.epoch++

	sealed := 0
	done := map[mem.PhysAddr]bool{} // shared frames encrypt once
	for _, p := range sn.K.Processes() {
		if !p.Sensitive {
			continue
		}
		for _, v := range p.AS.Pages() {
			pte := p.AS.Lookup(v)
			if pte.Encrypted {
				continue
			}
			if sn.pageSafeToSkip(p, v) {
				sn.ctrSkipped.Inc()
				continue
			}
			frame := mem.PageBase(pte.Phys)
			if !done[frame] {
				sn.cryptPage(frame, false, SealLock)
				sn.ctrLockEnc.Add(mem.PageSize)
				done[frame] = true
				sealed++
				if sn.faults != nil {
					sn.faults.OnLockPage(sealed)
				}
			}
			sn.markEncrypted(p, v)
		}
		if !p.Background {
			p.Schedulable = false
		}
	}
	// OS subsystems registered as sensitive (keyrings, crypto contexts)
	// are sealed the same way; they have no PTEs, so unlock must decrypt
	// them eagerly.
	for _, nr := range sn.K.SensitiveKernelRanges {
		for off := uint64(0); off < nr.Size; off += mem.PageSize {
			frame := nr.Base + mem.PhysAddr(off)
			sn.cryptPage(frame, false, SealLock)
			sn.ctrLockEnc.Add(mem.PageSize)
			sn.sealedKernelFrames = append(sn.sealedKernelFrames, frame)
			sealed++
			if sn.faults != nil {
				sn.faults.OnLockPage(sealed)
			}
		}
	}
	// Push all ciphertext out and drop stale lines so nothing decrypted
	// lingers in the L2 across the locked period — masked, of course.
	if !sn.cfg.NoLockFlush {
		sn.S.L2.CleanInvalidateWays(sn.flushMask())
	}
}

// markEncrypted updates the PTE in p (and any process sharing the page) to
// encrypted-and-trapped.
func (sn *Sentry) markEncrypted(p *kernel.Process, v mmu.VirtAddr) {
	set := func(proc *kernel.Process) {
		if pte := proc.AS.Lookup(v); pte != nil {
			pte.Encrypted = true
			pte.Young = false
		}
	}
	set(p)
	for _, pid := range sn.K.SharedPeers(p, v) {
		if peer := sn.K.Process(pid); peer != nil {
			set(peer)
		}
	}
}

func (sn *Sentry) flushMask() uint32 {
	if sn.locker != nil {
		return sn.locker.FlushMask()
	}
	return sn.S.L2.AllWaysMask()
}

// onUnlock is the OnUnlock hook: end any background session, eagerly
// decrypt DMA regions, and unpark processes. Ordinary pages stay encrypted
// until first touch.
func (sn *Sentry) onUnlock() {
	sn.endBackground()
	for _, frame := range sn.sealedKernelFrames {
		sn.cryptPage(frame, true, SealEager)
		sn.ctrEagerDec.Add(mem.PageSize)
	}
	sn.sealedKernelFrames = nil
	for _, p := range sn.K.Processes() {
		if !p.Sensitive {
			continue
		}
		for _, r := range p.DMARegions {
			sn.decryptDMARegion(p, r)
		}
		p.Schedulable = true
	}
}

// decryptDMARegion eagerly decrypts a device-visible range: its consumers
// (GPU, NIC) use physical addresses and never fault.
func (sn *Sentry) decryptDMARegion(p *kernel.Process, r kernel.Range) {
	// Reverse frame→PTE index, built once per region. Walking the page list
	// per frame was O(pages) per page — quadratic across a large region.
	// Where several virtual pages map one frame, the lowest address wins,
	// matching the ascending-order walk this replaces.
	type mapping struct {
		v   mmu.VirtAddr
		pte *mmu.PTE
	}
	rev := make(map[mem.PhysAddr]mapping, p.AS.Len())
	p.AS.Range(func(v mmu.VirtAddr, pte *mmu.PTE) {
		f := mem.PageBase(pte.Phys)
		if old, ok := rev[f]; !ok || v < old.v {
			rev[f] = mapping{v, pte}
		}
	})
	for off := uint64(0); off < r.Size; off += mem.PageSize {
		frame := r.Base + mem.PhysAddr(off)
		m, ok := rev[frame]
		if !ok || !m.pte.Encrypted {
			continue
		}
		sn.cryptPage(frame, true, SealEager)
		sn.ctrEagerDec.Add(mem.PageSize)
		m.pte.Encrypted = false
		m.pte.Young = true
	}
}

// handleFault is Sentry's page-fault interposition: decrypt-on-demand for
// encrypted pages (unlocked foreground path), or locked-way page-in for an
// active background session.
func (sn *Sentry) handleFault(p *kernel.Process, f *mmu.Fault) bool {
	if f.Kind != mmu.FaultAccessFlag {
		return false
	}
	pte := p.AS.Lookup(f.Addr)
	if pte == nil || !pte.Encrypted {
		return false
	}
	if sn.bg != nil && sn.bg.proc == p && sn.K.State() != kernel.Unlocked {
		return sn.bgPageIn(p, f.Addr, pte)
	}
	if sn.K.State() != kernel.Unlocked {
		// A parked process touched an encrypted page while locked — refuse.
		return false
	}
	sn.ctrDemandFault.Inc()
	frame := mem.PageBase(pte.Phys)
	sn.cryptPage(frame, true, SealDemand)
	sn.ctrDemandDec.Add(mem.PageSize)
	pte.Encrypted = false
	pte.Young = true
	// Keep sharers consistent.
	for _, pid := range sn.K.SharedPeers(p, mmu.PageBase(f.Addr)) {
		if peer := sn.K.Process(pid); peer != nil {
			if ppte := peer.AS.Lookup(f.Addr); ppte != nil {
				ppte.Encrypted = false
				ppte.Young = true
			}
		}
	}
	return true
}

package core

import (
	"fmt"

	"sentry/internal/aes"
	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/onsoc"
	"sentry/internal/soc"
)

// Crypto API providers (§7 "Securing Persistent State"): Sentry ports AES
// On SoC into the kernel Crypto API at a higher priority than the generic
// implementation, so dm-crypt and any other legacy API user transparently
// switch to it.

// Provider priorities; higher wins.
const (
	PriorityOnSoC   = 300
	PriorityGeneric = 100
	PriorityAccel   = 50
)

// AESProvider adapts an onsoc.AES engine to the kernel Crypto API.
type AESProvider struct {
	name string
	prio int
	a    *onsoc.AES
}

// Name returns the provider name.
func (p *AESProvider) Name() string { return p.name }

// Priority returns the registry priority.
func (p *AESProvider) Priority() int { return p.prio }

// EncryptCBC encrypts via the engine's bulk path.
func (p *AESProvider) EncryptCBC(dst, src, iv []byte) error {
	return p.a.EncryptCBCBulk(dst, src, iv)
}

// DecryptCBC decrypts via the engine's bulk path.
func (p *AESProvider) DecryptCBC(dst, src, iv []byte) error {
	return p.a.DecryptCBCBulk(dst, src, iv)
}

// Engine exposes the wrapped engine.
func (p *AESProvider) Engine() *onsoc.AES { return p.a }

// Adopt rebuilds the provider over the forked SoC s2, adopting the engine
// arena that travelled with the forked memory (see onsoc.AES.Adopt). key
// must be the key the engine was built with; alloc is the fork's iRAM
// allocator (ignored for placements holding no iRAM allocation, so passing
// it unconditionally is safe). Name and priority carry over.
func (p *AESProvider) Adopt(s2 *soc.SoC, key []byte, alloc *onsoc.IRAMAlloc) (*AESProvider, error) {
	a2, err := p.a.Adopt(s2, key, alloc)
	if err != nil {
		return nil, err
	}
	return &AESProvider{name: p.name, prio: p.prio, a: a2}, nil
}

// NewOnSoCProvider wraps an AES On SoC engine as the high-priority
// "aes-onsoc" provider.
func NewOnSoCProvider(a *onsoc.AES) *AESProvider {
	return &AESProvider{name: "aes-onsoc", prio: PriorityOnSoC, a: a}
}

// NewGenericProvider builds the baseline "aes-generic" provider with its
// arena in ordinary DRAM, as a stock library would be.
func NewGenericProvider(s *soc.SoC, arena mem.PhysAddr, key []byte) (*AESProvider, error) {
	a, err := onsoc.NewGeneric(s, arena, key, false)
	if err != nil {
		return nil, err
	}
	return &AESProvider{name: "aes-generic", prio: PriorityGeneric, a: a}, nil
}

// AccelProvider is the hardware crypto engine (Nexus 4). Its state never
// touches DRAM, but its throughput collapses on 4 KB requests when the
// governor down-clocks it on device lock — the paper's Figure 11/12 result.
type AccelProvider struct {
	s *soc.SoC
	c *aes.Cipher
}

// NewAccelProvider returns the accelerator provider; the platform must have
// the hardware.
func NewAccelProvider(s *soc.SoC, key []byte) (*AccelProvider, error) {
	if !s.Prof.HasCryptoAccel {
		return nil, fmt.Errorf("core: platform %s has no crypto accelerator", s.Prof.Name)
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &AccelProvider{s: s, c: c}, nil
}

// Name returns "aes-hwaccel".
func (p *AccelProvider) Name() string { return "aes-hwaccel" }

// Priority returns the accelerator's registry priority.
func (p *AccelProvider) Priority() int { return PriorityAccel }

func (p *AccelProvider) charge(n int) {
	cy, pj := p.s.AccelEncryptCost(n)
	p.s.Clock.Advance(cy)
	p.s.Meter.Charge(pj)
}

// EncryptCBC encrypts src on the accelerator.
func (p *AccelProvider) EncryptCBC(dst, src, iv []byte) error {
	if err := p.c.EncryptCBC(dst, src, iv); err != nil {
		return err
	}
	p.charge(len(src))
	return nil
}

// DecryptCBC decrypts src on the accelerator.
func (p *AccelProvider) DecryptCBC(dst, src, iv []byte) error {
	if err := p.c.DecryptCBC(dst, src, iv); err != nil {
		return err
	}
	p.charge(len(src))
	return nil
}

// RegisterOnSoC registers Sentry's engine with the kernel Crypto API so
// every legacy API user (dm-crypt) picks it up.
func (sn *Sentry) RegisterOnSoC() *AESProvider {
	p := NewOnSoCProvider(sn.engine)
	sn.K.Crypto.Register(p)
	return p
}

var _ kernel.CipherProvider = (*AESProvider)(nil)
var _ kernel.CipherProvider = (*AccelProvider)(nil)

package core

import (
	"bytes"
	"testing"

	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/soc"
)

const pin = "4321"

func bootTegra(t *testing.T, cfg Config) (*Sentry, *kernel.Kernel, *soc.SoC) {
	t.Helper()
	s := soc.Tegra3(1)
	k := kernel.New(s, pin)
	sn, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sn, k, s
}

func bootNexus(t *testing.T) (*Sentry, *kernel.Kernel, *soc.SoC) {
	t.Helper()
	s := soc.Nexus4(1)
	k := kernel.New(s, pin)
	sn, err := New(k, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sn, k, s
}

// fillSecret writes a recognisable secret over every page of p's mapping.
func fillSecret(t *testing.T, s *soc.SoC, k *kernel.Kernel, p *kernel.Process, base mmu.VirtAddr, pages int) []byte {
	t.Helper()
	k.Switch(p)
	secret := bytes.Repeat([]byte("TOP-SECRET-EMAIL"), pages*mem.PageSize/16)
	if err := s.CPU.Store(base, secret); err != nil {
		t.Fatal(err)
	}
	return secret
}

// dramHolds reports whether the DRAM chips (after draining the unlocked
// part of the cache) contain needle anywhere in the given process frames.
func dramHolds(s *soc.SoC, p *kernel.Process, needle []byte) bool {
	buf := make([]byte, mem.PageSize)
	for _, v := range p.AS.Pages() {
		pte := p.AS.Lookup(v)
		frame := mem.PageBase(pte.Phys)
		if frame < soc.DRAMBase {
			continue
		}
		s.DRAM.Read(frame, buf)
		if bytes.Contains(buf, needle) {
			return true
		}
	}
	return false
}

func TestEncryptOnLockRemovesPlaintextFromDRAM(t *testing.T) {
	sn, k, s := bootTegra(t, Config{})
	p := k.NewProcess("twitter", true, false)
	base, _ := k.MapAnon(p, 8)
	fillSecret(t, s, k, p, base, 8)

	k.Lock()
	// Drain what the OS may legally flush, then check DRAM *and* cache.
	s.L2.CleanWays(sn.flushMask())
	if dramHolds(s, p, []byte("TOP-SECRET-EMAIL")) {
		t.Fatal("plaintext in DRAM after lock")
	}
	if sn.Stats().LockEncryptedBytes != 8*mem.PageSize {
		t.Fatalf("encrypted %d bytes", sn.Stats().LockEncryptedBytes)
	}
	if p.Schedulable {
		t.Fatal("non-background sensitive process still schedulable while locked")
	}
}

func TestNonSensitiveProcessesUntouched(t *testing.T) {
	_, k, s := bootTegra(t, Config{})
	p := k.NewProcess("calculator", false, false)
	base, _ := k.MapAnon(p, 2)
	k.Switch(p)
	_ = s.CPU.Store(base, []byte("public-data-page"))
	k.Lock()
	got := make([]byte, 16)
	frame := p.AS.Lookup(base).Phys
	s.L2.CleanWays(s.L2.AllWaysMask())
	s.DRAM.Read(frame, got)
	if !bytes.Equal(got, []byte("public-data-page")) {
		t.Fatal("non-sensitive pages must not be encrypted")
	}
	if !p.Schedulable {
		t.Fatal("non-sensitive process parked")
	}
}

func TestDecryptOnDemandAfterUnlock(t *testing.T) {
	sn, k, s := bootTegra(t, Config{})
	p := k.NewProcess("maps", true, false)
	base, _ := k.MapAnon(p, 4)
	secret := fillSecret(t, s, k, p, base, 4)

	k.Lock()
	if err := k.Unlock(pin); err != nil {
		t.Fatal(err)
	}
	// Nothing decrypted yet — laziness.
	if sn.Stats().DemandDecryptedBytes != 0 {
		t.Fatal("unlock decrypted eagerly")
	}
	// First touch decrypts exactly the touched page.
	k.Switch(p)
	got := make([]byte, 16)
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret[:16]) {
		t.Fatalf("decrypted data wrong: %q", got)
	}
	st := sn.Stats()
	if st.DemandDecryptedBytes != mem.PageSize || st.DemandFaults != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Reading the rest of the process decrypts the remaining pages.
	full := make([]byte, 4*mem.PageSize)
	if err := s.CPU.Load(base, full); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, secret) {
		t.Fatal("full decrypt mismatch")
	}
	if sn.Stats().DemandDecryptedBytes != 4*mem.PageSize {
		t.Fatal("wrong demand-decrypt volume")
	}
}

func TestLockUnlockRoundTripPreservesEveryByte(t *testing.T) {
	for _, fidelity := range []bool{false, true} {
		sn, k, s := bootTegra(t, Config{Fidelity: fidelity})
		p := k.NewProcess("app", true, false)
		pages := 3
		if fidelity {
			pages = 1 // fidelity mode simulates every access; keep it small
		}
		base, _ := k.MapAnon(p, pages)
		k.Switch(p)
		want := make([]byte, pages*mem.PageSize)
		s.RNG.Read(want)
		if err := s.CPU.Store(base, want); err != nil {
			t.Fatal(err)
		}
		k.Lock()
		_ = k.Unlock(pin)
		k.Switch(p)
		got := make([]byte, len(want))
		if err := s.CPU.Load(base, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("fidelity=%v: data corrupted by lock/unlock", fidelity)
		}
		_ = sn
	}
}

func TestParkedProcessCannotTouchEncryptedPagesWhileLocked(t *testing.T) {
	_, k, s := bootTegra(t, Config{})
	p := k.NewProcess("twitter", true, false)
	base, _ := k.MapAnon(p, 1)
	fillSecret(t, s, k, p, base, 1)
	k.Lock()
	k.Switch(p)
	if err := s.CPU.Load(base, make([]byte, 16)); err == nil {
		t.Fatal("encrypted page readable while locked without a background session")
	}
}

func TestDMARegionsDecryptedEagerlyOnUnlock(t *testing.T) {
	sn, k, s := bootTegra(t, Config{})
	p := k.NewProcess("maps", true, false)
	vbase, r, err := k.MapDMA(p, 4) // a 16 KB GPU buffer
	if err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	want := bytes.Repeat([]byte("GPU-SURFACE-DATA"), 4*mem.PageSize/16)
	if err := s.CPU.Store(vbase, want); err != nil {
		t.Fatal(err)
	}
	k.Lock()
	_ = k.Unlock(pin)
	// The device reads the region physically, without faulting, right now.
	s.L2.CleanWays(s.L2.AllWaysMask())
	got := make([]byte, r.Size)
	s.DRAM.Read(r.Base, got)
	if !bytes.Equal(got, want) {
		t.Fatal("DMA region not eagerly decrypted at unlock")
	}
	if sn.Stats().EagerDecryptedBytes != r.Size {
		t.Fatalf("eager bytes = %d", sn.Stats().EagerDecryptedBytes)
	}
}

func TestSharedWithNonSensitiveSkipped(t *testing.T) {
	sn, k, s := bootTegra(t, Config{})
	sens := k.NewProcess("mail", true, false)
	plain := k.NewProcess("keyboard", false, false)
	base, _ := k.MapAnon(sens, 2)
	if err := k.SharePage(sens, base, plain); err != nil {
		t.Fatal(err)
	}
	fillSecret(t, s, k, sens, base, 1)
	k.Lock()
	if sn.Stats().SkippedSharedPages != 1 {
		t.Fatalf("skipped = %d, want 1", sn.Stats().SkippedSharedPages)
	}
	// The shared page is left plaintext (the paper's policy: shared with a
	// non-sensitive app ⇒ assumed non-secret).
	if sens.AS.Lookup(base).Encrypted {
		t.Fatal("shared page was encrypted")
	}
	// The private second page must be encrypted.
	if !sens.AS.Lookup(base + mem.PageSize).Encrypted {
		t.Fatal("private page not encrypted")
	}
}

func TestSharedBetweenSensitiveEncryptedOnce(t *testing.T) {
	sn, k, s := bootTegra(t, Config{})
	a := k.NewProcess("a", true, false)
	b := k.NewProcess("b", true, false)
	base, _ := k.MapAnon(a, 1)
	if err := k.SharePage(a, base, b); err != nil {
		t.Fatal(err)
	}
	fillSecret(t, s, k, a, base, 1)
	k.Lock()
	if sn.Stats().LockEncryptedBytes != mem.PageSize {
		t.Fatalf("shared frame encrypted %d bytes worth — double encryption?",
			sn.Stats().LockEncryptedBytes)
	}
	if !a.AS.Lookup(base).Encrypted || !b.AS.Lookup(base).Encrypted {
		t.Fatal("both mappings must be marked encrypted")
	}
	// Unlock and read via b: must decrypt correctly and update a's view.
	_ = k.Unlock(pin)
	k.Switch(b)
	got := make([]byte, 16)
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("TOP-SECRET-EMAIL")) {
		t.Fatal("shared page decrypt failed")
	}
	if a.AS.Lookup(base).Encrypted {
		t.Fatal("sharer's PTE still marked encrypted")
	}
}

func TestFreedPagesZeroedBeforeLock(t *testing.T) {
	_, k, s := bootTegra(t, Config{})
	p := k.NewProcess("app", true, false)
	base, _ := k.MapAnon(p, 2)
	frame := p.AS.Lookup(base).Phys
	fillSecret(t, s, k, p, base, 1)
	s.L2.CleanWays(s.L2.AllWaysMask())
	k.UnmapAndFree(p, base)
	k.Lock()
	// The freed frame must have been zeroed by the pre-lock drain.
	buf := make([]byte, mem.PageSize)
	s.DRAM.Read(frame, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("freed page not zeroed before lock")
		}
	}
	if k.PendingZeroBytes() != 0 {
		t.Fatal("zero queue not drained at lock")
	}
}

func TestVolatileKeyLivesInIRAMOnly(t *testing.T) {
	sn, _, s := bootTegra(t, Config{})
	key := sn.Keys().VolatileKey()
	if len(key) != VolatileKeySize {
		t.Fatal("key size wrong")
	}
	addr := sn.Keys().VolatileKeyAddr()
	if addr < soc.IRAMBase || addr >= soc.DRAMBase {
		t.Fatal("volatile key not in iRAM")
	}
	// DMA cannot read it (TrustZone shield on Tegra).
	if _, err := s.DMA.ReadFromMem(addr, VolatileKeySize); err == nil {
		t.Fatal("DMA read the volatile key")
	}
	// And DRAM must not contain it anywhere it was put by us.
	s.L2.CleanWays(s.L2.AllWaysMask())
	touched := s.DRAM.Store().TouchedPages()
	buf := make([]byte, mem.PageSize)
	for _, off := range touched {
		s.DRAM.Store().Read(off, buf)
		if bytes.Contains(buf, key) {
			t.Fatal("volatile key found in DRAM")
		}
	}
}

func TestPersistentKeyDerivation(t *testing.T) {
	sn, _, _ := bootTegra(t, Config{})
	k1, err := sn.Keys().DerivePersistentKey("hunter2")
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := sn.Keys().DerivePersistentKey("hunter2")
	if !bytes.Equal(k1, k2) {
		t.Fatal("KDF not deterministic")
	}
	k3, _ := sn.Keys().DerivePersistentKey("hunter3")
	if bytes.Equal(k1, k3) {
		t.Fatal("different passwords produced the same key")
	}
	// A different device (different fuse) derives a different key.
	s2 := soc.Tegra3(2)
	k2nd := kernel.New(s2, pin)
	sn2, _ := New(k2nd, Config{})
	other, _ := sn2.Keys().DerivePersistentKey("hunter2")
	if bytes.Equal(k1, other) {
		t.Fatal("two devices derived the same persistent key")
	}
}

func TestPersistentKeyRequiresSecureWorld(t *testing.T) {
	sn, _, _ := bootNexus(t)
	if _, err := sn.Keys().DerivePersistentKey("pw"); err == nil {
		t.Fatal("locked-firmware device derived a persistent key")
	}
}

func TestNexusConfigurationWorks(t *testing.T) {
	// The Nexus prototype: iRAM engine, no cache locking, no background.
	sn, k, s := bootNexus(t)
	if sn.Locker() != nil {
		t.Fatal("Nexus must not have a way locker")
	}
	p := k.NewProcess("contacts", true, false)
	base, _ := k.MapAnon(p, 2)
	secret := fillSecret(t, s, k, p, base, 2)
	k.Lock()
	s.L2.CleanWays(s.L2.AllWaysMask())
	if dramHolds(s, p, secret[:16]) {
		t.Fatal("plaintext in DRAM after lock on Nexus")
	}
	_ = k.Unlock(pin)
	k.Switch(p)
	got := make([]byte, len(secret))
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("round trip failed on Nexus")
	}
}

func TestLockedWayEngineConfig(t *testing.T) {
	sn, k, s := bootTegra(t, Config{EngineInLockedWay: true})
	if sn.Locker().LockedMask() == 0 {
		t.Fatal("engine-in-locked-way did not lock a way")
	}
	p := k.NewProcess("app", true, false)
	base, _ := k.MapAnon(p, 1)
	want := fillSecret(t, s, k, p, base, 1)
	k.Lock()
	_ = k.Unlock(pin)
	k.Switch(p)
	got := make([]byte, len(want))
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("locked-way engine round trip failed")
	}
	// Nexus cannot use this config.
	s2 := soc.Nexus4(1)
	if _, err := New(kernel.New(s2, pin), Config{EngineInLockedWay: true}); err == nil {
		t.Fatal("Nexus accepted a locked-way engine")
	}
}

func TestEpochChangesCiphertextAcrossLocks(t *testing.T) {
	_, k, s := bootTegra(t, Config{})
	p := k.NewProcess("app", true, false)
	base, _ := k.MapAnon(p, 1)
	fillSecret(t, s, k, p, base, 1)
	frame := p.AS.Lookup(base).Phys

	k.Lock()
	s.L2.CleanWays(s.L2.AllWaysMask())
	ct1 := make([]byte, mem.PageSize)
	s.DRAM.Read(frame, ct1)
	_ = k.Unlock(pin)
	k.Switch(p)
	_ = s.CPU.Load(base, make([]byte, 1)) // decrypt

	k.Lock()
	s.L2.CleanWays(s.L2.AllWaysMask())
	ct2 := make([]byte, mem.PageSize)
	s.DRAM.Read(frame, ct2)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("same ciphertext across lock epochs: IVs reused")
	}
}

func TestRegisterOnSoCWinsCryptoAPI(t *testing.T) {
	sn, k, s := bootTegra(t, Config{})
	generic, err := NewGenericProvider(s, soc.DRAMBase+0x100000, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	k.Crypto.Register(generic)
	sn.RegisterOnSoC()
	best, err := k.Crypto.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Name() != "aes-onsoc" {
		t.Fatalf("best provider = %s", best.Name())
	}
}

func TestAccelProviderOnlyOnNexus(t *testing.T) {
	sTegra := soc.Tegra3(1)
	if _, err := NewAccelProvider(sTegra, make([]byte, 16)); err == nil {
		t.Fatal("Tegra accepted an accel provider")
	}
	sNexus := soc.Nexus4(1)
	p, err := NewAccelProvider(sNexus, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	c0 := sNexus.Clock.Cycles()
	if err := p.EncryptCBC(dst, src, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if sNexus.Clock.Cycles() == c0 {
		t.Fatal("accelerator charged no time")
	}
	back := make([]byte, 4096)
	if err := p.DecryptCBC(back, dst, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, src) {
		t.Fatal("accel round trip failed")
	}
	if p.Name() == "" || p.Priority() == 0 {
		t.Fatal("provider metadata missing")
	}
}

func TestUntouchedPageSurvivesMultipleLockEpochs(t *testing.T) {
	// Regression: a page that stays encrypted across several lock/unlock
	// cycles must decrypt with the IV of the epoch that sealed it.
	_, k, s := bootTegra(t, Config{})
	p := k.NewProcess("app", true, false)
	base, _ := k.MapAnon(p, 2)
	secret := fillSecret(t, s, k, p, base, 2)

	k.Lock() // epoch 1: both pages sealed
	_ = k.Unlock(pin)
	// Touch only page 0; page 1 keeps epoch-1 ciphertext.
	k.Switch(p)
	_ = s.CPU.Load(base, make([]byte, 16))
	k.Lock() // epoch 2: page 0 re-sealed, page 1 skipped
	_ = k.Unlock(pin)
	k.Switch(p)
	got := make([]byte, 2*mem.PageSize)
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("stale-epoch page corrupted on decrypt")
	}
}

func TestFreedPageZeroingDropsStaleCacheLines(t *testing.T) {
	// Regression: the zeroing thread clears the DRAM frame, but plaintext
	// may still sit in dirty cache lines; a later (legal) clean must not
	// resurrect it.
	_, k, s := bootTegra(t, Config{})
	p := k.NewProcess("app", true, false)
	base, _ := k.MapAnon(p, 1)
	frame := p.AS.Lookup(base).Phys
	fillSecret(t, s, k, p, base, 1) // plaintext now dirty in L2
	k.UnmapAndFree(p, base)
	k.DrainZeroQueue()
	s.L2.CleanWays(s.L2.AllWaysMask()) // buggy-free write-back opportunity
	buf := make([]byte, mem.PageSize)
	s.DRAM.Read(frame, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("stale cache line resurrected freed-page plaintext")
		}
	}
}

func TestKernelSubsystemProtection(t *testing.T) {
	// The paper's title covers "applications and OS components": a kernel
	// keyring region registered as sensitive is sealed at lock and eagerly
	// restored at unlock (kernel code cannot take young-bit faults).
	sn, k, s := bootTegra(t, Config{})
	frames, err := k.Pages().AllocContig(2)
	if err != nil {
		t.Fatal(err)
	}
	keyring := bytes.Repeat([]byte("KERNEL-KEYRING!!"), mem.PageSize/16)
	s.CPU.WritePhys(frames, keyring)
	k.RegisterSensitiveKernelRange("keyring", kernel.Range{Base: frames, Size: 2 * mem.PageSize})

	k.Lock()
	s.L2.CleanWays(sn.flushMask())
	buf := make([]byte, mem.PageSize)
	s.DRAM.Read(frames, buf)
	if bytes.Contains(buf, []byte("KERNEL-KEYRING!!")) {
		t.Fatal("kernel subsystem plaintext in DRAM while locked")
	}
	if err := k.Unlock(pin); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, mem.PageSize)
	s.CPU.ReadPhys(frames, got)
	if !bytes.Equal(got, keyring) {
		t.Fatal("kernel subsystem not restored at unlock")
	}
	// Survives repeated cycles.
	k.Lock()
	_ = k.Unlock(pin)
	s.CPU.ReadPhys(frames, got)
	if !bytes.Equal(got, keyring) {
		t.Fatal("kernel subsystem corrupted on second cycle")
	}
}

func TestSuspendWhileLockedKeepsSecretsSafe(t *testing.T) {
	// §7 "Secure On Suspend": the common path is lock → suspend → wake on
	// event → background work → user unlock. Sentry's masked flush hook
	// must keep locked ways intact across the suspend.
	sn, k, s := bootTegra(t, Config{})
	p := k.NewProcess("mail", true, true)
	base, _ := k.MapAnon(p, 4)
	secret := fillSecret(t, s, k, p, base, 4)
	k.Lock()
	k.Suspend()
	k.Wake(kernel.WakeIncomingCall)
	if err := sn.BeginBackground(p, 128); err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	got := make([]byte, 32)
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	// Suspend again mid-session: the kernel flush must skip locked ways.
	k.Suspend()
	k.Wake(kernel.WakeTimer)
	if err := s.CPU.Load(base+mem.PageSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret[mem.PageSize:mem.PageSize+32]) {
		t.Fatal("suspend destroyed locked-way state")
	}
	_ = k.Unlock(pin)
	k.Switch(p)
	full := make([]byte, len(secret))
	if err := s.CPU.Load(base, full); err != nil || !bytes.Equal(full, secret) {
		t.Fatal("data lost across suspend cycles")
	}
}

// TestRekeyBeforeSealOnly: a fresh boot can swap the volatile root key (the
// fleet stamps per-device keys onto forked base images this way) and the
// engine follows — pages sealed after the rekey decrypt correctly. Once
// anything is sealed under a key, rekeying is refused: those pages would be
// garbage under the new schedule.
func TestRekeyBeforeSealOnly(t *testing.T) {
	sn, k, s := bootTegra(t, Config{})
	newKey := bytes.Repeat([]byte{0xA5, 0x3C}, VolatileKeySize/2)
	if err := sn.Rekey(newKey); err != nil {
		t.Fatalf("rekey on a fresh boot: %v", err)
	}
	if got := sn.Keys().VolatileKey(); !bytes.Equal(got, newKey) {
		t.Fatalf("volatile key after rekey = %x, want %x", got, newKey)
	}
	if err := sn.Rekey(newKey[:5]); err == nil {
		t.Fatal("rekey accepted a short key")
	}

	// Full seal/unseal round trip under the new key.
	p := k.NewProcess("mail", true, false)
	base, _ := k.MapAnon(p, 2)
	secret := fillSecret(t, s, k, p, base, 2)
	k.Lock()
	if dramHolds(s, p, []byte("TOP-SECRET-EMAIL")) {
		t.Fatal("plaintext in DRAM after lock under rekeyed root")
	}
	if err := sn.Rekey(newKey); err == nil {
		t.Fatal("rekey succeeded with sealed pages outstanding")
	}
	if err := k.Unlock(pin); err != nil {
		t.Fatal(err)
	}
	k.Switch(p)
	got := make([]byte, len(secret))
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("secret corrupted across a seal cycle under the rekeyed root")
	}
}

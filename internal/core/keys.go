package core

import (
	"fmt"

	"sentry/internal/aes"
	"sentry/internal/mem"
	"sentry/internal/obs"
	"sentry/internal/onsoc"
	"sentry/internal/soc"
	"sentry/internal/tz"
)

// KeyStore manages Sentry's two root keys (§7 "Bootstrapping"):
//
//   - The volatile key encrypts sensitive applications' memory pages. It is
//     regenerated at every boot, lives only in iRAM, and — where TrustZone
//     is available — its iRAM home is shielded from DMA.
//   - The persistent key encrypts on-disk state (dm-crypt). It is derived
//     from a boot-time password and the device-unique secret fuse readable
//     only inside the TrustZone secure world.
type KeyStore struct {
	s       *soc.SoC
	volAddr mem.PhysAddr
}

// VolatileKeySize is the AES-128 volatile root key size.
const VolatileKeySize = 16

// NewKeyStore generates the volatile key into freshly allocated iRAM and
// applies the TrustZone DMA shield when the platform allows it.
func NewKeyStore(s *soc.SoC, iram *onsoc.IRAMAlloc) (*KeyStore, error) {
	addr, err := iram.Alloc(VolatileKeySize)
	if err != nil {
		return nil, fmt.Errorf("core: no iRAM for volatile key: %w", err)
	}
	key := make([]byte, VolatileKeySize)
	s.RNG.Read(key)
	s.CPU.WritePhys(addr, key)

	if s.TZ.Available() {
		err := s.TZ.WithSecure(func() error {
			return s.TZ.Protect(tz.Region{Base: addr, Size: VolatileKeySize, NoDMA: true})
		})
		if err != nil {
			return nil, err
		}
	}
	if s.Trace != nil {
		s.Trace.Emit(obs.Event{
			Cycle: s.Clock.Cycles(), Kind: obs.KindKeyDerive,
			Addr: uint64(addr), Size: VolatileKeySize, Label: "volatile",
		})
	}
	return &KeyStore{s: s, volAddr: addr}, nil
}

// clone returns a key store over the forked SoC. The key bytes themselves
// travel with the forked iRAM; nothing is generated or written.
func (k *KeyStore) clone(s2 *soc.SoC) *KeyStore {
	return &KeyStore{s: s2, volAddr: k.volAddr}
}

// peekKey reads the volatile key directly from the backing device, without
// charging simulated time — for host-side orchestration (world forking),
// where a CPU read would make the clone's clock diverge from its parent.
func (k *KeyStore) peekKey() []byte {
	key := make([]byte, VolatileKeySize)
	k.s.IRAM.Read(k.volAddr, key)
	return key
}

// VolatileKey reads the volatile root key from its iRAM home (an on-SoC
// access; nothing crosses the bus).
func (k *KeyStore) VolatileKey() []byte {
	key := make([]byte, VolatileKeySize)
	k.s.CPU.ReadPhys(k.volAddr, key)
	return key
}

// Rekey replaces the volatile root key in its iRAM home. The caller owns
// the consequences: pages sealed under the old key become undecryptable, so
// Sentry.Rekey (the only intended caller) refuses once anything is sealed.
func (k *KeyStore) Rekey(key []byte) error {
	if len(key) != VolatileKeySize {
		return fmt.Errorf("core: rekey wants %d key bytes, got %d", VolatileKeySize, len(key))
	}
	k.s.CPU.WritePhys(k.volAddr, key)
	if k.s.Trace != nil {
		k.s.Trace.Emit(obs.Event{
			Cycle: k.s.Clock.Cycles(), Kind: obs.KindKeyDerive,
			Addr: uint64(k.volAddr), Size: VolatileKeySize, Label: "volatile-rekey",
		})
	}
	return nil
}

// VolatileKeyAddr returns the key's iRAM address (attack tests aim here).
func (k *KeyStore) VolatileKeyAddr() mem.PhysAddr { return k.volAddr }

// Zeroize destroys the volatile root key in place. Sentry runs it when the
// device deep-locks: no unlock path out of DeepLocked exists short of a
// power cycle, which regenerates the key anyway, so keeping the key around
// only widens the attack window. Idempotent.
func (k *KeyStore) Zeroize() {
	zero := make([]byte, VolatileKeySize)
	k.s.CPU.WritePhys(k.volAddr, zero)
	if k.s.Trace != nil {
		k.s.Trace.Emit(obs.Event{
			Cycle: k.s.Clock.Cycles(), Kind: obs.KindKeyZeroize,
			Addr: uint64(k.volAddr), Size: VolatileKeySize, Label: "volatile",
		})
	}
}

// DerivePersistentKey derives the dm-crypt root key from the boot password
// and the secure fuse. It must run with secure-world access; on locked-
// firmware devices it returns tz.ErrSecureOnly (the paper implemented this
// path but could integrate it only where TrustZone was reachable).
func (k *KeyStore) DerivePersistentKey(password string) ([]byte, error) {
	var fuse [tz.FuseSize]byte
	err := k.s.TZ.WithSecure(func() error {
		var err error
		fuse, err = k.s.TZ.ReadFuse()
		return err
	})
	if err != nil {
		return nil, err
	}
	// KDF: CBC-MAC of the password under the fuse's first half, whitened
	// with the second half. Deterministic per (device, password); built
	// from the same from-scratch AES as everything else.
	c, err := aes.NewCipher(fuse[:16])
	if err != nil {
		return nil, err
	}
	mac := make([]byte, aes.BlockSize)
	buf := []byte(password)
	for len(buf) > 0 {
		var blk [aes.BlockSize]byte
		n := copy(blk[:], buf)
		buf = buf[n:]
		for i := range mac {
			mac[i] ^= blk[i]
		}
		c.Encrypt(mac, mac)
	}
	for i := range mac {
		mac[i] ^= fuse[16+i]
	}
	if k.s.Trace != nil {
		k.s.Trace.Emit(obs.Event{
			Cycle: k.s.Clock.Cycles(), Kind: obs.KindKeyDerive,
			Size: uint64(len(mac)), Label: "persistent",
		})
	}
	return mac, nil
}

package snapshot

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sentry/internal/mem"
)

// The full-world soundness properties (cold boot vs fork byte-equality,
// parent/sibling isolation across the whole SoC/kernel/Sentry stack) live in
// internal/check/fork_test.go, next to the consumer that depends on them.
// The tests here pin the orchestration contract of this package itself on
// the smallest real Forkable — a copy-on-write mem.Store.

// fillPattern writes a deterministic, offset-dependent byte pattern.
func fillPattern(s *mem.Store, tag byte) {
	var page [mem.PageSize]byte
	for pn := uint64(0); pn*mem.PageSize < s.Size(); pn++ {
		for i := range page {
			page[i] = tag ^ byte(pn) ^ byte(i)
		}
		s.Write(pn*mem.PageSize, page[:])
	}
}

func checkPattern(s *mem.Store, tag byte) error {
	var page [mem.PageSize]byte
	var want [mem.PageSize]byte
	for pn := uint64(0); pn*mem.PageSize < s.Size(); pn++ {
		s.Read(pn*mem.PageSize, page[:])
		for i := range want {
			want[i] = tag ^ byte(pn) ^ byte(i)
		}
		if !bytes.Equal(page[:], want[:]) {
			return fmt.Errorf("page %d does not hold pattern %#x", pn, tag)
		}
	}
	return nil
}

// TestCaptureKeepsOriginalLive proves Capture parks an immutable copy: the
// captured world keeps running, and no mutation after the capture point —
// by the original or by forks — leaks into later forks.
func TestCaptureKeepsOriginalLive(t *testing.T) {
	s := mem.NewStore(16 * mem.PageSize)
	fillPattern(s, 0x5A)
	snap := Capture(s)

	// The original stays writable and diverges freely.
	fillPattern(s, 0xC3)
	if err := checkPattern(s, 0xC3); err != nil {
		t.Fatalf("original after capture: %v", err)
	}

	// A fork sees the capture-point state, not the divergence.
	f1 := snap.Fork()
	if err := checkPattern(f1, 0x5A); err != nil {
		t.Fatalf("first fork: %v", err)
	}

	// A fork's own writes stay private to it.
	fillPattern(f1, 0x17)
	f2 := snap.Fork()
	if err := checkPattern(f2, 0x5A); err != nil {
		t.Fatalf("sibling fork saw f1's writes: %v", err)
	}
}

// TestConcurrentForks hammers Snapshot.Fork from many goroutines under the
// race detector: the first fork seals the parked store, later forks are pure
// reads, and every fork must independently hold the captured bytes.
func TestConcurrentForks(t *testing.T) {
	s := mem.NewStore(16 * mem.PageSize)
	fillPattern(s, 0x5A)
	snap := Capture(s)

	const forkers = 8
	var wg sync.WaitGroup
	errs := make([]error, forkers)
	for g := 0; g < forkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				f := snap.Fork()
				if err := checkPattern(f, 0x5A); err != nil {
					errs[g] = fmt.Errorf("fork %d/%d: %v", g, i, err)
					return
				}
				fillPattern(f, byte(g)) // private writes must not race
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAdoptHandsOffInPlace proves Adopt parks the world itself (no upfront
// fork): the first Fork continues from the adopted state, later mutation of
// one fork never reaches its siblings, and the hand-off is O(1) — adopting
// never touches page contents.
func TestAdoptHandsOffInPlace(t *testing.T) {
	s := mem.NewStore(16 * mem.PageSize)
	fillPattern(s, 0x42)
	snap := Adopt(s)
	// Contract: s belongs to the snapshot now; only forks are used below.

	f1 := snap.Fork()
	if err := checkPattern(f1, 0x42); err != nil {
		t.Fatalf("first fork of adopted world: %v", err)
	}
	fillPattern(f1, 0x99) // diverge the hydrated copy

	f2 := snap.Fork()
	if err := checkPattern(f2, 0x42); err != nil {
		t.Fatalf("second fork saw a sibling's writes: %v", err)
	}
	if err := checkPattern(f1, 0x99); err != nil {
		t.Fatalf("diverged fork lost its writes: %v", err)
	}
}

// TestHandOffTakesParkedWorld proves HandOff returns the parked world itself
// (the O(1) last-consumer path): state is the capture-point state, the
// snapshot is spent afterwards, and a racing second HandOff loses cleanly.
func TestHandOffTakesParkedWorld(t *testing.T) {
	s := mem.NewStore(8 * mem.PageSize)
	fillPattern(s, 0x33)
	snap := Adopt(s)

	f := snap.Fork() // one ordinary consumer first
	if err := checkPattern(f, 0x33); err != nil {
		t.Fatalf("fork before hand-off: %v", err)
	}
	if got := snap.Forks(); got != 1 {
		t.Fatalf("Forks() = %d, want 1", got)
	}

	w, ok := snap.HandOff()
	if !ok {
		t.Fatal("first HandOff refused")
	}
	if w != s {
		t.Fatal("HandOff returned a copy, not the adopted world itself")
	}
	if err := checkPattern(w, 0x33); err != nil {
		t.Fatalf("handed-off world: %v", err)
	}

	if _, ok := snap.HandOff(); ok {
		t.Fatal("second HandOff of a spent snapshot succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Fork of a spent snapshot did not panic")
		}
	}()
	snap.Fork()
}

// TestConcurrentHandOff: exactly one of many racing HandOff calls wins; the
// rest see ok == false. Run under -race this also pins the locking contract.
func TestConcurrentHandOff(t *testing.T) {
	s := mem.NewStore(2 * mem.PageSize)
	snap := Adopt(s)
	const racers = 8
	wins := make([]bool, racers)
	var wg sync.WaitGroup
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, wins[g] = snap.HandOff()
		}(g)
	}
	wg.Wait()
	n := 0
	for _, w := range wins {
		if w {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d HandOff winners, want exactly 1", n)
	}
}

// Adopt→Fork→Adopt chains (the fleet's park/hydrate/park cycle) preserve
// state across arbitrarily many generations.
func TestAdoptChain(t *testing.T) {
	s := mem.NewStore(4 * mem.PageSize)
	fillPattern(s, 0x01)
	snap := Adopt(s)
	for gen := byte(2); gen < 8; gen++ {
		w := snap.Fork()
		if err := checkPattern(w, gen-1); err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		fillPattern(w, gen)
		snap = Adopt(w)
	}
	if err := checkPattern(snap.Fork(), 7); err != nil {
		t.Fatalf("final generation: %v", err)
	}
}

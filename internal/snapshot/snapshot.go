// Package snapshot provides deterministic checkpoint/fork for simulated
// worlds: capture the complete state of a booted platform once, then stamp
// out independent, byte-identical copies in O(touched metadata) instead of
// re-running the boot sequence.
//
// The heavy lifting lives in the layers being captured — every component
// from mem.Store (copy-on-write page sharing) up through soc.SoC.Fork,
// kernel.Kernel.Clone, and core.Sentry.Clone knows how to clone itself with
// its deterministic streams (clock, energy meter, RNG position) intact.
// This package contributes the orchestration contract:
//
//   - Capture parks a fork of the world as an immutable snapshot. The
//     original world stays live and mutable; the parked copy is never
//     touched again.
//   - Snapshot.Fork clones the parked copy. Because the parked world's
//     memory stores are sealed (frozen base layer, no private pages),
//     forking is a pure read of the snapshot and is safe from multiple
//     goroutines — the parallel bench harness forks one post-boot snapshot
//     per platform concurrently.
//
// Soundness contract, enforced by the property tests in this package (store
// level) and in internal/check/fork_test.go (full worlds): a
// forked world must replay any operation sequence byte-identically to a
// world that reached the capture point by cold boot, and mutations applied
// to one fork must never become visible to the parent, the snapshot, or
// sibling forks.
package snapshot

import (
	"sync"
	"sync/atomic"
)

// Forkable is a world that can produce an independent deep copy of itself.
// Fork must leave the receiver replayable (sealing shared memory is allowed;
// observable state must not change).
type Forkable[W any] interface {
	Fork() W
}

// Snapshot is an immutable checkpoint of a world. Create with Capture; stamp
// out copies with Fork; a sole remaining consumer may take the parked world
// itself with HandOff instead of paying for a final fork.
type Snapshot[W Forkable[W]] struct {
	mu     sync.Mutex
	parked W
	spent  bool
	forks  atomic.Uint64
}

// Capture checkpoints w. The world keeps running afterwards — its memory
// pages are sealed into a shared copy-on-write base, and an immutable parked
// clone is retained as the snapshot.
func Capture[W Forkable[W]](w W) *Snapshot[W] {
	return &Snapshot[W]{parked: w.Fork()}
}

// Adopt parks w itself as the snapshot, without forking first. It is the
// O(1) hand-off the fleet's eviction path uses: the owner stops driving the
// world and surrenders it to the snapshot in place, paying the fork cost
// only if the device is ever re-hydrated. The caller must never touch w
// again — the snapshot now owns it (Capture, by contrast, leaves the
// original live).
func Adopt[W Forkable[W]](w W) *Snapshot[W] {
	return &Snapshot[W]{parked: w}
}

// Deflater is a world that can re-encode its heavyweight state as a delta
// against a frozen base world of type B, retaining only what diverged.
// Deflate returns an estimate of the bytes still held privately; after it,
// the world must never execute again — Fork (which reconstructs dense
// state) and release are the only legal operations.
type Deflater[W, B any] interface {
	Forkable[W]
	Deflate(base B) int64
}

// CaptureDelta parks w as a delta snapshot encoded against base: w is
// deflated in place — merged copy-on-write page maps give way to the base's
// shared maps plus the diverged pages, dense cache arrays to a sparse line
// delta — and then adopted, so a parked device costs O(divergence from
// base) instead of O(everything it ever touched). The caller must never
// touch w again (as with Adopt), and base must be frozen for concurrent
// reads (e.g. Device.FreezeBase). Hydrate with ForkFromDelta. The returned
// byte count is the delta's estimated resting cost, for parked-bytes
// accounting.
func CaptureDelta[W Deflater[W, B], B any](w W, base B) (*Snapshot[W], int64) {
	n := w.Deflate(base)
	return Adopt(w), n
}

// ForkFromDelta hydrates a world from a delta snapshot taken by
// CaptureDelta. It is Fork by another name — the deflated world's own Fork
// reconstructs a dense, fully independent copy from base+delta — but spelled
// separately so call sites say which encoding they expect; it works (as a
// plain fork) on full snapshots too. The snapshot stays parked and may be
// hydrated again.
func (s *Snapshot[W]) ForkFromDelta() W { return s.Fork() }

// Fork returns an independent world continuing from the captured state.
// Safe for concurrent use: the first fork of the parked copy seals its
// (already base-only) stores, and the mutex serialises that with any
// concurrent fork; every fork after that is a pure read. Forking a snapshot
// whose world was taken by HandOff is a programming error and panics.
func (s *Snapshot[W]) Fork() W {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spent {
		panic("snapshot: Fork of a handed-off snapshot")
	}
	s.forks.Add(1)
	return s.parked.Fork()
}

// HandOff surrenders the parked world itself to the caller — the inverse of
// Adopt, and O(1) where Fork pays for a clone. It is the last-consumer fast
// path of ref-counted snapshot trees: a node about to serve its final child
// has no future readers, so the child may drive the parked world directly.
// After a successful HandOff the snapshot is spent: further HandOff calls
// return ok == false and Fork panics.
func (s *Snapshot[W]) HandOff() (w W, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spent {
		var zero W
		return zero, false
	}
	s.spent = true
	return s.parked, true
}

// Forks reports how many worlds have been forked from this snapshot — the
// "snapshot hit" half of the explorer's hit-vs-replay coverage metric.
func (s *Snapshot[W]) Forks() uint64 { return s.forks.Load() }

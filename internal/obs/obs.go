// Package obs is the simulator's observability substrate: a bounded
// ring-buffer event trace plus a metrics registry, both zero-dependency
// and safe (cheap) to leave disabled.
//
// The design goal is that a *nil* Tracer, Counter, Gauge or Histogram is a
// valid, near-zero-cost no-op, so hot paths in the hardware simulation can
// unconditionally call Emit/Add without branching on an "enabled" flag at
// every call site. All methods are nil-receiver-safe.
//
// Events are fixed-size records keyed to the simulated clock, not wall
// time; together with the deterministic RNG this keeps traces reproducible
// run-to-run for a given seed.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a trace event. Kinds are stable small integers so a
// bitmask can filter them; String() gives the wire name used by sinks.
type Kind uint8

// Event kinds. Keep in sync with kindNames.
const (
	KindBusTxn      Kind = iota // a bus read/write crossing the SoC boundary
	KindCacheLock               // an L2 way entered lockdown
	KindCacheUnlock             // an L2 way left lockdown
	KindPageSeal                // a DRAM page was encrypted in place
	KindPageUnseal              // a DRAM page was decrypted in place
	KindKeyDerive               // a key was generated or derived
	KindKeyZeroize              // key material was destroyed
	KindIRQMask                 // interrupts masked (Arg=1) or unmasked (Arg=0)
	KindDMAXfer                 // a DMA transfer (Arg=1 means denied)
	KindAttackProbe             // an attack probe attached or fired
	KindStateChange             // a kernel lock-state transition
	kindCount
)

var kindNames = [kindCount]string{
	"bus-txn", "cache-lock", "cache-unlock", "page-seal", "page-unseal",
	"key-derive", "key-zeroize", "irq-mask", "dma-xfer", "attack-probe",
	"state-change",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromString inverts Kind.String. Returns kindCount, false for unknown
// names.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return kindCount, false
}

// NumKinds is the number of defined event kinds; valid kinds are
// Kind(0) … Kind(NumKinds-1).
const NumKinds = int(kindCount)

// AllKinds is the filter mask admitting every event kind.
const AllKinds uint64 = 1<<uint(kindCount) - 1

// Mask returns the filter bit for k, for use with Tracer.SetKinds.
func Mask(kinds ...Kind) uint64 {
	var m uint64
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// Event is one trace record. Field meaning varies slightly by kind:
//
//	Addr  — physical address of the page/transaction/way-alias involved
//	Size  — bytes moved (bus, DMA, seal/unseal) or way index (cache lock)
//	Arg   — kind-specific scalar: cycles spent (seal/unseal), mask state
//	        (irq), denied flag (dma), variant (attack-probe)
//	Label — short identifier: initiator name, key name, state names
//
// Events are value types; sinks receive copies and may retain them.
type Event struct {
	Seq   uint64 `json:"seq"`
	Cycle uint64 `json:"cycle"`
	Kind  Kind   `json:"-"`
	Addr  uint64 `json:"addr,omitempty"`
	Size  uint64 `json:"size,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
	Label string `json:"label,omitempty"`
}

// eventJSON is Event's wire form: Kind as its string name.
type eventJSON struct {
	Seq   uint64 `json:"seq"`
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Addr  uint64 `json:"addr,omitempty"`
	Size  uint64 `json:"size,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
	Label string `json:"label,omitempty"`
}

// MarshalJSON writes the event with its kind name, not the raw enum value,
// so JSONL traces stay readable and stable across kind renumbering.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{e.Seq, e.Cycle, e.Kind.String(), e.Addr, e.Size, e.Arg, e.Label})
}

// UnmarshalJSON inverts MarshalJSON.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	k, ok := KindFromString(w.Kind)
	if !ok {
		return fmt.Errorf("obs: unknown event kind %q", w.Kind)
	}
	*e = Event{w.Seq, w.Cycle, k, w.Addr, w.Size, w.Arg, w.Label}
	return nil
}

// Sink receives every event a Tracer admits, in emit order per goroutine.
// Consume must be safe for concurrent use; the tracer does not serialise
// calls across emitters.
type Sink interface {
	Consume(Event)
}

// Tracer is a bounded, concurrency-safe event trace. The last Cap() admitted
// events are retained in a power-of-two ring; older events are overwritten
// (and counted as dropped). Admission is gated by an atomic kind mask, so
// filtering to a few kinds costs one load + branch on the fast path, and a
// nil *Tracer makes Emit a single nil check.
//
// "Lock-free-ish": the sequence counter and filter mask are atomics; only
// the individual ring slot is briefly locked, so emitters contend only when
// they collide on the same slot (ring-size apart in sequence).
//
// Single-owner semantics: although Emit is memory-safe under concurrency,
// a tracer wired into a simulated platform inherits that platform's
// single-owner contract — its Cycle stamps come from one unsynchronised
// Clock, so interleaving two devices' emissions produces a trace that is
// garbage even though no data race fired. Callers that host devices on
// dedicated goroutines (internal/fleet) call BindOwner to enforce the
// contract: in debug and race builds any Emit from a non-owner goroutine
// panics with a diagnostic instead of silently corrupting the stream.
type Tracer struct {
	seq   atomic.Uint64 // next sequence number; also total admitted
	mask  atomic.Uint64 // kind filter bitmask
	sinks atomic.Value  // []Sink, copy-on-write under sinkMu

	sinkMu sync.Mutex // serialises AddSink; Emit reads lock-free
	slots  []slot     // len is a power of two

	own owner // optional single-owner guard (debug/race builds only)
}

type slot struct {
	mu    sync.Mutex
	ev    Event
	valid bool
}

// DefaultRingSize is the trace capacity used by NewTracer.
const DefaultRingSize = 1 << 14

// NewTracer returns a tracer retaining the last `size` events (rounded up
// to a power of two, min 8). All kinds are admitted until SetKinds narrows
// the filter.
func NewTracer(size int) *Tracer {
	if size < 8 {
		size = 8
	}
	n := 8
	for n < size {
		n <<= 1
	}
	t := &Tracer{slots: make([]slot, n)}
	t.mask.Store(AllKinds)
	t.sinks.Store([]Sink(nil))
	return t
}

// Cap returns the ring capacity. Zero for a nil tracer.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// SetKinds restricts admission to the kinds present in mask (build it with
// Mask(...) or use AllKinds). Events of filtered-out kinds cost one atomic
// load at the emit site and are never stored or fanned out.
func (t *Tracer) SetKinds(mask uint64) {
	if t == nil {
		return
	}
	t.mask.Store(mask & AllKinds)
}

// Kinds returns the current admission mask.
func (t *Tracer) Kinds() uint64 {
	if t == nil {
		return 0
	}
	return t.mask.Load()
}

// AddSink registers s to receive every admitted event. Sinks added
// mid-trace see only subsequent events.
func (t *Tracer) AddSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.sinkMu.Lock()
	old := t.sinks.Load().([]Sink)
	next := make([]Sink, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	t.sinks.Store(next)
	t.sinkMu.Unlock()
}

// BindOwner binds the tracer to the calling goroutine: in debug and race
// builds, any later Emit from a different goroutine panics. Call it again
// after a deliberate ownership hand-off (an actor restarting its device, a
// harness reclaiming a quiescent one); UnbindOwner removes the guard. A
// no-op in release builds and on a nil tracer.
func (t *Tracer) BindOwner() {
	if t != nil {
		t.own.bind()
	}
}

// UnbindOwner removes the owner binding, restoring unguarded concurrent use.
func (t *Tracer) UnbindOwner() {
	if t != nil {
		t.own.unbind()
	}
}

// Emit records an event. Safe on a nil tracer (no-op) and safe for
// concurrent use. The Seq field of ev is assigned by the tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.own.check("Tracer")
	if t.mask.Load()&(1<<uint(ev.Kind)) == 0 {
		return
	}
	ev.Seq = t.seq.Add(1) - 1
	s := &t.slots[ev.Seq&uint64(len(t.slots)-1)]
	s.mu.Lock()
	s.ev = ev
	s.valid = true
	s.mu.Unlock()
	if sinks := t.sinks.Load().([]Sink); len(sinks) > 0 {
		for _, sk := range sinks {
			sk.Consume(ev)
		}
	}
}

// Emitted returns the total number of admitted events since creation (or
// the last Reset), including ones the ring has since overwritten.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Dropped returns how many admitted events have been overwritten in the
// ring (they still reached sinks).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	n := t.seq.Load()
	if c := uint64(len(t.slots)); n > c {
		return n - c
	}
	return 0
}

// Snapshot returns the retained events in ascending Seq order. The result
// is a copy; mutating it does not affect the ring.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.valid {
			out = append(out, s.ev)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset clears the ring and sequence counter. Sinks and the kind filter are
// kept.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		s.valid = false
		s.ev = Event{}
		s.mu.Unlock()
	}
	t.seq.Store(0)
}

// MemorySink retains every consumed event in order, optionally filtered to
// a kind mask. It is what tests and trace-derived reports read from: unlike
// the tracer's ring it never drops, so event sums are exact.
type MemorySink struct {
	mu     sync.Mutex
	mask   uint64
	events []Event
}

// NewMemorySink returns a sink retaining events whose kind is in mask
// (AllKinds for everything).
func NewMemorySink(mask uint64) *MemorySink {
	return &MemorySink{mask: mask & AllKinds}
}

// Consume implements Sink.
func (m *MemorySink) Consume(ev Event) {
	if m.mask&(1<<uint(ev.Kind)) == 0 {
		return
	}
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

// Events returns a copy of the retained events in consumption order.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Len returns the number of retained events.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Reset discards retained events.
func (m *MemorySink) Reset() {
	m.mu.Lock()
	m.events = m.events[:0]
	m.mu.Unlock()
}

// SumSize returns the sum of Event.Size over retained events of kind k —
// the primitive trace-derived reports are built from (e.g. bytes sealed).
func (m *MemorySink) SumSize(k Kind) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for i := range m.events {
		if m.events[i].Kind == k {
			n += m.events[i].Size
		}
	}
	return n
}

// Count returns how many retained events have kind k.
func (m *MemorySink) Count(k Kind) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for i := range m.events {
		if m.events[i].Kind == k {
			n++
		}
	}
	return n
}

// JSONLSink streams each consumed event as one JSON object per line —
// the `-trace out.jsonl` format. Writes are serialised internally.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// Consume implements Sink. The first write error is retained (see Err) and
// subsequent events are dropped.
func (j *JSONLSink) Consume(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		j.err = err
		return
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Err returns the first write/encode error, if any.
func (j *JSONLSink) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJSONL parses a JSONL trace produced by JSONLSink back into events.
func ReadJSONL(data []byte) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(bytesReader(data))
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, ev)
	}
}

// bytesReader avoids importing bytes just for NewReader.
type byteSliceReader struct {
	b []byte
	i int
}

func bytesReader(b []byte) *byteSliceReader { return &byteSliceReader{b: b} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

//go:build debug || race

package obs

import (
	"strings"
	"testing"
)

// The single-owner guard only exists in debug and race builds, so these
// tests carry the same build constraint; `make race` exercises them.

func emitFromOtherGoroutine(t *Tracer) (panicked string) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				panicked = r.(string)
			}
		}()
		t.Emit(Event{Kind: KindBusTxn})
	}()
	<-done
	return panicked
}

func TestTracerOwnerGuard(t *testing.T) {
	tr := NewTracer(8)

	// Unbound: concurrent use stays legal.
	if msg := emitFromOtherGoroutine(tr); msg != "" {
		t.Fatalf("unbound tracer panicked: %s", msg)
	}

	tr.BindOwner()
	tr.Emit(Event{Kind: KindBusTxn}) // owner emits fine
	msg := emitFromOtherGoroutine(tr)
	if msg == "" {
		t.Fatalf("bound tracer accepted an emit from a foreign goroutine")
	}
	if !strings.Contains(msg, "single-owner") {
		t.Fatalf("guard panic message unhelpful: %q", msg)
	}

	// Rebinding after a hand-off moves the guard; unbinding removes it.
	tr.UnbindOwner()
	if msg := emitFromOtherGoroutine(tr); msg != "" {
		t.Fatalf("unbound tracer panicked after UnbindOwner: %s", msg)
	}
}

func TestRegistryOwnerGuard(t *testing.T) {
	reg := NewRegistry()
	reg.BindOwner()
	c := reg.Counter("ok") // owner resolves fine

	done := make(chan string, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- r.(string)
				return
			}
			done <- ""
		}()
		reg.Counter("cross-goroutine")
	}()
	if msg := <-done; msg == "" {
		t.Fatalf("bound registry resolved an instrument from a foreign goroutine")
	}

	// Updates on already-resolved instruments stay legal from anywhere:
	// the guard protects wiring, not the atomics.
	upd := make(chan struct{})
	go func() {
		defer close(upd)
		c.Add(1)
	}()
	<-upd
	if c.Value() != 1 {
		t.Fatalf("resolved counter update lost")
	}
}

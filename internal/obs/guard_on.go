//go:build debug || race

package obs

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
)

// OwnerGuardEnabled reports whether the single-owner guard is compiled in.
// It is true under `-tags debug` and under the race detector, where the
// cost of a per-emit goroutine check is acceptable; release builds compile
// the guard to nothing (see guard_off.go).
const OwnerGuardEnabled = true

// owner is the optional single-owner guard. A Tracer or Registry is
// concurrency-safe at the memory level, but a *simulated platform* is not:
// its clock, RNG and metrics projections assume one owner goroutine, so an
// emit from a second goroutine means two devices (or a device and a
// harness) are sharing instruments — a logic corruption the race detector
// cannot see because every individual access is atomic. Binding an owner
// turns that misuse into an immediate panic.
type owner struct {
	gid atomic.Uint64
}

func (o *owner) bind() { o.gid.Store(curGID()) }

func (o *owner) unbind() { o.gid.Store(0) }

func (o *owner) check(what string) {
	want := o.gid.Load()
	if want == 0 {
		return
	}
	if g := curGID(); g != want {
		panic(fmt.Sprintf(
			"obs: %s used from goroutine %d but bound to owner goroutine %d — "+
				"simulated platforms are single-owner (see PR 2's lock-elision contract); "+
				"call BindOwner again after a deliberate ownership hand-off",
			what, g, want))
	}
}

// curGID parses the current goroutine id out of the runtime stack header
// ("goroutine 123 [running]:"). Slow, but the guard only runs in debug and
// race builds, and only for instruments explicitly bound to an owner.
func curGID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		panic(fmt.Sprintf("obs: cannot parse goroutine id from %q", s))
	}
	return id
}

package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindBusTxn})
	tr.SetKinds(AllKinds)
	tr.AddSink(NewMemorySink(AllKinds))
	if tr.Cap() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reported non-zero state")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracer returned events")
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(8)
	if tr.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", tr.Cap())
	}
	for i := 0; i < 20; i++ {
		tr.Emit(Event{Kind: KindBusTxn, Addr: uint64(i)})
	}
	if tr.Emitted() != 20 {
		t.Fatalf("emitted = %d", tr.Emitted())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.Dropped())
	}
	evs := tr.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(evs))
	}
	// The retained window must be the LAST 8 events, in seq order.
	for i, ev := range evs {
		want := uint64(12 + i)
		if ev.Seq != want || ev.Addr != want {
			t.Fatalf("slot %d: seq=%d addr=%d, want %d", i, ev.Seq, ev.Addr, want)
		}
	}
}

func TestTracerRounding(t *testing.T) {
	if got := NewTracer(3).Cap(); got != 8 {
		t.Fatalf("min cap = %d, want 8", got)
	}
	if got := NewTracer(9).Cap(); got != 16 {
		t.Fatalf("cap(9) = %d, want 16", got)
	}
}

func TestKindFilter(t *testing.T) {
	tr := NewTracer(64)
	tr.SetKinds(Mask(KindPageSeal, KindPageUnseal))
	tr.Emit(Event{Kind: KindBusTxn})
	tr.Emit(Event{Kind: KindPageSeal, Size: 4096})
	tr.Emit(Event{Kind: KindIRQMask})
	tr.Emit(Event{Kind: KindPageUnseal, Size: 4096})
	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != KindPageSeal || evs[1].Kind != KindPageUnseal {
		t.Fatalf("wrong kinds survived filter: %v %v", evs[0].Kind, evs[1].Kind)
	}
	// Filtered events are not even assigned sequence numbers.
	if tr.Emitted() != 2 {
		t.Fatalf("emitted = %d, want 2", tr.Emitted())
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := NewTracer(256)
	sink := NewMemorySink(AllKinds)
	tr.AddSink(sink)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(Event{Kind: Kind(i % int(kindCount)), Addr: uint64(g)})
			}
		}(g)
	}
	wg.Wait()
	if tr.Emitted() != goroutines*per {
		t.Fatalf("emitted = %d, want %d", tr.Emitted(), goroutines*per)
	}
	if sink.Len() != goroutines*per {
		t.Fatalf("sink saw %d, want %d", sink.Len(), goroutines*per)
	}
	evs := tr.Snapshot()
	if len(evs) != 256 {
		t.Fatalf("snapshot len = %d, want full ring", len(evs))
	}
	seen := make(map[uint64]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d in snapshot", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: KindBusTxn})
	}
	tr.Reset()
	if tr.Emitted() != 0 || len(tr.Snapshot()) != 0 {
		t.Fatal("reset did not clear tracer")
	}
	tr.Emit(Event{Kind: KindBusTxn})
	if got := tr.Snapshot(); len(got) != 1 || got[0].Seq != 0 {
		t.Fatal("post-reset emit broken")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d does not round-trip via %q", k, k.String())
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Fatal("unknown kind name accepted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(64)
	tr.AddSink(NewJSONLSink(&buf))
	want := []Event{
		{Cycle: 100, Kind: KindPageSeal, Addr: 0x8000_0000, Size: 4096, Arg: 7000, Label: "contacts"},
		{Cycle: 200, Kind: KindStateChange, Label: "unlocked->screen-locked"},
		{Cycle: 300, Kind: KindBusTxn, Addr: 64, Size: 32},
	}
	for _, ev := range want {
		tr.Emit(ev)
	}
	got, err := ReadJSONL(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i, ev := range got {
		w := want[i]
		w.Seq = uint64(i)
		if ev != w {
			t.Fatalf("event %d: got %+v want %+v", i, ev, w)
		}
	}
}

func TestJSONLUnknownKind(t *testing.T) {
	if _, err := ReadJSONL([]byte(`{"seq":0,"cycle":1,"kind":"bogus"}` + "\n")); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
}

func TestCounterAndGauge(t *testing.T) {
	var nilC *Counter
	nilC.Add(5)
	nilC.Inc()
	if nilC.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	var nilG *Gauge
	nilG.Set(3)
	nilG.Add(-1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}

	reg := NewRegistry()
	c := reg.Counter("x")
	c.Add(2)
	c.Inc()
	if reg.Counter("x").Value() != 3 {
		t.Fatal("counter not shared by name")
	}
	g := reg.Gauge("y")
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("gauge = %d", g.Value())
	}
	if reg.CounterValue("absent") != 0 {
		t.Fatal("absent counter non-zero")
	}

	var nilReg *Registry
	nilReg.Counter("a").Inc()
	nilReg.Gauge("b").Set(1)
	nilReg.Histogram("c", []uint64{1}).Observe(1)
	if nilReg.CounterValue("a") != 0 {
		t.Fatal("nil registry accumulated")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	// Bounds are inclusive upper edges.
	h.Observe(0)    // bucket 0
	h.Observe(10)   // bucket 0 (== bound)
	h.Observe(11)   // bucket 1
	h.Observe(100)  // bucket 1
	h.Observe(101)  // bucket 2
	h.Observe(1000) // bucket 2
	h.Observe(1001) // overflow
	s := h.Snapshot()
	wantCounts := []uint64{2, 2, 2, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.N != 7 || s.Sum != 0+10+11+100+101+1000+1001 {
		t.Fatalf("n=%d sum=%d", s.N, s.Sum)
	}
	if got := s.Mean(); got < 317 || got > 318 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramRegistryAndReset(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []uint64{10, 20})
	h.Observe(5)
	if reg.Histogram("lat", nil) != h {
		t.Fatal("histogram not shared by name")
	}
	reg.Counter("c").Add(9)
	reg.Gauge("g").Set(4)
	reg.Reset()
	if h.Count() != 0 || reg.CounterValue("c") != 0 || reg.Gauge("g").Value() != 0 {
		t.Fatal("reset incomplete")
	}
	// Resolved pointers stay live after reset.
	h.Observe(15)
	if h.Count() != 1 {
		t.Fatal("histogram dead after reset")
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1000, 2, 5)
	want := []uint64{1000, 2000, 4000, 8000, 16000}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v", b)
		}
	}
	// Degenerate inputs still produce strictly ascending bounds.
	b = ExpBounds(0, 0.5, 4)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("non-ascending bounds %v", b)
		}
	}
}

func TestMemorySinkFilterAndSums(t *testing.T) {
	sink := NewMemorySink(Mask(KindPageSeal))
	tr := NewTracer(8)
	tr.AddSink(sink)
	tr.Emit(Event{Kind: KindPageSeal, Size: 4096})
	tr.Emit(Event{Kind: KindPageUnseal, Size: 4096})
	tr.Emit(Event{Kind: KindPageSeal, Size: 4096})
	if sink.Len() != 2 || sink.Count(KindPageSeal) != 2 {
		t.Fatalf("sink retained %d", sink.Len())
	}
	if sink.SumSize(KindPageSeal) != 8192 {
		t.Fatalf("sum = %d", sink.SumSize(KindPageSeal))
	}
	sink.Reset()
	if sink.Len() != 0 {
		t.Fatal("sink reset failed")
	}
}

// BenchmarkTracerDisabled is the guard benchmark for the <5% disabled-
// tracer overhead acceptance bar. It measures the emit-point pattern as
// deployed in the simulator's hot paths — the call site nil-gates the
// tracer before constructing the Event, and counters are nil-safe — with
// everything disabled, vs BenchmarkNoEmitBaseline's bare loop body.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	var c *Counter
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += work(uint64(i))
		if tr != nil {
			tr.Emit(Event{Kind: KindBusTxn, Addr: acc, Size: 32})
		}
		c.Add(32)
	}
	sinkHole = acc
}

// BenchmarkNoEmitBaseline is the comparison loop with no instrumentation
// at all.
func BenchmarkNoEmitBaseline(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += work(uint64(i))
	}
	sinkHole = acc
}

// BenchmarkTracerEnabled measures the hot emit path with an active ring
// (no sinks), for reference in perf PRs.
func BenchmarkTracerEnabled(b *testing.B) {
	tr := NewTracer(DefaultRingSize)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += work(uint64(i))
		tr.Emit(Event{Kind: KindBusTxn, Addr: acc, Size: 32})
	}
	sinkHole = acc
}

var sinkHole uint64

//go:noinline
func work(x uint64) uint64 {
	// A stand-in for a simulated bus access: a few dependent ALU ops.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

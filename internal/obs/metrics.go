package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. A nil *Counter is a no-op,
// so instrumented code can hold unresolved counters without branching.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Zero for nil.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// set overwrites the count; used only by Registry.Reset and Stats rebuilds.
func (c *Counter) set(n uint64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Gauge is a settable int64 level (e.g. locked ways, live background
// slots). A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. No-op on nil.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative allowed). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level. Zero for nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed buckets chosen at
// construction. Buckets are upper-bound-inclusive: observation x lands in
// the first bucket with x <= bound; values above the last bound land in the
// implicit overflow bucket. A nil *Histogram is a no-op.
//
// Intended for simulated latency (cycles) and energy (picojoules) where
// the value range is known, so fixed bounds beat dynamic bucketing and the
// observe path is one mutex + binary search.
type Histogram struct {
	mu     sync.Mutex
	bounds []uint64 // ascending upper bounds
	counts []uint64 // len(bounds)+1: last is overflow
	sum    uint64
	n      uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// Panics on empty or non-ascending bounds (construction-time programmer
// error, not runtime input).
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// ExpBounds returns n bounds growing geometrically from start by factor —
// a convenience for latency-style histograms (e.g. ExpBounds(1000, 2, 12)).
func ExpBounds(start uint64, factor float64, n int) []uint64 {
	if start == 0 {
		start = 1
	}
	if factor <= 1 {
		factor = 2
	}
	out := make([]uint64, 0, n)
	v := float64(start)
	var prev uint64
	for len(out) < n {
		b := uint64(math.Round(v))
		if b <= prev {
			b = prev + 1
		}
		out = append(out, b)
		prev = b
		v *= factor
	}
	return out
}

// Observe records one value. No-op on nil.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Bounds []uint64 // ascending upper bounds
	Counts []uint64 // len(Bounds)+1; last is overflow (> last bound)
	Sum    uint64
	N      uint64
}

// Mean returns the arithmetic mean of observations, 0 if none.
func (s HistSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Snapshot returns a copy of the histogram state. Empty snapshot for nil.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistSnapshot{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		N:      h.n,
	}
	return out
}

// Count returns the number of observations. Zero for nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations. Zero for nil.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// clone returns a deep copy of the histogram's bounds and counts.
func (h *Histogram) clone() *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return &Histogram{
		bounds: append([]uint64(nil), h.bounds...),
		counts: append([]uint64(nil), h.counts...),
		sum:    h.sum,
		n:      h.n,
	}
}

// reset zeroes the histogram in place.
func (h *Histogram) reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.n = 0, 0
	h.mu.Unlock()
}

// Registry is a get-or-create namespace of metrics. Instruments are
// resolved once at wiring time and then used lock-free; the registry map
// itself is only touched during resolution and snapshotting.
//
// A nil *Registry hands back nil instruments, which are themselves no-ops —
// so `reg.Counter("x").Add(1)` is safe and near-free when observability is
// off.
//
// Single-owner semantics: instrument *updates* (Counter.Add etc.) are
// atomic and safe from anywhere, but a registry wired into a simulated
// platform is part of that platform's single-owner world — its projections
// (core.Stats, trace-derived reports) assume one goroutine drives the
// device that feeds it. Hosts that own devices on dedicated goroutines
// (internal/fleet) call BindOwner; in debug and race builds instrument
// resolution from any other goroutine then panics with a diagnostic.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram

	own owner // optional single-owner guard (debug/race builds only)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gaugs: make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// BindOwner binds the registry to the calling goroutine: in debug and race
// builds, instrument resolution (Counter/Gauge/Histogram) from any other
// goroutine then panics. Resolved instruments stay safe to update from
// anywhere — the guard protects the wiring, not the atomics. Call again
// after a deliberate ownership hand-off; UnbindOwner removes the guard.
func (r *Registry) BindOwner() {
	if r != nil {
		r.own.bind()
	}
}

// UnbindOwner removes the owner binding, restoring unguarded use.
func (r *Registry) UnbindOwner() {
	if r != nil {
		r.own.unbind()
	}
}

// Counter returns the named counter, creating it on first use. Nil for a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.own.check("Registry")
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil for a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.own.check("Registry")
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gaugs[name]
	if g == nil {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use. Later callers get the existing instrument regardless of bounds; nil
// for a nil registry.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.own.check("Registry")
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the named counter's value without creating it.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.ctrs[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue returns the named gauge's value without creating it. Like
// CounterValue it bypasses the owner guard: reading a resolved atomic is
// legal from any goroutine.
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gaugs[name]
	r.mu.Unlock()
	return g.Value()
}

// Clone returns a new registry holding the same instruments with their
// current values. Instrument pointers resolved from the original stay
// bound to the original; a forked world re-resolves its instruments by
// name from the clone and receives the carried values — the same
// wiring-time resolution a cold boot performs. The clone carries no owner
// binding: the fork's owner goroutine calls BindOwner itself, mirroring
// the fleet sweep hand-off.
func (r *Registry) Clone() *Registry {
	if r == nil {
		return nil
	}
	n := NewRegistry()
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		nc := &Counter{}
		nc.v.Store(c.v.Load())
		n.ctrs[name] = nc
	}
	for name, g := range r.gaugs {
		ng := &Gauge{}
		ng.v.Store(g.v.Load())
		n.gaugs[name] = ng
	}
	for name, h := range r.hists {
		n.hists[name] = h.clone()
	}
	return n
}

// Reset zeroes every registered instrument (instruments stay registered and
// resolved pointers stay valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.set(0)
	}
	for _, g := range r.gaugs {
		g.Set(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Dump renders every instrument as "name value" lines sorted by name —
// a debugging aid for the CLIs, not a stable wire format.
func (r *Registry) Dump() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.ctrs)+len(r.gaugs)+len(r.hists))
	for n, c := range r.ctrs {
		lines = append(lines, fmt.Sprintf("%s %d", n, c.Value()))
	}
	for n, g := range r.gaugs {
		lines = append(lines, fmt.Sprintf("%s %d", n, g.Value()))
	}
	for n, h := range r.hists {
		s := h.Snapshot()
		lines = append(lines, fmt.Sprintf("%s n=%d sum=%d mean=%.1f", n, s.N, s.Sum, s.Mean()))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

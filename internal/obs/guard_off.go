//go:build !debug && !race

package obs

// OwnerGuardEnabled reports whether the single-owner guard is compiled in.
// Release builds keep the hot emit path free of any ownership bookkeeping;
// build with `-tags debug` (or `-race`) to enable the guard.
const OwnerGuardEnabled = false

// owner is the release-build stub of the single-owner guard: a zero-size
// field whose methods are empty and inline away, so Emit and instrument
// resolution pay nothing for the debug-build feature.
type owner struct{}

func (o *owner) bind()         {}
func (o *owner) unbind()       {}
func (o *owner) check(string)  {}

package mem

import (
	"bytes"
	"fmt"
	"testing"
)

func fillPattern(s *Store, off uint64, n int, seed byte) {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = seed + byte(i)
	}
	s.Write(off, buf)
}

func readBack(s *Store, off uint64, n int) []byte {
	buf := make([]byte, n)
	s.Read(off, buf)
	return buf
}

// TestStoreForkIsolation: a fork sees the sealed bytes; writes on either
// side never leak into the other or into sibling forks.
func TestStoreForkIsolation(t *testing.T) {
	s := NewStore(1 << 20)
	fillPattern(s, 0, 3*PageSize, 1)

	f1 := s.Fork()
	f2 := s.Fork()
	want := readBack(s, 0, 3*PageSize)

	// Mutate the parent straddling a page boundary: forks must not see it.
	s.Write(PageSize-8, bytes.Repeat([]byte{0xAA}, 16))
	if !bytes.Equal(readBack(f1, 0, 3*PageSize), want) {
		t.Fatal("parent write leaked into fork f1")
	}

	// Mutate one fork: the sibling and the parent's sealed base stay put.
	f1.Write(2*PageSize, bytes.Repeat([]byte{0xBB}, 32))
	if !bytes.Equal(readBack(f2, 0, 3*PageSize), want) {
		t.Fatal("fork write leaked into sibling fork")
	}
	if got := readBack(s, 2*PageSize, 32); bytes.Equal(got, bytes.Repeat([]byte{0xBB}, 32)) {
		t.Fatal("fork write leaked into parent")
	}

	// Byte-granular paths too (the cacheRW short-circuit).
	f2.SetByte(5, 0x77)
	if s.ByteAt(5) == 0x77 || f1.ByteAt(5) == 0x77 {
		t.Fatal("SetByte on fork leaked")
	}
	if f2.ByteAt(5) != 0x77 {
		t.Fatal("SetByte on fork not visible to the fork itself")
	}
}

// TestStoreRepeatedSeal: sealing a live store again must not disturb forks
// taken from earlier seals (the ddmin prefix-checkpoint pattern).
func TestStoreRepeatedSeal(t *testing.T) {
	s := NewStore(1 << 20)
	fillPattern(s, 0, PageSize, 1)
	early := s.Fork()
	want := readBack(early, 0, PageSize)

	s.Write(0, []byte{9, 9, 9, 9})
	late := s.Fork() // seals again, merging the new write
	if !bytes.Equal(readBack(early, 0, PageSize), want) {
		t.Fatal("second seal disturbed an earlier fork")
	}
	if late.ByteAt(0) != 9 {
		t.Fatal("later fork missed the re-sealed write")
	}
}

// TestStoreForkTouchedPages is the regression test for the COW accounting
// fix: TouchedPages and MutatePages must include pages inherited from the
// frozen base, deduplicated against private shadows and in ascending order,
// or a forked world's remanence post-mortem would under-scan.
func TestStoreForkTouchedPages(t *testing.T) {
	s := NewStore(1 << 20)
	s.SetByte(0*PageSize, 1)
	s.SetByte(3*PageSize, 1)
	s.SetByte(7*PageSize, 1)
	f := s.Fork()

	want := []uint64{0, 3 * PageSize, 7 * PageSize}
	got := f.TouchedPages()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fork TouchedPages = %v, want %v (base pages missing?)", got, want)
	}

	// Shadow one base page and dirty a new one: still deduped and sorted.
	f.SetByte(3*PageSize+1, 2)
	f.SetByte(5*PageSize, 2)
	want = []uint64{0, 3 * PageSize, 5 * PageSize, 7 * PageSize}
	if got := f.TouchedPages(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fork TouchedPages after writes = %v, want %v", got, want)
	}

	// MutatePages must visit the same set, hand out writable views, and
	// keep mutations private to the fork.
	var visited []uint64
	f.MutatePages(func(base uint64, data []byte) {
		visited = append(visited, base)
		data[0] ^= 0xFF
	})
	if fmt.Sprint(visited) != fmt.Sprint(want) {
		t.Fatalf("fork MutatePages visited %v, want %v", visited, want)
	}
	if s.ByteAt(7*PageSize) != 1 {
		t.Fatal("MutatePages on fork leaked into parent base page")
	}
	if f.ByteAt(7*PageSize) != 1^0xFF {
		t.Fatal("MutatePages mutation not applied to fork")
	}
}

// TestStoreZeroAllDropsBase: ZeroAll on a fork must forget inherited pages.
func TestStoreZeroAllDropsBase(t *testing.T) {
	s := NewStore(1 << 20)
	fillPattern(s, 0, PageSize, 3)
	f := s.Fork()
	f.ZeroAll()
	if f.ByteAt(0) != 0 || len(f.TouchedPages()) != 0 {
		t.Fatal("ZeroAll left COW base pages visible")
	}
	if s.ByteAt(0) != 3 {
		t.Fatal("ZeroAll on fork damaged parent")
	}
}

// Microbenchmarks for the COW hot paths (make bench): reads and writes
// through a flat store vs a fork reading frozen base pages vs a fork
// materialising them, plus the Fork operation itself.

const benchSpan = 64 * PageSize

func benchStore(freshFork bool) *Store {
	s := NewStore(1 << 24)
	fillPattern(s, 0, benchSpan, 7)
	if freshFork {
		return s.Fork()
	}
	return s
}

func BenchmarkStoreFlatRead(b *testing.B) {
	s := benchStore(false)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(uint64(i*64)%benchSpan, buf)
	}
}

func BenchmarkStoreCOWRead(b *testing.B) {
	s := benchStore(true)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(uint64(i*64)%benchSpan, buf)
	}
}

func BenchmarkStoreFlatWrite(b *testing.B) {
	s := benchStore(false)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write(uint64(i*64)%benchSpan, buf)
	}
}

func BenchmarkStoreCOWWrite(b *testing.B) {
	s := benchStore(true)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write(uint64(i*64)%benchSpan, buf)
	}
}

func BenchmarkStoreFork(b *testing.B) {
	s := benchStore(false)
	s.Seal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := s.Fork()
		f.SetByte(0, byte(i)) // dirty one page: the realistic fork cost
	}
}

package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestStoreZeroOnFirstRead(t *testing.T) {
	s := NewStore(1 << 20)
	if got := s.ByteAt(12345); got != 0 {
		t.Fatalf("untouched byte = %#x, want 0", got)
	}
	buf := make([]byte, 64)
	s.Read(999, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("untouched buf[%d] = %#x, want 0", i, b)
		}
	}
}

func TestStoreReadWriteRoundTrip(t *testing.T) {
	s := NewStore(1 << 20)
	data := []byte("sentry-substrate")
	s.Write(4090, data) // crosses a page boundary
	got := make([]byte, len(data))
	s.Read(4090, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip = %q, want %q", got, data)
	}
}

func TestStoreByteOps(t *testing.T) {
	s := NewStore(4096)
	s.SetByte(0, 0xAB)
	s.SetByte(4095, 0xCD)
	if s.ByteAt(0) != 0xAB || s.ByteAt(4095) != 0xCD {
		t.Fatal("byte ops lost data")
	}
}

func TestStoreBoundsPanic(t *testing.T) {
	s := NewStore(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds write")
		}
	}()
	s.Write(4090, make([]byte, 16))
}

func TestStoreZeroAll(t *testing.T) {
	s := NewStore(1 << 16)
	s.Write(100, []byte{1, 2, 3})
	s.ZeroAll()
	if s.ByteAt(101) != 0 {
		t.Fatal("ZeroAll left data behind")
	}
	if len(s.TouchedPages()) != 0 {
		t.Fatal("ZeroAll left touched pages")
	}
}

func TestStoreTouchedPages(t *testing.T) {
	s := NewStore(1 << 20)
	s.SetByte(0, 1)
	s.SetByte(3*PageSize+7, 1)
	pages := s.TouchedPages()
	if len(pages) != 2 || pages[0] != 0 || pages[1] != 3*PageSize {
		t.Fatalf("TouchedPages = %v", pages)
	}
}

// Property: any sequence of writes followed by reads behaves like a flat
// byte slice.
func TestStoreMatchesFlatModel(t *testing.T) {
	const size = 1 << 16
	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		s := NewStore(size)
		model := make([]byte, size)
		for _, op := range ops {
			off := uint64(op.Off)
			data := op.Data
			if off+uint64(len(data)) > size {
				data = data[:size-off]
			}
			s.Write(off, data)
			copy(model[off:], data)
		}
		got := make([]byte, size)
		s.Read(0, got)
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAddressing(t *testing.T) {
	d := NewDevice("iram", TechSRAM, 0x40000000, 256*1024)
	if !d.Contains(0x40000000) || !d.Contains(0x4003FFFF) || d.Contains(0x40040000) {
		t.Fatal("Contains wrong")
	}
	d.SetByte(0x40000010, 0x5A)
	if d.ByteAt(0x40000010) != 0x5A {
		t.Fatal("absolute addressing broken")
	}
	if d.Tech() != TechSRAM {
		t.Fatal("tech lost")
	}
}

func TestMapFind(t *testing.T) {
	iram := NewDevice("iram", TechSRAM, 0x40000000, 256*1024)
	dram := NewDevice("dram", TechDRAM, 0x80000000, 1<<30)
	m := NewMap(iram, dram)
	if m.Find(0x40000100) != iram {
		t.Fatal("iram not found")
	}
	if m.Find(0x80000000+12345) != dram {
		t.Fatal("dram not found")
	}
	if m.Find(0x10) != nil {
		t.Fatal("unmapped address resolved")
	}
}

func TestMapOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected overlap panic")
		}
	}()
	NewMap(
		NewDevice("a", TechDRAM, 0x1000, 0x1000),
		NewDevice("b", TechDRAM, 0x1800, 0x1000),
	)
}

func TestMustFindPanics(t *testing.T) {
	m := NewMap(NewDevice("a", TechDRAM, 0x1000, 0x1000))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MustFind(0)
}

func TestPageBase(t *testing.T) {
	if PageBase(0x12345) != 0x12000 {
		t.Fatalf("PageBase = %#x", PageBase(0x12345))
	}
}

package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

// storesEqual compares full contents over the union of both touched sets.
func storesEqual(t *testing.T, a, b *Store) {
	t.Helper()
	seen := map[uint64]bool{}
	for _, s := range []*Store{a, b} {
		for _, off := range s.TouchedPages() {
			seen[off] = true
		}
	}
	pa, pb := make([]byte, PageSize), make([]byte, PageSize)
	for off := range seen {
		a.Read(off, pa)
		b.Read(off, pb)
		if !bytes.Equal(pa, pb) {
			t.Fatalf("page %#x differs after rebase", off)
		}
	}
}

func TestRebasePreservesContents(t *testing.T) {
	base := NewStore(1 << 20)
	base.Write(0, []byte("boot image page zero"))
	base.Write(3*PageSize, []byte("boot page three"))
	base.Write(7*PageSize+100, []byte("boot page seven"))
	base.Seal()

	fork := base.Fork()
	fork.Write(3*PageSize, []byte("DIVERGED"))           // shadow a base page
	fork.Write(12*PageSize, []byte("fresh private"))     // page the base never touched
	fork.SetByte(7*PageSize+100, 'b')                    // rewrite a base byte with its own value
	want := NewStore(1 << 20)
	for _, off := range fork.TouchedPages() {
		buf := make([]byte, PageSize)
		fork.Read(off, buf)
		want.Write(off, buf)
	}

	n := fork.Rebase(base)
	storesEqual(t, fork, want)
	// Page 3 diverged, page 12 is new; page 0 and the rewritten-identical
	// page 7 must have fallen through to the shared base.
	if n != 2 {
		t.Fatalf("delta pages = %d, want 2", n)
	}
	// Writes after the rebase must not bleed into the shared base.
	fork.SetByte(0, 0xEE)
	if base.ByteAt(0) == 0xEE {
		t.Fatal("rebase aliased a shared base page into the private layer")
	}
}

func TestRebaseShadowsZeroedBasePages(t *testing.T) {
	base := NewStore(1 << 20)
	base.Write(5*PageSize, []byte("survives in base"))
	base.Seal()

	fork := base.Fork()
	fork.Write(2*PageSize, []byte("doomed"))
	fork.ZeroAll() // power-cut style wipe: all-zero content, no base layer
	fork.Write(9*PageSize, []byte("post-wipe"))

	fork.Rebase(base)
	buf := make([]byte, 16)
	fork.Read(5*PageSize, buf)
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatalf("zeroed base page resurrected after rebase: %q", buf)
	}
	fork.Read(9*PageSize, buf[:9])
	if string(buf[:9]) != "post-wipe" {
		t.Fatalf("post-wipe write lost: %q", buf[:9])
	}
}

// TestRebaseQuick drives random write/fork/seal/zero traffic against a
// mirror store, rebases, and demands byte-identical contents plus
// write isolation from the base.
func TestRebaseQuick(t *testing.T) {
	f := func(ops []uint32) bool {
		base := NewStore(64 * PageSize)
		for i := 0; i < 8; i++ {
			base.Write(uint64(i*5*PageSize%int(base.Size()-8)), []byte{byte(i), 1, 2, 3})
		}
		base.Seal()
		s := base.Fork()
		mirror := NewStore(base.Size())
		for _, off := range base.TouchedPages() {
			buf := make([]byte, PageSize)
			base.Read(off, buf)
			mirror.Write(off, buf)
		}
		for _, op := range ops {
			off := uint64(op) % (s.Size() - 4)
			val := []byte{byte(op >> 8), byte(op >> 16), byte(op >> 24), byte(op)}
			switch op % 5 {
			case 0, 1, 2:
				s.Write(off, val)
				mirror.Write(off, val)
			case 3:
				s.Seal()
			case 4:
				if op%31 == 4 { // rare: wipe both sides
					s.ZeroAll()
					mirror.ZeroAll()
				}
			}
		}
		s.Rebase(base)
		storesEqual(t, s, mirror)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Package mem models the physical memory devices of the simulated SoC: the
// external DRAM chips and the on-SoC internal SRAM (iRAM). Devices are
// sparse — backing pages are allocated on first touch — so a platform can
// expose a 1–2 GB DRAM without the host paying for it.
//
// This package is purely about storage and the physical address map. Timing
// and observability (who can see an access) live in the bus, cache, and cpu
// packages layered above.
package mem

import (
	"fmt"
	"sort"
	"sync"
)

// PhysAddr is a physical address on the SoC.
type PhysAddr uint64

// PageSize is the backing-store granule and the architectural page size.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageBase returns the page-aligned base of addr.
func PageBase(a PhysAddr) PhysAddr { return a &^ (PageSize - 1) }

// Store is a sparse byte store of a fixed size, indexed from zero. Backing
// pages materialise on first write; reads of untouched pages return zero.
type Store struct {
	mu    sync.RWMutex
	size  uint64
	pages map[uint64]*[PageSize]byte
}

// NewStore returns a sparse store of the given size in bytes.
func NewStore(size uint64) *Store {
	return &Store{size: size, pages: make(map[uint64]*[PageSize]byte)}
}

// Size returns the store's capacity in bytes.
func (s *Store) Size() uint64 { return s.size }

func (s *Store) check(off uint64, n int) {
	if off+uint64(n) > s.size {
		panic(fmt.Sprintf("mem: access [%#x,+%d) beyond store size %#x", off, n, s.size))
	}
}

// ByteAt returns the byte at offset off.
func (s *Store) ByteAt(off uint64) byte {
	s.check(off, 1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := s.pages[off>>PageShift]
	if p == nil {
		return 0
	}
	return p[off&(PageSize-1)]
}

// SetByte stores b at offset off.
func (s *Store) SetByte(off uint64, b byte) {
	s.check(off, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	pn := off >> PageShift
	p := s.pages[pn]
	if p == nil {
		p = new([PageSize]byte)
		s.pages[pn] = p
	}
	p[off&(PageSize-1)] = b
}

// Read copies len(dst) bytes starting at off into dst.
func (s *Store) Read(off uint64, dst []byte) {
	s.check(off, len(dst))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for len(dst) > 0 {
		pn := off >> PageShift
		po := off & (PageSize - 1)
		n := PageSize - po
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if p := s.pages[pn]; p != nil {
			copy(dst[:n], p[po:po+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		off += n
	}
}

// Write copies src into the store starting at off.
func (s *Store) Write(off uint64, src []byte) {
	s.check(off, len(src))
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(src) > 0 {
		pn := off >> PageShift
		po := off & (PageSize - 1)
		n := PageSize - po
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		p := s.pages[pn]
		if p == nil {
			p = new([PageSize]byte)
			s.pages[pn] = p
		}
		copy(p[po:po+n], src[:n])
		src = src[n:]
		off += n
	}
}

// ZeroAll discards every backing page, returning the store to all-zeroes.
func (s *Store) ZeroAll() {
	s.mu.Lock()
	s.pages = make(map[uint64]*[PageSize]byte)
	s.mu.Unlock()
}

// TouchedPages returns the sorted offsets of pages that have backing store.
// Untouched pages are architecturally zero and cannot hold remanent data.
func (s *Store) TouchedPages() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uint64, 0, len(s.pages))
	for pn := range s.pages {
		out = append(out, pn<<PageShift)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MutatePages calls fn for every materialised page with its base offset and
// a mutable view of its bytes. It is the hook the remanence model uses to
// decay memory contents in place.
func (s *Store) MutatePages(fn func(base uint64, data []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for pn, p := range s.pages {
		fn(pn<<PageShift, p[:])
	}
}

// Device is a physical memory device mapped at a fixed base address.
type Device struct {
	name string
	base PhysAddr
	s    *Store
	// Volatile reports whether the device loses content on power cut
	// according to its technology curve; both DRAM and SRAM are volatile,
	// but with different decay rates (see package remanence).
	tech Technology
}

// Technology identifies the storage technology, which selects the remanence
// decay curve on power loss.
type Technology int

// Storage technologies.
const (
	TechDRAM Technology = iota // external DDR DRAM
	TechSRAM                   // on-SoC internal SRAM (iRAM)
)

func (t Technology) String() string {
	switch t {
	case TechDRAM:
		return "DRAM"
	case TechSRAM:
		return "SRAM"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// NewDevice returns a device of the given technology at base covering size bytes.
func NewDevice(name string, tech Technology, base PhysAddr, size uint64) *Device {
	return &Device{name: name, base: base, s: NewStore(size), tech: tech}
}

// Name returns the device name (e.g. "dram0", "iram").
func (d *Device) Name() string { return d.name }

// Base returns the device's base physical address.
func (d *Device) Base() PhysAddr { return d.base }

// Size returns the device's capacity in bytes.
func (d *Device) Size() uint64 { return d.s.Size() }

// Limit returns one past the device's last physical address.
func (d *Device) Limit() PhysAddr { return d.base + PhysAddr(d.s.Size()) }

// Tech returns the storage technology.
func (d *Device) Tech() Technology { return d.tech }

// Store exposes the raw backing store; used by remanence and by attack
// drivers that dump the physical device contents.
func (d *Device) Store() *Store { return d.s }

// Contains reports whether addr falls inside the device.
func (d *Device) Contains(addr PhysAddr) bool {
	return addr >= d.base && addr < d.Limit()
}

// ByteAt reads the byte at absolute physical address addr.
func (d *Device) ByteAt(addr PhysAddr) byte {
	return d.s.ByteAt(uint64(addr - d.base))
}

// SetByte writes b at absolute physical address addr.
func (d *Device) SetByte(addr PhysAddr, b byte) {
	d.s.SetByte(uint64(addr-d.base), b)
}

// Read copies len(dst) bytes starting at absolute address addr.
func (d *Device) Read(addr PhysAddr, dst []byte) {
	d.s.Read(uint64(addr-d.base), dst)
}

// Write copies src starting at absolute address addr.
func (d *Device) Write(addr PhysAddr, src []byte) {
	d.s.Write(uint64(addr-d.base), src)
}

// Map is the SoC physical address map: an ordered set of non-overlapping
// devices.
type Map struct {
	devs []*Device
}

// NewMap returns an address map over the given devices. It panics if any
// two devices overlap.
func NewMap(devs ...*Device) *Map {
	m := &Map{}
	for _, d := range devs {
		m.Add(d)
	}
	return m
}

// Add inserts a device, keeping the map sorted by base address.
func (m *Map) Add(d *Device) {
	for _, e := range m.devs {
		if d.Base() < e.Limit() && e.Base() < d.Limit() {
			panic(fmt.Sprintf("mem: device %s [%#x,%#x) overlaps %s [%#x,%#x)",
				d.Name(), d.Base(), d.Limit(), e.Name(), e.Base(), e.Limit()))
		}
	}
	m.devs = append(m.devs, d)
	sort.Slice(m.devs, func(i, j int) bool { return m.devs[i].Base() < m.devs[j].Base() })
}

// Devices returns the devices in address order.
func (m *Map) Devices() []*Device { return m.devs }

// Find returns the device containing addr, or nil.
func (m *Map) Find(addr PhysAddr) *Device {
	i := sort.Search(len(m.devs), func(i int) bool { return m.devs[i].Limit() > addr })
	if i < len(m.devs) && m.devs[i].Contains(addr) {
		return m.devs[i]
	}
	return nil
}

// MustFind is Find but panics on an unmapped address; hardware would raise
// a bus abort here, and in the simulator an unmapped access is always a bug.
func (m *Map) MustFind(addr PhysAddr) *Device {
	d := m.Find(addr)
	if d == nil {
		panic(fmt.Sprintf("mem: access to unmapped physical address %#x", addr))
	}
	return d
}

// Package mem models the physical memory devices of the simulated SoC: the
// external DRAM chips and the on-SoC internal SRAM (iRAM). Devices are
// sparse — backing pages are allocated on first touch — so a platform can
// expose a 1–2 GB DRAM without the host paying for it.
//
// This package is purely about storage and the physical address map. Timing
// and observability (who can see an access) live in the bus, cache, and cpu
// packages layered above.
package mem

import (
	"fmt"
	"sort"
)

// PhysAddr is a physical address on the SoC.
type PhysAddr uint64

// PageSize is the backing-store granule and the architectural page size.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageBase returns the page-aligned base of addr.
func PageBase(a PhysAddr) PhysAddr { return a &^ (PageSize - 1) }

// Store is a sparse byte store of a fixed size, indexed from zero. Backing
// pages materialise on first write; reads of untouched pages return zero.
//
// A Store may carry a frozen copy-on-write base layer underneath its
// private pages: Seal freezes the current contents into the base, and Fork
// returns a new store sharing that base. Reads fall through private pages
// to the base; the first write to a base page copies it into the private
// layer. Pages reachable from any base map are immutable forever — Seal
// never mutates an existing base map, it builds a merged replacement — so
// concurrently forking from one sealed store is safe even though stores
// themselves are single-owner.
//
// A Store is not safe for concurrent use: each simulated platform is
// single-threaded by design, and each experiment owns its platform. The
// former per-access RWMutex bought nothing but cost on the hot path, so the
// bulk accessors are lock-elided; a last-page pointer cache short-circuits
// the map lookup for the sequential streams that dominate the workloads.
type Store struct {
	size  uint64
	pages map[uint64]*[PageSize]byte // private, writable pages
	base  map[uint64]*[PageSize]byte // frozen COW layer; nil for a flat store

	// Recently touched pages, direct-mapped by a multiplicative hash of the
	// page number: access streams are sequential but interleave a few pages
	// (an L2 eviction write-back ping-pongs with the fill that triggered
	// it), so a handful of slots turns nearly every per-access map lookup
	// into a compare. The hash matters: the fill and write-back streams
	// run exactly one L2-capacity apart, a power-of-two page distance that
	// would make both streams collide in every low-bits-indexed slot.
	// cacheRW marks slots holding private pages; a slot caching a frozen
	// base page satisfies reads but never the write path.
	cachePN   [pageCacheSlots]uint64
	cachePage [pageCacheSlots]*[PageSize]byte
	cacheRW   [pageCacheSlots]bool
}

// pageCacheSlots sizes the Store's direct-mapped page cache; must be a
// power of two.
const pageCacheSlots = 8

// pageSlot maps a page number to its cache slot by Fibonacci hashing.
func pageSlot(pn uint64) uint64 {
	return (pn * 0x9e3779b97f4a7c15) >> 61 // top bits select among 8 slots
}

// NewStore returns a sparse store of the given size in bytes.
func NewStore(size uint64) *Store {
	return &Store{size: size, pages: make(map[uint64]*[PageSize]byte)}
}

// lookup returns the backing page pn, or nil if untouched. Private pages
// shadow base pages, so the private map is always consulted first on a
// cache miss.
func (s *Store) lookup(pn uint64) *[PageSize]byte {
	slot := pageSlot(pn)
	if s.cachePage[slot] != nil && s.cachePN[slot] == pn {
		return s.cachePage[slot]
	}
	p := s.pages[pn]
	rw := p != nil
	if p == nil && s.base != nil {
		p = s.base[pn]
	}
	if p != nil {
		s.cachePN[slot], s.cachePage[slot], s.cacheRW[slot] = pn, p, rw
	}
	return p
}

// materialise returns a writable backing page pn, allocating it if
// untouched and copying it out of the frozen base on first write.
func (s *Store) materialise(pn uint64) *[PageSize]byte {
	slot := pageSlot(pn)
	if s.cacheRW[slot] && s.cachePN[slot] == pn {
		return s.cachePage[slot]
	}
	p := s.pages[pn]
	if p == nil {
		p = new([PageSize]byte)
		if s.base != nil {
			if frozen := s.base[pn]; frozen != nil {
				*p = *frozen
			}
		}
		s.pages[pn] = p
	}
	s.cachePN[slot], s.cachePage[slot], s.cacheRW[slot] = pn, p, true
	return p
}

// Seal freezes the store's current contents into its copy-on-write base
// layer. Subsequent writes to any page — including by this store — first
// copy the page into the private layer, so every Fork taken from the sealed
// state keeps seeing the sealed bytes. Sealing an already-sealed store
// merges the private pages into a new base map; the old base map is never
// mutated, so earlier forks are unaffected.
func (s *Store) Seal() {
	if len(s.pages) == 0 && s.base != nil {
		return // already sealed with nothing new to freeze
	}
	nb := make(map[uint64]*[PageSize]byte, len(s.base)+len(s.pages))
	for pn, p := range s.base {
		nb[pn] = p
	}
	for pn, p := range s.pages {
		nb[pn] = p
	}
	s.base = nb
	s.pages = make(map[uint64]*[PageSize]byte)
	s.cacheRW = [pageCacheSlots]bool{} // every cached page is now frozen
}

// Fork seals the store and returns a new store sharing its pages
// copy-on-write. The fork costs O(1) plus the seal's metadata merge; page
// data is copied only when either side writes.
func (s *Store) Fork() *Store {
	s.Seal()
	return &Store{size: s.size, pages: make(map[uint64]*[PageSize]byte), base: s.base}
}

// Size returns the store's capacity in bytes.
func (s *Store) Size() uint64 { return s.size }

func (s *Store) check(off uint64, n int) {
	if off+uint64(n) > s.size {
		panic(fmt.Sprintf("mem: access [%#x,+%d) beyond store size %#x", off, n, s.size))
	}
}

// ByteAt returns the byte at offset off.
func (s *Store) ByteAt(off uint64) byte {
	s.check(off, 1)
	p := s.lookup(off >> PageShift)
	if p == nil {
		return 0
	}
	return p[off&(PageSize-1)]
}

// SetByte stores b at offset off.
func (s *Store) SetByte(off uint64, b byte) {
	s.check(off, 1)
	s.materialise(off >> PageShift)[off&(PageSize-1)] = b
}

// Read copies len(dst) bytes starting at off into dst.
func (s *Store) Read(off uint64, dst []byte) {
	s.check(off, len(dst))
	for len(dst) > 0 {
		pn := off >> PageShift
		po := off & (PageSize - 1)
		n := PageSize - po
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if p := s.lookup(pn); p != nil {
			copy(dst[:n], p[po:po+n])
		} else {
			clear(dst[:n])
		}
		dst = dst[n:]
		off += n
	}
}

// Write copies src into the store starting at off.
func (s *Store) Write(off uint64, src []byte) {
	s.check(off, len(src))
	for len(src) > 0 {
		pn := off >> PageShift
		po := off & (PageSize - 1)
		n := PageSize - po
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		copy(s.materialise(pn)[po:po+n], src[:n])
		src = src[n:]
		off += n
	}
}

// zeroPage is the comparison target for untouched (architecturally zero)
// pages during Rebase.
var zeroPage [PageSize]byte

// Rebase re-encodes the store as a delta against a sealed base store: after
// it returns, the store's COW base layer is the base's (shared, not copied)
// and the private layer holds only the pages whose bytes differ from the
// base — including explicit zero pages shadowing base pages this store has
// zeroed. Byte-for-byte contents are unchanged; only the representation is.
// It returns the number of private delta pages retained, which is the
// store's marginal memory cost over the shared base.
//
// This is the memory lever behind delta-encoded parked snapshots: a parked
// device's stores drop their merged per-fork base maps (O(every page the
// boot image touched) each) and keep O(pages diverged since boot). The next
// Fork re-merges via Seal as usual, so hydration needs no special path.
func (s *Store) Rebase(base *Store) int {
	if s == base {
		panic("mem: Rebase against self")
	}
	if base.size != s.size {
		panic(fmt.Sprintf("mem: Rebase size mismatch: %#x vs base %#x", s.size, base.size))
	}
	if len(base.pages) != 0 {
		panic("mem: Rebase against an unsealed base (Seal it first)")
	}
	delta := make(map[uint64]*[PageSize]byte)
	keep := func(pn uint64, p *[PageSize]byte, owned bool) {
		if !owned {
			cp := new([PageSize]byte)
			if p != nil {
				*cp = *p
			}
			p = cp
		}
		delta[pn] = p
	}
	// Pages this store can see: private shadows first, then its old base.
	for pn, p := range s.pages {
		if bp := base.base[pn]; bp != p {
			if (bp == nil && *p != zeroPage) || (bp != nil && *p != *bp) {
				keep(pn, p, true) // private pages are exclusively owned
			}
		}
	}
	for pn, p := range s.base {
		if _, shadowed := s.pages[pn]; shadowed {
			continue
		}
		if bp := base.base[pn]; bp != p {
			if (bp == nil && *p != zeroPage) || (bp != nil && *p != *bp) {
				keep(pn, p, false) // old-base pages are frozen and shared
			}
		}
	}
	// Base pages this store has lost (ZeroAll, or never inherited): shadow
	// them with explicit zero pages so reads keep returning zeroes.
	for pn, bp := range base.base {
		if _, ok := delta[pn]; ok {
			continue
		}
		if s.pages[pn] != nil || (s.base != nil && s.base[pn] != nil) {
			continue // visible above; already compared
		}
		if *bp != zeroPage {
			keep(pn, nil, false)
		}
	}
	s.pages = delta
	s.base = base.base
	s.cachePN = [pageCacheSlots]uint64{}
	s.cachePage = [pageCacheSlots]*[PageSize]byte{}
	s.cacheRW = [pageCacheSlots]bool{}
	return len(delta)
}

// ResidentPages estimates the number of map entries this store holds across
// both layers — the metadata footprint a Rebase collapses. Pages shadowing a
// base entry count twice; the estimate is exact for sealed or rebased
// stores, which have no shadows.
func (s *Store) ResidentPages() int { return len(s.pages) + len(s.base) }

// ZeroAll discards every backing page — including the inherited COW base —
// returning the store to all-zeroes.
func (s *Store) ZeroAll() {
	s.pages = make(map[uint64]*[PageSize]byte)
	s.base = nil
	s.cachePage = [pageCacheSlots]*[PageSize]byte{}
	s.cacheRW = [pageCacheSlots]bool{}
}

// TouchedPages returns the sorted offsets of pages that have backing store,
// in the private layer or inherited from the COW base: a forked world's
// touched set must include the pages its parent dirtied, or remanence
// post-mortems would under-scan the fork. Untouched pages are
// architecturally zero and cannot hold remanent data.
func (s *Store) TouchedPages() []uint64 {
	out := make([]uint64, 0, len(s.pages)+len(s.base))
	for pn := range s.pages {
		out = append(out, pn<<PageShift)
	}
	for pn := range s.base {
		if _, shadowed := s.pages[pn]; !shadowed {
			out = append(out, pn<<PageShift)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MutatePages calls fn for every touched page (base pages included), in
// ascending address order, with its base offset and a mutable view of its
// bytes. Inherited base pages are materialised before fn sees them — fn
// mutates in place, and frozen base pages are shared with other forks. It
// is the hook the remanence model uses to decay memory contents; the fixed
// order keeps the RNG draw sequence — and therefore every decayed dump —
// identical for a given seed.
func (s *Store) MutatePages(fn func(base uint64, data []byte)) {
	for _, base := range s.TouchedPages() {
		fn(base, s.materialise(base>>PageShift)[:])
	}
}

// Device is a physical memory device mapped at a fixed base address.
type Device struct {
	name string
	base PhysAddr
	s    *Store
	// Volatile reports whether the device loses content on power cut
	// according to its technology curve; both DRAM and SRAM are volatile,
	// but with different decay rates (see package remanence).
	tech Technology
}

// Technology identifies the storage technology, which selects the remanence
// decay curve on power loss.
type Technology int

// Storage technologies.
const (
	TechDRAM Technology = iota // external DDR DRAM
	TechSRAM                   // on-SoC internal SRAM (iRAM)
)

func (t Technology) String() string {
	switch t {
	case TechDRAM:
		return "DRAM"
	case TechSRAM:
		return "SRAM"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// NewDevice returns a device of the given technology at base covering size bytes.
func NewDevice(name string, tech Technology, base PhysAddr, size uint64) *Device {
	return &Device{name: name, base: base, s: NewStore(size), tech: tech}
}

// Name returns the device name (e.g. "dram0", "iram").
func (d *Device) Name() string { return d.name }

// Base returns the device's base physical address.
func (d *Device) Base() PhysAddr { return d.base }

// Size returns the device's capacity in bytes.
func (d *Device) Size() uint64 { return d.s.Size() }

// Limit returns one past the device's last physical address.
func (d *Device) Limit() PhysAddr { return d.base + PhysAddr(d.s.Size()) }

// Tech returns the storage technology.
func (d *Device) Tech() Technology { return d.tech }

// Store exposes the raw backing store; used by remanence and by attack
// drivers that dump the physical device contents.
func (d *Device) Store() *Store { return d.s }

// Fork returns a device of identical geometry whose store is a
// copy-on-write fork of this device's store (which is sealed as a side
// effect; see Store.Seal).
func (d *Device) Fork() *Device {
	return &Device{name: d.name, base: d.base, s: d.s.Fork(), tech: d.tech}
}

// Rebase re-encodes the device's store as a delta against base's sealed
// store (see Store.Rebase); returns the number of delta pages retained.
func (d *Device) Rebase(base *Device) int { return d.s.Rebase(base.s) }

// ResidentPages reports how many distinct pages the device's store reaches
// (private plus base layers) — the page-count basis of footprint accounting.
func (d *Device) ResidentPages() int { return d.s.ResidentPages() }

// Contains reports whether addr falls inside the device.
func (d *Device) Contains(addr PhysAddr) bool {
	return addr >= d.base && addr < d.Limit()
}

// ByteAt reads the byte at absolute physical address addr.
func (d *Device) ByteAt(addr PhysAddr) byte {
	return d.s.ByteAt(uint64(addr - d.base))
}

// SetByte writes b at absolute physical address addr.
func (d *Device) SetByte(addr PhysAddr, b byte) {
	d.s.SetByte(uint64(addr-d.base), b)
}

// Read copies len(dst) bytes starting at absolute address addr.
func (d *Device) Read(addr PhysAddr, dst []byte) {
	d.s.Read(uint64(addr-d.base), dst)
}

// Write copies src starting at absolute address addr.
func (d *Device) Write(addr PhysAddr, src []byte) {
	d.s.Write(uint64(addr-d.base), src)
}

// Map is the SoC physical address map: an ordered set of non-overlapping
// devices.
type Map struct {
	devs []*Device
}

// NewMap returns an address map over the given devices. It panics if any
// two devices overlap.
func NewMap(devs ...*Device) *Map {
	m := &Map{}
	for _, d := range devs {
		m.Add(d)
	}
	return m
}

// Add inserts a device, keeping the map sorted by base address.
func (m *Map) Add(d *Device) {
	for _, e := range m.devs {
		if d.Base() < e.Limit() && e.Base() < d.Limit() {
			panic(fmt.Sprintf("mem: device %s [%#x,%#x) overlaps %s [%#x,%#x)",
				d.Name(), d.Base(), d.Limit(), e.Name(), e.Base(), e.Limit()))
		}
	}
	m.devs = append(m.devs, d)
	sort.Slice(m.devs, func(i, j int) bool { return m.devs[i].Base() < m.devs[j].Base() })
}

// Devices returns the devices in address order.
func (m *Map) Devices() []*Device { return m.devs }

// Find returns the device containing addr, or nil.
func (m *Map) Find(addr PhysAddr) *Device {
	i := sort.Search(len(m.devs), func(i int) bool { return m.devs[i].Limit() > addr })
	if i < len(m.devs) && m.devs[i].Contains(addr) {
		return m.devs[i]
	}
	return nil
}

// MustFind is Find but panics on an unmapped address; hardware would raise
// a bus abort here, and in the simulator an unmapped access is always a bug.
func (m *Map) MustFind(addr PhysAddr) *Device {
	d := m.Find(addr)
	if d == nil {
		panic(fmt.Sprintf("mem: access to unmapped physical address %#x", addr))
	}
	return d
}

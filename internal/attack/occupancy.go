package attack

import (
	"fmt"

	"sentry/internal/mem"
	"sentry/internal/soc"
)

// OccupancyProbe measures how many cache ways are allocatable to a normal-
// world attacker — the cache-occupancy side channel the randomized-cache
// addendum (PAPERS.md) shows survives index randomization. Sentry's §4.5
// way-locking changes exactly this number: every locked way is a way the
// attacker's fills can no longer claim, so the locked-way count — and with
// it the existence of a background session holding keys — is readable by
// unprivileged code with no access to any victim address.
type OccupancyProbe struct {
	s     *soc.SoC
	probe mem.PhysAddr // attacker region: 2×Ways way-strided congruent lines
}

// NewOccupancyProbe builds a probe over attacker memory at probe, which
// must have 2×Ways×WaySize bytes of headroom.
func NewOccupancyProbe(s *soc.SoC, probe mem.PhysAddr) *OccupancyProbe {
	return &OccupancyProbe{s: s, probe: probe}
}

// Measure fills one set with 2×Ways congruent lines and counts how many
// stayed resident: that is the number of allocatable ways, and Ways minus it
// the number of locked ways. Returns the inferred locked-way count and a
// deterministic trace line.
func (o *OccupancyProbe) Measure() (locked int, trace string) {
	l2 := o.s.L2
	cfg := l2.Config()
	nw := 2 * cfg.Ways
	var b [4]byte
	l2.SetMaster(AttackerCore)
	for i := 0; i < nw; i++ {
		o.s.CPU.ReadPhys(o.probe+mem.PhysAddr(i*cfg.WaySize), b[:])
	}
	l2.SetMaster(0)
	resident := 0
	for i := 0; i < nw; i++ {
		if hit, _, _ := l2.Probe(o.probe + mem.PhysAddr(i*cfg.WaySize)); hit {
			resident++
		}
	}
	locked = cfg.Ways - resident
	if locked < 0 {
		locked = 0
	}
	probeEvent(o.s, "occupancy", uint64(locked))
	return locked, fmt.Sprintf("occupancy resident=%d locked=%d", resident, locked)
}

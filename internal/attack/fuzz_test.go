package attack

import (
	"bytes"
	"math"
	"testing"

	"sentry/internal/mem"
	"sentry/internal/remanence"
	"sentry/internal/sim"
)

// FuzzColdbootScan throws arbitrary memory images and decay windows at the
// dump scanners. The scanners must never panic, must agree with each other
// (FuzzyContains at budget zero IS Contains; Contains implies FuzzyContains
// at any budget), and must never report the marker recovered from an image
// that never contained it — decay collapses bytes to the 0x00/0xFF ground
// pattern and cannot mint ASCII marker bytes, so absence survives decay.
func FuzzColdbootScan(f *testing.F) {
	marker := []byte("MARKER-0123456789")
	f.Add([]byte("hello world"), uint16(0), 0.0)
	f.Add(append([]byte("junk"), marker...), uint16(512), 0.05)
	f.Add(bytes.Repeat([]byte{0xAA}, 4096), uint16(4000), 2.0)
	f.Add(marker[:10], uint16(100), 0.5)
	f.Fuzz(func(t *testing.T, data []byte, off uint16, secs float64) {
		const size = 4 * mem.PageSize
		dev := mem.NewDevice("dump", mem.TechDRAM, 0, size)
		// Sanitise the fuzzed decay window: finite, non-negative, bounded.
		if math.IsNaN(secs) || math.IsInf(secs, 0) || secs < 0 {
			secs = 0
		}
		if secs > 100 {
			secs = 100
		}
		base := mem.PhysAddr(uint64(off) % size)
		if n := size - uint64(base); uint64(len(data)) > n {
			data = data[:n]
		}
		if len(data) > 0 {
			dev.Write(base, data)
		}
		// The marker is in the image iff it is in what we wrote: the rest of
		// the device is architectural zero and the marker has no zero bytes.
		planted := bytes.Contains(data, marker)

		remanence.Decay(dev, sim.NewRNG(int64(off)+1), secs, remanence.RoomTempC)
		st := dev.Store()

		got := Contains(st, marker)
		if got && !planted {
			t.Fatalf("false positive: marker recovered from an image that never held it (off=%d secs=%g)", base, secs)
		}
		if secs == 0 && planted && !got {
			t.Fatalf("false negative: intact image lost the marker (off=%d)", base)
		}
		if fz := FuzzyContains(st, marker, 0); fz != got {
			t.Fatalf("FuzzyContains(0)=%v disagrees with Contains=%v", fz, got)
		}
		if got && !FuzzyContains(st, marker, 4) {
			t.Fatal("Contains=true but FuzzyContains(4)=false — fuzzy match is not monotone")
		}
		if n := CountPattern(st, marker[:8]); n < 0 {
			t.Fatalf("negative pattern count %d", n)
		}
		for _, key := range FindAESKeys(st) {
			if len(key) != 16 {
				t.Fatalf("keyfinder returned a %d-byte key", len(key))
			}
			if bytes.Equal(key, make([]byte, 16)) {
				t.Fatal("keyfinder returned the all-zero key (decayed memory, not a hit)")
			}
		}
	})
}

// Package attack implements the three in-scope memory attacks of the
// paper's threat model (§3.1) against the simulated platform:
//
//   - Cold boot (coldboot.go): reboot/reflash/reset the device into an
//     attacker image and scrape remanent memory — including Halderman-style
//     AES key-schedule recovery from DRAM dumps.
//   - Bus monitoring (busmon.go): a probe on the external memory bus that
//     records every transaction, used both for direct data capture and for
//     the access-pattern side channel that recovers AES keys from first-
//     round T-table lookups.
//   - DMA (dma.go): a malicious peripheral programming a DMA engine to
//     scrape physical memory while the device runs.
//
// Every attack returns concrete recovered bytes, so experiments assert
// "the secret was/was not recovered" mechanically (Table 3).
package attack

import (
	"bytes"
	"encoding/binary"

	"sentry/internal/aes"
	"sentry/internal/mem"
)

// CountPattern counts (non-overlapping, stride len(pattern)) occurrences of
// pattern in the store — the paper's Table 2 methodology: fill memory with
// an 8-byte pattern, reset, grep the dump.
func CountPattern(st *mem.Store, pattern []byte) int {
	if len(pattern) == 0 {
		return 0
	}
	count := 0
	buf := make([]byte, mem.PageSize)
	for _, base := range st.TouchedPages() {
		st.Read(base, buf)
		for off := 0; off+len(pattern) <= len(buf); off += len(pattern) {
			if bytes.Equal(buf[off:off+len(pattern)], pattern) {
				count++
			}
		}
	}
	return count
}

// Contains reports whether needle appears anywhere in the store (sliding
// window, page-spanning included).
func Contains(st *mem.Store, needle []byte) bool {
	if len(needle) == 0 {
		return true
	}
	// Read overlapping windows so needles spanning page boundaries hit.
	buf := make([]byte, mem.PageSize+len(needle)-1)
	size := st.Size()
	for _, base := range st.TouchedPages() {
		n := uint64(len(buf))
		if base+n > size {
			n = size - base
		}
		st.Read(base, buf[:n])
		if bytes.Index(buf[:n], needle) >= 0 {
			return true
		}
	}
	return false
}

// FuzzyContains reports whether a window matching needle in all but at
// most maxMismatch bytes appears anywhere in the store (page-spanning
// windows included). This is the recoverable-plaintext test for remanence
// images: bit decay collapses individual bytes toward the ground state, but
// a copy that survives in all but a few positions is still legible to an
// attacker. With maxMismatch zero it degenerates to Contains.
func FuzzyContains(st *mem.Store, needle []byte, maxMismatch int) bool {
	if len(needle) == 0 {
		return true
	}
	if maxMismatch <= 0 {
		return Contains(st, needle)
	}
	buf := make([]byte, mem.PageSize+len(needle)-1)
	size := st.Size()
	for _, base := range st.TouchedPages() {
		n := uint64(len(buf))
		if base+n > size {
			n = size - base
		}
		st.Read(base, buf[:n])
		win := buf[:n]
		for off := 0; off+len(needle) <= len(win); off++ {
			bad := 0
			for i, b := range needle {
				if win[off+i] != b {
					bad++
					if bad > maxMismatch {
						break
					}
				}
			}
			if bad <= maxMismatch {
				return true
			}
		}
	}
	return false
}

// maxScheduleViolations is the damage budget of the error-tolerant
// keyfinder: each decayed byte breaks at most three of the 40 expansion
// relations, so a window with up to 12 violations is still worth a
// reconstruction attempt, while random data violates essentially all 40.
const maxScheduleViolations = 12

// reconstructAgreeThreshold is how many of the 44 words a candidate
// anchor's rebuilt schedule must reproduce: 3/4 agreement is astronomically
// unlikely for noise yet survives several decayed bytes.
const reconstructAgreeThreshold = 33

// FindAESKeys runs the Halderman-style keyfinder over the store: slide a
// 176-byte window (word-aligned), use the AES-128 key-schedule redundancy
// to identify candidates, and reconstruct through bit decay the way the
// cold-boot paper does. Returns the distinct 16-byte keys recovered.
func FindAESKeys(st *mem.Store) [][]byte {
	var keys [][]byte
	seen := map[[16]byte]bool{}
	const schedBytes = 176
	const schedWords = 44
	buf := make([]byte, mem.PageSize+schedBytes)
	zero := make([]byte, len(buf))
	size := st.Size()
	decoded := make([]uint32, 0, len(buf)/4)
	for _, base := range st.TouchedPages() {
		n := uint64(len(buf))
		if base+n > size {
			n = size - base
		}
		st.Read(base, buf[:n])
		// Zeroed pages (the free queue, never-written frames) are the common
		// case in a dump, and an all-zero window is a trap for the relation
		// prefilter: the 30 non-boundary relations all hold (0 == 0^0), so
		// it survives to reconstruction, which then provably fails — every
		// anchor's rebuilt schedule is the expansion of the zero key, whose
		// rcon-injected words can never reach 33-of-44 agreement with zeros.
		// Skip the whole page in one memcmp instead.
		if bytes.Equal(buf[:n], zero[:n]) {
			continue
		}
		// Candidate offsets are word-aligned, so decode each aligned word of
		// the window once instead of re-decoding all 44 per offset (each byte
		// otherwise decodes 44 times).
		decoded = decoded[:0]
		for o := 0; o+4 <= int(n); o += 4 {
			decoded = append(decoded, binary.BigEndian.Uint32(buf[o:]))
		}
		for off := 0; off+schedBytes <= int(n); off += 4 {
			words := decoded[off/4 : off/4+schedWords]
			// Prefilter with an early exit: walk the expansion relations in
			// order and bail as soon as the damage budget is blown. Random
			// data breaks essentially every relation, so almost all windows
			// die after the first dozen-odd checks instead of evaluating all
			// 40 and reconstructing.
			bad := 0
			for i := 4; i < schedWords && bad <= maxScheduleViolations; i++ {
				if words[i] != words[i-4]^aes.ScheduleF(i, words[i-1]) {
					bad++
				}
			}
			if bad > maxScheduleViolations {
				continue
			}
			// All-zero windows inside otherwise-live pages hit the same
			// prefilter trap as zero pages; skip them for the same reason.
			allZero := true
			for _, w := range words {
				if w != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				continue
			}
			key, ok := aes.ReconstructKeyFromDamagedSchedule(words, reconstructAgreeThreshold)
			if !ok {
				continue
			}
			var k16 [16]byte
			copy(k16[:], key)
			if k16 == ([16]byte{}) {
				continue // an all-zero "key" is decayed memory, not a hit
			}
			if !seen[k16] {
				seen[k16] = true
				keys = append(keys, key)
			}
		}
	}
	return keys
}

package attack

import (
	"sentry/internal/firmware"
	"sentry/internal/mem"
	"sentry/internal/soc"
)

// ColdBootVariant selects how the attacker cuts power (§4.1 methodology).
type ColdBootVariant int

// Cold-boot variants, in increasing power-off duration.
const (
	// OSReboot: warm reboot into an attacker OS; no power loss. Possible
	// when the bootloader accepts the attacker's image.
	OSReboot ColdBootVariant = iota
	// Reflash: tap the reset button (≈50 ms power blip) and boot a flasher
	// that dumps memory.
	Reflash
	// HeldReset: hold reset for two seconds.
	HeldReset
)

func (v ColdBootVariant) String() string {
	switch v {
	case OSReboot:
		return "os-reboot"
	case Reflash:
		return "device-reflash"
	case HeldReset:
		return "2s-reset"
	}
	return "unknown"
}

// dumpImage is the attacker's memory-dumping payload. The OS-reboot variant
// boots a full malicious OS (which costs some low DRAM); the flasher
// variants dump from the bootloader environment and scribble nothing.
func dumpImage(v ColdBootVariant) firmware.Image {
	img := firmware.Image{Name: "memdump", Vendor: ""}
	if v == OSReboot {
		img.ScribbleFraction = firmware.DefaultOSScribbleFraction
	}
	return img
}

// Dump is what the attacker walked away with: post-attack device contents.
type Dump struct {
	Variant ColdBootVariant
	DRAM    *mem.Store
	IRAM    *mem.Store
}

// CountPattern counts pattern survivors in the given store.
func (d *Dump) CountPattern(st *mem.Store, pattern []byte) int {
	return CountPattern(st, pattern)
}

// RecoverKeys runs the AES keyfinder over both DRAM and iRAM.
func (d *Dump) RecoverKeys() [][]byte {
	keys := FindAESKeys(d.DRAM)
	keys = append(keys, FindAESKeys(d.IRAM)...)
	return keys
}

// ContainsSecret reports whether the needle survived anywhere.
func (d *Dump) ContainsSecret(needle []byte) bool {
	return Contains(d.DRAM, needle) || Contains(d.IRAM, needle)
}

// MountColdBoot executes the chosen cold-boot variant against the device
// and returns the attacker's memory dump. If the bootloader is locked, the
// unsigned dump image is rejected and the attack fails with the firmware
// error (the attacker could unlock the bootloader, but that wipes user
// data — footnote 1 of the paper).
func MountColdBoot(s *soc.SoC, v ColdBootVariant) (*Dump, error) {
	probeEvent(s, "cold-boot:"+v.String(), uint64(v))
	img := dumpImage(v)
	var err error
	switch v {
	case OSReboot:
		err = s.OSReboot(img)
	case Reflash:
		err = s.Reflash(img)
	case HeldReset:
		err = s.HeldReset(2.0, img)
	}
	if err != nil {
		return nil, err
	}
	return &Dump{Variant: v, DRAM: s.DRAM.Store(), IRAM: s.IRAM.Store()}, nil
}

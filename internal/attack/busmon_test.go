package attack

import (
	"bytes"
	"testing"

	"sentry/internal/aes"
	"sentry/internal/mem"
	"sentry/internal/onsoc"
	"sentry/internal/soc"
)

func TestBusMonitorCapturesDataOnTheBus(t *testing.T) {
	s := soc.Tegra3(1)
	mon := &BusMonitor{}
	s.Bus.Attach(mon)
	s.CPU.WritePhysUncached(soc.DRAMBase+0x1000, []byte("PLAINTEXT-ON-BUS"))
	if !mon.CapturedData([]byte("PLAINTEXT-ON-BUS")) {
		t.Fatal("probe missed bus data")
	}
	mon.Reset()
	if len(mon.Transactions()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestBusMonitorBlindToOnSoCTraffic(t *testing.T) {
	s := soc.Tegra3(1)
	mon := &BusMonitor{}
	s.Bus.Attach(mon)
	base, _ := s.UsableIRAM()
	s.CPU.WritePhys(base, []byte("IRAM-SECRET-BYTES"))
	s.CPU.ReadPhys(base, make([]byte, 17))
	if mon.CapturedData([]byte("IRAM-SECRET-BYTES")) {
		t.Fatal("probe saw iRAM traffic")
	}
}

// observeBlocks encrypts known plaintext blocks one at a time, harvesting
// the first-round T-table read addresses for each.
func observeBlocks(t *testing.T, s *soc.SoC, a *onsoc.AES, mon *BusMonitor,
	plaintexts [][]byte, flushBetween bool) [][]mem16 {
	t.Helper()
	var perBlock [][]mem16
	for _, p := range plaintexts {
		if flushBetween {
			// Each observation starts cold (e.g. across suspend cycles, when
			// the OS flushes the cache).
			s.L2.CleanInvalidateWays(s.L2.AllWaysMask())
		}
		mon.Reset()
		ct := make([]byte, 16)
		if err := a.EncryptCBC(ct, p, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
		reads := mon.ReadsInRange(a.ArenaBase()+aes.TeOffset, 1024)
		var rs []mem16
		for _, r := range reads {
			rs = append(rs, mem16(r))
		}
		perBlock = append(perBlock, rs)
	}
	return perBlock
}

type mem16 = mem.PhysAddr

func TestKeyRecoveryFromUncachedArena(t *testing.T) {
	// Generic AES with its arena in a device mapping (dm-crypt-style
	// DMA-coherent buffer): every lookup is bus-visible; one known block
	// recovers the whole key.
	s := soc.Tegra3(1)
	key := []byte("busmon victim k.")
	a, err := onsoc.NewGeneric(s, soc.DRAMBase+0x400000, key, true)
	if err != nil {
		t.Fatal(err)
	}
	mon := &BusMonitor{}
	s.Bus.Attach(mon)

	pt := []byte("known plaintext!")
	obs := observeBlocks(t, s, a, mon, [][]byte{pt}, false)

	kr := NewKeyRecovery(a.ArenaBase())
	if err := kr.AddBlock(pt, obs[0][:16], 4); err != nil {
		t.Fatal(err)
	}
	got, ok := kr.Key()
	if !ok {
		t.Fatalf("key not unique: %d candidates", kr.CandidatesLeft())
	}
	// CBC xors the IV (zero here) before the block cipher, so the recovered
	// key is exactly key ^ 0 = key for the first block.
	if !bytes.Equal(got, key) {
		t.Fatalf("recovered %x, want %x", got, key)
	}
}

func TestKeyRecoveryFromCachedArenaLineFills(t *testing.T) {
	// Cached arena: the probe only sees 32-byte line fills (8 table entries
	// each) and only on misses, so the attacker uses the chosen-plaintext
	// two-stage method. ECB-style oracle: the attacker feeds blocks through
	// an interface they control (dm-crypt write path) and the OS flushes
	// the cache across suspend cycles between observations.
	s := soc.Tegra3(1)
	key := []byte("cached victim k!")
	a, err := onsoc.NewGeneric(s, soc.DRAMBase+0x400000, key, false)
	if err != nil {
		t.Fatal(err)
	}
	mon := &BusMonitor{}
	s.Bus.Attach(mon)

	oracle := func(p []byte) []mem.PhysAddr {
		s.L2.CleanInvalidateWays(s.L2.AllWaysMask()) // suspend-cycle flush
		mon.Reset()
		if err := a.EncryptCBC(make([]byte, 16), p, make([]byte, 16)); err != nil {
			t.Fatal(err)
		}
		return mon.ReadsInRange(a.ArenaBase()+aes.TeOffset, 1024)
	}

	got, mask, err := RecoverKeyBitsCachedArena(oracle, a.ArenaBase(), 32, 10, s.RNG)
	if err != nil {
		t.Fatal(err)
	}
	// A line-granular probe leaks the top 5 bits of every key byte — 80 of
	// 128 bits, leaving a trivial 2^48 search.
	for i := 0; i < 16; i++ {
		if mask[i] != 0xF8 {
			t.Fatalf("mask[%d] = %#x", i, mask[i])
		}
		if got[i]&mask[i] != key[i]&mask[i] {
			t.Fatalf("byte %d: recovered %#02x, want high bits of %#02x", i, got[i], key[i])
		}
	}
}

func TestKeyRecoveryDefeatedByOnSoCAES(t *testing.T) {
	// The Table 3 bus-monitoring column for AES On SoC: zero T-table reads
	// cross the bus, so the side channel yields nothing.
	s := soc.Tegra3(1)
	base, size := s.UsableIRAM()
	a, err := onsoc.NewInIRAM(s, onsoc.NewIRAMAlloc(base, size), []byte("protected key!!!"))
	if err != nil {
		t.Fatal(err)
	}
	mon := &BusMonitor{}
	s.Bus.Attach(mon)
	pt := []byte("known plaintext!")
	_ = a.EncryptCBC(make([]byte, 16), pt, make([]byte, 16))
	if reads := mon.ReadsInRange(a.ArenaBase()+aes.TeOffset, 1024); len(reads) != 0 {
		t.Fatalf("on-SoC AES leaked %d table reads to the bus", len(reads))
	}
	kr := NewKeyRecovery(a.ArenaBase())
	if _, ok := kr.Key(); ok {
		t.Fatal("key 'recovered' from no observations")
	}
	if kr.CandidatesLeft() != 16*256 {
		t.Fatal("candidate space should be untouched")
	}
}

func TestKeyRecoveryInputValidation(t *testing.T) {
	kr := NewKeyRecovery(0x80000000)
	if err := kr.AddBlock(make([]byte, 8), nil, 4); err == nil {
		t.Fatal("short plaintext accepted")
	}
	if err := kr.AddBlock(make([]byte, 16), make([]mem16, 3), 4); err == nil {
		t.Fatal("too few reads accepted")
	}
	bad := make([]mem16, 16)
	for i := range bad {
		bad[i] = 0x10 // not in the table range
	}
	if err := kr.AddBlock(make([]byte, 16), bad, 4); err == nil {
		t.Fatal("out-of-table reads accepted")
	}
}

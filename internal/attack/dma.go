package attack

import (
	"bytes"
	"fmt"

	"sentry/internal/mem"
	"sentry/internal/soc"
)

// DMAScrape is the FireWire-class attack (§3.1): program a DMA engine over
// a peripheral interface and read arbitrary physical memory while the
// device runs, PIN lock notwithstanding. It needs no reboot, so remanence
// is irrelevant — only address-range protection (TrustZone) and the
// cache-bypass property stand between the attacker and memory.
type DMAScrape struct {
	s *soc.SoC
	// Regions the controller refused (TrustZone-protected).
	Denied []mem.PhysAddr
	data   map[mem.PhysAddr][]byte
}

// MountDMAScrape reads every materialised DRAM page plus the full iRAM over
// DMA, recording what was denied. It fails with soc.ErrUnsupported on
// platforms that expose no DMA-capable peripheral port to an attacker
// (locked production devices).
func MountDMAScrape(s *soc.SoC) (*DMAScrape, error) {
	if !s.Prof.OpenDMAPort {
		return nil, fmt.Errorf("attack: %s exposes no open DMA port: %w", s.Prof.Name, soc.ErrUnsupported)
	}
	probeEvent(s, "dma-scrape", 0)
	a := &DMAScrape{s: s, data: make(map[mem.PhysAddr][]byte)}
	for _, off := range s.DRAM.Store().TouchedPages() {
		a.grab(soc.DRAMBase + mem.PhysAddr(off))
	}
	for off := uint64(0); off < s.Prof.IRAMSize; off += mem.PageSize {
		a.grab(soc.IRAMBase + mem.PhysAddr(off))
	}
	return a, nil
}

func (a *DMAScrape) grab(addr mem.PhysAddr) {
	buf, err := a.s.DMA.ReadFromMem(addr, mem.PageSize)
	if err != nil {
		a.Denied = append(a.Denied, addr)
		return
	}
	a.data[addr] = buf
}

// ContainsSecret reports whether the scrape captured the needle.
func (a *DMAScrape) ContainsSecret(needle []byte) bool {
	for _, page := range a.data {
		if bytes.Index(page, needle) >= 0 {
			return true
		}
	}
	return false
}

// RecoverKeys runs the AES keyfinder over the scraped pages.
func (a *DMAScrape) RecoverKeys() [][]byte {
	// Rebuild a store view of the scrape for the scanner.
	st := mem.NewStore(uint64(len(a.data)) * mem.PageSize)
	i := uint64(0)
	for _, page := range a.data {
		st.Write(i*mem.PageSize, page)
		i++
	}
	return FindAESKeys(st)
}

// PagesRead returns how many pages the scrape captured.
func (a *DMAScrape) PagesRead() int { return len(a.data) }

package attack

import "sentry/internal/aes"

// This file implements the classic single-byte differential fault analysis
// (DFA) against AES-128 (Piret & Quisquater, CHES 2003; the attack model of
// "Fault Attacks on Encrypted General Purpose Compute Platforms"): the
// attacker collects pairs of correct/faulty ciphertexts of the same block
// where the fault was a one-byte corruption of the state entering round 9.
// That fault passes through exactly one MixColumns, so each pair confines
// four bytes of the last round key K10 to a small candidate set; a couple of
// pairs per state column pins all 16 bytes, and the AES key schedule runs
// backwards, so K10 is the master key.

// DFAPair is one correct/faulty ciphertext pair of the same plaintext block
// under the same key.
type DFAPair struct {
	Correct [16]byte
	Faulty  [16]byte
}

// mixCol is the MixColumns matrix: a fault of difference δ in row r entering
// round 9 leaves that round with column difference mixCol[i][r]·δ in row i.
var mixCol = [4][4]byte{
	{2, 3, 1, 1},
	{1, 2, 3, 1},
	{1, 1, 2, 3},
	{3, 1, 1, 2},
}

// gmul multiplies in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// classifyPair validates a pair's differential structure and returns the
// round-9 state column the fault landed in (after ShiftRows). A usable pair
// differs in exactly 4 bytes, one per state row, and the four ciphertext
// positions must be the ShiftRows image of a single column.
func classifyPair(p DFAPair) (col int, ok bool) {
	col = -1
	var rows [4]int // diff position per row, -1 if none
	rows = [4]int{-1, -1, -1, -1}
	n := 0
	for j := 0; j < 16; j++ {
		if p.Correct[j] == p.Faulty[j] {
			continue
		}
		n++
		i := j % 4
		if rows[i] != -1 {
			return -1, false // two diffs in one row: not a single-column fault
		}
		rows[i] = j
		// Final-round ShiftRows moved (row i, col c') to (row i, col c'-i):
		// invert it to recover the pre-shift column.
		c := (j/4 + i) % 4
		if col == -1 {
			col = c
		} else if col != c {
			return -1, false
		}
	}
	return col, n == 4
}

// dfaPositions returns the four ciphertext byte positions a fault in
// round-9 column col spreads to, indexed by state row.
func dfaPositions(col int) [4]int {
	var pos [4]int
	for i := 0; i < 4; i++ {
		pos[i] = 4*((col-i+4)%4) + i
	}
	return pos
}

// candidateTuples enumerates the (k_{j0},k_{j1},k_{j2},k_{j3}) last-round-key
// tuples consistent with one pair: for some fault row r and nonzero
// post-SubBytes difference δ, peeling the final round with the tuple must
// yield the MixColumns pattern mixCol[·][r]·δ at every affected byte.
func candidateTuples(p DFAPair, col int) map[[4]byte]struct{} {
	pos := dfaPositions(col)
	tuples := make(map[[4]byte]struct{})
	var perRow [4][]byte
	for r := 0; r < 4; r++ {
		for d := 1; d < 256; d++ {
			// For each row, the key bytes satisfying
			//   invS(C^k) ^ invS(F^k) == mixCol[row][r]·δ.
			feasible := true
			for i := 0; i < 4; i++ {
				want := gmul(mixCol[i][r], byte(d))
				perRow[i] = perRow[i][:0]
				c, f := p.Correct[pos[i]], p.Faulty[pos[i]]
				for k := 0; k < 256; k++ {
					if aes.InvSub(c^byte(k))^aes.InvSub(f^byte(k)) == want {
						perRow[i] = append(perRow[i], byte(k))
					}
				}
				if len(perRow[i]) == 0 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			for _, k0 := range perRow[0] {
				for _, k1 := range perRow[1] {
					for _, k2 := range perRow[2] {
						for _, k3 := range perRow[3] {
							tuples[[4]byte{k0, k1, k2, k3}] = struct{}{}
						}
					}
				}
			}
		}
	}
	return tuples
}

// RecoverKeyDFA runs the full key-recovery pipeline over a batch of
// correct/faulty pairs. Pairs that don't match the single-byte round-9 fault
// model are discarded. Returns the 16-byte AES-128 master key when every
// state column's candidate set intersects to a unique tuple, (nil, false)
// otherwise — the caller should collect more pairs and retry.
func RecoverKeyDFA(pairs []DFAPair) ([]byte, bool) {
	var perCol [4]map[[4]byte]struct{}
	for _, p := range pairs {
		col, ok := classifyPair(p)
		if !ok {
			continue
		}
		cand := candidateTuples(p, col)
		if len(cand) == 0 {
			continue
		}
		if perCol[col] == nil {
			perCol[col] = cand
			continue
		}
		for t := range perCol[col] {
			if _, keep := cand[t]; !keep {
				delete(perCol[col], t)
			}
		}
	}
	var k10 [16]byte
	for col := 0; col < 4; col++ {
		if len(perCol[col]) != 1 {
			return nil, false
		}
		pos := dfaPositions(col)
		for t := range perCol[col] {
			for i := 0; i < 4; i++ {
				k10[pos[i]] = t[i]
			}
		}
	}
	return masterFromLastRound(k10), true
}

// masterFromLastRound inverts the AES-128 key schedule: the last round key
// determines the master key by running the expansion feedback backwards.
func masterFromLastRound(k10 [16]byte) []byte {
	var w [44]uint32
	for i := 0; i < 4; i++ {
		w[40+i] = uint32(k10[4*i])<<24 | uint32(k10[4*i+1])<<16 |
			uint32(k10[4*i+2])<<8 | uint32(k10[4*i+3])
	}
	for i := 43; i >= 4; i-- {
		w[i-4] = w[i] ^ aes.ScheduleF(i, w[i-1])
	}
	key := make([]byte, 16)
	for i := 0; i < 4; i++ {
		key[4*i] = byte(w[i] >> 24)
		key[4*i+1] = byte(w[i] >> 16)
		key[4*i+2] = byte(w[i] >> 8)
		key[4*i+3] = byte(w[i])
	}
	return key
}

package attack

import (
	"sentry/internal/mem"
	"sentry/internal/soc"
)

// Evicts loads target into the cache, accesses every candidate address, and
// reports whether target was evicted. This is the attacker's deterministic
// eviction test: the classification comes from the L2's own hit/miss
// accounting (Probe), so a resident line is never classified as a miss.
// target must be cacheable DRAM.
func Evicts(s *soc.SoC, target mem.PhysAddr, cand []mem.PhysAddr) bool {
	var b [4]byte
	s.L2.SetMaster(AttackerCore)
	s.CPU.ReadPhys(target, b[:])
	for _, a := range cand {
		s.CPU.ReadPhys(a, b[:])
	}
	s.L2.SetMaster(0)
	hit, _, _ := s.L2.Probe(target)
	return !hit
}

// BuildEvictionSet empirically minimizes pool to an eviction set for target:
// a subset whose traversal evicts target from the L2. The construction is
// purely observational — load target, traverse, test residency — so it works
// identically whether or not the cache's index permutation is randomized;
// what randomization changes is whether any congruent pool can be *chosen*
// without knowing the key. Returns nil if the full pool does not evict
// target (or target is not cacheable DRAM).
//
// Every address the greedy pass keeps is necessarily congruent with target:
// a non-congruent member only touches other sets, so dropping it can never
// stop the eviction, and the pass always drops it. The fuzz suite
// (FuzzEvictionSet) pins both properties.
func BuildEvictionSet(s *soc.SoC, target mem.PhysAddr, pool []mem.PhysAddr) []mem.PhysAddr {
	if uint64(target) < uint64(soc.DRAMBase) {
		return nil
	}
	if !Evicts(s, target, pool) {
		return nil
	}
	set := append([]mem.PhysAddr(nil), pool...)
	for i := 0; i < len(set); {
		trial := make([]mem.PhysAddr, 0, len(set)-1)
		trial = append(trial, set[:i]...)
		trial = append(trial, set[i+1:]...)
		if len(trial) > 0 && Evicts(s, target, trial) {
			set = trial
		} else {
			i++
		}
	}
	return set
}

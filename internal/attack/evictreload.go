package attack

import (
	"fmt"

	"sentry/internal/mem"
	"sentry/internal/soc"
)

// EvictReload is the Evict+Reload driver (ARMageddon's non-flush variant of
// Flush+Reload for ARM parts without an unprivileged flush): the attacker
// shares the victim's lookup table mapping (physically addressable memory
// here), evicts each table entry with a congruent eviction set, lets the
// victim run, and reloads each entry — a hit means the victim brought the
// line back, i.e. touched that entry.
//
// Like PrimeProbe, one Run is a four-round victim/idle differential: an
// entry is recovered only if it reloads hot in both victim rounds and cold
// in both idle rounds. Under the AutoLock variant this is exactly what
// breaks the attack: the moment the victim touches an entry the line counts
// as held by core 0, the attacker's evictions stop working against it, and
// the idle rounds reload hot too.
type EvictReload struct {
	s       *soc.SoC
	table   mem.PhysAddr // victim table base (shared/addressable)
	evict   mem.PhysAddr // attacker region, base-congruent with table
	entries int
}

// NewEvictReload builds a driver for a victim table of entries lines at
// table. evict is attacker memory base-congruent with table; the driver
// uses 2×Ways×entries lines of it.
func NewEvictReload(s *soc.SoC, table, evict mem.PhysAddr, entries int) *EvictReload {
	return &EvictReload{s: s, table: table, evict: evict, entries: entries}
}

func (a *EvictReload) entryAddr(e int) mem.PhysAddr {
	return a.table + mem.PhysAddr(e*a.s.L2.Config().LineSize)
}

// evictAll pushes 2×Ways congruent lines through every monitored set,
// guaranteeing (in the un-defended cache) that every table entry is evicted.
func (a *EvictReload) evictAll() {
	l2 := a.s.L2
	cfg := l2.Config()
	nw := 2 * cfg.Ways
	var b [4]byte
	l2.SetMaster(AttackerCore)
	for e := 0; e < a.entries; e++ {
		for w := 0; w < nw; w++ {
			a.s.CPU.ReadPhys(a.evict+mem.PhysAddr(e*cfg.LineSize+w*cfg.WaySize), b[:])
		}
	}
	l2.SetMaster(0)
}

// reload touches every table entry as the attacker, re-warming the table
// for the next round, and returns which entries were already resident —
// the deterministic analog of timing each reload.
func (a *EvictReload) reload() uint32 {
	l2 := a.s.L2
	var b [4]byte
	var hot uint32
	l2.SetMaster(AttackerCore)
	for e := 0; e < a.entries; e++ {
		addr := a.entryAddr(e)
		if hit, _, _ := l2.Probe(addr); hit {
			hot |= 1 << e
		}
		a.s.CPU.ReadPhys(addr, b[:])
	}
	l2.SetMaster(0)
	return hot
}

func (a *EvictReload) round(victim func()) uint32 {
	a.evictAll()
	if victim != nil {
		victim()
	}
	return a.reload()
}

// Run normalizes the table (one attacker touch per entry), performs the
// four-round differential, and returns the recovered access pattern.
func (a *EvictReload) Run(victim func()) CacheTimingResult {
	a.reload()
	r1 := a.round(victim)
	c1 := a.round(nil)
	r2 := a.round(victim)
	c2 := a.round(nil)
	rec := r1 & r2 &^ c1 &^ c2
	probeEvent(a.s, "evict-reload", uint64(rec))
	return CacheTimingResult{
		Recovered: rec,
		Trace: []string{
			fmt.Sprintf("evict-reload v1=%#06x c1=%#06x v2=%#06x c2=%#06x rec=%#06x",
				r1, c1, r2, c2, rec),
		},
	}
}

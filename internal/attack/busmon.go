package attack

import (
	"bytes"
	"fmt"

	"sentry/internal/aes"
	"sentry/internal/bus"
	"sentry/internal/mem"
	"sentry/internal/obs"
	"sentry/internal/soc"
)

// probeEvent records an attack probe in the device trace. The victim's own
// tracer logging the attack is not a fiction: it models the forensic view a
// defender gets when replaying a captured trace.
func probeEvent(s *soc.SoC, label string, arg uint64) {
	if s.Trace != nil {
		s.Trace.Emit(obs.Event{
			Cycle: s.Clock.Cycles(), Kind: obs.KindAttackProbe, Arg: arg, Label: label,
		})
	}
}

// AttachBusMonitor clips a probe onto the external memory bus and starts
// capturing. It fails with soc.ErrUnsupported on platforms whose DRAM is
// package-on-package stacked: there are no bus traces to attach to (the
// paper's Nexus 4 is such a device; its dev board is not).
func AttachBusMonitor(s *soc.SoC) (*BusMonitor, error) {
	if !s.Prof.ExposedBus {
		return nil, fmt.Errorf("attack: %s has no probeable memory bus: %w", s.Prof.Name, soc.ErrUnsupported)
	}
	m := &BusMonitor{}
	s.Bus.Attach(m)
	probeEvent(s, "bus-monitor", 0)
	return m, nil
}

// BusMonitor is a passive probe on the external memory bus (an EPN/
// FuturePlus-style DDR analyzer). It records every transaction and answers
// two questions: did secret *data* cross the bus, and what do the *access
// patterns* reveal?
type BusMonitor struct {
	txs []bus.Transaction
}

// Observe implements bus.Monitor.
func (m *BusMonitor) Observe(tx bus.Transaction) { m.txs = append(m.txs, tx) }

// Transactions returns everything captured so far.
func (m *BusMonitor) Transactions() []bus.Transaction { return m.txs }

// Reset clears the capture buffer.
func (m *BusMonitor) Reset() { m.txs = nil }

// CapturedData reports whether the needle appeared in any transaction's
// payload (direct data capture).
func (m *BusMonitor) CapturedData(needle []byte) bool {
	for _, tx := range m.txs {
		if bytes.Index(tx.Data, needle) >= 0 {
			return true
		}
	}
	return false
}

// ReadsInRange returns the captured read addresses inside [base, base+size),
// in order.
func (m *BusMonitor) ReadsInRange(base mem.PhysAddr, size uint64) []mem.PhysAddr {
	var out []mem.PhysAddr
	for _, tx := range m.txs {
		if tx.Op == bus.Read && tx.Addr >= base && tx.Addr < base+mem.PhysAddr(size) {
			out = append(out, tx.Addr)
		}
	}
	return out
}

// KeyRecovery solves for an AES-128 key from observed first-round T-table
// lookups (the Tromer/Osvik/Shamir-class access-pattern attack, §3.1 "Bus
// Monitoring Attacks"). For a known plaintext block, the i-th first-round
// lookup is at table index plaintext[o]^key[o] (o = aes.FirstRoundOrder[i]),
// so each observed address yields the key byte directly — or, when the
// probe only sees cache-line fills, a set of 8 candidates that intersection
// over multiple blocks collapses to one.
type KeyRecovery struct {
	arenaBase mem.PhysAddr
	// candidates[b] is the remaining candidate set for key byte b.
	candidates [16]map[byte]bool
}

// NewKeyRecovery returns a solver for a cipher whose arena starts at base.
func NewKeyRecovery(base mem.PhysAddr) *KeyRecovery {
	k := &KeyRecovery{arenaBase: base}
	for i := range k.candidates {
		k.candidates[i] = nil // nil = unconstrained
	}
	return k
}

// teIndexRange converts an observed read address into the inclusive range
// of table indices it may correspond to: exact for a 4-byte word read,
// 8-wide for a 32-byte line fill.
func (k *KeyRecovery) teIndexRange(addr mem.PhysAddr, width int) (lo, hi int, ok bool) {
	teBase := k.arenaBase + aes.TeOffset
	if addr < teBase || addr >= teBase+1024 {
		return 0, 0, false
	}
	off := int(addr - teBase)
	lo = off / 4
	hi = lo + (width+3)/4 - 1
	if hi > 255 {
		hi = 255
	}
	return lo, hi, true
}

// AddBlock feeds one known-plaintext block and the first-round T-table read
// addresses observed while it was encrypted (width is the per-transaction
// transfer size: 4 for an uncached probe, 32 for line fills). Only the
// first 16 in-range reads are the first round; callers pass exactly those.
func (k *KeyRecovery) AddBlock(plaintext []byte, reads []mem.PhysAddr, width int) error {
	if len(plaintext) != 16 {
		return fmt.Errorf("attack: plaintext block must be 16 bytes")
	}
	if len(reads) < 16 {
		return fmt.Errorf("attack: need 16 first-round lookups, got %d", len(reads))
	}
	for i := 0; i < 16; i++ {
		lo, hi, ok := k.teIndexRange(reads[i], width)
		if !ok {
			return fmt.Errorf("attack: read %d (%#x) outside the T-table", i, uint64(reads[i]))
		}
		pos := aes.FirstRoundOrder[i]
		set := make(map[byte]bool, hi-lo+1)
		for idx := lo; idx <= hi; idx++ {
			set[plaintext[pos]^byte(idx)] = true
		}
		if k.candidates[pos] == nil {
			k.candidates[pos] = set
			continue
		}
		for b := range k.candidates[pos] {
			if !set[b] {
				delete(k.candidates[pos], b)
			}
		}
	}
	return nil
}

// Key returns the recovered key once every byte's candidate set is a
// singleton.
func (k *KeyRecovery) Key() ([]byte, bool) {
	key := make([]byte, 16)
	for i, set := range k.candidates {
		if len(set) != 1 {
			return nil, false
		}
		for b := range set {
			key[i] = b
		}
	}
	return key, true
}

// CandidatesLeft reports the product-space size still standing (log-ish
// progress metric for the harness).
func (k *KeyRecovery) CandidatesLeft() int {
	total := 0
	for _, set := range k.candidates {
		if set == nil {
			total += 256
		} else {
			total += len(set)
		}
	}
	return total
}

// BlockOracle encrypts one attacker-chosen plaintext block from a cold
// cache (the OS flushes the L2 on every suspend, giving the attacker a
// fresh observation window) and returns the T-table line-fill addresses the
// probe captured, in order.
type BlockOracle func(plaintext []byte) []mem.PhysAddr

// LineBitsPerByte is how many bits of each key byte a line-granular probe
// recovers from first-round lookups: a 32-byte line spans 8 table entries,
// so the low log2(8) = 3 index bits are invisible and the top 5 bits leak.
// This is the classic one-round limit (Osvik–Shamir); 16 × 5 = 80 of the
// 128 key bits leak, leaving a 2^48 brute-force — a broken cipher.
const LineBitsPerByte = 5

// lineMask keeps the bits of a key byte a line observation determines.
const lineMask = 0xF8

// RecoverKeyBitsCachedArena mounts the chosen-plaintext access-pattern
// attack against a *cached* AES arena, where the probe sees only 32-byte
// line fills and only on misses:
//
//  1. The very first fill of a cold encryption is always the first lookup
//     (index plaintext[0]^key[0]), whose line reveals the top 5 bits of
//     key[0].
//  2. For each later first-round lookup i, craft plaintexts that force
//     every already-solved lookup to a table index congruent to its own
//     (known-high-bits) line-0 slot; the second fill is then lookup i's
//     line whenever it falls outside that line (31/32 of trials), and
//     majority voting pins the byte's top 5 bits.
//
// It returns the partial key (unknown low bits zero) and a mask with a set
// bit for every recovered key bit position.
func RecoverKeyBitsCachedArena(oracle BlockOracle, arenaBase mem.PhysAddr, lineSize, trials int, rng interface{ Read([]byte) (int, error) }) (partial []byte, mask []byte, err error) {
	if trials < 4 {
		trials = 8
	}
	teBase := arenaBase + aes.TeOffset
	entriesPerLine := lineSize / 4
	lineOf := func(addr mem.PhysAddr) (int, bool) {
		if addr < teBase || addr >= teBase+1024 {
			return 0, false
		}
		return int(addr-teBase) / lineSize, true
	}
	// hiFromLine inverts index = p ^ k on the line-determined bits.
	hiFromLine := func(line int, p byte) byte {
		return (byte(line*entriesPerLine) ^ p) & lineMask
	}

	key := make([]byte, 16)
	order := aes.FirstRoundOrder

	// Stage 1: top bits of key[0] from the guaranteed-first fill; repeat a
	// few times as a consistency check.
	var have bool
	for t := 0; t < trials; t++ {
		p := make([]byte, 16)
		rng.Read(p)
		fills := oracle(p)
		if len(fills) == 0 {
			return nil, nil, fmt.Errorf("attack: no table fills observed — is the arena actually cached DRAM?")
		}
		line, ok := lineOf(fills[0])
		if !ok {
			return nil, nil, fmt.Errorf("attack: first fill outside the T-table")
		}
		hi := hiFromLine(line, p[0])
		if have && hi != key[0] {
			return nil, nil, fmt.Errorf("attack: inconsistent observations for key[0]")
		}
		key[0], have = hi, true
	}

	// Stage 2: remaining first-round positions in lookup order. Forcing
	// p[pos_j] = key[pos_j] sends every solved lookup to the line holding
	// its index's high bits with low bits zero — i.e. the solved lookups
	// collectively touch only "their" line 0-slot lines, all identical to
	// line key-hi>>3... to keep them on ONE line we aim each at index 0 by
	// xoring with the known high bits.
	for i := 1; i < 16; i++ {
		pos := order[i]
		votes := map[byte]int{}
		for t := 0; t < trials; t++ {
			p := make([]byte, 16)
			rng.Read(p)
			for j := 0; j < i; j++ {
				// index = p ^ key has high bits 0 → line 0 for all solved
				// lookups (their unknown low bits stay within line 0).
				p[order[j]] = key[order[j]]
			}
			fills := oracle(p)
			if len(fills) < 2 {
				continue // lookup i landed in line 0 too; retry
			}
			line, ok := lineOf(fills[1])
			if !ok {
				continue
			}
			votes[hiFromLine(line, p[pos])]++
		}
		best, bestVotes, second := byte(0), 0, 0
		for b, v := range votes {
			switch {
			case v > bestVotes:
				best, bestVotes, second = b, v, bestVotes
			case v > second:
				second = v
			}
		}
		if bestVotes == 0 || bestVotes == second {
			return nil, nil, fmt.Errorf("attack: byte %d ambiguous (best %d vs %d votes)", pos, bestVotes, second)
		}
		key[pos] = best
	}
	mask = make([]byte, 16)
	for i := range mask {
		mask[i] = lineMask
	}
	return key, mask, nil
}

package attack

import (
	"bytes"
	"testing"

	"sentry/internal/aes"
	"sentry/internal/sim"
)

// testRoundFault injects one mask the next time the cipher enters round.
type testRoundFault struct {
	round int
	mask  [16]byte
	armed bool
}

func (f *testRoundFault) FaultRound(r int) ([16]byte, bool) {
	if !f.armed || r != f.round {
		return [16]byte{}, false
	}
	f.armed = false
	return f.mask, true
}

// collectPair encrypts block under p twice — once clean, once with a
// one-shot fault of mask at state byte pos entering round 9 — and returns
// the pair.
func collectPair(t *testing.T, p *aes.PlacedCipher, hook *testRoundFault, block []byte, pos int, mask byte) DFAPair {
	t.Helper()
	var pair DFAPair
	hook.armed = false
	p.EncryptBlock(pair.Correct[:], block)
	*hook = testRoundFault{round: 9, armed: true}
	hook.mask[pos] = mask
	p.EncryptBlock(pair.Faulty[:], block)
	if hook.armed {
		t.Fatal("fault never fired")
	}
	return pair
}

func TestRecoverKeyDFAKnownKey(t *testing.T) {
	// Table-driven over keys and fault aims: faulting state bytes 0..3
	// covers all four post-ShiftRows columns, and three distinct masks per
	// column intersect each candidate set down to the true tuple.
	cases := []struct {
		name  string
		seed  int64
		masks []byte
	}{
		{"seed1", 1, []byte{0x2A, 0x51, 0x83}},
		{"seed2", 2, []byte{0x01, 0x02, 0x04}},
		{"seed3", 3, []byte{0xFF, 0x7E, 0xB1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := sim.NewRNG(tc.seed)
			key := make([]byte, 16)
			rng.Read(key)
			block := make([]byte, 16)
			rng.Read(block)
			hook := &testRoundFault{}
			p, err := aes.NewPlaced(&aes.MapStore{}, key, 0)
			if err != nil {
				t.Fatal(err)
			}
			p.SetRoundFault(hook)

			var pairs []DFAPair
			for pos := 0; pos < 4; pos++ {
				for _, m := range tc.masks {
					pairs = append(pairs, collectPair(t, p, hook, block, pos, m))
				}
			}
			got, ok := RecoverKeyDFA(pairs)
			if !ok {
				t.Fatal("recovery did not converge")
			}
			if !bytes.Equal(got, key) {
				t.Fatalf("recovered %x, want %x", got, key)
			}
		})
	}
}

func TestRecoverKeyDFAInsufficientPairs(t *testing.T) {
	rng := sim.NewRNG(4)
	key := make([]byte, 16)
	rng.Read(key)
	block := make([]byte, 16)
	rng.Read(block)
	hook := &testRoundFault{}
	p, _ := aes.NewPlaced(&aes.MapStore{}, key, 0)
	p.SetRoundFault(hook)

	// One column's worth of pairs cannot pin the other three.
	pairs := []DFAPair{
		collectPair(t, p, hook, block, 0, 0x2A),
		collectPair(t, p, hook, block, 0, 0x51),
	}
	if k, ok := RecoverKeyDFA(pairs); ok {
		t.Fatalf("recovered %x from one column", k)
	}
}

func TestRecoverKeyDFADiscardsNonModelPairs(t *testing.T) {
	rng := sim.NewRNG(5)
	var junk []DFAPair
	// Identical pair (no fault landed) and an everything-differs pair (a
	// fault in an earlier round, fully diffused): both must be discarded.
	var same DFAPair
	rng.Read(same.Correct[:])
	same.Faulty = same.Correct
	var wild DFAPair
	rng.Read(wild.Correct[:])
	for i := range wild.Faulty {
		wild.Faulty[i] = wild.Correct[i] ^ byte(i+1)
	}
	junk = append(junk, same, wild)
	if k, ok := RecoverKeyDFA(junk); ok {
		t.Fatalf("recovered %x from junk pairs", k)
	}

	// Junk mixed into a convergent batch must not break recovery.
	key := make([]byte, 16)
	rng.Read(key)
	block := make([]byte, 16)
	rng.Read(block)
	hook := &testRoundFault{}
	p, _ := aes.NewPlaced(&aes.MapStore{}, key, 0)
	p.SetRoundFault(hook)
	pairs := junk
	for pos := 0; pos < 4; pos++ {
		for _, m := range []byte{0x2A, 0x51, 0x83} {
			pairs = append(pairs, collectPair(t, p, hook, block, pos, m))
		}
	}
	got, ok := RecoverKeyDFA(pairs)
	if !ok || !bytes.Equal(got, key) {
		t.Fatalf("recovery with junk mixed in: ok=%v key=%x", ok, got)
	}
}

func TestMasterFromLastRoundInvertsSchedule(t *testing.T) {
	rng := sim.NewRNG(6)
	for trial := 0; trial < 8; trial++ {
		key := make([]byte, 16)
		rng.Read(key)
		c, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		sched := c.EncSchedule()
		var k10 [16]byte
		for i := 0; i < 4; i++ {
			w := sched[40+i]
			k10[4*i] = byte(w >> 24)
			k10[4*i+1] = byte(w >> 16)
			k10[4*i+2] = byte(w >> 8)
			k10[4*i+3] = byte(w)
		}
		if got := masterFromLastRound(k10); !bytes.Equal(got, key) {
			t.Fatalf("trial %d: inverted %x, want %x", trial, got, key)
		}
	}
}

// FuzzDFAFaultMask checks the differential structure of arbitrary one-byte
// round-9 faults: the pair must classify to the predicted column with
// exactly four single-row diffs, and a single pair must never be enough for
// (mis)recovery.
func FuzzDFAFaultMask(f *testing.F) {
	f.Add(int64(1), byte(0), byte(0x2A))
	f.Add(int64(2), byte(5), byte(0x80))
	f.Add(int64(3), byte(15), byte(0x01))
	f.Add(int64(4), byte(7), byte(0x00))
	f.Fuzz(func(t *testing.T, seed int64, pos, mask byte) {
		rng := sim.NewRNG(seed)
		key := make([]byte, 16)
		rng.Read(key)
		block := make([]byte, 16)
		rng.Read(block)
		hook := &testRoundFault{}
		p, err := aes.NewPlaced(&aes.MapStore{}, key, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.SetRoundFault(hook)

		bytePos := int(pos) % 16
		var pair DFAPair
		hook.armed = false
		p.EncryptBlock(pair.Correct[:], block)
		*hook = testRoundFault{round: 9, armed: true}
		hook.mask[bytePos] = mask
		p.EncryptBlock(pair.Faulty[:], block)

		if mask == 0 {
			if pair.Correct != pair.Faulty {
				t.Fatal("zero mask changed the ciphertext")
			}
			return
		}
		col, ok := classifyPair(pair)
		if !ok {
			t.Fatalf("round-9 single-byte fault failed to classify: % x vs % x", pair.Correct, pair.Faulty)
		}
		// Fault at state byte b (row b%4, col b/4) shifts to column
		// (col - row) mod 4 entering MixColumns.
		want := (bytePos/4 - bytePos%4 + 4) % 4
		if col != want {
			t.Fatalf("classified column %d, want %d", col, want)
		}
		if k, ok := RecoverKeyDFA([]DFAPair{pair}); ok {
			t.Fatalf("single pair recovered a key: %x", k)
		}
	})
}

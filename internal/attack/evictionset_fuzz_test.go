package attack

import (
	"testing"

	"sentry/internal/mem"
	"sentry/internal/soc"
)

// FuzzEvictionSet throws arbitrary candidate pools at the eviction-set
// builder on both the stock and the randomized-index cache and pins its two
// soundness properties:
//
//   - the hit/miss classification is never wrong in the dangerous
//     direction: a pool with no congruent members cannot evict the target,
//     so Evicts must report false (a resident line is never classified as
//     a miss) and BuildEvictionSet must return nil;
//   - every member of a minimized eviction set is congruent with the
//     target — it maps to the target's (possibly scrambled) set index —
//     and the minimized set still evicts.
//
// Congruent candidates are planted using the cache's own SetIndex as an
// oracle, which is exactly what randomization denies a real attacker; the
// builder itself stays purely observational.
func FuzzEvictionSet(f *testing.F) {
	f.Add(int64(1), uint32(0x1234), uint16(3), false)
	f.Add(int64(2), uint32(0), uint16(40), true)
	f.Add(int64(7), uint32(0xFFFFF), uint16(17), true)
	f.Add(int64(9), uint32(0xABCDE), uint16(0), false)
	f.Fuzz(func(t *testing.T, seed int64, targetOff uint32, noiseStride uint16, randomized bool) {
		prof := soc.Tegra3Profile()
		prof.Cache.RandomizedIndex = randomized
		s := soc.New(prof, seed)

		geo := s.L2.Config()
		window := mem.PhysAddr(64 << 20) // stay inside the low 64 MB of DRAM
		target := soc.DRAMBase + mem.PhysAddr(targetOff)%window
		target &^= mem.PhysAddr(geo.LineSize - 1)
		targetSet := s.L2.SetIndex(target)

		// Non-congruent pool: arbitrary lines that all map elsewhere. It can
		// never evict the target, whatever its size or order.
		var noise []mem.PhysAddr
		stride := mem.PhysAddr(noiseStride%512+1) * mem.PhysAddr(geo.LineSize)
		for a := soc.DRAMBase; len(noise) < 24 && a < soc.DRAMBase+window; a += stride {
			if a != target && s.L2.SetIndex(a) != targetSet {
				noise = append(noise, a)
			}
		}
		if Evicts(s, target, noise) {
			t.Fatalf("non-congruent pool evicted the target (resident line classified as a miss; randomized=%v)", randomized)
		}
		if set := BuildEvictionSet(s, target, noise); set != nil {
			t.Fatalf("BuildEvictionSet minted an eviction set from non-congruent noise: %d members", len(set))
		}

		// Now plant 2*Ways congruent lines (oracle-chosen) amid the noise:
		// the full pool must evict, and the minimized set must be purely
		// congruent and still evicting.
		pool := append([]mem.PhysAddr(nil), noise...)
		congruent := 0
		for a := soc.DRAMBase; congruent < 2*geo.Ways && a < soc.DRAMBase+window; a += mem.PhysAddr(geo.LineSize) {
			if a != target && s.L2.SetIndex(a) == targetSet {
				pool = append(pool, a)
				congruent++
			}
		}
		if congruent < 2*geo.Ways {
			t.Fatalf("oracle found only %d congruent lines in the window", congruent)
		}
		set := BuildEvictionSet(s, target, pool)
		if set == nil {
			t.Fatalf("2*Ways congruent lines failed to evict (randomized=%v)", randomized)
		}
		if !Evicts(s, target, set) {
			t.Fatal("minimized set no longer evicts")
		}
		if len(set) > 2*geo.Ways {
			t.Fatalf("minimized set kept %d members (> 2*Ways=%d): minimization is broken", len(set), 2*geo.Ways)
		}
		for _, a := range set {
			if s.L2.SetIndex(a) != targetSet {
				t.Fatalf("minimized set kept non-congruent member %#x (set %d, want %d, randomized=%v)",
					uint64(a), s.L2.SetIndex(a), targetSet, randomized)
			}
		}
	})
}

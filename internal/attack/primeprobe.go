package attack

import (
	"fmt"

	"sentry/internal/mem"
	"sentry/internal/soc"
)

// AttackerCore is the core id cache-timing attackers run as. The victim
// system is core 0; under the AutoLock cache variant the distinction decides
// which lines an eviction may touch.
const AttackerCore = 1

// CacheTimingResult is the verdict of one Prime+Probe or Evict+Reload run.
type CacheTimingResult struct {
	// Recovered is the bitmask of victim-table entries the attacker
	// classified as touched by the victim: the recovered set-access pattern.
	Recovered uint32
	// Trace holds one deterministic probe-outcome line per round; campaigns
	// compare these byte-for-byte across -j levels and repeat runs.
	Trace []string
}

// PrimeProbe is the ARMageddon-style Prime+Probe driver against the
// simulated PL310 L2. The victim owns a lookup table of entries, one cache
// line each on consecutive sets; its secret (the PIN digit walk) selects
// which entries it touches. The attacker cannot read the table's contents —
// it only primes the table's cache sets from its own memory, lets the victim
// run, and probes which of its own lines were evicted.
//
// One Run is a self-contained differential experiment of four rounds —
// victim, idle, victim, idle. An entry counts as recovered only when its set
// shows victim-correlated evictions in both victim rounds and none in either
// idle round, which kills first-touch artifacts and self-conflict noise: a
// signal must be repeatable and victim-dependent to survive.
type PrimeProbe struct {
	s       *soc.SoC
	table   mem.PhysAddr // victim table base (read only for set arithmetic)
	prime   mem.PhysAddr // attacker region, base-congruent with table
	entries int
}

// NewPrimeProbe builds a driver for a victim table of entries lines at
// table. prime is attacker-controlled memory whose base line must be
// congruent (same base set index) with table; the driver uses
// 2×Ways×entries lines of it.
func NewPrimeProbe(s *soc.SoC, table, prime mem.PhysAddr, entries int) *PrimeProbe {
	return &PrimeProbe{s: s, table: table, prime: prime, entries: entries}
}

// primeLine returns attacker prime line w for table entry e: same set as the
// entry (modulo the randomized permutation, which the attacker cannot see),
// different tag per w.
func (a *PrimeProbe) primeLine(e, w int) mem.PhysAddr {
	cfg := a.s.L2.Config()
	return a.prime + mem.PhysAddr(e*cfg.LineSize+w*cfg.WaySize)
}

// round primes every monitored set, snapshots which prime lines are
// resident, runs the victim phase (nil = idle), and reports the entries
// whose snapshot lines were evicted. 2×Ways congruent accesses per set
// guarantee full turnover under round-robin replacement, whatever the
// victim-pointer state.
func (a *PrimeProbe) round(victim func()) uint32 {
	l2 := a.s.L2
	nw := 2 * l2.Config().Ways
	var b [4]byte

	l2.SetMaster(AttackerCore)
	for e := 0; e < a.entries; e++ {
		for w := 0; w < nw; w++ {
			a.s.CPU.ReadPhys(a.primeLine(e, w), b[:])
		}
	}
	l2.SetMaster(0)

	// The attacker's knowledge of what survived its own prime: the
	// deterministic analog of timing each line during the prime pass.
	resident := make([]bool, a.entries*nw)
	for e := 0; e < a.entries; e++ {
		for w := 0; w < nw; w++ {
			hit, _, _ := l2.Probe(a.primeLine(e, w))
			resident[e*nw+w] = hit
		}
	}

	if victim != nil {
		victim()
	}

	var miss uint32
	for e := 0; e < a.entries; e++ {
		for w := 0; w < nw; w++ {
			if !resident[e*nw+w] {
				continue
			}
			if hit, _, _ := l2.Probe(a.primeLine(e, w)); !hit {
				miss |= 1 << e
				break
			}
		}
	}
	return miss
}

// Run performs the four-round differential and returns the recovered
// victim access pattern with its per-round trace.
func (a *PrimeProbe) Run(victim func()) CacheTimingResult {
	r1 := a.round(victim)
	c1 := a.round(nil)
	r2 := a.round(victim)
	c2 := a.round(nil)
	rec := r1 & r2 &^ c1 &^ c2
	probeEvent(a.s, "prime-probe", uint64(rec))
	return CacheTimingResult{
		Recovered: rec,
		Trace: []string{
			fmt.Sprintf("prime-probe v1=%#06x c1=%#06x v2=%#06x c2=%#06x rec=%#06x",
				r1, c1, r2, c2, rec),
		},
	}
}

package attack

import (
	"bytes"
	"testing"

	"sentry/internal/aes"
	"sentry/internal/mem"
	"sentry/internal/onsoc"
	"sentry/internal/soc"
	"sentry/internal/tz"
)

func TestCountPattern(t *testing.T) {
	st := mem.NewStore(1 << 16)
	pat := []byte("ABCDEFGH")
	for off := uint64(0); off < 1<<16; off += 8 {
		st.Write(off, pat)
	}
	if got := CountPattern(st, pat); got != 1<<16/8 {
		t.Fatalf("count = %d", got)
	}
	st.Write(16, []byte("XXXXXXXX"))
	if got := CountPattern(st, pat); got != 1<<16/8-1 {
		t.Fatalf("count after clobber = %d", got)
	}
	if CountPattern(st, nil) != 0 {
		t.Fatal("empty pattern")
	}
}

func TestContainsSpansPages(t *testing.T) {
	st := mem.NewStore(3 * mem.PageSize)
	needle := []byte("SPANNING-SECRET")
	st.Write(mem.PageSize-7, needle) // crosses the page boundary
	if !Contains(st, needle) {
		t.Fatal("page-spanning needle missed")
	}
	if Contains(st, []byte("NOT-THERE-AT-ALL")) {
		t.Fatal("false positive")
	}
}

func TestKeyfinderRecoversSchedule(t *testing.T) {
	// Plant a real AES-128 key schedule in a sea of noise, as a generic
	// crypto library would leave in DRAM.
	st := mem.NewStore(1 << 16)
	noise := make([]byte, 1<<16)
	for i := range noise {
		noise[i] = byte(i * 7)
	}
	st.Write(0, noise)
	key := []byte("sixteen byte key")
	ms := &aes.MapStore{}
	if _, err := aes.NewPlaced(ms, key, 0); err != nil {
		t.Fatal(err)
	}
	st.Write(8192+uint64(aes.EncKeysOffset), ms.Data[aes.EncKeysOffset:aes.EncKeysOffset+176])

	keys := FindAESKeys(st)
	if len(keys) != 1 || !bytes.Equal(keys[0], key) {
		t.Fatalf("keyfinder found %d keys: %x", len(keys), keys)
	}
}

func TestKeyfinderNoFalsePositives(t *testing.T) {
	st := mem.NewStore(1 << 18)
	junk := make([]byte, 1<<18)
	for i := range junk {
		junk[i] = byte(i*31 + i>>8)
	}
	st.Write(0, junk)
	if keys := FindAESKeys(st); len(keys) != 0 {
		t.Fatalf("false positives: %x", keys)
	}
}

func TestColdBootVariantsReproduceTable2Shape(t *testing.T) {
	// Fill usable DRAM and iRAM with the pattern, mount each variant, and
	// check the survival ratios land in the paper's bands. A 4 MB DRAM
	// window keeps the test fast; decay is i.i.d. so the ratio is unbiased.
	pattern := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x5E, 0x17, 0x2E, 0x01}
	fill := func(s *soc.SoC) (dramSlots, iramSlots int) {
		const window = 4 << 20
		regionBase := uint64(s.Prof.DRAMSize) - window // above any boot scribble
		for off := uint64(0); off < window; off += 8 {
			s.DRAM.Store().Write(regionBase+off, pattern)
		}
		base, size := s.UsableIRAM()
		for off := uint64(0); off < size; off += 8 {
			s.IRAM.Write(base+mem.PhysAddr(off), pattern)
		}
		return window / 8, int(size / 8)
	}

	type result struct{ iram, dram float64 }
	run := func(v ColdBootVariant) result {
		s := soc.Tegra3(42)
		dramSlots, iramSlots := fill(s)
		d, err := MountColdBoot(s, v)
		if err != nil {
			t.Fatal(err)
		}
		return result{
			iram: float64(CountPattern(d.IRAM, pattern)) / float64(iramSlots),
			dram: float64(CountPattern(d.DRAM, pattern)) / float64(dramSlots),
		}
	}

	reboot := run(OSReboot)
	if reboot.iram != 1.0 {
		t.Errorf("OS reboot iRAM survival = %.3f, want 1.0", reboot.iram)
	}
	if reboot.dram != 1.0 { // our fill window sits above the scribbled region
		t.Errorf("OS reboot DRAM survival = %.3f, want 1.0 in the un-scribbled window", reboot.dram)
	}

	reflash := run(Reflash)
	if reflash.iram != 0 {
		t.Errorf("reflash iRAM survival = %.3f, want 0 (firmware zeroes iRAM)", reflash.iram)
	}
	if reflash.dram < 0.96 || reflash.dram > 0.99 {
		t.Errorf("reflash DRAM survival = %.4f, want ~0.975", reflash.dram)
	}

	reset := run(HeldReset)
	if reset.iram != 0 {
		t.Errorf("2s reset iRAM survival = %.3f, want 0", reset.iram)
	}
	if reset.dram > 0.005 {
		t.Errorf("2s reset DRAM survival = %.4f, want ~0.001", reset.dram)
	}
}

func TestColdBootBlockedByLockedBootloader(t *testing.T) {
	s := soc.Nexus4(1)
	if _, err := MountColdBoot(s, OSReboot); err == nil {
		t.Fatal("locked bootloader accepted the attacker image")
	}
}

func TestColdBootRecoversGenericAESKeyButNotOnSoC(t *testing.T) {
	// The headline Table 3 cold-boot column: a generic AES key schedule in
	// DRAM is recovered after a reflash; an iRAM schedule is not.
	s := soc.Tegra3(7)
	key := []byte("victim AES key!!")
	g, err := onsoc.NewGeneric(s, soc.DRAMBase+0x200000, key, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = g.EncryptCBC(make([]byte, 16), make([]byte, 16), make([]byte, 16))
	base, size := s.UsableIRAM()
	o, err := onsoc.NewInIRAM(s, onsoc.NewIRAMAlloc(base, size), key)
	if err != nil {
		t.Fatal(err)
	}
	_ = o.EncryptCBC(make([]byte, 16), make([]byte, 16), make([]byte, 16))
	// The device suspends: caches drain to DRAM.
	s.L2.CleanWays(s.L2.AllWaysMask())

	d, err := MountColdBoot(s, Reflash)
	if err != nil {
		t.Fatal(err)
	}
	keys := d.RecoverKeys()
	found := false
	for _, k := range keys {
		if bytes.Equal(k, key) {
			found = true
		}
	}
	if !found {
		t.Fatal("cold boot failed to recover the generic (DRAM) key — baseline broken")
	}
	// Now verify the recovery came from DRAM, not iRAM: iRAM must be clean.
	if len(FindAESKeys(d.IRAM)) != 0 {
		t.Fatal("key schedule survived in iRAM after cold boot")
	}
}

func TestDMAScrapeReadsDRAMButNotProtectedIRAM(t *testing.T) {
	s := soc.Tegra3(3)
	secret := []byte("DRAM-RESIDENT-SECRET")
	s.DRAM.Write(soc.DRAMBase+0x5000, secret)

	base, _ := s.UsableIRAM()
	iramSecret := []byte("IRAM-PROTECTED-KEY!!")
	s.IRAM.Write(base, iramSecret)
	if err := s.TZ.WithSecure(func() error {
		return s.TZ.Protect(tz.Region{Base: base, Size: uint64(len(iramSecret)), NoDMA: true})
	}); err != nil {
		t.Fatal(err)
	}

	a, err := MountDMAScrape(s)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ContainsSecret(secret) {
		t.Fatal("DMA failed to read ordinary DRAM")
	}
	if a.ContainsSecret(iramSecret) {
		t.Fatal("DMA read TrustZone-protected iRAM")
	}
	if len(a.Denied) == 0 {
		t.Fatal("no denial recorded")
	}
	if a.PagesRead() == 0 {
		t.Fatal("no pages read")
	}
}

func TestDMAScrapeReadsUnprotectedIRAM(t *testing.T) {
	// §4.4: without TrustZone protection, iRAM is just like DRAM to DMA.
	s := soc.Nexus4(3) // no TZ available
	base, _ := s.UsableIRAM()
	iramSecret := []byte("UNPROTECTED-IRAM-KEY")
	s.IRAM.Write(base, iramSecret)
	s.Prof.OpenDMAPort = true // attacker reworked the board for port access
	a, err := MountDMAScrape(s)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ContainsSecret(iramSecret) {
		t.Fatal("DMA should reach unprotected iRAM")
	}
}

func TestDMAScrapeDoesNotSeeLockedWay(t *testing.T) {
	s := soc.Tegra3(9)
	locker, err := onsoc.NewWayLocker(s, soc.DRAMBase+0x3000_0000)
	if err != nil {
		t.Fatal(err)
	}
	_, base, _ := locker.LockWay()
	s.CPU.WritePhys(base, []byte("LOCKED-WAY-PLAINTEXT"))
	a, err := MountDMAScrape(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.ContainsSecret([]byte("LOCKED-WAY-PLAINTEXT")) {
		t.Fatal("DMA observed locked-way contents (cache bypass broken)")
	}
}

func TestKeyfinderSurvivesDecayDamage(t *testing.T) {
	// A reflash-grade decay (~0.3% of bytes) damages most 176-byte windows
	// somewhere; the reconstruction must still recover the key, as the
	// cold-boot literature does via schedule redundancy.
	key := []byte("damaged schedule")
	ms := &aes.MapStore{}
	if _, err := aes.NewPlaced(ms, key, 0); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		st := mem.NewStore(8192)
		st.Write(1024, ms.Data[aes.EncKeysOffset:aes.EncKeysOffset+176])
		// Damage three bytes of the window.
		for j := 0; j < 3; j++ {
			off := uint64(1024 + (trial*53+j*61)%176)
			st.SetByte(off, st.ByteAt(off)^0xFF)
		}
		for _, k := range FindAESKeys(st) {
			if bytes.Equal(k, key) {
				recovered++
			}
		}
	}
	if recovered < trials*8/10 {
		t.Fatalf("recovered in only %d/%d damaged trials", recovered, trials)
	}
}

func TestDMAScrapeRecoversGenericKey(t *testing.T) {
	// The DMA column of Table 3 for the DRAM baseline: a generic AES
	// schedule in DRAM is harvestable over DMA once the cache drains.
	s := soc.Tegra3(5)
	key := []byte("dma-harvested-k!")
	g, err := onsoc.NewGeneric(s, soc.DRAMBase+0x200000, key, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = g.EncryptCBC(make([]byte, 16), make([]byte, 16), make([]byte, 16))
	s.L2.CleanWays(s.L2.AllWaysMask())
	a, err := MountDMAScrape(s)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range a.RecoverKeys() {
		if bytes.Equal(k, key) {
			found = true
		}
	}
	if !found {
		t.Fatal("DMA scrape should recover the generic key schedule")
	}
}

func TestKeyRecoveryCandidateNarrowing(t *testing.T) {
	kr := NewKeyRecovery(0x80000000)
	if kr.CandidatesLeft() != 16*256 {
		t.Fatalf("initial candidates = %d", kr.CandidatesLeft())
	}
	// One word-granular block pins all 16 bytes.
	reads := make([]mem.PhysAddr, 16)
	pt := make([]byte, 16)
	key := byte(0x5A)
	for i := range reads {
		pos := aes.FirstRoundOrder[i]
		idx := pt[pos] ^ key
		reads[i] = 0x80000000 + aes.TeOffset + mem.PhysAddr(4*int(idx))
	}
	if err := kr.AddBlock(pt, reads, 4); err != nil {
		t.Fatal(err)
	}
	if kr.CandidatesLeft() != 16 {
		t.Fatalf("candidates after exact block = %d, want 16", kr.CandidatesLeft())
	}
	got, ok := kr.Key()
	if !ok {
		t.Fatal("key not unique")
	}
	for _, b := range got {
		if b != key {
			t.Fatalf("recovered %x", got)
		}
	}
}

func TestColdBootVariantStrings(t *testing.T) {
	for _, v := range []ColdBootVariant{OSReboot, Reflash, HeldReset, ColdBootVariant(9)} {
		if v.String() == "" {
			t.Fatal("empty variant name")
		}
	}
}

func TestDumpHelpers(t *testing.T) {
	s := soc.Tegra3(11)
	s.DRAM.Write(soc.DRAMBase+0x3F000000, []byte("NEEDLE-IN-DUMP")) // above the boot scribble
	d, err := MountColdBoot(s, OSReboot)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ContainsSecret([]byte("NEEDLE-IN-DUMP")) {
		t.Fatal("needle lost in warm reboot")
	}
	pat := []byte("12345678")
	s.DRAM.Write(soc.DRAMBase+0x3F001000, pat)
	if d.CountPattern(d.DRAM, pat) != 1 {
		t.Fatal("CountPattern through dump broken")
	}
}

// Package faults is a deterministic fault injector for the simulated
// platform. It implements the injection interfaces the hardware and OS
// layers expose (bus.FaultInjector, cache.FaultInjector,
// kernel.FaultInjector, core.FaultProbe) and perturbs a run with the fault
// classes that break memory-confidentiality systems in practice ("Fault
// Attacks on Encrypted General Purpose Compute Platforms"):
//
//   - torn writes: a bus write delivers only a prefix of its payload, as
//     happens when power is lost or a voltage glitch lands mid-burst;
//   - dropped cache maintenance: a clean/invalidate operation silently does
//     nothing (glitched CP15/PL310 command);
//   - power loss at arbitrary points: hooks panic with an Abort, modelling
//     asynchronous power failure during the zero-queue drain, during
//     encrypt-on-lock, or during a suspend-path cache flush — unwinding
//     mid-operation leaves the simulated memory exactly as power loss would;
//   - delayed zero-queue drains: the zeroing thread is preempted and takes
//     extra time (the drain still completes — Sentry's defence is waiting
//     for it, however long it takes);
//   - DRAM/iRAM bit flips at schedule-chosen times;
//   - adversarial DFA faults: a precisely-aimed XOR mask applied to a chosen
//     AES round state mid-encryption (ArmDFA), the glitch primitive of
//     differential fault analysis. The mask is armed explicitly by the
//     schedule driver rather than drawn from the RNG — DFA needs exact
//     placement, and the checker owns the aim.
//
// All decisions come from one seeded RNG, so a fault sequence is exactly
// reproducible from (profile, seed) and the same operation sequence.
//
// Fault profiles are split by what a correct Sentry can survive. The benign
// profile contains only faults the defended system must tolerate without
// ever leaking plaintext: power cuts, drain delays and interruptions, bit
// flips. The adversarial profile adds faults that genuinely defeat the
// paper's defences — torn ciphertext write-backs over old plaintext,
// dropped maintenance operations, glitched resets that skip the ROM's iRAM
// zeroing — and exists to demonstrate the checker detects the resulting
// leaks, not to assert Sentry survives them.
package faults

import (
	"fmt"

	"sentry/internal/bus"
	"sentry/internal/cache"
	"sentry/internal/core"
	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/sim"
)

// Abort is the panic value injection hooks throw to model asynchronous
// power loss inside an operation. The schedule driver (internal/check)
// recovers it at its step boundary and applies the power cut to the SoC;
// everything between the hook and the recover simply never executes, which
// is exactly what losing power mid-operation does.
type Abort struct {
	// Seconds the power stays off before the attacker (or the user) powers
	// the device back up.
	Seconds float64
	Reason  string
}

func (a Abort) String() string {
	return fmt.Sprintf("power lost for %gs: %s", a.Seconds, a.Reason)
}

// Profile sets the per-opportunity probabilities of each fault class. A
// zero-valued field disables that class.
type Profile struct {
	Name string

	// TornWriteProb truncates a bus write to a random prefix (adversarial:
	// a torn ciphertext write-back can leave pre-existing plaintext in the
	// tail of a DRAM line, which no lock-time encryption can prevent).
	TornWriteProb float64
	// DropMaintProb silently drops a cache-maintenance operation
	// (adversarial: dropping the drain's invalidate or the lock flush
	// defeats the defence by construction).
	DropMaintProb float64
	// MaintCutProb cuts power at the entry of a cache-maintenance
	// operation (benign: no write-back has happened yet).
	MaintCutProb float64
	// DrainDelayProb delays the zero-queue drain before it starts.
	DrainDelayProb float64
	// DrainCutProb cuts power before an individual queued frame is zeroed.
	DrainCutProb float64
	// LockCutProb cuts power after a page is sealed during encrypt-on-lock
	// (the device never reached the locked state; the pre-lock plaintext
	// window is accepted by the threat model).
	LockCutProb float64
	// BitFlipMax caps how many bits one bit-flip event may flip; zero
	// disables bit flips.
	BitFlipMax int
	// GlitchReset permits reset-glitch operations in generated schedules:
	// a cold boot that skips secure-boot verification and the vendor
	// firmware's iRAM zeroing.
	GlitchReset bool
	// CutSeconds is how long fault-induced power losses last. Short blips
	// (~50 ms, the paper's reflash measurement) keep most remanent bits.
	CutSeconds float64
}

// None returns the empty profile: no injector should even be attached.
func None() Profile { return Profile{Name: "none"} }

// Benign returns the fault load a correct Sentry must survive with zero
// invariant violations.
func Benign() Profile {
	return Profile{
		Name:           "benign",
		MaintCutProb:   0.02,
		DrainDelayProb: 0.25,
		DrainCutProb:   0.05,
		LockCutProb:    0.005,
		BitFlipMax:     4,
		CutSeconds:     0.05,
	}
}

// Adversarial returns Benign plus the defence-defeating fault classes.
func Adversarial() Profile {
	p := Benign()
	p.Name = "adversarial"
	p.TornWriteProb = 0.05
	p.DropMaintProb = 0.2
	p.GlitchReset = true
	return p
}

// ByName resolves a profile name ("none", "benign", "adversarial").
func ByName(name string) (Profile, bool) {
	switch name {
	case "none", "":
		return None(), true
	case "benign":
		return Benign(), true
	case "adversarial":
		return Adversarial(), true
	}
	return Profile{}, false
}

// Active reports whether the profile injects anything at all. An inactive
// profile means no injector is attached and every hook stays nil — the
// configuration the wallclock guard measures.
func (p Profile) Active() bool {
	return p.TornWriteProb > 0 || p.DropMaintProb > 0 || p.MaintCutProb > 0 ||
		p.DrainDelayProb > 0 || p.DrainCutProb > 0 || p.LockCutProb > 0 ||
		p.BitFlipMax > 0 || p.GlitchReset
}

// Stats counts the faults an injector actually delivered.
type Stats struct {
	TornWrites   uint64
	DroppedMaint uint64
	PowerAborts  uint64
	DrainDelays  uint64
	BitsFlipped  uint64
	// DFAInjected counts armed DFA masks actually applied to a round state;
	// DFAOutOfReach counts armings that fizzled because the targeted cipher's
	// state was physically out of the attacker's reach (iRAM placement).
	DFAInjected   uint64
	DFAOutOfReach uint64
}

// dfaArm is the state of one armed adversarial round fault.
type dfaArm struct {
	armed bool
	round int
	mask  [16]byte
	// reachable records whether the glitch can land at all: a DRAM-resident
	// round state is disturbable, the paper's iRAM placement is not.
	reachable bool
}

// Injector delivers the faults of one Profile from one seeded RNG. It is
// single-owner like everything else in the simulation.
type Injector struct {
	prof  Profile
	rng   *sim.RNG
	stats Stats

	// perturbed latches when a data-mutating fault fired (torn write,
	// dropped maintenance, bit flip): end-of-run integrity checks are
	// meaningless after one.
	perturbed bool

	// dfa is the armed adversarial round fault, if any.
	dfa dfaArm
}

// The injector must satisfy every layer's injection interface.
var (
	_ bus.FaultInjector    = (*Injector)(nil)
	_ cache.FaultInjector  = (*Injector)(nil)
	_ kernel.FaultInjector = (*Injector)(nil)
	_ core.FaultProbe      = (*Injector)(nil)
)

// New returns an injector for the profile, seeded deterministically.
func New(p Profile, seed int64) *Injector {
	return &Injector{prof: p, rng: sim.NewRNG(seed)}
}

// Clone returns a detached injector continuing this one's deterministic
// fault stream: same profile, RNG at the same stream position, stats, the
// perturbation latch, and any armed DFA fault carried. The clone is attached
// to nothing; call Attach on the forked world to wire its hooks.
func (in *Injector) Clone() *Injector {
	return &Injector{prof: in.prof, rng: in.rng.Clone(), stats: in.stats,
		perturbed: in.perturbed, dfa: in.dfa}
}

// Profile returns the injector's fault profile.
func (in *Injector) Profile() Profile { return in.prof }

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats { return in.stats }

// Perturbed reports whether any data-mutating fault fired.
func (in *Injector) Perturbed() bool { return in.perturbed }

// Attach wires the injector into every layer of a running Sentry system.
func (in *Injector) Attach(sn *core.Sentry) {
	sn.S.Bus.SetFaults(in)
	sn.S.L2.SetFaults(in)
	sn.K.Faults = in
	sn.SetFaults(in)
}

// Detach unwires every hook Attach installed, returning the system to a
// fault-free configuration. The fleet soak harness detaches before its
// final confidentiality sweep so a deliberate end-of-run Lock cannot be
// interrupted by a scheduled power cut.
func Detach(sn *core.Sentry) {
	sn.S.Bus.SetFaults(nil)
	sn.S.L2.SetFaults(nil)
	sn.K.Faults = nil
	sn.SetFaults(nil)
}

// FilterWrite implements bus.FaultInjector: a torn write delivers only a
// random non-empty prefix of the payload.
func (in *Injector) FilterWrite(addr mem.PhysAddr, data []byte) int {
	if in.prof.TornWriteProb > 0 && len(data) > 1 && in.rng.Float64() < in.prof.TornWriteProb {
		in.stats.TornWrites++
		in.perturbed = true
		return 1 + in.rng.Intn(len(data)-1)
	}
	return len(data)
}

// DropMaint implements cache.FaultInjector. It is consulted at the entry of
// every kernel-reachable maintenance operation: it may cut power there (an
// Abort panic — nothing of the operation has run yet) or drop the operation
// silently.
func (in *Injector) DropMaint(op string) bool {
	if in.prof.MaintCutProb > 0 && in.rng.Float64() < in.prof.MaintCutProb {
		in.stats.PowerAborts++
		panic(Abort{Seconds: in.prof.CutSeconds, Reason: "power lost entering " + op})
	}
	if in.prof.DropMaintProb > 0 && in.rng.Float64() < in.prof.DropMaintProb {
		in.stats.DroppedMaint++
		in.perturbed = true
		return true
	}
	return false
}

// OnDrainFrame implements kernel.FaultInjector: power may fail before the
// zeroing thread reaches the i-th queued frame.
func (in *Injector) OnDrainFrame(i int, frame mem.PhysAddr) {
	if in.prof.DrainCutProb > 0 && in.rng.Float64() < in.prof.DrainCutProb {
		in.stats.PowerAborts++
		panic(Abort{
			Seconds: in.prof.CutSeconds,
			Reason:  fmt.Sprintf("power lost zeroing queued frame %d (%#x)", i, uint64(frame)),
		})
	}
}

// DrainDelayCycles implements kernel.FaultInjector: the zeroing thread may
// be preempted before it runs. Only timing is affected; the drain still
// completes, because waiting for it is the defence.
func (in *Injector) DrainDelayCycles(pendingBytes uint64) uint64 {
	if in.prof.DrainDelayProb > 0 && in.rng.Float64() < in.prof.DrainDelayProb {
		in.stats.DrainDelays++
		// A preemption slice plus time proportional to the backlog.
		return 100_000 + pendingBytes/4 + uint64(in.rng.Intn(1_000_000))
	}
	return 0
}

// OnLockPage implements core.FaultProbe: power may fail after the n-th page
// is sealed during encrypt-on-lock, before the device reaches the locked
// state.
func (in *Injector) OnLockPage(pagesSealed int) {
	if in.prof.LockCutProb > 0 && in.rng.Float64() < in.prof.LockCutProb {
		in.stats.PowerAborts++
		panic(Abort{
			Seconds: in.prof.CutSeconds,
			Reason:  fmt.Sprintf("power lost mid-encryption after %d pages", pagesSealed),
		})
	}
}

// FlipBits flips up to the profile's BitFlipMax random bits (at least one)
// in the store's touched pages, returning how many were flipped. Stores
// with no touched pages are left alone.
func (in *Injector) FlipBits(st *mem.Store) int {
	if in.prof.BitFlipMax <= 0 {
		return 0
	}
	pages := st.TouchedPages()
	if len(pages) == 0 {
		return 0
	}
	n := 1 + in.rng.Intn(in.prof.BitFlipMax)
	for i := 0; i < n; i++ {
		base := pages[in.rng.Intn(len(pages))]
		off := base + uint64(in.rng.Intn(mem.PageSize))
		st.SetByte(off, st.ByteAt(off)^(1<<uint(in.rng.Intn(8))))
	}
	in.stats.BitsFlipped += uint64(n)
	in.perturbed = true
	return n
}

// ArmDFA aims a one-shot adversarial fault: the next time the targeted
// cipher enters the given round, mask is XORed into state byte byteIdx
// (FIPS column-major: row byteIdx%4, column byteIdx/4). reachable says
// whether the glitch can physically land — the scheduler computes it from
// the cipher's arena placement (DRAM yes, iRAM no); an unreachable arming
// fizzles without touching the state but still disarms, exactly like a
// glitch aimed at memory the attacker cannot disturb. A zero mask disarms.
func (in *Injector) ArmDFA(round, byteIdx int, mask byte, reachable bool) {
	in.dfa = dfaArm{reachable: reachable, round: round}
	in.dfa.mask[byteIdx&15] = mask
	in.dfa.armed = mask != 0
}

// DisarmDFA cancels any armed adversarial fault.
func (in *Injector) DisarmDFA() { in.dfa = dfaArm{} }

// FaultRound satisfies the placed cipher's fault hook (aes.RoundFault,
// structurally — this package does not import aes). One-shot: a hit disarms
// before returning, so a redundant recomputation sees a clean second pass.
// DFA faults do not set the perturbation latch: they corrupt in-flight
// cipher state, not resident memory, so end-of-run integrity checks stay
// meaningful.
func (in *Injector) FaultRound(round int) ([16]byte, bool) {
	if !in.dfa.armed || round != in.dfa.round {
		return [16]byte{}, false
	}
	in.dfa.armed = false
	if !in.dfa.reachable {
		in.stats.DFAOutOfReach++
		return [16]byte{}, false
	}
	in.stats.DFAInjected++
	return in.dfa.mask, true
}

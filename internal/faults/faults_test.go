package faults_test

import (
	"fmt"
	"testing"

	"sentry/internal/attack"
	"sentry/internal/faults"
	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/remanence"
	"sentry/internal/soc"
)

// TestProfilesByName: the profile registry resolves every published name and
// rejects junk; the benign profile must not contain defence-defeating fault
// classes.
func TestProfilesByName(t *testing.T) {
	for _, name := range []string{"none", "", "benign", "adversarial"} {
		if _, ok := faults.ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := faults.ByName("chaotic"); ok {
		t.Error("ByName accepted an unknown profile")
	}
	if faults.None().Active() {
		t.Error("the none profile claims to be active")
	}
	b := faults.Benign()
	if !b.Active() {
		t.Error("the benign profile claims to be inactive")
	}
	if b.TornWriteProb > 0 || b.DropMaintProb > 0 || b.GlitchReset {
		t.Error("benign profile contains defence-defeating fault classes")
	}
	if !faults.Adversarial().GlitchReset {
		t.Error("adversarial profile lacks reset glitching")
	}
}

// TestInjectorDeterminism: two injectors built from the same (profile, seed)
// deliver byte-identical fault sequences.
func TestInjectorDeterminism(t *testing.T) {
	run := func() ([]int, faults.Stats, *mem.Store) {
		in := faults.New(faults.Adversarial(), 42)
		st := mem.NewStore(1 << 20)
		st.Write(0, []byte("some touched bytes so FlipBits has a target"))
		var out []int
		payload := make([]byte, 64)
		for i := 0; i < 200; i++ {
			func() {
				defer func() { recover() }() // maintenance cuts abort; count via stats
				out = append(out, in.FilterWrite(mem.PhysAddr(i*64), payload))
				if in.DropMaint("clean-ways") {
					out = append(out, -1)
				}
				out = append(out, int(in.DrainDelayCycles(uint64(i)*mem.PageSize)))
				out = append(out, in.FlipBits(st))
			}()
		}
		return out, in.Stats(), st
	}
	a, statsA, stA := run()
	b, statsB, stB := run()
	if len(a) != len(b) {
		t.Fatalf("sequence lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	if statsA != statsB {
		t.Fatalf("stats differ: %+v vs %+v", statsA, statsB)
	}
	if statsA.TornWrites == 0 || statsA.PowerAborts == 0 || statsA.BitsFlipped == 0 {
		t.Fatalf("200 adversarial opportunities delivered no faults: %+v", statsA)
	}
	buf := make([]byte, 64)
	buf2 := make([]byte, 64)
	for _, base := range stA.TouchedPages() {
		stA.Read(base, buf)
		stB.Read(base, buf2)
		if string(buf) != string(buf2) {
			t.Fatalf("bit-flip patterns diverge at %#x", base)
		}
	}
}

// TestFilterWriteBounds: a torn write always delivers a non-empty strict
// prefix, and single-byte writes are never torn.
func TestFilterWriteBounds(t *testing.T) {
	in := faults.New(faults.Profile{Name: "t", TornWriteProb: 1}, 7)
	for i := 0; i < 100; i++ {
		data := make([]byte, 2+i%62)
		n := in.FilterWrite(0, data)
		if n < 1 || n >= len(data) {
			t.Fatalf("torn write delivered %d of %d bytes", n, len(data))
		}
	}
	if n := in.FilterWrite(0, []byte{0xAB}); n != 1 {
		t.Fatalf("single-byte write torn to %d bytes", n)
	}
	if !in.Perturbed() {
		t.Error("torn writes did not latch Perturbed")
	}
}

// TestFlipBitsBounds: FlipBits respects the profile cap and only touches
// materialised pages.
func TestFlipBitsBounds(t *testing.T) {
	in := faults.New(faults.Profile{Name: "t", BitFlipMax: 4}, 9)
	empty := mem.NewStore(1 << 20)
	if n := in.FlipBits(empty); n != 0 {
		t.Fatalf("flipped %d bits in an untouched store", n)
	}
	st := mem.NewStore(1 << 20)
	st.Write(3*mem.PageSize, make([]byte, mem.PageSize)) // touch exactly one page
	for i := 0; i < 50; i++ {
		n := in.FlipBits(st)
		if n < 1 || n > 4 {
			t.Fatalf("flip count %d outside [1,4]", n)
		}
	}
	if pages := st.TouchedPages(); len(pages) != 1 || pages[0] != 3*mem.PageSize {
		t.Fatalf("bit flips materialised new pages: %v", pages)
	}
}

// cutInjector is a surgical kernel.FaultInjector that cuts power exactly
// when the zeroing thread reaches frame cutAt.
type cutInjector struct{ cutAt int }

func (c *cutInjector) OnDrainFrame(i int, frame mem.PhysAddr) {
	if i == c.cutAt {
		panic(faults.Abort{Seconds: 0.05, Reason: fmt.Sprintf("test cut at frame %d", i)})
	}
}
func (c *cutInjector) DrainDelayCycles(uint64) uint64 { return 0 }

// TestPowerCutDuringDrainZeroQueue is the regression pinning down what a
// power cut mid-drain leaves behind: frames the zeroing thread finished are
// gone beyond recovery — zeroed in DRAM with their stale cache lines
// invalidated, so not even the decayed post-mortem image yields them — while
// frames it had not reached yet ARE recoverable. That asymmetry is exactly
// why Sentry's lock path waits for the full drain.
func TestPowerCutDuringDrainZeroQueue(t *testing.T) {
	const frames = 4
	for cutAt := 0; cutAt <= frames; cutAt++ {
		cutAt := cutAt
		t.Run(fmt.Sprintf("cut-at-frame-%d", cutAt), func(t *testing.T) {
			s := soc.Tegra3(int64(11 + cutAt))
			k := kernel.New(s, "4321")
			p := k.NewProcess("app", true, false)
			base, err := k.MapAnon(p, frames)
			if err != nil {
				t.Fatal(err)
			}
			markers := make([][]byte, frames)
			for i := 0; i < frames; i++ {
				// Markers must differ in more bytes than the fuzzy budget, or
				// a surviving frame fuzzy-matches a zeroed frame's needle.
				markers[i] = []byte(fmt.Sprintf("DRAIN-REGRESSION-%c%c%c%c%c%c!",
					'A'+i, 'A'+i, 'A'+i, 'A'+i, 'A'+i, 'A'+i))
				if err := s.CPU.Store(base+mmu.VirtAddr(i*mem.PageSize), markers[i]); err != nil {
					t.Fatal(err)
				}
			}
			// Push the plaintext to DRAM (dirty lines written back), then
			// free every page onto the zero queue.
			s.L2.CleanWays(s.L2.AllWaysMask())
			for i := 0; i < frames; i++ {
				k.UnmapAndFree(p, base+mmu.VirtAddr(i*mem.PageSize))
			}
			if k.PendingZeroBytes() != frames*mem.PageSize {
				t.Fatalf("queue holds %d bytes, want %d", k.PendingZeroBytes(), frames*mem.PageSize)
			}

			k.Faults = &cutInjector{cutAt: cutAt}
			aborted := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(faults.Abort); !ok {
							panic(r)
						}
						aborted = true
					}
				}()
				k.DrainZeroQueue()
			}()
			if wantAbort := cutAt < frames; aborted != wantAbort {
				t.Fatalf("aborted=%v, want %v", aborted, wantAbort)
			}
			s.PowerCut(0.05, remanence.RoomTempC)

			for i := 0; i < frames; i++ {
				recoverable := attack.FuzzyContains(s.DRAM.Store(), markers[i], 4)
				if i < cutAt && recoverable {
					t.Errorf("frame %d was zeroed before the cut but is recoverable", i)
				}
				if i >= cutAt && !recoverable {
					t.Errorf("frame %d was never zeroed yet is not recoverable", i)
				}
			}
		})
	}
}

package faults_test

import (
	"testing"

	"sentry/internal/aes"
	"sentry/internal/faults"
)

// The injector must satisfy the placed cipher's fault hook structurally.
var _ aes.RoundFault = (*faults.Injector)(nil)

func TestArmDFAOneShot(t *testing.T) {
	in := faults.New(faults.None(), 1)
	in.ArmDFA(9, 5, 0x2A, true)

	if _, ok := in.FaultRound(8); ok {
		t.Fatal("fired on the wrong round")
	}
	m, ok := in.FaultRound(9)
	if !ok {
		t.Fatal("armed fault did not fire")
	}
	for i, b := range m {
		want := byte(0)
		if i == 5 {
			want = 0x2A
		}
		if b != want {
			t.Fatalf("mask[%d] = %#x, want %#x", i, b, want)
		}
	}
	// One-shot: the redundant verify pass must see a clean round 9.
	if _, ok := in.FaultRound(9); ok {
		t.Fatal("fault fired twice")
	}
	if st := in.Stats(); st.DFAInjected != 1 || st.DFAOutOfReach != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if in.Perturbed() {
		t.Fatal("DFA fault must not set the memory-perturbation latch")
	}
}

func TestArmDFAOutOfReachFizzles(t *testing.T) {
	in := faults.New(faults.None(), 1)
	in.ArmDFA(9, 0, 0xFF, false)
	if _, ok := in.FaultRound(9); ok {
		t.Fatal("out-of-reach fault landed")
	}
	// The fizzle consumed the arming.
	if _, ok := in.FaultRound(9); ok {
		t.Fatal("fizzled fault fired later")
	}
	if st := in.Stats(); st.DFAOutOfReach != 1 || st.DFAInjected != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestArmDFAZeroMaskAndDisarm(t *testing.T) {
	in := faults.New(faults.None(), 1)
	in.ArmDFA(9, 3, 0x00, true)
	if _, ok := in.FaultRound(9); ok {
		t.Fatal("zero mask armed")
	}
	in.ArmDFA(9, 3, 0x10, true)
	in.DisarmDFA()
	if _, ok := in.FaultRound(9); ok {
		t.Fatal("disarmed fault fired")
	}
}

func TestCloneCarriesArmedDFA(t *testing.T) {
	in := faults.New(faults.Benign(), 7)
	in.ArmDFA(9, 12, 0x80, true)
	cl := in.Clone()

	// The clone fires independently of the original...
	m, ok := cl.FaultRound(9)
	if !ok || m[12] != 0x80 {
		t.Fatalf("clone fault = %v,%v", m, ok)
	}
	// ...and consuming the clone's arming leaves the original armed.
	if _, ok := in.FaultRound(9); !ok {
		t.Fatal("original lost its arming to the clone")
	}
	// Stats diverge after the split.
	if cl.Stats().DFAInjected != 1 || in.Stats().DFAInjected != 1 {
		t.Fatalf("stats: clone=%+v orig=%+v", cl.Stats(), in.Stats())
	}
}

package cpu

import (
	"bytes"
	"testing"

	"sentry/internal/bus"
	"sentry/internal/cache"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/sim"
)

const (
	iramBase = 0x40000000
	dramBase = 0x80000000
)

func testCPU() (*CPU, *bus.Bus, *mem.Device, *mem.Device) {
	clock := sim.NewClock(1e9)
	meter := &sim.Meter{}
	costs := &sim.CostTable{DRAMAccess: 10, L2Hit: 1, IRAMAccess: 1, TLBFill: 1, PageFaultTrap: 100, ContextSwitch: 500, IRQToggle: 5}
	energy := &sim.EnergyTable{DRAMAccessPJ: 10, L2HitPJ: 1, IRAMAccessPJ: 1}
	iram := mem.NewDevice("iram", mem.TechSRAM, iramBase, 256<<10)
	dram := mem.NewDevice("dram", mem.TechDRAM, dramBase, 16<<20)
	b := bus.New(clock, meter, costs, energy, mem.NewMap(dram))
	l2 := cache.New(cache.Config{Ways: 4, WaySize: 4096, LineSize: 32}, clock, meter, costs, energy, b)
	return New(clock, meter, costs, energy, l2, b, iram), b, iram, dram
}

func TestPhysRoundTrips(t *testing.T) {
	c, _, _, _ := testCPU()
	c.WritePhys(dramBase+64, []byte("dram-data"))
	got := make([]byte, 9)
	c.ReadPhys(dramBase+64, got)
	if string(got) != "dram-data" {
		t.Fatalf("dram = %q", got)
	}
	c.WritePhys(iramBase+64, []byte("iram-data"))
	c.ReadPhys(iramBase+64, got)
	if string(got) != "iram-data" {
		t.Fatalf("iram = %q", got)
	}
}

func TestIRAMAccessInvisibleOnBus(t *testing.T) {
	c, b, _, _ := testCPU()
	before := b.Stats()
	c.WritePhys(iramBase, make([]byte, 4096))
	c.ReadPhys(iramBase, make([]byte, 4096))
	if b.Stats() != before {
		t.Fatal("iRAM traffic crossed the external bus")
	}
}

func TestUncachedAccessVisibleOnBus(t *testing.T) {
	c, b, _, dram := testCPU()
	c.WritePhysUncached(dramBase, []byte{1, 2, 3, 4})
	if dram.ByteAt(dramBase) != 1 {
		t.Fatal("uncached write did not reach DRAM")
	}
	if b.Stats().Writes == 0 {
		t.Fatal("uncached write invisible on bus")
	}
	got := make([]byte, 4)
	c.ReadPhysUncached(dramBase, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatal("uncached read wrong")
	}
}

func TestVirtualLoadStore(t *testing.T) {
	c, _, _, _ := testCPU()
	as := mmu.NewAddressSpace()
	as.Map(0x10000, mmu.PTE{Phys: dramBase + 0x4000, Present: true, Writable: true, Young: true})
	as.Map(0x11000, mmu.PTE{Phys: dramBase + 0x8000, Present: true, Writable: true, Young: true})
	c.AS = as
	data := bytes.Repeat([]byte("xy"), 3000) // crosses the page boundary
	if err := c.Store(0x10000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := c.Load(0x10000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("virtual round trip failed")
	}
}

func TestWordHelpers(t *testing.T) {
	c, _, _, _ := testCPU()
	as := mmu.NewAddressSpace()
	as.Map(0, mmu.PTE{Phys: dramBase, Present: true, Writable: true, Young: true})
	c.AS = as
	if err := c.StoreWord(8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	w, err := c.LoadWord(8)
	if err != nil || w != 0xDEADBEEF {
		t.Fatalf("word = %#x, %v", w, err)
	}
}

func TestFaultHandlerRetry(t *testing.T) {
	c, _, _, _ := testCPU()
	as := mmu.NewAddressSpace()
	as.Map(0x1000, mmu.PTE{Phys: dramBase, Present: true, Writable: true, Young: false})
	c.AS = as
	handled := 0
	c.FaultHandler = func(f *mmu.Fault) bool {
		handled++
		if f.Kind != mmu.FaultAccessFlag {
			t.Fatalf("unexpected fault kind %v", f.Kind)
		}
		as.Lookup(f.Addr).Young = true
		return true
	}
	if err := c.Store(0x1000, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if handled != 1 || c.Faults != 1 {
		t.Fatalf("handled=%d faults=%d", handled, c.Faults)
	}
}

func TestUnhandledFaultReturnsError(t *testing.T) {
	c, _, _, _ := testCPU()
	c.AS = mmu.NewAddressSpace()
	err := c.Load(0x9000, make([]byte, 1))
	if err == nil {
		t.Fatal("expected fault error")
	}
}

func TestStuckFaultGivesUp(t *testing.T) {
	c, _, _, _ := testCPU()
	as := mmu.NewAddressSpace()
	as.Map(0, mmu.PTE{Present: true, Young: false})
	c.AS = as
	c.FaultHandler = func(f *mmu.Fault) bool { return true } // "fixes" nothing
	if err := c.Load(0, make([]byte, 1)); err != ErrTooManyFaults {
		t.Fatalf("err = %v", err)
	}
}

func TestContextSwitchSpillsRegistersToDRAM(t *testing.T) {
	// The leak AES On SoC exists to prevent: a context switch with IRQs
	// enabled writes the register file to the kernel stack in DRAM.
	c, _, _, dram := testCPU()
	c.KernelStack = dramBase + 0x2000
	c.Regs[0] = 0x41414141 // "secret" key word
	if !c.ContextSwitch(mmu.NewAddressSpace()) {
		t.Fatal("switch should happen with IRQs on")
	}
	// Clean the cache so the spill reaches the DRAM chips.
	c.L2().CleanWays(c.L2().AllWaysMask())
	buf := make([]byte, 64)
	dram.Read(dramBase+0x2000-64, buf)
	if !bytes.Contains(buf, []byte{0x41, 0x41, 0x41, 0x41}) {
		t.Fatal("register spill did not reach DRAM")
	}
}

func TestIRQDisableBlocksContextSwitch(t *testing.T) {
	c, _, _, _ := testCPU()
	c.KernelStack = dramBase + 0x2000
	c.Regs[0] = 0x42424242
	c.DisableIRQ()
	if c.ContextSwitch(mmu.NewAddressSpace()) {
		t.Fatal("context switch happened with IRQs masked")
	}
	if c.RegisterSpills != 0 {
		t.Fatal("registers spilled despite masked IRQs")
	}
	c.EnableIRQ()
	if !c.IRQEnabled() {
		t.Fatal("IRQ state wrong")
	}
}

func TestZeroRegs(t *testing.T) {
	c, _, _, _ := testCPU()
	for i := range c.Regs {
		c.Regs[i] = 0xFF
	}
	c.ZeroRegs()
	for i, r := range c.Regs {
		if r != 0 {
			t.Fatalf("reg %d not zeroed", i)
		}
	}
}

type denyGuard struct{}

func (denyGuard) CheckCPUAccess(addr mem.PhysAddr, write bool) error {
	if addr >= iramBase && addr < iramBase+0x1000 {
		return &deniedErr{}
	}
	return nil
}

type deniedErr struct{}

func (*deniedErr) Error() string { return "denied" }

func TestGuardDeniesAccess(t *testing.T) {
	c, _, _, _ := testCPU()
	c.Guard = denyGuard{}
	defer func() {
		if recover() == nil {
			t.Fatal("expected abort panic")
		}
	}()
	c.ReadPhys(iramBase, make([]byte, 1))
}

func TestSpillWithoutStackIsNoOp(t *testing.T) {
	c, _, _, _ := testCPU()
	c.SpillRegs()
	if c.RegisterSpills != 0 {
		t.Fatal("spilled without a stack")
	}
}

// Package cpu models an application core of the SoC at the granularity
// Sentry cares about: where loads and stores are routed (iRAM, cache, or
// uncached DRAM), what the interrupt state permits (a context switch spills
// the register file to the kernel stack in DRAM — the leak AES On SoC's
// IRQ bracket exists to prevent), and how long it all takes.
//
// The CPU does not interpret an instruction set. "Code" is Go functions;
// what the simulator makes faithful is every *data* access those functions
// perform against the simulated memory system, because data placement and
// observability are what the paper's security argument rests on.
package cpu

import (
	"encoding/binary"
	"fmt"

	"sentry/internal/bus"
	"sentry/internal/cache"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/obs"
	"sentry/internal/sim"
)

// Guard authorises physical accesses. The TrustZone controller implements
// it to protect iRAM from the normal world; a nil Guard allows everything.
type Guard interface {
	CheckCPUAccess(addr mem.PhysAddr, write bool) error
}

// RegCount is the size of the architectural register file (ARM r0–r15).
const RegCount = 16

// ErrTooManyFaults is returned when the fault handler keeps failing to fix
// up a translation; it indicates an OS bug rather than an application error.
var ErrTooManyFaults = fmt.Errorf("cpu: translation fault not resolved by handler")

// CPU is a single simulated core.
type CPU struct {
	clock  *sim.Clock
	meter  *sim.Meter
	costs  *sim.CostTable
	energy *sim.EnergyTable

	l2   *cache.L2
	bus  *bus.Bus
	iram *mem.Device

	// Guard filters physical accesses (TrustZone). May be nil.
	Guard Guard

	// AS is the current address space; swapped by the scheduler.
	AS *mmu.AddressSpace

	// FaultHandler is invoked on translation faults. Returning true means
	// the fault was fixed up and the access should be retried. Installed by
	// the kernel.
	FaultHandler func(f *mmu.Fault) bool

	// Regs is the architectural register file. Crypto code models keeping
	// sensitive state "in registers" by staging it here; a context switch
	// with interrupts enabled spills it to the kernel stack in DRAM.
	Regs [RegCount]uint32

	// KernelStack is the physical top-of-stack the register file spills to
	// on a context switch.
	KernelStack mem.PhysAddr

	irqOn bool

	// Stats
	Faults         uint64
	ContextSwaps   uint64
	RegisterSpills uint64

	// Observability: nil (and nil-safe) until SetObs wires them.
	trace     *obs.Tracer
	ctrFaults *obs.Counter
	ctrSwaps  *obs.Counter
	ctrSpills *obs.Counter
}

// New returns a CPU wired to the given memory system. iram may be nil for
// platforms whose iRAM is not CPU-visible.
func New(clock *sim.Clock, meter *sim.Meter, costs *sim.CostTable, energy *sim.EnergyTable,
	l2 *cache.L2, b *bus.Bus, iram *mem.Device) *CPU {
	return &CPU{
		clock: clock, meter: meter, costs: costs, energy: energy,
		l2: l2, bus: b, iram: iram, irqOn: true,
	}
}

// Clone returns a CPU with identical architectural state — registers,
// interrupt mask, kernel stack pointer, and stats — wired to the given
// memory system. Guard, AS, and FaultHandler point at world objects, so
// the caller re-wires them against the cloned world; observability is
// re-wired through SetObs.
func (c *CPU) Clone(clock *sim.Clock, meter *sim.Meter, l2 *cache.L2, b *bus.Bus, iram *mem.Device) *CPU {
	n := New(clock, meter, c.costs, c.energy, l2, b, iram)
	n.Regs = c.Regs
	n.KernelStack = c.KernelStack
	n.irqOn = c.irqOn
	n.Faults = c.Faults
	n.ContextSwaps = c.ContextSwaps
	n.RegisterSpills = c.RegisterSpills
	return n
}

// SetObs wires the observability layer. Either argument may be nil.
func (c *CPU) SetObs(tr *obs.Tracer, reg *obs.Registry) {
	c.trace = tr
	c.ctrFaults = reg.Counter("cpu.faults")
	c.ctrSwaps = reg.Counter("cpu.context_switches")
	c.ctrSpills = reg.Counter("cpu.register_spills")
}

// Clock returns the CPU's clock (shared with the rest of the platform).
func (c *CPU) Clock() *sim.Clock { return c.clock }

// Meter returns the platform energy meter.
func (c *CPU) Meter() *sim.Meter { return c.meter }

// Costs returns the platform cost table.
func (c *CPU) Costs() *sim.CostTable { return c.costs }

// Energy returns the platform energy table.
func (c *CPU) Energy() *sim.EnergyTable { return c.energy }

// L2 returns the cache the core's DRAM accesses go through.
func (c *CPU) L2() *cache.L2 { return c.l2 }

func (c *CPU) inIRAM(addr mem.PhysAddr) bool {
	return c.iram != nil && c.iram.Contains(addr)
}

func (c *CPU) guard(addr mem.PhysAddr, write bool) {
	if c.Guard == nil {
		return
	}
	if err := c.Guard.CheckCPUAccess(addr, write); err != nil {
		// A denied physical access is a synchronous external abort; in the
		// simulator it is always a programming error in the caller.
		panic(err)
	}
}

// ReadPhys performs a cacheable physical read into dst. iRAM accesses stay
// on-SoC; DRAM accesses go through the L2 on its line-granular burst path.
func (c *CPU) ReadPhys(addr mem.PhysAddr, dst []byte) {
	c.guard(addr, false)
	if c.inIRAM(addr) {
		c.iram.Read(addr, dst)
		c.chargeIRAM(len(dst))
		return
	}
	c.l2.ReadBytes(addr, dst)
}

// WritePhys performs a cacheable physical write of src.
func (c *CPU) WritePhys(addr mem.PhysAddr, src []byte) {
	c.guard(addr, true)
	if c.inIRAM(addr) {
		c.iram.Write(addr, src)
		c.chargeIRAM(len(src))
		return
	}
	c.l2.WriteBytes(addr, src)
}

// ReadBytes is the explicit burst read: one cache line per step through the
// L2 (cache.ReadBytes), charging exactly the events and costs the same range
// would incur as individual word accesses. It is what page-sized transfers
// (Sentry's cryptPage, the background pager) ride on.
func (c *CPU) ReadBytes(addr mem.PhysAddr, dst []byte) { c.ReadPhys(addr, dst) }

// WriteBytes is the burst write twin of ReadBytes.
func (c *CPU) WriteBytes(addr mem.PhysAddr, src []byte) { c.WritePhys(addr, src) }

// ReadPhysUncached reads DRAM bypassing the cache (device/strongly-ordered
// mapping). The transfer is visible on the external bus.
func (c *CPU) ReadPhysUncached(addr mem.PhysAddr, dst []byte) {
	c.guard(addr, false)
	if c.inIRAM(addr) {
		c.iram.Read(addr, dst)
		c.chargeIRAM(len(dst))
		return
	}
	c.bus.ReadInto("cpu-uncached", addr, dst)
}

// WritePhysUncached writes DRAM bypassing the cache.
func (c *CPU) WritePhysUncached(addr mem.PhysAddr, src []byte) {
	c.guard(addr, true)
	if c.inIRAM(addr) {
		c.iram.Write(addr, src)
		c.chargeIRAM(len(src))
		return
	}
	c.bus.WriteFrom("cpu-uncached", addr, src)
}

func (c *CPU) chargeIRAM(n int) {
	words := uint64((n + 3) / 4)
	c.clock.Advance(words * c.costs.IRAMAccess)
	c.meter.Charge(float64(words) * c.energy.IRAMAccessPJ)
}

// translate resolves v, invoking the fault handler and retrying as needed.
func (c *CPU) translate(v mmu.VirtAddr, write bool) (mem.PhysAddr, error) {
	if c.AS == nil {
		return 0, fmt.Errorf("cpu: no address space installed")
	}
	c.clock.Advance(c.costs.TLBFill)
	for attempt := 0; attempt < 8; attempt++ {
		p, fault := c.AS.Translate(v, write)
		if fault == nil {
			return p, nil
		}
		c.Faults++
		c.ctrFaults.Inc()
		c.clock.Advance(c.costs.PageFaultTrap)
		if c.FaultHandler == nil || !c.FaultHandler(fault) {
			return 0, fault
		}
	}
	return 0, ErrTooManyFaults
}

// splitByPage runs fn per page-contiguous fragment of a virtual range.
func splitByPage(v mmu.VirtAddr, n int, fn func(v mmu.VirtAddr, n int) error) error {
	for n > 0 {
		step := int(mmu.PageSize - (uint64(v) & (mmu.PageSize - 1)))
		if step > n {
			step = n
		}
		if err := fn(v, step); err != nil {
			return err
		}
		v += mmu.VirtAddr(step)
		n -= step
	}
	return nil
}

// Load reads len(dst) bytes from virtual address v in the current address
// space, faulting (and letting the OS fix up) as required.
func (c *CPU) Load(v mmu.VirtAddr, dst []byte) error {
	return splitByPage(v, len(dst), func(v mmu.VirtAddr, n int) error {
		p, err := c.translate(v, false)
		if err != nil {
			return err
		}
		c.ReadPhys(p, dst[:n])
		dst = dst[n:]
		return nil
	})
}

// Store writes src at virtual address v in the current address space.
func (c *CPU) Store(v mmu.VirtAddr, src []byte) error {
	return splitByPage(v, len(src), func(v mmu.VirtAddr, n int) error {
		p, err := c.translate(v, true)
		if err != nil {
			return err
		}
		c.WritePhys(p, src[:n])
		src = src[n:]
		return nil
	})
}

// LoadWord loads a 32-bit little-endian word from v.
func (c *CPU) LoadWord(v mmu.VirtAddr) (uint32, error) {
	var b [4]byte
	if err := c.Load(v, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// StoreWord stores a 32-bit little-endian word at v.
func (c *CPU) StoreWord(v mmu.VirtAddr, w uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w)
	return c.Store(v, b[:])
}

// DisableIRQ masks interrupts. While masked, the scheduler cannot preempt,
// so the register file cannot be spilled to DRAM — the first half of the
// paper's onsoc_disable_irq() bracket.
func (c *CPU) DisableIRQ() {
	c.irqOn = false
	c.clock.Advance(c.costs.IRQToggle)
	if c.trace != nil {
		c.trace.Emit(obs.Event{Cycle: c.clock.Cycles(), Kind: obs.KindIRQMask, Arg: 1})
	}
}

// EnableIRQ unmasks interrupts. Callers holding secrets in registers must
// call ZeroRegs first — the onsoc_enable_irq() macro does both.
func (c *CPU) EnableIRQ() {
	c.irqOn = true
	c.clock.Advance(c.costs.IRQToggle)
	if c.trace != nil {
		c.trace.Emit(obs.Event{Cycle: c.clock.Cycles(), Kind: obs.KindIRQMask, Arg: 0})
	}
}

// IRQEnabled reports whether interrupts are unmasked.
func (c *CPU) IRQEnabled() bool { return c.irqOn }

// ZeroRegs clears the architectural register file.
func (c *CPU) ZeroRegs() {
	for i := range c.Regs {
		c.Regs[i] = 0
	}
}

// ContextSwitch models a preemption: if interrupts are enabled, the current
// register file is spilled to the kernel stack (a cacheable DRAM write —
// this is the leak path), the address space is swapped, and true is
// returned. With interrupts masked the switch cannot happen and false is
// returned.
func (c *CPU) ContextSwitch(next *mmu.AddressSpace) bool {
	if !c.irqOn {
		return false
	}
	c.SpillRegs()
	c.AS = next
	c.ContextSwaps++
	c.ctrSwaps.Inc()
	c.clock.Advance(c.costs.ContextSwitch)
	return true
}

// SpillRegs writes the register file to the kernel stack. The bytes land in
// cacheable DRAM: they may linger in the L2 and reach the DRAM chips on any
// eviction or clean.
func (c *CPU) SpillRegs() {
	if c.KernelStack == 0 {
		return
	}
	buf := make([]byte, 4*RegCount)
	for i, r := range c.Regs {
		binary.LittleEndian.PutUint32(buf[i*4:], r)
	}
	c.WritePhys(c.KernelStack-mem.PhysAddr(len(buf)), buf)
	c.RegisterSpills++
	c.ctrSpills.Inc()
}

package fleet

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState uint8

// Breaker states: Closed admits everything, Open rejects everything until a
// cooldown elapses, HalfOpen admits a bounded number of probes whose
// outcomes decide between re-closing and re-opening.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig parameterises one circuit breaker.
type BreakerConfig struct {
	// Window is the sliding outcome window length (default 20).
	Window int
	// FailureRate trips the breaker when failures/window >= it (default 0.5).
	FailureRate float64
	// MinSamples is the minimum window fill before the rate is consulted
	// (default 10): a single failure on a fresh device is not a pattern.
	MinSamples int
	// OpenFor is the cooldown before an open breaker lets probes through
	// (default 100ms).
	OpenFor time.Duration
	// HalfOpenProbes is how many probes half-open admits, and how many must
	// succeed to re-close (default 2).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 100 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	return c
}

// Breaker is a per-device circuit breaker over a sliding outcome window.
// Allow gates a request; Record reports its outcome. Only device-health
// failures should be recorded as failures — a device answering "wrong PIN"
// is healthy, a device that had to be restarted is not (the fleet layer
// makes that call; see healthFailure).
type Breaker struct {
	mu    sync.Mutex
	cfg   BreakerConfig
	clock Clock

	state    BreakerState
	ring     []bool // true = failure
	idx      int
	filled   int
	fails    int
	openedAt time.Time
	probes   int // half-open: probes admitted
	probeOKs int // half-open: probes succeeded
	trips    uint64
}

// NewBreaker returns a closed breaker on the given clock.
func NewBreaker(cfg BreakerConfig, clock Clock) *Breaker {
	cfg = cfg.withDefaults()
	if clock == nil {
		clock = Wall
	}
	return &Breaker{cfg: cfg, clock: clock, ring: make([]bool, cfg.Window)}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips counts closed/half-open → open transitions.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Allow gates one request: nil to proceed (the caller must then Record the
// outcome), ErrCircuitOpen to reject.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return ErrCircuitOpen
		}
		b.state = BreakerHalfOpen
		b.probes, b.probeOKs = 1, 0
		return nil
	default: // BreakerHalfOpen
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return nil
		}
		return ErrCircuitOpen
	}
}

// Record reports the outcome of a request Allow admitted.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if !ok {
			b.trip()
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.HalfOpenProbes {
			b.reset()
		}
	case BreakerClosed:
		b.push(!ok)
		if b.filled >= b.cfg.MinSamples &&
			float64(b.fails)/float64(b.filled) >= b.cfg.FailureRate {
			b.trip()
		}
	default:
		// Open: a straggler Record from before the trip; ignore.
	}
}

// push adds one outcome to the sliding window.
func (b *Breaker) push(failed bool) {
	if b.filled == len(b.ring) {
		if b.ring[b.idx] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.ring[b.idx] = failed
	if failed {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.ring)
}

func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.clock.Now()
	b.trips++
	b.clearWindow()
}

func (b *Breaker) reset() {
	b.state = BreakerClosed
	b.clearWindow()
}

func (b *Breaker) clearWindow() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.idx, b.filled, b.fails = 0, 0, 0
	b.probes, b.probeOKs = 0, 0
}

package fleet

import (
	"encoding/json"
	"testing"
)

// The chaos soak under the benign fault profile: power cuts and drain
// delays, retries, restarts — and still zero lost or duplicated operations,
// zero confidentiality violations, bounded retry amplification, and every
// quarantine traceable to an injected fault.
func TestSoakBenign(t *testing.T) {
	cfg := SoakConfig{Devices: 8, OpsPerDevice: 60, Seed: 42, Faults: "benign"}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("confidentiality violations: %v", rep.Violations)
	}
	if len(rep.Problems) != 0 {
		t.Errorf("soak problems: %v", rep.Problems)
	}
	if got := rep.OpsOK + rep.OpsFailed; got != rep.OpsAttempted {
		t.Errorf("ops accounting: ok %d + failed %d != attempted %d",
			rep.OpsOK, rep.OpsFailed, rep.OpsAttempted)
	}
	if rep.Amplification > 4 {
		t.Errorf("amplification %.2f exceeds MaxAttempts", rep.Amplification)
	}
	if rep.Execs == 0 || rep.OpsOK == 0 {
		t.Errorf("suspiciously idle soak: execs=%d ok=%d", rep.Execs, rep.OpsOK)
	}
	// A quarter of the devices boot iRAM-squeezed (SqueezeEvery default 4):
	// the degraded-crypto path must actually have been exercised.
	if rep.CryptoDowngrades == 0 {
		t.Error("no crypto downgrades despite squeezed devices")
	}
}

// The same soak twice must produce byte-identical reports: every retry
// decision, fault, restart, and ledger entry is a pure function of the seed.
func TestSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{Devices: 4, OpsPerDevice: 40, Seed: 7, Faults: "benign"}
	r1, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.MarshalIndent(r1, "", " ")
	j2, _ := json.MarshalIndent(r2, "", " ")
	if string(j1) != string(j2) {
		t.Fatalf("soak not deterministic for a fixed seed:\nrun1: %s\nrun2: %s", j1, j2)
	}
	// And a different seed produces a genuinely different run.
	r3, err := RunSoak(SoakConfig{Devices: 4, OpsPerDevice: 40, Seed: 8, Faults: "benign"})
	if err != nil {
		t.Fatal(err)
	}
	j3, _ := json.MarshalIndent(r3, "", " ")
	if string(j1) == string(j3) {
		t.Fatal("different seeds produced identical soak reports")
	}
}

// The acceptance diff for the tentpole: the full soak JSON — counters,
// ledgers, digests, per-device accounting — is byte-identical whether
// devices stay resident or are parked and re-hydrated throughout the run.
func TestSoakEvictionIdentical(t *testing.T) {
	base := SoakConfig{Devices: 6, OpsPerDevice: 50, Seed: 9, Faults: "benign", Shards: 2}
	free, err := RunSoak(base)
	if err != nil {
		t.Fatal(err)
	}
	capped := base
	capped.ResidentCap = 2
	evicted, err := RunSoak(capped)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.MarshalIndent(free, "", " ")
	j2, _ := json.MarshalIndent(evicted, "", " ")
	if string(j1) != string(j2) {
		t.Fatalf("soak report differs with eviction on:\nfree:   %s\ncapped: %s", j1, j2)
	}
	if !free.Passed() {
		t.Fatalf("soak failed: %v / %v", free.Problems, free.Violations)
	}
}

// With no faults injected there is nothing to restart or quarantine.
func TestSoakNoFaults(t *testing.T) {
	rep, err := RunSoak(SoakConfig{Devices: 2, OpsPerDevice: 30, Seed: 3, Faults: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("fault-free soak failed: problems=%v violations=%v", rep.Problems, rep.Violations)
	}
	if rep.Restarts != 0 || rep.Quarantines != 0 {
		t.Fatalf("restarts=%d quarantines=%d in a fault-free run", rep.Restarts, rep.Quarantines)
	}
}

func TestSoakUnknownProfile(t *testing.T) {
	if _, err := RunSoak(SoakConfig{Faults: "nope"}); err == nil {
		t.Fatal("unknown fault profile accepted")
	}
}

// The quarantine audit rejects causes that are not injected faults.
func TestAuditQuarantine(t *testing.T) {
	if p := auditQuarantine(0, 2, []string{"fault: power cut", "fault: power cut", "panic: x"}); len(p) != 0 {
		t.Fatalf("traceable quarantine flagged: %v", p)
	}
	if p := auditQuarantine(0, 2, []string{"fault: a", "boot failed (x): y", "fault: b"}); len(p) == 0 {
		t.Fatal("untraceable cause not flagged")
	}
	if p := auditQuarantine(0, 3, []string{"fault: a"}); len(p) == 0 {
		t.Fatal("quarantine under budget not flagged")
	}
}

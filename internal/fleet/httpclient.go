package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// HTTPClient is the Client implementation over the sentryd serving API.
// Errors round-trip typed: a remote ErrQuarantined satisfies
// errors.Is(err, ErrQuarantined) exactly like a local one, so soak
// harnesses and load generators run unchanged against either transport.
type HTTPClient struct {
	base string
	hc   *http.Client
}

// NewHTTPClient returns a Client speaking to the sentryd at baseURL (e.g.
// "http://127.0.0.1:8473"). httpClient nil means http.DefaultClient;
// per-request deadlines come from the Do context, as in-process.
func NewHTTPClient(baseURL string, httpClient *http.Client) *HTTPClient {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &HTTPClient{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// Do implements Client: a single-op batch against device id.
func (c *HTTPClient) Do(ctx context.Context, id DeviceID, op Op) (Result, error) {
	outs, err := c.DoBatch(ctx, id, []Op{op})
	if err != nil {
		return Result{}, err
	}
	if len(outs) != 1 {
		return Result{}, fmt.Errorf("fleet: remote returned %d results for 1 op", len(outs))
	}
	return outs[0].Result, ErrorForCode(outs[0].Code, outs[0].Error)
}

// DoBatch executes ops in order against device id in one round trip and
// returns one WireResult per op. A request-level failure (overload,
// shutdown, unknown device, transport) returns an error and no results.
func (c *HTTPClient) DoBatch(ctx context.Context, id DeviceID, ops []Op) ([]WireResult, error) {
	wire := WireBatch{Ops: make([]WireOp, len(ops))}
	for i, op := range ops {
		wire.Ops[i] = WireOp{Code: op.Code.String(), Arg: op.Arg, Prio: op.Prio}
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/v1/devices/%d/ops", c.base, uint64(id))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp WireBatchResp
	if err := c.roundTrip(req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(ops) {
		return nil, fmt.Errorf("fleet: remote returned %d results for %d ops", len(resp.Results), len(ops))
	}
	return resp.Results, nil
}

// Health implements Client.
func (c *HTTPClient) Health(ctx context.Context) (FleetHealth, error) {
	var h FleetHealth
	err := c.get(ctx, "/v1/health", &h)
	return h, err
}

// Ledger implements Client.
func (c *HTTPClient) Ledger(ctx context.Context, id DeviceID) ([]LedgerEntry, error) {
	var ledger []LedgerEntry
	err := c.get(ctx, fmt.Sprintf("/v1/devices/%d/ledger", uint64(id)), &ledger)
	return ledger, err
}

// DeviceHealth fetches one device's probe view.
func (c *HTTPClient) DeviceHealth(ctx context.Context, id DeviceID) (DeviceHealth, error) {
	var h DeviceHealth
	err := c.get(ctx, fmt.Sprintf("/v1/devices/%d/health", uint64(id)), &h)
	return h, err
}

// Close implements Client.
func (c *HTTPClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

func (c *HTTPClient) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.roundTrip(req, out)
}

// roundTrip executes the request and decodes a 200 body into out; non-200
// responses are decoded as WireError and reconstructed into the typed
// fleet error the server classified.
func (c *HTTPClient) roundTrip(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we WireError
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&we); err != nil || we.Code == "" {
			return fmt.Errorf("fleet: remote status %d", resp.StatusCode)
		}
		return ErrorForCode(we.Code, we.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

var _ Client = (*HTTPClient)(nil)
var _ Client = (*Fleet)(nil)

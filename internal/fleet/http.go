package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Wire types of the sentryd serving API. Every typed fleet error crosses
// the boundary as its ErrorCode string, and HTTPClient maps codes back to
// the same sentinels, so errors.Is behaves identically on both transports.
type (
	// WireOp is one operation in a batch request: the op name (OpCode's
	// String form), its argument, and its mailbox priority.
	WireOp struct {
		Code string `json:"code"`
		Arg  uint64 `json:"arg,omitempty"`
		Prio int    `json:"prio,omitempty"`
	}
	// WireBatch is the body of POST /v1/devices/{id}/ops.
	WireBatch struct {
		Ops []WireOp `json:"ops"`
	}
	// WireResult is one op's outcome: the typed Result plus the error code
	// ("ok" on success) and human-readable message.
	WireResult struct {
		Result
		Code  string `json:"code"`
		Error string `json:"error,omitempty"`
	}
	// WireBatchResp is the body of a batch response, one entry per op in
	// request order.
	WireBatchResp struct {
		Results []WireResult `json:"results"`
	}
	// WireError is the body of a non-200 response.
	WireError struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
)

// maxBatchOps bounds one batch request; larger batches are a client bug,
// not a load profile.
const maxBatchOps = 1024

// NewHandler mounts the fleet serving API:
//
//	POST /v1/devices/{id}/ops     — execute a batch of ops, JSON-typed results
//	GET  /v1/devices/{id}/ledger  — the device's sequence ledger
//	GET  /v1/devices/{id}/health  — one device's probe view
//	GET  /v1/health               — fleet-level probe summary
//
// Per-op failures ride inside a 200 batch response (each entry carries its
// own code); request-level failures (bad JSON, unknown device, overload,
// shutdown) use HTTP status codes with a WireError body.
func NewHandler(f *Fleet) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/devices/{id}/ops", func(w http.ResponseWriter, r *http.Request) {
		id, ok := deviceID(w, r)
		if !ok {
			return
		}
		var batch WireBatch
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			writeError(w, http.StatusBadRequest, CodeOther, fmt.Sprintf("bad batch body: %v", err))
			return
		}
		if len(batch.Ops) == 0 {
			writeError(w, http.StatusBadRequest, CodeOther, "empty batch")
			return
		}
		if len(batch.Ops) > maxBatchOps {
			writeError(w, http.StatusBadRequest, CodeOther,
				fmt.Sprintf("batch of %d ops exceeds limit %d", len(batch.Ops), maxBatchOps))
			return
		}
		ops := make([]Op, len(batch.Ops))
		for i, wop := range batch.Ops {
			code, ok := OpCodeByName(wop.Code)
			if !ok {
				writeError(w, http.StatusBadRequest, CodeOther, fmt.Sprintf("unknown op %q", wop.Code))
				return
			}
			ops[i] = Op{Code: code, Arg: wop.Arg, Prio: wop.Prio}
		}
		resp := WireBatchResp{Results: make([]WireResult, 0, len(ops))}
		for _, op := range ops {
			res, err := f.Do(r.Context(), id, op)
			// Request-level conditions abort the whole batch with a status
			// the client backs off on; per-device outcomes ride per-op.
			switch {
			case errors.Is(err, ErrOverload):
				writeError(w, http.StatusTooManyRequests, CodeOverload, err.Error())
				return
			case errors.Is(err, ErrShutdown):
				writeError(w, http.StatusServiceUnavailable, CodeShutdown, err.Error())
				return
			case errors.Is(err, ErrUnknownDevice):
				writeError(w, http.StatusNotFound, CodeUnknownDevice, err.Error())
				return
			}
			wr := WireResult{Result: res, Code: ErrorCode(err)}
			if err != nil {
				wr.Error = err.Error()
			}
			resp.Results = append(resp.Results, wr)
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/devices/{id}/ledger", func(w http.ResponseWriter, r *http.Request) {
		id, ok := deviceID(w, r)
		if !ok {
			return
		}
		ledger, err := f.Ledger(r.Context(), id)
		if err != nil {
			if errors.Is(err, ErrUnknownDevice) {
				writeError(w, http.StatusNotFound, CodeUnknownDevice, err.Error())
				return
			}
			writeError(w, http.StatusInternalServerError, ErrorCode(err), err.Error())
			return
		}
		if ledger == nil {
			ledger = []LedgerEntry{}
		}
		writeJSON(w, http.StatusOK, ledger)
	})

	mux.HandleFunc("GET /v1/devices/{id}/health", func(w http.ResponseWriter, r *http.Request) {
		id, ok := deviceID(w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, f.DeviceHealth(id))
	})

	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, r *http.Request) {
		h, err := f.Health(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, ErrorCode(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, h)
	})
	return mux
}

func deviceID(w http.ResponseWriter, r *http.Request) (DeviceID, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeOther, fmt.Sprintf("bad device id %q", r.PathValue("id")))
		return 0, false
	}
	return DeviceID(id), true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, WireError{Code: code, Error: msg})
}

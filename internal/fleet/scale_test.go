package fleet

import (
	"context"
	"testing"
)

// The headline capacity claim: 10^5 logical devices hosted in one process
// behind a resident cap of 1/48th of the population. 4096 devices spread
// across the whole ID space actually boot; the LRU parks and re-hydrates
// them as the working set slides, and the resident gauge never exceeds the
// cap. Skipped under -short and -race (it is a capacity test, not a logic
// test — every mechanism it uses is covered by the small tests above).
func TestScaleHundredThousandLogical(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	if raceEnabled {
		t.Skip("scale test skipped under the race detector")
	}
	const (
		logical  = 100_000
		capacity = 2048 // well under the 1/16-of-logical acceptance bound
		touched  = 4096 // twice the cap: every later touch evicts someone
		stride   = logical / touched
	)
	f := Open(logical, WithSeed(1), WithShards(16), WithResidentCap(capacity))
	defer f.Stop()
	ctx := context.Background()

	for i := 0; i < touched; i++ {
		id := DeviceID(i * stride)
		if _, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: uint64(i)}); err != nil {
			t.Fatalf("touch %d: %v", id, err)
		}
	}
	h, err := f.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Logical != logical {
		t.Fatalf("logical = %d, want %d", h.Logical, logical)
	}
	if h.Touched != touched {
		t.Fatalf("touched = %d, want %d", h.Touched, touched)
	}
	if h.Resident > capacity {
		t.Fatalf("resident %d exceeds cap %d", h.Resident, capacity)
	}
	if n := f.Metrics().CounterValue(MetricParks); n == 0 {
		t.Fatal("a working set twice the cap parked nothing")
	}

	// Slide back over the oldest slice of the working set: parked devices
	// re-hydrate with their state intact (the ledgered seq continues at 2).
	for i := 0; i < 64; i++ {
		id := DeviceID(i * stride)
		res, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: uint64(i)})
		if err != nil {
			t.Fatalf("re-touch %d: %v", id, err)
		}
		if res.Seq != 2 {
			t.Fatalf("device %d seq = %d after re-hydration, want 2", id, res.Seq)
		}
	}
	if n := f.Metrics().CounterValue(MetricHydrations); n < 64 {
		t.Fatalf("hydrations = %d, want >= 64", n)
	}
	if b := f.DeviceHealth(0).Boots; b != 1 {
		t.Fatalf("device 0 boots = %d after park/hydrate cycles, want 1", b)
	}
}

// TestScaleMillionLogical is the 10^6 capacity claim, reachable because a
// parked device now rests as a delta against the shared base (~16 KB
// measured, vs ~630 KB for a full snapshot): 10^6 logical devices behind a
// 2048-seat resident cap, a working set of 8192 booted devices parked and
// re-hydrated as it slides, and a live reshard 32→48 partway through.
// Skipped under -short and -race like the 10^5 test — capacity, not logic.
func TestScaleMillionLogical(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	if raceEnabled {
		t.Skip("scale test skipped under the race detector")
	}
	const (
		logical  = 1_000_000
		capacity = 2048
		touched  = 8192
		stride   = logical / touched
	)
	f := Open(logical, WithSeed(1), WithShards(32), WithResidentCap(capacity))
	defer f.Stop()
	ctx := context.Background()

	for i := 0; i < touched; i++ {
		id := DeviceID(i * stride)
		if _, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: uint64(i)}); err != nil {
			t.Fatalf("touch %d: %v", id, err)
		}
		if i == touched/2 {
			// Grow the shard table mid-sweep, under traffic.
			if err := f.Reshard(48); err != nil {
				t.Fatalf("reshard mid-sweep: %v", err)
			}
		}
	}
	h, err := f.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Logical != logical || h.Touched != touched {
		t.Fatalf("population = %d logical / %d touched, want %d / %d",
			h.Logical, h.Touched, logical, touched)
	}
	if h.Resident > capacity {
		t.Fatalf("resident %d exceeds cap %d", h.Resident, capacity)
	}
	if h.Shards != 48 {
		t.Fatalf("shards = %d, want 48 after reshard", h.Shards)
	}

	// The memory claim that makes 10^6 hostable: parked devices rest at
	// delta cost. 6144+ parked devices at full-snapshot cost (~630 KB each)
	// would be ~4 GB; the delta encoding holds them under 64 KB each.
	parked := h.Touched - h.Resident
	if parked < touched-capacity {
		t.Fatalf("parked = %d, want >= %d", parked, touched-capacity)
	}
	perDevice := f.Metrics().GaugeValue(MetricParkedBytes) / int64(parked)
	if perDevice <= 0 || perDevice > 64<<10 {
		t.Fatalf("parked footprint = %d B/device, want (0, 64KiB] (delta encoding)", perDevice)
	}
	t.Logf("%d parked devices at %d B/device (%.1f MB total)",
		parked, perDevice, float64(f.Metrics().GaugeValue(MetricParkedBytes))/1e6)

	// Slide back over the oldest slice: parked deltas re-hydrate with state
	// intact across park, reshard, and re-park.
	for i := 0; i < 64; i++ {
		id := DeviceID(i * stride)
		res, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: uint64(i)})
		if err != nil {
			t.Fatalf("re-touch %d: %v", id, err)
		}
		if res.Seq != 2 {
			t.Fatalf("device %d seq = %d after re-hydration, want 2", id, res.Seq)
		}
		if b := f.DeviceHealth(id).Boots; b != 1 {
			t.Fatalf("device %d boots = %d, want 1", id, b)
		}
	}
}

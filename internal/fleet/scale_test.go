package fleet

import (
	"context"
	"testing"
)

// The headline capacity claim: 10^5 logical devices hosted in one process
// behind a resident cap of 1/48th of the population. 4096 devices spread
// across the whole ID space actually boot; the LRU parks and re-hydrates
// them as the working set slides, and the resident gauge never exceeds the
// cap. Skipped under -short and -race (it is a capacity test, not a logic
// test — every mechanism it uses is covered by the small tests above).
func TestScaleHundredThousandLogical(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	if raceEnabled {
		t.Skip("scale test skipped under the race detector")
	}
	const (
		logical  = 100_000
		capacity = 2048 // well under the 1/16-of-logical acceptance bound
		touched  = 4096 // twice the cap: every later touch evicts someone
		stride   = logical / touched
	)
	f := Open(logical, WithSeed(1), WithShards(16), WithResidentCap(capacity))
	defer f.Stop()
	ctx := context.Background()

	for i := 0; i < touched; i++ {
		id := DeviceID(i * stride)
		if _, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: uint64(i)}); err != nil {
			t.Fatalf("touch %d: %v", id, err)
		}
	}
	h, err := f.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Logical != logical {
		t.Fatalf("logical = %d, want %d", h.Logical, logical)
	}
	if h.Touched != touched {
		t.Fatalf("touched = %d, want %d", h.Touched, touched)
	}
	if h.Resident > capacity {
		t.Fatalf("resident %d exceeds cap %d", h.Resident, capacity)
	}
	if n := f.Metrics().CounterValue(MetricParks); n == 0 {
		t.Fatal("a working set twice the cap parked nothing")
	}

	// Slide back over the oldest slice of the working set: parked devices
	// re-hydrate with their state intact (the ledgered seq continues at 2).
	for i := 0; i < 64; i++ {
		id := DeviceID(i * stride)
		res, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: uint64(i)})
		if err != nil {
			t.Fatalf("re-touch %d: %v", id, err)
		}
		if res.Seq != 2 {
			t.Fatalf("device %d seq = %d after re-hydration, want 2", id, res.Seq)
		}
	}
	if n := f.Metrics().CounterValue(MetricHydrations); n < 64 {
		t.Fatalf("hydrations = %d, want >= 64", n)
	}
	if b := f.DeviceHealth(0).Boots; b != 1 {
		t.Fatalf("device 0 boots = %d after park/hydrate cycles, want 1", b)
	}
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sentry/internal/aes"
	"sentry/internal/kernel"
	"sentry/internal/onsoc"
)

// instantBackoff removes real sleeps from retry loops in tests.
var instantBackoff = Backoff{Base: 1, Cap: 1, Jitter: 0}

// testSlot returns device id's slot, nil before its first op.
func testSlot(f *Fleet, id DeviceID) *slot {
	return f.shardFor(id).peekSlot(id)
}

// testActor returns device id's resident actor (nil when parked/untouched),
// read under the shard lock.
func testActor(f *Fleet, id DeviceID) *actor {
	sh := f.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sl := sh.slots[id]; sl != nil {
		return sl.act
	}
	return nil
}

// queueLen reports device id's mailbox depth (0 when not resident).
func queueLen(f *Fleet, id DeviceID) int {
	if a := testActor(f, id); a != nil {
		return a.mbox.len()
	}
	return 0
}

func TestTransientClassifier(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("layer: %w", err) }
	cases := []struct {
		err       error
		transient bool
	}{
		{nil, false},
		{kernel.ErrBadPIN, false},
		{wrap(kernel.ErrBadPIN), false},
		{ErrQuarantined, false},
		{ErrShutdown, false},
		{ErrUnknownDevice, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("mystery"), false}, // unknown errors are not retried
		{kernel.ErrLocked, true},
		{wrap(kernel.ErrLocked), true},
		{ErrShed, true},
		{ErrOverload, true},
		{ErrCircuitOpen, true},
		{ErrDeviceRestarted, true},
		{wrap(ErrDeviceRestarted), true},
		{onsoc.ErrIRAMExhausted, true},
		{kernel.ErrNoMemory, true},
		// A countermeasure-detected fault abort is fail-safe: retryable,
		// never a confidentiality violation.
		{&aes.FaultDetectedError{Countermeasure: aes.CMRedundant, Block: 3}, true},
		{wrap(&aes.FaultDetectedError{Countermeasure: aes.CMTag}), true},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.transient {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.transient)
		}
		wantPerm := c.err != nil && !c.transient
		if got := Permanent(c.err); got != wantPerm {
			t.Errorf("Permanent(%v) = %v, want %v", c.err, got, wantPerm)
		}
	}
}

// Every typed error round-trips the wire-code mapping: ErrorForCode of
// ErrorCode reproduces an error the same errors.Is checks accept.
func TestErrorCodeRoundTrip(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("layer: %w", err) }
	sentinels := []error{
		kernel.ErrBadPIN, kernel.ErrLocked, ErrQuarantined, ErrDeviceRestarted,
		ErrShed, ErrOverload, ErrCircuitOpen, ErrShutdown, ErrUnknownDevice,
		context.DeadlineExceeded, context.Canceled,
	}
	for _, sent := range sentinels {
		code := ErrorCode(wrap(sent))
		back := ErrorForCode(code, "remote detail")
		if !errors.Is(back, sent) {
			t.Errorf("ErrorForCode(%q) = %v, does not wrap %v", code, back, sent)
		}
		// Transience must survive the round trip — the retry classifier
		// behaves identically on both transports.
		if Transient(back) != Transient(sent) {
			t.Errorf("Transient mismatch across round trip for %v", sent)
		}
	}
	if ErrorCode(nil) != CodeOK {
		t.Errorf("ErrorCode(nil) = %q, want ok", ErrorCode(nil))
	}
	if ErrorForCode(CodeOK, "") != nil || ErrorForCode("", "") != nil {
		t.Error("ErrorForCode(ok) != nil")
	}
	if err := ErrorForCode("some_future_code", "detail"); err == nil {
		t.Error("unknown code should still produce an error")
	}
}

func TestMailboxPriorityAndShed(t *testing.T) {
	m := newMailbox(2)
	mk := func(code OpCode) *request {
		return &request{op: Op{Code: code}, reply: make(chan result, 1)}
	}
	low, norm := mk(OpPing), mk(OpTouch)
	if _, err := m.push(low, PrioLow); err != nil {
		t.Fatal(err)
	}
	if _, err := m.push(norm, PrioNormal); err != nil {
		t.Fatal(err)
	}
	// Full. A high push steals the youngest lowest-priority entry (low).
	high := mk(OpLock)
	shedded, err := m.push(high, PrioHigh)
	if err != nil || !shedded {
		t.Fatalf("high push: shedded=%v err=%v, want true,nil", shedded, err)
	}
	select {
	case res := <-low.reply:
		if !errors.Is(res.err, ErrShed) {
			t.Fatalf("victim error = %v, want ErrShed", res.err)
		}
	default:
		t.Fatal("victim not completed with ErrShed")
	}
	// A low push into a full queue of higher-priority work sheds itself.
	if _, err := m.push(mk(OpPing), PrioLow); !errors.Is(err, ErrShed) {
		t.Fatalf("low push into full queue = %v, want ErrShed", err)
	}
	// Pop order: priority first, FIFO within.
	if r := m.pop(); r != high {
		t.Fatal("pop did not return the high-priority request first")
	}
	if r := m.pop(); r != norm {
		t.Fatal("pop did not return the normal request second")
	}
	// Close fails later pushes and returns what is queued.
	m.push(mk(OpPing), PrioLow)
	pending := m.close(ErrShutdown)
	if len(pending) != 1 {
		t.Fatalf("close returned %d pending, want 1", len(pending))
	}
	if _, err := m.push(mk(OpPing), PrioLow); !errors.Is(err, ErrShutdown) {
		t.Fatalf("push after close = %v, want ErrShutdown", err)
	}
}

func TestDoRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	f := New(Options{
		Devices: 1, Seed: 5, MaxAttempts: 4, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if calls.Add(1) < 3 {
				return true, Result{}, fmt.Errorf("flaky: %w", ErrDeviceRestarted)
			}
			return true, Result{State: "ok"}, nil
		},
	})
	defer f.Stop()

	res, err := f.Do(context.Background(), 0, Op{Code: OpTouch})
	if err != nil {
		t.Fatalf("Do = %v, want success on third attempt", err)
	}
	if res.State != "ok" {
		t.Fatalf("state = %q, want ok", res.State)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	if n := f.Metrics().CounterValue(MetricRetries); n != 2 {
		t.Fatalf("retries = %d, want 2", n)
	}
	if n := f.Metrics().CounterValue(MetricOpsOK); n != 1 {
		t.Fatalf("ops_ok = %d, want 1", n)
	}
}

func TestDetectedFaultAbortRetriedOnFakeClock(t *testing.T) {
	// A glitched encryption caught by a countermeasure surfaces as a
	// transient error: the actor retries through the backoff path (driven
	// here entirely by a FakeClock — no wall sleeps) and the rekeyed device
	// serves the retry.
	clk := NewFakeClock()
	bo := Backoff{Base: time.Millisecond, Cap: time.Millisecond, Jitter: 0}
	var calls atomic.Int64
	f := New(Options{
		Devices: 1, Seed: 5, MaxAttempts: 4, Backoff: &bo, Clock: clk,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if calls.Add(1) < 3 {
				return true, Result{}, fmt.Errorf("crypt: %w",
					&aes.FaultDetectedError{Countermeasure: aes.CMRedundant, Block: 1})
			}
			return true, Result{State: "rekeyed-ok"}, nil
		},
	})
	defer f.Stop()

	type out struct {
		res Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := f.Do(context.Background(), 0, Op{Code: OpTouch})
		done <- out{res, err}
	}()
	var got out
	for {
		if clk.Pending() > 0 {
			clk.Advance(time.Millisecond)
		}
		select {
		case got = <-done:
		default:
			time.Sleep(100 * time.Microsecond)
			continue
		}
		break
	}
	if got.err != nil {
		t.Fatalf("Do = %v, want success after fault-abort retries", got.err)
	}
	if got.res.State != "rekeyed-ok" || got.res.Attempts != 3 {
		t.Fatalf("result = %+v, want 3 attempts", got.res)
	}
	if n := f.Metrics().CounterValue(MetricRetries); n != 2 {
		t.Fatalf("retries = %d, want 2", n)
	}
}

func TestFaultDetectedCodeRoundTrip(t *testing.T) {
	// Transience must survive the HTTP wire code for detected faults too.
	err := fmt.Errorf("device: %w", &aes.FaultDetectedError{Countermeasure: aes.CMTag, Block: 2})
	code := ErrorCode(err)
	if code != CodeFaultDetected {
		t.Fatalf("ErrorCode = %q, want %q", code, CodeFaultDetected)
	}
	back := ErrorForCode(code, err.Error())
	var fd *aes.FaultDetectedError
	if !errors.As(back, &fd) {
		t.Fatalf("round-tripped error %v lost its type", back)
	}
	if !Transient(back) {
		t.Fatal("round-tripped fault abort no longer transient")
	}
}

func TestDoNeverRetriesPermanentFailures(t *testing.T) {
	var calls atomic.Int64
	f := New(Options{
		Devices: 1, Seed: 5, MaxAttempts: 4, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			calls.Add(1)
			return true, Result{}, fmt.Errorf("auth: %w", kernel.ErrBadPIN)
		},
	})
	defer f.Stop()

	_, err := f.Do(context.Background(), 0, Op{Code: OpUnlock})
	if !errors.Is(err, kernel.ErrBadPIN) {
		t.Fatalf("Do = %v, want ErrBadPIN", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("exec ran %d times for a permanent error, want 1", n)
	}
	if n := f.Metrics().CounterValue(MetricRetries); n != 0 {
		t.Fatalf("retries = %d, want 0", n)
	}
}

func TestDoUnknownDevice(t *testing.T) {
	f := New(Options{Devices: 1, Seed: 5})
	defer f.Stop()
	_, err := f.Do(context.Background(), 7, Op{Code: OpPing})
	if !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("Do(7) = %v, want ErrUnknownDevice", err)
	}
}

// Admission control sheds whole requests at the front door with a typed
// ErrOverload once the inflight token pool is exhausted, and Do never
// retries it.
func TestAdmissionControlOverload(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	f := New(Options{
		Devices: 2, Seed: 5, MaxInflight: 1, MaxAttempts: 4, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if op.Code == OpRebootDrill {
				started <- struct{}{}
				<-block
			}
			return true, Result{State: "ok"}, nil
		},
	})
	defer f.Stop()

	go f.Do(context.Background(), 0, Op{Code: OpRebootDrill})
	<-started

	// The single admission token is held by the blocked request.
	_, err := f.Do(context.Background(), 1, Op{Code: OpPing})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("Do over the inflight limit = %v, want ErrOverload", err)
	}
	if n := f.Metrics().CounterValue(MetricOverloads); n != 1 {
		t.Fatalf("overloads = %d, want 1 (ErrOverload must not be retried)", n)
	}
	close(block)
	// Token released: traffic flows again.
	waitFor(t, func() bool {
		_, err := f.Do(context.Background(), 1, Op{Code: OpPing})
		return err == nil
	})
}

// A saturated mailbox sheds the lowest-priority queued request in favour of
// higher-priority arrivals.
func TestOverloadShedsLowestPriority(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	f := New(Options{
		Devices: 1, Seed: 5, MailboxCap: 2, MaxAttempts: 1, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if op.Code == OpRebootDrill { // the blocker occupying the actor
				started <- struct{}{}
				<-block
			}
			return true, Result{State: "ok"}, nil
		},
	})
	defer f.Stop()

	go f.Do(context.Background(), 0, Op{Code: OpRebootDrill, Prio: PrioHigh})
	<-started

	// Two low-priority requests fill the mailbox while the actor is busy.
	var wg sync.WaitGroup
	lowErrs := make([]error, 2)
	for i := range lowErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, lowErrs[i] = f.Do(context.Background(), 0, Op{Code: OpPing, Prio: PrioLow})
		}(i)
	}
	waitFor(t, func() bool { return queueLen(f, 0) == 2 })

	// A high-priority request must get in; one low request goes overboard.
	// The shed happens synchronously inside the push, before the actor is
	// released.
	highErr := make(chan error, 1)
	go func() {
		_, err := f.Do(context.Background(), 0, Op{Code: OpLock, Prio: PrioHigh})
		highErr <- err
	}()
	waitFor(t, func() bool { return f.Metrics().CounterValue(MetricSheds) == 1 })
	close(block)
	if err := <-highErr; err != nil {
		t.Fatalf("high-priority Do = %v, want success", err)
	}
	wg.Wait()

	sheds := 0
	for _, e := range lowErrs {
		if errors.Is(e, ErrShed) {
			sheds++
		} else if e != nil {
			t.Fatalf("low-priority Do = %v, want nil or ErrShed", e)
		}
	}
	if sheds != 1 {
		t.Fatalf("%d low requests shed, want exactly 1", sheds)
	}
	if n := f.Metrics().CounterValue(MetricSheds); n != 1 {
		t.Fatalf("sheds counter = %d, want 1", n)
	}
}

// A panicking device is restarted through the supervised path until the
// restart budget runs out, then quarantined.
func TestPanicIsolationAndQuarantine(t *testing.T) {
	f := New(Options{
		Devices: 1, Seed: 5, MaxAttempts: 1, RestartBudget: 2, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if op.Arg == 666 {
				panic("boom")
			}
			return false, Result{}, nil // fall through to the real device
		},
	})
	defer f.Stop()

	crash := Op{Code: OpTouch, Arg: 666}
	for i := 0; i < 2; i++ {
		_, err := f.Do(context.Background(), 0, crash)
		if !errors.Is(err, ErrDeviceRestarted) {
			t.Fatalf("crash %d: err = %v, want ErrDeviceRestarted", i+1, err)
		}
	}
	// Between crashes the freshly booted device still serves real traffic.
	if _, err := f.Do(context.Background(), 0, Op{Code: OpPing}); err != nil {
		t.Fatalf("ping after restart: %v", err)
	}

	// Third crash exceeds the budget: quarantine.
	_, err := f.Do(context.Background(), 0, crash)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("third crash: err = %v, want ErrQuarantined", err)
	}
	// And the quarantine is sticky, even for innocent requests.
	_, err = f.Do(context.Background(), 0, Op{Code: OpPing})
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("post-quarantine ping: err = %v, want ErrQuarantined", err)
	}

	h := f.DeviceHealth(0)
	if !h.Quarantined {
		t.Fatal("health does not report quarantine")
	}
	if f.Ready() {
		t.Fatal("fleet with every device quarantined reports ready")
	}
	causes := f.RestartCauses(0)
	if len(causes) != 3 {
		t.Fatalf("causes = %v, want 3 entries", causes)
	}
	for _, c := range causes {
		if c != "panic: boom" {
			t.Fatalf("cause = %q, want panic: boom", c)
		}
	}
	if n := f.Metrics().CounterValue(MetricRestarts); n != 3 {
		t.Fatalf("restarts = %d, want 3", n)
	}
	if n := f.Metrics().CounterValue(MetricQuarantines); n != 1 {
		t.Fatalf("quarantines = %d, want 1", n)
	}
}

// Every request has a deadline, and a blown deadline is not retried.
func TestDeadlineExceeded(t *testing.T) {
	block := make(chan struct{})
	f := New(Options{
		Devices: 1, Seed: 5, MaxAttempts: 4, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			<-block
			return true, Result{State: "ok"}, nil
		},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := f.Do(ctx, 0, Op{Code: OpTouch})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want DeadlineExceeded", err)
	}
	if n := f.Metrics().CounterValue(MetricRetries); n != 0 {
		t.Fatalf("a blown deadline was retried %d times", n)
	}
	close(block)
	f.Stop()
}

// Repeated health failures trip the device's breaker; once open, requests
// are rejected without touching the actor.
func TestBreakerTripsOnHealthFailures(t *testing.T) {
	f := New(Options{
		Devices: 1, Seed: 5, MaxAttempts: 1, Backoff: &instantBackoff,
		Breaker: BreakerConfig{Window: 3, MinSamples: 3, FailureRate: 1, OpenFor: time.Hour, HalfOpenProbes: 1},
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if op.Code == OpTouch {
				return true, Result{}, fmt.Errorf("dying: %w", ErrDeviceRestarted)
			}
			return true, Result{State: "ok"}, nil
		},
	})
	defer f.Stop()

	for i := 0; i < 3; i++ {
		if _, err := f.Do(context.Background(), 0, Op{Code: OpTouch}); !errors.Is(err, ErrDeviceRestarted) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	execsBefore := f.Metrics().CounterValue(MetricExecs)
	_, err := f.Do(context.Background(), 0, Op{Code: OpTouch})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Do with open breaker = %v, want ErrCircuitOpen", err)
	}
	if got := f.Metrics().CounterValue(MetricExecs); got != execsBefore {
		t.Fatalf("open breaker still executed the request (%d → %d)", execsBefore, got)
	}
	if f.BreakerTrips() != 1 {
		t.Fatalf("trips = %d, want 1", f.BreakerTrips())
	}
	if st := f.DeviceHealth(0).BreakerStr; st != "open" {
		t.Fatalf("health breaker = %q, want open", st)
	}
}

// Domain errors — wrong PIN, locked screen — are healthy responses and must
// not trip the breaker.
func TestBreakerIgnoresDomainErrors(t *testing.T) {
	f := New(Options{
		Devices: 1, Seed: 5, MaxAttempts: 1, Backoff: &instantBackoff,
		Breaker: BreakerConfig{Window: 3, MinSamples: 3, FailureRate: 1, OpenFor: time.Hour, HalfOpenProbes: 1},
		testExec: func(a *actor, op Op) (bool, Result, error) {
			return true, Result{}, fmt.Errorf("auth: %w", kernel.ErrBadPIN)
		},
	})
	defer f.Stop()
	for i := 0; i < 6; i++ {
		f.Do(context.Background(), 0, Op{Code: OpUnlock})
	}
	if st := testSlot(f, 0).brk.State(); st != BreakerClosed {
		t.Fatalf("breaker = %v after domain errors, want closed", st)
	}
}

// iRAM exhaustion degrades gracefully: disk crypto falls back to the
// DRAM-arena provider and pinned background pools to locked-way sessions,
// each downgrade counted — and the device keeps serving.
func TestGracefulDegradationUnderIRAMPressure(t *testing.T) {
	f := New(Options{Devices: 1, Seed: 5, SqueezeEvery: 1, Backoff: &instantBackoff})
	defer f.Stop()

	ctx := context.Background()
	// The degraded disk still works. (Any completed op also proves the boot
	// finished, so the downgrade counter is stable afterwards.)
	if _, err := f.Do(ctx, 0, Op{Code: OpDiskWrite, Arg: 5}); err != nil {
		t.Fatalf("disk write on degraded crypto: %v", err)
	}
	if n := f.Metrics().CounterValue(MetricCryptoDowngrades); n != 1 {
		t.Fatalf("crypto_downgrades = %d, want 1 (squeezed boot)", n)
	}
	if _, err := f.Do(ctx, 0, Op{Code: OpDiskRead, Arg: 5}); err != nil {
		t.Fatalf("disk read on degraded crypto: %v", err)
	}
	// Pinned background sessions degrade to locked-way sessions.
	if _, err := f.Do(ctx, 0, Op{Code: OpLock, Prio: PrioHigh}); err != nil {
		t.Fatalf("lock: %v", err)
	}
	res, err := f.Do(ctx, 0, Op{Code: OpBgPinned})
	if err != nil {
		t.Fatalf("bg-pinned on squeezed device: %v", err)
	}
	if res.Session != "bg-pinned-downgraded" {
		t.Fatalf("bg-pinned session = %q, want bg-pinned-downgraded", res.Session)
	}
	if n := f.Metrics().CounterValue(MetricBgDowngrades); n != 1 {
		t.Fatalf("bg_downgrades = %d, want 1", n)
	}
	if _, err := f.Do(ctx, 0, Op{Code: OpBgTouch, Arg: 3}); err != nil {
		t.Fatalf("bg touch on downgraded session: %v", err)
	}
}

// Without pressure, the preferred paths are used and nothing downgrades.
func TestNoDowngradeWithoutPressure(t *testing.T) {
	f := New(Options{Devices: 1, Seed: 5, Backoff: &instantBackoff})
	defer f.Stop()
	ctx := context.Background()
	if _, err := f.Do(ctx, 0, Op{Code: OpLock, Prio: PrioHigh}); err != nil {
		t.Fatalf("lock: %v", err)
	}
	res, err := f.Do(ctx, 0, Op{Code: OpBgPinned})
	if err != nil || res.Session != "bg-pinned" {
		t.Fatalf("bg-pinned = %q, %v; want bg-pinned, nil", res.Session, err)
	}
	reg := f.Metrics()
	if n := reg.CounterValue(MetricCryptoDowngrades) + reg.CounterValue(MetricBgDowngrades); n != 0 {
		t.Fatalf("downgrades without pressure: %d", n)
	}
}

// Five wrong PINs deep-lock the device; the actor recovers it with a
// planned reboot instead of leaving it bricked.
func TestDeepLockRecovery(t *testing.T) {
	f := New(Options{Devices: 1, Seed: 5, Backoff: &instantBackoff})
	defer f.Stop()
	ctx := context.Background()
	if _, err := f.Do(ctx, 0, Op{Code: OpLock, Prio: PrioHigh}); err != nil {
		t.Fatalf("lock: %v", err)
	}
	for i := 0; i < kernel.MaxPINAttempts-1; i++ {
		_, err := f.Do(ctx, 0, Op{Code: OpBadPIN, Prio: PrioHigh})
		if !errors.Is(err, kernel.ErrBadPIN) {
			t.Fatalf("bad PIN %d: err = %v, want ErrBadPIN (and no retry)", i+1, err)
		}
	}
	// The fifth wrong PIN deep-locks; the actor reboots, the retry lands on
	// the fresh (unlocked) device where a wrong PIN is a no-op.
	if _, err := f.Do(ctx, 0, Op{Code: OpBadPIN, Prio: PrioHigh}); err != nil {
		t.Fatalf("deep-locking PIN attempt: %v, want recovery + success", err)
	}
	if n := f.Metrics().CounterValue(MetricRecoveryReboots); n != 1 {
		t.Fatalf("recovery_reboots = %d, want 1", n)
	}
	if b := f.DeviceHealth(0).Boots; b != 2 {
		t.Fatalf("boots = %d, want 2", b)
	}
	// Recovered device serves normally.
	if _, err := f.Do(ctx, 0, Op{Code: OpTouch, Arg: 1}); err != nil {
		t.Fatalf("touch after recovery: %v", err)
	}
}

// The watchdog flags an actor stuck in one request, on a fake clock with no
// wall sleeps in the assertions.
func TestWatchdogFlagsStalledActor(t *testing.T) {
	clk := NewFakeClock()
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	f := New(Options{
		Devices: 1, Seed: 5, Clock: clk,
		StallTimeout: 2 * time.Second, WatchdogEvery: 250 * time.Millisecond,
		Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if op.Code == OpRebootDrill {
				started <- struct{}{}
				<-block
			}
			return true, Result{State: "ok"}, nil
		},
	})

	go f.Do(context.Background(), 0, Op{Code: OpRebootDrill})
	<-started

	// March fake time forward; the watchdog needs StallTimeout to elapse and
	// one of its scan timers to fire after that.
	waitFor(t, func() bool {
		clk.Advance(250 * time.Millisecond)
		return testSlot(f, 0).stalled.Load()
	})
	if n := f.Metrics().CounterValue(MetricStalls); n != 1 {
		t.Fatalf("stalls = %d, want 1", n)
	}
	if !f.DeviceHealth(0).Stalled {
		t.Fatal("health does not report the stall")
	}
	if f.Ready() {
		t.Fatal("fleet with its only device stalled reports ready")
	}

	// Unstick the actor; the watchdog clears the flag.
	close(block)
	waitFor(t, func() bool {
		clk.Advance(250 * time.Millisecond)
		return !testSlot(f, 0).stalled.Load()
	})
	f.Stop()
	if f.Ready() {
		t.Fatal("stopped fleet reports ready")
	}
}

// The per-device sequence ledger stays contiguous across restarts.
func TestLedgerContiguousAcrossRestart(t *testing.T) {
	var calls atomic.Int64
	f := New(Options{
		Devices: 1, Seed: 5, MaxAttempts: 1, RestartBudget: 10, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if op.Arg == 666 && calls.Add(1) == 3 {
				panic("mid-run crash")
			}
			return false, Result{}, nil
		},
	})
	ctx := context.Background()
	var recs []clientRec
	for i := 0; i < 6; i++ {
		res, err := f.Do(ctx, 0, Op{Code: OpTouch, Arg: 666})
		recs = append(recs, clientRec{opID: res.OpID, code: OpTouch, ok: err == nil, class: ErrorCode(err)})
	}
	f.Stop()

	ledger, err := f.Ledger(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ledger) != 6 {
		t.Fatalf("ledger has %d entries, want 6", len(ledger))
	}
	var last uint64
	succ := 0
	for _, e := range ledger {
		if e.Seq == 0 {
			continue
		}
		succ++
		if e.Seq != last+1 {
			t.Fatalf("seq gap: %d after %d", e.Seq, last)
		}
		last = e.Seq
	}
	if succ != 5 {
		t.Fatalf("%d successes, want 5 (one crash)", succ)
	}
	if probs := auditLedger(0, ledger, recs); len(probs) != 0 {
		t.Fatalf("auditLedger found problems in a clean ledger: %v", probs)
	}
}

// Stop drains queued requests with ErrShutdown instead of dropping them.
func TestStopDrainsWithShutdownError(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	f := New(Options{
		Devices: 1, Seed: 5, MailboxCap: 8, MaxAttempts: 1, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if op.Code == OpRebootDrill {
				started <- struct{}{}
				<-block
			}
			return true, Result{State: "ok"}, nil
		},
	})
	go f.Do(context.Background(), 0, Op{Code: OpRebootDrill})
	<-started
	errCh := make(chan error, 1)
	go func() {
		_, err := f.Do(context.Background(), 0, Op{Code: OpPing})
		errCh <- err
	}()
	waitFor(t, func() bool { return queueLen(f, 0) == 1 })
	close(block)
	f.Stop()
	if err := <-errCh; err != nil && !errors.Is(err, ErrShutdown) {
		t.Fatalf("queued request after Stop = %v, want nil or ErrShutdown", err)
	}
	// New requests after Stop fail fast.
	if _, err := f.Do(context.Background(), 0, Op{Code: OpPing}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Do after Stop = %v, want ErrShutdown", err)
	}
}

// Open with functional options resolves the same fleet New would build, and
// untouched devices cost nothing: a huge logical population opens instantly.
func TestOpenFunctionalOptions(t *testing.T) {
	f := Open(1_000_000,
		WithSeed(9),
		WithShards(4),
		WithResidentCap(8),
		WithMaxInflight(16),
		WithPIN("2468"),
	)
	defer f.Stop()
	if f.opt.Devices != 1_000_000 || f.opt.Seed != 9 || f.opt.PIN != "2468" {
		t.Fatalf("options not applied: %+v", f.opt)
	}
	if got := len(f.top.Load().shards); got != 4 {
		t.Fatalf("shards = %d, want 4", got)
	}
	total := 0
	for _, sh := range f.top.Load().shards {
		total += sh.cap
	}
	if total != 8 {
		t.Fatalf("summed shard caps = %d, want 8", total)
	}
	h, err := f.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Logical != 1_000_000 || h.Touched != 0 || h.Resident != 0 {
		t.Fatalf("fresh fleet health = %+v, want 10^6 logical, 0 touched", h)
	}
	if !h.Ready {
		t.Fatal("fresh fleet not ready")
	}
	// One op on a far-flung ID touches exactly one device.
	if _, err := f.Do(context.Background(), 999_999, Op{Code: OpPing}); err != nil {
		t.Fatalf("ping device 999999: %v", err)
	}
	h, _ = f.Health(context.Background())
	if h.Touched != 1 || h.Resident != 1 {
		t.Fatalf("after one op: touched=%d resident=%d, want 1,1", h.Touched, h.Resident)
	}
}

// waitFor polls cond (with a scheduling pause) until it holds or the test
// deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

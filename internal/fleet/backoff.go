package fleet

import (
	"math"
	"time"
)

// Backoff computes retry delays: exponential growth from Base by Factor,
// capped at Cap, with a deterministic jitter fraction. The jitter is a hash
// of (Seed, opID, attempt) — no wall clock and no shared RNG anywhere in
// the decision path, so a retry schedule is a pure function of its inputs
// and identical across runs with the same seed.
type Backoff struct {
	Base   time.Duration // first-retry delay (default 1ms)
	Cap    time.Duration // delay ceiling (default 100ms)
	Factor float64       // exponential growth (default 2)
	// Jitter is the fraction of each delay that is randomised, in [0, 1]:
	// delay = exp*(1-Jitter) + u*exp*Jitter with u ~ U[0,1) derived from
	// (Seed, opID, attempt). Zero disables jitter entirely.
	Jitter float64
	Seed   uint64
}

// DefaultBackoff returns the fleet's standard policy: 1ms..100ms, doubling,
// half-jittered, keyed to seed.
func DefaultBackoff(seed uint64) Backoff {
	return Backoff{Base: time.Millisecond, Cap: 100 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: seed}
}

// Delay returns the sleep before retry number attempt (attempt >= 1) of the
// operation identified by opID.
func (b Backoff) Delay(opID uint64, attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = time.Millisecond
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	if attempt < 1 {
		attempt = 1
	}
	exp := float64(base) * math.Pow(factor, float64(attempt-1))
	if exp > float64(cap) {
		exp = float64(cap)
	}
	if b.Jitter <= 0 {
		return time.Duration(exp)
	}
	j := b.Jitter
	if j > 1 {
		j = 1
	}
	u := unitFloat(b.Seed, opID, uint64(attempt))
	return time.Duration(exp*(1-j) + u*exp*j)
}

// splitmix64 is the SplitMix64 finaliser: a cheap, high-quality 64-bit
// mixer. Good enough to decorrelate jitter across ops and attempts.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat hashes the words into a float64 in [0, 1).
func unitFloat(words ...uint64) float64 {
	h := uint64(0x51f3c6b7a89e2d41)
	for _, w := range words {
		h = splitmix64(h ^ w)
	}
	return float64(h>>11) / float64(1<<53)
}

//go:build race

package fleet

// raceEnabled: see race_off_test.go.
const raceEnabled = true

package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"sentry/internal/kernel"
)

// newHTTPFixture serves f over httptest and returns a Client speaking to it.
func newHTTPFixture(t *testing.T, f *Fleet) *HTTPClient {
	t.Helper()
	srv := httptest.NewServer(NewHandler(f))
	t.Cleanup(srv.Close)
	c := NewHTTPClient(srv.URL, srv.Client())
	t.Cleanup(func() { c.Close() })
	return c
}

// The HTTP transport is behaviourally identical to the in-process Fleet:
// same results, same ledger, same health — through the same Client interface.
func TestHTTPRoundTrip(t *testing.T) {
	f := Open(4, WithSeed(7))
	defer f.Stop()
	c := newHTTPFixture(t, f)
	ctx := context.Background()

	res, err := c.Do(ctx, 2, Op{Code: OpTouch, Arg: 9})
	if err != nil {
		t.Fatalf("remote touch: %v", err)
	}
	if res.OpID == 0 || res.Seq != 1 || res.Attempts != 1 {
		t.Fatalf("remote result = %+v, want op ID, seq 1, 1 attempt", res)
	}
	if _, err := c.Do(ctx, 2, Op{Code: OpDiskWrite, Arg: 3}); err != nil {
		t.Fatalf("remote disk write: %v", err)
	}

	// A batch executes in order on the same device.
	outs, err := c.DoBatch(ctx, 2, []Op{
		{Code: OpDiskRead, Arg: 3},
		{Code: OpLock, Prio: PrioHigh},
		{Code: OpPing},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(outs) != 3 {
		t.Fatalf("batch returned %d results", len(outs))
	}
	for i, o := range outs {
		if o.Code != CodeOK {
			t.Fatalf("batch op %d code %q: %s", i, o.Code, o.Error)
		}
	}
	if outs[2].State != "screen-locked" {
		t.Fatalf("ping after lock reports state %q, want screen-locked", outs[2].State)
	}

	// The remote ledger is the in-process ledger, byte for byte.
	remote, err := c.Ledger(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	local, err := f.Ledger(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remote, local) {
		t.Fatalf("ledger mismatch:\nremote: %+v\nlocal:  %+v", remote, local)
	}

	// Health agrees on both transports.
	rh, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	lh, _ := f.Health(ctx)
	if rh != lh {
		t.Fatalf("health mismatch: remote %+v local %+v", rh, lh)
	}
	dh, err := c.DeviceHealth(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dh.ID != 2 || !dh.Touched || dh.Boots != 1 {
		t.Fatalf("remote device health = %+v", dh)
	}
}

// Typed errors survive the wire: errors.Is works identically against the
// HTTP client, for request-level statuses and per-op outcomes alike.
func TestHTTPTypedErrors(t *testing.T) {
	f := Open(2, WithSeed(7))
	defer f.Stop()
	c := newHTTPFixture(t, f)
	ctx := context.Background()

	// Unknown device → 404 → ErrUnknownDevice.
	if _, err := c.Do(ctx, 99, Op{Code: OpPing}); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("remote unknown device = %v, want ErrUnknownDevice", err)
	}
	// Domain error (wrong PIN on a locked device) rides per-op and maps back
	// to the kernel sentinel.
	if _, err := c.Do(ctx, 0, Op{Code: OpLock, Prio: PrioHigh}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(ctx, 0, Op{Code: OpBadPIN, Prio: PrioHigh}); !errors.Is(err, kernel.ErrBadPIN) {
		t.Fatalf("remote bad PIN = %v, want kernel.ErrBadPIN", err)
	}
}

// Overload aborts the batch with 429 and comes back as a retryable typed
// ErrOverload.
func TestHTTPOverload(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	f := New(Options{
		Devices: 2, Seed: 7, MaxInflight: 1, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if op.Code == OpRebootDrill {
				started <- struct{}{}
				<-block
			}
			return true, Result{State: "ok"}, nil
		},
	})
	defer f.Stop()
	c := newHTTPFixture(t, f)

	go f.Do(context.Background(), 0, Op{Code: OpRebootDrill})
	<-started
	defer close(block)

	_, err := c.Do(context.Background(), 1, Op{Code: OpPing})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("remote over the inflight limit = %v, want ErrOverload", err)
	}
	if !Transient(err) {
		t.Fatal("remote ErrOverload lost its transience")
	}
}

// Malformed requests are rejected with 400s, not executed.
func TestHTTPValidation(t *testing.T) {
	f := Open(1, WithSeed(7))
	defer f.Stop()
	srv := httptest.NewServer(NewHandler(f))
	defer srv.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var we WireError
		json.NewDecoder(resp.Body).Decode(&we)
		return resp.StatusCode
	}
	if s := post("/v1/devices/0/ops", `{"ops":[]}`); s != http.StatusBadRequest {
		t.Errorf("empty batch → %d, want 400", s)
	}
	if s := post("/v1/devices/0/ops", `not json`); s != http.StatusBadRequest {
		t.Errorf("bad json → %d, want 400", s)
	}
	if s := post("/v1/devices/0/ops", `{"ops":[{"code":"warp-core-breach"}]}`); s != http.StatusBadRequest {
		t.Errorf("unknown op → %d, want 400", s)
	}
	if s := post("/v1/devices/not-a-number/ops", `{"ops":[{"code":"ping"}]}`); s != http.StatusBadRequest {
		t.Errorf("bad device id → %d, want 400", s)
	}
	// Nothing above reached a device.
	if n := f.Metrics().CounterValue(MetricExecs); n != 0 {
		t.Fatalf("validation failures executed %d ops", n)
	}
}

// Every OpCode name round-trips through OpCodeByName — the wire alphabet
// covers the whole op set.
func TestOpCodeNamesRoundTrip(t *testing.T) {
	for code := OpPing; code <= OpRebootDrill; code++ {
		back, ok := OpCodeByName(code.String())
		if !ok || back != code {
			t.Errorf("op %v does not round-trip its name %q", code, code.String())
		}
	}
	if _, ok := OpCodeByName("nonsense"); ok {
		t.Error("OpCodeByName accepted nonsense")
	}
}

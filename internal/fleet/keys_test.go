package fleet

import (
	"bytes"
	"context"
	"testing"

	"sentry/internal/core"
)

// Per-device volume keys. Every device forks the same booted base image, so
// without intervention the whole fleet would share one volatile root key —
// recovering it from any single parked delta would unseal every device.
// bootDevice therefore stamps a derived per-device key over the fork before
// anything seals; these tests pin the derivation and the fleet wiring.

// TestDeviceVolKeyDistinct: the derivation never hands two ids the same key
// (checked over a population much larger than any test fleet) and always
// emits a full-size key.
func TestDeviceVolKeyDistinct(t *testing.T) {
	base := []byte("fleet-base-boot!")
	seen := make(map[string]DeviceID, 4096)
	for id := DeviceID(0); id < 4096; id++ {
		k := deviceVolKey(base, id)
		if len(k) != core.VolatileKeySize {
			t.Fatalf("derived key for %d is %d bytes", id, len(k))
		}
		if prev, dup := seen[string(k)]; dup {
			t.Fatalf("ids %d and %d derived the same volume key", prev, id)
		}
		seen[string(k)] = id
	}
	// And the derivation depends on the base key, not just the id.
	other := deviceVolKey([]byte("different-boot!!"), 0)
	if bytes.Equal(other, deviceVolKey(base, 0)) {
		t.Fatal("derived key ignores the base boot key")
	}
}

// parkedVolKey parks nothing itself: it forks device id's parked snapshot
// (the safe read path for parked state) and returns the volume key the
// device booted with, plus the key actually resident in its iRAM.
func parkedVolKey(t *testing.T, f *Fleet, id DeviceID) (captured, inIRAM []byte) {
	t.Helper()
	sh, sl := f.peek(id)
	if sl == nil {
		t.Fatalf("device %d has no slot", id)
	}
	sh.mu.Lock()
	p := sl.parked
	sh.mu.Unlock()
	if p == nil {
		t.Fatalf("device %d is not parked", id)
	}
	d := p.Fork()
	return d.volKey0, d.dev.Sentry.Keys().VolatileKey()
}

// TestPerDeviceVolumeKeysDiffer boots two devices off the shared base image
// and checks that their volatile keys differ, match what is resident in
// each device's iRAM (so the confidentiality scanner hunts for the right
// bytes), and re-derive identically in a second fleet with the same seed
// (the reboot path runs the same derivation).
func TestPerDeviceVolumeKeysDiffer(t *testing.T) {
	open := func() *Fleet {
		return Open(64, WithSeed(5), WithShards(1), WithResidentCap(1))
	}
	f := open()
	defer f.Stop()
	ctx := context.Background()

	if _, err := f.Do(ctx, 3, Op{Code: OpTouch}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Do(ctx, 9, Op{Code: OpTouch}); err != nil {
		t.Fatal(err)
	}
	waitParks(t, f, 1)
	key3, iram3 := parkedVolKey(t, f, 3)

	// Cycle device 3 back in so 9 parks in turn.
	if _, err := f.Do(ctx, 3, Op{Code: OpTouch}); err != nil {
		t.Fatal(err)
	}
	waitParks(t, f, 2)
	key9, iram9 := parkedVolKey(t, f, 9)

	if !bytes.Equal(key3, iram3) || !bytes.Equal(key9, iram9) {
		t.Fatal("captured volume key diverged from the key resident in iRAM")
	}
	if bytes.Equal(key3, key9) {
		t.Fatal("two devices share a volume key")
	}

	// Same fleet seed, fresh fleet: device 3 derives the same key again —
	// which is exactly what its own reboot path does.
	f2 := open()
	defer f2.Stop()
	if _, err := f2.Do(ctx, 3, Op{Code: OpTouch}); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Do(ctx, 9, Op{Code: OpTouch}); err != nil {
		t.Fatal(err)
	}
	waitParks(t, f2, 1)
	again, _ := parkedVolKey(t, f2, 3)
	if !bytes.Equal(key3, again) {
		t.Fatal("volume key derivation is not deterministic across boots")
	}
}

//go:build !race

package fleet

// raceEnabled reports whether the race detector is compiled in; the scale
// test skips under it (the detector's memory model bookkeeping inflates a
// 10^5-device run far past any useful signal).
const raceEnabled = false

package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"sentry/internal/faults"
)

// deviceTrace is everything a device's history exposes: what its client
// observed, its ledger, its restart accounting, and the confidentiality
// sweep of its final memory image. Two runs are equivalent iff every
// device's trace is byte-identical.
type deviceTrace struct {
	Recs        []clientRec
	Ledger      string
	Boots       int64
	Restarts    int64
	Quarantined bool
}

// runTrace opens a fleet, drives the deterministic soak workload against it,
// and returns the per-device traces plus the park/hydrate/restart counters.
func runTrace(t *testing.T, nDev, ops int, seed int64, opts ...Option) ([]deviceTrace, map[string]uint64) {
	t.Helper()
	prof, ok := faults.ByName("benign")
	if !ok {
		t.Fatal("benign profile missing")
	}
	f := Open(nDev, append([]Option{WithSeed(seed), WithFaults(prof)}, opts...)...)
	recs := driveSoak(f, SoakConfig{Devices: nDev, OpsPerDevice: ops, Seed: seed}.withDefaults())
	f.Stop()
	if v := f.SweepConfidentiality(); len(v) != 0 {
		t.Fatalf("confidentiality violations: %v", v)
	}

	traces := make([]deviceTrace, nDev)
	for id := 0; id < nDev; id++ {
		ledger, err := f.Ledger(context.Background(), DeviceID(id))
		if err != nil {
			t.Fatalf("ledger %d: %v", id, err)
		}
		lj, _ := json.Marshal(ledger)
		h := f.DeviceHealth(DeviceID(id))
		traces[id] = deviceTrace{
			Recs:   recs[id],
			Ledger: string(lj),
			Boots:  h.Boots, Restarts: h.Restarts, Quarantined: h.Quarantined,
		}
	}
	reg := f.Metrics()
	counters := map[string]uint64{}
	for _, m := range []string{MetricParks, MetricHydrations, MetricRestarts, MetricRetries, MetricExecs} {
		counters[m] = reg.CounterValue(m)
	}
	return traces, counters
}

// The tentpole property: a device evicted to a snapshot and re-hydrated by
// fork mid-schedule is indistinguishable from one that stayed resident. Same
// client-observed results, byte-identical ledger, same boot/restart counts,
// clean confidentiality sweep — including across fault-injected power-cut
// restarts (the benign profile fires them throughout the schedule).
func TestEvictionEquivalence(t *testing.T) {
	const nDev, ops = 6, 60
	const seed = 11

	resident, cFree := runTrace(t, nDev, ops, seed, WithShards(2))
	evicted, cCap := runTrace(t, nDev, ops, seed, WithShards(2), WithResidentCap(2))

	// The capped run must actually have parked and re-hydrated devices —
	// otherwise this test proves nothing.
	if cCap[MetricParks] == 0 || cCap[MetricHydrations] == 0 {
		t.Fatalf("capped run exercised no eviction: parks=%d hydrations=%d",
			cCap[MetricParks], cCap[MetricHydrations])
	}
	if cFree[MetricParks] != 0 {
		t.Fatalf("unbounded run parked %d devices", cFree[MetricParks])
	}
	// And the power-cut-restart clause must be live in both runs.
	if cFree[MetricRestarts] == 0 || cCap[MetricRestarts] == 0 {
		t.Fatalf("no injected restarts (free=%d capped=%d): pick a hotter seed",
			cFree[MetricRestarts], cCap[MetricRestarts])
	}

	for id := 0; id < nDev; id++ {
		r, e := resident[id], evicted[id]
		if len(r.Recs) != len(e.Recs) {
			t.Fatalf("device %d: %d vs %d client records", id, len(r.Recs), len(e.Recs))
		}
		for i := range r.Recs {
			if r.Recs[i] != e.Recs[i] {
				t.Errorf("device %d op %d: resident %+v != evicted %+v", id, i, r.Recs[i], e.Recs[i])
			}
		}
		if r.Ledger != e.Ledger {
			t.Errorf("device %d: ledger diverged\nresident: %s\nevicted:  %s", id, r.Ledger, e.Ledger)
		}
		if r.Boots != e.Boots || r.Restarts != e.Restarts || r.Quarantined != e.Quarantined {
			t.Errorf("device %d: accounting diverged: resident {boots %d restarts %d q %v} evicted {boots %d restarts %d q %v}",
				id, r.Boots, r.Restarts, r.Quarantined, e.Boots, e.Restarts, e.Quarantined)
		}
	}
	// Retry decisions and executed attempts are part of the equivalence too.
	if cFree[MetricRetries] != cCap[MetricRetries] || cFree[MetricExecs] != cCap[MetricExecs] {
		t.Errorf("retry/exec counters diverged: free retries=%d execs=%d, capped retries=%d execs=%d",
			cFree[MetricRetries], cFree[MetricExecs], cCap[MetricRetries], cCap[MetricExecs])
	}
	// Hydration is a fork, never a boot: boots already compared per device.
}

// Parked state survives eviction: data written before the park is readable
// after re-hydration, and the hydration is a fork (no boot).
func TestParkedDeviceStateSurvives(t *testing.T) {
	f := Open(2, WithSeed(3), WithShards(1), WithResidentCap(1))
	defer f.Stop()
	ctx := context.Background()

	// Device 0 writes a disk sector, then device 1's boot evicts it.
	if _, err := f.Do(ctx, 0, Op{Code: OpDiskWrite, Arg: 7}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := f.Do(ctx, 1, Op{Code: OpPing}); err != nil {
		t.Fatalf("ping dev1: %v", err)
	}
	waitFor(t, func() bool { return f.Metrics().CounterValue(MetricParks) >= 1 })

	// Reading the sector back re-hydrates device 0 and verifies the pattern
	// end-to-end through the (re-fitted) encrypted disk.
	if _, err := f.Do(ctx, 0, Op{Code: OpDiskRead, Arg: 7}); err != nil {
		t.Fatalf("read after re-hydration: %v", err)
	}
	if n := f.Metrics().CounterValue(MetricHydrations); n < 1 {
		t.Fatalf("hydrations = %d, want >= 1", n)
	}
	if b := f.DeviceHealth(0).Boots; b != 1 {
		t.Fatalf("device 0 boots = %d, want 1 (hydration must not re-boot)", b)
	}
}

// Residency is lazy and bounded: a large logical population costs nothing
// until touched, and the resident gauge never exceeds the cap.
func TestHydrationLazyAndBounded(t *testing.T) {
	const cap = 4
	f := Open(10_000, WithSeed(5), WithShards(2), WithResidentCap(cap))
	defer f.Stop()
	ctx := context.Background()

	for i := 0; i < 64; i++ {
		id := DeviceID(i * 151) // stride across the hash space
		if _, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: uint64(i)}); err != nil {
			t.Fatalf("touch %d: %v", id, err)
		}
		h, err := f.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Resident > cap {
			t.Fatalf("resident %d exceeds cap %d after %d touches", h.Resident, cap, i+1)
		}
	}
	h, _ := f.Health(ctx)
	if h.Touched != 64 {
		t.Fatalf("touched = %d, want 64", h.Touched)
	}
	if h.Logical != 10_000 {
		t.Fatalf("logical = %d, want 10000", h.Logical)
	}
}

// A quarantined device stays quarantined across eviction: its slot rejects
// without re-instantiating the corpse.
func TestQuarantineSurvivesEviction(t *testing.T) {
	f := New(Options{
		Devices: 2, Seed: 5, Shards: 1, ResidentCap: 1,
		MaxAttempts: 1, RestartBudget: 1, Backoff: &instantBackoff,
		testExec: func(a *actor, op Op) (bool, Result, error) {
			if op.Arg == 666 {
				panic("boom")
			}
			return true, Result{State: "ok"}, nil
		},
	})
	defer f.Stop()
	ctx := context.Background()

	for i := 0; i < 2; i++ { // budget 1: restart, then quarantine
		if _, err := f.Do(ctx, 0, Op{Code: OpTouch, Arg: 666}); err == nil {
			t.Fatal("crash op succeeded")
		}
	}
	waitFor(t, func() bool { return f.DeviceHealth(0).Quarantined })
	// Evict slot 0's seat by touching device 1, then poke device 0 again.
	if _, err := f.Do(ctx, 1, Op{Code: OpPing}); err != nil {
		t.Fatalf("ping dev1: %v", err)
	}
	if _, err := f.Do(ctx, 0, Op{Code: OpPing}); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("post-eviction ping = %v, want ErrQuarantined", err)
	}
	hyd := f.Metrics().CounterValue(MetricHydrations)
	if hyd != 0 {
		t.Fatalf("quarantined device was re-hydrated %d times", hyd)
	}
}

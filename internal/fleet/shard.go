package fleet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"sentry/internal/snapshot"
)

// slotState is the residency lifecycle of one logical device.
type slotState uint8

const (
	// slotParked: no actor. The device lives in sl.parked (nil if it has
	// never booted); its next op hydrates it by fork.
	slotParked slotState = iota
	// slotResident: a live actor owns the device world and serves ops.
	slotResident
	// slotParking: the actor has been asked to park and is draining its
	// mailbox; sl.wait closes when the hand-off to sl.parked completes.
	slotParking
)

// slot is the persistent identity of one logical device — everything that
// must survive eviction. The actor (and the device world it owns) comes and
// goes; the ledger, sequence counter, op-ID allocator, restart accounting,
// and circuit breaker stay here, which is what makes a park/hydrate cycle
// invisible in the soak report.
//
// Lifecycle fields (state, act, wait, inflight, LRU links) are guarded by
// the owning shard's mutex. seq and parked are owned by the actor goroutine
// while resident; ownership hands off through the shard mutex at
// startActor/parkDone, so no separate lock is needed.
type slot struct {
	id DeviceID

	state    slotState
	act      *actor
	wait     chan struct{} // non-nil while parking
	inflight int           // attempts pinning this slot resident
	lruPrev  *slot
	lruNext  *slot

	parked *snapshot.Snapshot[*device]
	// parkedBytes is the estimated resting cost of sl.parked as of the
	// last park; the delta against it keeps the fleet's parked-bytes gauge
	// current. Owned by the parking actor (hand-off through the shard
	// mutex), like parked itself.
	parkedBytes int64

	nextOp      atomic.Uint64
	quarantined atomic.Bool
	stalled     atomic.Bool
	boots       atomic.Int64 // real boots: initial, restart, drill, recovery
	restarts    atomic.Int64 // fault-caused restarts (charged to the budget)
	brk         *Breaker

	seq uint64 // ledger sequence, contiguous per device across reboots

	mu         sync.Mutex // guards the slices for cross-goroutine readers
	ledger     []LedgerEntry
	causes     []string
	violations []string
}

// shard owns a partition of the device ID space: its slot table, the LRU of
// resident slots, and the residency cap. All shard state is behind one
// mutex; the critical sections are pointer juggling only (boots, forks, and
// op execution all happen outside it, on actor goroutines).
type shard struct {
	f   *Fleet
	idx int
	cap int // max resident actors; 0 = unbounded

	mu       sync.Mutex
	slots    map[DeviceID]*slot
	resident int
	lruHead  *slot // most recently used resident slot
	lruTail  *slot // least recently used resident slot
	waiters  int
	notify   chan struct{} // closed+replaced to wake residency waiters
}

func newShard(f *Fleet, idx, cap int) *shard {
	return &shard{
		f: f, idx: idx, cap: cap,
		slots:  make(map[DeviceID]*slot),
		notify: make(chan struct{}),
	}
}

// peekSlot returns the slot for id without instantiating it.
func (sh *shard) peekSlot(id DeviceID) *slot {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.slots[id]
}

// acquire pins sl resident and returns its actor; the caller must release
// after the attempt completes. It hydrates a parked slot (evicting the
// least-recently-used idle resident when the shard is at its cap), waits
// out an in-progress park, and blocks — interruptibly — when every resident
// is mid-request and nothing can be evicted yet. Residency pressure never
// fails a request by itself; only the caller's context can, so a capped
// fleet serializes instead of erroring (admission tokens at the front door
// are the load-shedding layer).
func (sh *shard) acquire(ctx context.Context, sl *slot) (*actor, error) {
	sh.mu.Lock()
	for {
		if sh.f.stopped.Load() {
			sh.mu.Unlock()
			return nil, fmt.Errorf("fleet: device %d: %w", sl.id, ErrShutdown)
		}
		if sh.slots[sl.id] != sl {
			// A live reshard re-homed the slot while we waited; the caller
			// re-resolves and retries against the new owner.
			sh.mu.Unlock()
			return nil, errSlotMoved
		}
		switch sl.state {
		case slotResident:
			sl.inflight++
			sh.lruMoveFront(sl)
			a := sl.act
			sh.mu.Unlock()
			return a, nil

		case slotParking:
			w := sl.wait
			sh.mu.Unlock()
			select {
			case <-w:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			sh.mu.Lock()

		case slotParked:
			// A quarantined device is never re-instantiated: its terminal
			// state (and corpse, if any) is already recorded on the slot.
			if sl.quarantined.Load() {
				sh.mu.Unlock()
				return nil, fmt.Errorf("fleet: device %d: %w", sl.id, ErrQuarantined)
			}
			if sh.cap > 0 && sh.resident >= sh.cap {
				victim := sh.evictable()
				if victim == nil {
					// Every resident is mid-request; wait for one to go
					// idle (release broadcasts) instead of failing.
					sh.waiters++
					w := sh.notify
					sh.mu.Unlock()
					select {
					case <-w:
						sh.mu.Lock()
						sh.waiters--
					case <-ctx.Done():
						sh.mu.Lock()
						sh.waiters--
						sh.mu.Unlock()
						return nil, ctx.Err()
					}
					continue
				}
				sh.startPark(victim)
				continue
			}
			sh.startActor(sl)
		}
	}
}

// release unpins one attempt; the last unpin wakes residency waiters, for
// whom the slot just became evictable.
func (sh *shard) release(sl *slot) {
	sh.mu.Lock()
	sl.inflight--
	if sl.inflight == 0 && sh.waiters > 0 {
		close(sh.notify)
		sh.notify = make(chan struct{})
	}
	sh.mu.Unlock()
}

// wakeWaiters unblocks every goroutine parked in acquire (used by Stop).
func (sh *shard) wakeWaiters() {
	sh.mu.Lock()
	if sh.waiters > 0 {
		close(sh.notify)
		sh.notify = make(chan struct{})
	}
	sh.mu.Unlock()
}

// startActor transitions a parked slot to resident. Caller holds sh.mu.
func (sh *shard) startActor(sl *slot) {
	sl.state = slotResident
	sl.act = newActor(sh.f, sh, sl)
	sh.lruInsertFront(sl)
	sh.resident++
	sh.f.gResident.Add(1)
	sh.f.actorWG.Add(1)
	go sl.act.run()
}

// startPark asks a resident slot's actor to park. The seat frees
// immediately (the drain happens on the actor goroutine); acquirers of this
// slot wait on sl.wait until the hand-off completes. Caller holds sh.mu.
func (sh *shard) startPark(sl *slot) {
	sl.state = slotParking
	sl.wait = make(chan struct{})
	sh.lruRemove(sl)
	sh.resident--
	sh.f.gResident.Add(-1)
	sl.act.parkReq.Store(true)
	sl.act.wake()
}

// parkDone completes the park hand-off: called by the actor after it has
// adopted its world into sl.parked (or discarded a dead one) and is about
// to exit.
func (sh *shard) parkDone(sl *slot) {
	sh.mu.Lock()
	sl.state = slotParked
	sl.act = nil
	sl.stalled.Store(false)
	close(sl.wait)
	sl.wait = nil
	sh.mu.Unlock()
	sh.f.ctrParks.Inc()
}

// evictable returns the least-recently-used resident slot with no attempt
// in flight, nil if every resident is pinned. Caller holds sh.mu.
func (sh *shard) evictable() *slot {
	for sl := sh.lruTail; sl != nil; sl = sl.lruPrev {
		if sl.inflight == 0 {
			return sl
		}
	}
	return nil
}

// lruInsertFront links sl as most recently used. Caller holds sh.mu.
func (sh *shard) lruInsertFront(sl *slot) {
	sl.lruPrev = nil
	sl.lruNext = sh.lruHead
	if sh.lruHead != nil {
		sh.lruHead.lruPrev = sl
	}
	sh.lruHead = sl
	if sh.lruTail == nil {
		sh.lruTail = sl
	}
}

// lruRemove unlinks sl. Caller holds sh.mu.
func (sh *shard) lruRemove(sl *slot) {
	if sl.lruPrev != nil {
		sl.lruPrev.lruNext = sl.lruNext
	} else {
		sh.lruHead = sl.lruNext
	}
	if sl.lruNext != nil {
		sl.lruNext.lruPrev = sl.lruPrev
	} else {
		sh.lruTail = sl.lruPrev
	}
	sl.lruPrev, sl.lruNext = nil, nil
}

// lruMoveFront marks sl most recently used. Caller holds sh.mu.
func (sh *shard) lruMoveFront(sl *slot) {
	if sh.lruHead == sl {
		return
	}
	sh.lruRemove(sl)
	sh.lruInsertFront(sl)
}

package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// Live resharding. The contract under test: growing the shard count moves
// only the ceded keyspace (ring stability), preserves every device's
// identity exactly (same slot object, ledger, seq, boot count), and a
// reshard mid-soak is byte-invisible in the report.

// TestReshardMovesOnlyCededKeyspace grows 4→8 shards over a resident
// population and checks the movement set: movers land only on new shards
// (force-parked on the way), non-movers keep their shard, slot, and
// residency untouched.
func TestReshardMovesOnlyCededKeyspace(t *testing.T) {
	f := Open(100_000, WithSeed(3), WithShards(4))
	defer f.Stop()
	ctx := context.Background()

	const touched = 128
	ids := make([]DeviceID, touched)
	for i := range ids {
		ids[i] = DeviceID(i * 257)
		if _, err := f.Do(ctx, ids[i], Op{Code: OpTouch, Arg: uint64(i)}); err != nil {
			t.Fatalf("touch %d: %v", ids[i], err)
		}
	}
	type where struct {
		sh *shard
		sl *slot
	}
	before := make(map[DeviceID]where, touched)
	for _, id := range ids {
		sh, sl := f.peek(id)
		if sl == nil {
			t.Fatalf("device %d has no slot", id)
		}
		before[id] = where{sh, sl}
	}

	if err := f.Reshard(8); err != nil {
		t.Fatalf("reshard: %v", err)
	}
	h, _ := f.Health(ctx)
	if h.Shards != 8 {
		t.Fatalf("shards = %d after reshard, want 8", h.Shards)
	}

	movers := 0
	for _, id := range ids {
		sh, sl := f.peek(id)
		if sl != before[id].sl {
			t.Fatalf("device %d: slot identity changed across reshard", id)
		}
		if sh == before[id].sh {
			// Non-mover: must not have been disturbed (no park).
			sh.mu.Lock()
			state := sl.state
			sh.mu.Unlock()
			if state != slotResident {
				t.Fatalf("non-moving device %d was parked by the reshard", id)
			}
			continue
		}
		movers++
		if sh.idx < 4 {
			t.Fatalf("device %d moved to pre-existing shard %d (ring instability)", id, sh.idx)
		}
		sh.mu.Lock()
		state := sl.state
		sh.mu.Unlock()
		if state != slotParked {
			t.Fatalf("moving device %d not parked after migration", id)
		}
	}
	if movers == 0 {
		t.Fatal("doubling the shard count moved no devices")
	}
	t.Logf("reshard 4→8 moved %d/%d touched devices", movers, touched)

	// Movers hydrate on their new shard with identity intact: the ledgered
	// sequence continues at 2 and the boot count stays 1.
	hyd0 := f.Metrics().CounterValue(MetricHydrations)
	for _, id := range ids {
		res, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: 1})
		if err != nil {
			t.Fatalf("post-reshard touch %d: %v", id, err)
		}
		if res.Seq != 2 {
			t.Fatalf("device %d seq = %d after migration, want 2", id, res.Seq)
		}
		if b := f.DeviceHealth(id).Boots; b != 1 {
			t.Fatalf("device %d boots = %d after migration, want 1", id, b)
		}
	}
	if n := f.Metrics().CounterValue(MetricHydrations); n-hyd0 < uint64(movers) {
		t.Fatalf("hydrations after reshard = %d, want >= %d (every mover re-hydrates)", n-hyd0, movers)
	}
}

// TestReshardMidSoakByteIdentical is the equivalence claim: a chaos soak
// with two reshards racing it produces a report — every ledger digest,
// sequence number, and failure class — byte-identical to the same soak
// without them.
func TestReshardMidSoakByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("soak comparison skipped in -short")
	}
	cfg := SoakConfig{
		Devices:      24,
		OpsPerDevice: 40,
		Seed:         5,
		Faults:       "benign",
	}
	open := func() *Fleet {
		return Open(cfg.Devices,
			WithSeed(cfg.Seed),
			WithSqueezeEvery(4),
			WithShards(4),
			WithResidentCap(64),
		)
	}

	base := open()
	want, err := SoakOn(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base.Stop()
	if v := base.SweepConfidentiality(); len(v) != 0 {
		t.Fatalf("baseline sweep violations: %v", v)
	}

	f := open()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Fire the reshards mid-soak: wait for real traffic, grow, wait,
		// grow again.
		for _, n := range []int{9, 16} {
			for f.Metrics().CounterValue(MetricExecs) < uint64(n*20) {
				time.Sleep(200 * time.Microsecond)
			}
			if err := f.Reshard(n); err != nil {
				t.Errorf("reshard to %d: %v", n, err)
				return
			}
		}
	}()
	got, err := SoakOn(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	h, _ := f.Health(context.Background())
	if h.Shards != 16 {
		t.Fatalf("shards = %d after reshards, want 16", h.Shards)
	}
	f.Stop()
	if v := f.SweepConfidentiality(); len(v) != 0 {
		t.Fatalf("resharded sweep violations: %v", v)
	}

	gj, _ := json.MarshalIndent(got, "", " ")
	wj, _ := json.MarshalIndent(want, "", " ")
	if string(gj) != string(wj) {
		t.Fatalf("reshard mid-soak changed the report:\nwith reshard: %s\nwithout: %s", gj, wj)
	}
}

// TestReshardErrors: the guarded edges — shrink, no-op, cap overflow,
// stopped fleet, snapshotless fleet.
func TestReshardErrors(t *testing.T) {
	f := Open(16, WithSeed(1), WithShards(4))
	if err := f.Reshard(4); err == nil {
		t.Fatal("reshard to current count succeeded")
	}
	if err := f.Reshard(2); err == nil {
		t.Fatal("shrink succeeded")
	}
	f.Stop()
	if err := f.Reshard(8); !errors.Is(err, ErrShutdown) {
		t.Fatalf("reshard after stop: %v, want ErrShutdown", err)
	}

	capped := Open(64, WithSeed(1), WithShards(4), WithResidentCap(8))
	defer capped.Stop()
	if err := capped.Reshard(16); err == nil {
		t.Fatal("reshard beyond the resident cap succeeded")
	}
	if err := capped.Reshard(8); err != nil {
		t.Fatalf("reshard to the cap: %v", err)
	}

	cold := Open(16, WithSeed(1), WithShards(4), WithNoSnapshots())
	defer cold.Stop()
	if err := cold.Reshard(8); err == nil {
		t.Fatal("reshard of a snapshotless fleet succeeded")
	}
}

// TestReshardUnderConcurrentTraffic hammers a small device set from many
// goroutines while the fleet grows 2→12 shards in steps; every op must
// succeed and every ledger stay contiguous. (Run under -race, this is the
// memory-safety proof for the topology swap and slot migration.)
func TestReshardUnderConcurrentTraffic(t *testing.T) {
	f := Open(256, WithSeed(9), WithShards(2), WithResidentCap(16))
	defer f.Stop()
	ctx := context.Background()

	const devices, opsPer = 32, 20
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	for id := 0; id < devices; id++ {
		wg.Add(1)
		go func(id DeviceID) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if _, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: uint64(i)}); err != nil {
					errs <- err
					return
				}
			}
		}(DeviceID(id))
	}
	for _, n := range []int{5, 8, 12} {
		if err := f.Reshard(n); err != nil {
			t.Fatalf("reshard to %d: %v", n, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("op failed during reshard: %v", err)
	}
	for id := 0; id < devices; id++ {
		ledger, err := f.Ledger(ctx, DeviceID(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(ledger) != opsPer {
			t.Fatalf("device %d ledger has %d entries, want %d", id, len(ledger), opsPer)
		}
		for i, e := range ledger {
			if e.Seq != uint64(i+1) {
				t.Fatalf("device %d ledger seq %d at position %d", id, e.Seq, i)
			}
		}
	}
}

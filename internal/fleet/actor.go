package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"sentry"
	"sentry/internal/blockdev"
	"sentry/internal/check"
	"sentry/internal/core"
	"sentry/internal/dmcrypt"
	"sentry/internal/faults"
	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/onsoc"
	"sentry/internal/remanence"
	"sentry/internal/snapshot"
	"sentry/internal/soc"
)

// dramArenaBase is where a degraded (generic) crypto provider places its
// DRAM arena: inside the kernel-reserved low 64 MB, clear of user frames.
const dramArenaBase = soc.DRAMBase + 0x100000

// OpCode enumerates the operations a hosted device serves.
type OpCode uint8

// Operation alphabet. Reboot drills are planned reboots (resilience
// exercise); they bump the boot count but are never charged against the
// fault-restart budget.
const (
	OpPing OpCode = iota
	OpLock
	OpUnlock
	OpBadPIN
	OpTouch
	OpBgBegin
	OpBgTouch
	OpBgPinned
	OpDiskWrite
	OpDiskRead
	OpRebootDrill
	numOps
)

var opNames = [numOps]string{
	"ping", "lock", "unlock", "bad-pin", "touch", "bg-begin", "bg-touch",
	"bg-pinned", "disk-write", "disk-read", "reboot-drill",
}

func (c OpCode) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("OpCode(%d)", int(c))
}

// OpCodeByName maps an op name (the String form) back to its code; ok is
// false for unknown names. The HTTP boundary uses it to parse requests.
func OpCodeByName(name string) (OpCode, bool) {
	for i, n := range opNames {
		if n == name {
			return OpCode(i), true
		}
	}
	return 0, false
}

// Op is one request against a hosted device.
type Op struct {
	Code OpCode
	Arg  uint64
	// Prio is the mailbox priority (PrioHigh/PrioNormal/PrioLow);
	// out-of-range values clamp to PrioNormal.
	Prio int
}

// LedgerEntry records one executed (non-ping) request on a device. Seq is
// assigned only on success and is contiguous per device across reboots —
// the sequence ledger the soak harness checks for lost or duplicated ops.
type LedgerEntry struct {
	OpID uint64 `json:"op_id"`
	Code OpCode `json:"code"`
	Seq  uint64 `json:"seq"`           // 0 on failure
	Err  string `json:"err,omitempty"` // "" on success
}

const (
	fgPages    = 8
	bgPages    = 16
	badPIN     = "0000"
	fuzzBudget = 4
)

// fleetMarker is the plaintext every hosted device plants in its sensitive
// processes; the confidentiality sweeps scan for it.
var fleetMarker = []byte("FLEET-SOAK-MARKER-XYZZY")

// device is one booted simulated device plus the workload state the actor
// drives on it. Everything here is owned by one goroutine at a time: the
// resident actor's, or — between park and hydrate — nobody's.
type device struct {
	dev     *sentry.Device
	pin     string
	marker  []byte
	volKey0 []byte // volatile root key as generated at the base boot

	fg, bg         *kernel.Process
	fgBase, bgBase mmu.VirtAddr
	bgOn           bool

	dm       *dmcrypt.DMCrypt
	disk     *blockdev.RAMDisk
	prov     *core.AESProvider
	diskKey  []byte
	diskDown bool // true when disk crypto degraded to the DRAM-arena provider
	shadow   map[uint64][]byte

	inj *faults.Injector

	// dead marks a device killed by a power cut that was not followed by a
	// reboot (quarantine); wasLockedAtCut scopes the post-mortem sweep.
	dead           bool
	wasLockedAtCut bool
}

// Fork returns an independent continuation of the device — world forked
// copy-on-write, processes re-mapped by PID, disk and crypto engine
// re-pointed at the forked stores, fault stream cloned at its position —
// so the fork replays exactly what the original would have done. It is
// what snapshot.Snapshot[*device] parks and hydrates.
func (d *device) Fork() *device {
	sd2 := d.dev.Fork()
	d2 := &device{
		dev:            sd2,
		pin:            d.pin,
		marker:         d.marker,
		volKey0:        d.volKey0,
		fgBase:         d.fgBase,
		bgBase:         d.bgBase,
		bgOn:           d.bgOn,
		diskKey:        d.diskKey,
		diskDown:       d.diskDown,
		shadow:         make(map[uint64][]byte, len(d.shadow)),
		dead:           d.dead,
		wasLockedAtCut: d.wasLockedAtCut,
	}
	d2.fg = sd2.Kernel.Process(d.fg.PID)
	d2.bg = sd2.Kernel.Process(d.bg.PID)
	for sec, buf := range d.shadow {
		d2.shadow[sec] = buf // written sectors are immutable once recorded
	}
	d2.disk = d.disk.Fork(sd2.SoC)
	prov, err := d.prov.Adopt(sd2.SoC, d.diskKey, sd2.Sentry.IRAM())
	if err != nil {
		panic(fmt.Sprintf("fleet: device fork: crypto adopt failed: %v", err))
	}
	d2.prov = prov
	d2.dm = d.dm.Refit(d2.disk, prov)
	if d.inj != nil {
		d2.inj = d.inj.Clone()
		d2.inj.Attach(sd2.Sentry)
	}
	return d2
}

// Deflate re-encodes a parked device as a delta against the fleet's frozen
// base world (see soc.SoC.Deflate): only the memory pages and cache lines
// that diverged from the shared post-boot image stay resident. The disk
// keeps its own store — its ciphertext is under a per-device key, so there
// is no shared base to delta against, and it is already sparse (written
// sectors only); it is charged to the returned footprint along with the
// sector shadow. Call only on a parked, exclusively owned device; the next
// Fork re-inflates a dense, byte-identical copy.
func (d *device) Deflate(base *sentry.Device) int64 {
	return d.dev.Deflate(base) + d.looseBytes()
}

// footprint estimates the device's resting cost in its current encoding —
// the dense-array measure for a full park, on the same scale Deflate
// reports for a delta park.
func (d *device) footprint() int64 {
	return d.dev.FootprintBytes() + d.looseBytes()
}

// looseBytes is the device state outside the SoC: materialised disk sectors
// and the written-sector shadow.
func (d *device) looseBytes() int64 {
	var n int64
	if d.disk != nil {
		n = d.disk.ResidentBytes()
	}
	return n + int64(len(d.shadow))*(blockdev.SectorSize+16)
}

// actor hosts one resident device on one goroutine — the single-owner
// contract of the simulation (sim.Clock, sim.RNG, obs instruments) is
// preserved by construction, and enforced by the obs owner guard in
// debug/race builds. All requests arrive through the bounded mailbox;
// panics (fault-injected power loss or bugs) are recovered at the mailbox
// boundary and converted into a supervised restart. The actor is the
// ephemeral half of a device: identity (ledger, seq, breaker, budgets)
// lives on the slot and survives the actor's park/exit.
type actor struct {
	f  *Fleet
	sh *shard
	sl *slot

	mbox    *mailbox
	parkReq atomic.Bool
	// busySince is the clock nanos when the current request began; 0 when
	// idle. The watchdog reads it.
	busySince atomic.Int64

	d *device // actor-goroutine state
}

func newActor(f *Fleet, sh *shard, sl *slot) *actor {
	return &actor{f: f, sh: sh, sl: sl, mbox: newMailbox(f.opt.MailboxCap)}
}

// wake nudges the actor loop (park requests, shutdown).
func (a *actor) wake() {
	select {
	case a.mbox.ready <- struct{}{}:
	default:
	}
}

// call submits one request and waits for the reply or the caller deadline.
func (a *actor) call(ctx context.Context, op Op, opID uint64) (Result, error) {
	r := &request{op: op, ctx: ctx, opID: opID, reply: make(chan result, 1)}
	shedded, err := a.mbox.push(r, op.Prio)
	if shedded {
		a.f.ctrSheds.Inc()
	}
	if err != nil {
		if errors.Is(err, ErrShed) {
			a.f.ctrSheds.Inc()
		}
		return Result{}, err
	}
	select {
	case <-ctx.Done():
		return Result{}, ctx.Err()
	case res := <-r.reply:
		return res.res, res.err
	}
}

// run is the actor goroutine: hydrate (or boot), serve the mailbox, and
// exit by parking (eviction) or draining (shutdown).
func (a *actor) run() {
	defer a.f.actorWG.Done()
	if a.sl.parked != nil {
		a.hydrate()
	} else {
		a.reboot("initial boot")
	}
	for {
		select {
		case <-a.f.stop:
			a.exit()
			return
		case <-a.mbox.ready:
			if a.parkReq.Load() {
				a.park()
				return
			}
			for r := a.mbox.pop(); r != nil; r = a.mbox.pop() {
				a.handle(r)
				select {
				case <-a.f.stop:
					a.exit()
					return
				default:
				}
			}
		}
	}
}

// exit is the shutdown path: fail queued requests, and complete a pending
// park hand-off so no acquirer stays blocked on sl.wait.
func (a *actor) exit() {
	for _, r := range a.mbox.close(ErrShutdown) {
		r.reply <- result{err: ErrShutdown}
	}
	if a.parkReq.Load() {
		a.park()
	}
}

// hydrate restores the device from the slot's parked snapshot: a fork, not
// a boot — byte-identical to having stayed resident, and never counted as
// a boot.
func (a *actor) hydrate() {
	d := a.sl.parked.Fork()
	d.dev.Metrics().BindOwner()
	a.d = d
	a.f.ctrHydrations.Inc()
}

// park is the eviction path: deflate the live world to a delta against the
// fleet's shared base and adopt it into the slot's snapshot (no copy; the
// next hydration forks a dense reconstruction), so a parked device rests at
// O(divergence from base) instead of O(everything it ever touched). Under
// NoDelta the world is adopted whole. A dead or boot-failed world is
// discarded instead — its terminal state is already recorded on the slot,
// and a quarantined slot never re-instantiates.
func (a *actor) park() {
	for _, r := range a.mbox.close(ErrShed) {
		r.reply <- result{err: ErrShed}
	}
	var bytes int64
	if a.d != nil && !a.d.dead {
		if base := a.f.deltaBase(); base != nil {
			a.sl.parked, bytes = snapshot.CaptureDelta[*device, *sentry.Device](a.d, base)
		} else {
			a.sl.parked = snapshot.Adopt(a.d)
			bytes = a.d.footprint()
		}
	} else {
		a.sl.parked = nil
	}
	a.f.gParkedBytes.Add(bytes - a.sl.parkedBytes)
	a.sl.parkedBytes = bytes
	a.d = nil
	a.sh.parkDone(a.sl)
}

// handle executes one request, maintains the sequence ledger, and replies.
func (a *actor) handle(r *request) {
	if err := r.ctx.Err(); err != nil {
		r.reply <- result{err: err}
		return
	}
	if a.sl.quarantined.Load() {
		r.reply <- result{err: fmt.Errorf("fleet: device %d: %w", a.sl.id, ErrQuarantined)}
		return
	}
	a.busySince.Store(a.f.clock.Now().UnixNano())
	res, err := a.execGuarded(r)
	a.busySince.Store(0)
	a.f.ctrExecs.Inc()
	if r.op.Code != OpPing { // pings are health probes, not state ops
		entry := LedgerEntry{OpID: r.opID, Code: r.op.Code}
		if err == nil {
			a.sl.seq++
			entry.Seq = a.sl.seq
			res.Seq = a.sl.seq
		} else {
			entry.Err = err.Error()
		}
		a.sl.mu.Lock()
		a.sl.ledger = append(a.sl.ledger, entry)
		a.sl.mu.Unlock()
	}
	r.reply <- result{res: res, err: err}
}

// execGuarded runs exec under the panic boundary: any panic — a
// faults.Abort modelling power loss, or a plain bug — is converted into a
// supervised restart (or quarantine once the budget is spent).
func (a *actor) execGuarded(r *request) (res Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = Result{}, a.recoverPanic(rec)
		}
	}()
	if a.f.opt.testExec != nil {
		if handled, v, e := a.f.opt.testExec(a, r.op); handled {
			return v, e
		}
	}
	if a.d == nil || a.d.dead {
		return Result{}, fmt.Errorf("fleet: device %d has no live boot: %w", a.sl.id, ErrDeviceRestarted)
	}
	return a.exec(r.op)
}

// recoverPanic is the supervision policy. A faults.Abort is an injected
// power loss: apply the cut to the SoC, post-mortem the corpse if it was
// locked (the confidentiality invariant must hold over the decayed image),
// and reboot. Any other panic is a bug in the device stack: isolate it the
// same way. Either way the restart is charged to the budget; exceeding it
// quarantines the device.
func (a *actor) recoverPanic(rec any) error {
	var cause string
	if ab, ok := rec.(faults.Abort); ok {
		cause = "fault: " + ab.String()
		if a.d != nil && !a.d.dead {
			wasLocked := a.d.dev.Kernel.State() != kernel.Unlocked
			a.d.dev.SoC.PowerCut(ab.Seconds, remanence.RoomTempC)
			a.d.dead, a.d.wasLockedAtCut = true, wasLocked
			if wasLocked {
				a.scanCorpse("power loss (" + ab.Reason + ")")
			}
		}
	} else {
		cause = fmt.Sprintf("panic: %v", rec)
		if a.d != nil {
			a.d.dead, a.d.wasLockedAtCut = true, false
		}
	}
	a.sl.addCause(cause)
	a.f.ctrRestarts.Inc()
	if a.sl.restarts.Add(1) > int64(a.f.opt.RestartBudget) {
		a.sl.quarantined.Store(true)
		a.f.ctrQuarantines.Inc()
		return fmt.Errorf("fleet: device %d: restart budget exhausted (%s): %w", a.sl.id, cause, ErrQuarantined)
	}
	a.reboot(cause)
	return fmt.Errorf("fleet: device %d: %s: %w", a.sl.id, cause, ErrDeviceRestarted)
}

// reboot boots a fresh device — forked from the fleet's shared post-boot
// snapshot, or cold when snapshots are disabled. Boot failure is terminal:
// the device is quarantined (nothing a retry could change about a
// deterministic boot).
func (a *actor) reboot(why string) {
	a.sl.boots.Add(1)
	d, err := a.bootDevice()
	if err != nil {
		a.d = nil
		a.sl.quarantined.Store(true)
		a.f.ctrQuarantines.Inc()
		a.sl.addCause(fmt.Sprintf("boot failed (%s): %v", why, err))
		return
	}
	a.d = d
	if d.diskDown {
		a.f.ctrCryptoDowngrades.Inc()
	}
}

// scanCorpse runs the shared post-mortem confidentiality clauses over the
// power-cut image; scanner returns carry no schedule context, so tag them
// with the device here.
func (a *actor) scanCorpse(why string) {
	if v := deviceScanner(a.d).PostMortem(why); v != nil {
		a.sl.addViolation(fmt.Sprintf("device %d: clause %s: %s", a.sl.id, v.Clause, v.Detail))
	}
}

func deviceScanner(d *device) *check.Scanner {
	return &check.Scanner{
		S: d.dev.SoC, K: d.dev.Kernel,
		Marker: d.marker, VolKey0: d.volKey0, FuzzBudget: fuzzBudget,
	}
}

func (sl *slot) addCause(cause string) {
	sl.mu.Lock()
	sl.causes = append(sl.causes, cause)
	sl.mu.Unlock()
}

func (sl *slot) addViolation(v string) {
	sl.mu.Lock()
	sl.violations = append(sl.violations, v)
	sl.mu.Unlock()
}

// baseBootSeed derives the simulation seed of the fleet's shared base
// world from the fleet seed. It is also the seed of every cold boot under
// NoSnapshots — a cold boot with the base seed replays exactly the world a
// fork of the base snapshot continues, which is what keeps results
// byte-identical across the two modes.
func baseBootSeed(fleetSeed int64) int64 {
	h := splitmix64(splitmix64(uint64(fleetSeed)) ^ 0x5851f42d4c957f2d)
	return int64(h &^ (1 << 63))
}

// bootSeed derives a per-device seed from the fleet seed; it feeds the
// device's disk key and fault stream, which is where per-device divergence
// comes from (the base world itself is shared).
func bootSeed(fleetSeed int64, id DeviceID) int64 {
	h := splitmix64(uint64(fleetSeed))
	h = splitmix64(h ^ uint64(id))
	return int64(h &^ (1 << 63)) // keep it positive for readable logs
}

// deviceVolKey derives device id's volatile root key from the base image's
// boot-generated key: fold the base key and id through splitmix64 and expand
// the stream to key length. Deterministic per (base key, id) — a reboot
// re-derives the identical key — and distinct across ids.
func deviceVolKey(base []byte, id DeviceID) []byte {
	var h uint64
	for _, b := range base {
		h = splitmix64(h ^ uint64(b))
	}
	h = splitmix64(h ^ uint64(id))
	key := make([]byte, len(base))
	for i := 0; i < len(key); i += 8 {
		h = splitmix64(h)
		for j := 0; j < 8 && i+j < len(key); j++ {
			key[i+j] = byte(h >> (8 * j))
		}
	}
	return key
}

// bootDevice builds one fresh simulated device with the fleet workload: a
// sensitive foreground and background process filled with the plaintext
// marker, an encrypted disk, and (when configured) a fault injector. The
// platform boot itself is shared — every device forks the fleet's one base
// snapshot (built lazily by the first boot anywhere in the fleet) — and
// only the per-device setup below runs per boot. Under NoSnapshots the
// base seed is cold-booted instead, which replays the identical world.
func (a *actor) bootDevice() (*device, error) {
	opt, id := a.f.opt, a.sl.id
	seed := bootSeed(opt.Seed, id)
	var sd *sentry.Device
	if opt.NoSnapshots {
		var err error
		sd, err = sentry.Open(sentry.Tegra3, opt.PIN, sentry.WithSeed(baseBootSeed(opt.Seed)))
		if err != nil {
			return nil, err
		}
	} else {
		base, err := a.f.baseSnapshot()
		if err != nil {
			return nil, err
		}
		sd = base.Fork()
	}
	// The actor goroutine owns this device; bind the metrics registry so
	// debug/race builds catch any cross-goroutine wiring.
	sd.Metrics().BindOwner()

	// Stamp a per-device volatile key over the shared boot image, before
	// anything seals. The derivation is deterministic in (base key, id), so
	// every reboot of this device regenerates the same key while no two
	// devices share one — capturing a fleet-wide key from one parked delta
	// must not unlock its neighbours.
	if err := sd.Sentry.Rekey(deviceVolKey(sd.Sentry.Keys().VolatileKey(), id)); err != nil {
		return nil, err
	}

	d := &device{
		dev:     sd,
		pin:     opt.PIN,
		marker:  fleetMarker,
		volKey0: append([]byte(nil), sd.Sentry.Keys().VolatileKey()...),
		shadow:  make(map[uint64][]byte),
	}
	d.fg = sd.Kernel.NewProcess("fg", true, false)
	d.bg = sd.Kernel.NewProcess("bg", true, true)
	var err error
	if d.fgBase, err = sd.Kernel.MapAnon(d.fg, fgPages); err != nil {
		return nil, err
	}
	if d.bgBase, err = sd.Kernel.MapAnon(d.bg, bgPages); err != nil {
		return nil, err
	}
	if err := fill(d, d.fg, d.fgBase, fgPages); err != nil {
		return nil, err
	}
	if err := fill(d, d.bg, d.bgBase, bgPages); err != nil {
		return nil, err
	}

	// Graceful-degradation pressure: on squeezed devices, occupy iRAM down
	// to a sliver so per-volume engines and pinned pools must fall back.
	if opt.SqueezeEvery > 0 && (uint64(id)+1)%uint64(opt.SqueezeEvery) == 0 {
		if free := sd.Sentry.IRAM().Free(); free > 256 {
			if _, err := sd.Sentry.IRAM().Alloc(free - 256); err != nil {
				return nil, err
			}
		}
	}

	if err := d.buildDisk(opt, seed); err != nil {
		return nil, err
	}

	if opt.Faults.Active() {
		d.inj = faults.New(opt.Faults, seed|1)
		d.inj.Attach(sd.Sentry)
	}
	return d, nil
}

func fill(d *device, p *kernel.Process, base mmu.VirtAddr, pages int) error {
	d.dev.Kernel.Switch(p)
	for i := 0; i < pages; i++ {
		line := append(append([]byte{}, d.marker...), byte(i))
		if err := d.dev.SoC.CPU.Store(base+mmu.VirtAddr(i*mem.PageSize), line); err != nil {
			return fmt.Errorf("fleet: marker fill: %v", err)
		}
	}
	return nil
}

// buildDisk creates the device's dm-crypt volume. The preferred engine is a
// dedicated AES On SoC instance in iRAM; when iRAM is exhausted the volume
// degrades to the generic DRAM-arena provider — the classic dm-crypt
// configuration — and the downgrade is counted, never hidden.
func (d *device) buildDisk(opt Options, seed int64) error {
	key := make([]byte, 16)
	h := uint64(seed)
	for i := range key {
		h = splitmix64(h)
		key[i] = byte(h)
	}
	d.diskKey = key
	eng, err := onsoc.NewInIRAM(d.dev.SoC, d.dev.Sentry.IRAM(), key)
	switch {
	case err == nil:
		d.prov = core.NewOnSoCProvider(eng)
	case errors.Is(err, onsoc.ErrIRAMExhausted):
		gp, gerr := core.NewGenericProvider(d.dev.SoC, dramArenaBase, key)
		if gerr != nil {
			return gerr
		}
		d.prov = gp
		d.diskDown = true
	default:
		return err
	}
	d.disk = blockdev.NewRAMDisk(d.dev.SoC, uint64(opt.DiskKB)<<10)
	dm, err := dmcrypt.NewWithProvider(d.disk, d.prov, key)
	if err != nil {
		return err
	}
	d.dm = dm
	return nil
}

// exec runs one operation against the live device. It runs on the actor
// goroutine under the panic boundary; fault hooks may unwind it at any
// point with a faults.Abort.
func (a *actor) exec(op Op) (Result, error) {
	d := a.d
	k := d.dev.Kernel
	switch op.Code {
	case OpPing:
		return Result{State: k.State().String()}, nil

	case OpLock:
		k.Lock()
		return Result{}, nil

	case OpUnlock:
		if err := k.Unlock(d.pin); err != nil {
			return a.unlockFailed(err)
		}
		d.bgOn = false // the session ends inside Unlock
		return Result{}, nil

	case OpBadPIN:
		if err := k.Unlock(badPIN); err != nil {
			return a.unlockFailed(err)
		}
		return Result{}, nil // device was already unlocked: a PIN-less no-op

	case OpTouch:
		if k.State() != kernel.Unlocked {
			return Result{}, fmt.Errorf("fleet: touch on a locked device: %w", kernel.ErrLocked)
		}
		k.Switch(d.fg)
		return Result{}, d.verifyPage(d.fgBase, int(op.Arg)%fgPages, "fg")

	case OpBgBegin:
		return a.beginBg(false)

	case OpBgPinned:
		return a.beginBg(true)

	case OpBgTouch:
		if !d.bgOn {
			return Result{}, fmt.Errorf("fleet: no background session: %w", kernel.ErrLocked)
		}
		k.Switch(d.bg)
		return Result{}, d.verifyPage(d.bgBase, int(op.Arg)%bgPages, "bg")

	case OpDiskWrite:
		sec := op.Arg % d.dm.Sectors()
		buf := sectorPattern(a.sl.id, sec, op.Arg)
		if err := d.dm.WriteSector(sec, buf); err != nil {
			return Result{}, err
		}
		d.shadow[sec] = buf
		return Result{}, nil

	case OpDiskRead:
		sec := op.Arg % d.dm.Sectors()
		dst := make([]byte, blockdev.SectorSize)
		if err := d.dm.ReadSector(sec, dst); err != nil {
			return Result{}, err
		}
		if want, ok := d.shadow[sec]; ok && !bytes.Equal(dst, want) {
			return Result{}, fmt.Errorf("fleet: device %d disk sector %d corrupted", a.sl.id, sec)
		}
		return Result{}, nil

	case OpRebootDrill:
		a.f.ctrDrills.Inc()
		a.reboot("reboot drill")
		if a.d == nil {
			return Result{}, fmt.Errorf("fleet: device %d failed to boot after drill: %w", a.sl.id, ErrQuarantined)
		}
		return Result{Rebooted: true}, nil
	}
	return Result{}, fmt.Errorf("fleet: unknown op code %d", op.Code)
}

// unlockFailed post-processes a failed Unlock. Deep lock is terminal short
// of a power cycle, so the actor performs a planned recovery reboot — the
// graceful path out of an otherwise bricked device — and reports the
// request as retryable.
func (a *actor) unlockFailed(err error) (Result, error) {
	if a.d.dev.Kernel.State() == kernel.DeepLocked {
		a.f.ctrRecoveries.Inc()
		a.reboot("deep-lock recovery")
		if a.d == nil {
			return Result{}, fmt.Errorf("fleet: device %d failed deep-lock recovery: %w", a.sl.id, ErrQuarantined)
		}
		return Result{}, fmt.Errorf("fleet: device %d deep-locked; recovered by reboot: %w", a.sl.id, ErrDeviceRestarted)
	}
	return Result{}, err
}

// beginBg starts a background session. The pinned (§10 pin-on-SoC) variant
// degrades to the locked-way session when iRAM is exhausted.
func (a *actor) beginBg(pinned bool) (Result, error) {
	d := a.d
	if d.dev.Kernel.State() == kernel.Unlocked {
		return Result{}, fmt.Errorf("fleet: background sessions need a locked device: %w", kernel.ErrLocked)
	}
	if d.bgOn {
		return Result{Session: "bg-already-on"}, nil
	}
	if pinned {
		err := d.dev.Sentry.BeginBackgroundPinned(d.bg, 4)
		if err == nil {
			d.bgOn = true
			return Result{Session: "bg-pinned"}, nil
		}
		if !errors.Is(err, onsoc.ErrIRAMExhausted) {
			return Result{}, err
		}
		if err := d.dev.Sentry.BeginBackground(d.bg, 128); err != nil {
			return Result{}, err
		}
		a.f.ctrBgDowngrades.Inc()
		d.bgOn = true
		return Result{Session: "bg-pinned-downgraded"}, nil
	}
	if err := d.dev.Sentry.BeginBackground(d.bg, 128); err != nil {
		return Result{}, err
	}
	d.bgOn = true
	return Result{Session: "bg"}, nil
}

// verifyPage reads the marker line of one page and checks integrity — the
// fleet's benign fault profile must never corrupt data.
func (d *device) verifyPage(base mmu.VirtAddr, pg int, what string) error {
	got := make([]byte, len(d.marker))
	if err := d.dev.SoC.CPU.Load(base+mmu.VirtAddr(pg*mem.PageSize), got); err != nil {
		return fmt.Errorf("fleet: %s page %d unreadable: %v", what, pg, err)
	}
	if !bytes.Equal(got, d.marker) {
		return fmt.Errorf("fleet: %s page %d corrupted", what, pg)
	}
	return nil
}

// sectorPattern derives a deterministic 512-byte payload for a disk write.
func sectorPattern(id DeviceID, sec, arg uint64) []byte {
	buf := make([]byte, blockdev.SectorSize)
	h := splitmix64(uint64(id)<<32 ^ sec<<16 ^ arg)
	for i := range buf {
		if i%8 == 0 {
			h = splitmix64(h)
		}
		buf[i] = byte(h >> (8 * (i % 8)))
	}
	return buf
}

// sweep runs the end-of-run confidentiality check on a device's final
// world: lock it (faults detached first so the lock cannot be interrupted),
// scan the live locked image, then cut power and post-mortem the remanence
// image. Called from the harness goroutine after Stop — for a parked slot
// the caller passes a fork of the parked snapshot, byte-identical to the
// world the device would have presented had it stayed resident. The
// registry owner is re-bound here — a deliberate hand-off.
func (sl *slot) sweep(d *device) {
	if d == nil || d.dead {
		// A quarantined corpse was already post-mortemed at the cut if it
		// was locked; an unlocked corpse is the accepted pre-lock window.
		return
	}
	d.dev.Metrics().BindOwner()
	if d.inj != nil {
		faults.Detach(d.dev.Sentry)
		d.inj = nil
	}
	if d.dev.Kernel.State() == kernel.Unlocked {
		d.dev.Kernel.Lock()
	}
	if v := deviceScanner(d).ScanLive(); v != nil {
		sl.addViolation(fmt.Sprintf("device %d (sweep): clause %s: %s", sl.id, v.Clause, v.Detail))
	}
	d.dev.SoC.PowerCut(0.05, remanence.RoomTempC)
	d.dead, d.wasLockedAtCut = true, true
	if v := deviceScanner(d).PostMortem("post-soak power cut"); v != nil {
		sl.addViolation(fmt.Sprintf("device %d: clause %s: %s", sl.id, v.Clause, v.Detail))
	}
}

package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sentry"
	"sentry/internal/blockdev"
	"sentry/internal/check"
	"sentry/internal/core"
	"sentry/internal/dmcrypt"
	"sentry/internal/faults"
	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/onsoc"
	"sentry/internal/remanence"
	"sentry/internal/snapshot"
	"sentry/internal/soc"
)

// dramArenaBase is where a degraded (generic) crypto provider places its
// DRAM arena: inside the kernel-reserved low 64 MB, clear of user frames.
const dramArenaBase = soc.DRAMBase + 0x100000

// OpCode enumerates the operations a hosted device serves.
type OpCode uint8

// Operation alphabet. Reboot drills are planned reboots (resilience
// exercise); they bump the boot count but are never charged against the
// fault-restart budget.
const (
	OpPing OpCode = iota
	OpLock
	OpUnlock
	OpBadPIN
	OpTouch
	OpBgBegin
	OpBgTouch
	OpBgPinned
	OpDiskWrite
	OpDiskRead
	OpRebootDrill
	numOps
)

var opNames = [numOps]string{
	"ping", "lock", "unlock", "bad-pin", "touch", "bg-begin", "bg-touch",
	"bg-pinned", "disk-write", "disk-read", "reboot-drill",
}

func (c OpCode) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("OpCode(%d)", int(c))
}

// Op is one request against a hosted device.
type Op struct {
	Code OpCode
	Arg  uint64
	// Prio is the mailbox priority (PrioHigh/PrioNormal/PrioLow);
	// out-of-range values clamp to PrioNormal.
	Prio int
}

// LedgerEntry records one executed (non-ping) request on a device. Seq is
// assigned only on success and is contiguous per device across reboots —
// the sequence ledger the soak harness checks for lost or duplicated ops.
type LedgerEntry struct {
	OpID uint64
	Code OpCode
	Seq  uint64 // 0 on failure
	Err  string // "" on success
}

const (
	fgPages    = 8
	bgPages    = 16
	badPIN     = "0000"
	fuzzBudget = 4
)

// fleetMarker is the plaintext every hosted device plants in its sensitive
// processes; the confidentiality sweeps scan for it.
var fleetMarker = []byte("FLEET-SOAK-MARKER-XYZZY")

// device is one booted simulated device plus the workload state the actor
// drives on it. Everything here is owned by the actor goroutine.
type device struct {
	dev     *sentry.Device
	pin     string
	marker  []byte
	volKey0 []byte // volatile root key as generated at this boot

	fg, bg         *kernel.Process
	fgBase, bgBase mmu.VirtAddr
	bgOn           bool

	dm       *dmcrypt.DMCrypt
	diskDown bool // true when disk crypto degraded to the DRAM-arena provider
	shadow   map[uint64][]byte

	inj *faults.Injector

	// dead marks a device killed by a power cut that was not followed by a
	// reboot (quarantine); wasLockedAtCut scopes the post-mortem sweep.
	dead           bool
	wasLockedAtCut bool
}

// actor hosts one device on one goroutine — the single-owner contract of
// the simulation (sim.Clock, sim.RNG, obs instruments) is preserved by
// construction, and enforced by the obs owner guard in debug/race builds.
// All requests arrive through the bounded mailbox; panics (fault-injected
// power loss or bugs) are recovered at the mailbox boundary and converted
// into a supervised restart.
type actor struct {
	f  *Fleet
	id int

	mbox *mailbox
	brk  *Breaker
	done chan struct{}

	nextOp      atomic.Uint64 // per-device op id allocator
	quarantined atomic.Bool
	stalled     atomic.Bool
	busySince   atomic.Int64 // clock nanos; 0 when idle
	boots       atomic.Int64
	restarts    atomic.Int64 // fault-caused restarts (charged to the budget)

	// Actor-goroutine state. mu guards the slices for post-run readers.
	d   *device
	seq uint64
	// bootSnap parks the device's post-boot state (captured at first boot,
	// right after sentry.Open): every later reboot forks it in O(touched
	// metadata) and re-runs only the deterministic workload setup, instead
	// of re-running the whole boot sequence. Nil when Options.NoSnapshots.
	bootSnap *snapshot.Snapshot[*sentry.Device]

	mu         sync.Mutex
	ledger     []LedgerEntry
	causes     []string // one entry per fault-caused restart or quarantine
	violations []string
}

func newActor(f *Fleet, id int) *actor {
	return &actor{
		f:    f,
		id:   id,
		mbox: newMailbox(f.opt.MailboxCap),
		brk:  NewBreaker(f.opt.Breaker, f.clock),
		done: make(chan struct{}),
	}
}

// call submits one request and waits for the reply or the caller deadline.
func (a *actor) call(ctx context.Context, op Op, opID uint64) (any, error) {
	r := &request{op: op, ctx: ctx, opID: opID, reply: make(chan result, 1)}
	shedded, err := a.mbox.push(r, op.Prio)
	if shedded {
		a.f.ctrSheds.Inc()
	}
	if err != nil {
		if errors.Is(err, ErrShed) {
			a.f.ctrSheds.Inc()
		}
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case res := <-r.reply:
		return res.val, res.err
	}
}

// run is the actor goroutine: boot, serve the mailbox, drain on stop.
func (a *actor) run() {
	defer close(a.done)
	a.reboot("initial boot")
	for {
		select {
		case <-a.f.stop:
			a.drainShutdown()
			return
		case <-a.mbox.ready:
			for r := a.mbox.pop(); r != nil; r = a.mbox.pop() {
				a.handle(r)
				select {
				case <-a.f.stop:
					a.drainShutdown()
					return
				default:
				}
			}
		}
	}
}

func (a *actor) drainShutdown() {
	for _, r := range a.mbox.close(ErrShutdown) {
		r.reply <- result{err: ErrShutdown}
	}
}

// handle executes one request, maintains the sequence ledger, and replies.
func (a *actor) handle(r *request) {
	if err := r.ctx.Err(); err != nil {
		r.reply <- result{err: err}
		return
	}
	if a.quarantined.Load() {
		r.reply <- result{err: fmt.Errorf("fleet: device %d: %w", a.id, ErrQuarantined)}
		return
	}
	a.busySince.Store(a.f.clock.Now().UnixNano())
	val, err := a.execGuarded(r)
	a.busySince.Store(0)
	a.f.ctrExecs.Inc()
	if r.op.Code != OpPing { // pings are health probes, not state ops
		entry := LedgerEntry{OpID: r.opID, Code: r.op.Code}
		if err == nil {
			a.seq++
			entry.Seq = a.seq
		} else {
			entry.Err = err.Error()
		}
		a.mu.Lock()
		a.ledger = append(a.ledger, entry)
		a.mu.Unlock()
	}
	r.reply <- result{val: val, err: err}
}

// execGuarded runs exec under the panic boundary: any panic — a
// faults.Abort modelling power loss, or a plain bug — is converted into a
// supervised restart (or quarantine once the budget is spent).
func (a *actor) execGuarded(r *request) (val any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			val, err = nil, a.recoverPanic(rec)
		}
	}()
	if a.f.opt.testExec != nil {
		if handled, v, e := a.f.opt.testExec(a, r.op); handled {
			return v, e
		}
	}
	if a.d == nil || a.d.dead {
		return nil, fmt.Errorf("fleet: device %d has no live boot: %w", a.id, ErrDeviceRestarted)
	}
	return a.exec(r.op)
}

// recoverPanic is the supervision policy. A faults.Abort is an injected
// power loss: apply the cut to the SoC, post-mortem the corpse if it was
// locked (the confidentiality invariant must hold over the decayed image),
// and reboot. Any other panic is a bug in the device stack: isolate it the
// same way. Either way the restart is charged to the budget; exceeding it
// quarantines the device.
func (a *actor) recoverPanic(rec any) error {
	var cause string
	if ab, ok := rec.(faults.Abort); ok {
		cause = "fault: " + ab.String()
		if a.d != nil && !a.d.dead {
			wasLocked := a.d.dev.Kernel.State() != kernel.Unlocked
			a.d.dev.SoC.PowerCut(ab.Seconds, remanence.RoomTempC)
			a.d.dead, a.d.wasLockedAtCut = true, wasLocked
			if wasLocked {
				a.scanCorpse("power loss (" + ab.Reason + ")")
			}
		}
	} else {
		cause = fmt.Sprintf("panic: %v", rec)
		if a.d != nil {
			a.d.dead, a.d.wasLockedAtCut = true, false
		}
	}
	a.mu.Lock()
	a.causes = append(a.causes, cause)
	a.mu.Unlock()
	a.f.ctrRestarts.Inc()
	if a.restarts.Add(1) > int64(a.f.opt.RestartBudget) {
		a.quarantined.Store(true)
		a.f.ctrQuarantines.Inc()
		return fmt.Errorf("fleet: device %d: restart budget exhausted (%s): %w", a.id, cause, ErrQuarantined)
	}
	a.reboot(cause)
	return fmt.Errorf("fleet: device %d: %s: %w", a.id, cause, ErrDeviceRestarted)
}

// reboot boots a fresh device — from the parked post-boot snapshot after the
// first boot, or cold otherwise. Boot failure is terminal: the actor is
// quarantined (nothing a retry could change about a deterministic boot).
func (a *actor) reboot(why string) {
	a.boots.Add(1)
	d, err := a.bootDevice()
	if err != nil {
		a.d = nil
		a.quarantined.Store(true)
		a.f.ctrQuarantines.Inc()
		a.mu.Lock()
		a.causes = append(a.causes, fmt.Sprintf("boot failed (%s): %v", why, err))
		a.mu.Unlock()
		return
	}
	a.d = d
	if d.diskDown {
		a.f.ctrCryptoDowngrades.Inc()
	}
}

// scanCorpse runs the shared post-mortem confidentiality clauses over the
// power-cut image; scanner returns carry no schedule context, so tag them
// with the device here.
func (a *actor) scanCorpse(why string) {
	if v := a.scanner().PostMortem(why); v != nil {
		a.mu.Lock()
		a.violations = append(a.violations,
			fmt.Sprintf("device %d: clause %s: %s", a.id, v.Clause, v.Detail))
		a.mu.Unlock()
	}
}

func (a *actor) scanner() *check.Scanner {
	return &check.Scanner{
		S: a.d.dev.SoC, K: a.d.dev.Kernel,
		Marker: a.d.marker, VolKey0: a.d.volKey0, FuzzBudget: fuzzBudget,
	}
}

// bootSeed derives a per-device simulation seed from the fleet seed. Every
// boot of a device replays the same deterministic boot — which is what lets
// reboots restore from the post-boot snapshot instead of re-booting.
func bootSeed(fleetSeed int64, id int) int64 {
	h := splitmix64(uint64(fleetSeed))
	h = splitmix64(h ^ uint64(id))
	return int64(h &^ (1 << 63)) // keep it positive for readable logs
}

// bootDevice builds one fresh simulated device with the fleet workload:
// a sensitive foreground and background process filled with the plaintext
// marker, an encrypted disk, and (when configured) a fault injector. The
// first boot captures a post-boot snapshot; later boots fork it and re-run
// only the workload setup below, which is byte-identical to a cold boot
// (the same per-device seed replays the same boot).
func (a *actor) bootDevice() (*device, error) {
	opt, id := a.f.opt, a.id
	seed := bootSeed(opt.Seed, id)
	var sd *sentry.Device
	if a.bootSnap != nil {
		sd = a.bootSnap.Fork()
	} else {
		var err error
		sd, err = sentry.Open(sentry.Tegra3, opt.PIN, sentry.WithSeed(seed))
		if err != nil {
			return nil, err
		}
		if !opt.NoSnapshots {
			// Capture parks a fork; the freshly booted original serves this
			// first boot live.
			a.bootSnap = snapshot.Capture(sd)
		}
	}
	// The actor goroutine owns this device; bind the metrics registry so
	// debug/race builds catch any cross-goroutine wiring.
	sd.Metrics().BindOwner()

	d := &device{
		dev:     sd,
		pin:     opt.PIN,
		marker:  fleetMarker,
		volKey0: append([]byte(nil), sd.Sentry.Keys().VolatileKey()...),
		shadow:  make(map[uint64][]byte),
	}
	d.fg = sd.Kernel.NewProcess("fg", true, false)
	d.bg = sd.Kernel.NewProcess("bg", true, true)
	var err error
	if d.fgBase, err = sd.Kernel.MapAnon(d.fg, fgPages); err != nil {
		return nil, err
	}
	if d.bgBase, err = sd.Kernel.MapAnon(d.bg, bgPages); err != nil {
		return nil, err
	}
	if err := fill(d, d.fg, d.fgBase, fgPages); err != nil {
		return nil, err
	}
	if err := fill(d, d.bg, d.bgBase, bgPages); err != nil {
		return nil, err
	}

	// Graceful-degradation pressure: on squeezed devices, occupy iRAM down
	// to a sliver so per-volume engines and pinned pools must fall back.
	if opt.SqueezeEvery > 0 && (id+1)%opt.SqueezeEvery == 0 {
		if free := sd.Sentry.IRAM().Free(); free > 256 {
			if _, err := sd.Sentry.IRAM().Alloc(free - 256); err != nil {
				return nil, err
			}
		}
	}

	if err := d.buildDisk(opt, seed); err != nil {
		return nil, err
	}

	if opt.Faults.Active() {
		d.inj = faults.New(opt.Faults, seed|1)
		d.inj.Attach(sd.Sentry)
	}
	return d, nil
}

func fill(d *device, p *kernel.Process, base mmu.VirtAddr, pages int) error {
	d.dev.Kernel.Switch(p)
	for i := 0; i < pages; i++ {
		line := append(append([]byte{}, d.marker...), byte(i))
		if err := d.dev.SoC.CPU.Store(base+mmu.VirtAddr(i*mem.PageSize), line); err != nil {
			return fmt.Errorf("fleet: marker fill: %v", err)
		}
	}
	return nil
}

// buildDisk creates the device's dm-crypt volume. The preferred engine is a
// dedicated AES On SoC instance in iRAM; when iRAM is exhausted the volume
// degrades to the generic DRAM-arena provider — the classic dm-crypt
// configuration — and the downgrade is counted, never hidden.
func (d *device) buildDisk(opt Options, seed int64) error {
	key := make([]byte, 16)
	h := uint64(seed)
	for i := range key {
		h = splitmix64(h)
		key[i] = byte(h)
	}
	var prov kernel.CipherProvider
	eng, err := onsoc.NewInIRAM(d.dev.SoC, d.dev.Sentry.IRAM(), key)
	switch {
	case err == nil:
		prov = core.NewOnSoCProvider(eng)
	case errors.Is(err, onsoc.ErrIRAMExhausted):
		gp, gerr := core.NewGenericProvider(d.dev.SoC, dramArenaBase, key)
		if gerr != nil {
			return gerr
		}
		prov = gp
		d.diskDown = true
	default:
		return err
	}
	disk := blockdev.NewRAMDisk(d.dev.SoC, uint64(opt.DiskKB)<<10)
	dm, err := dmcrypt.NewWithProvider(disk, prov, key)
	if err != nil {
		return err
	}
	d.dm = dm
	return nil
}

// exec runs one operation against the live device. It runs on the actor
// goroutine under the panic boundary; fault hooks may unwind it at any
// point with a faults.Abort.
func (a *actor) exec(op Op) (any, error) {
	d := a.d
	k := d.dev.Kernel
	switch op.Code {
	case OpPing:
		return k.State().String(), nil

	case OpLock:
		k.Lock()
		return nil, nil

	case OpUnlock:
		if err := k.Unlock(d.pin); err != nil {
			return a.unlockFailed(err)
		}
		d.bgOn = false // the session ends inside Unlock
		return nil, nil

	case OpBadPIN:
		if err := k.Unlock(badPIN); err != nil {
			return a.unlockFailed(err)
		}
		return nil, nil // device was already unlocked: a PIN-less no-op

	case OpTouch:
		if k.State() != kernel.Unlocked {
			return nil, fmt.Errorf("fleet: touch on a locked device: %w", kernel.ErrLocked)
		}
		k.Switch(d.fg)
		return nil, d.verifyPage(d.fgBase, int(op.Arg)%fgPages, "fg")

	case OpBgBegin:
		return a.beginBg(false)

	case OpBgPinned:
		return a.beginBg(true)

	case OpBgTouch:
		if !d.bgOn {
			return nil, fmt.Errorf("fleet: no background session: %w", kernel.ErrLocked)
		}
		k.Switch(d.bg)
		return nil, d.verifyPage(d.bgBase, int(op.Arg)%bgPages, "bg")

	case OpDiskWrite:
		sec := op.Arg % d.dm.Sectors()
		buf := sectorPattern(a.id, sec, op.Arg)
		if err := d.dm.WriteSector(sec, buf); err != nil {
			return nil, err
		}
		d.shadow[sec] = buf
		return nil, nil

	case OpDiskRead:
		sec := op.Arg % d.dm.Sectors()
		dst := make([]byte, blockdev.SectorSize)
		if err := d.dm.ReadSector(sec, dst); err != nil {
			return nil, err
		}
		if want, ok := d.shadow[sec]; ok && !bytes.Equal(dst, want) {
			return nil, fmt.Errorf("fleet: device %d disk sector %d corrupted", a.id, sec)
		}
		return nil, nil

	case OpRebootDrill:
		a.f.ctrDrills.Inc()
		a.reboot("reboot drill")
		if a.d == nil {
			return nil, fmt.Errorf("fleet: device %d failed to boot after drill: %w", a.id, ErrQuarantined)
		}
		return "rebooted", nil
	}
	return nil, fmt.Errorf("fleet: unknown op code %d", op.Code)
}

// unlockFailed post-processes a failed Unlock. Deep lock is terminal short
// of a power cycle, so the actor performs a planned recovery reboot — the
// graceful path out of an otherwise bricked device — and reports the
// request as retryable.
func (a *actor) unlockFailed(err error) (any, error) {
	if a.d.dev.Kernel.State() == kernel.DeepLocked {
		a.f.ctrRecoveries.Inc()
		a.reboot("deep-lock recovery")
		if a.d == nil {
			return nil, fmt.Errorf("fleet: device %d failed deep-lock recovery: %w", a.id, ErrQuarantined)
		}
		return nil, fmt.Errorf("fleet: device %d deep-locked; recovered by reboot: %w", a.id, ErrDeviceRestarted)
	}
	return nil, err
}

// beginBg starts a background session. The pinned (§10 pin-on-SoC) variant
// degrades to the locked-way session when iRAM is exhausted.
func (a *actor) beginBg(pinned bool) (any, error) {
	d := a.d
	if d.dev.Kernel.State() == kernel.Unlocked {
		return nil, fmt.Errorf("fleet: background sessions need a locked device: %w", kernel.ErrLocked)
	}
	if d.bgOn {
		return "bg-already-on", nil
	}
	if pinned {
		err := d.dev.Sentry.BeginBackgroundPinned(d.bg, 4)
		if err == nil {
			d.bgOn = true
			return "bg-pinned", nil
		}
		if !errors.Is(err, onsoc.ErrIRAMExhausted) {
			return nil, err
		}
		if err := d.dev.Sentry.BeginBackground(d.bg, 128); err != nil {
			return nil, err
		}
		a.f.ctrBgDowngrades.Inc()
		d.bgOn = true
		return "bg-pinned-downgraded", nil
	}
	if err := d.dev.Sentry.BeginBackground(d.bg, 128); err != nil {
		return nil, err
	}
	d.bgOn = true
	return "bg", nil
}

// verifyPage reads the marker line of one page and checks integrity — the
// fleet's benign fault profile must never corrupt data.
func (d *device) verifyPage(base mmu.VirtAddr, pg int, what string) error {
	got := make([]byte, len(d.marker))
	if err := d.dev.SoC.CPU.Load(base+mmu.VirtAddr(pg*mem.PageSize), got); err != nil {
		return fmt.Errorf("fleet: %s page %d unreadable: %v", what, pg, err)
	}
	if !bytes.Equal(got, d.marker) {
		return fmt.Errorf("fleet: %s page %d corrupted", what, pg)
	}
	return nil
}

// sectorPattern derives a deterministic 512-byte payload for a disk write.
func sectorPattern(id int, sec, arg uint64) []byte {
	buf := make([]byte, blockdev.SectorSize)
	h := splitmix64(uint64(id)<<32 ^ sec<<16 ^ arg)
	for i := range buf {
		if i%8 == 0 {
			h = splitmix64(h)
		}
		buf[i] = byte(h >> (8 * (i % 8)))
	}
	return buf
}

// sweep runs the end-of-run confidentiality check on the actor's final
// device: lock it (faults detached first so the lock cannot be interrupted),
// scan the live locked image, then cut power and post-mortem the remanence
// image. Called from the harness goroutine after the actor has exited; the
// registry owner is re-bound here — a deliberate hand-off.
func (a *actor) sweep() {
	if a.d == nil {
		return
	}
	d := a.d
	if d.dead {
		// A quarantined corpse was already post-mortemed at the cut if it
		// was locked; an unlocked corpse is the accepted pre-lock window.
		return
	}
	d.dev.Metrics().BindOwner()
	if d.inj != nil {
		faults.Detach(d.dev.Sentry)
		d.inj = nil
	}
	if d.dev.Kernel.State() == kernel.Unlocked {
		d.dev.Kernel.Lock()
	}
	sc := a.scanner()
	if v := sc.ScanLive(); v != nil {
		a.mu.Lock()
		a.violations = append(a.violations,
			fmt.Sprintf("device %d (sweep): clause %s: %s", a.id, v.Clause, v.Detail))
		a.mu.Unlock()
	}
	d.dev.SoC.PowerCut(0.05, remanence.RoomTempC)
	d.dead, d.wasLockedAtCut = true, true
	a.scanCorpse("post-soak power cut")
}

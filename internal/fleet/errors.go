package fleet

import (
	"context"
	"errors"

	"sentry/internal/aes"
	"sentry/internal/kernel"
	"sentry/internal/onsoc"
)

// Typed sentinel errors for the fleet layer, errors.Is-testable through
// every wrap the retry and actor machinery adds.
var (
	// ErrShed: the request was dropped to relieve a saturated mailbox.
	ErrShed = errors.New("fleet: request shed under load")
	// ErrCircuitOpen: the device's circuit breaker is rejecting requests.
	ErrCircuitOpen = errors.New("fleet: circuit open")
	// ErrQuarantined: the device exhausted its restart budget and was
	// taken out of service; only a fleet restart brings it back.
	ErrQuarantined = errors.New("fleet: device quarantined")
	// ErrDeviceRestarted: a fault unwound the device mid-request and it
	// was rebooted through the cold-boot path; the request did not
	// complete (or completed partially and was rolled over by the boot).
	ErrDeviceRestarted = errors.New("fleet: device restarted mid-request")
	// ErrShutdown: the fleet is stopping and no longer accepts requests.
	ErrShutdown = errors.New("fleet: fleet shut down")
	// ErrUnknownDevice: no device with that id is hosted here.
	ErrUnknownDevice = errors.New("fleet: unknown device")
	// ErrOverload: admission control rejected the request at the front door
	// — the fleet is at its configured inflight limit. Retryable from the
	// caller's side (after easing off), but Do itself never retries it:
	// shedding fast under overload is the point.
	ErrOverload = errors.New("fleet: overloaded")
)

// errSlotMoved is the internal signal that a live reshard re-homed a slot
// between resolution and acquisition; Do re-resolves and retries without
// charging an attempt. It never escapes the fleet package.
var errSlotMoved = errors.New("fleet: slot re-homed by reshard")

// Transient classifies an error as worth retrying: the failure is a state
// the device can leave on its own (locked screen, open breaker, a reboot in
// progress, momentary memory pressure). Everything else — wrong PIN,
// quarantine, shutdown, exhausted deadlines, and any error the classifier
// does not recognise — is permanent: retrying what we don't understand only
// amplifies load.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, kernel.ErrBadPIN),
		errors.Is(err, ErrQuarantined),
		errors.Is(err, ErrShutdown),
		errors.Is(err, ErrUnknownDevice),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, kernel.ErrLocked),
		errors.Is(err, ErrShed),
		errors.Is(err, ErrOverload),
		errors.Is(err, ErrCircuitOpen),
		errors.Is(err, ErrDeviceRestarted),
		errors.Is(err, onsoc.ErrIRAMExhausted),
		errors.Is(err, kernel.ErrNoMemory):
		return true
	}
	// A countermeasure-detected computation fault is fail-safe by design:
	// the ciphertext was withheld and the engine rekeys, so the right move
	// is to retry the request — never to count it as a confidentiality
	// violation or quarantine the device.
	var fd *aes.FaultDetectedError
	if errors.As(err, &fd) {
		return true
	}
	return false
}

// Permanent reports the complement of Transient for non-nil errors.
func Permanent(err error) bool { return err != nil && !Transient(err) }

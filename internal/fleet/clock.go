package fleet

import (
	"sync"
	"time"
)

// Clock is the host-time source the fleet's robustness machinery (backoff
// sleeps, breaker cooldowns, watchdog scans) runs on. It is host time, not
// simulated time — sim.Clock measures cycles inside one device; this Clock
// paces goroutines around many. Production uses Wall; tests inject a
// FakeClock so every transition is exercised without a single wall sleep.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// Wall is the real-time clock.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced Clock. Time moves only through Advance,
// which fires every timer that has come due. All methods are safe for
// concurrent use.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a FakeClock. It starts at a nonzero instant so that
// code using UnixNano()==0 as an "unset" sentinel keeps working under it.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000, 0)}
}

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that receives once Advance has moved the clock at
// least d past now. Non-positive d fires immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, fakeTimer{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d and fires every timer now due.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, t := range c.timers {
		if t.at.After(c.now) {
			kept = append(kept, t)
		} else {
			t.ch <- c.now // buffered; never blocks
		}
	}
	c.timers = kept
}

// Pending reports how many timers are waiting to fire.
func (c *FakeClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

package fleet

import (
	"errors"
	"testing"
	"time"
)

// The full state machine on a fake clock: closed → open on failure rate,
// open → half-open after the cooldown, half-open → closed on probe success.
// Not a single wall-clock sleep anywhere.
func TestBreakerLifecycle(t *testing.T) {
	clk := NewFakeClock()
	b := NewBreaker(BreakerConfig{
		Window: 4, MinSamples: 4, FailureRate: 0.5,
		OpenFor: 100 * time.Millisecond, HalfOpenProbes: 2,
	}, clk)

	if b.State() != BreakerClosed {
		t.Fatalf("new breaker state = %v, want closed", b.State())
	}

	// Below MinSamples nothing trips, however bad the early outcomes.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow #%d: %v", i, err)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("tripped below MinSamples: %v", b.State())
	}

	// Fourth failure fills the window at 100% failure rate: trip.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 4 failures = %v, want open", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	// Open rejects until the cooldown elapses.
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open Allow = %v, want ErrCircuitOpen", err)
	}
	clk.Advance(99 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow 1ms early = %v, want ErrCircuitOpen", err)
	}
	clk.Advance(time.Millisecond)

	// Cooldown done: half-open admits exactly HalfOpenProbes probes.
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe rejected: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("third probe admitted past HalfOpenProbes: %v", err)
	}

	// Both probes succeed: re-close with a clean window.
	b.Record(true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("re-closed after one of two probes: %v", b.State())
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe successes = %v, want closed", b.State())
	}

	// The window restarted clean: MinSamples failures are needed again.
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("window not cleared on re-close")
	}
}

// A failed probe re-opens immediately and restarts the cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := NewFakeClock()
	b := NewBreaker(BreakerConfig{
		Window: 2, MinSamples: 2, FailureRate: 0.5,
		OpenFor: 50 * time.Millisecond, HalfOpenProbes: 2,
	}, clk)

	b.Record(false)
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("not open after window of failures")
	}
	clk.Advance(50 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record(false) // probe failed
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
	// The cooldown restarted at the re-trip.
	clk.Advance(49 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("cooldown did not restart on re-trip")
	}
	clk.Advance(time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after restarted cooldown rejected: %v", err)
	}
}

// The sliding window evicts oldest outcomes, so old failures age out.
func TestBreakerWindowEviction(t *testing.T) {
	clk := NewFakeClock()
	b := NewBreaker(BreakerConfig{
		Window: 2, MinSamples: 2, FailureRate: 1.0,
		OpenFor: time.Minute, HalfOpenProbes: 1,
	}, clk)

	b.Record(false)
	b.Record(true) // window [fail ok] → 50% < 100%
	if b.State() != BreakerClosed {
		t.Fatalf("tripped below rate")
	}
	b.Record(false) // evicts the old fail → [ok fail] → 50%
	if b.State() != BreakerClosed {
		t.Fatalf("eviction not applied")
	}
	b.Record(false) // evicts the ok → [fail fail] → 100% → trip
	if b.State() != BreakerOpen {
		t.Fatalf("did not trip at full failure window")
	}
	// Stragglers from before the trip are ignored while open.
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("straggler Record changed an open breaker")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
		BreakerState(9): "invalid",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestFakeClockAdvance(t *testing.T) {
	clk := NewFakeClock()
	ch := clk.After(10 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	clk.Advance(9 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	if clk.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", clk.Pending())
	}
	clk.Advance(time.Millisecond)
	select {
	case <-ch:
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	// Non-positive delays fire immediately.
	select {
	case <-clk.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

package fleet

import (
	"context"
	"sync"
)

// Request priorities. Lower value = more important. Lock/unlock traffic
// rides high (it is what the confidentiality guarantee hangs on), data-path
// ops ride normal, health pings ride low and are the first to go overboard.
const (
	PrioHigh   = 0
	PrioNormal = 1
	PrioLow    = 2
	numPrios   = 3
)

func clampPrio(p int) int {
	if p < PrioHigh || p >= numPrios {
		return PrioNormal
	}
	return p
}

// result is what an actor replies with.
type result struct {
	res Result
	err error
}

// request is one mailbox entry. reply is buffered (capacity 1) so the actor
// never blocks on a caller that gave up.
type request struct {
	op    Op
	ctx   context.Context
	opID  uint64
	reply chan result
}

// mailbox is the bounded, prioritised queue in front of each device actor.
// When full, an incoming request sheds the youngest queued request of the
// lowest priority class below its own; if nothing queued is less important,
// the incoming request itself is shed. Shedding completes the victim with
// ErrShed — callers see a typed, retryable overload signal instead of an
// unbounded queue.
type mailbox struct {
	mu       sync.Mutex
	capacity int
	qs       [numPrios][]*request
	n        int
	closed   error // non-nil once closed; pushes fail with it

	// ready wakes the actor; capacity 1 so signals coalesce.
	ready chan struct{}
}

func newMailbox(capacity int) *mailbox {
	if capacity <= 0 {
		capacity = 32
	}
	return &mailbox{capacity: capacity, ready: make(chan struct{}, 1)}
}

// push enqueues r at prio. It returns ErrShed if r itself was shed, the
// close error after close, and nil otherwise. shedded reports any victim
// request that was dropped to make room (already completed with ErrShed).
func (m *mailbox) push(r *request, prio int) (shedded bool, err error) {
	prio = clampPrio(prio)
	m.mu.Lock()
	if m.closed != nil {
		err := m.closed
		m.mu.Unlock()
		return false, err
	}
	if m.n >= m.capacity {
		victim := m.stealBelow(prio)
		if victim == nil {
			m.mu.Unlock()
			return false, ErrShed
		}
		victim.reply <- result{err: ErrShed}
		shedded = true
	}
	m.qs[prio] = append(m.qs[prio], r)
	m.n++
	m.mu.Unlock()
	select {
	case m.ready <- struct{}{}:
	default:
	}
	return shedded, nil
}

// stealBelow removes and returns the youngest request of the lowest
// priority class strictly below prio, or nil if every queued request is at
// least as important.
func (m *mailbox) stealBelow(prio int) *request {
	for p := numPrios - 1; p > prio; p-- {
		if q := m.qs[p]; len(q) > 0 {
			victim := q[len(q)-1]
			m.qs[p] = q[:len(q)-1]
			m.n--
			return victim
		}
	}
	return nil
}

// pop dequeues the oldest request of the highest non-empty priority, nil
// when empty.
func (m *mailbox) pop() *request {
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := 0; p < numPrios; p++ {
		if q := m.qs[p]; len(q) > 0 {
			r := q[0]
			m.qs[p] = q[1:]
			m.n--
			return r
		}
	}
	return nil
}

// len reports the queued request count.
func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// close marks the mailbox closed (pushes fail with err from now on) and
// returns every still-queued request for the caller to fail.
func (m *mailbox) close(err error) []*request {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = err
	var pending []*request
	for p := 0; p < numPrios; p++ {
		pending = append(pending, m.qs[p]...)
		m.qs[p] = nil
	}
	m.n = 0
	return pending
}

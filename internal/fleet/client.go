package fleet

import (
	"context"
	"errors"
	"fmt"

	"sentry/internal/aes"
	"sentry/internal/kernel"
)

// DeviceID names one logical device in the fleet's 64-bit ID space.
// Placement hashes the ID onto a shard; nothing requires IDs to be dense,
// and an untouched ID costs nothing until its first op.
type DeviceID uint64

// Client is the typed front door of the fleet, implemented by the
// in-process *Fleet and by HTTPClient. Soak harnesses and load generators
// are written against this interface only, so the same workload drives
// either transport unchanged.
type Client interface {
	// Do executes op against device id through the robustness stack
	// (deadline, retries, breaker, admission) and returns the typed result.
	// The Result's OpID is valid even when err is non-nil.
	Do(ctx context.Context, id DeviceID, op Op) (Result, error)
	// Health returns the fleet-level probe summary.
	Health(ctx context.Context) (FleetHealth, error)
	// Ledger returns a copy of device id's sequence ledger (nil for a
	// device that never executed a ledgered op). Meaningful once the device
	// is idle — ordinarily after the workload has drained.
	Ledger(ctx context.Context, id DeviceID) ([]LedgerEntry, error)
	// Close releases the client. For *Fleet it stops the fleet; for remote
	// clients it closes the transport.
	Close() error
}

// Result is the typed outcome of one Do. OpID and Attempts are always set;
// the payload fields are per-OpCode (State for OpPing, Session for
// OpBgBegin/OpBgPinned, Rebooted for OpRebootDrill, Seq for every
// successful ledgered op).
type Result struct {
	OpID     uint64 `json:"op_id"`
	Attempts int    `json:"attempts"`
	// Restarts is the device's fault-restart count observed after the op —
	// a caller can watch a device burn through its budget.
	Restarts int64  `json:"restarts,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
	State    string `json:"state,omitempty"`
	Session  string `json:"session,omitempty"`
	Rebooted bool   `json:"rebooted,omitempty"`
}

// FleetHealth is the fleet-level probe view: population counts rather than
// a per-device dump (at 10^5+ logical devices a per-device list is not a
// health probe, it is a bulk export — use DeviceHealth for one device).
type FleetHealth struct {
	Ready       bool   `json:"ready"`
	Logical     uint64 `json:"logical"`  // configured device population
	Touched     int    `json:"touched"`  // devices that have ever executed
	Resident    int    `json:"resident"` // live actors (hydrated, serving)
	Quarantined int    `json:"quarantined"`
	Stalled     int    `json:"stalled"`
	Shards      int    `json:"shards"`
}

// Error codes for the HTTP boundary: every typed error the fleet can
// return maps to a stable string code, and the HTTP client maps codes back
// to the same sentinels — errors.Is works identically on both transports.
const (
	CodeOK            = "ok"
	CodeBadPIN        = "bad_pin"
	CodeLocked        = "locked"
	CodeQuarantined   = "quarantined"
	CodeRestarted     = "restarted"
	CodeShed          = "shed"
	CodeOverload      = "overload"
	CodeCircuitOpen   = "circuit_open"
	CodeDeadline      = "deadline"
	CodeCanceled      = "canceled"
	CodeShutdown      = "shutdown"
	CodeUnknownDevice = "unknown_device"
	// CodeFaultDetected: a cipher countermeasure caught a computation fault
	// and withheld the ciphertext (aes.FaultDetectedError). Transient — the
	// device rekeys and the request is safe to retry.
	CodeFaultDetected = "fault_detected"
	CodeOther         = "other"
)

// ErrorCode buckets an error into its wire code, most specific first.
// "ok" for nil.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, kernel.ErrBadPIN):
		return CodeBadPIN
	case errors.Is(err, ErrQuarantined):
		return CodeQuarantined
	case errors.Is(err, ErrDeviceRestarted):
		return CodeRestarted
	case errors.Is(err, ErrShed):
		return CodeShed
	case errors.Is(err, ErrOverload):
		return CodeOverload
	case errors.Is(err, ErrCircuitOpen):
		return CodeCircuitOpen
	case errors.Is(err, kernel.ErrLocked):
		return CodeLocked
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, ErrShutdown):
		return CodeShutdown
	case errors.Is(err, ErrUnknownDevice):
		return CodeUnknownDevice
	default:
		var fd *aes.FaultDetectedError
		if errors.As(err, &fd) {
			return CodeFaultDetected
		}
		return CodeOther
	}
}

// ErrorForCode reconstructs a typed error from its wire code and message:
// the returned error wraps the sentinel ErrorCode would bucket it into, so
// a remote failure satisfies the same errors.Is checks as a local one.
// Returns nil for CodeOK or an empty code.
func ErrorForCode(code, msg string) error {
	if code == "" || code == CodeOK {
		return nil
	}
	if code == CodeFaultDetected {
		// Reconstruct a typed fault-detection error (the countermeasure and
		// block index stay in the message): errors.As matches it, so the
		// classifier sees it as transient on both transports.
		if msg == "" {
			msg = code
		}
		return fmt.Errorf("fleet: remote: %s: %w", msg, &aes.FaultDetectedError{})
	}
	sentinel := map[string]error{
		CodeBadPIN:        kernel.ErrBadPIN,
		CodeLocked:        kernel.ErrLocked,
		CodeQuarantined:   ErrQuarantined,
		CodeRestarted:     ErrDeviceRestarted,
		CodeShed:          ErrShed,
		CodeOverload:      ErrOverload,
		CodeCircuitOpen:   ErrCircuitOpen,
		CodeDeadline:      context.DeadlineExceeded,
		CodeCanceled:      context.Canceled,
		CodeShutdown:      ErrShutdown,
		CodeUnknownDevice: ErrUnknownDevice,
	}[code]
	if sentinel == nil {
		return fmt.Errorf("fleet: remote error (%s): %s", code, msg)
	}
	if msg == "" {
		msg = code
	}
	return fmt.Errorf("fleet: remote: %s: %w", msg, sentinel)
}

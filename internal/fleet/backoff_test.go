package fleet

import (
	"testing"
	"time"
)

// Delay must be a pure function of (policy, opID, attempt): no wall clock,
// no shared RNG — the whole retry schedule replays identically for a seed.
func TestBackoffDeterministic(t *testing.T) {
	b := DefaultBackoff(42)
	for opID := uint64(1); opID <= 50; opID++ {
		for attempt := 1; attempt <= 6; attempt++ {
			d1 := b.Delay(opID, attempt)
			d2 := b.Delay(opID, attempt)
			if d1 != d2 {
				t.Fatalf("Delay(%d,%d) not deterministic: %v vs %v", opID, attempt, d1, d2)
			}
		}
	}
}

func TestBackoffJitterDecorrelates(t *testing.T) {
	b := DefaultBackoff(42)
	// Different ops at the same attempt must not all back off in lockstep —
	// that is the thundering herd jitter exists to break.
	seen := map[time.Duration]bool{}
	for opID := uint64(1); opID <= 20; opID++ {
		seen[b.Delay(opID, 3)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter too correlated: %d distinct delays across 20 ops", len(seen))
	}
	// And a different seed must produce a different schedule.
	b2 := DefaultBackoff(43)
	diff := 0
	for opID := uint64(1); opID <= 20; opID++ {
		if b.Delay(opID, 2) != b2.Delay(opID, 2) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed does not influence the schedule")
	}
}

func TestBackoffExponentialGrowthAndCap(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 100 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 16 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(7, i+1); got != w {
			t.Fatalf("attempt %d: got %v want %v", i+1, got, w)
		}
	}
	if got := b.Delay(7, 30); got != 100*time.Millisecond {
		t.Fatalf("attempt 30: got %v, want cap 100ms", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5, Seed: 9}
	for opID := uint64(1); opID <= 200; opID++ {
		for attempt := 1; attempt <= 5; attempt++ {
			exp := float64(10*time.Millisecond) * float64(int(1)<<uint(attempt-1))
			got := float64(b.Delay(opID, attempt))
			if got < exp*0.5 || got >= exp {
				t.Fatalf("Delay(%d,%d)=%v outside [%v, %v)", opID, attempt,
					time.Duration(got), time.Duration(exp*0.5), time.Duration(exp))
			}
		}
	}
}

func TestBackoffZeroValueUsable(t *testing.T) {
	var b Backoff // all defaults applied inside Delay
	if got := b.Delay(1, 1); got <= 0 || got > 100*time.Millisecond {
		t.Fatalf("zero-value Delay(1,1)=%v, want (0, 100ms]", got)
	}
	if got := b.Delay(1, 0); got != b.Delay(1, 1) {
		t.Fatalf("attempt<1 should clamp to 1: %v vs %v", b.Delay(1, 0), b.Delay(1, 1))
	}
}

func TestUnitFloatRange(t *testing.T) {
	for i := uint64(0); i < 2000; i++ {
		u := unitFloat(i, i*7, i*13)
		if u < 0 || u >= 1 {
			t.Fatalf("unitFloat out of [0,1): %v", u)
		}
	}
}

package fleet

import "fmt"

// Live resharding. The consistent-hash ring is append-only: growing from m
// to n shards keeps every existing vnode and adds vnodes for shards m..n-1,
// so ownership changes only for keys whose nearest vnode is now one of the
// new shards — movers always go old→new, never old→old. Reshard exploits
// that stability: it publishes the grown topology first (new requests route
// to the new owners and pull slots over on demand), then proactively drains
// the ceded keyspace, then republishes with the previous topology unlinked.
//
// A slot — the persistent identity of a device: ledger, sequence counter,
// breaker, restart accounting, parked snapshot — lives in exactly one shard
// table at every instant (migrateOne moves it under both shard locks), and
// only parked slots move: a resident mover is force-parked first, draining
// its in-flight request. Since a park/hydrate cycle is byte-invisible by the
// snapshot soundness contract, a reshard mid-soak produces reports
// byte-identical to a run without it.

// topology is the fleet's routing state: the consistent-hash ring and the
// shard table it indexes. While a reshard is draining, prev links the
// topology being replaced so lookups that miss at the new owner know where
// to pull the slot from; the final republish clears it.
type topology struct {
	ring   *ring
	shards []*shard
	prev   *topology
}

// resolve maps id to its owning shard and slot under the current topology,
// creating the slot on first touch. During a live reshard it routes to the
// new owner and pulls a mover's slot across from the previous owner instead
// of creating a duplicate identity.
func (f *Fleet) resolve(id DeviceID) (*shard, *slot) {
	for {
		top := f.top.Load()
		sh := top.shards[top.ring.owner(id)]
		sh.mu.Lock()
		if sl := sh.slots[id]; sl != nil {
			sh.mu.Unlock()
			return sh, sl
		}
		sh.mu.Unlock()
		if top.prev != nil {
			if old := top.prev.shards[top.prev.ring.owner(id)]; old != sh {
				if sl := f.migrateOne(old, sh, id); sl != nil {
					return sh, sl
				}
				// Nothing to pull: either never touched (create below) or
				// another migration won the race (the re-check finds it).
			}
		}
		sh.mu.Lock()
		if sl := sh.slots[id]; sl != nil {
			sh.mu.Unlock()
			return sh, sl
		}
		if f.top.Load() != top {
			// The topology moved while we held a possibly stale owner;
			// re-resolve so a reshard in flight never sees two slots for
			// one device.
			sh.mu.Unlock()
			continue
		}
		sl := &slot{id: id, brk: NewBreaker(f.opt.Breaker, f.clock)}
		sh.slots[id] = sl
		sh.mu.Unlock()
		return sh, sl
	}
}

// migrateOne moves device id's slot from its previous owner old to its new
// owner sh, force-parking a resident mover first. Movers always go from an
// original shard to a newly added one, so the nested old-then-new lock
// order is globally consistent. Returns the slot once it lives in sh, nil
// when old holds no slot for id (untouched device, or already migrated) or
// the fleet stopped mid-wait.
func (f *Fleet) migrateOne(old, sh *shard, id DeviceID) *slot {
	for {
		if f.stopped.Load() {
			return nil
		}
		old.mu.Lock()
		sl := old.slots[id]
		if sl == nil {
			old.mu.Unlock()
			return nil
		}
		switch sl.state {
		case slotParked:
			sh.mu.Lock()
			delete(old.slots, id)
			sh.slots[id] = sl
			sh.mu.Unlock()
			old.mu.Unlock()
			return sl

		case slotParking:
			w := sl.wait
			old.mu.Unlock()
			select {
			case <-w:
			case <-f.stop:
				return nil
			}

		case slotResident:
			if sl.inflight == 0 {
				// Cede the keyspace: park the idle resident mover; its
				// actor completes the hand-off and we retry.
				old.startPark(sl)
				w := sl.wait
				old.mu.Unlock()
				select {
				case <-w:
				case <-f.stop:
					return nil
				}
			} else {
				// Mid-request: wait for the release broadcast.
				old.waiters++
				w := old.notify
				old.mu.Unlock()
				select {
				case <-w:
				case <-f.stop:
				}
				old.mu.Lock()
				old.waiters--
				old.mu.Unlock()
			}
		}
	}
}

// Reshard grows the shard count to n under live traffic. Only the ceded
// keyspace re-parks and re-homes (see the package comment above); devices
// whose owner is unchanged are untouched, and per-device results are
// byte-identical to a run without the reshard. Shrinking is not supported —
// ring stability (movers never land on an existing shard) is what bounds
// the disruption, and it only holds for growth.
func (f *Fleet) Reshard(n int) error {
	f.reshardMu.Lock()
	defer f.reshardMu.Unlock()
	if f.stopped.Load() {
		return ErrShutdown
	}
	cur := f.top.Load()
	if n <= len(cur.shards) {
		return fmt.Errorf("fleet: reshard to %d shards: have %d (grow-only)", n, len(cur.shards))
	}
	if f.opt.ResidentCap > 0 && n > f.opt.ResidentCap {
		return fmt.Errorf("fleet: reshard to %d shards exceeds resident cap %d", n, f.opt.ResidentCap)
	}
	if f.opt.NoSnapshots {
		return fmt.Errorf("fleet: reshard needs snapshots (movers re-park); fleet runs with NoSnapshots")
	}
	shards := make([]*shard, n)
	copy(shards, cur.shards)
	for i := len(cur.shards); i < n; i++ {
		shards[i] = newShard(f, i, 0)
	}
	// Repartition the resident cap before any traffic routes to the new
	// shards; a shard over its shrunken cap evicts naturally on the next
	// acquire.
	for i, sh := range shards {
		sh.mu.Lock()
		sh.cap = shardCap(f.opt.ResidentCap, n, i)
		sh.mu.Unlock()
	}
	next := &topology{ring: newRing(n), shards: shards, prev: cur}
	f.top.Store(next)

	// Proactively drain the ceded keyspace. Lookups migrate lazily too;
	// this pass bounds the window in which prev must stay linked. New mover
	// slots cannot appear in the original shards after the publish (resolve
	// re-checks the topology before creating), so one scan is complete.
	for oi, old := range cur.shards {
		old.mu.Lock()
		var movers []DeviceID
		for id := range old.slots {
			if next.ring.owner(id) != oi {
				movers = append(movers, id)
			}
		}
		old.mu.Unlock()
		for _, id := range movers {
			f.migrateOne(old, shards[next.ring.owner(id)], id)
		}
	}
	f.top.Store(&topology{ring: next.ring, shards: shards})
	return nil
}

package fleet

import "testing"

// Placement is a pure function of (shard count, ID): two rings built for the
// same shard count agree on every owner.
func TestRingDeterministic(t *testing.T) {
	a, b := newRing(8), newRing(8)
	for id := DeviceID(0); id < 10_000; id++ {
		if a.owner(id) != b.owner(id) {
			t.Fatalf("ring not deterministic at id %d: %d vs %d", id, a.owner(id), b.owner(id))
		}
	}
}

// Every owner is a valid shard index, and vnode smoothing keeps the load
// within a reasonable band of uniform for both dense and sparse ID sets.
func TestRingDistribution(t *testing.T) {
	const shards = 8
	r := newRing(shards)
	check := func(name string, ids []DeviceID) {
		t.Helper()
		counts := make([]int, shards)
		for _, id := range ids {
			s := r.owner(id)
			if s < 0 || s >= shards {
				t.Fatalf("%s: owner(%d) = %d out of range", name, id, s)
			}
			counts[s]++
		}
		mean := float64(len(ids)) / shards
		for s, c := range counts {
			if f := float64(c) / mean; f < 0.7 || f > 1.3 {
				t.Errorf("%s: shard %d holds %.2fx the mean load (%d of %d)", name, s, f, c, len(ids))
			}
		}
	}
	dense := make([]DeviceID, 100_000)
	for i := range dense {
		dense[i] = DeviceID(i)
	}
	check("dense", dense)
	sparse := make([]DeviceID, 50_000)
	for i := range sparse {
		sparse[i] = DeviceID(uint64(i) * 0x9e3779b97f4a7c15) // arbitrary 64-bit IDs
	}
	check("sparse", sparse)
}

// Growing the ring remaps only the keyspace ceded to the new shards' vnodes:
// the moved fraction stays near the ideal 1 - old/new, nowhere near the
// "almost everything moves" of modulo placement.
func TestRingStabilityUnderGrowth(t *testing.T) {
	const n = 100_000
	old, grown := newRing(8), newRing(10)
	moved := 0
	for id := DeviceID(0); id < n; id++ {
		o, g := old.owner(id), grown.owner(id)
		if o != g {
			moved++
			// A moved ID must have moved TO a shard, not between old shards
			// more often than vnode boundaries imply; the aggregate bound
			// below is the real assertion.
			_ = g
		}
	}
	frac := float64(moved) / n
	// Ideal is 1 - 8/10 = 0.20; allow slack for vnode granularity, but stay
	// far below the ~0.9 a modulo scheme would show.
	if frac > 0.35 {
		t.Fatalf("growth 8→10 moved %.0f%% of IDs, want ≈20%%", frac*100)
	}
	if frac == 0 {
		t.Fatal("growth moved nothing — ring ignored the new shards")
	}
}

package fleet

import "sort"

// ring places 64-bit device IDs onto shards with a consistent-hash ring of
// virtual nodes. Consistent hashing buys two things over id%shards: IDs
// need not be dense (any 64-bit ID lands somewhere sensible, with vnodes
// smoothing the load to within a few percent of uniform), and placement is
// stable under reconfiguration — growing the shard count remaps only the
// keyspace slices adjacent to the new vnodes instead of reshuffling nearly
// every device, which is what keeps a future resharding operation from
// re-hydrating the whole population at once.
type ring struct {
	hashes []uint64 // sorted vnode positions
	shards []int    // shards[i] owns hashes[i]
}

// vnodesPerShard trades placement smoothness against ring size; 64 vnodes
// keeps the max/mean shard load under ~1.15 while the ring stays a few KB.
const vnodesPerShard = 64

func newRing(shards int) *ring {
	r := &ring{
		hashes: make([]uint64, 0, shards*vnodesPerShard),
		shards: make([]int, 0, shards*vnodesPerShard),
	}
	type vnode struct {
		h     uint64
		shard int
	}
	vns := make([]vnode, 0, shards*vnodesPerShard)
	for s := 0; s < shards; s++ {
		h := splitmix64(uint64(s) + 0x9e3779b97f4a7c15)
		for v := 0; v < vnodesPerShard; v++ {
			h = splitmix64(h)
			vns = append(vns, vnode{h: h, shard: s})
		}
	}
	sort.Slice(vns, func(i, j int) bool { return vns[i].h < vns[j].h })
	for _, vn := range vns {
		r.hashes = append(r.hashes, vn.h)
		r.shards = append(r.shards, vn.shard)
	}
	return r
}

// owner returns the shard owning id: the first vnode clockwise of the ID's
// hash, wrapping at the top of the ring.
func (r *ring) owner(id DeviceID) int {
	h := splitmix64(uint64(id) ^ 0xd1b54a32d192ed03)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.shards[i]
}

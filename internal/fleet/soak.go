package fleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"sentry/internal/faults"
	"sentry/internal/sim"
)

// SoakConfig sizes one chaos-soak run. The run is deterministic for a fixed
// (Devices, OpsPerDevice, Seed, Faults): each device's op stream, fault
// schedule, retries, and ledger are pure functions of the seed — host
// timing moves wall-clock numbers only, never outcomes. Residency knobs
// (ResidentCap, Shards) change memory and scheduling, never the report:
// a park/hydrate cycle is byte-invisible.
type SoakConfig struct {
	Devices      int
	OpsPerDevice int
	Seed         int64
	Faults       string // fault profile name: none, benign, adversarial

	// SqueezeEvery forwards to Options.SqueezeEvery (default 4: every 4th
	// device boots iRAM-starved to exercise graceful degradation).
	SqueezeEvery int
	// OpTimeout is the per-request deadline (default 10s — far above any
	// simulated op, so deadlines never fire on a healthy run and the
	// report stays deterministic).
	OpTimeout time.Duration

	// NoSnapshots forwards to Options.NoSnapshots: reboots re-run the full
	// boot sequence instead of forking the post-boot snapshot.
	NoSnapshots bool

	// NoDelta forwards to Options.NoDelta: evicted devices park as full
	// snapshots instead of deltas against the shared base. Like the
	// residency knobs, it never changes the report, only memory.
	NoDelta bool

	// ResidentCap and Shards forward to the fleet options (RunSoak only —
	// SoakOn drives whatever fleet sits behind its Client). Zero keeps the
	// defaults (unbounded residency, 8 shards).
	ResidentCap int
	Shards      int
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Devices <= 0 {
		c.Devices = 8
	}
	if c.OpsPerDevice <= 0 {
		c.OpsPerDevice = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Faults == "" {
		c.Faults = "benign"
	}
	if c.SqueezeEvery == 0 {
		c.SqueezeEvery = 4
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 10 * time.Second
	}
	return c
}

// DeviceSoak is one device's slice of the soak report.
type DeviceSoak struct {
	ID           int    `json:"id"`
	Ops          int    `json:"ops"`
	OK           int    `json:"ok"`
	Failed       int    `json:"failed"`
	Boots        int64  `json:"boots"`
	Restarts     int64  `json:"restarts"`
	Quarantined  bool   `json:"quarantined"`
	LedgerLen    int    `json:"ledger_len"`
	LastSeq      uint64 `json:"last_seq"`
	LedgerDigest string `json:"ledger_digest"`
}

// SoakReport is the JSON soak report (sentrybench -fleet-soak emits it).
// The fleet-side counter block is filled by RunSoak (which owns the fleet);
// a SoakOn report over a remote Client carries only the client-visible
// fields — identically zero on both sides of a determinism diff.
type SoakReport struct {
	Devices      int    `json:"devices"`
	OpsPerDevice int    `json:"ops_per_device"`
	Seed         int64  `json:"seed"`
	Profile      string `json:"profile"`

	OpsAttempted     uint64 `json:"ops_attempted"`
	OpsOK            uint64 `json:"ops_ok"`
	OpsFailed        uint64 `json:"ops_failed"`
	Retries          uint64 `json:"retries"`
	Execs            uint64 `json:"execs"`
	Sheds            uint64 `json:"sheds"`
	Restarts         uint64 `json:"restarts"`
	Quarantines      uint64 `json:"quarantines"`
	RecoveryReboots  uint64 `json:"recovery_reboots"`
	RebootDrills     uint64 `json:"reboot_drills"`
	CryptoDowngrades uint64 `json:"crypto_downgrades"`
	BgDowngrades     uint64 `json:"bg_downgrades"`
	BreakerTrips     uint64 `json:"breaker_trips"`
	Stalls           uint64 `json:"stalls"`

	// Amplification is executed requests per client op — the retry
	// amplification factor, hard-bounded by MaxAttempts.
	Amplification float64 `json:"amplification"`

	FailuresByClass map[string]uint64 `json:"failures_by_class"`
	PerDevice       []DeviceSoak      `json:"per_device"`

	// Violations are confidentiality-invariant violations found during the
	// run (post-mortems of fault-injected power cuts) and by the final
	// sweep. A correct Sentry under a benign profile yields none.
	Violations []string `json:"violations"`
	// Problems are failed soak assertions (ledger gaps/dups, untraceable
	// quarantines, unbounded amplification). Empty means the run passed.
	Problems []string `json:"problems"`
}

// Passed reports whether the soak met every assertion.
func (r *SoakReport) Passed() bool {
	return len(r.Problems) == 0 && len(r.Violations) == 0
}

type clientRec struct {
	opID  uint64
	code  OpCode
	ok    bool
	class string
}

// driveSoak runs the soak workload against any Client: Devices concurrent
// clients (one per device, serial per device) each submit OpsPerDevice
// seeded random ops and record what they observed.
func driveSoak(c Client, cfg SoakConfig) [][]clientRec {
	recs := make([][]clientRec, cfg.Devices)
	var wg sync.WaitGroup
	for id := 0; id < cfg.Devices; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := sim.NewRNG(int64(splitmix64(uint64(cfg.Seed)^uint64(id)<<24) >> 1))
			out := make([]clientRec, 0, cfg.OpsPerDevice)
			for i := 0; i < cfg.OpsPerDevice; i++ {
				op := genOp(rng)
				ctx, cancel := context.WithTimeout(context.Background(), cfg.OpTimeout)
				res, err := c.Do(ctx, DeviceID(id), op)
				cancel()
				out = append(out, clientRec{opID: res.OpID, code: op.Code, ok: err == nil, class: ErrorCode(err)})
			}
			recs[id] = out
		}(id)
	}
	wg.Wait()
	return recs
}

// clientReport builds the client-visible half of the soak report: per-op
// outcomes, failure classes, and the per-device ledger audit, all through
// the Client interface only.
func clientReport(c Client, cfg SoakConfig, recs [][]clientRec) *SoakReport {
	rep := &SoakReport{
		Devices:         cfg.Devices,
		OpsPerDevice:    cfg.OpsPerDevice,
		Seed:            cfg.Seed,
		Profile:         cfg.Faults,
		OpsAttempted:    uint64(cfg.Devices * cfg.OpsPerDevice),
		FailuresByClass: make(map[string]uint64),
	}
	for id := 0; id < cfg.Devices; id++ {
		ledger, err := c.Ledger(context.Background(), DeviceID(id))
		if err != nil {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("device %d: ledger fetch failed: %v", id, err))
		}
		ds := DeviceSoak{ID: id, Ops: len(recs[id]), LedgerLen: len(ledger)}
		for _, r := range recs[id] {
			if r.ok {
				ds.OK++
				rep.OpsOK++
			} else {
				ds.Failed++
				rep.OpsFailed++
				rep.FailuresByClass[r.class]++
			}
		}
		for _, e := range ledger {
			if e.Seq > ds.LastSeq {
				ds.LastSeq = e.Seq
			}
		}
		ds.LedgerDigest = digestLedger(ledger)
		rep.PerDevice = append(rep.PerDevice, ds)
		rep.Problems = append(rep.Problems, auditLedger(id, ledger, recs[id])...)
	}
	return rep
}

// SoakOn drives the soak workload through any Client — the in-process
// *Fleet or an HTTPClient against a remote sentryd — and returns the
// client-visible report. It does not stop the fleet and cannot run the
// confidentiality sweep or fleet-counter assertions; RunSoak layers those
// on for the in-process case. Two SoakOn runs against equal fleets (same
// seed, any residency configuration) produce byte-identical reports.
func SoakOn(c Client, cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.withDefaults()
	if _, ok := faults.ByName(cfg.Faults); !ok {
		return nil, fmt.Errorf("fleet: unknown fault profile %q", cfg.Faults)
	}
	recs := driveSoak(c, cfg)
	rep := clientReport(c, cfg, recs)
	sort.Strings(rep.Problems)
	return rep, nil
}

// RunSoak drives a full chaos soak in-process: it opens a fleet, runs the
// SoakOn workload against it, then stops the fleet, sweeps every device for
// confidentiality violations, and audits the fleet-side counters the Client
// interface cannot see (boots, quarantine causes, retry amplification).
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.withDefaults()
	prof, ok := faults.ByName(cfg.Faults)
	if !ok {
		return nil, fmt.Errorf("fleet: unknown fault profile %q", cfg.Faults)
	}
	opts := []Option{
		WithSeed(cfg.Seed),
		WithFaults(prof),
		WithSqueezeEvery(cfg.SqueezeEvery),
		WithShards(nonZero(cfg.Shards, 8)),
		WithResidentCap(cfg.ResidentCap),
	}
	if cfg.NoSnapshots {
		opts = append(opts, WithNoSnapshots())
	}
	if cfg.NoDelta {
		opts = append(opts, WithNoDelta())
	}
	f := Open(cfg.Devices, opts...)

	recs := driveSoak(f, cfg)
	f.Stop()
	violations := f.SweepConfidentiality()
	sort.Strings(violations)

	rep := clientReport(f, cfg, recs)
	rep.Retries = f.reg.CounterValue(MetricRetries)
	rep.Execs = f.reg.CounterValue(MetricExecs)
	rep.Sheds = f.reg.CounterValue(MetricSheds)
	rep.Restarts = f.reg.CounterValue(MetricRestarts)
	rep.Quarantines = f.reg.CounterValue(MetricQuarantines)
	rep.RecoveryReboots = f.reg.CounterValue(MetricRecoveryReboots)
	rep.RebootDrills = f.reg.CounterValue(MetricRebootDrills)
	rep.CryptoDowngrades = f.reg.CounterValue(MetricCryptoDowngrades)
	rep.BgDowngrades = f.reg.CounterValue(MetricBgDowngrades)
	rep.BreakerTrips = f.BreakerTrips()
	rep.Stalls = f.reg.CounterValue(MetricStalls)
	rep.Violations = violations
	if rep.OpsAttempted > 0 {
		rep.Amplification = float64(rep.Execs) / float64(rep.OpsAttempted)
	}
	if ok := f.reg.CounterValue(MetricOpsOK); ok != rep.OpsOK {
		rep.Problems = append(rep.Problems,
			fmt.Sprintf("fleet counter ops_ok=%d disagrees with client-observed %d", ok, rep.OpsOK))
	}

	for i := range rep.PerDevice {
		ds := &rep.PerDevice[i]
		h := f.DeviceHealth(DeviceID(ds.ID))
		ds.Boots = h.Boots
		ds.Restarts = h.Restarts
		ds.Quarantined = h.Quarantined
		if ds.Quarantined {
			rep.Problems = append(rep.Problems,
				auditQuarantine(ds.ID, int64(f.opt.RestartBudget), f.RestartCauses(DeviceID(ds.ID)))...)
		}
	}

	// Bounded retry amplification: the execution layer can never see more
	// than MaxAttempts tries per client op.
	if rep.Execs > rep.OpsAttempted*uint64(f.opt.MaxAttempts) {
		rep.Problems = append(rep.Problems,
			fmt.Sprintf("retry amplification unbounded: %d execs for %d ops (max attempts %d)",
				rep.Execs, rep.OpsAttempted, f.opt.MaxAttempts))
	}
	sort.Strings(rep.Problems)
	return rep, nil
}

func nonZero(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}

// genOp draws one operation from the soak mix.
func genOp(rng *sim.RNG) Op {
	r := rng.Intn(100)
	arg := uint64(rng.Intn(1 << 16))
	switch {
	case r < 5:
		return Op{Code: OpPing, Arg: arg, Prio: PrioLow}
	case r < 20:
		return Op{Code: OpLock, Arg: arg, Prio: PrioHigh}
	case r < 40:
		return Op{Code: OpUnlock, Arg: arg, Prio: PrioHigh}
	case r < 43:
		return Op{Code: OpBadPIN, Arg: arg, Prio: PrioHigh}
	case r < 60:
		return Op{Code: OpTouch, Arg: arg, Prio: PrioNormal}
	case r < 67:
		return Op{Code: OpBgBegin, Arg: arg, Prio: PrioNormal}
	case r < 75:
		return Op{Code: OpBgTouch, Arg: arg, Prio: PrioNormal}
	case r < 80:
		return Op{Code: OpBgPinned, Arg: arg, Prio: PrioNormal}
	case r < 88:
		return Op{Code: OpDiskWrite, Arg: arg, Prio: PrioNormal}
	case r < 96:
		return Op{Code: OpDiskRead, Arg: arg, Prio: PrioNormal}
	default:
		return Op{Code: OpRebootDrill, Arg: arg, Prio: PrioNormal}
	}
}

// auditLedger checks one device's sequence ledger against the client's
// record: no lost successes, no duplicated successes, contiguous sequence
// numbers.
func auditLedger(id int, ledger []LedgerEntry, recs []clientRec) []string {
	var problems []string
	succByOp := make(map[uint64]int)
	var lastSeq uint64
	for _, e := range ledger {
		if e.Seq == 0 {
			continue
		}
		succByOp[e.OpID]++
		if e.Seq != lastSeq+1 {
			problems = append(problems,
				fmt.Sprintf("device %d: ledger seq gap: %d after %d (op %d)", id, e.Seq, lastSeq, e.OpID))
		}
		lastSeq = e.Seq
	}
	for opID, n := range succByOp {
		if n > 1 {
			problems = append(problems,
				fmt.Sprintf("device %d: op %d succeeded %d times (duplicated)", id, opID, n))
		}
	}
	clientSuccess := make(map[uint64]bool)
	for _, r := range recs {
		if r.code == OpPing {
			continue // pings are not ledgered
		}
		if r.ok {
			clientSuccess[r.opID] = true
			if succByOp[r.opID] != 1 {
				problems = append(problems,
					fmt.Sprintf("device %d: client saw op %d (%s) succeed but ledger has %d successful entries (lost?)",
						id, r.opID, r.code, succByOp[r.opID]))
			}
		}
	}
	for opID := range succByOp {
		if !clientSuccess[opID] {
			problems = append(problems,
				fmt.Sprintf("device %d: ledger success for op %d the client never saw (orphaned)", id, opID))
		}
	}
	return problems
}

// auditQuarantine demands that a quarantine be traceable to injected
// faults: more recorded causes than the restart budget allows, every one an
// injected power loss (or a deliberate test panic).
func auditQuarantine(id int, budget int64, causes []string) []string {
	var problems []string
	if int64(len(causes)) <= budget {
		problems = append(problems,
			fmt.Sprintf("device %d: quarantined with only %d recorded causes (budget %d)", id, len(causes), budget))
	}
	for _, c := range causes {
		if !strings.HasPrefix(c, "fault: ") && !strings.HasPrefix(c, "panic: ") {
			problems = append(problems,
				fmt.Sprintf("device %d: quarantine cause not traceable to an injected fault: %q", id, c))
		}
	}
	return problems
}

// digestLedger fingerprints a ledger for cross-run determinism checks.
func digestLedger(ledger []LedgerEntry) string {
	h := fnv.New64a()
	for _, e := range ledger {
		fmt.Fprintf(h, "%d|%d|%d|%s\n", e.OpID, e.Code, e.Seq, e.Err)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

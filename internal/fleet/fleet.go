// Package fleet is the service layer over the simulator: it hosts a large
// population of simulated Sentry devices — up to 10^6 logical devices in
// one process — behind a sharded, admission-controlled front door, one
// single-goroutine actor per *resident* device, preserving the simulation's
// single-owner contract (each device's sim.Clock, sim.RNG, and obs
// instruments are touched by exactly one goroutine — enforced by the obs
// owner guard in debug and race builds).
//
// Scale comes from three mechanisms:
//
//   - consistent-hash sharding: 64-bit device IDs hash onto shard managers
//     (no dense actor array), so the ID space is sparse and an untouched
//     device costs nothing;
//   - lazy hydration/eviction: each shard keeps a bounded LRU of resident
//     actors. An idle device is parked back to a per-device snapshot (its
//     ledger, sequence counter, and restart accounting stay on the slot)
//     and re-hydrated by fork on its next op — byte-identical to having
//     stayed resident, by the snapshot soundness contract;
//   - admission control: a fleet-wide inflight token limit sheds excess
//     load at the front door with a typed ErrOverload instead of queueing
//     without bound.
//
// Around the actors sits the robustness stack carried over from the
// 32-device fleet: per-request deadlines, classified retries with seeded
// backoff, per-device circuit breakers, supervised restarts with a
// quarantine budget, graceful degradation under iRAM pressure, and a
// stalled-actor watchdog — all reporting through an obs.Registry.
//
// The typed front door is the Client interface (Do/Health/Ledger/Close),
// implemented by *Fleet in-process and by HTTPClient over the sentryd
// serving API, so harnesses run unchanged against either transport.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sentry"
	"sentry/internal/faults"
	"sentry/internal/obs"
	"sentry/internal/snapshot"
)

// Registry names of the fleet's metrics.
const (
	MetricOpsOK            = "fleet.ops_ok"
	MetricOpsFailed        = "fleet.ops_failed"
	MetricRetries          = "fleet.retries"
	MetricSheds            = "fleet.sheds"
	MetricExecs            = "fleet.execs"
	MetricRestarts         = "fleet.restarts"
	MetricQuarantines      = "fleet.quarantines"
	MetricRecoveryReboots  = "fleet.recovery_reboots"
	MetricRebootDrills     = "fleet.reboot_drills"
	MetricCryptoDowngrades = "fleet.crypto_downgrades"
	MetricBgDowngrades     = "fleet.bg_downgrades"
	MetricStalls           = "fleet.stalls"
	// Residency and admission metrics. Parks/hydrations are wall-clock
	// phenomena (eviction timing depends on host scheduling), so they are
	// deliberately excluded from the deterministic soak report.
	MetricParks      = "fleet.parks"
	MetricHydrations = "fleet.hydrations"
	MetricOverloads  = "fleet.overloads"
	MetricResident   = "fleet.resident"
	// MetricParkedBytes is the estimated resting cost of every parked
	// snapshot currently retained, in bytes — delta-encoded parks charge
	// only their divergence from the shared base. Updated at each park, so
	// it reports resting cost as of the last park of each device.
	MetricParkedBytes = "fleet.parked_bytes"
)

// Options is the resolved configuration of a Fleet. Construct a fleet with
// Open and functional options; Options remains exported as the resolved
// form (and for the deprecated New).
type Options struct {
	Devices int   // logical device population (IDs [0, Devices))
	Seed    int64
	PIN     string // unlock PIN for every device (default "4321")

	// Shards is the shard-manager count (default 8). Placement of device
	// IDs onto shards is consistent-hashed and never affects results, only
	// lock contention.
	Shards int
	// ResidentCap bounds live actors fleet-wide (default 0: unbounded).
	// When set, each shard holds ResidentCap/Shards seats (min 1) and
	// evicts its least-recently-used idle actor to admit a parked device.
	ResidentCap int
	// MaxInflight is the admission-control token count (default 0:
	// unbounded). Requests beyond it fail fast with ErrOverload.
	MaxInflight int

	MailboxCap  int // per-device queue bound (default 32)
	MaxAttempts int // total tries per request, first included (default 4)

	Backoff *Backoff      // nil → DefaultBackoff(Seed)
	Breaker BreakerConfig // zero fields defaulted per BreakerConfig

	// RestartBudget is how many fault-caused restarts a device absorbs
	// before it is quarantined (default 3). Planned reboots (drills,
	// deep-lock recovery) are not charged.
	RestartBudget int

	// Faults is the per-device fault profile (default none). Each boot
	// gets a fresh injector seeded from the device's boot seed.
	Faults faults.Profile

	// NoSnapshots disables the checkpoint/fork fast paths: every boot
	// re-runs the full deterministic boot sequence instead of forking the
	// fleet's shared post-boot snapshot, and eviction is disabled (there is
	// nothing cheap to hydrate from). Results are identical either way —
	// the same seed replays the same boot — only wall-clock differs. The
	// sentrybench -snapshot=off escape hatch sets it.
	NoSnapshots bool

	// NoDelta parks evicted devices as full snapshots instead of deltas
	// against the shared base world. Results are identical either way (the
	// delta soundness property in internal/check/delta_test.go); only the
	// resting memory cost of a parked device differs. The escape hatch
	// exists for A/B measurement of exactly that cost.
	NoDelta bool

	// DefaultTimeout bounds requests whose context carries no deadline
	// (default 30s) — every request in the system has a deadline.
	DefaultTimeout time.Duration

	Clock         Clock         // default Wall
	StallTimeout  time.Duration // watchdog stall threshold (default 2s)
	WatchdogEvery time.Duration // watchdog scan period (default 250ms)

	// SqueezeEvery squeezes the iRAM of every Nth device (ids N-1, 2N-1,
	// ...) at boot so graceful-degradation paths are exercised; 0 disables.
	SqueezeEvery int

	DiskKB int // encrypted-disk size per device (default 64)

	// testExec, when set, intercepts ops before the device executes them;
	// tests use it to inject stalls, panics, and scripted failures.
	testExec func(a *actor, op Op) (handled bool, res Result, err error)
}

func (o Options) withDefaults() Options {
	if o.Devices <= 0 {
		o.Devices = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PIN == "" {
		o.PIN = "4321"
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.ResidentCap < 0 {
		o.ResidentCap = 0
	}
	if o.NoSnapshots {
		o.ResidentCap = 0 // nothing cheap to hydrate from; keep actors live
	}
	if o.ResidentCap > 0 && o.Shards > o.ResidentCap {
		// Fewer seats than shards: shrink the shard count so the per-shard
		// cap stays a faithful partition of the fleet-wide cap.
		o.Shards = o.ResidentCap
	}
	if o.MailboxCap <= 0 {
		o.MailboxCap = 32
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.RestartBudget <= 0 {
		o.RestartBudget = 3
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.Clock == nil {
		o.Clock = Wall
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 2 * time.Second
	}
	if o.WatchdogEvery <= 0 {
		o.WatchdogEvery = 250 * time.Millisecond
	}
	if o.DiskKB <= 0 {
		o.DiskKB = 64
	}
	return o
}

// Option configures Open, mirroring sentry.Open's functional options.
type Option func(*Options)

// WithSeed sets the fleet simulation seed (default 1).
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithPIN sets the unlock PIN of every hosted device.
func WithPIN(pin string) Option { return func(o *Options) { o.PIN = pin } }

// WithShards sets the shard-manager count.
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithResidentCap bounds live actors fleet-wide; idle devices beyond the
// cap are parked to per-device snapshots and re-hydrated by fork on demand.
func WithResidentCap(n int) Option { return func(o *Options) { o.ResidentCap = n } }

// WithMaxInflight sets the admission-control token count; requests beyond
// it fail fast with ErrOverload.
func WithMaxInflight(n int) Option { return func(o *Options) { o.MaxInflight = n } }

// WithMailboxCap sets the per-device queue bound.
func WithMailboxCap(n int) Option { return func(o *Options) { o.MailboxCap = n } }

// WithMaxAttempts sets the total tries per request (first included).
func WithMaxAttempts(n int) Option { return func(o *Options) { o.MaxAttempts = n } }

// WithBackoff overrides the retry backoff schedule.
func WithBackoff(b Backoff) Option { return func(o *Options) { o.Backoff = &b } }

// WithBreaker overrides the per-device circuit-breaker configuration.
func WithBreaker(cfg BreakerConfig) Option { return func(o *Options) { o.Breaker = cfg } }

// WithRestartBudget sets how many fault-caused restarts a device absorbs
// before quarantine.
func WithRestartBudget(n int) Option { return func(o *Options) { o.RestartBudget = n } }

// WithFaults sets the per-device fault profile.
func WithFaults(p faults.Profile) Option { return func(o *Options) { o.Faults = p } }

// WithNoSnapshots disables the checkpoint/fork fast paths (cold boots,
// no eviction). Results are identical; only wall-clock differs.
func WithNoSnapshots() Option { return func(o *Options) { o.NoSnapshots = true } }

// WithNoDelta parks evicted devices as full snapshots instead of deltas
// against the shared base. Results are identical; only parked memory differs.
func WithNoDelta() Option { return func(o *Options) { o.NoDelta = true } }

// WithDefaultTimeout bounds requests that carry no deadline of their own.
func WithDefaultTimeout(d time.Duration) Option { return func(o *Options) { o.DefaultTimeout = d } }

// WithClock substitutes the time source (tests use a fake).
func WithClock(c Clock) Option { return func(o *Options) { o.Clock = c } }

// WithSqueezeEvery squeezes the iRAM of every Nth device at boot.
func WithSqueezeEvery(n int) Option { return func(o *Options) { o.SqueezeEvery = n } }

// WithDiskKB sets the encrypted-disk size per device.
func WithDiskKB(n int) Option { return func(o *Options) { o.DiskKB = n } }

// Fleet hosts a population of simulated devices behind the sharded
// robustness stack. It implements Client.
type Fleet struct {
	opt   Options
	clock Clock
	bo    Backoff
	reg   *obs.Registry

	// top is the routing topology (consistent-hash ring + shard table),
	// swapped atomically by Reshard; reshardMu serialises reshards.
	top       atomic.Pointer[topology]
	reshardMu sync.Mutex

	admMax      int64
	admInflight atomic.Int64

	// base is the shared post-boot snapshot every device's boot forks:
	// one pristine world per fleet, built lazily by the first boot.
	// baseDev is the same world object, frozen (FreezeBase) so it can also
	// serve as the read-only base delta parks deflate against.
	baseOnce sync.Once
	base     *snapshot.Snapshot[*sentry.Device]
	baseDev  *sentry.Device
	baseErr  error

	stop     chan struct{}
	stopOnce sync.Once
	wdDone   chan struct{}
	stopped  atomic.Bool
	actorWG  sync.WaitGroup

	ctrOpsOK            *obs.Counter
	ctrOpsFailed        *obs.Counter
	ctrRetries          *obs.Counter
	ctrSheds            *obs.Counter
	ctrExecs            *obs.Counter
	ctrRestarts         *obs.Counter
	ctrQuarantines      *obs.Counter
	ctrRecoveries       *obs.Counter
	ctrDrills           *obs.Counter
	ctrCryptoDowngrades *obs.Counter
	ctrBgDowngrades     *obs.Counter
	ctrStalls           *obs.Counter
	ctrParks            *obs.Counter
	ctrHydrations       *obs.Counter
	ctrOverloads        *obs.Counter
	gResident           *obs.Gauge
	gParkedBytes        *obs.Gauge
}

// Open starts a fleet hosting n logical devices. No device boots until its
// first op: a fresh fleet of 10^6 devices is a few shard tables, nothing
// more. Stop it with Close (or Stop).
func Open(n int, opts ...Option) *Fleet {
	o := Options{Devices: n}
	for _, opt := range opts {
		opt(&o)
	}
	return newFleet(o.withDefaults())
}

// New starts a fleet from a resolved Options struct.
//
// Deprecated: use Open(n, opts...). New remains for one release as a thin
// wrapper (and for tests that poke unexported options).
func New(opt Options) *Fleet {
	return newFleet(opt.withDefaults())
}

func newFleet(opt Options) *Fleet {
	f := &Fleet{
		opt:    opt,
		clock:  opt.Clock,
		reg:    obs.NewRegistry(),
		admMax: int64(opt.MaxInflight),
		stop:   make(chan struct{}),
		wdDone: make(chan struct{}),
	}
	if opt.Backoff != nil {
		f.bo = *opt.Backoff
	} else {
		f.bo = DefaultBackoff(uint64(opt.Seed))
	}
	// Resolve every fleet instrument up front, then bind the registry:
	// actors only update resolved counters (atomics, legal from anywhere);
	// any later cross-goroutine wiring is a bug the guard catches.
	f.ctrOpsOK = f.reg.Counter(MetricOpsOK)
	f.ctrOpsFailed = f.reg.Counter(MetricOpsFailed)
	f.ctrRetries = f.reg.Counter(MetricRetries)
	f.ctrSheds = f.reg.Counter(MetricSheds)
	f.ctrExecs = f.reg.Counter(MetricExecs)
	f.ctrRestarts = f.reg.Counter(MetricRestarts)
	f.ctrQuarantines = f.reg.Counter(MetricQuarantines)
	f.ctrRecoveries = f.reg.Counter(MetricRecoveryReboots)
	f.ctrDrills = f.reg.Counter(MetricRebootDrills)
	f.ctrCryptoDowngrades = f.reg.Counter(MetricCryptoDowngrades)
	f.ctrBgDowngrades = f.reg.Counter(MetricBgDowngrades)
	f.ctrStalls = f.reg.Counter(MetricStalls)
	f.ctrParks = f.reg.Counter(MetricParks)
	f.ctrHydrations = f.reg.Counter(MetricHydrations)
	f.ctrOverloads = f.reg.Counter(MetricOverloads)
	f.gResident = f.reg.Gauge(MetricResident)
	f.gParkedBytes = f.reg.Gauge(MetricParkedBytes)
	f.reg.BindOwner()

	shards := make([]*shard, opt.Shards)
	for i := range shards {
		shards[i] = newShard(f, i, shardCap(opt.ResidentCap, opt.Shards, i))
	}
	f.top.Store(&topology{ring: newRing(opt.Shards), shards: shards})
	go f.watchdog()
	return f
}

// shardCap partitions the fleet-wide resident cap across shards, spreading
// the remainder over the low-indexed shards. 0 stays 0 (unbounded).
func shardCap(total, shards, idx int) int {
	if total <= 0 {
		return 0
	}
	c := total / shards
	if idx < total%shards {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// baseSnapshot returns the fleet's shared post-boot world, booting it on
// first use. Every device boot forks this one snapshot, so the marginal
// cost of a new device is fork metadata plus its own workload setup, not a
// full platform boot.
func (f *Fleet) baseSnapshot() (*snapshot.Snapshot[*sentry.Device], error) {
	f.baseOnce.Do(func() {
		sd, err := sentry.Open(sentry.Tegra3, f.opt.PIN, sentry.WithSeed(baseBootSeed(f.opt.Seed)))
		if err != nil {
			f.baseErr = err
			return
		}
		// Freeze the base world: it serves two concurrent roles — the
		// parked snapshot every boot forks (serialised by the snapshot
		// mutex) and the read-only base every delta park deflates against
		// (lock-free reads from parking actors).
		sd.FreezeBase()
		f.baseDev = sd
		f.base = snapshot.Adopt(sd)
	})
	return f.base, f.baseErr
}

// deltaBase returns the frozen world parks deflate against, nil when delta
// parking is off. A park implies a prior boot, so baseDev is published (the
// booting actor's baseOnce.Do happened-before it parked).
func (f *Fleet) deltaBase() *sentry.Device {
	if f.opt.NoDelta || f.opt.NoSnapshots {
		return nil
	}
	return f.baseDev
}

// Metrics returns the fleet's registry.
func (f *Fleet) Metrics() *obs.Registry { return f.reg }

// Devices returns the logical device population.
func (f *Fleet) Devices() int { return f.opt.Devices }

// shardFor returns the shard owning id under the current topology.
func (f *Fleet) shardFor(id DeviceID) *shard {
	top := f.top.Load()
	return top.shards[top.ring.owner(id)]
}

// peek returns id's shard and slot without instantiating the slot. During a
// live reshard a mover that has not been pulled over yet is still found at
// its previous owner (a slot lives in exactly one shard table at all times).
func (f *Fleet) peek(id DeviceID) (*shard, *slot) {
	top := f.top.Load()
	sh := top.shards[top.ring.owner(id)]
	if sl := sh.peekSlot(id); sl != nil {
		return sh, sl
	}
	if top.prev != nil {
		if old := top.prev.shards[top.prev.ring.owner(id)]; old != sh {
			if sl := old.peekSlot(id); sl != nil {
				return old, sl
			}
		}
	}
	return sh, nil
}

// admit takes one admission token; false means the front door is full.
func (f *Fleet) admit() bool {
	if f.admMax <= 0 {
		return true
	}
	for {
		cur := f.admInflight.Load()
		if cur >= f.admMax {
			return false
		}
		if f.admInflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (f *Fleet) unadmit() {
	if f.admMax > 0 {
		f.admInflight.Add(-1)
	}
}

// Do executes op against device id: it takes an admission token, imposes a
// deadline if ctx has none, gates on the device's circuit breaker, and
// retries transient failures with backed-off, deterministically jittered
// delays. The returned Result carries the operation id (the handle the
// device ledger records) even when err is non-nil.
//
// Operation ids are allocated per device ((id+1)<<40 | n), not fleet-wide:
// a device driven by one client at a time then numbers its ops identically
// run after run, regardless of how the other devices' traffic interleaves —
// the property the soak harness's ledger audit and determinism check rest on.
func (f *Fleet) Do(ctx context.Context, id DeviceID, op Op) (Result, error) {
	if uint64(id) >= uint64(f.opt.Devices) {
		f.ctrOpsFailed.Inc()
		return Result{}, fmt.Errorf("fleet: device %d: %w", id, ErrUnknownDevice)
	}
	if f.stopped.Load() {
		f.ctrOpsFailed.Inc()
		return Result{}, fmt.Errorf("fleet: device %d: %w", id, ErrShutdown)
	}
	if !f.admit() {
		f.ctrOverloads.Inc()
		f.ctrOpsFailed.Inc()
		return Result{}, fmt.Errorf("fleet: device %d: inflight limit %d: %w", id, f.admMax, ErrOverload)
	}
	defer f.unadmit()

	sh, sl := f.resolve(id)
	opID := (uint64(id)+1)<<40 | sl.nextOp.Add(1)
	res := Result{OpID: opID}
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.opt.DefaultTimeout)
		defer cancel()
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		if err := ctx.Err(); err != nil {
			f.ctrOpsFailed.Inc()
			return res, err
		}
		r, err := f.try(ctx, sh, sl, op, opID)
		if errors.Is(err, errSlotMoved) {
			// A live reshard re-homed the slot between resolve and acquire;
			// follow it to its new shard without burning an attempt.
			sh, sl = f.resolve(id)
			attempt--
			continue
		}
		res.Restarts = sl.restarts.Load()
		if err == nil {
			r.OpID, r.Attempts, r.Restarts = res.OpID, res.Attempts, res.Restarts
			f.ctrOpsOK.Inc()
			return r, nil
		}
		lastErr = err
		if !Transient(err) {
			f.ctrOpsFailed.Inc()
			return res, err
		}
		if attempt >= f.opt.MaxAttempts {
			break
		}
		f.ctrRetries.Inc()
		select {
		case <-ctx.Done():
			f.ctrOpsFailed.Inc()
			return res, ctx.Err()
		case <-f.clock.After(f.bo.Delay(opID, attempt)):
		}
	}
	f.ctrOpsFailed.Inc()
	return res, fmt.Errorf("fleet: device %d: giving up after %d attempts: %w",
		id, f.opt.MaxAttempts, lastErr)
}

// try is one attempt: quarantine fast-path, breaker gate, residency
// acquisition, actor call, breaker outcome.
func (f *Fleet) try(ctx context.Context, sh *shard, sl *slot, op Op, opID uint64) (Result, error) {
	if sl.quarantined.Load() {
		return Result{}, fmt.Errorf("fleet: device %d: %w", sl.id, ErrQuarantined)
	}
	if err := sl.brk.Allow(); err != nil {
		return Result{}, err
	}
	a, err := sh.acquire(ctx, sl)
	if err != nil {
		return Result{}, err
	}
	defer sh.release(sl)
	r, err := a.call(ctx, op, opID)
	sl.brk.Record(!healthFailure(err))
	return r, err
}

// healthFailure decides which outcomes the breaker counts against the
// device. Domain errors (wrong PIN, locked screen) are healthy responses;
// restarts, quarantines, sheds, and blown deadlines indict the device.
func healthFailure(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrDeviceRestarted) ||
		errors.Is(err, ErrQuarantined) ||
		errors.Is(err, ErrShed) ||
		errors.Is(err, context.DeadlineExceeded)
}

// watchdog periodically scans resident actors stuck inside one request
// longer than the stall threshold.
func (f *Fleet) watchdog() {
	defer close(f.wdDone)
	for {
		select {
		case <-f.stop:
			return
		case <-f.clock.After(f.opt.WatchdogEvery):
		}
		now := f.clock.Now().UnixNano()
		for _, sh := range f.top.Load().shards {
			sh.mu.Lock()
			for sl := sh.lruHead; sl != nil; sl = sl.lruNext {
				since := sl.act.busySince.Load()
				if since != 0 && now-since > int64(f.opt.StallTimeout) {
					if sl.stalled.CompareAndSwap(false, true) {
						f.ctrStalls.Inc()
					}
				} else if since == 0 {
					sl.stalled.Store(false)
				}
			}
			sh.mu.Unlock()
		}
	}
}

// Stop shuts the fleet down: resident actors drain their mailboxes
// (pending requests fail with ErrShutdown) and exit — without parking, so
// their final worlds stay inspectable for the confidentiality sweep — and
// the watchdog exits. Idempotent.
func (f *Fleet) Stop() {
	f.stopOnce.Do(func() {
		f.stopped.Store(true)
		close(f.stop)
		for _, sh := range f.top.Load().shards {
			sh.mu.Lock()
			for _, sl := range sh.slots {
				if sl.act != nil {
					sl.act.wake()
				}
			}
			sh.mu.Unlock()
			sh.wakeWaiters()
		}
		f.actorWG.Wait()
		<-f.wdDone
	})
}

// Close implements Client: it stops the fleet.
func (f *Fleet) Close() error {
	f.Stop()
	return nil
}

// DeviceHealth is one device's probe view.
type DeviceHealth struct {
	ID          DeviceID     `json:"id"`
	Touched     bool         `json:"touched"`
	Resident    bool         `json:"resident"`
	Quarantined bool         `json:"quarantined"`
	Stalled     bool         `json:"stalled"`
	Breaker     BreakerState `json:"-"`
	BreakerStr  string       `json:"breaker"`
	Boots       int64        `json:"boots"`
	Restarts    int64        `json:"restarts"`
	Queue       int          `json:"queue"`
}

// DeviceHealth returns the probe view of one device. An untouched device
// reports Touched=false and a closed breaker.
func (f *Fleet) DeviceHealth(id DeviceID) DeviceHealth {
	h := DeviceHealth{ID: id, BreakerStr: BreakerClosed.String()}
	sh, sl := f.peek(id)
	if sl == nil {
		return h
	}
	st := sl.brk.State()
	h.Touched = true
	h.Quarantined = sl.quarantined.Load()
	h.Stalled = sl.stalled.Load()
	h.Breaker = st
	h.BreakerStr = st.String()
	h.Boots = sl.boots.Load()
	h.Restarts = sl.restarts.Load()
	// The lifecycle fields are guarded by the owning shard's mutex; if a
	// live reshard re-homed the slot since the peek, follow it.
	for {
		sh.mu.Lock()
		if sh.slots[id] == sl {
			h.Resident = sl.state != slotParked
			if sl.act != nil {
				h.Queue = sl.act.mbox.len()
			}
			sh.mu.Unlock()
			return h
		}
		sh.mu.Unlock()
		sh, _ = f.peek(id)
	}
}

// Health implements Client: the fleet-level probe summary.
func (f *Fleet) Health(ctx context.Context) (FleetHealth, error) {
	top := f.top.Load()
	h := FleetHealth{
		Logical: uint64(f.opt.Devices),
		Shards:  len(top.shards),
	}
	for _, sh := range top.shards {
		sh.mu.Lock()
		h.Touched += len(sh.slots)
		h.Resident += sh.resident
		for _, sl := range sh.slots {
			if sl.quarantined.Load() {
				h.Quarantined++
			}
			if sl.stalled.Load() {
				h.Stalled++
			}
		}
		sh.mu.Unlock()
	}
	h.Ready = f.ready(h)
	return h, nil
}

// Ready is the readiness probe: the fleet accepts traffic and has capacity
// to serve — untouched devices remain, or at least one touched device is
// healthy.
func (f *Fleet) Ready() bool {
	h, _ := f.Health(context.Background())
	return h.Ready
}

func (f *Fleet) ready(h FleetHealth) bool {
	if f.stopped.Load() {
		return false
	}
	if uint64(h.Touched) < h.Logical {
		return true
	}
	return h.Quarantined+h.Stalled < h.Touched
}

// Ledger implements Client: a copy of device id's sequence ledger (nil for
// an untouched device). Meaningful once the device is idle (ordinarily
// after Stop or between ops).
func (f *Fleet) Ledger(ctx context.Context, id DeviceID) ([]LedgerEntry, error) {
	if uint64(id) >= uint64(f.opt.Devices) {
		return nil, fmt.Errorf("fleet: device %d: %w", id, ErrUnknownDevice)
	}
	_, sl := f.peek(id)
	if sl == nil {
		return nil, nil
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return append([]LedgerEntry(nil), sl.ledger...), nil
}

// RestartCauses returns the recorded cause of every fault-caused restart
// (and quarantine) of device id.
func (f *Fleet) RestartCauses(id DeviceID) []string {
	_, sl := f.peek(id)
	if sl == nil {
		return nil
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return append([]string(nil), sl.causes...)
}

// BreakerTrips sums breaker trips across touched devices.
func (f *Fleet) BreakerTrips() uint64 {
	var n uint64
	for _, sh := range f.top.Load().shards {
		sh.mu.Lock()
		for _, sl := range sh.slots {
			n += sl.brk.Trips()
		}
		sh.mu.Unlock()
	}
	return n
}

// SweepConfidentiality runs the end-of-run invariant scan on every touched
// device (lock, scan live clauses, cut power, post-mortem clauses) and
// returns all violations recorded during and after the run. Parked devices
// are swept over a fork of their parked snapshot — byte-identical to the
// world they would have presented had they stayed resident. Call only
// after Stop.
func (f *Fleet) SweepConfidentiality() []string {
	if !f.stopped.Load() {
		panic("fleet: SweepConfidentiality before Stop")
	}
	var out []string
	for _, sh := range f.top.Load().shards {
		// Post-Stop: actorWG has drained, states are frozen; sort for a
		// deterministic sweep order.
		ids := make([]DeviceID, 0, len(sh.slots))
		for id := range sh.slots {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			sl := sh.slots[id]
			switch {
			case sl.act != nil && sl.act.d != nil:
				sl.sweep(sl.act.d)
			case sl.parked != nil:
				d := sl.parked.Fork()
				d.dev.Metrics().BindOwner()
				sl.sweep(d)
			}
			sl.mu.Lock()
			out = append(out, sl.violations...)
			sl.mu.Unlock()
		}
	}
	return out
}

// Package fleet is the service layer over the simulator: it hosts N
// simulated Sentry devices concurrently, one single-goroutine actor per
// device, preserving the simulation's single-owner contract (each device's
// sim.Clock, sim.RNG, and obs instruments are touched by exactly one
// goroutine — enforced by the obs owner guard in debug and race builds).
//
// Around the actors sits a robustness stack:
//
//   - every request carries a context deadline (a default is imposed when
//     the caller supplies none);
//   - failed requests retry with exponential backoff and deterministic
//     seeded jitter — a typed classifier (Transient/Permanent) decides
//     retryability, so ErrBadPIN is never retried while ErrLocked is;
//   - a per-device circuit breaker (closed/open/half-open over a windowed
//     failure rate) sheds load from devices that keep failing;
//   - panics — fault-injected power loss (faults.Abort) or bugs — are
//     recovered at the mailbox boundary and turned into a supervised
//     restart through the cold-boot path, with a restart budget that
//     escalates to quarantine;
//   - resource exhaustion degrades instead of failing: iRAM pressure drops
//     disk crypto from AES On SoC to the generic DRAM-arena provider and
//     pinned background pools to locked-way sessions (each downgrade
//     counted), and a saturated mailbox sheds the lowest-priority requests;
//   - health/readiness probes and a stalled-actor watchdog report through
//     an obs.Registry.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sentry/internal/faults"
	"sentry/internal/obs"
)

// Registry names of the fleet's metrics.
const (
	MetricOpsOK            = "fleet.ops_ok"
	MetricOpsFailed        = "fleet.ops_failed"
	MetricRetries          = "fleet.retries"
	MetricSheds            = "fleet.sheds"
	MetricExecs            = "fleet.execs"
	MetricRestarts         = "fleet.restarts"
	MetricQuarantines      = "fleet.quarantines"
	MetricRecoveryReboots  = "fleet.recovery_reboots"
	MetricRebootDrills     = "fleet.reboot_drills"
	MetricCryptoDowngrades = "fleet.crypto_downgrades"
	MetricBgDowngrades     = "fleet.bg_downgrades"
	MetricStalls           = "fleet.stalls"
)

// Options configures a Fleet. The zero value of every field has a sensible
// default; Devices defaults to 4.
type Options struct {
	Devices int
	Seed    int64
	PIN     string // unlock PIN for every device (default "4321")

	MailboxCap  int // per-device queue bound (default 32)
	MaxAttempts int // total tries per request, first included (default 4)

	Backoff *Backoff      // nil → DefaultBackoff(Seed)
	Breaker BreakerConfig // zero fields defaulted per BreakerConfig

	// RestartBudget is how many fault-caused restarts a device absorbs
	// before it is quarantined (default 3). Planned reboots (drills,
	// deep-lock recovery) are not charged.
	RestartBudget int

	// Faults is the per-device fault profile (default none). Each boot
	// gets a fresh injector seeded from the device's boot seed.
	Faults faults.Profile

	// NoSnapshots disables the checkpoint/fork restart fast path: every
	// reboot re-runs the full deterministic boot sequence instead of
	// forking the device's parked post-boot snapshot. Results are
	// identical either way (the same per-device seed replays the same
	// boot); only wall-clock differs. The sentrybench -snapshot=off
	// escape hatch sets it.
	NoSnapshots bool

	// DefaultTimeout bounds requests whose context carries no deadline
	// (default 30s) — every request in the system has a deadline.
	DefaultTimeout time.Duration

	Clock         Clock         // default Wall
	StallTimeout  time.Duration // watchdog stall threshold (default 2s)
	WatchdogEvery time.Duration // watchdog scan period (default 250ms)

	// SqueezeEvery squeezes the iRAM of every Nth device (ids N-1, 2N-1,
	// ...) at boot so graceful-degradation paths are exercised; 0 disables.
	SqueezeEvery int

	DiskKB int // encrypted-disk size per device (default 64)

	// testExec, when set, intercepts ops before the device executes them;
	// tests use it to inject stalls, panics, and scripted failures.
	testExec func(a *actor, op Op) (handled bool, val any, err error)
}

func (o Options) withDefaults() Options {
	if o.Devices <= 0 {
		o.Devices = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PIN == "" {
		o.PIN = "4321"
	}
	if o.MailboxCap <= 0 {
		o.MailboxCap = 32
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.RestartBudget <= 0 {
		o.RestartBudget = 3
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.Clock == nil {
		o.Clock = Wall
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 2 * time.Second
	}
	if o.WatchdogEvery <= 0 {
		o.WatchdogEvery = 250 * time.Millisecond
	}
	if o.DiskKB <= 0 {
		o.DiskKB = 64
	}
	return o
}

// Fleet hosts a set of simulated devices behind the robustness stack.
type Fleet struct {
	opt   Options
	clock Clock
	bo    Backoff
	reg   *obs.Registry

	actors []*actor

	stop     chan struct{}
	stopOnce sync.Once
	wdDone   chan struct{}
	stopped  atomic.Bool

	ctrOpsOK            *obs.Counter
	ctrOpsFailed        *obs.Counter
	ctrRetries          *obs.Counter
	ctrSheds            *obs.Counter
	ctrExecs            *obs.Counter
	ctrRestarts         *obs.Counter
	ctrQuarantines      *obs.Counter
	ctrRecoveries       *obs.Counter
	ctrDrills           *obs.Counter
	ctrCryptoDowngrades *obs.Counter
	ctrBgDowngrades     *obs.Counter
	ctrStalls           *obs.Counter
}

// New starts a fleet: one actor goroutine per device (each boots its device
// on that goroutine) plus the watchdog. Stop it with Stop.
func New(opt Options) *Fleet {
	opt = opt.withDefaults()
	f := &Fleet{
		opt:    opt,
		clock:  opt.Clock,
		reg:    obs.NewRegistry(),
		stop:   make(chan struct{}),
		wdDone: make(chan struct{}),
	}
	if opt.Backoff != nil {
		f.bo = *opt.Backoff
	} else {
		f.bo = DefaultBackoff(uint64(opt.Seed))
	}
	// Resolve every fleet instrument up front, then bind the registry:
	// actors only update resolved counters (atomics, legal from anywhere);
	// any later cross-goroutine wiring is a bug the guard catches.
	f.ctrOpsOK = f.reg.Counter(MetricOpsOK)
	f.ctrOpsFailed = f.reg.Counter(MetricOpsFailed)
	f.ctrRetries = f.reg.Counter(MetricRetries)
	f.ctrSheds = f.reg.Counter(MetricSheds)
	f.ctrExecs = f.reg.Counter(MetricExecs)
	f.ctrRestarts = f.reg.Counter(MetricRestarts)
	f.ctrQuarantines = f.reg.Counter(MetricQuarantines)
	f.ctrRecoveries = f.reg.Counter(MetricRecoveryReboots)
	f.ctrDrills = f.reg.Counter(MetricRebootDrills)
	f.ctrCryptoDowngrades = f.reg.Counter(MetricCryptoDowngrades)
	f.ctrBgDowngrades = f.reg.Counter(MetricBgDowngrades)
	f.ctrStalls = f.reg.Counter(MetricStalls)
	f.reg.BindOwner()

	f.actors = make([]*actor, opt.Devices)
	for i := range f.actors {
		f.actors[i] = newActor(f, i)
		go f.actors[i].run()
	}
	go f.watchdog()
	return f
}

// Metrics returns the fleet's registry.
func (f *Fleet) Metrics() *obs.Registry { return f.reg }

// Devices returns the hosted device count.
func (f *Fleet) Devices() int { return len(f.actors) }

// Do executes op against device id: it imposes a deadline if ctx has none,
// gates on the device's circuit breaker, and retries transient failures
// with backed-off, deterministically jittered delays. It returns the op's
// value, the operation id (the handle the device ledger records), and the
// final error.
//
// Operation ids are allocated per device ((id+1)<<40 | n), not fleet-wide:
// a device driven by one client at a time then numbers its ops identically
// run after run, regardless of how the other devices' traffic interleaves —
// the property the soak harness's ledger audit and determinism check rest on.
func (f *Fleet) Do(ctx context.Context, id int, op Op) (any, uint64, error) {
	if id < 0 || id >= len(f.actors) {
		f.ctrOpsFailed.Inc()
		return nil, 0, fmt.Errorf("fleet: device %d: %w", id, ErrUnknownDevice)
	}
	a := f.actors[id]
	opID := uint64(id+1)<<40 | a.nextOp.Add(1)
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.opt.DefaultTimeout)
		defer cancel()
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			f.ctrOpsFailed.Inc()
			return nil, opID, err
		}
		val, err := f.try(ctx, a, op, opID)
		if err == nil {
			f.ctrOpsOK.Inc()
			return val, opID, nil
		}
		lastErr = err
		if !Transient(err) {
			f.ctrOpsFailed.Inc()
			return nil, opID, err
		}
		if attempt >= f.opt.MaxAttempts {
			break
		}
		f.ctrRetries.Inc()
		select {
		case <-ctx.Done():
			f.ctrOpsFailed.Inc()
			return nil, opID, ctx.Err()
		case <-f.clock.After(f.bo.Delay(opID, attempt)):
		}
	}
	f.ctrOpsFailed.Inc()
	return nil, opID, fmt.Errorf("fleet: device %d: giving up after %d attempts: %w",
		id, f.opt.MaxAttempts, lastErr)
}

// try is one attempt: quarantine fast-path, breaker gate, actor call,
// breaker outcome.
func (f *Fleet) try(ctx context.Context, a *actor, op Op, opID uint64) (any, error) {
	if a.quarantined.Load() {
		return nil, fmt.Errorf("fleet: device %d: %w", a.id, ErrQuarantined)
	}
	if err := a.brk.Allow(); err != nil {
		return nil, err
	}
	val, err := a.call(ctx, op, opID)
	a.brk.Record(!healthFailure(err))
	return val, err
}

// healthFailure decides which outcomes the breaker counts against the
// device. Domain errors (wrong PIN, locked screen) are healthy responses;
// restarts, quarantines, sheds, and blown deadlines indict the device.
func healthFailure(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrDeviceRestarted) ||
		errors.Is(err, ErrQuarantined) ||
		errors.Is(err, ErrShed) ||
		errors.Is(err, context.DeadlineExceeded)
}

// watchdog periodically scans for actors stuck inside one request longer
// than the stall threshold.
func (f *Fleet) watchdog() {
	defer close(f.wdDone)
	for {
		select {
		case <-f.stop:
			return
		case <-f.clock.After(f.opt.WatchdogEvery):
		}
		now := f.clock.Now().UnixNano()
		for _, a := range f.actors {
			since := a.busySince.Load()
			if since != 0 && now-since > int64(f.opt.StallTimeout) {
				if a.stalled.CompareAndSwap(false, true) {
					f.ctrStalls.Inc()
				}
			} else if since == 0 {
				a.stalled.Store(false)
			}
		}
	}
}

// Stop shuts the fleet down: actors drain their mailboxes (pending requests
// fail with ErrShutdown) and exit; the watchdog exits. Idempotent.
func (f *Fleet) Stop() {
	f.stopOnce.Do(func() {
		f.stopped.Store(true)
		close(f.stop)
		for _, a := range f.actors {
			// Wake the actor in case it is idle in select.
			select {
			case a.mbox.ready <- struct{}{}:
			default:
			}
			<-a.done
		}
		<-f.wdDone
	})
}

// DeviceHealth is one device's probe view.
type DeviceHealth struct {
	ID          int          `json:"id"`
	Quarantined bool         `json:"quarantined"`
	Stalled     bool         `json:"stalled"`
	Breaker     BreakerState `json:"-"`
	BreakerStr  string       `json:"breaker"`
	Boots       int64        `json:"boots"`
	Restarts    int64        `json:"restarts"`
	Queue       int          `json:"queue"`
}

// Health reports every device's probe view.
func (f *Fleet) Health() []DeviceHealth {
	out := make([]DeviceHealth, len(f.actors))
	for i, a := range f.actors {
		st := a.brk.State()
		out[i] = DeviceHealth{
			ID:          a.id,
			Quarantined: a.quarantined.Load(),
			Stalled:     a.stalled.Load(),
			Breaker:     st,
			BreakerStr:  st.String(),
			Boots:       a.boots.Load(),
			Restarts:    a.restarts.Load(),
			Queue:       a.mbox.len(),
		}
	}
	return out
}

// Ready is the readiness probe: the fleet accepts traffic and at least one
// device is serving (not quarantined, not stalled).
func (f *Fleet) Ready() bool {
	if f.stopped.Load() {
		return false
	}
	for _, a := range f.actors {
		if !a.quarantined.Load() && !a.stalled.Load() {
			return true
		}
	}
	return false
}

// Ledger returns a copy of device id's sequence ledger. Meaningful once the
// device is idle (ordinarily after Stop).
func (f *Fleet) Ledger(id int) []LedgerEntry {
	if id < 0 || id >= len(f.actors) {
		return nil
	}
	a := f.actors[id]
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]LedgerEntry(nil), a.ledger...)
}

// RestartCauses returns the recorded cause of every fault-caused restart
// (and quarantine) of device id.
func (f *Fleet) RestartCauses(id int) []string {
	if id < 0 || id >= len(f.actors) {
		return nil
	}
	a := f.actors[id]
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.causes...)
}

// BreakerTrips sums breaker trips across devices.
func (f *Fleet) BreakerTrips() uint64 {
	var n uint64
	for _, a := range f.actors {
		n += a.brk.Trips()
	}
	return n
}

// SweepConfidentiality runs the end-of-run invariant scan on every device
// (lock, scan live clauses, cut power, post-mortem clauses) and returns all
// violations recorded during and after the run. Call only after Stop.
func (f *Fleet) SweepConfidentiality() []string {
	if !f.stopped.Load() {
		panic("fleet: SweepConfidentiality before Stop")
	}
	var out []string
	for _, a := range f.actors {
		a.sweep()
		a.mu.Lock()
		out = append(out, a.violations...)
		a.mu.Unlock()
	}
	return out
}

package fleet

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// Delta-encoded parking. The byte-level soundness proof (delta park ≡ full
// park over the whole op alphabet) lives in internal/check/delta_test.go;
// these tests cover the fleet wiring: the parked-bytes gauge, the ≥5×
// footprint reduction the 10^6-device claim rests on, and report identity
// between the two encodings under a real soak.

// waitParks polls until at least n parks have landed. Eviction hands the
// seat over before the victim's actor finishes draining, so tests that read
// park-side state (the gauge, a parked snapshot) wait on the counter first.
func waitParks(t *testing.T, f *Fleet, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for f.Metrics().CounterValue(MetricParks) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d parks", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// measureParkedBytes opens a capped fleet, touches enough devices that most
// park, and returns (bytes per parked device, parked count).
func measureParkedBytes(t *testing.T, noDelta bool) (int64, int) {
	t.Helper()
	opts := []Option{WithSeed(11), WithShards(4), WithResidentCap(32)}
	if noDelta {
		opts = append(opts, WithNoDelta())
	}
	f := Open(4096, opts...)
	defer f.Stop()
	ctx := context.Background()
	const touched = 192
	for i := 0; i < touched; i++ {
		id := DeviceID(i * 16)
		if _, err := f.Do(ctx, id, Op{Code: OpTouch, Arg: uint64(i)}); err != nil {
			t.Fatalf("touch %d: %v", id, err)
		}
		// Divergence beyond the boot image: a written disk sector.
		if _, err := f.Do(ctx, id, Op{Code: OpDiskWrite, Arg: uint64(i)}); err != nil {
			t.Fatalf("disk write %d: %v", id, err)
		}
	}
	h, err := f.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parked := h.Touched - h.Resident
	if parked <= 0 {
		t.Fatalf("nothing parked (touched %d, resident %d)", h.Touched, h.Resident)
	}
	bytes := f.Metrics().GaugeValue(MetricParkedBytes)
	if bytes <= 0 {
		t.Fatalf("parked-bytes gauge = %d with %d parked devices", bytes, parked)
	}
	return bytes / int64(parked), parked
}

// TestDeltaParkingShrinksParkedBytes is the fleet-level memory claim: a
// delta-parked device rests at least 5x below a full-parked one, measured by
// the parked-bytes gauge over identical traffic.
func TestDeltaParkingShrinksParkedBytes(t *testing.T) {
	deltaPer, deltaParked := measureParkedBytes(t, false)
	fullPer, fullParked := measureParkedBytes(t, true)
	if deltaParked != fullParked {
		t.Fatalf("parked counts diverged: delta %d, full %d", deltaParked, fullParked)
	}
	if fullPer < 5*deltaPer {
		t.Fatalf("delta parking reduction < 5x: full %d B/device, delta %d B/device",
			fullPer, deltaPer)
	}
	t.Logf("parked footprint: full %d B/device, delta %d B/device (%.1fx)",
		fullPer, deltaPer, float64(fullPer)/float64(deltaPer))
}

// TestDeltaParkSoakIdentical runs the same capped chaos soak with delta and
// full parking: the reports — every ledger digest, retry count, and failure
// class — must be byte-identical. Park encoding is a memory decision, never
// a behavioral one.
func TestDeltaParkSoakIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("soak comparison skipped in -short")
	}
	cfg := SoakConfig{
		Devices:      16,
		OpsPerDevice: 30,
		Seed:         7,
		Faults:       "benign",
		ResidentCap:  6, // far under Devices: parks and hydrations mid-soak
		Shards:       4,
	}
	delta, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoDelta = true
	full, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Passed() {
		t.Fatalf("delta soak failed: %v / %v", delta.Problems, delta.Violations)
	}
	dj, _ := json.MarshalIndent(delta, "", " ")
	fj, _ := json.MarshalIndent(full, "", " ")
	if string(dj) != string(fj) {
		t.Fatalf("delta vs full park reports diverged:\ndelta: %s\nfull: %s", dj, fj)
	}
}

// TestParkedBytesGaugeLifecycle: the gauge rises when a live device parks,
// holds while it is parked, and replaces (not double-counts) on re-park.
func TestParkedBytesGaugeLifecycle(t *testing.T) {
	f := Open(64, WithSeed(3), WithShards(1), WithResidentCap(1))
	defer f.Stop()
	ctx := context.Background()

	if _, err := f.Do(ctx, 0, Op{Code: OpTouch}); err != nil {
		t.Fatal(err)
	}
	if b := f.Metrics().GaugeValue(MetricParkedBytes); b != 0 {
		t.Fatalf("parked bytes = %d with nothing parked", b)
	}
	// Touching a second device evicts the first into a delta park.
	if _, err := f.Do(ctx, 1, Op{Code: OpTouch}); err != nil {
		t.Fatal(err)
	}
	waitParks(t, f, 1)
	b1 := f.Metrics().GaugeValue(MetricParkedBytes)
	if b1 <= 0 {
		t.Fatalf("parked bytes = %d after an eviction", b1)
	}
	// Bounce device 0 back in (parks 1) and out (re-parks 0): the gauge
	// tracks two parked-device records, then settles near its prior level
	// as re-parks replace earlier records rather than accumulate.
	if _, err := f.Do(ctx, 0, Op{Code: OpTouch}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Do(ctx, 1, Op{Code: OpTouch}); err != nil {
		t.Fatal(err)
	}
	waitParks(t, f, 3)
	// Three parks happened but only two records exist; an accumulating
	// gauge would sit near 3x the first park.
	b2 := f.Metrics().GaugeValue(MetricParkedBytes)
	if b2 <= 0 || b2 > 5*b1/2 {
		t.Fatalf("parked bytes after re-park cycles = %d (first park %d): gauge accumulates", b2, b1)
	}
}

package dma

import (
	"fmt"

	"sentry/internal/mem"
)

// IOMMU models the per-device DMA filter found on PCs, with the weakness
// the paper calls out (§3.1): it distinguishes masters only by their
// asserted bus identity, and "IOMMUs cannot authenticate DMA devices and
// are thus susceptible to spoofing attacks in which a malicious DMA device
// can impersonate another device". The conclusion — enforced by the tests
// — is that protecting a range requires denying it to *all* masters
// (TrustZone's policy), not allow-listing trusted ones.
type IOMMU struct {
	// allow maps a device identity to the ranges it may access. A device
	// with no entry may access anything outside every protected range
	// (matching how OSes program IOMMUs permissively for legacy devices).
	allow map[string][]Window
	// protected ranges are denied unless the asserted identity has a
	// window covering the access.
	protected []Window
}

// Window is a permitted or protected physical range.
type Window struct {
	Base mem.PhysAddr
	Size uint64
}

func (w Window) overlaps(addr mem.PhysAddr, n int) bool {
	return addr < w.Base+mem.PhysAddr(w.Size) && w.Base < addr+mem.PhysAddr(n)
}

// NewIOMMU returns an empty IOMMU (everything permitted).
func NewIOMMU() *IOMMU {
	return &IOMMU{allow: make(map[string][]Window)}
}

// Protect marks a range as restricted: only devices granted a window over
// it may touch it.
func (i *IOMMU) Protect(w Window) { i.protected = append(i.protected, w) }

// Grant gives the asserted identity access to a window (e.g. the GPU's
// framebuffer).
func (i *IOMMU) Grant(device string, w Window) {
	i.allow[device] = append(i.allow[device], w)
}

// Check authorises an access by the *asserted* identity — the IOMMU has no
// way to verify it.
func (i *IOMMU) Check(device string, addr mem.PhysAddr, n int) error {
	restricted := false
	for _, w := range i.protected {
		if w.overlaps(addr, n) {
			restricted = true
			break
		}
	}
	if !restricted {
		return nil
	}
	for _, w := range i.allow[device] {
		if w.overlaps(addr, n) {
			return nil
		}
	}
	return fmt.Errorf("iommu: device %q denied access to %#x", device, uint64(addr))
}

// AttachIOMMU places the controller behind an IOMMU. The controller's
// asserted identity starts as its name.
func (c *Controller) AttachIOMMU(i *IOMMU) {
	c.iommu = i
	c.assertedID = c.name
}

// Impersonate changes the identity the controller asserts on the bus — the
// spoofing attack. Real malicious peripherals do exactly this; nothing in
// the DMA protocol authenticates the ID.
func (c *Controller) Impersonate(id string) { c.assertedID = id }

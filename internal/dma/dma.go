// Package dma models the SoC's DMA engines. Two properties matter to the
// paper and are faithfully reproduced:
//
//   - DMA masters transfer against physical DRAM over the external bus,
//     bypassing the L2 cache entirely. Cache coherence for DMA is software's
//     job on these SoCs, so a DMA read sees stale DRAM — not dirty cache
//     lines — which is why locked-way plaintext is invisible to DMA (§4.4).
//   - Any peripheral interface can be told to issue transfers at arbitrary
//     physical addresses (the FireWire-class attack). The only defence is
//     an address-range check, modelled by the tz package's Checker.
//
// The package also provides the UART loopback device the paper used to
// validate PL310 write-back behaviour (§4.2): a debug port that returns all
// data DMA-ed to it.
package dma

import (
	"fmt"

	"sentry/internal/bus"
	"sentry/internal/mem"
	"sentry/internal/obs"
	"sentry/internal/sim"
)

// Checker authorises DMA access to physical ranges; the TrustZone
// controller implements it. A nil Checker permits everything (a platform
// with no IOMMU and no TrustZone filtering).
type Checker interface {
	CheckDMAAccess(addr mem.PhysAddr, n int) error
}

// Controller is one DMA engine. DMA masters sit on the SoC interconnect:
// they reach the external DRAM over the memory bus (observable by a probe)
// and on-SoC memories like iRAM directly (not bus-observable) — "iRAM is
// just like any other system memory with respect to DMA attacks" (§4.4),
// unless TrustZone filters the access.
type Controller struct {
	name   string
	bus    *bus.Bus
	onchip *mem.Map // devices reachable without the external bus (iRAM)
	clock  *sim.Clock
	costs  *sim.CostTable
	check  Checker

	// Optional IOMMU in front of this master, keyed by the (spoofable)
	// asserted identity.
	iommu      *IOMMU
	assertedID string

	// Observability: nil (and nil-safe) until SetObs wires them.
	trace     *obs.Tracer
	ctrXfers  *obs.Counter
	ctrBytes  *obs.Counter
	ctrDenied *obs.Counter
}

// New returns a DMA controller on the given bus with the given on-SoC
// device map (may be nil), filtered by check (which may be nil).
func New(name string, b *bus.Bus, onchip *mem.Map, clock *sim.Clock, costs *sim.CostTable, check Checker) *Controller {
	return &Controller{name: name, bus: b, onchip: onchip, clock: clock, costs: costs, check: check}
}

// Name returns the controller name as it appears in bus traces.
func (c *Controller) Name() string { return c.name }

// Clone returns a controller with the same identity over the given bus,
// on-chip map, clock, and access checker. Any IOMMU programming is shared
// shallowly — forked check worlds never program an IOMMU; attack
// experiments that do don't fork.
func (c *Controller) Clone(b *bus.Bus, onchip *mem.Map, clock *sim.Clock, check Checker) *Controller {
	n := New(c.name, b, onchip, clock, c.costs, check)
	n.iommu = c.iommu
	n.assertedID = c.assertedID
	return n
}

// SetObs wires the observability layer. Either argument may be nil.
func (c *Controller) SetObs(tr *obs.Tracer, reg *obs.Registry) {
	c.trace = tr
	c.ctrXfers = reg.Counter("dma." + c.name + ".xfers")
	c.ctrBytes = reg.Counter("dma." + c.name + ".bytes")
	c.ctrDenied = reg.Counter("dma." + c.name + ".denied")
}

// emit records one DMA transfer event; denied transfers carry Arg=1.
func (c *Controller) emit(addr mem.PhysAddr, n int, denied bool) {
	if denied {
		c.ctrDenied.Inc()
	} else {
		c.ctrXfers.Inc()
		c.ctrBytes.Add(uint64(n))
	}
	if c.trace != nil {
		var arg uint64
		if denied {
			arg = 1
		}
		c.trace.Emit(obs.Event{
			Cycle: c.clock.Cycles(),
			Kind:  obs.KindDMAXfer,
			Addr:  uint64(addr),
			Size:  uint64(n),
			Arg:   arg,
			Label: c.name,
		})
	}
}

func (c *Controller) charge(n int) {
	c.clock.Advance(uint64((n+3)/4) * c.costs.DMAWordCost)
}

func (c *Controller) authorize(addr mem.PhysAddr, n int) error {
	if c.iommu != nil {
		if err := c.iommu.Check(c.assertedID, addr, n); err != nil {
			return err
		}
	}
	if c.check == nil {
		return nil
	}
	return c.check.CheckDMAAccess(addr, n)
}

// ReadFromMem transfers n bytes from physical memory to the requesting
// device (memory → peripheral). The read goes straight to the DRAM chips:
// dirty cache lines are NOT observed.
func (c *Controller) ReadFromMem(addr mem.PhysAddr, n int) ([]byte, error) {
	if err := c.authorize(addr, n); err != nil {
		c.emit(addr, n, true)
		return nil, err
	}
	buf := make([]byte, n)
	if c.onchip != nil {
		if d := c.onchip.Find(addr); d != nil {
			d.Read(addr, buf)
			c.charge(n)
			c.emit(addr, n, false)
			return buf, nil
		}
	}
	if c.bus.Devices().Find(addr) == nil {
		return nil, fmt.Errorf("dma: %s: unmapped address %#x", c.name, uint64(addr))
	}
	c.bus.ReadInto(c.name, addr, buf)
	c.charge(n)
	c.emit(addr, n, false)
	return buf, nil
}

// WriteToMem transfers data from the requesting device into physical memory
// (peripheral → memory). Software must invalidate any cached copies; the
// cache is not informed.
func (c *Controller) WriteToMem(addr mem.PhysAddr, data []byte) error {
	if err := c.authorize(addr, len(data)); err != nil {
		c.emit(addr, len(data), true)
		return err
	}
	if c.onchip != nil {
		if d := c.onchip.Find(addr); d != nil {
			d.Write(addr, data)
			c.charge(len(data))
			c.emit(addr, len(data), false)
			return nil
		}
	}
	if c.bus.Devices().Find(addr) == nil {
		return fmt.Errorf("dma: %s: unmapped address %#x", c.name, uint64(addr))
	}
	c.bus.WriteFrom(c.name, addr, data)
	c.charge(len(data))
	c.emit(addr, len(data), false)
	return nil
}

// UARTLoopback is the high-speed serial controller's debugging port: all
// data DMA-ed to it can be read back over the serial interface. The paper
// used it to verify that locked ways are never written back to DRAM.
type UARTLoopback struct {
	fifo []byte
}

// TransmitFromMem DMA-s n bytes at addr out of memory into the loopback
// FIFO using ctl.
func (u *UARTLoopback) TransmitFromMem(ctl *Controller, addr mem.PhysAddr, n int) error {
	data, err := ctl.ReadFromMem(addr, n)
	if err != nil {
		return err
	}
	u.fifo = append(u.fifo, data...)
	return nil
}

// Clone returns a loopback holding a copy of the captured FIFO.
func (u *UARTLoopback) Clone() *UARTLoopback {
	return &UARTLoopback{fifo: append([]byte(nil), u.fifo...)}
}

// Drain returns and clears everything the loopback captured.
func (u *UARTLoopback) Drain() []byte {
	out := u.fifo
	u.fifo = nil
	return out
}

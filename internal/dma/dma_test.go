package dma

import (
	"bytes"
	"testing"

	"sentry/internal/bus"
	"sentry/internal/cache"
	"sentry/internal/mem"
	"sentry/internal/sim"
	"sentry/internal/tz"
)

const dramBase = 0x80000000

func rig() (*Controller, *cache.L2, *mem.Device, *bus.Bus, *tz.Controller) {
	clock := sim.NewClock(1e9)
	meter := &sim.Meter{}
	costs := &sim.CostTable{DRAMAccess: 10, L2Hit: 1, DMAWordCost: 2}
	energy := &sim.EnergyTable{}
	dram := mem.NewDevice("dram", mem.TechDRAM, dramBase, 16<<20)
	b := bus.New(clock, meter, costs, energy, mem.NewMap(dram))
	l2 := cache.New(cache.Config{Ways: 4, WaySize: 4096, LineSize: 32}, clock, meter, costs, energy, b)
	tzc := tz.New(true, sim.NewRNG(1))
	return New("dma0", b, nil, clock, costs, tzc), l2, dram, b, tzc
}

func TestDMARoundTrip(t *testing.T) {
	c, _, _, _, _ := rig()
	if err := c.WriteToMem(dramBase+0x100, []byte("dma-payload")); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFromMem(dramBase+0x100, 11)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "dma-payload" {
		t.Fatalf("got %q", got)
	}
}

func TestDMABypassesCache(t *testing.T) {
	// Software-managed coherence: a dirty line in the cache is invisible
	// to DMA until the OS cleans it. This is the property that protects
	// locked-way plaintext from DMA attacks.
	c, l2, _, _, _ := rig()
	l2.Write(dramBase, []byte("CACHED-SECRET"))
	got, err := c.ReadFromMem(dramBase, 13)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(got, []byte("SECRET")) {
		t.Fatal("DMA observed dirty cache contents")
	}
	// After an explicit clean, DMA sees the data.
	l2.CleanWays(l2.AllWaysMask())
	got, _ = c.ReadFromMem(dramBase, 13)
	if !bytes.Equal(got, []byte("CACHED-SECRET")) {
		t.Fatal("DMA missed cleaned data")
	}
}

func TestDMADeniedByTrustZone(t *testing.T) {
	c, _, _, _, tzc := rig()
	if err := tzc.WithSecure(func() error {
		return tzc.Protect(tz.Region{Base: dramBase + 0x1000, Size: 0x1000, NoDMA: true})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFromMem(dramBase+0x1800, 16); err == nil {
		t.Fatal("protected read allowed")
	}
	if err := c.WriteToMem(dramBase+0x1800, []byte{1}); err == nil {
		t.Fatal("protected write allowed")
	}
}

func TestDMAUnmappedAddress(t *testing.T) {
	c, _, _, _, _ := rig()
	if _, err := c.ReadFromMem(0x1000, 4); err == nil {
		t.Fatal("unmapped read succeeded")
	}
	if err := c.WriteToMem(0x1000, []byte{1}); err == nil {
		t.Fatal("unmapped write succeeded")
	}
}

func TestDMAVisibleOnBus(t *testing.T) {
	c, _, _, b, _ := rig()
	_ = c.WriteToMem(dramBase, make([]byte, 64))
	if b.Stats().Writes == 0 {
		t.Fatal("DMA invisible on bus")
	}
}

func TestUARTLoopback(t *testing.T) {
	c, l2, _, _, _ := rig()
	u := &UARTLoopback{}
	// The paper's §4.2 validation: write a pattern through the cache,
	// DMA the DRAM address to the UART debug port, and read it back.
	l2.Write(dramBase+0x200, []byte("PATTERN!"))
	if err := u.TransmitFromMem(c, dramBase+0x200, 8); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(u.Drain(), []byte("PATTERN!")) {
		t.Fatal("pattern visible: dirty line must not be observable via DMA")
	}
	l2.CleanWays(l2.AllWaysMask())
	_ = u.TransmitFromMem(c, dramBase+0x200, 8)
	if !bytes.Contains(u.Drain(), []byte("PATTERN!")) {
		t.Fatal("pattern missing after clean")
	}
	if len(u.Drain()) != 0 {
		t.Fatal("drain did not clear fifo")
	}
}

func TestIOMMUFiltersByIdentity(t *testing.T) {
	c, _, _, _, _ := rig()
	iommu := NewIOMMU()
	secretWin := Window{Base: dramBase + 0x4000, Size: 0x1000}
	iommu.Protect(secretWin)
	iommu.Grant("gpu0", secretWin) // only the GPU may touch the framebuffer
	c.AttachIOMMU(iommu)

	// dma0 (honest identity) is denied the protected range…
	if _, err := c.ReadFromMem(dramBase+0x4800, 16); err == nil {
		t.Fatal("IOMMU allowed an unauthorised device")
	}
	// …but may access unprotected memory freely.
	if _, err := c.ReadFromMem(dramBase+0x100, 16); err != nil {
		t.Fatalf("IOMMU blocked unprotected memory: %v", err)
	}
}

func TestIOMMUSpoofingBypass(t *testing.T) {
	// §3.1: "IOMMUs cannot authenticate DMA devices and are thus
	// susceptible to spoofing attacks". The malicious controller asserts
	// the GPU's identity and walks straight through.
	c, _, dram, _, _ := rig()
	dram.Write(dramBase+0x4000, []byte("FRAMEBUFFER-SECRET"))
	iommu := NewIOMMU()
	win := Window{Base: dramBase + 0x4000, Size: 0x1000}
	iommu.Protect(win)
	iommu.Grant("gpu0", win)
	c.AttachIOMMU(iommu)

	c.Impersonate("gpu0")
	got, err := c.ReadFromMem(dramBase+0x4000, 18)
	if err != nil {
		t.Fatalf("spoofed access should pass the IOMMU: %v", err)
	}
	if string(got) != "FRAMEBUFFER-SECRET" {
		t.Fatal("spoofed read returned wrong data")
	}
}

func TestTrustZoneDenyAllDefeatsSpoofing(t *testing.T) {
	// The paper's conclusion: because spoofing works, the secret range must
	// be denied to ALL masters — which is what the TrustZone policy does,
	// identity notwithstanding.
	c, _, _, _, tzc := rig()
	if err := tzc.WithSecure(func() error {
		return tzc.Protect(tz.Region{Base: dramBase + 0x4000, Size: 0x1000, NoDMA: true})
	}); err != nil {
		t.Fatal(err)
	}
	iommu := NewIOMMU()
	win := Window{Base: dramBase + 0x4000, Size: 0x1000}
	iommu.Protect(win)
	iommu.Grant("gpu0", win)
	c.AttachIOMMU(iommu)
	c.Impersonate("gpu0")
	if _, err := c.ReadFromMem(dramBase+0x4000, 16); err == nil {
		t.Fatal("TrustZone deny-all should stop even a perfectly spoofed device")
	}
}

func TestDMAWriteToIRAMOnChip(t *testing.T) {
	clock := sim.NewClock(1e9)
	meter := &sim.Meter{}
	costs := &sim.CostTable{DRAMAccess: 10, DMAWordCost: 2}
	energy := &sim.EnergyTable{}
	dram := mem.NewDevice("dram", mem.TechDRAM, dramBase, 1<<20)
	iram := mem.NewDevice("iram", mem.TechSRAM, 0x40000000, 64<<10)
	b := bus.New(clock, meter, costs, energy, mem.NewMap(dram))
	c := New("dma0", b, mem.NewMap(iram), clock, costs, nil)

	// DMA can write iRAM over the on-SoC interconnect…
	if err := c.WriteToMem(0x40000100, []byte("firmware-blob")); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFromMem(0x40000100, 13)
	if err != nil || string(got) != "firmware-blob" {
		t.Fatalf("onchip round trip: %q %v", got, err)
	}
	// …and none of that traffic appears on the external bus.
	if s := b.Stats(); s.Reads != 0 || s.Writes != 0 {
		t.Fatal("iRAM DMA leaked onto the external bus")
	}
	if c.Name() != "dma0" {
		t.Fatal("name")
	}
}

func TestIOMMUGrantAllowsOwnerThrough(t *testing.T) {
	c, _, _, _, _ := rig()
	iommu := NewIOMMU()
	win := Window{Base: dramBase + 0x8000, Size: 0x1000}
	iommu.Protect(win)
	iommu.Grant("dma0", win) // this controller's honest identity
	c.AttachIOMMU(iommu)
	if err := c.WriteToMem(dramBase+0x8000, []byte{1, 2, 3}); err != nil {
		t.Fatalf("granted device denied: %v", err)
	}
}

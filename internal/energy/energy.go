// Package energy provides the battery model and the energy bookkeeping the
// paper's Figure 5, Figure 12, and battery-life projections use. The
// per-operation energy itself is charged throughout the simulator via
// sim.Meter; this package interprets those Joules against a battery and a
// usage pattern.
package energy

import "sentry/internal/soc"

// UnlocksPerDay is the paper's usage assumption: "a typical user consults
// her phone on average 150 times per day".
const UnlocksPerDay = 150

// Battery models a device battery.
type Battery struct {
	CapacityJ float64
}

// BatteryOf returns the platform's battery.
func BatteryOf(s *soc.SoC) Battery {
	return Battery{CapacityJ: s.Prof.Energy.BatteryJ}
}

// Fraction returns consumedJ as a fraction of capacity.
func (b Battery) Fraction(consumedJ float64) float64 {
	if b.CapacityJ <= 0 {
		return 0
	}
	return consumedJ / b.CapacityJ
}

// CyclesToDrain returns how many repetitions of an operation costing
// perOpJ exhaust the battery (the paper's "410 suspend/resume cycles" for
// whole-memory encryption).
func (b Battery) CyclesToDrain(perOpJ float64) int {
	if perOpJ <= 0 {
		return 0
	}
	return int(b.CapacityJ / perOpJ)
}

// DailyFraction projects the battery share of locking+unlocking once per
// unlock event, at the paper's 150 unlocks/day.
func (b Battery) DailyFraction(perLockUnlockJ float64) float64 {
	return b.Fraction(perLockUnlockJ * UnlocksPerDay)
}

// MicroJoulesPerByte converts a measured (joules, bytes) pair to the µJ/B
// unit Figure 12 reports.
func MicroJoulesPerByte(joules float64, bytes int) float64 {
	if bytes == 0 {
		return 0
	}
	return joules * 1e6 / float64(bytes)
}

// Span measures the Joules consumed by fn on s.
func Span(s *soc.SoC, fn func()) float64 {
	return s.Meter.Span(fn) * 1e-12
}

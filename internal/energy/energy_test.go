package energy

import (
	"math"
	"testing"

	"sentry/internal/soc"
)

func TestBatteryBasics(t *testing.T) {
	b := Battery{CapacityJ: 28700}
	if got := b.Fraction(287); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("Fraction = %v", got)
	}
	// The paper's anchor: a 70 J whole-memory encryption drains the Nexus 4
	// battery in 410 cycles.
	if got := b.CyclesToDrain(70); got != 410 {
		t.Fatalf("CyclesToDrain(70) = %d, want 410", got)
	}
	if b.CyclesToDrain(0) != 0 {
		t.Fatal("zero-cost op should not divide by zero")
	}
	if (Battery{}).Fraction(10) != 0 {
		t.Fatal("zero-capacity battery")
	}
}

func TestDailyFraction(t *testing.T) {
	b := Battery{CapacityJ: 28700}
	// ~2 % per day at 150 unlocks and ~3.8 J per lock/unlock pair.
	got := b.DailyFraction(3.8)
	if got < 0.015 || got > 0.025 {
		t.Fatalf("daily fraction = %.4f, want ≈0.02", got)
	}
}

func TestMicroJoulesPerByte(t *testing.T) {
	if got := MicroJoulesPerByte(0.03, 1_000_000); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("µJ/B = %v", got)
	}
	if MicroJoulesPerByte(1, 0) != 0 {
		t.Fatal("zero bytes")
	}
}

func TestBatteryOfAndSpan(t *testing.T) {
	s := soc.Nexus4(1)
	if BatteryOf(s).CapacityJ != 28700 {
		t.Fatal("Nexus battery wrong")
	}
	j := Span(s, func() { s.Meter.Charge(5e12) })
	if math.Abs(j-5) > 1e-9 {
		t.Fatalf("Span = %v J", j)
	}
}

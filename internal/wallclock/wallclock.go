// Package wallclock reads, updates, and guards BENCH_wallclock.json — the
// repo's recorded wall-clock trajectory. Records are keyed by run kind
// ("serial", "parallel", "check", "serve"); each tool records its own kind
// and the CI guards compare fresh runs against the checked-in record with a
// fixed headroom, so a real regression fails loudly while normal host noise
// passes.
package wallclock

import (
	"encoding/json"
	"fmt"
	"os"
)

// File is the schema of BENCH_wallclock.json.
type File struct {
	Seed    int64           `json:"seed"`
	Records map[string]*Run `json:"records"`
}

// Run is one recorded run. TotalSec is the wall clock; OpsPerSec is set by
// throughput kinds ("serve"); Experiments is the per-experiment breakdown
// of -exp all runs; the BytesPerDevice pair is set by the memory kind
// ("scale") — the resting cost of a delta-parked device and of the same
// device parked as a full snapshot.
type Run struct {
	Parallelism        int                `json:"parallelism"`
	TotalSec           float64            `json:"total_seconds"`
	OpsPerSec          float64            `json:"ops_per_sec,omitempty"`
	Experiments        map[string]float64 `json:"experiments,omitempty"`
	BytesPerDevice     int64              `json:"bytes_per_device,omitempty"`
	BytesPerDeviceFull int64              `json:"bytes_per_device_full,omitempty"`
}

// Headroom is how much worse than the checked-in record a run may be before
// a guard fails: wall clocks are noisy; 25% is regression, not noise.
const Headroom = 1.25

// Record merges one run into the JSON record file, preserving the other
// kinds already recorded there (read-modify-write).
func Record(path, kind string, seed int64, run *Run) error {
	wc := File{Seed: seed, Records: map[string]*Run{}}
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &wc); err != nil || wc.Records == nil {
			wc = File{Seed: seed, Records: map[string]*Run{}}
		}
	}
	wc.Seed = seed
	wc.Records[kind] = run
	buf, err := json.MarshalIndent(wc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func load(path, kind string) (*Run, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wc File
	if err := json.Unmarshal(buf, &wc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	rec := wc.Records[kind]
	if rec == nil {
		return nil, fmt.Errorf("%s has no %q record", path, kind)
	}
	return rec, nil
}

// Guard fails (returns an error) if run took >Headroom times the recorded
// wall clock of the same kind. On success it returns a one-line summary.
func Guard(path, kind string, run *Run) (string, error) {
	rec, err := load(path, kind)
	if err != nil {
		return "", err
	}
	limit := rec.TotalSec * Headroom
	if run.TotalSec > limit {
		return "", fmt.Errorf("%s total %.2fs exceeds %.2fs (recorded %.2fs + 25%% headroom) — perf regression",
			kind, run.TotalSec, limit, rec.TotalSec)
	}
	return fmt.Sprintf("%s total %.2fs within %.2fs budget (recorded %.2fs + 25%% headroom)",
		kind, run.TotalSec, limit, rec.TotalSec), nil
}

// GuardRatio fails if run's ops/sec is less than minRatio times the
// recorded rate of baseKind. The explorer's CI guard uses it to keep the
// snapshot tree honest: a fresh tree sweep must stay >=10x the recorded
// seed-replay baseline, so the speedup claim cannot silently rot while the
// absolute floor (GuardThroughput) is still met.
func GuardRatio(path, baseKind string, minRatio float64, run *Run) (string, error) {
	rec, err := load(path, baseKind)
	if err != nil {
		return "", err
	}
	if rec.OpsPerSec <= 0 {
		return "", fmt.Errorf("%s record in %s has no ops/sec", baseKind, path)
	}
	floor := rec.OpsPerSec * minRatio
	if run.OpsPerSec < floor {
		return "", fmt.Errorf("throughput %.0f/s is %.1fx the recorded %s rate %.0f/s — below the %.0fx floor",
			run.OpsPerSec, run.OpsPerSec/rec.OpsPerSec, baseKind, rec.OpsPerSec, minRatio)
	}
	return fmt.Sprintf("throughput %.0f/s is %.1fx the recorded %s rate %.0f/s (floor %.0fx)",
		run.OpsPerSec, run.OpsPerSec/rec.OpsPerSec, baseKind, rec.OpsPerSec, minRatio), nil
}

// GuardBytes fails if run's resting bytes per parked device grew more than
// Headroom over the recorded figure — the memory guard behind the
// 10^6-logical-devices capacity claim. (The companion >=5x-reduction check
// compares the run's own delta and full measurements and lives in the
// driver, since both numbers are measured fresh.)
func GuardBytes(path, kind string, run *Run) (string, error) {
	rec, err := load(path, kind)
	if err != nil {
		return "", err
	}
	if rec.BytesPerDevice <= 0 {
		return "", fmt.Errorf("%s record in %s has no bytes/device", kind, path)
	}
	limit := float64(rec.BytesPerDevice) * Headroom
	if float64(run.BytesPerDevice) > limit {
		return "", fmt.Errorf("%s parked footprint %d B/device exceeds %.0f B (recorded %d + 25%% headroom) — memory regression",
			kind, run.BytesPerDevice, limit, rec.BytesPerDevice)
	}
	return fmt.Sprintf("%s parked footprint %d B/device within %.0f B budget (recorded %d + 25%% headroom)",
		kind, run.BytesPerDevice, limit, rec.BytesPerDevice), nil
}

// GuardThroughput fails if run's ops/sec fell below the recorded rate
// divided by Headroom — the floor the serving path must sustain.
func GuardThroughput(path, kind string, run *Run) (string, error) {
	rec, err := load(path, kind)
	if err != nil {
		return "", err
	}
	if rec.OpsPerSec <= 0 {
		return "", fmt.Errorf("%s record in %s has no ops/sec", kind, path)
	}
	floor := rec.OpsPerSec / Headroom
	if run.OpsPerSec < floor {
		return "", fmt.Errorf("%s throughput %.0f ops/s below %.0f ops/s floor (recorded %.0f / 25%% headroom) — perf regression",
			kind, run.OpsPerSec, floor, rec.OpsPerSec)
	}
	return fmt.Sprintf("%s throughput %.0f ops/s above %.0f ops/s floor (recorded %.0f / 25%% headroom)",
		kind, run.OpsPerSec, floor, rec.OpsPerSec), nil
}

package wallclock

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRecordPreservesOtherKinds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wc.json")
	if err := Record(path, "serial", 1, &Run{Parallelism: 1, TotalSec: 6.5}); err != nil {
		t.Fatal(err)
	}
	if err := Record(path, "serve", 1, &Run{Parallelism: 512, TotalSec: 10, OpsPerSec: 300}); err != nil {
		t.Fatal(err)
	}
	// Re-recording one kind must not clobber the other.
	if err := Record(path, "serial", 1, &Run{Parallelism: 1, TotalSec: 6.0}); err != nil {
		t.Fatal(err)
	}
	serial, err := load(path, "serial")
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalSec != 6.0 {
		t.Fatalf("serial total = %v, want the re-recorded 6.0", serial.TotalSec)
	}
	serve, err := load(path, "serve")
	if err != nil {
		t.Fatal(err)
	}
	if serve.OpsPerSec != 300 {
		t.Fatalf("serve record lost across serial re-record: %+v", serve)
	}
	if _, err := load(path, "parallel"); err == nil {
		t.Fatal("load of an unrecorded kind succeeded")
	}
}

func TestGuardHeadroom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wc.json")
	if err := Record(path, "check", 1, &Run{Parallelism: 1, TotalSec: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := Guard(path, "check", &Run{TotalSec: 4.9}); err != nil {
		t.Fatalf("run within headroom failed the guard: %v", err)
	}
	if _, err := Guard(path, "check", &Run{TotalSec: 5.1}); err == nil {
		t.Fatal("run past headroom passed the guard")
	}
	if _, err := Guard(path, "missing", &Run{TotalSec: 1}); err == nil {
		t.Fatal("guard against a missing kind passed")
	}
}

func TestGuardThroughputFloor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wc.json")
	if err := Record(path, "serve", 1, &Run{Parallelism: 512, TotalSec: 10, OpsPerSec: 300}); err != nil {
		t.Fatal(err)
	}
	// Floor is recorded/1.25 = 240: throughput guards invert the comparison
	// (lower is worse).
	if msg, err := GuardThroughput(path, "serve", &Run{OpsPerSec: 241}); err != nil {
		t.Fatalf("throughput above the floor failed: %v (%s)", err, msg)
	}
	if _, err := GuardThroughput(path, "serve", &Run{OpsPerSec: 239}); err == nil {
		t.Fatal("throughput below the floor passed")
	}
	// A record without ops/sec cannot anchor a throughput guard.
	if err := Record(path, "serial", 1, &Run{Parallelism: 1, TotalSec: 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := GuardThroughput(path, "serial", &Run{OpsPerSec: 100}); err == nil ||
		!strings.Contains(err.Error(), "no ops/sec") {
		t.Fatalf("guard against a duration-only record: %v", err)
	}
}

package mmu

import (
	"errors"
	"testing"
	"testing/quick"

	"sentry/internal/mem"
)

func TestMapTranslate(t *testing.T) {
	a := NewAddressSpace()
	a.Map(0x1000, PTE{Phys: 0x80004000, Present: true, Writable: true, Young: true})
	p, f := a.Translate(0x1234, false)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if p != 0x80004234 {
		t.Fatalf("phys = %#x", uint64(p))
	}
}

func TestNotPresentFault(t *testing.T) {
	a := NewAddressSpace()
	_, f := a.Translate(0x5000, false)
	if f == nil || f.Kind != FaultNotPresent {
		t.Fatalf("fault = %v", f)
	}
	var err error = f
	if !errors.As(err, &f) {
		t.Fatal("Fault should be an error")
	}
}

func TestYoungBitFault(t *testing.T) {
	a := NewAddressSpace()
	a.Map(0x1000, PTE{Phys: 0x80000000, Present: true, Writable: true, Young: false})
	_, f := a.Translate(0x1000, false)
	if f == nil || f.Kind != FaultAccessFlag {
		t.Fatalf("fault = %v", f)
	}
	// Fix up like a fault handler would, then retry.
	a.Lookup(0x1000).Young = true
	if _, f := a.Translate(0x1000, false); f != nil {
		t.Fatalf("still faulting after young set: %v", f)
	}
}

func TestProtectionFault(t *testing.T) {
	a := NewAddressSpace()
	a.Map(0x1000, PTE{Phys: 0x80000000, Present: true, Writable: false, Young: true})
	if _, f := a.Translate(0x1000, false); f != nil {
		t.Fatalf("read should succeed: %v", f)
	}
	_, f := a.Translate(0x1000, true)
	if f == nil || f.Kind != FaultProtection || !f.Write {
		t.Fatalf("fault = %v", f)
	}
}

func TestClearYoungAllArmsEveryPage(t *testing.T) {
	a := NewAddressSpace()
	for i := 0; i < 10; i++ {
		a.Map(VirtAddr(i*PageSize), PTE{Phys: mem.PhysAddr(i * PageSize), Present: true, Young: true})
	}
	a.ClearYoungAll()
	for i := 0; i < 10; i++ {
		if _, f := a.Translate(VirtAddr(i*PageSize), false); f == nil || f.Kind != FaultAccessFlag {
			t.Fatalf("page %d not armed: %v", i, f)
		}
	}
}

func TestUnmap(t *testing.T) {
	a := NewAddressSpace()
	a.Map(0x2000, PTE{Present: true, Young: true})
	a.Unmap(0x2abc) // same page
	if a.Lookup(0x2000) != nil {
		t.Fatal("unmap failed")
	}
	if a.Len() != 0 {
		t.Fatal("len after unmap")
	}
}

func TestPagesSorted(t *testing.T) {
	a := NewAddressSpace()
	for _, v := range []VirtAddr{0x5000, 0x1000, 0x3000} {
		a.Map(v, PTE{Present: true})
	}
	pages := a.Pages()
	if len(pages) != 3 || pages[0] != 0x1000 || pages[1] != 0x3000 || pages[2] != 0x5000 {
		t.Fatalf("pages = %v", pages)
	}
}

func TestMapCopiesPTE(t *testing.T) {
	a := NewAddressSpace()
	pte := PTE{Present: true, Young: true}
	a.Map(0x1000, pte)
	pte.Present = false
	if !a.Lookup(0x1000).Present {
		t.Fatal("Map aliased caller's PTE")
	}
}

// Property: translation preserves the page offset and maps to the installed
// frame for arbitrary addresses.
func TestTranslateOffsetProperty(t *testing.T) {
	f := func(vpnRaw uint16, off uint16, frameRaw uint16) bool {
		a := NewAddressSpace()
		v := VirtAddr(vpnRaw) << PageShift
		frame := mem.PhysAddr(frameRaw) << PageShift
		a.Map(v, PTE{Phys: frame, Present: true, Writable: true, Young: true})
		addr := v + VirtAddr(off%PageSize)
		p, fault := a.Translate(addr, true)
		return fault == nil && p == frame+mem.PhysAddr(off%PageSize)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultErrorStrings(t *testing.T) {
	f := &Fault{Kind: FaultAccessFlag, Addr: 0x1000, Write: true}
	if f.Error() == "" || FaultNotPresent.String() == "" || FaultProtection.String() == "" {
		t.Fatal("empty strings")
	}
}

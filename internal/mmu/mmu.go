// Package mmu models per-process paged virtual memory with the two ARM
// page-table features Sentry's encrypted-DRAM mechanism is built on:
//
//   - The access flag ("young" bit): clearing it on a PTE makes the next
//     access to the page trap, which is how Sentry interposes on the first
//     touch of an encrypted page (Figure 1 of the paper).
//   - Software-visible PTE state: Sentry tags pages as Encrypted and redirects
//     Phys to the on-SoC copy while a page is decrypted in a locked cache way.
package mmu

import (
	"fmt"
	"sort"

	"sentry/internal/mem"
	"sentry/internal/obs"
)

// VirtAddr is a per-process virtual address.
type VirtAddr uint64

// PageSize and PageShift mirror the physical page geometry.
const (
	PageSize  = mem.PageSize
	PageShift = mem.PageShift
)

// PageBase returns the page-aligned base of v.
func PageBase(v VirtAddr) VirtAddr { return v &^ (PageSize - 1) }

// FaultKind classifies a translation fault.
type FaultKind int

// Translation fault kinds.
const (
	FaultNotPresent FaultKind = iota // no mapping for the page
	FaultAccessFlag                  // young bit clear: first touch of the page
	FaultProtection                  // write to a read-only page
)

func (k FaultKind) String() string {
	switch k {
	case FaultNotPresent:
		return "not-present"
	case FaultAccessFlag:
		return "access-flag"
	case FaultProtection:
		return "protection"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault describes a failed translation. It implements error so unhandled
// faults propagate naturally.
type Fault struct {
	Kind  FaultKind
	Addr  VirtAddr
	Write bool
}

func (f *Fault) Error() string {
	op := "read"
	if f.Write {
		op = "write"
	}
	return fmt.Sprintf("mmu: %s fault on %s of %#x", f.Kind, op, uint64(f.Addr))
}

// PTE is a page-table entry. Phys is the physical page base the virtual page
// currently maps to — under Sentry this may point into a locked cache way's
// alias region rather than the page's home DRAM frame.
type PTE struct {
	Phys     mem.PhysAddr
	Present  bool
	Writable bool
	Young    bool // access flag: clear ⇒ trap on next access

	// Sentry bookkeeping carried in software-defined PTE bits.
	Encrypted bool // the DRAM frame holds ciphertext
	Shared    bool // mapped by more than one process
}

// AddressSpace is one process's page table.
type AddressSpace struct {
	entries map[uint64]*PTE // vpn → pte

	// Fault counters by kind, resolved by the kernel when observability is
	// on. Nil counters are no-ops, so Translate never branches on "enabled".
	ctrNotPresent *obs.Counter
	ctrAccessFlag *obs.Counter
	ctrProtection *obs.Counter
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{entries: make(map[uint64]*PTE)}
}

// SetObs resolves the per-kind fault counters from reg (which may be nil).
func (a *AddressSpace) SetObs(reg *obs.Registry) {
	a.ctrNotPresent = reg.Counter("mmu.faults.not_present")
	a.ctrAccessFlag = reg.Counter("mmu.faults.access_flag")
	a.ctrProtection = reg.Counter("mmu.faults.protection")
}

// Clone returns a deep copy of the address space: every PTE is copied, so
// fault-handler fix-ups through Lookup pointers on either copy stay
// private to it. Fault counters are left unresolved — a cloned world calls
// SetObs against its own registry.
func (a *AddressSpace) Clone() *AddressSpace {
	n := NewAddressSpace()
	for vpn, pte := range a.entries {
		p := *pte
		n.entries[vpn] = &p
	}
	return n
}

// Map installs pte for the page containing v (page-aligned internally).
func (a *AddressSpace) Map(v VirtAddr, pte PTE) {
	p := pte
	a.entries[uint64(PageBase(v))>>PageShift] = &p
}

// Unmap removes the mapping for the page containing v.
func (a *AddressSpace) Unmap(v VirtAddr) {
	delete(a.entries, uint64(PageBase(v))>>PageShift)
}

// Lookup returns the PTE for the page containing v, or nil. The returned
// pointer is live: mutating it changes the page table, which is how fault
// handlers fix entries up.
func (a *AddressSpace) Lookup(v VirtAddr) *PTE {
	return a.entries[uint64(PageBase(v))>>PageShift]
}

// Pages returns the mapped virtual page bases in ascending order.
func (a *AddressSpace) Pages() []VirtAddr {
	out := make([]VirtAddr, 0, len(a.entries))
	for vpn := range a.entries {
		out = append(out, VirtAddr(vpn<<PageShift))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of mapped pages.
func (a *AddressSpace) Len() int { return len(a.entries) }

// Range calls fn for every mapping in unspecified order. Unlike Pages it
// allocates and sorts nothing, so bulk walks that don't care about address
// order (e.g. building a reverse frame index) stay O(n). fn must not map or
// unmap pages; mutating the PTE through the pointer is fine.
func (a *AddressSpace) Range(fn func(v VirtAddr, pte *PTE)) {
	for vpn, pte := range a.entries {
		fn(VirtAddr(vpn<<PageShift), pte)
	}
}

// Translate resolves v for a read or write access. On success it returns
// the physical address; otherwise the fault the hardware would raise.
// A fault is raised for: missing mapping, clear young bit (access-flag
// fault — Sentry's page-in trap), or a write to a read-only page.
func (a *AddressSpace) Translate(v VirtAddr, write bool) (mem.PhysAddr, *Fault) {
	pte := a.Lookup(v)
	if pte == nil || !pte.Present {
		a.ctrNotPresent.Inc()
		return 0, &Fault{Kind: FaultNotPresent, Addr: v, Write: write}
	}
	if !pte.Young {
		a.ctrAccessFlag.Inc()
		return 0, &Fault{Kind: FaultAccessFlag, Addr: v, Write: write}
	}
	if write && !pte.Writable {
		a.ctrProtection.Inc()
		return 0, &Fault{Kind: FaultProtection, Addr: v, Write: write}
	}
	return pte.Phys + mem.PhysAddr(uint64(v)&(PageSize-1)), nil
}

// ClearYoungAll clears the young bit on every mapping, arming a trap on the
// next touch of each page. Sentry uses this when transitioning a process to
// encrypted state.
func (a *AddressSpace) ClearYoungAll() {
	for _, pte := range a.entries {
		pte.Young = false
	}
}

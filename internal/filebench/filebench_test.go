package filebench

import (
	"bytes"
	"testing"

	"sentry/internal/blockdev"
	"sentry/internal/core"
	"sentry/internal/dmcrypt"
	"sentry/internal/kernel"
	"sentry/internal/sim"
	"sentry/internal/soc"
)

func testFS(t *testing.T, cacheSectors int) (*soc.SoC, *FS) {
	t.Helper()
	s := soc.Tegra3(1)
	disk := blockdev.NewRAMDisk(s, 8<<20)
	return s, NewFS(s, disk, cacheSectors)
}

func TestCreateAndReadBack(t *testing.T) {
	_, fs := testFS(t, 1024)
	if err := fs.Create("a", 100*blockdev.SectorSize, 0x42); err != nil {
		t.Fatal(err)
	}
	if sz, _ := fs.Size("a"); sz != 100*blockdev.SectorSize {
		t.Fatalf("size = %d", sz)
	}
	buf := make([]byte, blockdev.SectorSize)
	if err := fs.ReadAt("a", 50*blockdev.SectorSize, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x42 || buf[511] != 0x42 {
		t.Fatal("content wrong")
	}
}

func TestWriteReadThroughCache(t *testing.T) {
	_, fs := testFS(t, 64)
	_ = fs.Create("a", 1<<20, 0)
	data := bytes.Repeat([]byte{0x99}, blockdev.SectorSize)
	if err := fs.WriteAt("a", 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.SectorSize)
	if err := fs.ReadAt("a", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cached write lost")
	}
}

func TestWriteBackOnEvictionAndSync(t *testing.T) {
	s := soc.Tegra3(1)
	disk := blockdev.NewRAMDisk(s, 8<<20)
	fs := NewFS(s, disk, 4) // tiny cache to force eviction
	_ = fs.Create("a", 1<<20, 0)
	data := bytes.Repeat([]byte{0x77}, blockdev.SectorSize)
	_ = fs.WriteAt("a", 0, data)
	// Evict sector 0 by touching others.
	for i := 1; i < 10; i++ {
		_ = fs.ReadAt("a", uint64(i)*blockdev.SectorSize, make([]byte, blockdev.SectorSize))
	}
	got := make([]byte, blockdev.SectorSize)
	_ = disk.ReadSector(0, got)
	if !bytes.Equal(got, data) {
		t.Fatal("dirty sector not written back on eviction")
	}
	_ = fs.WriteAt("a", 20*blockdev.SectorSize, data)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = disk.ReadSector(20, got)
	if !bytes.Equal(got, data) {
		t.Fatal("sync did not flush")
	}
}

func TestDirectIOBypassesCache(t *testing.T) {
	_, fs := testFS(t, 1024)
	fs.DirectIO = true
	_ = fs.Create("a", 1<<20, 5)
	buf := make([]byte, blockdev.SectorSize)
	for i := 0; i < 20; i++ {
		_ = fs.ReadAt("a", 0, buf)
	}
	if fs.Hits != 0 {
		t.Fatalf("direct I/O hit the cache %d times", fs.Hits)
	}
}

func TestErrorsOnMissingFileAndFullDevice(t *testing.T) {
	_, fs := testFS(t, 16)
	if err := fs.ReadAt("nope", 0, make([]byte, blockdev.SectorSize)); err == nil {
		t.Fatal("missing file read succeeded")
	}
	if _, err := fs.Size("nope"); err == nil {
		t.Fatal("missing file size succeeded")
	}
	if err := fs.Create("big", 1<<30, 0); err == nil {
		t.Fatal("over-capacity create succeeded")
	}
	_ = fs.Create("a", blockdev.SectorSize, 0)
	if err := fs.Create("a", blockdev.SectorSize, 0); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if err := fs.ReadAt("a", 10*blockdev.SectorSize, make([]byte, blockdev.SectorSize)); err == nil {
		t.Fatal("out-of-extent read succeeded")
	}
}

// TestFig9Shape checks the relationships Figure 9 reports: the buffer cache
// masks crypto cost for cached random reads; direct I/O exposes it; Sentry
// (AES On SoC) costs about the same as generic AES.
func TestFig9Shape(t *testing.T) {
	run := func(provider string, direct bool, w Workload) Result {
		s := soc.Tegra3(1)
		k := kernel.New(s, "1234")
		disk := blockdev.NewRAMDisk(s, 16<<20)
		var dev blockdev.Device = disk
		if provider != "none" {
			sn, err := core.New(k, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			var p kernel.CipherProvider
			if provider == "sentry" {
				p = sn.RegisterOnSoC()
			} else {
				gp, err := core.NewGenericProvider(s, soc.DRAMBase+0x100000, make([]byte, 16))
				if err != nil {
					t.Fatal(err)
				}
				p = gp
			}
			dm, err := dmcrypt.NewWithProvider(disk, p, bytes.Repeat([]byte{9}, 16))
			if err != nil {
				t.Fatal(err)
			}
			dev = dm
		}
		// Cache big enough to hold the whole file set (as in the paper,
		// where creation warms the buffer cache and masks crypto).
		fs := NewFS(s, dev, 64<<10)
		fs.DirectIO = direct
		params := Params{Files: 4, FileSize: 1 << 20, Operations: 800, WriteRatio: 0.5}
		res, err := Run(s, fs, w, params, sim.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Cached randread: crypto adds ~no overhead (all hits after creation).
	noC := run("none", false, RandRead)
	sentryC := run("sentry", false, RandRead)
	if sentryC.Throughput < 0.85*noC.Throughput {
		t.Fatalf("cached randread: sentry %.1f MB/s vs no-crypto %.1f MB/s — cache should mask crypto",
			sentryC.Throughput, noC.Throughput)
	}

	// Direct I/O randread: crypto clearly visible.
	noD := run("none", true, RandRead)
	sentryD := run("sentry", true, RandRead)
	if sentryD.Throughput > 0.6*noD.Throughput {
		t.Fatalf("direct randread: sentry %.1f vs no-crypto %.1f — crypto cost should be exposed",
			sentryD.Throughput, noD.Throughput)
	}

	// Sentry ≈ generic AES (the paper's point: on-SoC protection is nearly
	// free next to the crypto itself).
	genD := run("generic", true, RandRead)
	ratio := sentryD.Throughput / genD.Throughput
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("direct randread: sentry/generic = %.2f, want ~1", ratio)
	}
}

func TestWorkloadStrings(t *testing.T) {
	if SeqRead.String() == "" || RandRead.String() == "" || RandRW.String() == "" {
		t.Fatal("empty workload name")
	}
}

package filebench

import (
	"bytes"
	"testing"
	"testing/quick"

	"sentry/internal/blockdev"
	"sentry/internal/core"
	"sentry/internal/dmcrypt"
	"sentry/internal/kernel"
	"sentry/internal/soc"
)

// Property: the FS over any device stack (raw, dm-crypt generic, dm-crypt
// Sentry), with any cache size and I/O mode, behaves like an in-memory map
// of file contents across arbitrary read/write/sync sequences.
func TestFSMatchesModelProperty(t *testing.T) {
	type op struct {
		Write  bool
		Sector uint8
		Val    byte
		Sync   bool
	}
	// Direct I/O is a per-run mode: mixing O_DIRECT and cached I/O on the
	// same file is incoherent by design, on Linux as here.
	stacks := []string{"raw", "generic", "sentry"}
	for _, stack := range stacks {
		stack := stack
		f := func(ops []op, direct bool) bool {
			s := soc.Tegra3(1)
			k := kernel.New(s, "1234")
			disk := blockdev.NewRAMDisk(s, 1<<20)
			var dev blockdev.Device = disk
			switch stack {
			case "generic":
				gp, err := core.NewGenericProvider(s, soc.DRAMBase+0x100000, make([]byte, 16))
				if err != nil {
					return false
				}
				dm, err := dmcrypt.NewWithProvider(disk, gp, make([]byte, 16))
				if err != nil {
					return false
				}
				dev = dm
			case "sentry":
				sn, err := core.New(k, core.Config{})
				if err != nil {
					return false
				}
				dm, err := dmcrypt.NewWithProvider(disk, sn.RegisterOnSoC(), make([]byte, 16))
				if err != nil {
					return false
				}
				dev = dm
			}
			fs := NewFS(s, dev, 8) // tiny cache: lots of eviction
			fs.DirectIO = direct
			const sectors = 64
			if err := fs.Create("f", sectors*blockdev.SectorSize, 0); err != nil {
				return false
			}
			model := make([]byte, sectors*blockdev.SectorSize)
			buf := make([]byte, blockdev.SectorSize)
			for _, o := range ops {
				off := uint64(o.Sector%sectors) * blockdev.SectorSize
				if o.Sync {
					if fs.Sync() != nil {
						return false
					}
					continue
				}
				if o.Write {
					for i := range buf {
						buf[i] = o.Val
					}
					if fs.WriteAt("f", off, buf) != nil {
						return false
					}
					copy(model[off:], buf)
				} else {
					if fs.ReadAt("f", off, buf) != nil {
						return false
					}
					if !bytes.Equal(buf, model[off:off+blockdev.SectorSize]) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Fatalf("stack %s: %v", stack, err)
		}
	}
}

// Property: mixing direct and cached I/O never loses writes (write-back
// coherence between the buffer cache and the device).
func TestDirectAndCachedCoherence(t *testing.T) {
	s := soc.Tegra3(1)
	disk := blockdev.NewRAMDisk(s, 1<<20)
	fs := NewFS(s, disk, 64)
	_ = fs.Create("f", 64*blockdev.SectorSize, 0)

	a := bytes.Repeat([]byte{0xAA}, blockdev.SectorSize)
	if err := fs.WriteAt("f", 0, a); err != nil { // cached write
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.DirectIO = true
	got := make([]byte, blockdev.SectorSize)
	if err := fs.ReadAt("f", 0, got); err != nil { // direct read
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("direct read missed synced cached write")
	}
	b := bytes.Repeat([]byte{0xBB}, blockdev.SectorSize)
	if err := fs.WriteAt("f", 0, b); err != nil { // direct write
		t.Fatal(err)
	}
	fs.DirectIO = false
	// NOTE: like O_DIRECT on a file also held in the page cache, a stale
	// cached copy may win; invalidate by re-reading after sync semantics.
	// Our FS keeps the cached copy authoritative until evicted, so write
	// around the cache only for sectors not currently cached — here we
	// check the device actually took the direct write.
	onDisk := make([]byte, blockdev.SectorSize)
	_ = disk.ReadSector(0, onDisk)
	if !bytes.Equal(onDisk, b) {
		t.Fatal("direct write did not reach the device")
	}
}

// Package filebench reproduces the paper's §8.2 dm-crypt methodology: a
// tiny extent-based file system with a write-back buffer cache over a block
// device, plus the three filebench workloads the paper runs against it —
// sequential reads, random reads, and random read/writes — each with and
// without direct I/O (which bypasses the buffer cache and exposes the raw
// crypto cost).
package filebench

import (
	"fmt"

	"sentry/internal/blockdev"
	"sentry/internal/sim"
	"sentry/internal/soc"
)

// cacheHitWordCycles charges the page-cache memcpy on a buffer-cache hit.
const cacheHitWordCycles = 2

// syscallCycles is the per-I/O-operation kernel entry/exit, VFS, and
// scheduling cost. It dominates cached accesses, which is what keeps the
// paper's no-crypto baselines at realistic tens of MB/s instead of memcpy
// speed and produces the ~2x (not 20x) randrw crypto cut.
const syscallCycles = 12000

// FS is a minimal extent-allocated file system with a buffer cache.
type FS struct {
	s   *soc.SoC
	dev blockdev.Device

	// DirectIO bypasses the buffer cache entirely (O_DIRECT).
	DirectIO bool

	files map[string]extent
	next  uint64 // next free sector

	cache    map[uint64]*cacheEntry
	cacheCap int
	clockRef []uint64 // FIFO of cached sectors for eviction

	// Stats
	Hits, Misses uint64
}

type extent struct {
	start   uint64
	sectors uint64
}

type cacheEntry struct {
	data  []byte
	dirty bool
}

// NewFS formats a file system over dev with a buffer cache of cacheSectors
// sectors (0 disables caching outright).
func NewFS(s *soc.SoC, dev blockdev.Device, cacheSectors int) *FS {
	return &FS{
		s: s, dev: dev,
		files:    make(map[string]extent),
		cache:    make(map[uint64]*cacheEntry),
		cacheCap: cacheSectors,
	}
}

// Create allocates a file of the given size (rounded up to sectors) and
// writes initial content through the normal (cached) path, warming the
// cache exactly as filebench's creation phase does.
func (f *FS) Create(name string, size uint64, fill byte) error {
	sectors := (size + blockdev.SectorSize - 1) / blockdev.SectorSize
	if f.next+sectors > f.dev.Sectors() {
		return fmt.Errorf("filebench: device full creating %q", name)
	}
	if _, ok := f.files[name]; ok {
		return fmt.Errorf("filebench: file %q exists", name)
	}
	ext := extent{start: f.next, sectors: sectors}
	f.next += sectors
	f.files[name] = ext
	buf := make([]byte, blockdev.SectorSize)
	for i := range buf {
		buf[i] = fill
	}
	for i := uint64(0); i < sectors; i++ {
		if err := f.writeSector(ext.start+i, buf); err != nil {
			return err
		}
	}
	return nil
}

// Size returns a file's size in bytes.
func (f *FS) Size(name string) (uint64, error) {
	ext, ok := f.files[name]
	if !ok {
		return 0, fmt.Errorf("filebench: no file %q", name)
	}
	return ext.sectors * blockdev.SectorSize, nil
}

func (f *FS) evictIfFull() error {
	for len(f.cache) >= f.cacheCap && len(f.clockRef) > 0 {
		victim := f.clockRef[0]
		f.clockRef = f.clockRef[1:]
		e, ok := f.cache[victim]
		if !ok {
			continue
		}
		if e.dirty {
			if err := f.dev.WriteSector(victim, e.data); err != nil {
				return err
			}
		}
		delete(f.cache, victim)
	}
	return nil
}

func (f *FS) chargeHit() {
	f.s.Compute(blockdev.SectorSize / 4 * cacheHitWordCycles)
}

func (f *FS) readSector(n uint64, dst []byte) error {
	if f.DirectIO || f.cacheCap == 0 {
		return f.dev.ReadSector(n, dst)
	}
	if e, ok := f.cache[n]; ok {
		copy(dst, e.data)
		f.chargeHit()
		f.Hits++
		return nil
	}
	f.Misses++
	if err := f.evictIfFull(); err != nil {
		return err
	}
	data := make([]byte, blockdev.SectorSize)
	if err := f.dev.ReadSector(n, data); err != nil {
		return err
	}
	f.cache[n] = &cacheEntry{data: data}
	f.clockRef = append(f.clockRef, n)
	copy(dst, data)
	return nil
}

func (f *FS) writeSector(n uint64, src []byte) error {
	if f.DirectIO || f.cacheCap == 0 {
		return f.dev.WriteSector(n, src)
	}
	if e, ok := f.cache[n]; ok {
		copy(e.data, src)
		e.dirty = true
		f.chargeHit()
		f.Hits++
		return nil
	}
	f.Misses++
	if err := f.evictIfFull(); err != nil {
		return err
	}
	data := make([]byte, blockdev.SectorSize)
	copy(data, src)
	f.cache[n] = &cacheEntry{data: data, dirty: true}
	f.clockRef = append(f.clockRef, n)
	return nil
}

// resolve maps (file, offset) to a device sector.
func (f *FS) resolve(name string, off uint64) (uint64, error) {
	ext, ok := f.files[name]
	if !ok {
		return 0, fmt.Errorf("filebench: no file %q", name)
	}
	sec := off / blockdev.SectorSize
	if sec >= ext.sectors {
		return 0, fmt.Errorf("filebench: offset %d beyond %q", off, name)
	}
	return ext.start + sec, nil
}

// ReadAt reads one sector-aligned chunk of the file.
func (f *FS) ReadAt(name string, off uint64, dst []byte) error {
	sec, err := f.resolve(name, off)
	if err != nil {
		return err
	}
	f.s.Compute(syscallCycles)
	return f.readSector(sec, dst)
}

// WriteAt writes one sector-aligned chunk of the file.
func (f *FS) WriteAt(name string, off uint64, src []byte) error {
	sec, err := f.resolve(name, off)
	if err != nil {
		return err
	}
	f.s.Compute(syscallCycles)
	return f.writeSector(sec, src)
}

// Sync flushes every dirty cached sector to the device.
func (f *FS) Sync() error {
	for n, e := range f.cache {
		if e.dirty {
			if err := f.dev.WriteSector(n, e.data); err != nil {
				return err
			}
			e.dirty = false
		}
	}
	return nil
}

// Workload is one filebench personality.
type Workload int

// The paper's three workloads.
const (
	SeqRead Workload = iota
	RandRead
	RandRW
)

func (w Workload) String() string {
	switch w {
	case SeqRead:
		return "seqread"
	case RandRead:
		return "randread"
	case RandRW:
		return "randrw"
	}
	return "unknown"
}

// Params configures a run.
type Params struct {
	Files      int    // how many files the creation phase makes
	FileSize   uint64 // bytes per file
	Operations int    // I/O operations in the measured phase
	WriteRatio float64
}

// DefaultParams mirrors the paper's setup scaled to the simulator: a
// 450 MB partition populated with a variety of files.
func DefaultParams() Params {
	return Params{Files: 16, FileSize: 4 << 20, Operations: 4000, WriteRatio: 0.5}
}

// Result is a run's outcome.
type Result struct {
	Workload   Workload
	DirectIO   bool
	Bytes      uint64
	Seconds    float64
	Throughput float64 // MB/s
	HitRate    float64
}

// Run executes the workload: create the file set (warming the cache, as the
// paper notes this "masks some of the performance overhead"), then run the
// measured operation phase and report throughput from the simulated clock.
func Run(s *soc.SoC, fs *FS, w Workload, p Params, rng *sim.RNG) (Result, error) {
	for i := 0; i < p.Files; i++ {
		if err := fs.Create(fileName(i), p.FileSize, byte(i)); err != nil {
			return Result{}, err
		}
	}
	// The creation phase's write-back belongs to setup, not the measured
	// window; the steady-state flusher has drained it by measurement time.
	if err := fs.Sync(); err != nil {
		return Result{}, err
	}
	buf := make([]byte, blockdev.SectorSize)
	sectorsPerFile := p.FileSize / blockdev.SectorSize

	start := s.Clock.Cycles()
	var bytes uint64
	seq := uint64(0)
	for op := 0; op < p.Operations; op++ {
		name := fileName(rng.Intn(p.Files))
		var off uint64
		if w == SeqRead {
			off = (seq % sectorsPerFile) * blockdev.SectorSize
			seq++
		} else {
			off = uint64(rng.Intn(int(sectorsPerFile))) * blockdev.SectorSize
		}
		var err error
		if w == RandRW && rng.Float64() < p.WriteRatio {
			err = fs.WriteAt(name, off, buf)
		} else {
			err = fs.ReadAt(name, off, buf)
		}
		if err != nil {
			return Result{}, err
		}
		bytes += blockdev.SectorSize
	}
	if err := fs.Sync(); err != nil {
		return Result{}, err
	}
	sec := s.Clock.SecondsFor(s.Clock.Cycles() - start)
	res := Result{
		Workload: w, DirectIO: fs.DirectIO,
		Bytes: bytes, Seconds: sec,
		Throughput: float64(bytes) / (1 << 20) / sec,
	}
	if fs.Hits+fs.Misses > 0 {
		res.HitRate = float64(fs.Hits) / float64(fs.Hits+fs.Misses)
	}
	return res, nil
}

func fileName(i int) string { return fmt.Sprintf("file%03d", i) }

// Package soc composes the hardware substrates into complete simulated
// platforms mirroring the paper's two prototypes:
//
//   - Tegra3: the NVidia Tegra 3 development board — 1 GB DRAM, 256 KB iRAM
//     (first 64 KB reserved by firmware), a 1 MB 8-way PL310 L2 with
//     lockdown enabled by the board firmware, secure-world (TrustZone)
//     access, quad Cortex-A9 at 1.2 GHz, unlocked bootloader.
//   - Nexus4: the Google Nexus 4 — 2 GB DRAM, iRAM, a crypto accelerator,
//     but locked firmware: no secure-world entry and therefore no cache
//     locking, and a locked bootloader.
//
// A SoC also owns the three reset paths whose remanence consequences
// Table 2 measures: warm OS reboot, device reflash (short power blip), and
// a held reset (2 s power cut).
package soc

import (
	"errors"

	"sentry/internal/bus"
	"sentry/internal/cache"
	"sentry/internal/cpu"
	"sentry/internal/dma"
	"sentry/internal/firmware"
	"sentry/internal/mem"
	"sentry/internal/obs"
	"sentry/internal/remanence"
	"sentry/internal/sim"
	"sentry/internal/tz"
)

// ErrUnsupported reports that the platform lacks the hardware capability an
// operation needs (no exposed bus to probe, no open DMA port, no secure
// world, ...). Wrap it with fmt.Errorf("...: %w", ErrUnsupported) so callers
// can test with errors.Is.
var ErrUnsupported = errors.New("soc: platform does not support this operation")

// Fixed physical address map shared by both platforms.
const (
	IRAMBase mem.PhysAddr = 0x4000_0000
	DRAMBase mem.PhysAddr = 0x8000_0000
)

// Profile describes a hardware platform.
type Profile struct {
	Name     string
	CPUHz    uint64
	DRAMSize uint64
	IRAMSize uint64
	// IRAMReserved bytes at the bottom of iRAM belong to platform firmware;
	// overwriting them crashes the device (observed on the Tegra 3 tablet).
	IRAMReserved uint64

	Cache         cache.Config
	CacheLockable bool // firmware permits programming the lockdown register

	SecureWorld      bool // we can enter the TrustZone secure world
	HasCryptoAccel   bool
	BootloaderLocked bool
	ZeroIRAMOnBoot   bool

	// Physical probe points. ExposedBus means the DRAM bus is routed over
	// probeable traces (discrete DRAM packages, as on dev boards); a
	// package-on-package stack leaves nothing to clip onto. OpenDMAPort
	// means the device exposes a DMA-capable peripheral port an attacker
	// can drive without first unlocking the firmware.
	ExposedBus  bool
	OpenDMAPort bool

	Costs  sim.CostTable
	Energy sim.EnergyTable

	// Accelerator behaviour (Nexus 4): the crypto engine down-clocks while
	// the device is locked; the paper measured it 4× slower locked.
	AccelLockedSlowdown float64
}

// Tegra3Profile returns the NVidia Tegra 3 development board profile.
func Tegra3Profile() Profile {
	return Profile{
		Name:     "tegra3",
		CPUHz:    1_200_000_000,
		DRAMSize: 1 << 30,   // 1 GB
		IRAMSize: 256 << 10, // 256 KB
		// First 64 KB hold peripheral firmware state (§4.5).
		IRAMReserved:     64 << 10,
		Cache:            cache.Tegra3Config,
		CacheLockable:    true,
		SecureWorld:      true,
		HasCryptoAccel:   false,
		BootloaderLocked: false,
		ZeroIRAMOnBoot:   true,
		// The dev board routes DRAM over probeable traces and exposes
		// DMA-capable debug peripherals.
		ExposedBus:  true,
		OpenDMAPort: true,
		Costs: sim.CostTable{
			DRAMAccess:      60,
			L2Hit:           4,
			IRAMAccess:      4,
			DRAMBurst:       480,
			DMAWordCost:     4,
			ContextSwitch:   2400,
			PageFaultTrap:   1600,
			IRQToggle:       24,
			TLBFill:         2,
			BypassPenalty:   120,
			AESRoundCompute: 40,
		},
		Energy: sim.EnergyTable{
			DRAMAccessPJ:   2600,
			L2HitPJ:        1100,
			IRAMAccessPJ:   900,
			CPUCyclePJ:     700,
			PageZeroPerMB:  2.8e6, // 2.8 µJ per MB, the paper's measurement
			BatteryJ:       18000, // dev board; energy results come from Nexus
			IdleSystemPJPC: 90,
		},
	}
}

// Nexus4Profile returns the Google Nexus 4 profile.
func Nexus4Profile() Profile {
	return Profile{
		Name:         "nexus4",
		CPUHz:        1_500_000_000,
		DRAMSize:     2 << 30,   // 2 GB
		IRAMSize:     256 << 10, // modelled same size as Tegra
		IRAMReserved: 64 << 10,
		// The Nexus 4 has an L2, but its firmware is locked: lockdown
		// registers are secure-world-only and we have no secure-world entry.
		Cache:            cache.Config{Ways: 8, WaySize: 128 * 1024, LineSize: 32},
		CacheLockable:    false,
		SecureWorld:      false,
		HasCryptoAccel:   true,
		BootloaderLocked: true,
		ZeroIRAMOnBoot:   true,
		// Production phone: DRAM is package-on-package (no bus traces to
		// probe) and no DMA-capable port is reachable without unlocking.
		ExposedBus:  false,
		OpenDMAPort: false,
		Costs: sim.CostTable{
			DRAMAccess:         45,
			L2Hit:              2,
			IRAMAccess:         2,
			DRAMBurst:          360,
			DMAWordCost:        3,
			ContextSwitch:      1800,
			PageFaultTrap:      1200,
			IRQToggle:          18,
			TLBFill:            2,
			BypassPenalty:      90,
			AESRoundCompute:    16,
			AcceleratorSetup:   24000,
			AcceleratorPerByte: 38, // cycles per byte at full clock
		},
		Energy: sim.EnergyTable{
			DRAMAccessPJ:   2600,
			L2HitPJ:        1400,
			IRAMAccessPJ:   1100,
			CPUCyclePJ:     900,
			AccelByteP_J:   27500, // at full clock; ×slowdown when locked
			AccelSetupPJ:   2.0e7,
			PageZeroPerMB:  2.8e6,
			BatteryJ:       28700, // 2100 mAh × 3.8 V
			IdleSystemPJPC: 80,
		},
		AccelLockedSlowdown: 4.0,
	}
}

// SoC is a fully wired simulated platform.
type SoC struct {
	Prof  Profile
	Clock *sim.Clock
	Meter *sim.Meter
	RNG   *sim.RNG

	IRAM *mem.Device
	DRAM *mem.Device
	Bus  *bus.Bus
	L2   *cache.L2
	CPU  *cpu.CPU
	DMA  *dma.Controller
	TZ   *tz.Controller
	ROM  *firmware.BootROM
	UART *dma.UARTLoopback

	// ScreenLocked is the device lock state hardware exposes to the crypto
	// accelerator's clock governor.
	ScreenLocked bool

	// Trace and Metrics are the platform's observability layer; both are
	// nil until Instrument wires them through every component.
	Trace   *obs.Tracer
	Metrics *obs.Registry

	// instrumented records whether Instrument ran, as opposed to Metrics
	// being set bare (core does that to host its counters without paying for
	// per-transaction component instruments). Fork replicates the exact
	// wiring state so a clone observes neither more nor less than its parent.
	instrumented bool
}

// New builds and cold-boots a platform from a profile. seed drives every
// stochastic model on the platform.
func New(p Profile, seed int64) *SoC {
	s := &SoC{
		Prof:  p,
		Clock: sim.NewClock(p.CPUHz),
		Meter: &sim.Meter{},
		RNG:   sim.NewRNG(seed),
	}
	s.IRAM = mem.NewDevice("iram", mem.TechSRAM, IRAMBase, p.IRAMSize)
	s.DRAM = mem.NewDevice("dram", mem.TechDRAM, DRAMBase, p.DRAMSize)
	// Only DRAM sits behind the external bus; iRAM is on-SoC.
	s.Bus = bus.New(s.Clock, s.Meter, &p.Costs, &p.Energy, mem.NewMap(s.DRAM))
	s.L2 = cache.New(p.Cache, s.Clock, s.Meter, &p.Costs, &p.Energy, s.Bus)
	s.TZ = tz.New(p.SecureWorld, s.RNG)
	s.CPU = cpu.New(s.Clock, s.Meter, &p.Costs, &p.Energy, s.L2, s.Bus, s.IRAM)
	s.CPU.Guard = s.TZ
	s.DMA = dma.New("dma0", s.Bus, mem.NewMap(s.IRAM), s.Clock, &p.Costs, s.TZ)
	s.UART = &dma.UARTLoopback{}
	s.ROM = &firmware.BootROM{
		VendorKey:        "vendor",
		BootloaderLocked: p.BootloaderLocked,
		ZeroIRAMOnBoot:   p.ZeroIRAMOnBoot,
	}
	s.ROM.ColdBoot(s.IRAM, s.L2)
	s.rekeyCacheIndex()
	return s
}

// rekeyCacheIndex draws a fresh key for the randomized index permutation
// (profiles with Cache.RandomizedIndex set). Called once per boot, on the
// empty post-reset cache: the defence's security argument is exactly that
// the address→set mapping does not survive a power cycle.
func (s *SoC) rekeyCacheIndex() {
	if s.Prof.Cache.RandomizedIndex {
		s.L2.SetIndexKey(s.RNG.Uint64())
	}
}

// Freeze seals both memory devices so subsequent Forks share their pages
// copy-on-write without mutating this SoC. Freeze is idempotent; after it, a
// parked (no longer mutated) SoC may be forked from multiple goroutines
// concurrently.
func (s *SoC) Freeze() {
	s.IRAM.Store().Seal()
	s.DRAM.Store().Seal()
}

// FreezeBase is the stronger freeze a delta-encoding population needs: it
// seals the stores (Freeze) and pins the L2 read-only (FreezeShared), so
// this SoC can serve as the shared base that Deflate compares against and
// that concurrent Forks clone without any parent-side mutation.
func (s *SoC) FreezeBase() {
	s.Freeze()
	s.L2.FreezeShared()
}

// Deflate re-encodes the platform's heavyweight state as a delta against a
// FreezeBase'd base platform: both memory stores are rebased onto the base's
// sealed page maps (keeping only diverged pages, see mem.Store.Rebase) and
// the L2's dense arrays are replaced by a sparse line delta (released to the
// clone pool, see cache.L2.Deflate). Contents are unchanged — the next Fork
// reconstructs a byte-identical platform — only the resting memory cost
// drops from O(everything the world ever touched) to O(divergence from the
// base). Returns an estimate of the bytes still retained privately.
//
// Only an exclusively owned, no-longer-running platform (a parked snapshot)
// may be deflated; after Deflate, Fork and Release are the only legal
// operations until a Fork re-inflates a dense copy.
func (s *SoC) Deflate(base *SoC) int64 {
	n := int64(s.IRAM.Rebase(base.IRAM)) + int64(s.DRAM.Rebase(base.DRAM))
	bytes := n*mem.PageSize + s.L2.Deflate(base.L2)
	// Everything else on the platform (CPU registers, TZ state, RNG, bus
	// stats, registry clone) is a few KB of flat structs; charge a nominal
	// constant so the gauge reflects per-device floor cost too.
	return bytes + 4096
}

// FootprintBytes estimates the platform's resting memory cost in its
// current encoding, on the same scale Deflate reports: resident page bytes
// of both stores plus the L2's footprint (dense arrays, or the sparse delta
// once deflated) plus the flat-struct constant. A full-parked platform is
// measured by this; a delta-parked one by Deflate's return — the ratio is
// the fleet's bytes-per-parked-device reduction.
func (s *SoC) FootprintBytes() int64 {
	n := int64(s.IRAM.ResidentPages() + s.DRAM.ResidentPages())
	return n*mem.PageSize + s.L2.FootprintBytes() + 4096
}

// Fork returns an independent deep copy of the platform. Memory contents are
// shared copy-on-write with this SoC (both sides seal their stores), so a
// fork costs O(live metadata), not O(DRAM size). The clone continues the
// parent's streams exactly: clock cycles, accumulated energy, RNG position,
// cache contents and lockdown state, bus statistics, and register state all
// carry over, so a forked platform replays byte-identically to one that
// reached the same point from a cold boot.
//
// Not carried: bus monitors, fault injectors, the CPU's address space and
// fault handler, and observability wiring — those belong to the software
// stack above (kernel, attack harnesses), which re-attaches its own on the
// fork. The Metrics registry is deep-copied with no bound owner; Trace is
// shared (it is internally synchronised and bounded).
func (s *SoC) Fork() *SoC {
	n := &SoC{
		Prof:         s.Prof,
		Clock:        s.Clock.Clone(),
		Meter:        s.Meter.Clone(),
		RNG:          s.RNG.Clone(),
		ScreenLocked: s.ScreenLocked,
	}
	n.IRAM = s.IRAM.Fork()
	n.DRAM = s.DRAM.Fork()
	n.Bus = s.Bus.Clone(n.Clock, n.Meter, mem.NewMap(n.DRAM))
	n.L2 = s.L2.Clone(n.Clock, n.Meter, n.Bus)
	n.TZ = s.TZ.Clone()
	n.CPU = s.CPU.Clone(n.Clock, n.Meter, n.L2, n.Bus, n.IRAM)
	n.CPU.Guard = n.TZ
	n.DMA = s.DMA.Clone(n.Bus, mem.NewMap(n.IRAM), n.Clock, n.TZ)
	n.UART = s.UART.Clone()
	rom := *s.ROM
	n.ROM = &rom
	if s.instrumented {
		n.Instrument(s.Trace, s.Metrics.Clone())
	} else if s.Metrics != nil {
		n.Metrics = s.Metrics.Clone()
	}
	return n
}

// Release recycles the platform's fork-private allocations (today: the L2
// metadata arrays) into the clone pool and leaves the SoC unusable. Only
// an exclusive owner — a fork or hand-off nobody else references — may
// call it; memory pages stay untouched because they may be shared
// copy-on-write with live forks.
func (s *SoC) Release() {
	s.L2.Release()
}

// Instrument wires an observability layer through every hardware component.
// Either argument may be nil (tracing without metrics, or vice versa).
// Call it once, at setup: components resolve their instruments here and the
// hot paths then run nil-gated.
func (s *SoC) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	s.Trace = tr
	s.Metrics = reg
	s.instrumented = true
	s.Bus.SetObs(tr, reg)
	s.L2.SetObs(tr, reg)
	s.CPU.SetObs(tr, reg)
	s.DMA.SetObs(tr, reg)
}

// Tegra3 returns a booted Tegra 3 development board.
func Tegra3(seed int64) *SoC { return New(Tegra3Profile(), seed) }

// Nexus4 returns a booted Nexus 4.
func Nexus4(seed int64) *SoC { return New(Nexus4Profile(), seed) }

// Compute charges busy CPU cycles (time and dynamic energy). Workload and
// crypto models use it for their ALU work.
func (s *SoC) Compute(cycles uint64) {
	s.Clock.Advance(cycles)
	s.Meter.Charge(float64(cycles) * s.Prof.Energy.CPUCyclePJ)
}

// AccelEncryptCost returns the cycles and picojoules the crypto accelerator
// takes for n bytes in the current power state. The engine down-clocks while
// the screen is locked — the effect the paper discovered when its 4 KB page
// encryptions ran 4× slower than expected.
func (s *SoC) AccelEncryptCost(n int) (cycles uint64, pj float64) {
	if !s.Prof.HasCryptoAccel {
		panic("soc: platform has no crypto accelerator")
	}
	perByte := s.Prof.Costs.AcceleratorPerByte
	bytePJ := s.Prof.Energy.AccelByteP_J
	if s.ScreenLocked && s.Prof.AccelLockedSlowdown > 1 {
		perByte *= s.Prof.AccelLockedSlowdown
		bytePJ *= s.Prof.AccelLockedSlowdown
	}
	cycles = s.Prof.Costs.AcceleratorSetup + uint64(perByte*float64(n))
	pj = s.Prof.Energy.AccelSetupPJ + bytePJ*float64(n)
	return cycles, pj
}

// UsableIRAM returns the iRAM range available to the OS (beyond the
// firmware-reserved prefix).
func (s *SoC) UsableIRAM() (base mem.PhysAddr, size uint64) {
	return IRAMBase + mem.PhysAddr(s.Prof.IRAMReserved), s.Prof.IRAMSize - s.Prof.IRAMReserved
}

// OSReboot models a warm reboot into the given image: no power loss, so no
// decay and no ROM zeroing — but the new image scribbles over part of DRAM
// and the kernel reinitialises the caches. Returns firmware.ErrUnsignedImage
// if secure boot rejects the image.
func (s *SoC) OSReboot(img firmware.Image) error {
	if err := s.ROM.VerifyImage(img); err != nil {
		return err
	}
	// Kernel init: clean nothing, invalidate everything (fresh cache state).
	s.L2.SetAllocMask(s.L2.AllWaysMask())
	s.L2.InvalidateWays(s.L2.AllWaysMask())
	s.CPU.ZeroRegs()
	s.TZ.ClearProtections()
	firmware.Scribble(s.DRAM, s.RNG, img)
	return nil
}

// PowerCut models losing power for d seconds at temperature tempC, then
// cold-booting through the ROM: DRAM and iRAM decay per their technology
// curves, all volatile SoC state (cache lines, registers, lock state) is
// lost outright, and the ROM then zeroes iRAM and resets the cache.
func (s *SoC) PowerCut(seconds, tempC float64) {
	remanence.Decay(s.DRAM, s.RNG, seconds, tempC)
	remanence.Decay(s.IRAM, s.RNG, seconds, tempC)
	// SoC-internal state does not survive at all: cache SRAM loses its tags
	// within microseconds of losing power.
	s.L2.Reset()
	s.CPU.ZeroRegs()
	s.TZ.ClearProtections()
	s.ROM.ColdBoot(s.IRAM, s.L2)
	s.rekeyCacheIndex()
}

// GlitchedReset models a fault-injection attack on the reset path (the
// attack class of "Fault Attacks on Encrypted General Purpose Compute
// Platforms"): power is lost for the given seconds, but a well-timed
// voltage glitch diverts the ROM's cold-boot code, skipping both
// secure-boot image verification and the vendor firmware's iRAM zeroing.
// Volatile SoC state (cache lines, registers, TrustZone protections) is
// still physically lost — that part is physics, not firmware.
func (s *SoC) GlitchedReset(seconds float64, img firmware.Image) {
	remanence.Decay(s.DRAM, s.RNG, seconds, remanence.RoomTempC)
	remanence.Decay(s.IRAM, s.RNG, seconds, remanence.RoomTempC)
	s.L2.Reset()
	s.CPU.ZeroRegs()
	s.TZ.ClearProtections()
	s.rekeyCacheIndex()
	firmware.Scribble(s.DRAM, s.RNG, img)
}

// Reflash models the reflash cold-boot variant: a tap of the reset button
// (≈50 ms power blip) followed by the ROM boot path into a flashing
// environment that dumps memory without booting a full OS. If the
// bootloader is locked and the image unsigned, the reflash is refused
// unless the attacker unlocks the bootloader — which wipes user data; the
// caller models that choice.
func (s *SoC) Reflash(img firmware.Image) error {
	if err := s.ROM.VerifyImage(img); err != nil {
		return err
	}
	s.PowerCut(0.05, remanence.RoomTempC)
	firmware.Scribble(s.DRAM, s.RNG, img)
	return nil
}

// HeldReset models holding the reset button for the given seconds — the
// paper's "2 second reset" — then booting the given image.
func (s *SoC) HeldReset(seconds float64, img firmware.Image) error {
	if err := s.ROM.VerifyImage(img); err != nil {
		return err
	}
	s.PowerCut(seconds, remanence.RoomTempC)
	firmware.Scribble(s.DRAM, s.RNG, img)
	return nil
}

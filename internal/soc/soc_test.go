package soc

import (
	"testing"

	"sentry/internal/firmware"
	"sentry/internal/mem"
	"sentry/internal/remanence"
)

func TestTegra3Profile(t *testing.T) {
	s := Tegra3(1)
	if s.Prof.DRAMSize != 1<<30 || s.Prof.IRAMSize != 256<<10 {
		t.Fatal("Tegra3 memory sizes wrong")
	}
	if !s.Prof.CacheLockable || !s.Prof.SecureWorld {
		t.Fatal("Tegra3 must support cache locking via TrustZone")
	}
	if s.Prof.BootloaderLocked {
		t.Fatal("the dev board has an unlocked bootloader")
	}
	if s.L2.SizeBytes() != 1<<20 {
		t.Fatal("Tegra3 L2 must be 1 MB")
	}
}

func TestNexus4Profile(t *testing.T) {
	s := Nexus4(1)
	if s.Prof.DRAMSize != 2<<30 {
		t.Fatal("Nexus4 must have 2 GB DRAM")
	}
	if s.Prof.CacheLockable || s.Prof.SecureWorld {
		t.Fatal("Nexus4 firmware is locked: no cache locking, no secure world")
	}
	if !s.Prof.HasCryptoAccel || !s.Prof.BootloaderLocked {
		t.Fatal("Nexus4 accel/bootloader flags wrong")
	}
	if s.TZ.Available() {
		t.Fatal("TZ should be unavailable on Nexus4")
	}
}

func TestUsableIRAMSkipsFirmwareRegion(t *testing.T) {
	s := Tegra3(1)
	base, size := s.UsableIRAM()
	if base != IRAMBase+64<<10 || size != 192<<10 {
		t.Fatalf("usable iRAM = %#x +%d", uint64(base), size)
	}
}

func TestCPUCanUseIRAMAndDRAM(t *testing.T) {
	s := Tegra3(1)
	base, _ := s.UsableIRAM()
	s.CPU.WritePhys(base, []byte("iram"))
	s.CPU.WritePhys(DRAMBase, []byte("dram"))
	got := make([]byte, 4)
	s.CPU.ReadPhys(base, got)
	if string(got) != "iram" {
		t.Fatal("iram access broken")
	}
	s.CPU.ReadPhys(DRAMBase, got)
	if string(got) != "dram" {
		t.Fatal("dram access broken")
	}
}

func TestOSRebootPreservesIRAMScribblesDRAM(t *testing.T) {
	s := Tegra3(1)
	base, _ := s.UsableIRAM()
	s.IRAM.Write(base, []byte("iram-secret"))
	s.DRAM.Write(DRAMBase, []byte("low-dram"))
	if err := s.OSReboot(firmware.Image{Name: "os", Vendor: "vendor", ScribbleFraction: firmware.DefaultOSScribbleFraction}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 11)
	s.IRAM.Read(base, buf)
	if string(buf) != "iram-secret" {
		t.Fatal("warm reboot must preserve iRAM")
	}
	low := make([]byte, 8)
	s.DRAM.Read(DRAMBase, low)
	if string(low) == "low-dram" {
		t.Fatal("booting OS should scribble over low DRAM")
	}
}

func TestPowerCutZeroesIRAM(t *testing.T) {
	s := Tegra3(1)
	base, _ := s.UsableIRAM()
	s.IRAM.Write(base, []byte("iram-secret"))
	s.PowerCut(0.05, remanence.RoomTempC)
	buf := make([]byte, 11)
	s.IRAM.Read(base, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("iRAM survived a power cut (ROM must zero it)")
		}
	}
}

func TestPowerCutMostlyPreservesDRAMForShortBlip(t *testing.T) {
	s := Tegra3(1)
	payload := []byte("REMANENT")
	addr := func(i int) mem.PhysAddr { return DRAMBase + 0x100000 + mem.PhysAddr(64*i) }
	for i := 0; i < 1000; i++ {
		s.DRAM.Write(addr(i), payload)
	}
	s.PowerCut(0.05, remanence.RoomTempC)
	survived := 0
	buf := make([]byte, 8)
	for i := 0; i < 1000; i++ {
		s.DRAM.Read(addr(i), buf)
		if string(buf) == "REMANENT" {
			survived++
		}
	}
	if survived < 900 {
		t.Fatalf("only %d/1000 patterns survived a 50ms blip; want ~975", survived)
	}
}

func TestReflashRequiresSignatureWhenLocked(t *testing.T) {
	s := Nexus4(1)
	err := s.Reflash(firmware.Image{Name: "frost", Vendor: ""})
	if err != firmware.ErrUnsignedImage {
		t.Fatalf("unsigned reflash on locked bootloader: %v", err)
	}
	s2 := Tegra3(1)
	if err := s2.Reflash(firmware.Image{Name: "frost"}); err != nil {
		t.Fatalf("unlocked bootloader refused reflash: %v", err)
	}
}

func TestAccelDownclocksWhenLocked(t *testing.T) {
	s := Nexus4(1)
	awakeCycles, awakePJ := s.AccelEncryptCost(4096)
	s.ScreenLocked = true
	lockedCycles, lockedPJ := s.AccelEncryptCost(4096)
	if lockedCycles <= awakeCycles || lockedPJ <= awakePJ {
		t.Fatal("accelerator should be slower and costlier when locked")
	}
	ratio := float64(lockedCycles-s.Prof.Costs.AcceleratorSetup) / float64(awakeCycles-s.Prof.Costs.AcceleratorSetup)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("locked slowdown = %.2f, want ~4x", ratio)
	}
}

func TestAccelPanicsWithoutHardware(t *testing.T) {
	s := Tegra3(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.AccelEncryptCost(16)
}

func TestComputeChargesTimeAndEnergy(t *testing.T) {
	s := Tegra3(1)
	c0, e0 := s.Clock.Cycles(), s.Meter.PJ()
	s.Compute(1000)
	if s.Clock.Cycles()-c0 != 1000 {
		t.Fatal("cycles not charged")
	}
	if s.Meter.PJ()-e0 != 1000*s.Prof.Energy.CPUCyclePJ {
		t.Fatal("energy not charged")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() uint64 {
		s := Tegra3(99)
		s.DRAM.Write(DRAMBase, make([]byte, 4096))
		s.PowerCut(2.0, remanence.RoomTempC)
		var sum uint64
		buf := make([]byte, 4096)
		s.DRAM.Read(DRAMBase, buf)
		for _, b := range buf {
			sum = sum*31 + uint64(b)
		}
		return sum
	}
	if run() != run() {
		t.Fatal("same seed produced different decay")
	}
}

func TestOSRebootResetsCacheState(t *testing.T) {
	s := Tegra3(1)
	s.CPU.WritePhys(DRAMBase+0x40000000-0x1000, []byte("dirty")) // high DRAM, above scribble
	_ = s.TZ.WithSecure(func() error { return s.TZ.SetCacheAllocMask(s.L2, 1) })
	if err := s.OSReboot(firmware.Image{Name: "os"}); err != nil {
		t.Fatal(err)
	}
	if s.L2.AllocMask() != s.L2.AllWaysMask() {
		t.Fatal("lockdown survived warm reboot")
	}
	if hit, _, _ := s.L2.Probe(DRAMBase + 0x40000000 - 0x1000); hit {
		t.Fatal("cache contents survived warm reboot")
	}
	// Warm reboot drops (does not clean) the cache: the dirty line is lost,
	// which is precisely why it cannot be exploited to flush secrets out.
	buf := make([]byte, 5)
	s.DRAM.Read(DRAMBase+0x40000000-0x1000, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("warm reboot wrote dirty lines back")
		}
	}
}

func TestHeldResetDestroysAlmostEverything(t *testing.T) {
	s := Tegra3(3)
	for i := 0; i < 1000; i++ {
		s.DRAM.Write(DRAMBase+0x100000+mem.PhysAddr(64*i), []byte("REMANENT"))
	}
	if err := s.HeldReset(2.0, firmware.Image{Name: "dump"}); err != nil {
		t.Fatal(err)
	}
	survived := 0
	buf := make([]byte, 8)
	for i := 0; i < 1000; i++ {
		s.DRAM.Read(DRAMBase+0x100000+mem.PhysAddr(64*i), buf)
		if string(buf) == "REMANENT" {
			survived++
		}
	}
	if survived > 20 {
		t.Fatalf("%d/1000 patterns survived a 2s reset", survived)
	}
}

func TestTegraCostTablesSane(t *testing.T) {
	for _, p := range []Profile{Tegra3Profile(), Nexus4Profile()} {
		if p.Costs.DRAMAccess <= p.Costs.L2Hit {
			t.Fatalf("%s: DRAM must cost more than an L2 hit", p.Name)
		}
		if p.Costs.IRAMAccess > p.Costs.DRAMAccess {
			t.Fatalf("%s: iRAM must not cost more than DRAM", p.Name)
		}
		if p.Energy.BatteryJ <= 0 || p.Energy.CPUCyclePJ <= 0 {
			t.Fatalf("%s: energy table incomplete", p.Name)
		}
	}
}

package check

import "sentry/internal/snapshot"

// SnapshotEnabled gates the checkpoint/fork fast path through shrinking:
// candidate replays fork a captured post-boot world (and a live checkpoint
// of the surviving op prefix) instead of cold-booting per candidate. The
// sentrybench -snapshot=off escape hatch clears it; verdicts and shrunk
// reproducers are identical either way (snapshot_identity_test.go), only
// wall-clock differs. Set it before starting campaigns — it is read
// concurrently by parallel harnesses.
var SnapshotEnabled = true

// maxShrinkReplays bounds the replay budget one shrink may spend. Schedules
// are at most a few hundred ops and each replay is cheap, so the bound is
// generous; it exists so a pathological flip-flopping candidate set cannot
// hang a campaign.
const maxShrinkReplays = 4096

// ReplayFrom executes ops against an already-built world and reports the
// first violation. It is Replay's execution loop without the boot; the
// explorer drives forked worlds through it when re-deriving evicted tree
// nodes and replaying corpus prefixes.
func ReplayFrom(w *World, ops Schedule) *Violation {
	return replayFrom(w, ops)
}

// replayFrom executes ops against an already-built world and reports the
// first violation. It is Replay's execution loop without the boot.
func replayFrom(w *World, ops Schedule) *Violation {
	for _, op := range ops {
		if w.Dead() {
			break
		}
		if v := w.Apply(op); v != nil {
			return v
		}
	}
	return nil
}

// Shrink reduces a violating schedule to a minimal reproducer by greedy
// delta debugging: repeatedly try dropping contiguous chunks (halving the
// chunk size down to single ops) and keep any candidate that still
// violates. Every candidate is validated by a replay from the (cfg, seed)
// boot state — a cold boot per candidate, or, when SnapshotEnabled, a fork
// of one captured post-boot world, which is byte-identical and skips the
// boot cost. Within a sweep the surviving prefix cur[:start] is additionally
// kept advanced in a live checkpoint world, so each candidate forks the
// checkpoint and replays only its suffix.
//
// The violation need not stay literally identical while shrinking — dropping
// ops may surface the same leak under a different clause (e.g. "writeback"
// collapsing to "dram") — any violation counts, which is standard ddmin
// practice and keeps minima small.
//
// Returns the minimal schedule and its violation, or (sched, nil) if the
// input does not violate in the first place.
func Shrink(cfg Config, seed int64, sched Schedule) (Schedule, *Violation) {
	var boot *snapshot.Snapshot[*World]
	if SnapshotEnabled {
		boot = snapshot.Capture(NewWorld(cfg, seed))
	}
	return ShrinkFrom(boot, cfg, seed, sched)
}

// ShrinkFrom is Shrink reusing an already-captured post-boot snapshot of
// NewWorld(cfg, seed) — the explorer hands its tree's root checkpoint in, so
// shrinking a violation found among millions of schedules never re-boots.
// A nil boot falls back to a cold boot per candidate.
func ShrinkFrom(boot *snapshot.Snapshot[*World], cfg Config, seed int64, sched Schedule) (Schedule, *Violation) {
	replays := 0
	violates := func(s Schedule) *Violation {
		replays++
		if boot == nil {
			return Replay(cfg, seed, s).Violation
		}
		w := boot.Fork()
		v := replayFrom(w, s)
		w.Release()
		return v
	}
	v := violates(sched)
	if v == nil {
		return sched, nil
	}
	cur := sched
	for chunk := (len(cur) + 1) / 2; chunk >= 1; chunk /= 2 {
		// Sweep to fixpoint at this granularity: removing one chunk can make
		// an earlier chunk removable.
		for {
			removed := false
			// prefixW is the live checkpoint: the world state after applying
			// cur[:start]. Valid only while it tracks start exactly.
			var prefixW *World
			prefixLen := 0
			if boot != nil {
				prefixW = boot.Fork()
			}
			for start := 0; start+chunk <= len(cur); {
				if replays >= maxShrinkReplays {
					return cur, v
				}
				cand := make(Schedule, 0, len(cur)-chunk)
				cand = append(cand, cur[:start]...)
				cand = append(cand, cur[start+chunk:]...)
				var nv *Violation
				if prefixW != nil && prefixLen == start {
					// Checkpoint path: fork the advanced prefix and replay
					// only the candidate's suffix.
					replays++
					cw := prefixW.Fork()
					nv = replayFrom(cw, cur[start+chunk:])
					cw.Release()
				} else {
					nv = violates(cand)
				}
				if nv != nil {
					cur, v = cand, nv
					removed = true
					// Keep start in place: the next chunk slid into this slot,
					// and the checkpoint still holds exactly cur[:start].
				} else {
					// The chunk stays; advance the checkpoint through it — but
					// only when the sweep has another candidate to serve, or
					// the replayed ops are pure overhead. A violation or death
					// here cannot happen for a prefix of a schedule whose
					// violation fires at its end — but if it does, drop the
					// checkpoint and fall back to full replays.
					if prefixW != nil && prefixLen == start && start+2*chunk <= len(cur) {
						if replayFrom(prefixW, cur[start:start+chunk]) != nil || prefixW.Dead() {
							prefixW = nil
						} else {
							prefixLen = start + chunk
						}
					}
					start += chunk
				}
			}
			if !removed {
				break
			}
		}
	}
	return cur, v
}

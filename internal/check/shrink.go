package check

// maxShrinkReplays bounds the replay budget one shrink may spend. Schedules
// are at most a few hundred ops and each replay is cheap, so the bound is
// generous; it exists so a pathological flip-flopping candidate set cannot
// hang a campaign.
const maxShrinkReplays = 4096

// Shrink reduces a violating schedule to a minimal reproducer by greedy
// delta debugging: repeatedly try dropping contiguous chunks (halving the
// chunk size down to single ops) and keep any candidate that still
// violates. Every candidate is validated by a full Replay from a fresh
// world, so the result is guaranteed to reproduce from (cfg, seed).
//
// The violation need not stay literally identical while shrinking — dropping
// ops may surface the same leak under a different clause (e.g. "writeback"
// collapsing to "dram") — any violation counts, which is standard ddmin
// practice and keeps minima small.
//
// Returns the minimal schedule and its violation, or (sched, nil) if the
// input does not violate in the first place.
func Shrink(cfg Config, seed int64, sched Schedule) (Schedule, *Violation) {
	replays := 0
	violates := func(s Schedule) *Violation {
		replays++
		return Replay(cfg, seed, s).Violation
	}
	v := violates(sched)
	if v == nil {
		return sched, nil
	}
	cur := sched
	for chunk := (len(cur) + 1) / 2; chunk >= 1; chunk /= 2 {
		// Sweep to fixpoint at this granularity: removing one chunk can make
		// an earlier chunk removable.
		for {
			removed := false
			for start := 0; start+chunk <= len(cur); {
				if replays >= maxShrinkReplays {
					return cur, v
				}
				cand := make(Schedule, 0, len(cur)-chunk)
				cand = append(cand, cur[:start]...)
				cand = append(cand, cur[start+chunk:]...)
				if nv := violates(cand); nv != nil {
					cur, v = cand, nv
					removed = true
					// Keep start in place: the next chunk slid into this slot.
				} else {
					start += chunk
				}
			}
			if !removed {
				break
			}
		}
	}
	return cur, v
}

package check

import (
	"testing"

	"sentry/internal/faults"
	"sentry/internal/sim"
)

// TestReproStringRoundTrip pins the Repro line format the explorer's
// corpus files and -replay share: String → ParseRepro → String is the
// identity across platforms, defence ablations, fault profiles, and
// generated op sequences (including multi-digit args and terminal ops).
func TestReproStringRoundTrip(t *testing.T) {
	t.Parallel()
	adv, _ := faults.ByName("adversarial")
	defences := []Defences{
		AllDefences(),
		{IRAMZeroOnBoot: false, LockFlush: true, ZeroOnFree: true},
		{IRAMZeroOnBoot: true, LockFlush: false, ZeroOnFree: false},
		{},
	}
	// Cache-attack configs add cache=/attacks= tokens; the empty pair is the
	// historical five-field line, which must stay stable byte for byte.
	cacheCfgs := []struct{ cache, attacks, dfa, counter string }{
		{"", "", "", ""},
		{CacheInsecure, AttackPrimeProbe, "", ""},
		{CacheBaseline, "prime-probe,evict-reload,occupancy", "", ""},
		{CacheRandomized, AttackEvictReload, "", ""},
		{"", "", DFAInDRAM, ""},
		{"", "", DFAInDRAM, "redundant"},
		{CacheReserved, AttackOccupancy, DFAInIRAM, "tag"},
	}
	for _, platform := range []string{"tegra3", "nexus4"} {
		for _, d := range defences {
			for _, prof := range []faults.Profile{faults.None(), adv} {
				for seed := int64(1); seed <= 8; seed++ {
					cc := cacheCfgs[int(seed)%len(cacheCfgs)]
					cfg := Config{Platform: platform, Defences: d, Faults: prof,
						Cache: cc.cache, Attacks: cc.attacks, DFA: cc.dfa, Counter: cc.counter}
					ops := GenerateFor(cfg, sim.NewRNG(seed), 30)
					r := &Repro{Config: cfg, Seed: seed, Ops: ops}
					line := r.String()
					back, err := ParseRepro(line)
					if err != nil {
						t.Fatalf("ParseRepro(%q): %v", line, err)
					}
					if got := back.String(); got != line {
						t.Fatalf("round trip drifted:\n  out:  %s\n  back: %s", line, got)
					}
				}
			}
		}
	}
}

// FuzzParseRepro feeds ParseRepro arbitrary input: it must never panic,
// and any line it accepts must round-trip — String renders a line
// ParseRepro accepts again, and that second parse renders identically.
// This is the property the corpus loader relies on to treat repro lines
// as a stable on-disk format.
func FuzzParseRepro(f *testing.F) {
	f.Add("platform=tegra3 defences=all faults=none seed=3 ops=suspend,lock")
	f.Add("platform=nexus4 defences=no-lock-flush,no-iram-zero faults=adversarial seed=-9 ops=fg-touch:12,power-cut")
	f.Add("ops=lock")
	f.Add("seed=99999999999999999999 ops=lock")
	f.Add("platform=tegra3 ops=idle:3,idle:3,idle:3,glitch-reset")
	f.Add("defences= ops=,")
	f.Add("garbage")
	f.Add("")
	f.Add("platform=tegra3 defences=all faults=none cache=insecure attacks=prime-probe seed=1 ops=prime-probe")
	f.Add("cache=baseline attacks=prime-probe,evict-reload,occupancy ops=occupancy-probe:3,evict-reload")
	f.Add("cache=bogus ops=lock")
	f.Add("attacks=prime-probe,bogus ops=lock")
	f.Add("cache= ops=lock")
	f.Add("platform=tegra3 defences=all faults=none dfa=dram seed=5 ops=dfa-fault:2,dfa-collect")
	f.Add("dfa=iram counter=tag ops=dfa-fault,dfa-collect:7")
	f.Add("cache=reserved attacks=occupancy dfa=dram counter=redundant ops=lock,bg-begin,occupancy-probe")
	f.Add("dfa=bogus ops=lock")
	f.Add("dfa= ops=lock")
	f.Add("counter=bogus ops=lock")
	f.Add("counter=none ops=dfa-collect")
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseRepro(line)
		if err != nil {
			return
		}
		out := r.String()
		back, err := ParseRepro(out)
		if err != nil {
			t.Fatalf("re-parse of rendered line %q failed: %v (from input %q)", out, err, line)
		}
		if got := back.String(); got != out {
			t.Fatalf("render not stable: %q then %q (from input %q)", out, got, line)
		}
	})
}

// Package check is the reusable confidentiality model-checker for the
// simulated Sentry system, promoted out of core's invariant test into a
// schedule explorer any package (and the sentrybench CLI) can drive.
//
// It explores randomised schedules over an operation alphabet spanning
// kernel, SoC, environment, and attacker actions, and after every step
// enforces the paper's central invariant — while the device is locked, no
// plaintext sensitive byte is:
//
//	(bus)        carried over the external memory bus,
//	(dram)       resident in the DRAM chips,
//	(writeback)  one legal masked write-back away from DRAM,
//	(dma)        readable by a DMA-capable peripheral,
//	(remanence)  recoverable from the post-power-loss memory image, nor is
//	(key)        the volatile root key recoverable from that image.
//
// Any violating schedule is reduced by greedy delta debugging to a minimal
// reproducer, printable as a replayable seed + op list (see campaign.go).
package check

import (
	"bytes"
	"fmt"

	"sentry/internal/attack"
	"sentry/internal/bus"
	"sentry/internal/core"
	"sentry/internal/faults"
	"sentry/internal/firmware"
	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/obs"
	"sentry/internal/remanence"
	"sentry/internal/soc"
)

// Defences selects which of the paper's defence layers are active. The
// positive controls disable exactly one each, and the checker must then
// find the secret.
type Defences struct {
	// IRAMZeroOnBoot: the vendor firmware clears iRAM on the cold-boot path.
	IRAMZeroOnBoot bool
	// LockFlush: encrypt-on-lock ends with a masked clean+invalidate.
	LockFlush bool
	// ZeroOnFree: lock waits for the freed-page zeroing thread.
	ZeroOnFree bool
}

// AllDefences returns the fully defended configuration.
func AllDefences() Defences {
	return Defences{IRAMZeroOnBoot: true, LockFlush: true, ZeroOnFree: true}
}

// Config parameterises one checking world.
type Config struct {
	Platform string // "tegra3" or "nexus4"
	Defences Defences
	Faults   faults.Profile
	// Steps bounds generated schedule length; DefaultSteps when zero.
	Steps int
	// OpsCounter, when set, counts every op executed by any world built from
	// this config (forks inherit it). The shrink-checkpoint tests and the
	// explorer's coverage metrics use it to account ops actually replayed
	// against schedules merely enumerated; a nil counter costs nothing.
	OpsCounter *obs.Counter
}

// DefaultSteps is the generated schedule length bound.
const DefaultSteps = 80

func (c Config) steps() int {
	if c.Steps > 0 {
		return c.Steps
	}
	return DefaultSteps
}

// Violation reports where the invariant broke.
type Violation struct {
	Clause string // "bus", "dram", "writeback", "dma", "remanence", "key"
	Detail string
	Step   int
	Op     Op
}

func (v *Violation) String() string {
	return fmt.Sprintf("step %d (%s): clause %s: %s", v.Step, v.Op, v.Clause, v.Detail)
}

const (
	worldPIN = "4321"
	badPIN   = "0000"
	fgPages  = 8
	bgPages  = 16
	// blipSeconds is the checker's power-cut duration: the paper's ~50 ms
	// reset blip, which keeps nearly all remanent bits — the worst case
	// for the defender and therefore the right default for checking.
	blipSeconds = 0.05
	// heldResetSeconds matches the paper's "2 second reset" decay window.
	heldResetSeconds = 2.0
	// glitchSeconds: a reset-glitch rig cycles power in well under a second.
	glitchSeconds = 0.5
	// fuzzBudget is how many decayed bytes a remanence-image marker match
	// may tolerate and still count as recoverable plaintext.
	fuzzBudget = 4
)

// World is one instantiated platform + Sentry + workload under check.
type World struct {
	Cfg  Config
	Seed int64

	S  *soc.SoC
	K  *kernel.Kernel
	Sn *core.Sentry

	fg, bg         *kernel.Process
	fgBase, bgBase mmu.VirtAddr

	marker  []byte
	volKey0 []byte // volatile root key as generated at boot (pre-Zeroize)
	inj     *faults.Injector
	probe   *busProbe

	bgOn      bool
	step      int
	dead      bool
	cutLocked bool // the device was locked when power was lost
}

// busProbe latches the first locked-period plaintext sighting on the
// external bus — clause (bus) of the invariant.
type busProbe struct {
	w       *World
	tripped string
}

func (p *busProbe) Observe(tx bus.Transaction) {
	if p.tripped != "" || p.w.K.State() == kernel.Unlocked {
		return
	}
	if bytes.Contains(tx.Data, p.w.marker) {
		p.tripped = fmt.Sprintf("%s %#x (%d bytes) at step %d",
			tx.Op, uint64(tx.Addr), len(tx.Data), p.w.step)
	}
}

// NewWorld builds a deterministic world for (cfg, seed): platform, kernel,
// Sentry with the configured defences, a sensitive foreground process and a
// sensitive background process filled with the plaintext marker, a bus
// probe where the platform exposes the bus, and a fault injector when the
// profile is active.
func NewWorld(cfg Config, seed int64) *World {
	var prof soc.Profile
	switch cfg.Platform {
	case "tegra3", "":
		prof = soc.Tegra3Profile()
	case "nexus4":
		prof = soc.Nexus4Profile()
	default:
		panic(fmt.Sprintf("check: unknown platform %q", cfg.Platform))
	}
	prof.ZeroIRAMOnBoot = cfg.Defences.IRAMZeroOnBoot
	s := soc.New(prof, seed)
	k := kernel.New(s, worldPIN)
	k.IdleLockSeconds = 900
	sn, err := core.New(k, core.Config{
		NoLockFlush:   !cfg.Defences.LockFlush,
		NoDrainOnLock: !cfg.Defences.ZeroOnFree,
	})
	if err != nil {
		panic(fmt.Sprintf("check: world build failed: %v", err))
	}
	w := &World{
		Cfg: cfg, Seed: seed, S: s, K: k, Sn: sn,
		marker:  []byte("INVARIANT-MARKER-XYZZY"),
		volKey0: sn.Keys().VolatileKey(),
	}
	w.fg = k.NewProcess("fg", true, false)
	w.bg = k.NewProcess("bg", true, true)
	w.fgBase, _ = k.MapAnon(w.fg, fgPages)
	w.bgBase, _ = k.MapAnon(w.bg, bgPages)
	w.fill(w.fg, w.fgBase, fgPages)
	w.fill(w.bg, w.bgBase, bgPages)
	if prof.ExposedBus {
		w.probe = &busProbe{w: w}
		s.Bus.Attach(w.probe)
	}
	if cfg.Faults.Active() {
		w.inj = faults.New(cfg.Faults, seed*2654435761+97)
		w.inj.Attach(sn)
	}
	return w
}

func (w *World) fill(p *kernel.Process, base mmu.VirtAddr, pages int) {
	w.K.Switch(p)
	for i := 0; i < pages; i++ {
		line := append(append([]byte{}, w.marker...), byte(i))
		if err := w.S.CPU.Store(base+mmu.VirtAddr(i*mem.PageSize), line); err != nil {
			panic(fmt.Sprintf("check: marker fill failed: %v", err))
		}
	}
}

// Fork returns an independent copy of this world. Memory is shared
// copy-on-write with the parent; clock, energy, RNG position, fault-injector
// stream, and all kernel/Sentry state carry over, so the fork replays any op
// sequence byte-identically to a cold-booted world that reached this point.
// The bus probe and fault injector are re-attached as fresh clones bound to
// the forked world.
func (w *World) Fork() *World {
	s2 := w.S.Fork()
	k2, pm := w.K.Clone(s2)
	sn2, err := w.Sn.Clone(k2, pm)
	if err != nil {
		panic(fmt.Sprintf("check: world fork failed: %v", err))
	}
	n := &World{
		Cfg: w.Cfg, Seed: w.Seed, S: s2, K: k2, Sn: sn2,
		fg: pm[w.fg], bg: pm[w.bg],
		fgBase: w.fgBase, bgBase: w.bgBase,
		marker:  w.marker,
		volKey0: append([]byte(nil), w.volKey0...),
		bgOn:    w.bgOn, step: w.step, dead: w.dead, cutLocked: w.cutLocked,
	}
	if w.probe != nil {
		n.probe = &busProbe{w: n, tripped: w.probe.tripped}
		s2.Bus.Attach(n.probe)
	}
	if w.inj != nil {
		n.inj = w.inj.Clone()
		n.inj.Attach(sn2)
	}
	return n
}

// Release recycles the world's fork-private allocations into the clone
// pool and leaves the world unusable. Call it only as the exclusive owner
// of a world that will never be touched again — a finished shrink
// candidate, a dead explorer leaf. Forks taken earlier stay valid: shared
// state is copy-on-write and never recycled.
func (w *World) Release() { w.S.Release() }

// Dead reports whether a terminal op (or fault) killed the device.
func (w *World) Dead() bool { return w.dead }

// Step returns how many ops this world has executed.
func (w *World) Step() int { return w.step }

// BackgroundOn reports whether a locked-background session is live — one of
// the state predicates the explorer's commutation guards read.
func (w *World) BackgroundOn() bool { return w.bgOn }

// NearMiss inspects a dead world whose post-mortem found no violation and
// reports whether the decayed image came close to one: the marker survives
// under a relaxed decay budget, or the image still holds most of a key
// schedule. Near-miss prefixes are what the explorer banks into its corpus —
// schedules adjacent to a violation are the ones worth re-exploring first.
func (w *World) NearMiss() bool {
	if !w.dead || !w.cutLocked {
		return false
	}
	return w.scanner().NearMiss()
}

// Perturbed reports whether a data-mutating fault fired; end-of-schedule
// integrity verification is meaningless after one.
func (w *World) Perturbed() bool { return w.inj != nil && w.inj.Perturbed() }

// Injector exposes the attached fault injector (nil without one).
func (w *World) Injector() *faults.Injector { return w.inj }

// Apply executes one op and scans for violations. Fault hooks may unwind
// the op mid-way with a faults.Abort; Apply recovers it here — the one
// place in the tree — and converts it into a power loss at that instant.
func (w *World) Apply(op Op) (v *Violation) {
	if w.dead {
		return nil
	}
	w.Cfg.OpsCounter.Inc()
	w.step++
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(faults.Abort)
			if !ok {
				panic(r)
			}
			v = w.powerLoss(ab.Seconds, ab.Reason, op)
		}
	}()
	switch op.Code {
	case OpLock:
		w.K.Lock()
	case OpUnlock:
		w.bgOn = false // the session ends inside Unlock
		_ = w.K.Unlock(worldPIN)
	case OpBadPIN:
		_ = w.K.Unlock(badPIN)
	case OpFgTouch:
		if w.K.State() == kernel.Unlocked {
			w.K.Switch(w.fg)
			pg := int(op.Arg) % fgPages
			_ = w.S.CPU.Load(w.fgBase+mmu.VirtAddr(pg*mem.PageSize), make([]byte, 32))
		}
	case OpBgBegin:
		if w.K.State() != kernel.Unlocked && !w.bgOn {
			if err := w.Sn.BeginBackground(w.bg, 128); err == nil {
				w.bgOn = true
			}
		}
	case OpBgTouch:
		if w.bgOn {
			w.K.Switch(w.bg)
			pg := int(op.Arg) % bgPages
			_ = w.S.CPU.Load(w.bgBase+mmu.VirtAddr(pg*mem.PageSize), make([]byte, 32))
		}
	case OpFreePage:
		w.freePage(int(op.Arg) % fgPages)
	case OpPressure:
		junk := make([]byte, mem.PageSize)
		for i := 0; i < 8; i++ {
			slot := (uint64(op.Arg) + uint64(i)*17) % 64
			w.S.CPU.ReadPhys(soc.DRAMBase+mem.PhysAddr(0x2000000+slot*0x40000), junk)
		}
	case OpFlushMasked:
		w.S.L2.CleanInvalidateWays(w.K.FlushMask())
	case OpSuspend:
		w.K.Suspend()
	case OpWake:
		w.K.Wake(kernel.WakeSource(op.Arg % 3))
	case OpIdle:
		secs := [...]float64{60, 300, 600, 1000}[op.Arg%4]
		w.K.Idle(secs)
	case OpDrainZero:
		w.K.DrainZeroQueue()
	case OpDMAScrape:
		if v := w.dmaScan(op); v != nil {
			return v
		}
	case OpBitFlip:
		if w.inj != nil {
			if op.Arg%4 == 0 {
				w.inj.FlipBits(w.S.IRAM.Store())
			} else {
				w.inj.FlipBits(w.S.DRAM.Store())
			}
		}
	case OpPowerCut:
		return w.powerLoss(blipSeconds, "power cut", op)
	case OpHeldReset:
		return w.heldReset(op)
	case OpGlitchReset:
		return w.glitchReset(op)
	}
	return w.scan(op)
}

// freePage frees one foreground page while unlocked and re-arms it with a
// fresh frame so later touches stay valid. The freed frame rides the zero
// queue — the surface the zero-on-free defence covers.
func (w *World) freePage(pg int) {
	if w.K.State() != kernel.Unlocked {
		return
	}
	w.K.Switch(w.fg)
	v := w.fgBase + mmu.VirtAddr(pg*mem.PageSize)
	if pte := w.fg.AS.Lookup(v); pte != nil {
		w.K.UnmapAndFree(w.fg, v)
		frame, err := w.K.Pages().Alloc()
		if err == nil {
			w.fg.AS.Map(v, mmu.PTE{Phys: frame, Present: true, Writable: true, Young: true})
			line := append(append([]byte{}, w.marker...), byte(pg))
			_ = w.S.CPU.Store(v, line)
		}
	}
}

// scanner returns the reusable Scanner view of this world's invariant.
func (w *World) scanner() *Scanner {
	return &Scanner{S: w.S, K: w.K, Marker: w.marker, VolKey0: w.volKey0, FuzzBudget: fuzzBudget}
}

// scan enforces the invariant at a step boundary while the device is
// locked.
func (w *World) scan(op Op) *Violation {
	// (bus) latched by the probe during any locked period.
	if w.probe != nil && w.probe.tripped != "" {
		v := &Violation{Clause: "bus", Detail: w.probe.tripped, Step: w.step, Op: op}
		w.probe.tripped = ""
		return v
	}
	if w.K.State() == kernel.Unlocked {
		return nil
	}
	// (dram) and (writeback) via the shared Scanner clauses.
	if v := w.scanner().ScanLive(); v != nil {
		v.Step, v.Op = w.step, op
		return v
	}
	return nil
}

// dmaScan mounts the paper's DMA-peripheral attack; on platforms without an
// open DMA port it degrades to the regular scan.
func (w *World) dmaScan(op Op) *Violation {
	if w.K.State() == kernel.Unlocked {
		// DMA reads plaintext while unlocked by design; out of scope.
		return w.scan(op)
	}
	a, err := attack.MountDMAScrape(w.S)
	if err != nil {
		return w.scan(op)
	}
	if a.ContainsSecret(w.marker) {
		return &Violation{Clause: "dma", Detail: "plaintext marker readable by DMA peripheral", Step: w.step, Op: op}
	}
	return w.scan(op)
}

// powerLoss cuts power for the given seconds and post-mortems the decayed
// image. The device is dead afterwards.
func (w *World) powerLoss(seconds float64, why string, op Op) *Violation {
	wasLocked := w.K.State() != kernel.Unlocked
	w.S.PowerCut(seconds, remanence.RoomTempC)
	w.dead, w.cutLocked = true, wasLocked
	return w.postMortem(wasLocked, why, op)
}

// heldReset is the paper's 2-second held reset into an attacker image. A
// locked bootloader rejects the unsigned dump image, but the power loss
// happens physically regardless — fall back to a raw cut.
func (w *World) heldReset(op Op) *Violation {
	wasLocked := w.K.State() != kernel.Unlocked
	if err := w.S.HeldReset(heldResetSeconds, firmware.Image{Name: "memdump"}); err != nil {
		w.S.PowerCut(heldResetSeconds, remanence.RoomTempC)
	}
	w.dead, w.cutLocked = true, wasLocked
	return w.postMortem(wasLocked, "held reset", op)
}

// glitchReset is the adversarial reset-glitch: cold boot with the ROM's
// iRAM zeroing and image verification skipped.
func (w *World) glitchReset(op Op) *Violation {
	wasLocked := w.K.State() != kernel.Unlocked
	w.S.GlitchedReset(glitchSeconds, firmware.Image{Name: "memdump"})
	w.dead, w.cutLocked = true, wasLocked
	return w.postMortem(wasLocked, "glitched reset", op)
}

// postMortem scans the remanence image after power loss. Only a device that
// was locked at the cut is in scope: the pre-lock plaintext window is the
// exposure the paper's threat model accepts.
func (w *World) postMortem(wasLocked bool, why string, op Op) *Violation {
	if !wasLocked {
		return nil
	}
	// (remanence) and (key) via the shared Scanner clauses. The reference
	// key is the one generated at boot: deep-lock zeroizes the live copy,
	// but ciphertext sealed under the original must stay safe.
	if v := w.scanner().PostMortem(why); v != nil {
		v.Step, v.Op = w.step, op
		return v
	}
	return nil
}

// IntegrityCheck verifies end-to-end data integrity after a schedule on a
// live, unperturbed world: unlock and expect every marker byte back. A
// deep-locked device cannot unlock (by design) and is skipped.
func (w *World) IntegrityCheck() error {
	if w.dead || w.Perturbed() {
		return nil
	}
	if err := w.K.Unlock(worldPIN); err != nil {
		if w.K.State() == kernel.DeepLocked {
			return nil
		}
		return fmt.Errorf("unlock for integrity check failed: %v", err)
	}
	w.bgOn = false
	check := func(p *kernel.Process, base mmu.VirtAddr, pages int) error {
		w.K.Switch(p)
		got := make([]byte, len(w.marker))
		for i := 0; i < pages; i++ {
			if err := w.S.CPU.Load(base+mmu.VirtAddr(i*mem.PageSize), got); err != nil {
				return fmt.Errorf("%s page %d unreadable after run: %v", p.Name, i, err)
			}
			if !bytes.Equal(got, w.marker) {
				return fmt.Errorf("%s page %d corrupted after run", p.Name, i)
			}
		}
		return nil
	}
	if err := check(w.fg, w.fgBase, fgPages); err != nil {
		return err
	}
	return check(w.bg, w.bgBase, bgPages)
}

// Package check is the reusable confidentiality model-checker for the
// simulated Sentry system, promoted out of core's invariant test into a
// schedule explorer any package (and the sentrybench CLI) can drive.
//
// It explores randomised schedules over an operation alphabet spanning
// kernel, SoC, environment, and attacker actions, and after every step
// enforces the paper's central invariant — while the device is locked, no
// plaintext sensitive byte is:
//
//	(bus)        carried over the external memory bus,
//	(dram)       resident in the DRAM chips,
//	(writeback)  one legal masked write-back away from DRAM,
//	(dma)        readable by a DMA-capable peripheral,
//	(remanence)  recoverable from the post-power-loss memory image, nor is
//	(key)        the volatile root key recoverable from that image.
//
// Configs with a cache-attack profile (Config.Cache/Attacks) add two more
// clauses, judged by the Prime+Probe / Evict+Reload / occupancy drivers in
// internal/attack:
//
//	(cache-timing)  a cache-timing attacker recovers the victim's secret
//	                set-access pattern (the PIN-digit table walk), and
//	(occupancy)     the locked-way count reveals live session state.
//
// Configs with a DFA adversary (Config.DFA) add one more, judged by the
// differential-fault-analysis pipeline in internal/attack:
//
//	(dfa-key-recovery)  an attacker who glitches AES round state
//	                    mid-encryption recovers the full AES-128 key from
//	                    correct/faulty ciphertext pairs.
//
// Any violating schedule is reduced by greedy delta debugging to a minimal
// reproducer, printable as a replayable seed + op list (see campaign.go).
package check

import (
	"bytes"
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"sentry/internal/aes"
	"sentry/internal/attack"
	"sentry/internal/bus"
	"sentry/internal/core"
	"sentry/internal/faults"
	"sentry/internal/firmware"
	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/obs"
	"sentry/internal/onsoc"
	"sentry/internal/remanence"
	"sentry/internal/sim"
	"sentry/internal/soc"
)

// Defences selects which of the paper's defence layers are active. The
// positive controls disable exactly one each, and the checker must then
// find the secret.
type Defences struct {
	// IRAMZeroOnBoot: the vendor firmware clears iRAM on the cold-boot path.
	IRAMZeroOnBoot bool
	// LockFlush: encrypt-on-lock ends with a masked clean+invalidate.
	LockFlush bool
	// ZeroOnFree: lock waits for the freed-page zeroing thread.
	ZeroOnFree bool
}

// AllDefences returns the fully defended configuration.
func AllDefences() Defences {
	return Defences{IRAMZeroOnBoot: true, LockFlush: true, ZeroOnFree: true}
}

// Cache-attack profile names for Config.Cache.
const (
	// CacheInsecure: the victim's PIN lookup table lives in plain cacheable
	// DRAM with a stock cache — the negative control that must lose.
	CacheInsecure = "insecure"
	// CacheBaseline: the paper's on-SoC placement — a locked L2 way on
	// lockable platforms (tegra3), iRAM (off the L2 entirely) elsewhere.
	CacheBaseline = "baseline"
	// CacheAutoLock: table in DRAM, but the cache models AutoLock semantics
	// (cross-core evictions of held lines are blocked).
	CacheAutoLock = "autolock"
	// CacheRandomized: table in DRAM, but the cache's set index is a keyed
	// per-boot permutation.
	CacheRandomized = "randomized"
	// CacheReserved: the baseline placement plus a constant locked-way
	// budget reserved at boot (core.Config.ReservedWays) — the mitigation
	// for the occupancy channel. Session lock/unlock cycles served from the
	// budget never move the externally observable lock state.
	CacheReserved = "reserved"
)

// Attacker names for Config.Attacks.
const (
	AttackPrimeProbe  = "prime-probe"
	AttackEvictReload = "evict-reload"
	AttackOccupancy   = "occupancy"
)

// DFA placement names for Config.DFA: where the glitch-targeted victim AES
// engine's arena lives. The placement decides reachability — a DRAM arena
// is disturbable by the fault rig, the paper's iRAM placement is not.
const (
	DFAInDRAM = "dram"
	DFAInIRAM = "iram"
)

// reservedWayBudget is the constant way budget CacheReserved locks at boot:
// one way for on-SoC allocations (victim table, session arenas) plus one
// spare so a live session's extra lock is still served invisibly.
const reservedWayBudget = 2

// Config parameterises one checking world.
type Config struct {
	Platform string // "tegra3" or "nexus4"
	Defences Defences
	Faults   faults.Profile
	// Cache selects the cache-timing victim/defence profile (Cache*
	// constants). Empty means no victim table and no attack surface — the
	// default for every pre-existing campaign, which stays byte-identical.
	Cache string
	// Attacks is a comma-separated list of enabled cache attackers
	// (Attack* constants); each becomes an op in the generation alphabet.
	Attacks string
	// DFA enables the differential-fault-analysis adversary against a
	// victim AES engine placed per the named profile (DFAIn* constants).
	// Empty means no victim engine and no dfa ops — the default for every
	// pre-existing campaign, which stays byte-identical.
	DFA string
	// Counter selects the victim engine's fault-detection countermeasure
	// ("", "none", "redundant", "tag" — see aes.CountermeasureByName).
	Counter string
	// Steps bounds generated schedule length; DefaultSteps when zero.
	Steps int
	// OpsCounter, when set, counts every op executed by any world built from
	// this config (forks inherit it). The shrink-checkpoint tests and the
	// explorer's coverage metrics use it to account ops actually replayed
	// against schedules merely enumerated; a nil counter costs nothing.
	OpsCounter *obs.Counter
}

// attackList splits the Attacks field into attacker names; empty → nil.
func (c Config) attackList() []string {
	if c.Attacks == "" {
		return nil
	}
	return strings.Split(c.Attacks, ",")
}

func (c Config) hasAttack(name string) bool {
	for _, a := range c.attackList() {
		if a == name {
			return true
		}
	}
	return false
}

// validAttack reports whether name is a known attacker name.
func validAttack(name string) bool {
	switch name {
	case AttackPrimeProbe, AttackEvictReload, AttackOccupancy:
		return true
	}
	return false
}

// validCacheProfile reports whether name is a known Config.Cache value.
func validCacheProfile(name string) bool {
	switch name {
	case "", CacheInsecure, CacheBaseline, CacheAutoLock, CacheRandomized, CacheReserved:
		return true
	}
	return false
}

// validDFAProfile reports whether name is a known Config.DFA value.
func validDFAProfile(name string) bool {
	switch name {
	case "", DFAInDRAM, DFAInIRAM:
		return true
	}
	return false
}

// DefaultSteps is the generated schedule length bound.
const DefaultSteps = 80

func (c Config) steps() int {
	if c.Steps > 0 {
		return c.Steps
	}
	return DefaultSteps
}

// Violation reports where the invariant broke.
type Violation struct {
	// Clause is "bus", "dram", "writeback", "dma", "remanence", "key",
	// "cache-timing", "occupancy", or "dfa-key-recovery".
	Clause string
	Detail string
	Step   int
	Op     Op
}

func (v *Violation) String() string {
	return fmt.Sprintf("step %d (%s): clause %s: %s", v.Step, v.Op, v.Clause, v.Detail)
}

const (
	worldPIN = "4321"
	badPIN   = "0000"
	fgPages  = 8
	bgPages  = 16
	// blipSeconds is the checker's power-cut duration: the paper's ~50 ms
	// reset blip, which keeps nearly all remanent bits — the worst case
	// for the defender and therefore the right default for checking.
	blipSeconds = 0.05
	// heldResetSeconds matches the paper's "2 second reset" decay window.
	heldResetSeconds = 2.0
	// glitchSeconds: a reset-glitch rig cycles power in well under a second.
	glitchSeconds = 0.5
	// fuzzBudget is how many decayed bytes a remanence-image marker match
	// may tolerate and still count as recoverable plaintext.
	fuzzBudget = 4
)

// Cache-attack geometry. The victim's lookup table is one line per entry;
// its secret (the PIN-digit walk) selects which entries it touches. All
// DRAM regions live inside the kernel-reserved low 64 MB, above the
// pressure op's footprint (< +0x3000000) and below user frames, and the
// attacker regions are base-congruent with the DRAM table (same base set).
const (
	victimEntries  = 16
	victimTableOff = 0x3000000 // victim table (DRAM profiles): sets 0..15
	occProbeOff    = 0x3210000 // occupancy probe: set 2048, clear of the rest
	evictRegionOff = 0x3400000 // Evict+Reload eviction sets: 2×Ways×entries lines
	primeRegionOff = 0x3800000 // Prime+Probe prime lines: 2×Ways×entries lines
	dfaArenaOff    = 0x3C00000 // DFA victim engine arena (Config.DFA "dram")
)

// attackState is the cache-attack surface of a world: where the victim
// table lives, what the victim actually touches, the boot-time locked-way
// baseline, the bound drivers, and the deterministic probe-timing log.
type attackState struct {
	table      mem.PhysAddr
	trueSet    uint32 // entries the PIN walk touches — what an attacker must recover
	baseLocked int    // locked ways at world setup (public knowledge)
	pp         *attack.PrimeProbe
	er         *attack.EvictReload
	occ        *attack.OccupancyProbe
	log        []string
}

// dfaFaultCT is one banked faulty ciphertext and the state byte the glitch
// targeted (kept for the attack log; key recovery classifies pairs itself).
type dfaFaultCT struct {
	pos int
	ct  [16]byte
}

// dfaState is the fault-injection surface of a world: the victim AES engine
// (placed per Config.DFA, defended per Config.Counter), its current key
// epoch, the attacker's bank of faulty ciphertexts, and a deterministic
// attack log. A detected fault fail-safe aborts and rekeys the victim, which
// empties the bank — the defender's whole win condition.
type dfaState struct {
	eng       *onsoc.AES
	key       []byte
	plain     [16]byte
	epoch     uint64
	reachable bool // the fault rig can disturb the arena (DRAM placement)
	faulty    []dfaFaultCT
	detected  int // countermeasure-detected faults (fail-safe aborts)
	rekeys    int
	log       []string
}

// World is one instantiated platform + Sentry + workload under check.
type World struct {
	Cfg  Config
	Seed int64

	S  *soc.SoC
	K  *kernel.Kernel
	Sn *core.Sentry

	fg, bg         *kernel.Process
	fgBase, bgBase mmu.VirtAddr

	marker  []byte
	volKey0 []byte // volatile root key as generated at boot (pre-Zeroize)
	inj     *faults.Injector
	probe   *busProbe

	atk *attackState // nil unless Cfg.Cache selects a cache-attack profile
	dfa *dfaState    // nil unless Cfg.DFA places a glitch-targeted victim

	bgOn      bool
	step      int
	dead      bool
	cutLocked bool // the device was locked when power was lost
}

// busProbe latches the first locked-period plaintext sighting on the
// external bus — clause (bus) of the invariant.
type busProbe struct {
	w       *World
	tripped string
}

func (p *busProbe) Observe(tx bus.Transaction) {
	if p.tripped != "" || p.w.K.State() == kernel.Unlocked {
		return
	}
	if bytes.Contains(tx.Data, p.w.marker) {
		p.tripped = fmt.Sprintf("%s %#x (%d bytes) at step %d",
			tx.Op, uint64(tx.Addr), len(tx.Data), p.w.step)
	}
}

// NewWorld builds a deterministic world for (cfg, seed): platform, kernel,
// Sentry with the configured defences, a sensitive foreground process and a
// sensitive background process filled with the plaintext marker, a bus
// probe where the platform exposes the bus, and a fault injector when the
// profile is active.
func NewWorld(cfg Config, seed int64) *World {
	var prof soc.Profile
	switch cfg.Platform {
	case "tegra3", "":
		prof = soc.Tegra3Profile()
	case "nexus4":
		prof = soc.Nexus4Profile()
	default:
		panic(fmt.Sprintf("check: unknown platform %q", cfg.Platform))
	}
	prof.ZeroIRAMOnBoot = cfg.Defences.IRAMZeroOnBoot
	switch cfg.Cache {
	case "", CacheInsecure, CacheBaseline, CacheReserved:
	case CacheAutoLock:
		prof.Cache.AutoLock = true
	case CacheRandomized:
		prof.Cache.RandomizedIndex = true
	default:
		panic(fmt.Sprintf("check: unknown cache profile %q", cfg.Cache))
	}
	if !validDFAProfile(cfg.DFA) {
		panic(fmt.Sprintf("check: unknown dfa profile %q", cfg.DFA))
	}
	if _, ok := aes.CountermeasureByName(cfg.Counter); !ok {
		panic(fmt.Sprintf("check: unknown countermeasure %q", cfg.Counter))
	}
	s := soc.New(prof, seed)
	k := kernel.New(s, worldPIN)
	k.IdleLockSeconds = 900
	reserved := 0
	if cfg.Cache == CacheReserved {
		reserved = reservedWayBudget
	}
	sn, err := core.New(k, core.Config{
		NoLockFlush:   !cfg.Defences.LockFlush,
		NoDrainOnLock: !cfg.Defences.ZeroOnFree,
		ReservedWays:  reserved,
	})
	if err != nil {
		panic(fmt.Sprintf("check: world build failed: %v", err))
	}
	w := &World{
		Cfg: cfg, Seed: seed, S: s, K: k, Sn: sn,
		marker:  []byte("INVARIANT-MARKER-XYZZY"),
		volKey0: sn.Keys().VolatileKey(),
	}
	w.fg = k.NewProcess("fg", true, false)
	w.bg = k.NewProcess("bg", true, true)
	w.fgBase, _ = k.MapAnon(w.fg, fgPages)
	w.bgBase, _ = k.MapAnon(w.bg, bgPages)
	w.fill(w.fg, w.fgBase, fgPages)
	w.fill(w.bg, w.bgBase, bgPages)
	if cfg.Cache != "" {
		w.setupCacheAttack()
	}
	if prof.ExposedBus {
		w.probe = &busProbe{w: w}
		s.Bus.Attach(w.probe)
	}
	// A DFA config needs the injector as the cipher's round-fault hook even
	// when the probabilistic fault profile is inactive; only an active
	// profile attaches the probe machinery to Sentry.
	if cfg.Faults.Active() || cfg.DFA != "" {
		w.inj = faults.New(cfg.Faults, seed*2654435761+97)
		if cfg.Faults.Active() {
			w.inj.Attach(sn)
		}
	}
	if cfg.DFA != "" {
		w.setupDFA()
	}
	return w
}

func (w *World) fill(p *kernel.Process, base mmu.VirtAddr, pages int) {
	w.K.Switch(p)
	for i := 0; i < pages; i++ {
		line := append(append([]byte{}, w.marker...), byte(i))
		if err := w.S.CPU.Store(base+mmu.VirtAddr(i*mem.PageSize), line); err != nil {
			panic(fmt.Sprintf("check: marker fill failed: %v", err))
		}
	}
}

// setupCacheAttack places the victim's lookup table per the configured
// cache profile, records the boot-time locked-way baseline, and binds the
// enabled attack drivers. Runs before the fault injector attaches, so
// baseline setup (which locks a way on lockable platforms) is never
// perturbed.
func (w *World) setupCacheAttack() {
	geo := w.S.L2.Config()
	st := &attackState{}
	if w.Cfg.Cache == CacheBaseline || w.Cfg.Cache == CacheReserved {
		if lk := w.Sn.Locker(); lk != nil {
			// Paper §4.5 placement: the table lives in a locked way's alias
			// region, resident and unevictable. Over-allocate one line so the
			// base can be rounded up to a line boundary.
			raw, err := lk.Alloc(uint64((victimEntries + 1) * geo.LineSize))
			if err != nil {
				panic(fmt.Sprintf("check: baseline victim table alloc failed: %v", err))
			}
			mask := mem.PhysAddr(geo.LineSize - 1)
			st.table = (raw + mask) &^ mask
		} else {
			// Non-lockable platform (nexus4): iRAM pinning — the table never
			// touches the L2 at all.
			st.table = soc.IRAMBase + mem.PhysAddr(w.S.Prof.IRAMSize-mem.PageSize)
		}
	} else {
		// insecure / autolock / randomized: plain cacheable DRAM in the
		// kernel-reserved region, warmed by the victim at boot.
		st.table = soc.DRAMBase + victimTableOff
		var b [4]byte
		for e := 0; e < victimEntries; e++ {
			w.S.CPU.ReadPhys(st.table+mem.PhysAddr(e*geo.LineSize), b[:])
		}
	}
	for _, ch := range []byte(worldPIN) {
		st.trueSet |= 1 << (int(ch-'0') % victimEntries)
	}
	// The locked-way count at setup is public (a fixed hardware reservation);
	// the occupancy clause asks whether it ever *changes* with session state.
	st.baseLocked = geo.Ways - bits.OnesCount32(w.S.L2.AllocMask())
	w.atk = st
	w.bindAttackDrivers()
}

// bindAttackDrivers (re)builds the enabled attack drivers against the
// world's current SoC; Fork calls it to bind the forked SoC.
func (w *World) bindAttackDrivers() {
	st := w.atk
	if w.Cfg.hasAttack(AttackPrimeProbe) {
		st.pp = attack.NewPrimeProbe(w.S, st.table, soc.DRAMBase+primeRegionOff, victimEntries)
	}
	if w.Cfg.hasAttack(AttackEvictReload) {
		st.er = attack.NewEvictReload(w.S, st.table, soc.DRAMBase+evictRegionOff, victimEntries)
	}
	if w.Cfg.hasAttack(AttackOccupancy) {
		st.occ = attack.NewOccupancyProbe(w.S, soc.DRAMBase+occProbeOff)
	}
}

// victimWalk is the secret-dependent victim workload the cache-timing
// attackers target: the PIN-verify table walk, one lookup per PIN digit,
// run as core 0. Which entries it touches is exactly the secret.
func (w *World) victimWalk() {
	var b [4]byte
	geo := w.S.L2.Config()
	for _, ch := range []byte(worldPIN) {
		e := int(ch-'0') % victimEntries
		w.S.CPU.ReadPhys(w.atk.table+mem.PhysAddr(e*geo.LineSize), b[:])
	}
}

// setupDFA builds the glitch-targeted victim AES engine per Config.DFA and
// points the fault injector at its encryption rounds.
func (w *World) setupDFA() {
	st := &dfaState{}
	copy(st.plain[:], "dfa-victim-block")
	w.dfa = st
	w.dfaBuildEngine()
}

// dfaKey derives the victim key for one epoch: a pure function of
// (seed, epoch), so forks, replays, and rekeys all agree byte-for-byte.
func (w *World) dfaKey(epoch uint64) []byte {
	rng := sim.NewRNG(w.Seed*6364136223846793005 + int64(epoch)*1442695040888963407 + 20260807)
	key := make([]byte, 16)
	rng.Read(key)
	return key
}

// dfaBuildEngine (re)creates the victim engine for the current key epoch.
// Placement decides reachability: a DRAM arena is disturbable by the rig,
// the paper's iRAM placement is physically out of its reach.
func (w *World) dfaBuildEngine() {
	st := w.dfa
	st.key = w.dfaKey(st.epoch)
	var eng *onsoc.AES
	var err error
	switch w.Cfg.DFA {
	case DFAInIRAM:
		eng, err = onsoc.NewInIRAM(w.S, w.Sn.IRAM(), st.key)
	default: // DFAInDRAM
		eng, err = onsoc.NewGeneric(w.S, soc.DRAMBase+dfaArenaOff, st.key, false)
	}
	if err != nil {
		panic(fmt.Sprintf("check: dfa victim engine build failed: %v", err))
	}
	cm, _ := aes.CountermeasureByName(w.Cfg.Counter)
	eng.SetCountermeasure(cm)
	eng.Cipher.SetRoundFault(w.inj)
	st.reachable = eng.ArenaBase() >= soc.DRAMBase
	st.eng = eng
}

// dfaRekey is the fail-safe response to a detected fault: release the old
// arena, roll the key epoch, and drop the attacker's banked ciphertexts —
// pairs across epochs never converge.
func (w *World) dfaRekey() {
	st := w.dfa
	_ = st.eng.Release()
	st.epoch++
	st.rekeys++
	st.faulty = nil
	w.dfaBuildEngine()
}

// dfaFault is the attacker's glitch op: arm a one-byte fault in the state
// entering the last MixColumns round and encrypt a fixed block, three mask
// values per op. A countermeasure that catches the fault aborts the op and
// rekeys the victim; otherwise the faulty ciphertext joins the bank.
func (w *World) dfaFault(op Op) {
	st := w.dfa
	round := st.eng.Cipher.Rounds() - 1
	pos := int(op.Arg) % 16
	base := byte(1 + (op.Arg>>4)%253)
	var ct [16]byte
	var iv [16]byte
	for k := 0; k < 3; k++ {
		mask := base + byte(k)
		w.inj.ArmDFA(round, pos, mask, st.reachable)
		err := st.eng.EncryptCBC(ct[:], st.plain[:], iv[:])
		w.inj.DisarmDFA()
		if err != nil {
			var fd *aes.FaultDetectedError
			if !errors.As(err, &fd) {
				panic(fmt.Sprintf("check: dfa victim encrypt failed: %v", err))
			}
			st.detected++
			st.log = append(st.log, fmt.Sprintf(
				"dfa step %d: %s countermeasure detected fault at byte %d mask %#02x: fail-safe abort, rekey to epoch %d",
				w.step, fd.Countermeasure, pos, mask, st.epoch+1))
			w.dfaRekey()
			return
		}
		st.faulty = append(st.faulty, dfaFaultCT{pos: pos, ct: ct})
	}
	st.log = append(st.log, fmt.Sprintf(
		"dfa step %d: glitched byte %d masks %#02x..%#02x (reachable=%v, bank=%d)",
		w.step, pos, base, base+2, st.reachable, len(st.faulty)))
}

// dfaCollect is the attacker's analysis op: encrypt the same block cleanly,
// pair it against every banked faulty ciphertext, and run the DFA key
// recovery. Recovering the victim's actual key is the dfa-key-recovery
// violation.
func (w *World) dfaCollect(op Op) *Violation {
	st := w.dfa
	var correct [16]byte
	var iv [16]byte
	if err := st.eng.EncryptCBC(correct[:], st.plain[:], iv[:]); err != nil {
		panic(fmt.Sprintf("check: dfa clean encrypt failed: %v", err))
	}
	var pairs []attack.DFAPair
	for _, f := range st.faulty {
		if f.ct != correct {
			pairs = append(pairs, attack.DFAPair{Correct: correct, Faulty: f.ct})
		}
	}
	key, ok := attack.RecoverKeyDFA(pairs)
	st.log = append(st.log, fmt.Sprintf(
		"dfa step %d: collect over %d pairs (epoch %d): recovered=%v",
		w.step, len(pairs), st.epoch, ok))
	if ok && bytes.Equal(key, st.key) {
		return &Violation{Clause: "dfa-key-recovery",
			Detail: fmt.Sprintf("DFA recovered the victim's full AES-128 key from %d correct/faulty ciphertext pairs", len(pairs)),
			Step:   w.step, Op: op}
	}
	return nil
}

// DFADetected returns how many faults the victim's countermeasure caught
// (each one a fail-safe abort + rekey); zero without a DFA config.
func (w *World) DFADetected() int {
	if w.dfa == nil {
		return 0
	}
	return w.dfa.detected
}

// DFARekeys returns how many times the victim rolled its key epoch.
func (w *World) DFARekeys() int {
	if w.dfa == nil {
		return 0
	}
	return w.dfa.rekeys
}

// AttackLog returns the deterministic attack trace accumulated by the
// cache-attack and DFA ops — one line per attack round, byte-identical for a
// given (config, seed, schedule) at any parallelism.
func (w *World) AttackLog() []string {
	var out []string
	if w.atk != nil {
		out = append(out, w.atk.log...)
	}
	if w.dfa != nil {
		out = append(out, w.dfa.log...)
	}
	return out
}

// Fork returns an independent copy of this world. Memory is shared
// copy-on-write with the parent; clock, energy, RNG position, fault-injector
// stream, and all kernel/Sentry state carry over, so the fork replays any op
// sequence byte-identically to a cold-booted world that reached this point.
// The bus probe and fault injector are re-attached as fresh clones bound to
// the forked world.
func (w *World) Fork() *World {
	s2 := w.S.Fork()
	k2, pm := w.K.Clone(s2)
	sn2, err := w.Sn.Clone(k2, pm)
	if err != nil {
		panic(fmt.Sprintf("check: world fork failed: %v", err))
	}
	n := &World{
		Cfg: w.Cfg, Seed: w.Seed, S: s2, K: k2, Sn: sn2,
		fg: pm[w.fg], bg: pm[w.bg],
		fgBase: w.fgBase, bgBase: w.bgBase,
		marker:  w.marker,
		volKey0: append([]byte(nil), w.volKey0...),
		bgOn:    w.bgOn, step: w.step, dead: w.dead, cutLocked: w.cutLocked,
	}
	if w.atk != nil {
		st := *w.atk
		st.log = append([]string(nil), w.atk.log...)
		st.pp, st.er, st.occ = nil, nil, nil
		n.atk = &st
		n.bindAttackDrivers()
	}
	if w.probe != nil {
		n.probe = &busProbe{w: n, tripped: w.probe.tripped}
		s2.Bus.Attach(n.probe)
	}
	if w.inj != nil {
		n.inj = w.inj.Clone()
		if w.Cfg.Faults.Active() {
			n.inj.Attach(sn2)
		}
	}
	if w.dfa != nil {
		st := *w.dfa
		st.key = append([]byte(nil), w.dfa.key...)
		st.faulty = append([]dfaFaultCT(nil), w.dfa.faulty...)
		st.log = append([]string(nil), w.dfa.log...)
		eng, err := w.dfa.eng.Adopt(s2, st.key, sn2.IRAM())
		if err != nil {
			panic(fmt.Sprintf("check: dfa victim engine fork failed: %v", err))
		}
		eng.Cipher.SetRoundFault(n.inj)
		st.eng = eng
		n.dfa = &st
	}
	return n
}

// Release recycles the world's fork-private allocations into the clone
// pool and leaves the world unusable. Call it only as the exclusive owner
// of a world that will never be touched again — a finished shrink
// candidate, a dead explorer leaf. Forks taken earlier stay valid: shared
// state is copy-on-write and never recycled.
func (w *World) Release() { w.S.Release() }

// FreezeBase pins the world as the immutable base of a delta-encoded
// population (see soc.SoC.FreezeBase): no op may be applied to it afterwards.
func (w *World) FreezeBase() { w.S.FreezeBase() }

// Deflate re-encodes the world's platform state as a delta against a
// FreezeBase'd base world (soc.SoC.Deflate): only diverged memory pages and
// cache lines are retained. The world must be parked — exclusively owned,
// never applied to again; the next Fork reconstructs a byte-identical dense
// copy. Satisfies snapshot.Deflater for snapshot.CaptureDelta.
func (w *World) Deflate(base *World) int64 { return w.S.Deflate(base.S) }

// Dead reports whether a terminal op (or fault) killed the device.
func (w *World) Dead() bool { return w.dead }

// Step returns how many ops this world has executed.
func (w *World) Step() int { return w.step }

// BackgroundOn reports whether a locked-background session is live — one of
// the state predicates the explorer's commutation guards read.
func (w *World) BackgroundOn() bool { return w.bgOn }

// NearMiss inspects a dead world whose post-mortem found no violation and
// reports whether the decayed image came close to one: the marker survives
// under a relaxed decay budget, or the image still holds most of a key
// schedule. Near-miss prefixes are what the explorer banks into its corpus —
// schedules adjacent to a violation are the ones worth re-exploring first.
func (w *World) NearMiss() bool {
	if !w.dead || !w.cutLocked {
		return false
	}
	return w.scanner().NearMiss()
}

// Perturbed reports whether a data-mutating fault fired; end-of-schedule
// integrity verification is meaningless after one.
func (w *World) Perturbed() bool { return w.inj != nil && w.inj.Perturbed() }

// Injector exposes the attached fault injector (nil without one).
func (w *World) Injector() *faults.Injector { return w.inj }

// Apply executes one op and scans for violations. Fault hooks may unwind
// the op mid-way with a faults.Abort; Apply recovers it here — the one
// place in the tree — and converts it into a power loss at that instant.
func (w *World) Apply(op Op) (v *Violation) {
	if w.dead {
		return nil
	}
	w.Cfg.OpsCounter.Inc()
	w.step++
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(faults.Abort)
			if !ok {
				panic(r)
			}
			v = w.powerLoss(ab.Seconds, ab.Reason, op)
		}
	}()
	switch op.Code {
	case OpLock:
		w.K.Lock()
	case OpUnlock:
		w.bgOn = false // the session ends inside Unlock
		_ = w.K.Unlock(worldPIN)
	case OpBadPIN:
		_ = w.K.Unlock(badPIN)
	case OpFgTouch:
		if w.K.State() == kernel.Unlocked {
			w.K.Switch(w.fg)
			pg := int(op.Arg) % fgPages
			_ = w.S.CPU.Load(w.fgBase+mmu.VirtAddr(pg*mem.PageSize), make([]byte, 32))
		}
	case OpBgBegin:
		if w.K.State() != kernel.Unlocked && !w.bgOn {
			if err := w.Sn.BeginBackground(w.bg, 128); err == nil {
				w.bgOn = true
			}
		}
	case OpBgTouch:
		if w.bgOn {
			w.K.Switch(w.bg)
			pg := int(op.Arg) % bgPages
			_ = w.S.CPU.Load(w.bgBase+mmu.VirtAddr(pg*mem.PageSize), make([]byte, 32))
		}
	case OpFreePage:
		w.freePage(int(op.Arg) % fgPages)
	case OpPressure:
		junk := make([]byte, mem.PageSize)
		for i := 0; i < 8; i++ {
			slot := (uint64(op.Arg) + uint64(i)*17) % 64
			w.S.CPU.ReadPhys(soc.DRAMBase+mem.PhysAddr(0x2000000+slot*0x40000), junk)
		}
	case OpFlushMasked:
		w.S.L2.CleanInvalidateWays(w.K.FlushMask())
	case OpSuspend:
		w.K.Suspend()
	case OpWake:
		w.K.Wake(kernel.WakeSource(op.Arg % 3))
	case OpIdle:
		secs := [...]float64{60, 300, 600, 1000}[op.Arg%4]
		w.K.Idle(secs)
	case OpDrainZero:
		w.K.DrainZeroQueue()
	case OpDMAScrape:
		if v := w.dmaScan(op); v != nil {
			return v
		}
	case OpBitFlip:
		if w.inj != nil {
			if op.Arg%4 == 0 {
				w.inj.FlipBits(w.S.IRAM.Store())
			} else {
				w.inj.FlipBits(w.S.DRAM.Store())
			}
		}
	case OpPowerCut:
		return w.powerLoss(blipSeconds, "power cut", op)
	case OpHeldReset:
		return w.heldReset(op)
	case OpGlitchReset:
		return w.glitchReset(op)
	case OpPrimeProbe:
		if w.atk != nil && w.atk.pp != nil {
			res := w.atk.pp.Run(w.victimWalk)
			w.atk.log = append(w.atk.log, res.Trace...)
			if res.Recovered == w.atk.trueSet {
				return &Violation{Clause: "cache-timing",
					Detail: fmt.Sprintf("prime+probe recovered the victim's PIN-digit access pattern %#06x", res.Recovered),
					Step:   w.step, Op: op}
			}
		}
	case OpEvictReload:
		if w.atk != nil && w.atk.er != nil {
			res := w.atk.er.Run(w.victimWalk)
			w.atk.log = append(w.atk.log, res.Trace...)
			if res.Recovered == w.atk.trueSet {
				return &Violation{Clause: "cache-timing",
					Detail: fmt.Sprintf("evict+reload recovered the victim's PIN-digit access pattern %#06x", res.Recovered),
					Step:   w.step, Op: op}
			}
		}
	case OpDFAFault:
		if w.dfa != nil {
			w.dfaFault(op)
		}
	case OpDFACollect:
		if w.dfa != nil {
			if v := w.dfaCollect(op); v != nil {
				return v
			}
		}
	case OpOccupancy:
		if w.atk != nil && w.atk.occ != nil {
			locked, tr := w.atk.occ.Measure()
			w.atk.log = append(w.atk.log, tr)
			if locked > w.atk.baseLocked {
				return &Violation{Clause: "occupancy",
					Detail: fmt.Sprintf("locked-way occupancy %d exceeds the boot baseline %d: way-locking leaks live session state", locked, w.atk.baseLocked),
					Step:   w.step, Op: op}
			}
		}
	}
	return w.scan(op)
}

// freePage frees one foreground page while unlocked and re-arms it with a
// fresh frame so later touches stay valid. The freed frame rides the zero
// queue — the surface the zero-on-free defence covers.
func (w *World) freePage(pg int) {
	if w.K.State() != kernel.Unlocked {
		return
	}
	w.K.Switch(w.fg)
	v := w.fgBase + mmu.VirtAddr(pg*mem.PageSize)
	if pte := w.fg.AS.Lookup(v); pte != nil {
		w.K.UnmapAndFree(w.fg, v)
		frame, err := w.K.Pages().Alloc()
		if err == nil {
			w.fg.AS.Map(v, mmu.PTE{Phys: frame, Present: true, Writable: true, Young: true})
			line := append(append([]byte{}, w.marker...), byte(pg))
			_ = w.S.CPU.Store(v, line)
		}
	}
}

// scanner returns the reusable Scanner view of this world's invariant.
func (w *World) scanner() *Scanner {
	return &Scanner{S: w.S, K: w.K, Marker: w.marker, VolKey0: w.volKey0, FuzzBudget: fuzzBudget}
}

// scan enforces the invariant at a step boundary while the device is
// locked.
func (w *World) scan(op Op) *Violation {
	// (bus) latched by the probe during any locked period.
	if w.probe != nil && w.probe.tripped != "" {
		v := &Violation{Clause: "bus", Detail: w.probe.tripped, Step: w.step, Op: op}
		w.probe.tripped = ""
		return v
	}
	if w.K.State() == kernel.Unlocked {
		return nil
	}
	// (dram) and (writeback) via the shared Scanner clauses.
	if v := w.scanner().ScanLive(); v != nil {
		v.Step, v.Op = w.step, op
		return v
	}
	return nil
}

// dmaScan mounts the paper's DMA-peripheral attack; on platforms without an
// open DMA port it degrades to the regular scan.
func (w *World) dmaScan(op Op) *Violation {
	if w.K.State() == kernel.Unlocked {
		// DMA reads plaintext while unlocked by design; out of scope.
		return w.scan(op)
	}
	a, err := attack.MountDMAScrape(w.S)
	if err != nil {
		return w.scan(op)
	}
	if a.ContainsSecret(w.marker) {
		return &Violation{Clause: "dma", Detail: "plaintext marker readable by DMA peripheral", Step: w.step, Op: op}
	}
	return w.scan(op)
}

// powerLoss cuts power for the given seconds and post-mortems the decayed
// image. The device is dead afterwards.
func (w *World) powerLoss(seconds float64, why string, op Op) *Violation {
	wasLocked := w.K.State() != kernel.Unlocked
	w.S.PowerCut(seconds, remanence.RoomTempC)
	w.dead, w.cutLocked = true, wasLocked
	return w.postMortem(wasLocked, why, op)
}

// heldReset is the paper's 2-second held reset into an attacker image. A
// locked bootloader rejects the unsigned dump image, but the power loss
// happens physically regardless — fall back to a raw cut.
func (w *World) heldReset(op Op) *Violation {
	wasLocked := w.K.State() != kernel.Unlocked
	if err := w.S.HeldReset(heldResetSeconds, firmware.Image{Name: "memdump"}); err != nil {
		w.S.PowerCut(heldResetSeconds, remanence.RoomTempC)
	}
	w.dead, w.cutLocked = true, wasLocked
	return w.postMortem(wasLocked, "held reset", op)
}

// glitchReset is the adversarial reset-glitch: cold boot with the ROM's
// iRAM zeroing and image verification skipped.
func (w *World) glitchReset(op Op) *Violation {
	wasLocked := w.K.State() != kernel.Unlocked
	w.S.GlitchedReset(glitchSeconds, firmware.Image{Name: "memdump"})
	w.dead, w.cutLocked = true, wasLocked
	return w.postMortem(wasLocked, "glitched reset", op)
}

// postMortem scans the remanence image after power loss. Only a device that
// was locked at the cut is in scope: the pre-lock plaintext window is the
// exposure the paper's threat model accepts.
func (w *World) postMortem(wasLocked bool, why string, op Op) *Violation {
	if !wasLocked {
		return nil
	}
	// (remanence) and (key) via the shared Scanner clauses. The reference
	// key is the one generated at boot: deep-lock zeroizes the live copy,
	// but ciphertext sealed under the original must stay safe.
	if v := w.scanner().PostMortem(why); v != nil {
		v.Step, v.Op = w.step, op
		return v
	}
	return nil
}

// IntegrityCheck verifies end-to-end data integrity after a schedule on a
// live, unperturbed world: unlock and expect every marker byte back. A
// deep-locked device cannot unlock (by design) and is skipped.
func (w *World) IntegrityCheck() error {
	if w.dead || w.Perturbed() {
		return nil
	}
	if err := w.K.Unlock(worldPIN); err != nil {
		if w.K.State() == kernel.DeepLocked {
			return nil
		}
		return fmt.Errorf("unlock for integrity check failed: %v", err)
	}
	w.bgOn = false
	check := func(p *kernel.Process, base mmu.VirtAddr, pages int) error {
		w.K.Switch(p)
		got := make([]byte, len(w.marker))
		for i := 0; i < pages; i++ {
			if err := w.S.CPU.Load(base+mmu.VirtAddr(i*mem.PageSize), got); err != nil {
				return fmt.Errorf("%s page %d unreadable after run: %v", p.Name, i, err)
			}
			if !bytes.Equal(got, w.marker) {
				return fmt.Errorf("%s page %d corrupted after run", p.Name, i)
			}
		}
		return nil
	}
	if err := check(w.fg, w.fgBase, fgPages); err != nil {
		return err
	}
	return check(w.bg, w.bgBase, bgPages)
}

package check

import (
	"fmt"
	"testing"

	"sentry/internal/faults"
)

// TestSnapshotOnOffIdentity runs the full checking pipeline — an adversarial
// campaign (guaranteed violations, so shrinking runs) plus the positive
// controls — once through the checkpoint/fork fast path and once with it
// disabled (the sentrybench -snapshot=off escape hatch), and requires the
// verdicts, violation clauses, and shrunk repro lines to be identical.
// Snapshots may only change wall-clock, never results.
func TestSnapshotOnOffIdentity(t *testing.T) {
	old := SnapshotEnabled
	defer func() { SnapshotEnabled = old }()

	collect := func() []string {
		var out []string
		adv, _ := faults.ByName("adversarial")
		cr := Campaign(Config{Platform: "tegra3", Defences: AllDefences(), Faults: adv, Steps: 60}, 1, 10)
		out = append(out, fmt.Sprintf("campaign violations=%d integrity=%d",
			cr.ViolationSeeds, len(cr.IntegrityFailures)))
		if cr.Repro != nil {
			out = append(out, cr.Repro.String(), cr.Repro.Violation.String())
		}
		for _, ctl := range Controls() {
			r, err := RunControl("tegra3", ctl.Name, 32, 40)
			if err != nil {
				t.Fatalf("control %s (snapshot=%v): %v", ctl.Name, SnapshotEnabled, err)
			}
			out = append(out, r.String(), r.Violation.String())
		}
		return out
	}

	SnapshotEnabled = true
	on := collect()
	SnapshotEnabled = false
	off := collect()

	if len(on) != len(off) {
		t.Fatalf("result counts differ: snapshot on %d lines, off %d lines\non:  %q\noff: %q",
			len(on), len(off), on, off)
	}
	for i := range on {
		if on[i] != off[i] {
			t.Errorf("line %d differs:\n  snapshot on:  %s\n  snapshot off: %s", i, on[i], off[i])
		}
	}
}

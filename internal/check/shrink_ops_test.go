package check

import (
	"fmt"
	"testing"

	"sentry/internal/faults"
	"sentry/internal/obs"
	"sentry/internal/snapshot"
)

// lockFlushOff is the ablation the shrink tests mine for violations: it
// fires on short schedules, so shrinking has real work to do.
func lockFlushOff() Defences {
	return Defences{IRAMZeroOnBoot: true, LockFlush: false, ZeroOnFree: true}
}

// TestShrinkCheckpointReplaysOnlySuffix pins the shrink fast path's whole
// point: with a boot snapshot, candidate validation forks the advanced
// prefix checkpoint and replays only the candidate's suffix, so a shrink
// whose schedule keeps its head executes strictly fewer ops than the cold
// path replaying every candidate in full — while producing the identical
// minimal schedule and violation. Ops are counted through
// Config.OpsCounter, which every world forked from the config inherits, so
// checkpoint forks and suffix replays all land in the same counter.
//
// The schedule is crafted head-essential for the zero-on-free ablation:
// the leading free-page plants the plaintext frame on the zero queue, a
// long run of removable junk follows, and the closing lock rides the
// un-drained queue into the locked state. ddmin must keep the head, so
// every sweep serves candidates at start > 0 — the suffix-only case.
func TestShrinkCheckpointReplaysOnlySuffix(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Platform: "tegra3",
		Defences: Defences{IRAMZeroOnBoot: true, LockFlush: true, ZeroOnFree: false},
		Faults:   faults.None(), Steps: 60,
	}
	const seed = int64(1)
	sched := Schedule{{Code: OpFreePage, Arg: 2}}
	for i := 0; i < 30; i++ {
		sched = append(sched, Op{Code: OpFgTouch, Arg: uint32(i)}, Op{Code: OpPressure, Arg: uint32(i)})
	}
	sched = append(sched, Op{Code: OpLock})
	if v := Replay(cfg, seed, sched).Violation; v == nil {
		t.Fatal("crafted schedule does not violate — zero-on-free physics changed?")
	}

	run := func(boot bool) (Schedule, *Violation, uint64) {
		ctr := &obs.Counter{}
		ccfg := cfg
		ccfg.OpsCounter = ctr
		var snap *snapshot.Snapshot[*World]
		if boot {
			snap = snapshot.Capture(NewWorld(ccfg, seed))
		}
		minimal, v := ShrinkFrom(snap, ccfg, seed, sched)
		return minimal, v, ctr.Value()
	}

	minCold, vCold, opsCold := run(false)
	minSnap, vSnap, opsSnap := run(true)

	if vCold == nil || vSnap == nil {
		t.Fatalf("shrink lost the violation: cold=%v snap=%v", vCold, vSnap)
	}
	if minCold.String() != minSnap.String() {
		t.Fatalf("checkpoint path changed the minimal schedule:\n  cold: %s\n  snap: %s", minCold, minSnap)
	}
	if vCold.Clause != vSnap.Clause {
		t.Fatalf("checkpoint path changed the violation clause: cold=%s snap=%s", vCold.Clause, vSnap.Clause)
	}
	if opsSnap >= opsCold {
		t.Fatalf("checkpoint shrink replayed %d ops, cold path %d — suffix-only replay saved nothing",
			opsSnap, opsCold)
	}
	t.Logf("shrink of %d-op schedule: cold %d ops, checkpoint %d ops (%.1f%%)",
		len(sched), opsCold, opsSnap, 100*float64(opsSnap)/float64(opsCold))
}

// TestCampaignParallelMatchesSerial pins CampaignParallel's contract: the
// verdict, per-seed counts, repro line, and integrity list are
// byte-identical at any worker count. The adversarial profile makes the
// campaign messy on purpose — violations on several seeds, so the repro
// must come from the lowest violating seed regardless of which worker
// finished first.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	adv, ok := faults.ByName("adversarial")
	if !ok {
		t.Fatal("adversarial fault profile missing")
	}
	for _, cfg := range []Config{
		{Platform: "tegra3", Defences: AllDefences(), Faults: adv, Steps: 50},
		{Platform: "nexus4", Defences: lockFlushOff(), Faults: faults.None(), Steps: 50},
	} {
		key := func(r CampaignResult) string {
			s := fmt.Sprintf("%s|%s|%s|violations=%d", r.Config.Platform,
				defencesString(r.Config.Defences), faultsName(r.Config.Faults), r.ViolationSeeds)
			if r.Repro != nil {
				s += "|" + r.Repro.String() + "|" + r.Repro.Violation.String()
			}
			for _, f := range r.IntegrityFailures {
				s += "|" + f
			}
			return s
		}
		serial := CampaignParallel(cfg, 1, 24, 1)
		for _, workers := range []int{2, 4, 0} {
			par := CampaignParallel(cfg, 1, 24, workers)
			if key(par) != key(serial) {
				t.Errorf("platform %s workers %d diverged from serial:\n  serial:   %s\n  parallel: %s",
					cfg.Platform, workers, key(serial), key(par))
			}
		}
	}
}

// Package explore turns the seeded campaign checker into a prefix-sharing
// schedule explorer: a tree of schedule prefixes whose interior nodes park
// forkable snapshots, so sweeping N schedules costs ~N op executions
// instead of the seed-replay path's boot-plus-full-replay per schedule.
//
// Every tree node is one checked schedule — its path from the root, with
// the invariant scanned after the final op exactly as check.World.Apply
// scans after every step — so "schedules" below always means tree nodes.
// The tree's shape is a pure function of (Config, Seed, Budget): children
// are drawn from the campaign's own op generator seeded by a rolling path
// hash, and budget is split deterministically among subtrees. Exploration
// order is the only thing the worker count changes; the explored set, the
// canonical violation, and the coverage hash are byte-identical at -j 1
// and -j N (equivalence_test.go holds this under -race).
//
// Node lifecycle: chains (single-child nodes) drive the live world forward
// inline and never fork. Branch nodes park their world via snapshot.Adopt;
// each child consumes one reference, the last by an O(1) HandOff instead
// of a fork. A bounded LRU keeps at most SnapBudget parked snapshots
// resident; evicted nodes are re-derived on demand by forking the nearest
// live ancestor and replaying the ops between — correctness never depends
// on what the LRU kept, only wall-clock does.
package explore

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"container/list"

	"sentry/internal/check"
	"sentry/internal/obs"
	"sentry/internal/sim"
	"sentry/internal/snapshot"
)

// Config parameterises one exploration.
type Config struct {
	// Check is the world configuration (platform, defences, faults). Its
	// OpsCounter field is overridden by the explorer's own counter.
	Check check.Config
	// Seed roots the deterministic tree; sibling trees come from sibling
	// seeds exactly like campaign seeds.
	Seed int64
	// Budget is how many schedules (tree nodes) to explore. Default 4096.
	Budget int
	// Branch bounds the children drawn per node. Default 4.
	Branch int
	// Depth bounds schedule length; DefaultDepth when zero. Deliberately
	// deeper than a campaign's check.DefaultSteps: long schedules are
	// where prefix sharing pays, and the tree's cost per schedule does
	// not grow with depth the way seed replay's does.
	Depth int
	// Workers sizes the work-stealing pool; GOMAXPROCS when zero.
	Workers int
	// SnapBudget bounds resident parked snapshots (min 1). Default 256.
	SnapBudget int
	// Corpus holds interesting prefixes from earlier runs, replayed —
	// and re-checked — before the sweep starts.
	Corpus []check.Schedule
	// Registry, when set, receives the explorer's counters at the end of
	// the run under the explore.* namespace.
	Registry *obs.Registry
}

// MaxCorpus caps how many banked prefixes a run emits.
const MaxCorpus = 64

// DefaultDepth bounds schedule length when Config.Depth is zero. In
// practice chains die of schedule mortality (terminal ops, dead worlds)
// around depth ~100, so the cap protects against pathological op mixes
// without truncating the organic depth distribution.
const DefaultDepth = 200

// Result reports one exploration. The fields above the perf marker are
// deterministic: identical for the same (Config minus Workers/SnapBudget)
// at any worker count and any snapshot budget.
type Result struct {
	// Schedules is the number of distinct prefixes checked (tree nodes
	// plus corpus replay steps); the throughput unit of BENCH_wallclock's
	// explore record.
	Schedules uint64
	// Leaves counts schedules that ended: death, violation, depth or
	// budget exhaustion.
	Leaves uint64
	// PORPrunes counts child edges dropped by the commutation rule.
	PORPrunes uint64
	// MaxDepth is the longest explored prefix.
	MaxDepth int
	// Violations counts violating schedules found (the tree keeps
	// exploring other subtrees after a violation, like a campaign keeps
	// running later seeds).
	Violations int
	// Sched is the canonically smallest violating schedule, nil if none.
	Sched check.Schedule
	// Repro is Sched shrunk to a minimal reproducer via the tree's root
	// checkpoint.
	Repro *check.Repro
	// NearMisses counts dead leaves whose post-mortem image was within
	// the relaxed decay budget of a violation.
	NearMisses uint64
	// CoverageHash folds every explored prefix's path hash with XOR — an
	// order-independent fingerprint of the explored set.
	CoverageHash uint64
	// Corpus is the sorted, deduplicated bank of violation and near-miss
	// prefixes as replayable repro lines.
	Corpus []string

	// Perf fields — vary with Workers, SnapBudget, and timing.

	// SnapshotHits counts worlds obtained from a live parked ancestor;
	// HandOffs is the subset that took the O(1) last-consumer path.
	SnapshotHits uint64
	HandOffs     uint64
	// Replays counts worlds re-derived past an evicted snapshot;
	// ReplayedOps is the ops re-executed doing so.
	Replays     uint64
	ReplayedOps uint64
	// Evictions counts parked snapshots dropped by the LRU.
	Evictions uint64
	// PeakResident is the high-water mark of parked snapshots.
	PeakResident int
	// OpsExecuted counts every op applied by any world of this run
	// (tree driving, corpus replays, re-derivations, shrinking).
	OpsExecuted uint64
	// Elapsed is the wall-clock of the phase the mode measures: the whole
	// run for Run, only the replay phase for Baseline.
	Elapsed time.Duration
}

// node is one explored prefix. Nodes point only at their parent, so a
// finished subtree is garbage the moment its last task completes; the
// bounded LRU is the only thing that retains interior nodes.
type node struct {
	parent *node
	op     check.Op
	depth  int
	hash   uint64 // rolling path hash; seeds the child draw

	mu   sync.Mutex
	snap *snapshot.Snapshot[*check.World]
	refs int // children yet to consume snap

	elem *list.Element // LRU slot; guarded by explorer.lruMu
}

// task is one unit of frontier work: materialise n's world and drive its
// subtree within quota nodes (n included).
type task struct {
	n     *node
	quota int
}

type worker struct {
	id       int
	cov      uint64 // XOR-fold of visited path hashes
	maxDepth int
}

type violationRec struct {
	sched check.Schedule
	v     *check.Violation
}

type explorer struct {
	cfg        Config
	ccfg       check.Config // cfg.Check with the ops counter attached
	depth      int
	branch     int
	snapBudget int

	root     *node
	rootSnap *snapshot.Snapshot[*check.World]
	opsExec  *obs.Counter

	collectPaths bool

	fmu     sync.Mutex
	fcond   *sync.Cond
	deques  [][]task
	pending int

	lruMu sync.Mutex
	lru   *list.List
	peak  int

	resMu      sync.Mutex
	violations []violationRec
	bank       map[string]struct{}
	paths  []check.Schedule

	schedules, leaves, prunes, nearMisses    atomic.Uint64
	snapHits, handOffs, replays, replayedOps atomic.Uint64
	evictions                                atomic.Uint64

	// Folded from the per-worker accumulators after the pool drains.
	covFold      uint64
	maxDepthFold int
}

// childSalt decorrelates the child-draw RNG from the coverage hash.
const childSalt = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finaliser — the rolling path hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (c *Config) normalise() {
	if c.Budget <= 0 {
		c.Budget = 4096
	}
	if c.Branch <= 0 {
		c.Branch = 4
	}
	if c.Depth <= 0 {
		c.Depth = DefaultDepth
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SnapBudget <= 0 {
		c.SnapBudget = 256
	}
}

func newExplorer(cfg Config, collectPaths bool) *explorer {
	cfg.normalise()
	e := &explorer{
		cfg:           cfg,
		depth:         cfg.Depth,
		branch:        cfg.Branch,
		snapBudget:    cfg.SnapBudget,
		opsExec:       &obs.Counter{},
		collectPaths: collectPaths,
		lru:           list.New(),
		bank:          map[string]struct{}{},
	}
	e.fcond = sync.NewCond(&e.fmu)
	e.ccfg = cfg.Check
	e.ccfg.OpsCounter = e.opsExec
	e.root = &node{hash: mix64(uint64(cfg.Seed) ^ 0x53454e545259)}
	e.rootSnap = snapshot.Adopt(check.NewWorld(e.ccfg, cfg.Seed))
	return e
}

// Run explores the tree for cfg and returns the result.
func Run(cfg Config) *Result {
	start := time.Now()
	e := newExplorer(cfg, false)
	e.sweep()
	r := e.assemble()
	r.Elapsed = time.Since(start)
	e.mirror(r)
	return r
}

// sweep replays the corpus, then drains the tree through the worker pool.
func (e *explorer) sweep() {
	e.replayCorpus()
	workers := e.cfg.Workers
	e.deques = make([][]task, workers)
	e.pending = 1
	e.deques[0] = []task{{e.root, e.cfg.Budget}}
	wks := make([]*worker, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wks[i] = &worker{id: i}
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			for {
				t, ok := e.next(wk)
				if !ok {
					return
				}
				e.execute(wk, t)
				e.done()
			}
		}(wks[i])
	}
	wg.Wait()
	// Fold per-worker accumulators.
	for _, wk := range wks {
		if wk.maxDepth > e.maxDepthFold {
			e.maxDepthFold = wk.maxDepth
		}
		e.covFold ^= wk.cov
	}
}

// execute drives one subtree: chains run inline on the live world, branch
// points park it and fan the siblings out as stealable tasks.
func (e *explorer) execute(wk *worker, t task) {
	n, quota := t.n, t.quota
	w, v := e.materialise(n)
	for {
		if n != e.root {
			e.visit(wk, n)
		}
		if v != nil {
			e.recordViolation(n, v)
			e.endSchedule(n, w, true)
			return
		}
		if w.Dead() || n.depth >= e.depth || quota <= 1 {
			e.endSchedule(n, w, false)
			return
		}
		ops := e.childOps(n, w, quota)
		if len(ops) == 0 {
			e.endSchedule(n, w, false)
			return
		}
		var quotas []int
		ops, quotas = splitQuota(quota-1, ops)
		if len(ops) == 1 {
			c := e.newChild(n, ops[0])
			v = w.Apply(c.op)
			n, quota = c, quotas[0]
			continue
		}
		e.park(n, w, len(ops))
		for i := len(ops) - 1; i >= 1; i-- {
			e.push(wk, task{e.newChild(n, ops[i]), quotas[i]})
		}
		c := e.newChild(n, ops[0])
		w, v = e.materialise(c)
		n, quota = c, quotas[0]
	}
}

func (e *explorer) newChild(n *node, op check.Op) *node {
	return &node{
		parent: n,
		op:     op,
		depth:  n.depth + 1,
		hash:   mix64(n.hash ^ (uint64(op.Code+1)<<32 | uint64(op.Arg))),
	}
}

func (e *explorer) visit(wk *worker, n *node) {
	e.schedules.Add(1)
	wk.cov ^= mix64(n.hash)
	if n.depth > wk.maxDepth {
		wk.maxDepth = n.depth
	}
	if e.collectPaths {
		// Baseline enumeration: every node is a schedule the seed-replay
		// path must pay for in full.
		e.addPath(e.pathOps(n))
	}
}

// branchSalt decorrelates the branch-point draw from the child draw and
// the coverage fold.
const branchSalt = 0x7f4a7c159e3779b9

// branchy reports whether n fans out. Most nodes chain — a single child,
// driven inline on the live world with no fork — and roughly one in eight
// becomes a branch point, so schedules grow deep (long shared prefixes,
// which is where prefix sharing pays) while still forking enough
// interleavings to explore adversarial orderings. The root's first levels
// always branch: the shortest violating pairs live there, and a sweep
// must never depend on one chain's luck to reach them. Like the child
// draw, the decision is a pure function of the path hash.
func (e *explorer) branchy(n *node) bool {
	return n.depth <= 1 || mix64(n.hash^branchSalt)&7 == 0
}

// childOps draws up to Branch distinct-code child ops for n — a single
// one unless n is a branch point. The draw is a pure function of the
// node's path hash, so the tree shape is identical at any worker count;
// at branch points the POR rule then drops edges that provably commute
// with n's own incoming edge. Chains are exempt from pruning: a pruned
// edge is redundant only because the sibling order is explored elsewhere,
// and a chain has no siblings.
func (e *explorer) childOps(n *node, w *check.World, quota int) []check.Op {
	k := quota - 1
	if k > e.branch {
		k = e.branch
	}
	if k > 1 && !e.branchy(n) {
		k = 1
	}
	rng := sim.NewRNG(int64(n.hash ^ childSalt))
	ops := make([]check.Op, 0, k)
	var seen uint32
	for tries := 0; len(ops) < k && tries < 6*e.branch; tries++ {
		s := check.GenerateFor(e.cfg.Check, rng, 1)
		if len(s) == 0 {
			continue
		}
		op := s[0]
		if seen&(1<<uint(op.Code)) != 0 {
			continue
		}
		seen |= 1 << uint(op.Code)
		if k > 1 && n != e.root && prune(w, n.op, op) {
			e.prunes.Add(1)
			continue
		}
		ops = append(ops, op)
	}
	return ops
}

// splitQuota divides a subtree budget of avail nodes among the drawn
// children: every child costs one node, terminal children never get
// descendants, and of the remainder the first live child (the spine)
// takes ~60% so the tree develops depth as well as breadth. Surplus
// budget at an all-terminal branch is deliberately forfeited — the
// undershoot is deterministic.
func splitQuota(avail int, ops []check.Op) ([]check.Op, []int) {
	if avail < len(ops) {
		ops = ops[:avail]
	}
	q := make([]int, len(ops))
	for i := range q {
		q[i] = 1
	}
	rem := avail - len(ops)
	var live []int
	for i, op := range ops {
		if !op.Code.Terminal() {
			live = append(live, i)
		}
	}
	if len(live) > 0 && rem > 0 {
		spine := rem * 3 / 5
		q[live[0]] += spine
		rem -= spine
		per, extra := rem/len(live), rem%len(live)
		for j, i := range live {
			q[i] += per
			if j < extra {
				q[i]++
			}
		}
	}
	return ops, q
}

// materialise produces a live world positioned after n.op, applying n.op
// itself and returning its violation, if any. The world comes from the
// nearest live ancestor snapshot: the direct parent — whose reference this
// child owns and consumes — or, past evicted snapshots, an ancestor
// reached by replaying the intermediate (previously clean) ops.
func (e *explorer) materialise(n *node) (*check.World, *check.Violation) {
	if n == e.root {
		return e.rootSnap.Fork(), nil
	}
	ops := []check.Op{n.op}
	var src *check.World
	a := n.parent
	if a == e.root {
		src = e.rootSnap.Fork()
		e.snapHits.Add(1)
	} else {
		a.mu.Lock()
		a.refs--
		last := a.refs == 0
		if a.snap != nil {
			if last {
				if hw, ok := a.snap.HandOff(); ok {
					src = hw
					e.handOffs.Add(1)
				}
				a.snap = nil
			} else {
				src = a.snap.Fork()
			}
		}
		a.mu.Unlock()
		if src != nil {
			e.snapHits.Add(1)
			if last {
				e.dropFromLRU(a)
			} else {
				e.touchLRU(a)
			}
		}
	}
	if src == nil {
		// The parent was evicted. Walk up — we own no references above the
		// parent, so ancestors are only forked, never handed off.
		for {
			ops = append(ops, a.op)
			a = a.parent
			if a == e.root {
				src = e.rootSnap.Fork()
				break
			}
			a.mu.Lock()
			if a.snap != nil {
				src = a.snap.Fork()
			}
			a.mu.Unlock()
			if src != nil {
				e.touchLRU(a)
				break
			}
		}
		e.replays.Add(1)
	}
	// Replay the gap. Every op but n.op was clean when first explored, and
	// replay is deterministic, so a violation or death here is a bug.
	for i := len(ops) - 1; i >= 1; i-- {
		if v := src.Apply(ops[i]); v != nil || src.Dead() {
			panic(fmt.Sprintf("explore: re-derivation diverged at %v", ops[i]))
		}
		e.replayedOps.Add(1)
	}
	return src, src.Apply(ops[0])
}

// park checkpoints w at branch node n for its children to consume, then
// evicts the coldest snapshots beyond the resident budget. Lock order:
// node.mu and lruMu never nest.
func (e *explorer) park(n *node, w *check.World, children int) {
	sn := snapshot.Adopt(w)
	n.mu.Lock()
	n.snap, n.refs = sn, children
	n.mu.Unlock()
	var victims []*node
	e.lruMu.Lock()
	n.elem = e.lru.PushFront(n)
	for e.lru.Len() > e.snapBudget {
		back := e.lru.Back()
		e.lru.Remove(back)
		vn := back.Value.(*node)
		vn.elem = nil
		victims = append(victims, vn)
	}
	if l := e.lru.Len(); l > e.peak {
		e.peak = l
	}
	e.lruMu.Unlock()
	for _, vn := range victims {
		// The evicted snapshot exclusively owns its world (forks taken from
		// it are independent), so hand it off and recycle its fork-private
		// allocations into the clone pool instead of dropping them for the
		// collector. Children that still hold references replay from an
		// ancestor, exactly as before.
		var hw *check.World
		vn.mu.Lock()
		if vn.snap != nil {
			if w, ok := vn.snap.HandOff(); ok {
				hw = w
			}
			vn.snap = nil
			e.evictions.Add(1)
		}
		vn.mu.Unlock()
		if hw != nil {
			hw.Release()
		}
	}
}

func (e *explorer) touchLRU(n *node) {
	e.lruMu.Lock()
	if n.elem != nil {
		e.lru.MoveToFront(n.elem)
	}
	e.lruMu.Unlock()
}

func (e *explorer) dropFromLRU(n *node) {
	e.lruMu.Lock()
	if n.elem != nil {
		e.lru.Remove(n.elem)
		n.elem = nil
	}
	e.lruMu.Unlock()
}

// endSchedule closes out a leaf: bank violating and near-miss prefixes,
// then recycle the world — it was this task's exclusive fork (or
// hand-off) and nothing references it once the leaf is decided.
func (e *explorer) endSchedule(n *node, w *check.World, violated bool) {
	e.leaves.Add(1)
	if violated {
		e.bankLine(e.pathOps(n))
		w.Release()
		return
	}
	if w.Dead() && w.NearMiss() {
		e.nearMisses.Add(1)
		e.bankLine(e.pathOps(n))
	}
	w.Release()
}

func (e *explorer) pathOps(n *node) check.Schedule {
	depth := n.depth
	ops := make(check.Schedule, depth)
	for m := n; m != e.root; m = m.parent {
		depth--
		ops[depth] = m.op
	}
	return ops
}

func (e *explorer) recordViolation(n *node, v *check.Violation) {
	sched := e.pathOps(n)
	e.resMu.Lock()
	e.violations = append(e.violations, violationRec{sched, v})
	e.resMu.Unlock()
}

func (e *explorer) bankLine(sched check.Schedule) {
	if len(sched) == 0 {
		return
	}
	line := (&check.Repro{Config: e.cfg.Check, Seed: e.cfg.Seed, Ops: sched}).String()
	e.resMu.Lock()
	e.bank[line] = struct{}{}
	e.resMu.Unlock()
}

func (e *explorer) addPath(sched check.Schedule) {
	e.resMu.Lock()
	e.paths = append(e.paths, sched)
	e.resMu.Unlock()
}

// replayCorpus drives each seeded corpus prefix from the root snapshot,
// checking (and counting) every step exactly like a tree node. Serial on
// purpose: the corpus is small and running it before the pool keeps the
// -j equivalence argument trivial.
func (e *explorer) replayCorpus() {
	for _, pfx := range e.cfg.Corpus {
		if len(pfx) == 0 {
			continue
		}
		w := e.rootSnap.Fork()
		applied := 0
		var v *check.Violation
		for _, op := range pfx {
			if w.Dead() {
				break
			}
			v = w.Apply(op)
			applied++
			e.schedules.Add(1)
			if v != nil {
				break
			}
		}
		e.leaves.Add(1)
		run := append(check.Schedule(nil), pfx[:applied]...)
		if e.collectPaths {
			// Every applied step was checked as its own schedule; the
			// baseline owes a replay for each of those prefixes.
			for k := 1; k <= applied; k++ {
				e.addPath(run[:k:k])
			}
		}
		if v != nil {
			e.resMu.Lock()
			e.violations = append(e.violations, violationRec{run, v})
			e.resMu.Unlock()
			e.bankLine(run)
		} else if w.Dead() && w.NearMiss() {
			e.nearMisses.Add(1)
			e.bankLine(run)
		}
		w.Release()
	}
}

// Frontier: per-worker LIFO deques. A worker pops its own newest task
// (depth-first, cache-warm); an idle worker steals the oldest task from
// the longest other deque (the coarsest subtree). pending counts pushed-
// but-unfinished tasks; the pool drains when it hits zero.

func (e *explorer) push(wk *worker, t task) {
	e.fmu.Lock()
	e.deques[wk.id] = append(e.deques[wk.id], t)
	e.pending++
	e.fmu.Unlock()
	e.fcond.Signal()
}

func (e *explorer) next(wk *worker) (task, bool) {
	e.fmu.Lock()
	defer e.fmu.Unlock()
	for {
		if d := e.deques[wk.id]; len(d) > 0 {
			t := d[len(d)-1]
			e.deques[wk.id] = d[:len(d)-1]
			return t, true
		}
		best, bestLen := -1, 0
		for i, d := range e.deques {
			if i != wk.id && len(d) > bestLen {
				best, bestLen = i, len(d)
			}
		}
		if best >= 0 {
			t := e.deques[best][0]
			e.deques[best] = e.deques[best][1:]
			return t, true
		}
		if e.pending == 0 {
			return task{}, false
		}
		e.fcond.Wait()
	}
}

func (e *explorer) done() {
	e.fmu.Lock()
	e.pending--
	drained := e.pending == 0
	e.fmu.Unlock()
	if drained {
		e.fcond.Broadcast()
	}
}

// assemble builds the Result after the pool drains: canonical-min
// violation selection, shrinking through the root checkpoint, and the
// sorted corpus bank.
func (e *explorer) assemble() *Result {
	r := &Result{
		Schedules:    e.schedules.Load(),
		Leaves:       e.leaves.Load(),
		PORPrunes:    e.prunes.Load(),
		MaxDepth:     e.maxDepthFold,
		NearMisses:   e.nearMisses.Load(),
		CoverageHash: e.covFold,
		SnapshotHits: e.snapHits.Load(),
		HandOffs:     e.handOffs.Load(),
		Replays:      e.replays.Load(),
		ReplayedOps:  e.replayedOps.Load(),
		Evictions:    e.evictions.Load(),
		PeakResident: e.peak,
	}
	if len(e.violations) > 0 {
		r.Violations = len(e.violations)
		sort.Slice(e.violations, func(i, j int) bool {
			return e.violations[i].sched.String() < e.violations[j].sched.String()
		})
		best := e.violations[0]
		r.Sched = best.sched
		minimal, mv := check.ShrinkFrom(e.rootSnap, e.ccfg, e.cfg.Seed, best.sched)
		if mv == nil { // cannot happen: best.sched violated when explored
			minimal, mv = best.sched, best.v
		}
		r.Repro = &check.Repro{
			Config: e.cfg.Check, Seed: e.cfg.Seed,
			Ops: minimal, Violation: mv, OriginalLen: len(best.sched),
		}
	}
	r.Corpus = make([]string, 0, len(e.bank))
	for line := range e.bank {
		r.Corpus = append(r.Corpus, line)
	}
	sort.Strings(r.Corpus)
	if len(r.Corpus) > MaxCorpus {
		r.Corpus = r.Corpus[:MaxCorpus]
	}
	r.OpsExecuted = e.opsExec.Value()
	return r
}

// mirror publishes the run's counters into the configured registry.
func (e *explorer) mirror(r *Result) {
	reg := e.cfg.Registry
	if reg == nil {
		return
	}
	reg.Counter("explore.schedules").Add(r.Schedules)
	reg.Counter("explore.leaves").Add(r.Leaves)
	reg.Counter("explore.por_prunes").Add(r.PORPrunes)
	reg.Counter("explore.near_misses").Add(r.NearMisses)
	reg.Counter("explore.snapshot_hits").Add(r.SnapshotHits)
	reg.Counter("explore.handoffs").Add(r.HandOffs)
	reg.Counter("explore.replays").Add(r.Replays)
	reg.Counter("explore.replayed_ops").Add(r.ReplayedOps)
	reg.Counter("explore.evictions").Add(r.Evictions)
	reg.Counter("explore.ops_executed").Add(r.OpsExecuted)
	reg.Counter("explore.violations").Add(uint64(r.Violations))
}

// Baseline measures the seed-replay cost of exactly the coverage a tree
// run achieves. It runs the tree once (untimed) to enumerate the explored
// schedules — every node, not just the leaves — then checks each one the
// way the current campaign path would: fork the post-boot snapshot and
// replay the schedule's ops in full, scanning at every step. Two
// schedules sharing a 50-op prefix pay for those 50 ops twice here and
// once in the tree; that duplicated work is precisely what the explorer
// removes. The deterministic fields are recomputed from the replays (and
// must match the tree's; explore_test.go asserts it), while Elapsed and
// OpsExecuted cover only the replay phase, so Schedules/Elapsed is the
// honest like-for-like baseline throughput.
func Baseline(cfg Config) *Result {
	e := newExplorer(cfg, true)
	e.sweep()
	r := e.assemble()

	paths := e.paths
	sort.Slice(paths, func(i, j int) bool { return paths[i].String() < paths[j].String() })

	bcfg := cfg.Check
	ops := &obs.Counter{}
	bcfg.OpsCounter = ops
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	start := time.Now()
	boot := snapshot.Capture(check.NewWorld(bcfg, cfg.Seed))
	type rec struct {
		v    *check.Violation
		dead bool
		miss bool
		len  int
	}
	recs := make([]rec, len(paths))
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(paths) {
					return
				}
				w := boot.Fork()
				v := check.ReplayFrom(w, paths[i])
				recs[i] = rec{v: v, dead: w.Dead(), miss: v == nil && w.NearMiss(), len: len(paths[i])}
				w.Release()
			}
		}()
	}
	wg.Wait()
	r.Elapsed = time.Since(start)
	r.OpsExecuted = ops.Value()

	// Recompute the verdict fields from the replays.
	var viols []violationRec
	var nearMisses uint64
	bank := map[string]struct{}{}
	for i, rc := range recs {
		if rc.v != nil {
			sched := paths[i]
			if rc.v.Step > 0 && rc.v.Step <= len(sched) {
				sched = sched[:rc.v.Step]
			}
			viols = append(viols, violationRec{sched, rc.v})
			bank[(&check.Repro{Config: cfg.Check, Seed: cfg.Seed, Ops: sched}).String()] = struct{}{}
			continue
		}
		if rc.miss {
			nearMisses++
			bank[(&check.Repro{Config: cfg.Check, Seed: cfg.Seed, Ops: paths[i]}).String()] = struct{}{}
		}
	}
	r.NearMisses = nearMisses
	r.Violations = len(viols)
	r.Sched, r.Repro = nil, nil
	if len(viols) > 0 {
		sort.Slice(viols, func(i, j int) bool {
			return viols[i].sched.String() < viols[j].sched.String()
		})
		best := viols[0]
		minimal, mv := check.Shrink(cfg.Check, cfg.Seed, best.sched)
		if mv == nil {
			minimal, mv = best.sched, best.v
		}
		r.Repro = &check.Repro{
			Config: cfg.Check, Seed: cfg.Seed,
			Ops: minimal, Violation: mv, OriginalLen: len(best.sched),
		}
		r.Sched = best.sched
	}
	r.Corpus = make([]string, 0, len(bank))
	for line := range bank {
		r.Corpus = append(r.Corpus, line)
	}
	sort.Strings(r.Corpus)
	if len(r.Corpus) > MaxCorpus {
		r.Corpus = r.Corpus[:MaxCorpus]
	}
	return r
}

package explore

import (
	"sentry/internal/check"
	"sentry/internal/kernel"
)

// Partial-order reduction over the checker's op alphabet.
//
// Almost no pair of ops commutes in *full* world state: the clock, the
// energy meter (an order-sensitive float accumulator — see the CleanWays
// comment in internal/cache), the RNG position, and the bus statistics all
// record execution order. The explorer therefore prunes only pairs it can
// prove commute *exactly*, using the one airtight case: ops that are pure
// no-ops in the current state. If op a is inert in world w and op b is
// inert in w, then both a·b and b·a are the identity on w — byte-identical
// end states, trivially commuting. The per-pair soundness test in
// por_test.go replays both orders from a forked world and asserts full
// state equality with check.DiffWorlds, so the guards below are pinned to
// the simulator's actual no-op fast paths rather than to our reading of
// them.
//
// The guards mirror the simulator's early returns:
//
//   - kernel.Lock is a no-op unless the device is unlocked, and the
//     checker's fg-touch and free-page ops guard themselves on Unlocked;
//   - bg-touch does nothing without a live background session;
//   - kernel.Suspend early-returns when already suspended, Wake when not;
//   - DrainZeroQueue returns immediately on an empty zero queue.
//
// The end-of-step invariant scan does not break inertness: at a node that
// is already known non-violating, every cache line the masked CleanWays
// would write back is clean (the node's own scan just cleaned them), and
// writing back a clean line is a total no-op in cache, bus, clock, and
// energy terms.
//
// Deliberately absent: idle (advances the clock and can trip the 900 s
// idle-lock), pressure/bit-flip/dma-scrape (mutate cache, RNG, or bus
// stats even when they find nothing), every terminal op, and the cache-
// attack ops prime-probe/evict-reload/occupancy-probe (hundreds of cache
// accesses each — clock, energy, cache state, and the attack log all
// advance even when the attacker recovers nothing; never inert).

// Inert reports whether op is a pure no-op in world w — applying it
// changes nothing but the step counter. Inert must be conservative: a
// false negative only costs pruning opportunity, a false positive breaks
// soundness (and the por_test harness).
func Inert(w *check.World, op check.Op) bool {
	switch op.Code {
	case check.OpLock, check.OpFgTouch, check.OpFreePage:
		return w.K.State() != kernel.Unlocked
	case check.OpBgTouch:
		return !w.BackgroundOn()
	case check.OpSuspend:
		return w.K.Suspended()
	case check.OpWake:
		return !w.K.Suspended()
	case check.OpDrainZero:
		return w.K.PendingZeroBytes() == 0
	}
	return false
}

// InertCodes lists every op code Inert can ever report true for — the
// alphabet the commutation soundness test sweeps pairwise.
func InertCodes() []check.OpCode {
	return []check.OpCode{
		check.OpLock, check.OpFgTouch, check.OpFreePage,
		check.OpBgTouch, check.OpSuspend, check.OpWake, check.OpDrainZero,
	}
}

// opLess is the canonical order the pruning rule sorts commuting ops by.
func opLess(a, b check.Op) bool {
	if a.Code != b.Code {
		return a.Code < b.Code
	}
	return a.Arg < b.Arg
}

// prune decides whether the child edge cand may be dropped at a node whose
// incoming edge was last, in world w (the state *after* last executed).
// When both ops are inert in w they commute, so of the two interleavings
// last·cand and cand·last the explorer keeps only the canonically ordered
// one: cand is pruned iff it sorts strictly before last. Both prefixes
// reach byte-identical states, so dropping one loses no coverage.
func prune(w *check.World, last, cand check.Op) bool {
	return opLess(cand, last) && Inert(w, last) && Inert(w, cand)
}

package explore

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"sentry/internal/check"
	"sentry/internal/faults"
)

// deterministicKey flattens every field of the Result that must be
// identical regardless of worker count and snapshot budget.
func deterministicKey(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedules=%d leaves=%d prunes=%d maxdepth=%d violations=%d nearmisses=%d cov=%016x",
		r.Schedules, r.Leaves, r.PORPrunes, r.MaxDepth, r.Violations, r.NearMisses, r.CoverageHash)
	fmt.Fprintf(&b, "\nsched=%s", r.Sched)
	if r.Repro != nil {
		fmt.Fprintf(&b, "\nrepro=%s\nclause=%s", r.Repro, r.Repro.Violation.String())
	}
	for _, line := range r.Corpus {
		b.WriteString("\ncorpus=")
		b.WriteString(line)
	}
	return b.String()
}

func ablatedConfig() check.Config {
	return check.Config{
		Platform: "tegra3",
		Defences: check.Defences{IRAMZeroOnBoot: true, LockFlush: false, ZeroOnFree: true},
		Faults:   faults.None(),
		Steps:    40,
	}
}

func defendedConfig() check.Config {
	adv, _ := faults.ByName("adversarial")
	return check.Config{Platform: "tegra3", Defences: check.AllDefences(), Faults: adv, Steps: 40}
}

// TestWorkerCountEquivalence is the determinism contract: the explored
// set, violation verdict, canonical repro, near-miss corpus, and coverage
// hash are byte-identical at -j 1 and -j N. Run under -race this also
// pins the engine's locking discipline.
func TestWorkerCountEquivalence(t *testing.T) {
	t.Parallel()
	for _, ccfg := range []check.Config{ablatedConfig(), defendedConfig()} {
		cfg := Config{Check: ccfg, Seed: 7, Budget: 900, Branch: 4, SnapBudget: 64, Workers: 1}
		want := deterministicKey(Run(cfg))
		for _, workers := range []int{2, 4, 0} {
			cfg.Workers = workers
			if got := deterministicKey(Run(cfg)); got != want {
				t.Errorf("defences=%+v workers=%d diverged from -j1:\n--- j1:\n%s\n--- j%d:\n%s",
					ccfg.Defences, workers, want, workers, got)
			}
		}
	}
}

// TestEvictionEquivalence starves the snapshot LRU down to a single
// resident snapshot and requires the identical result: eviction and
// re-derivation-by-replay are pure wall-clock trades, never coverage or
// verdict changes. The starved run must actually have evicted and
// replayed, or the test is vacuous.
func TestEvictionEquivalence(t *testing.T) {
	t.Parallel()
	cfg := Config{Check: ablatedConfig(), Seed: 3, Budget: 700, Branch: 4, Workers: 4, SnapBudget: 1 << 20}
	roomy := Run(cfg)
	cfg.SnapBudget = 1
	starved := Run(cfg)
	if starved.Evictions == 0 || starved.Replays == 0 {
		t.Fatalf("starved run evicted %d / replayed %d — LRU pressure never materialised",
			starved.Evictions, starved.Replays)
	}
	if got, want := deterministicKey(starved), deterministicKey(roomy); got != want {
		t.Errorf("snapshot starvation changed the result:\n--- roomy:\n%s\n--- starved:\n%s", want, got)
	}
	if roomy.Evictions != 0 {
		t.Errorf("roomy run evicted %d snapshots under a %d budget", roomy.Evictions, 1<<20)
	}
}

// TestExplorerDefeatsControls proves the tree explorer is not vacuous:
// against each single-defence ablation it finds a violation within a
// modest budget, and the shrunk repro replays to a violation through the
// ordinary campaign path (the repro line is a plain check.Repro, so it is
// pasteable into sentrybench -replay).
func TestExplorerDefeatsControls(t *testing.T) {
	t.Parallel()
	for _, ctl := range check.Controls() {
		ccfg := check.Config{
			Platform: "tegra3", Defences: ctl.Defences,
			Faults: faults.None(), Steps: 40,
		}
		var r *Result
		for seed := int64(1); seed <= 4 && (r == nil || r.Violations == 0); seed++ {
			r = Run(Config{Check: ccfg, Seed: seed, Budget: 4000, Branch: 4})
		}
		if r.Violations == 0 {
			t.Errorf("control %s: no violation in 4 seeds x 4000 schedules (checker blind to: %s)",
				ctl.Name, ctl.Description)
			continue
		}
		if r.Repro == nil {
			t.Errorf("control %s: violations found but no repro shrunk", ctl.Name)
			continue
		}
		rr := check.Replay(r.Repro.Config, r.Repro.Seed, r.Repro.Ops)
		if rr.Violation == nil {
			t.Errorf("control %s: shrunk repro %q does not replay to a violation", ctl.Name, r.Repro)
		}
		if len(r.Repro.Ops) > len(r.Sched) {
			t.Errorf("control %s: shrunk repro longer than the found schedule (%d > %d)",
				ctl.Name, len(r.Repro.Ops), len(r.Sched))
		}
	}
}

// TestBaselineMatchesTree: the seed-replay baseline sweeps the identical
// schedule set (it replays the tree's leaf paths, whose prefixes are
// exactly the tree's nodes) and must reproduce the same verdict fields —
// violations, near misses, corpus — from cold boots alone.
func TestBaselineMatchesTree(t *testing.T) {
	t.Parallel()
	cfg := Config{Check: ablatedConfig(), Seed: 5, Budget: 250, Branch: 3, Workers: 2}
	tree := Run(cfg)
	base := Baseline(cfg)
	if tree.Schedules != base.Schedules || tree.CoverageHash != base.CoverageHash {
		t.Fatalf("coverage diverged: tree %d/%016x, baseline %d/%016x",
			tree.Schedules, tree.CoverageHash, base.Schedules, base.CoverageHash)
	}
	if tree.Violations != base.Violations || tree.NearMisses != base.NearMisses {
		t.Errorf("verdicts diverged: tree %d violations/%d near-misses, baseline %d/%d",
			tree.Violations, tree.NearMisses, base.Violations, base.NearMisses)
	}
	if (tree.Repro == nil) != (base.Repro == nil) {
		t.Fatalf("repro presence diverged: tree %v baseline %v", tree.Repro, base.Repro)
	}
	if tree.Repro != nil && tree.Repro.String() != base.Repro.String() {
		t.Errorf("repro diverged:\n  tree:     %s\n  baseline: %s", tree.Repro, base.Repro)
	}
	if strings.Join(tree.Corpus, "\n") != strings.Join(base.Corpus, "\n") {
		t.Errorf("corpus diverged:\n  tree:     %q\n  baseline: %q", tree.Corpus, base.Corpus)
	}
	if base.OpsExecuted <= tree.OpsExecuted {
		t.Errorf("baseline replayed %d ops vs tree %d — prefix sharing saved nothing?",
			base.OpsExecuted, tree.OpsExecuted)
	}
	t.Logf("coverage %d schedules: tree %d ops, baseline %d ops (%.1fx)",
		tree.Schedules, tree.OpsExecuted, base.OpsExecuted,
		float64(base.OpsExecuted)/float64(tree.OpsExecuted))
}

// TestCorpusSeedsNextRun: a prefix banked by one run is replayed (and
// re-verdicted) by the next — a violating corpus line alone makes a
// one-node run report the violation.
func TestCorpusSeedsNextRun(t *testing.T) {
	t.Parallel()
	ccfg := ablatedConfig()
	var first *Result
	for seed := int64(1); seed <= 4 && (first == nil || first.Violations == 0); seed++ {
		first = Run(Config{Check: ccfg, Seed: seed, Budget: 3000})
	}
	if first.Violations == 0 || len(first.Corpus) == 0 {
		t.Fatalf("no violation banked to seed the corpus (violations=%d corpus=%d)",
			first.Violations, len(first.Corpus))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.txt")
	if err := SaveCorpus(path, "explore_test", first.Corpus); err != nil {
		t.Fatal(err)
	}
	// The corpus was banked for first's seed; reload for the same world.
	seed := mustSeedOf(t, first.Corpus[0])
	prefixes, err := LoadCorpus(path, ccfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixes) == 0 {
		t.Fatal("corpus round trip lost every entry")
	}
	second := Run(Config{Check: ccfg, Seed: seed, Budget: 1, Corpus: prefixes})
	if second.Violations == 0 {
		t.Error("corpus replay did not re-find the banked violation")
	}
	// A mismatched world filters the corpus out instead of replaying it.
	other := ccfg
	other.Defences = check.AllDefences()
	filtered, err := LoadCorpus(path, other, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 0 {
		t.Errorf("corpus for an ablated world leaked into a defended one: %d entries", len(filtered))
	}
	if missing, err := LoadCorpus(filepath.Join(dir, "absent.txt"), ccfg, seed); err != nil || missing != nil {
		t.Errorf("missing corpus file must read as empty, got %v entries, err %v", missing, err)
	}
}

func mustSeedOf(t *testing.T, line string) int64 {
	t.Helper()
	r, err := check.ParseRepro(line)
	if err != nil {
		t.Fatalf("banked corpus line does not parse: %v", err)
	}
	return r.Seed
}

// TestBudgetAndMetricsSanity pins the accounting: the run respects its
// node budget, every schedule is a node, and the perf counters add up.
func TestBudgetAndMetricsSanity(t *testing.T) {
	t.Parallel()
	cfg := Config{Check: defendedConfig(), Seed: 11, Budget: 500, Branch: 4, Workers: 4, SnapBudget: 32}
	r := Run(cfg)
	if r.Schedules == 0 || r.Schedules > uint64(cfg.Budget) {
		t.Errorf("schedules = %d, want in (0, %d]", r.Schedules, cfg.Budget)
	}
	if r.Leaves == 0 || r.Leaves > r.Schedules {
		t.Errorf("leaves = %d of %d schedules", r.Leaves, r.Schedules)
	}
	if r.MaxDepth <= 1 || r.MaxDepth > cfg.Check.Steps {
		t.Errorf("max depth = %d, want in (1, %d]", r.MaxDepth, cfg.Check.Steps)
	}
	if r.OpsExecuted < r.Schedules {
		t.Errorf("%d ops executed for %d schedules — nodes cannot outnumber ops", r.OpsExecuted, r.Schedules)
	}
	if r.HandOffs > r.SnapshotHits {
		t.Errorf("handoffs %d exceed snapshot hits %d", r.HandOffs, r.SnapshotHits)
	}
	if r.PeakResident > cfg.SnapBudget {
		t.Errorf("peak resident %d exceeds snapshot budget %d", r.PeakResident, cfg.SnapBudget)
	}
	if r.SnapshotHits == 0 {
		t.Error("a branchy 500-node tree forked no snapshots")
	}
}

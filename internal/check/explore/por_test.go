package explore

import (
	"testing"

	"sentry/internal/check"
	"sentry/internal/faults"
	"sentry/internal/sim"
)

// TestInertPairsCommute is the POR soundness harness: for every pair of
// op codes the commutation table can ever prune, sample reachable worlds
// by replaying generated schedule prefixes, and wherever both guards hold,
// fork the world twice, apply the two ops in both orders, and require the
// end states byte-identical under check.DiffWorlds — the same oracle the
// fork soundness property tests use, so "identical" means clock, energy,
// RNG position, cache state, and every memory page, not a summary.
//
// Pairs whose guards are mutually exclusive (suspend needs a suspended
// world, wake an awake one) can never co-occur — the prune rule cannot
// fire on them either, so they are exempt; the test instead requires that
// a healthy majority of the table was actually exercised.
func TestInertPairsCommute(t *testing.T) {
	t.Parallel()
	cfg := check.Config{
		Platform: "tegra3", Defences: check.AllDefences(),
		Faults: faults.None(), Steps: 60,
	}
	codes := InertCodes()
	type pair [2]check.OpCode
	exercised := map[pair]int{}
	const perPairBudget = 4

	for seed := int64(1); seed <= 30; seed++ {
		w := check.NewWorld(cfg, seed)
		sched := check.Generate(sim.NewRNG(seed), cfg.Steps, cfg.Faults)
		for _, step := range sched {
			if w.Dead() {
				break
			}
			for i, a := range codes {
				for _, b := range codes[i:] {
					p := pair{a, b}
					if exercised[p] >= perPairBudget {
						continue
					}
					oa := check.Op{Code: a, Arg: uint32(seed % 7)}
					ob := check.Op{Code: b, Arg: uint32(seed % 5)}
					if !Inert(w, oa) || !Inert(w, ob) {
						continue
					}
					ab, ba := w.Fork(), w.Fork()
					for _, apply := range []struct {
						w      *check.World
						o1, o2 check.Op
					}{{ab, oa, ob}, {ba, ob, oa}} {
						if v := apply.w.Apply(apply.o1); v != nil {
							t.Fatalf("inert op %v violated at seed %d: %v", apply.o1, seed, v)
						}
						if v := apply.w.Apply(apply.o2); v != nil {
							t.Fatalf("inert op %v violated at seed %d: %v", apply.o2, seed, v)
						}
					}
					if d := check.DiffWorlds(ab, ba); d != "" {
						t.Errorf("pair (%v, %v) does not commute at seed %d step %d:\n%s",
							oa, ob, seed, w.Step(), d)
					}
					exercised[p]++
				}
			}
			w.Apply(step)
		}
	}

	total := len(codes) * (len(codes) + 1) / 2
	if len(exercised) < total*2/3 {
		t.Fatalf("only %d of %d inert pairs were exercised — sampling too thin for soundness",
			len(exercised), total)
	}
	t.Logf("exercised %d of %d pairs", len(exercised), total)
}

// TestPruneRequiresCanonicalOrder pins the half of the prune rule the
// commutation test cannot see: of two commuting edges only the
// canonically earlier order is kept, and the rule never fires when either
// guard fails.
func TestPruneRequiresCanonicalOrder(t *testing.T) {
	t.Parallel()
	cfg := check.Config{
		Platform: "tegra3", Defences: check.AllDefences(),
		Faults: faults.None(), Steps: 10,
	}
	w := check.NewWorld(cfg, 1)
	if v := w.Apply(check.Op{Code: check.OpLock}); v != nil {
		t.Fatalf("lock violated: %v", v)
	}
	// Locked world: lock, fg-touch, free-page are all inert.
	lock := check.Op{Code: check.OpLock}
	touch := check.Op{Code: check.OpFgTouch, Arg: 1}
	if !Inert(w, lock) || !Inert(w, touch) {
		t.Fatal("expected lock and fg-touch inert on a locked world")
	}
	if !prune(w, touch, lock) {
		t.Error("canonically-later incoming edge must prune the earlier sibling")
	}
	if prune(w, lock, touch) {
		t.Error("canonically-ordered pair must be kept")
	}
	if prune(w, lock, lock) {
		t.Error("an edge must never prune itself")
	}
	// Unlock: the guards fail, nothing prunes.
	if v := w.Apply(check.Op{Code: check.OpUnlock}); v != nil {
		t.Fatalf("unlock violated: %v", v)
	}
	if Inert(w, lock) || Inert(w, touch) {
		t.Fatal("lock/fg-touch must not be inert on an unlocked world")
	}
	if prune(w, touch, lock) || prune(w, lock, touch) {
		t.Error("prune fired with a failed guard")
	}
}

package explore

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"sentry/internal/check"
)

// The corpus file is a plain text bank of interesting prefixes — one
// check.Repro line per entry, '#' comments and blank lines ignored — the
// same replayable format -replay consumes, so any corpus entry can be
// pasted straight into sentrybench. Runs bank violation and near-miss
// prefixes; CI seeds the next run's exploration with them, so schedules
// adjacent to a violation are re-checked on every change.

// LoadCorpus reads a corpus file and returns the prefixes whose
// configuration matches cfg (corpus files may mix platforms and fault
// profiles; entries for other worlds are skipped, not errors). A missing
// file is an empty corpus.
func LoadCorpus(path string, cfg check.Config, seed int64) ([]check.Schedule, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	want := (&check.Repro{Config: cfg, Seed: seed}).String()
	want = want[:strings.Index(want, " ops=")+len(" ops=")]
	var out []check.Schedule
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := check.ParseRepro(line)
		if err != nil {
			return nil, fmt.Errorf("corpus %s line %d: %v", path, ln+1, err)
		}
		if !strings.HasPrefix(r.String(), want) {
			continue // different platform/defences/faults/seed
		}
		out = append(out, r.Ops)
	}
	return out, nil
}

// ReadCorpusLines returns every repro line in a corpus file verbatim,
// regardless of configuration — the merge path reads the whole bank, folds
// in new lines, and rewrites it. A missing file is an empty corpus.
func ReadCorpusLines(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

// capFairly trims a sorted line set to MaxCorpus by round-robin across
// configurations (the repro prefix before " ops=") instead of a plain
// truncation, which would silently evict whole platforms: sorted repro
// lines cluster by platform name, so a naive cut keeps whichever sorts
// first and starves the rest.
func capFairly(sorted []string) []string {
	groups := map[string][]string{}
	var order []string
	for _, l := range sorted {
		key := l
		if i := strings.Index(l, " ops="); i >= 0 {
			key = l[:i]
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], l)
	}
	kept := make([]string, 0, MaxCorpus)
	for round := 0; len(kept) < MaxCorpus; round++ {
		took := false
		for _, key := range order {
			if round < len(groups[key]) && len(kept) < MaxCorpus {
				kept = append(kept, groups[key][round])
				took = true
			}
		}
		if !took {
			break
		}
	}
	sort.Strings(kept)
	return kept
}

// SaveCorpus writes repro lines to path, sorted and deduplicated, under a
// header naming the producer. Lines already in the canonical Repro format
// round-trip through LoadCorpus byte-identically (FuzzParseRepro pins the
// round trip).
func SaveCorpus(path, producer string, lines []string) error {
	seen := map[string]struct{}{}
	uniq := make([]string, 0, len(lines))
	for _, l := range lines {
		if _, dup := seen[l]; dup {
			continue
		}
		seen[l] = struct{}{}
		uniq = append(uniq, l)
	}
	sort.Strings(uniq)
	if len(uniq) > MaxCorpus {
		uniq = capFairly(uniq)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# sentry explorer corpus — violation and near-miss prefixes banked by %s\n", producer)
	b.WriteString("# one replayable repro line per entry; feed back via sentrybench -explore-corpus\n")
	for _, l := range uniq {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

package check

import (
	"fmt"
	"testing"

	"sentry/internal/faults"
	"sentry/internal/sim"
)

// TestDefendedCampaignsClean: the fully defended system must survive seeded
// campaigns on both platforms, with and without benign injected faults —
// zero violations, zero integrity failures.
func TestDefendedCampaignsClean(t *testing.T) {
	profiles := []faults.Profile{faults.None(), faults.Benign()}
	for _, platform := range []string{"tegra3", "nexus4"} {
		for _, prof := range profiles {
			platform, prof := platform, prof
			t.Run(fmt.Sprintf("%s-%s", platform, prof.Name), func(t *testing.T) {
				t.Parallel()
				cfg := Config{Platform: platform, Defences: AllDefences(), Faults: prof}
				res := Campaign(cfg, 1, 12)
				if res.Repro != nil {
					t.Fatalf("defended system violated the invariant: %s\n  %s",
						res.Repro, res.Repro.Violation)
				}
				for _, f := range res.IntegrityFailures {
					t.Errorf("integrity failure: %s", f)
				}
			})
		}
	}
}

// TestPositiveControls: with any single defence disabled the checker must
// find the secret, shrink the witness to at most 8 ops, and the printed
// repro must replay to the same violation from a fresh world.
func TestPositiveControls(t *testing.T) {
	for _, ctl := range Controls() {
		ctl := ctl
		t.Run(ctl.Name, func(t *testing.T) {
			t.Parallel()
			repro, err := RunControl("tegra3", ctl.Name, 32, 0)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("control %s: %s (%s; shrunk %d -> %d ops)",
				ctl.Name, repro, repro.Violation.Clause, repro.OriginalLen, len(repro.Ops))
			if len(repro.Ops) > 8 {
				t.Errorf("repro not minimal: %d ops (want <= 8): %s", len(repro.Ops), repro.Ops)
			}
			// Round-trip the printed line and replay it.
			parsed, err := ParseRepro(repro.String())
			if err != nil {
				t.Fatalf("printed repro does not parse: %v\n  %s", err, repro)
			}
			rr := Replay(parsed.Config, parsed.Seed, parsed.Ops)
			if rr.Violation == nil {
				t.Fatalf("printed repro does not reproduce: %s", repro)
			}
			if rr.Violation.Clause != repro.Violation.Clause {
				t.Errorf("replayed clause %q != shrunk clause %q",
					rr.Violation.Clause, repro.Violation.Clause)
			}
		})
	}
}

// TestGenerateDeterministic: a schedule is a pure function of (seed, steps,
// profile).
func TestGenerateDeterministic(t *testing.T) {
	for _, prof := range []faults.Profile{faults.None(), faults.Benign(), faults.Adversarial()} {
		a := Generate(sim.NewRNG(7), 60, prof)
		b := Generate(sim.NewRNG(7), 60, prof)
		if a.String() != b.String() {
			t.Fatalf("profile %s: same seed, different schedules:\n%s\n%s", prof.Name, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("profile %s: empty schedule", prof.Name)
		}
	}
}

// TestScheduleRoundTrip: String/ParseSchedule are inverses.
func TestScheduleRoundTrip(t *testing.T) {
	sched := Generate(sim.NewRNG(11), 40, faults.Adversarial())
	parsed, err := ParseSchedule(sched.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != sched.String() {
		t.Fatalf("round trip mismatch:\n%s\n%s", sched, parsed)
	}
	if _, err := ParseSchedule("lock,no-such-op"); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := ParseSchedule("lock:xyz"); err == nil {
		t.Error("bad arg accepted")
	}
}

// TestReproParseErrors: malformed repro lines are rejected.
func TestReproParseErrors(t *testing.T) {
	bad := []string{
		"platform=vax seed=1 ops=lock",
		"defences=no-such seed=1 ops=lock",
		"faults=bogus seed=1 ops=lock",
		"seed=zzz ops=lock",
		"seed=1",
		"garbage",
	}
	for _, line := range bad {
		if _, err := ParseRepro(line); err == nil {
			t.Errorf("accepted malformed repro %q", line)
		}
	}
	good := "platform=nexus4 defences=no-lock-flush faults=benign seed=9 ops=suspend,lock:3"
	r, err := ParseRepro(good)
	if err != nil {
		t.Fatalf("rejected well-formed repro: %v", err)
	}
	if r.String() != good {
		t.Errorf("round trip mismatch: %q -> %q", good, r.String())
	}
}

// TestGlitchedResetDefeatsROMDefences: the adversarial reset-glitch skips
// the ROM's iRAM zeroing, so even the fully defended device leaks its
// volatile key — deterministically, from a two-op schedule. This is the
// paper's argument for why the defence set assumes ROM integrity.
func TestGlitchedResetDefeatsROMDefences(t *testing.T) {
	cfg := Config{Platform: "tegra3", Defences: AllDefences(), Faults: faults.Adversarial()}
	rr := Replay(cfg, 5, Schedule{{Code: OpLock}, {Code: OpGlitchReset}})
	if rr.Violation == nil {
		t.Fatal("glitched reset against a locked device recovered nothing")
	}
	if rr.Violation.Clause != "key" {
		t.Fatalf("expected the volatile key to leak, got clause %q (%s)",
			rr.Violation.Clause, rr.Violation)
	}
}

// TestPowerCutMidSchedule: the checker's power-loss ops terminate the world
// and post-mortem it; a defended device must stay clean.
func TestPowerCutMidSchedule(t *testing.T) {
	cfg := Config{Platform: "tegra3", Defences: AllDefences(), Faults: faults.None()}
	for _, ops := range []Schedule{
		{{Code: OpLock}, {Code: OpPowerCut}},
		{{Code: OpLock}, {Code: OpHeldReset}},
		{{Code: OpSuspend}, {Code: OpLock}, {Code: OpPowerCut}},
	} {
		if rr := Replay(cfg, 3, ops); rr.Violation != nil {
			t.Errorf("defended device leaked under %s: %s", ops, rr.Violation)
		}
	}
}

// TestShrinkIsMinimal: shrinking an already-minimal schedule is a no-op,
// and shrinking a padded violating schedule strips the padding.
func TestShrinkIsMinimal(t *testing.T) {
	cfg := Config{
		Platform: "tegra3",
		Defences: Defences{IRAMZeroOnBoot: false, LockFlush: true, ZeroOnFree: true},
		Faults:   faults.None(),
	}
	padded := Schedule{
		{Code: OpFgTouch, Arg: 1}, {Code: OpPressure, Arg: 9}, {Code: OpLock},
		{Code: OpBadPIN}, {Code: OpDMAScrape}, {Code: OpPowerCut},
	}
	minimal, v := Shrink(cfg, 1, padded)
	if v == nil {
		t.Fatal("padded schedule does not violate")
	}
	if len(minimal) > 2 {
		t.Errorf("shrink left padding: %s", minimal)
	}
	rr := Replay(cfg, 1, minimal)
	if rr.Violation == nil {
		t.Errorf("shrunk schedule does not replay: %s", minimal)
	}
}

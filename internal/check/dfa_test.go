package check

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"sentry/internal/faults"
)

func dfaCfg(platform, placement, counter string) Config {
	return Config{
		Platform: platform,
		Defences: AllDefences(),
		Faults:   faults.None(),
		DFA:      placement,
		Counter:  counter,
	}
}

// dfaAcceptanceSchedule is the deterministic acceptance schedule: four
// dfa-fault ops covering all four round-9 state columns (byte 0 → column 0,
// byte 1 → column 3, byte 2 → column 2, byte 3 → column 1), three faulted
// ciphertexts each, then one collect.
func dfaAcceptanceSchedule() Schedule {
	return Schedule{
		{Code: OpDFAFault, Arg: 0},
		{Code: OpDFAFault, Arg: 1},
		{Code: OpDFAFault, Arg: 2},
		{Code: OpDFAFault, Arg: 3},
		{Code: OpDFACollect},
	}
}

// TestDFAMatrixDeterministic pins the paper's verdict matrix with a single
// handcrafted schedule — no seed hunting: the undefended DRAM-placed victim
// loses its full key to twelve glitches, while the iRAM placement (arena out
// of the rig's reach) and both fault-detecting countermeasures win on the
// exact same schedule and seeds.
func TestDFAMatrixDeterministic(t *testing.T) {
	t.Parallel()
	rows := []struct {
		platform, dfa, counter string
		wantClause             string // "" = must stay clean
		wantDetected           bool   // countermeasure must log a fail-safe abort
	}{
		{"tegra3", DFAInDRAM, "none", "dfa-key-recovery", false},
		{"nexus4", DFAInDRAM, "none", "dfa-key-recovery", false},
		{"tegra3", DFAInIRAM, "none", "", false},
		{"nexus4", DFAInIRAM, "none", "", false},
		{"tegra3", DFAInDRAM, "redundant", "", true},
		{"tegra3", DFAInDRAM, "tag", "", true},
		{"nexus4", DFAInDRAM, "redundant", "", true},
		{"nexus4", DFAInDRAM, "tag", "", true},
	}
	for _, row := range rows {
		row := row
		t.Run(fmt.Sprintf("%s-%s-%s", row.platform, row.dfa, row.counter), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				rr := Replay(dfaCfg(row.platform, row.dfa, row.counter), seed, dfaAcceptanceSchedule())
				if row.wantClause == "" {
					if rr.Violation != nil {
						t.Fatalf("seed %d: defended victim lost: %s", seed, rr.Violation)
					}
				} else if rr.Violation == nil || rr.Violation.Clause != row.wantClause {
					t.Fatalf("seed %d: want clause %q, got %+v", seed, row.wantClause, rr.Violation)
				}
				detected := false
				for _, line := range rr.AttackLog {
					if strings.Contains(line, "fail-safe abort") {
						detected = true
					}
				}
				if detected != row.wantDetected {
					t.Fatalf("seed %d: detected-fault log presence = %v, want %v\n  log: %q",
						seed, detected, row.wantDetected, rr.AttackLog)
				}
			}
		})
	}
}

// TestDFACountermeasureRekeysVictim: each detected glitch rolls the victim's
// key epoch and drops the attacker's banked ciphertexts, so even an attacker
// who keeps glitching a defended engine never accumulates a convergent pair
// set. Counters are read off the world directly.
func TestDFACountermeasureRekeysVictim(t *testing.T) {
	t.Parallel()
	w := NewWorld(dfaCfg("tegra3", DFAInDRAM, "redundant"), 5)
	sched := dfaAcceptanceSchedule()
	for _, op := range sched {
		if v := w.Apply(op); v != nil {
			t.Fatalf("redundant countermeasure lost: %s", v)
		}
	}
	// Every dfa-fault op's first glitch is detected: 4 aborts, 4 rekeys.
	if w.DFADetected() != 4 || w.DFARekeys() != 4 {
		t.Fatalf("detected=%d rekeys=%d, want 4 and 4", w.DFADetected(), w.DFARekeys())
	}
	if len(w.dfa.faulty) != 0 {
		t.Fatalf("banked ciphertexts survived rekey: %d", len(w.dfa.faulty))
	}

	// An undefended victim on the same schedule detects nothing.
	w2 := NewWorld(dfaCfg("tegra3", DFAInDRAM, "none"), 5)
	for _, op := range sched[:4] {
		if v := w2.Apply(op); v != nil {
			t.Fatalf("fault op itself violated: %s", v)
		}
	}
	if w2.DFADetected() != 0 || w2.DFARekeys() != 0 {
		t.Fatalf("undefended victim detected %d faults", w2.DFADetected())
	}
	if len(w2.dfa.faulty) != 12 {
		t.Fatalf("banked %d faulty ciphertexts, want 12", len(w2.dfa.faulty))
	}
}

// TestDFACampaignFindsKeyRecovery: generated campaigns (dfa ops drawn from
// the weighted alphabet) against the undefended DRAM placement find the
// dfa-key-recovery violation within the standard 24-seed window (the same
// window `make dfa` sweeps), the shrunk repro line parses back, and the
// replay reproduces the same clause. The same seeds stay clean when the
// victim is defended.
func TestDFACampaignFindsKeyRecovery(t *testing.T) {
	t.Parallel()
	cfg := dfaCfg("tegra3", DFAInDRAM, "none")
	res := Campaign(cfg, 1, 24)
	if res.Repro == nil {
		t.Fatal("no key recovery in 24 seeds: checker is blind to clause dfa-key-recovery")
	}
	repro := res.Repro
	if repro.Violation.Clause != "dfa-key-recovery" {
		t.Fatalf("clause %q, want dfa-key-recovery (%s)", repro.Violation.Clause, repro.Violation)
	}
	line := repro.String()
	if !strings.Contains(line, " dfa=dram ") {
		t.Fatalf("repro line missing dfa token: %s", line)
	}
	parsed, err := ParseRepro(line)
	if err != nil {
		t.Fatalf("printed repro does not parse: %v\n  %s", err, line)
	}
	rr := Replay(parsed.Config, parsed.Seed, parsed.Ops)
	if rr.Violation == nil || rr.Violation.Clause != "dfa-key-recovery" {
		t.Fatalf("printed repro does not reproduce: %s -> %+v", line, rr.Violation)
	}

	for _, counter := range []string{"redundant", "tag"} {
		res := Campaign(dfaCfg("tegra3", DFAInDRAM, counter), 1, 24)
		if res.Repro != nil {
			t.Errorf("%s countermeasure lost a generated campaign: %s", counter, res.Repro)
		}
		for _, f := range res.IntegrityFailures {
			t.Errorf("%s: integrity failure: %s", counter, f)
		}
	}
}

// TestDFACampaignParallelDeterministic: DFA campaigns keep the checker's
// determinism contract — byte-identical campaign results at any worker
// width, and byte-identical attack logs (including detected-fault rekey
// lines) across replays of one (config, seed, schedule).
func TestDFACampaignParallelDeterministic(t *testing.T) {
	t.Parallel()
	cfgs := []Config{
		dfaCfg("tegra3", DFAInDRAM, "none"),
		dfaCfg("tegra3", DFAInDRAM, "redundant"),
		dfaCfg("nexus4", DFAInIRAM, "none"),
	}
	for _, cfg := range cfgs {
		serial := CampaignParallel(cfg, 1, 5, 1)
		parallel := CampaignParallel(cfg, 1, 5, 4)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("dfa=%s counter=%s: serial and parallel campaigns diverge:\n  serial:   %+v\n  parallel: %+v",
				cfg.DFA, cfg.Counter, serial, parallel)
		}
	}

	cfg := dfaCfg("tegra3", DFAInDRAM, "tag")
	sched := dfaAcceptanceSchedule()
	a := Replay(cfg, 7, sched)
	b := Replay(cfg, 7, sched)
	if len(a.AttackLog) == 0 {
		t.Fatal("dfa schedule left no attack log")
	}
	if !reflect.DeepEqual(a.AttackLog, b.AttackLog) {
		t.Fatalf("attack logs diverge across replays:\n  %q\n  %q", a.AttackLog, b.AttackLog)
	}
}

// TestForkCarriesDFAState: a world forked mid-collection replays the rest of
// the schedule identically to the original — same verdict, same attack log —
// so the shrinker's checkpoint/fork fast path is sound for DFA schedules.
func TestForkCarriesDFAState(t *testing.T) {
	t.Parallel()
	for _, counter := range []string{"none", "redundant"} {
		cfg := dfaCfg("tegra3", DFAInDRAM, counter)
		sched := dfaAcceptanceSchedule()

		w := NewWorld(cfg, 9)
		for _, op := range sched[:2] {
			if v := w.Apply(op); v != nil {
				t.Fatalf("prefix violated: %s", v)
			}
		}
		f := w.Fork()

		finish := func(w *World) (*Violation, []string) {
			for _, op := range sched[2:] {
				if v := w.Apply(op); v != nil {
					return v, w.AttackLog()
				}
			}
			return nil, w.AttackLog()
		}
		v1, log1 := finish(w)
		v2, log2 := finish(f)
		if (v1 == nil) != (v2 == nil) || (v1 != nil && v1.Clause != v2.Clause) {
			t.Fatalf("counter=%s: fork diverged: %+v vs %+v", counter, v1, v2)
		}
		if !reflect.DeepEqual(log1, log2) {
			t.Fatalf("counter=%s: fork attack logs diverge:\n  %q\n  %q", counter, log1, log2)
		}
		if counter == "none" && v1 == nil {
			t.Fatalf("undefended fork pair found no key recovery")
		}
	}
}

package check

import (
	"sync"
	"testing"
	"testing/quick"

	"sentry/internal/sim"
	"sentry/internal/snapshot"
)

// Delta-snapshot soundness: a device parked as a delta against the shared
// base (snapshot.CaptureDelta) and re-hydrated must be full-state-diff
// identical — and behave identically forever after — to one parked as a
// full snapshot. These are the property tests behind the fleet's
// delta-encoded parking; they reuse the PR 5 fork-soundness harness
// (Generate schedules over the whole op alphabet, DiffWorlds as the
// byte-level oracle).

// TestDeltaParkMatchesFullPark drives identical random prefixes into two
// forks of a frozen base, parks one full and one as a delta, then compares
// the hydrations at every step of a continuation schedule and in full state.
func TestDeltaParkMatchesFullPark(t *testing.T) {
	for ci, cfg := range forkTestConfigs() {
		base := NewWorld(cfg, 1)
		base.FreezeBase()
		snapBase := snapshot.Adopt(base)
		for seed := int64(1); seed <= 4; seed++ {
			prefix := Generate(sim.NewRNG(seed), cfg.Steps/2, cfg.Faults)
			suffix := Generate(sim.NewRNG(seed+1000), cfg.Steps/2, cfg.Faults)

			full := snapBase.Fork()
			delta := snapBase.Fork()
			for i, op := range prefix {
				vf, vd := full.Apply(op), delta.Apply(op)
				if violationString(vf) != violationString(vd) {
					t.Fatalf("cfg %d seed %d prefix step %d: %q vs %q",
						ci, seed, i, violationString(vf), violationString(vd))
				}
				if vf != nil {
					break
				}
			}

			fullSnap := snapshot.Adopt(full)
			deltaSnap, bytes := snapshot.CaptureDelta[*World, *World](delta, base)
			if bytes <= 0 {
				t.Fatalf("cfg %d seed %d: delta retained %d bytes", ci, seed, bytes)
			}

			hf := fullSnap.Fork()
			hd := deltaSnap.ForkFromDelta()
			if d := DiffWorlds(hf, hd); d != "" {
				t.Fatalf("cfg %d seed %d: delta hydration diverged from full: %s", ci, seed, d)
			}
			for i, op := range suffix {
				vf, vd := hf.Apply(op), hd.Apply(op)
				if violationString(vf) != violationString(vd) {
					t.Fatalf("cfg %d seed %d suffix step %d (%s): full %q, delta %q",
						ci, seed, i, op, violationString(vf), violationString(vd))
				}
				if vf != nil {
					break
				}
			}
			if d := DiffWorlds(hf, hd); d != "" {
				t.Fatalf("cfg %d seed %d: post-suffix state diverged: %s", ci, seed, d)
			}

			// A delta snapshot must stay hydratable: a second fork replays the
			// same suffix to the same end state.
			hd2 := deltaSnap.ForkFromDelta()
			replayFrom(hd2, suffix)
			if d := DiffWorlds(hd, hd2); d != "" {
				t.Fatalf("cfg %d seed %d: repeated delta hydration diverged: %s", ci, seed, d)
			}
		}
	}
}

// TestDeltaParkQuick is the quick.Check form over random (seed, split)
// pairs on the default platform: park-as-delta ≡ park-as-full for random op
// prefixes, judged by the full-state diff.
func TestDeltaParkQuick(t *testing.T) {
	cfg := Config{Platform: "tegra3", Defences: AllDefences(), Steps: 40}
	base := NewWorld(cfg, 1)
	base.FreezeBase()
	snapBase := snapshot.Adopt(base)

	f := func(seed int64, split uint8) bool {
		n := 1 + int(split)%cfg.Steps
		sched := Generate(sim.NewRNG(seed), n, cfg.Faults)
		full := snapBase.Fork()
		delta := snapBase.Fork()
		replayFrom(full, sched)
		replayFrom(delta, sched)

		fullSnap := snapshot.Adopt(full)
		deltaSnap, _ := snapshot.CaptureDelta[*World, *World](delta, base)
		hf, hd := fullSnap.Fork(), deltaSnap.ForkFromDelta()
		if d := DiffWorlds(hf, hd); d != "" {
			t.Logf("seed %d steps %d: %s", seed, n, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDeltaParks deflates many forks of one frozen base from
// concurrent goroutines — the fleet's park path under load. Under -race this
// proves Deflate never writes to the shared base; every hydration must agree.
func TestConcurrentDeltaParks(t *testing.T) {
	cfg := Config{Platform: "tegra3", Defences: AllDefences(), Steps: 40}
	sched := Generate(sim.NewRNG(7), 40, cfg.Faults)
	base := NewWorld(cfg, 1)
	base.FreezeBase()
	snapBase := snapshot.Adopt(base)

	const n = 8
	worlds := make([]*World, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := snapBase.Fork()
			replayFrom(w, sched)
			snap, _ := snapshot.CaptureDelta[*World, *World](w, base)
			worlds[i] = snap.ForkFromDelta()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if d := DiffWorlds(worlds[0], worlds[i]); d != "" {
			t.Fatalf("concurrent delta park %d diverged: %s", i, d)
		}
	}
}

package check

import (
	"fmt"

	"sentry/internal/mem"
)

// diffStores reports the first content difference between two stores, or "".
// TouchedPages returns page base offsets in bytes.
func diffStores(name string, a, b *mem.Store) string {
	bases := map[uint64]bool{}
	for _, base := range a.TouchedPages() {
		bases[base] = true
	}
	for _, base := range b.TouchedPages() {
		bases[base] = true
	}
	var pa, pb [mem.PageSize]byte
	for base := range bases {
		a.Read(base, pa[:])
		b.Read(base, pb[:])
		if pa != pb {
			return fmt.Sprintf("%s page at %#x content differs", name, base)
		}
	}
	return ""
}

// DiffWorlds reports the first observable divergence between two worlds, or
// "". It covers every deterministic stream the simulation promises to keep
// bit-reproducible: time, energy, RNG position, register file, bus traffic,
// cache geometry state, lock state, Sentry activity, and full memory images.
// It is the soundness oracle shared by the fork property tests and the
// partial-order-reduction commutation tests in check/explore.
func DiffWorlds(a, b *World) string {
	switch {
	case a.S.Clock.Cycles() != b.S.Clock.Cycles():
		return fmt.Sprintf("clock: %d vs %d", a.S.Clock.Cycles(), b.S.Clock.Cycles())
	case a.S.Meter.PJ() != b.S.Meter.PJ():
		return fmt.Sprintf("energy: %v vs %v", a.S.Meter.PJ(), b.S.Meter.PJ())
	case a.S.RNG.State() != b.S.RNG.State():
		return fmt.Sprintf("rng: %+v vs %+v", a.S.RNG.State(), b.S.RNG.State())
	case a.S.CPU.Regs != b.S.CPU.Regs:
		return "cpu registers differ"
	case a.S.Bus.Stats() != b.S.Bus.Stats():
		return fmt.Sprintf("bus stats: %+v vs %+v", a.S.Bus.Stats(), b.S.Bus.Stats())
	case a.S.L2.Stats() != b.S.L2.Stats():
		return fmt.Sprintf("l2 stats: %+v vs %+v", a.S.L2.Stats(), b.S.L2.Stats())
	case a.S.L2.AllocMask() != b.S.L2.AllocMask():
		return "l2 lockdown register differs"
	case a.K.State() != b.K.State():
		return fmt.Sprintf("lock state: %v vs %v", a.K.State(), b.K.State())
	case a.Sn.Stats() != b.Sn.Stats():
		return fmt.Sprintf("sentry stats: %+v vs %+v", a.Sn.Stats(), b.Sn.Stats())
	case a.step != b.step || a.dead != b.dead || a.bgOn != b.bgOn:
		return "world step/dead/bg state differs"
	}
	for w := 0; w < a.S.Prof.Cache.Ways; w++ {
		if a.S.L2.ValidLines(w) != b.S.L2.ValidLines(w) {
			return fmt.Sprintf("l2 way %d valid-line count differs", w)
		}
	}
	if d := diffStores("iram", a.S.IRAM.Store(), b.S.IRAM.Store()); d != "" {
		return d
	}
	return diffStores("dram", a.S.DRAM.Store(), b.S.DRAM.Store())
}

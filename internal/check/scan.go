package check

import (
	"bytes"

	"sentry/internal/attack"
	"sentry/internal/kernel"
	"sentry/internal/mem"
	"sentry/internal/soc"
)

// Scanner is the reusable core of the confidentiality invariant: the scan
// clauses of World.scan and World.postMortem, factored out so other
// harnesses (the fleet chaos soak, future campaign drivers) can enforce the
// same clauses over platforms they own without building a check.World.
//
// The Scanner borrows the platform; it never mutates simulated memory
// except through the legal masked clean the writeback clause requires.
// Violations it returns carry Clause and Detail only — schedule context
// (Step, Op) is the caller's to fill in.
type Scanner struct {
	S *soc.SoC
	K *kernel.Kernel
	// Marker is the plaintext the protected workload planted; finding it
	// where an attacker could read it is a violation.
	Marker []byte
	// VolKey0 is the volatile root key as generated at boot. Ciphertext
	// sealed under it must stay safe even after deep-lock zeroizes the
	// live copy, so the post-mortem keyfinder compares against this.
	VolKey0 []byte
	// FuzzBudget is how many decayed bytes a remanence-image marker match
	// may tolerate and still count as recoverable plaintext.
	FuzzBudget int
}

// ScanLive enforces the live locked-state clauses — (dram) and (writeback).
// Call it only while the device is locked; the unlocked plaintext window is
// the exposure the paper's threat model accepts.
func (sc *Scanner) ScanLive() *Violation {
	// (dram) the raw DRAM chips, exactly as a physical attacker would read
	// them this instant.
	if attack.Contains(sc.S.DRAM.Store(), sc.Marker) {
		return &Violation{Clause: "dram", Detail: "plaintext marker resident in DRAM chips"}
	}
	// (writeback) the projection one legal masked clean away: the hardware
	// may write back any dirty unlocked-way line at any moment, so clean
	// them (locked ways stay masked out) and rescan.
	sc.S.L2.CleanWays(sc.K.FlushMask())
	if attack.Contains(sc.S.DRAM.Store(), sc.Marker) {
		return &Violation{Clause: "writeback", Detail: "plaintext reaches DRAM on a legal masked write-back"}
	}
	return nil
}

// nearMissSlack relaxes the remanence decay budget for near-miss detection:
// an image that fails the marker match only because decay chewed a few more
// bytes than FuzzBudget tolerates was one colder boot away from a violation.
const nearMissSlack = 8

// NearMiss scans the decayed image with the remanence clause's decay budget
// relaxed. It reports true when the marker is recoverable within the relaxed
// budget but (by construction of the caller) was not within the strict one —
// a schedule that ended adjacent to a violation. The explorer banks such
// prefixes into its corpus for future campaigns.
func (sc *Scanner) NearMiss() bool {
	relaxed := sc.FuzzBudget*4 + nearMissSlack
	return attack.FuzzyContains(sc.S.DRAM.Store(), sc.Marker, relaxed) ||
		attack.FuzzyContains(sc.S.IRAM.Store(), sc.Marker, relaxed)
}

// PostMortem enforces the after-power-loss clauses — (remanence) and (key) —
// over the decayed memory image. Call it after a power cut that happened
// while the device was locked.
func (sc *Scanner) PostMortem(why string) *Violation {
	// (remanence) recoverable plaintext, tolerant of per-byte decay.
	if attack.FuzzyContains(sc.S.DRAM.Store(), sc.Marker, sc.FuzzBudget) {
		return &Violation{Clause: "remanence", Detail: "plaintext marker recoverable from DRAM image after " + why}
	}
	if attack.FuzzyContains(sc.S.IRAM.Store(), sc.Marker, sc.FuzzBudget) {
		return &Violation{Clause: "remanence", Detail: "plaintext marker recoverable from iRAM image after " + why}
	}
	// (key) the volatile root key, via the Halderman-style keyfinder.
	for _, st := range []*mem.Store{sc.S.IRAM.Store(), sc.S.DRAM.Store()} {
		for _, key := range attack.FindAESKeys(st) {
			if bytes.Equal(key, sc.VolKey0) {
				return &Violation{Clause: "key", Detail: "volatile root key recoverable from memory image after " + why}
			}
		}
	}
	return nil
}

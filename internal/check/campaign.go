package check

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sentry/internal/aes"
	"sentry/internal/faults"
	"sentry/internal/sim"
)

// RunResult is the outcome of executing one schedule against one world.
type RunResult struct {
	Violation    *Violation
	IntegrityErr error
	Perturbed    bool
	// AttackLog is the deterministic probe-timing trace of the cache-attack
	// ops (nil without a cache-attack config); see World.AttackLog.
	AttackLog []string
}

// Run generates the schedule for (cfg, seed) and executes it. The schedule
// is a pure function of the inputs, so the same (cfg, seed) pair always
// explores the same trajectory.
func Run(cfg Config, seed int64) (Schedule, RunResult) {
	sched := GenerateFor(cfg, sim.NewRNG(seed), cfg.steps())
	return sched, Replay(cfg, seed, sched)
}

// Replay executes an explicit schedule against a fresh world built from
// (cfg, seed). Replaying the schedule printed by a Repro reproduces its
// violation exactly; shrinking uses the same path to validate candidates.
func Replay(cfg Config, seed int64, sched Schedule) RunResult {
	return finishRun(NewWorld(cfg, seed), sched)
}

// finishRun executes a schedule against an already-built world (cold-booted
// or forked from a snapshot) and runs the end-of-schedule integrity check.
func finishRun(w *World, sched Schedule) RunResult {
	if v := replayFrom(w, sched); v != nil {
		return RunResult{Violation: v, Perturbed: w.Perturbed(), AttackLog: w.AttackLog()}
	}
	return RunResult{IntegrityErr: w.IntegrityCheck(), Perturbed: w.Perturbed(), AttackLog: w.AttackLog()}
}


// Repro is a minimal reproducer for a violation: replay Ops against a world
// built from (Config, Seed) and the same violation fires.
type Repro struct {
	Config      Config
	Seed        int64
	Ops         Schedule
	Violation   *Violation
	OriginalLen int
}

// String renders the repro as a single replayable line, e.g.
//
//	platform=tegra3 defences=no-lock-flush faults=none seed=3 ops=suspend,lock
//
// Configs with a cache-attack profile add cache= and attacks= tokens, DFA
// configs add dfa= and counter= tokens; plain configs print exactly the
// historical five-field form.
func (r *Repro) String() string {
	s := fmt.Sprintf("platform=%s defences=%s faults=%s",
		platformName(r.Config.Platform), defencesString(r.Config.Defences),
		faultsName(r.Config.Faults))
	if r.Config.Cache != "" {
		s += " cache=" + r.Config.Cache
	}
	if r.Config.Attacks != "" {
		s += " attacks=" + r.Config.Attacks
	}
	if r.Config.DFA != "" {
		s += " dfa=" + r.Config.DFA
	}
	if r.Config.Counter != "" {
		s += " counter=" + r.Config.Counter
	}
	return fmt.Sprintf("%s seed=%d ops=%s", s, r.Seed, r.Ops)
}

func platformName(p string) string {
	if p == "" {
		return "tegra3"
	}
	return p
}

func faultsName(p faults.Profile) string {
	if p.Name == "" {
		return "none"
	}
	return p.Name
}

func defencesString(d Defences) string {
	var off []string
	if !d.IRAMZeroOnBoot {
		off = append(off, "no-iram-zero")
	}
	if !d.LockFlush {
		off = append(off, "no-lock-flush")
	}
	if !d.ZeroOnFree {
		off = append(off, "no-zero-on-free")
	}
	if len(off) == 0 {
		return "all"
	}
	return strings.Join(off, ",")
}

func parseDefences(s string) (Defences, error) {
	d := AllDefences()
	if s == "all" || s == "" {
		return d, nil
	}
	for _, tok := range strings.Split(s, ",") {
		switch tok {
		case "no-iram-zero":
			d.IRAMZeroOnBoot = false
		case "no-lock-flush":
			d.LockFlush = false
		case "no-zero-on-free":
			d.ZeroOnFree = false
		default:
			return d, fmt.Errorf("check: unknown defence token %q", tok)
		}
	}
	return d, nil
}

// ParseRepro parses the String form back into a replayable Repro.
func ParseRepro(line string) (*Repro, error) {
	r := &Repro{Config: Config{Platform: "tegra3", Defences: AllDefences()}}
	for _, field := range strings.Fields(strings.TrimSpace(line)) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("check: bad repro field %q", field)
		}
		switch key {
		case "platform":
			if val != "tegra3" && val != "nexus4" {
				return nil, fmt.Errorf("check: unknown platform %q", val)
			}
			r.Config.Platform = val
		case "defences":
			d, err := parseDefences(val)
			if err != nil {
				return nil, err
			}
			r.Config.Defences = d
		case "faults":
			prof, ok := faults.ByName(val)
			if !ok {
				return nil, fmt.Errorf("check: unknown fault profile %q", val)
			}
			r.Config.Faults = prof
		case "cache":
			if !validCacheProfile(val) || val == "" {
				return nil, fmt.Errorf("check: unknown cache profile %q", val)
			}
			r.Config.Cache = val
		case "attacks":
			for _, a := range strings.Split(val, ",") {
				if !validAttack(a) {
					return nil, fmt.Errorf("check: unknown attack %q", a)
				}
			}
			r.Config.Attacks = val
		case "dfa":
			if !validDFAProfile(val) || val == "" {
				return nil, fmt.Errorf("check: unknown dfa profile %q", val)
			}
			r.Config.DFA = val
		case "counter":
			if _, ok := aes.CountermeasureByName(val); !ok || val == "" {
				return nil, fmt.Errorf("check: unknown countermeasure %q", val)
			}
			r.Config.Counter = val
		case "seed":
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("check: bad seed %q: %v", val, err)
			}
			r.Seed = seed
		case "ops":
			ops, err := ParseSchedule(val)
			if err != nil {
				return nil, err
			}
			r.Ops = ops
		default:
			return nil, fmt.Errorf("check: unknown repro field %q", key)
		}
	}
	if len(r.Ops) == 0 {
		return nil, fmt.Errorf("check: repro has no ops")
	}
	return r, nil
}

// CampaignResult summarises a seeded campaign.
type CampaignResult struct {
	Config    Config
	StartSeed int64
	Seeds     int
	// ViolationSeeds counts seeds whose schedule violated the invariant.
	ViolationSeeds int
	// Repro is the first violation, shrunk to a minimal reproducer.
	Repro *Repro
	// IntegrityFailures lists seeds whose end-of-run data check failed.
	IntegrityFailures []string
}

// Campaign runs seeds consecutive seeded schedules starting at startSeed.
// The first violation is shrunk into a minimal Repro; later seeds still run
// (and are counted) so a campaign reports how widespread a break is.
func Campaign(cfg Config, startSeed int64, seeds int) CampaignResult {
	return CampaignParallel(cfg, startSeed, seeds, 1)
}

// CampaignParallel is Campaign on a worker pool of the given width (0 means
// GOMAXPROCS). Seeds are independent worlds, so workers never share state;
// outcomes land in a per-seed slot and are aggregated in seed order, and the
// one shrink runs after the pool drains on the lowest violating seed — so
// the result (verdict, counts, repro line, integrity list) is byte-identical
// to a serial run at any width. TestCampaignParallelMatchesSerial holds that
// property under -race.
func CampaignParallel(cfg Config, startSeed int64, seeds, workers int) CampaignResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > seeds {
		workers = seeds
	}
	res := CampaignResult{Config: cfg, StartSeed: startSeed, Seeds: seeds}

	type outcome struct {
		sched Schedule
		rr    RunResult
	}
	outs := make([]outcome, seeds)
	if workers <= 1 {
		for i := 0; i < seeds; i++ {
			outs[i].sched, outs[i].rr = Run(cfg, startSeed+int64(i))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= seeds {
						return
					}
					outs[i].sched, outs[i].rr = Run(cfg, startSeed+int64(i))
				}
			}()
		}
		wg.Wait()
	}

	for i := 0; i < seeds; i++ {
		seed := startSeed + int64(i)
		rr := outs[i].rr
		if rr.Violation != nil {
			res.ViolationSeeds++
			if res.Repro == nil {
				res.Repro = shrinkToRepro(cfg, seed, outs[i].sched, rr.Violation)
			}
			continue
		}
		if rr.IntegrityErr != nil {
			res.IntegrityFailures = append(res.IntegrityFailures,
				fmt.Sprintf("seed %d: %v", seed, rr.IntegrityErr))
		}
	}
	return res
}

// shrinkToRepro truncates the schedule at the violating step and delta-
// debugs it down to a minimal reproducer. Shrink captures the seed's
// post-boot world once and forks it per candidate (the checkpoint/fork fast
// path); capturing is deliberately lazy — only violating seeds reach here,
// so the campaign's clean seeds never pay for a snapshot they would not use.
func shrinkToRepro(cfg Config, seed int64, sched Schedule, v *Violation) *Repro {
	orig := sched
	if v.Step > 0 && v.Step <= len(sched) {
		orig = sched[:v.Step]
	}
	minimal, mv := Shrink(cfg, seed, orig)
	if mv == nil { // should not happen: the truncated schedule violated
		minimal, mv = orig, v
	}
	return &Repro{Config: cfg, Seed: seed, Ops: minimal, Violation: mv, OriginalLen: len(orig)}
}

// Control is a deliberately weakened configuration the checker must defeat:
// the positive controls proving the checker is not vacuous.
type Control struct {
	Name        string
	Defences    Defences
	Description string
}

// Controls returns the three single-defence ablations.
func Controls() []Control {
	return []Control{
		{
			Name:        "iram-zero-off",
			Defences:    Defences{IRAMZeroOnBoot: false, LockFlush: true, ZeroOnFree: true},
			Description: "firmware does not zero iRAM on boot; the volatile key survives a reset",
		},
		{
			Name:        "lock-flush-off",
			Defences:    Defences{IRAMZeroOnBoot: true, LockFlush: false, ZeroOnFree: true},
			Description: "encrypt-on-lock skips the masked cache flush; stale DRAM plaintext survives lock",
		},
		{
			Name:        "zero-on-free-off",
			Defences:    Defences{IRAMZeroOnBoot: true, LockFlush: true, ZeroOnFree: false},
			Description: "lock does not drain the zero queue; freed plaintext frames ride into the locked state",
		},
	}
}

// RunControl runs seeded schedules against the named ablation until the
// checker finds the planted weakness, then shrinks it. Controls run without
// injected faults so the shrink is fully deterministic. An error means the
// checker failed its positive control.
func RunControl(platform, name string, maxSeeds, steps int) (*Repro, error) {
	var ctl *Control
	for _, c := range Controls() {
		if c.Name == name {
			ctl = &c
			break
		}
	}
	if ctl == nil {
		return nil, fmt.Errorf("check: unknown control %q", name)
	}
	cfg := Config{Platform: platform, Defences: ctl.Defences, Faults: faults.None(), Steps: steps}
	for seed := int64(1); seed <= int64(maxSeeds); seed++ {
		sched, rr := Run(cfg, seed)
		if rr.Violation != nil {
			return shrinkToRepro(cfg, seed, sched, rr.Violation), nil
		}
	}
	return nil, fmt.Errorf("check: control %s found no violation in %d seeds (checker is blind to: %s)",
		name, maxSeeds, ctl.Description)
}

package check

import (
	"fmt"
	"reflect"
	"testing"

	"sentry/internal/faults"
)

// attackSeeds is the shared seed window for the cache-attack controls: the
// insecure profile must lose on these seeds and every defended profile must
// win on exactly the same ones, so a pass can never be explained by the
// profiles having seen different schedules.
const (
	attackStartSeed = int64(1)
	attackSeedCount = 8
)

func attackCfg(platform, cacheProf, attacks string) Config {
	return Config{
		Platform: platform,
		Defences: AllDefences(),
		Faults:   faults.None(),
		Cache:    cacheProf,
		Attacks:  attacks,
	}
}

// TestCacheAttackControls is the negative/positive control matrix for the
// cache-timing adversary suite. The insecure placement (victim table in
// plain cacheable DRAM) must lose to Prime+Probe and to Evict+Reload on
// both platforms; the paper's baseline placement (locked way on tegra3,
// iRAM on nexus4), the AutoLock cache, and the randomized-index cache must
// all win on the same seeds. The occupancy clause is the deliberate
// exception: way-locking itself is the signal, so on the way-locking
// platform even the baseline profile loses to an occupancy probe (a
// background session locks one more way than the boot baseline), while
// nexus4 — whose sessions live in iRAM, not locked ways — stays clean.
func TestCacheAttackControls(t *testing.T) {
	rows := []struct {
		platform, cache, attacks string
		wantClause               string // "" = campaign must stay clean
	}{
		// Negative controls: no placement defence, attacker must win.
		{"tegra3", CacheInsecure, AttackPrimeProbe, "cache-timing"},
		{"tegra3", CacheInsecure, AttackEvictReload, "cache-timing"},
		{"nexus4", CacheInsecure, AttackPrimeProbe, "cache-timing"},
		{"nexus4", CacheInsecure, AttackEvictReload, "cache-timing"},

		// Positive controls: each defence defeats both timing attacks on
		// the same seeds the insecure profile just lost.
		{"tegra3", CacheBaseline, "prime-probe,evict-reload", ""},
		{"tegra3", CacheAutoLock, "prime-probe,evict-reload", ""},
		{"tegra3", CacheRandomized, "prime-probe,evict-reload", ""},
		{"nexus4", CacheBaseline, "prime-probe,evict-reload", ""},
		{"nexus4", CacheAutoLock, "prime-probe,evict-reload", ""},
		{"nexus4", CacheRandomized, "prime-probe,evict-reload", ""},

		// The occupancy side channel of way-locking itself — and its
		// mitigation: a constant way budget reserved at boot serves session
		// locks without moving the externally observable lock state.
		{"tegra3", CacheBaseline, AttackOccupancy, "occupancy"},
		{"nexus4", CacheBaseline, AttackOccupancy, ""},
		{"tegra3", CacheReserved, AttackOccupancy, ""},
		{"nexus4", CacheReserved, AttackOccupancy, ""},
		{"tegra3", CacheReserved, "prime-probe,evict-reload,occupancy", ""},
	}
	for _, row := range rows {
		row := row
		t.Run(fmt.Sprintf("%s-%s-%s", row.platform, row.cache, row.attacks), func(t *testing.T) {
			t.Parallel()
			cfg := attackCfg(row.platform, row.cache, row.attacks)
			res := Campaign(cfg, attackStartSeed, attackSeedCount)
			for _, f := range res.IntegrityFailures {
				t.Errorf("integrity failure: %s", f)
			}
			if row.wantClause == "" {
				if res.Repro != nil {
					t.Fatalf("defended profile lost: %s\n  %s", res.Repro, res.Repro.Violation)
				}
				return
			}
			if res.Repro == nil {
				t.Fatalf("attacker recovered nothing in %d seeds (checker is blind to clause %s)",
					attackSeedCount, row.wantClause)
			}
			repro := res.Repro
			if repro.Violation.Clause != row.wantClause {
				t.Fatalf("clause %q, want %q (%s)", repro.Violation.Clause, row.wantClause, repro.Violation)
			}
			if len(repro.Ops) > 4 {
				t.Errorf("repro not minimal: %d ops (want <= 4): %s", len(repro.Ops), repro.Ops)
			}
			// The printed line must parse back and replay to the same clause.
			parsed, err := ParseRepro(repro.String())
			if err != nil {
				t.Fatalf("printed repro does not parse: %v\n  %s", err, repro)
			}
			rr := Replay(parsed.Config, parsed.Seed, parsed.Ops)
			if rr.Violation == nil {
				t.Fatalf("printed repro does not reproduce: %s", repro)
			}
			if rr.Violation.Clause != repro.Violation.Clause {
				t.Errorf("replayed clause %q != shrunk clause %q", rr.Violation.Clause, repro.Violation.Clause)
			}
			t.Logf("%s (shrunk %d -> %d ops)", repro, repro.OriginalLen, len(repro.Ops))
		})
	}
}

// TestCacheAttackCampaignParallelDeterministic: attack campaigns keep the
// checker's determinism contract — the full campaign result (verdict,
// counts, shrunk repro line, integrity list) is identical at -j 1 and -j N,
// and replaying one (config, seed, schedule) twice yields byte-identical
// probe-timing traces. Mirrors TestCampaignParallelMatchesSerial for the
// plain alphabet; run under -race in CI.
func TestCacheAttackCampaignParallelDeterministic(t *testing.T) {
	t.Parallel()
	cfgs := []Config{
		attackCfg("tegra3", CacheInsecure, "prime-probe,evict-reload,occupancy"),
		attackCfg("tegra3", CacheRandomized, "prime-probe,evict-reload"),
		attackCfg("nexus4", CacheAutoLock, "prime-probe,evict-reload,occupancy"),
	}
	for _, cfg := range cfgs {
		serial := CampaignParallel(cfg, 1, 6, 1)
		parallel := CampaignParallel(cfg, 1, 6, 4)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s/%s: serial and parallel campaigns diverge:\n  serial:   %+v\n  parallel: %+v",
				cfg.Cache, cfg.Attacks, serial, parallel)
		}
	}

	// Trace determinism: same (config, seed, schedule) — same AttackLog,
	// entry for entry. The randomized profile runs all three attackers
	// without violating, so every op leaves a trace line.
	cfg := attackCfg("tegra3", CacheRandomized, "prime-probe,evict-reload,occupancy")
	sched := Schedule{
		{Code: OpPrimeProbe}, {Code: OpEvictReload}, {Code: OpOccupancy},
		{Code: OpBgBegin}, {Code: OpPrimeProbe}, {Code: OpEvictReload},
	}
	a := Replay(cfg, 7, sched)
	b := Replay(cfg, 7, sched)
	if a.Violation != nil {
		t.Fatalf("randomized profile lost the fixed schedule: %s", a.Violation)
	}
	if len(a.AttackLog) == 0 {
		t.Fatal("attack schedule left no probe-timing trace")
	}
	if !reflect.DeepEqual(a.AttackLog, b.AttackLog) {
		t.Fatalf("probe-timing traces diverge across replays:\n  %q\n  %q", a.AttackLog, b.AttackLog)
	}
}

// TestReservedWayBudgetDefeatsOccupancyDeterministically pins the occupancy
// mitigation with the positive control's own schedule: on tegra3 the exact
// lock → bg-begin → occupancy-probe sequence that exposes a live session
// under the baseline profile reads the boot-time lock state — nothing more —
// once the session's way comes from the boot-reserved budget.
func TestReservedWayBudgetDefeatsOccupancyDeterministically(t *testing.T) {
	t.Parallel()
	sched := Schedule{{Code: OpLock}, {Code: OpBgBegin}, {Code: OpOccupancy}}
	rr := Replay(attackCfg("tegra3", CacheBaseline, AttackOccupancy), 3, sched)
	if rr.Violation == nil || rr.Violation.Clause != "occupancy" {
		t.Fatalf("positive control lost: baseline session lock not visible: %+v", rr.Violation)
	}
	rr = Replay(attackCfg("tegra3", CacheReserved, AttackOccupancy), 3, sched)
	if rr.Violation != nil {
		t.Fatalf("reserved-way budget leaked session state: %s", rr.Violation)
	}
	if len(rr.AttackLog) == 0 {
		t.Fatal("occupancy probe left no trace")
	}
}

// TestInsecureLosesDeterministically pins the strongest acceptance claim:
// on the insecure profile a single prime-probe (or evict-reload) op
// recovers exactly the victim's PIN-digit access pattern — no seed hunting,
// no noise margin — and the same one-op schedule against the AutoLock and
// randomized caches recovers nothing.
func TestInsecureLosesDeterministically(t *testing.T) {
	t.Parallel()
	for _, platform := range []string{"tegra3", "nexus4"} {
		for _, op := range []OpCode{OpPrimeProbe, OpEvictReload} {
			sched := Schedule{{Code: op}}
			rr := Replay(attackCfg(platform, CacheInsecure, "prime-probe,evict-reload"), 3, sched)
			if rr.Violation == nil || rr.Violation.Clause != "cache-timing" {
				t.Errorf("%s/insecure: one %s op did not recover the pattern: %+v",
					platform, op, rr.Violation)
			}
			for _, prof := range []string{CacheAutoLock, CacheRandomized} {
				rr := Replay(attackCfg(platform, prof, "prime-probe,evict-reload"), 3, sched)
				if rr.Violation != nil {
					t.Errorf("%s/%s: defended cache lost to one %s op: %s",
						platform, prof, op, rr.Violation)
				}
			}
		}
	}
}

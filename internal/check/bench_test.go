package check

import (
	"testing"

	"sentry/internal/faults"
	"sentry/internal/snapshot"
)

var benchCfg = Config{Platform: "tegra3", Defences: AllDefences(), Faults: faults.None(), Steps: 40}

// BenchmarkColdBoot is the baseline the checkpoint/fork engine displaces:
// building a fresh post-boot world from scratch.
func BenchmarkColdBoot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewWorld(benchCfg, 1)
	}
}

// BenchmarkCapture measures checkpointing a post-boot world — paid once per
// violating seed by Shrink, then amortised over every candidate replay.
func BenchmarkCapture(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := NewWorld(benchCfg, 1)
		b.StartTimer()
		_ = snapshot.Capture(w)
	}
}

// BenchmarkSnapshotFork measures stamping out one world from a snapshot —
// the per-candidate cost during shrinking. O(touched metadata), so it must
// sit well under BenchmarkColdBoot.
func BenchmarkSnapshotFork(b *testing.B) {
	boot := snapshot.Capture(NewWorld(benchCfg, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = boot.Fork()
	}
}

package check

import (
	"sync"
	"testing"

	"sentry/internal/faults"
	"sentry/internal/sim"
	"sentry/internal/snapshot"
)

// Fork-soundness property tests for the checkpoint/fork engine: a forked
// world must be observationally byte-identical to a cold-booted one at every
// step of any schedule, and mutations in one fork must never leak into the
// snapshot, the parent, or sibling forks. Run under -race these tests also
// exercise the concurrent-fork contract.

func forkTestConfigs() []Config {
	benign, _ := faults.ByName("benign")
	adversarial, _ := faults.ByName("adversarial")
	return []Config{
		{Platform: "tegra3", Defences: AllDefences(), Steps: 60},
		{Platform: "nexus4", Defences: AllDefences(), Steps: 60},
		{Platform: "tegra3", Defences: Defences{IRAMZeroOnBoot: true, LockFlush: false, ZeroOnFree: true}, Steps: 60},
		{Platform: "tegra3", Defences: AllDefences(), Faults: benign, Steps: 60},
		{Platform: "tegra3", Defences: AllDefences(), Faults: adversarial, Steps: 60},
	}
}

func violationString(v *Violation) string {
	if v == nil {
		return ""
	}
	return v.String()
}

// TestWorldForkMatchesColdBoot locks a cold-booted world and a fork from a
// post-boot snapshot to the same schedule, comparing the violation stream at
// every step and the complete world state at the end.
func TestWorldForkMatchesColdBoot(t *testing.T) {
	for ci, cfg := range forkTestConfigs() {
		for seed := int64(1); seed <= 6; seed++ {
			sched := Generate(sim.NewRNG(seed), cfg.Steps, cfg.Faults)
			cold := NewWorld(cfg, seed)
			snap := snapshot.Capture(NewWorld(cfg, seed))
			forked := snap.Fork()
			for i, op := range sched {
				vc := cold.Apply(op)
				vf := forked.Apply(op)
				if violationString(vc) != violationString(vf) {
					t.Fatalf("cfg %d seed %d step %d (%s): cold violation %q, forked %q",
						ci, seed, i, op, violationString(vc), violationString(vf))
				}
				if vc != nil {
					break
				}
			}
			ic, fc := cold.IntegrityCheck(), forked.IntegrityCheck()
			if (ic == nil) != (fc == nil) || (ic != nil && ic.Error() != fc.Error()) {
				t.Fatalf("cfg %d seed %d: integrity mismatch: cold %v, forked %v", ci, seed, ic, fc)
			}
			if d := DiffWorlds(cold, forked); d != "" {
				t.Fatalf("cfg %d seed %d: cold and forked worlds diverged: %s", ci, seed, d)
			}
		}
	}
}

// TestForkIsolation proves mutations never travel between forks: a sibling
// fork and the live parent both run a different schedule between two
// identical replays, and the replays must still agree exactly.
func TestForkIsolation(t *testing.T) {
	cfg := Config{Platform: "tegra3", Defences: AllDefences(), Steps: 60}
	seed := int64(5)
	schedA := Generate(sim.NewRNG(seed), 60, cfg.Faults)
	schedB := Generate(sim.NewRNG(seed+100), 60, cfg.Faults)

	parent := NewWorld(cfg, seed)
	snap := snapshot.Capture(parent)

	first := snap.Fork()
	replayFrom(first, schedA)

	// Contamination attempts: the parent keeps running after capture, and a
	// sibling fork runs a different schedule.
	replayFrom(parent, schedB)
	sibling := snap.Fork()
	replayFrom(sibling, schedB)

	second := snap.Fork()
	replayFrom(second, schedA)
	if d := DiffWorlds(first, second); d != "" {
		t.Fatalf("snapshot contaminated by parent or sibling mutations: %s", d)
	}
}

// TestConcurrentForks forks one snapshot from many goroutines at once (the
// parallel bench pattern); under -race this proves the concurrent-fork
// contract, and every fork must produce the identical end state.
func TestConcurrentForks(t *testing.T) {
	cfg := Config{Platform: "tegra3", Defences: AllDefences(), Steps: 60}
	seed := int64(3)
	sched := Generate(sim.NewRNG(seed), 60, cfg.Faults)
	snap := snapshot.Capture(NewWorld(cfg, seed))

	const n = 8
	worlds := make([]*World, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := snap.Fork()
			replayFrom(w, sched)
			worlds[i] = w
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if d := DiffWorlds(worlds[0], worlds[i]); d != "" {
			t.Fatalf("concurrent fork %d diverged: %s", i, d)
		}
	}
}

package check

import (
	"fmt"
	"sync"
	"testing"

	"sentry/internal/faults"
	"sentry/internal/mem"
	"sentry/internal/sim"
	"sentry/internal/snapshot"
)

// Fork-soundness property tests for the checkpoint/fork engine: a forked
// world must be observationally byte-identical to a cold-booted one at every
// step of any schedule, and mutations in one fork must never leak into the
// snapshot, the parent, or sibling forks. Run under -race these tests also
// exercise the concurrent-fork contract.

func forkTestConfigs() []Config {
	benign, _ := faults.ByName("benign")
	adversarial, _ := faults.ByName("adversarial")
	return []Config{
		{Platform: "tegra3", Defences: AllDefences(), Steps: 60},
		{Platform: "nexus4", Defences: AllDefences(), Steps: 60},
		{Platform: "tegra3", Defences: Defences{IRAMZeroOnBoot: true, LockFlush: false, ZeroOnFree: true}, Steps: 60},
		{Platform: "tegra3", Defences: AllDefences(), Faults: benign, Steps: 60},
		{Platform: "tegra3", Defences: AllDefences(), Faults: adversarial, Steps: 60},
	}
}

// diffStores reports the first content difference between two stores, or "".
// TouchedPages returns page base offsets in bytes.
func diffStores(name string, a, b *mem.Store) string {
	bases := map[uint64]bool{}
	for _, base := range a.TouchedPages() {
		bases[base] = true
	}
	for _, base := range b.TouchedPages() {
		bases[base] = true
	}
	var pa, pb [mem.PageSize]byte
	for base := range bases {
		a.Read(base, pa[:])
		b.Read(base, pb[:])
		if pa != pb {
			return fmt.Sprintf("%s page at %#x content differs", name, base)
		}
	}
	return ""
}

// diffWorlds reports the first observable divergence between two worlds, or
// "". It covers every deterministic stream the simulation promises to keep
// bit-reproducible: time, energy, RNG position, register file, bus traffic,
// cache geometry state, lock state, Sentry activity, and full memory images.
func diffWorlds(a, b *World) string {
	switch {
	case a.S.Clock.Cycles() != b.S.Clock.Cycles():
		return fmt.Sprintf("clock: %d vs %d", a.S.Clock.Cycles(), b.S.Clock.Cycles())
	case a.S.Meter.PJ() != b.S.Meter.PJ():
		return fmt.Sprintf("energy: %v vs %v", a.S.Meter.PJ(), b.S.Meter.PJ())
	case a.S.RNG.State() != b.S.RNG.State():
		return fmt.Sprintf("rng: %+v vs %+v", a.S.RNG.State(), b.S.RNG.State())
	case a.S.CPU.Regs != b.S.CPU.Regs:
		return "cpu registers differ"
	case a.S.Bus.Stats() != b.S.Bus.Stats():
		return fmt.Sprintf("bus stats: %+v vs %+v", a.S.Bus.Stats(), b.S.Bus.Stats())
	case a.S.L2.Stats() != b.S.L2.Stats():
		return fmt.Sprintf("l2 stats: %+v vs %+v", a.S.L2.Stats(), b.S.L2.Stats())
	case a.S.L2.AllocMask() != b.S.L2.AllocMask():
		return "l2 lockdown register differs"
	case a.K.State() != b.K.State():
		return fmt.Sprintf("lock state: %v vs %v", a.K.State(), b.K.State())
	case a.Sn.Stats() != b.Sn.Stats():
		return fmt.Sprintf("sentry stats: %+v vs %+v", a.Sn.Stats(), b.Sn.Stats())
	case a.step != b.step || a.dead != b.dead || a.bgOn != b.bgOn:
		return "world step/dead/bg state differs"
	}
	for w := 0; w < a.S.Prof.Cache.Ways; w++ {
		if a.S.L2.ValidLines(w) != b.S.L2.ValidLines(w) {
			return fmt.Sprintf("l2 way %d valid-line count differs", w)
		}
	}
	if d := diffStores("iram", a.S.IRAM.Store(), b.S.IRAM.Store()); d != "" {
		return d
	}
	return diffStores("dram", a.S.DRAM.Store(), b.S.DRAM.Store())
}

func violationString(v *Violation) string {
	if v == nil {
		return ""
	}
	return v.String()
}

// TestWorldForkMatchesColdBoot locks a cold-booted world and a fork from a
// post-boot snapshot to the same schedule, comparing the violation stream at
// every step and the complete world state at the end.
func TestWorldForkMatchesColdBoot(t *testing.T) {
	for ci, cfg := range forkTestConfigs() {
		for seed := int64(1); seed <= 6; seed++ {
			sched := Generate(sim.NewRNG(seed), cfg.Steps, cfg.Faults)
			cold := NewWorld(cfg, seed)
			snap := snapshot.Capture(NewWorld(cfg, seed))
			forked := snap.Fork()
			for i, op := range sched {
				vc := cold.Apply(op)
				vf := forked.Apply(op)
				if violationString(vc) != violationString(vf) {
					t.Fatalf("cfg %d seed %d step %d (%s): cold violation %q, forked %q",
						ci, seed, i, op, violationString(vc), violationString(vf))
				}
				if vc != nil {
					break
				}
			}
			ic, fc := cold.IntegrityCheck(), forked.IntegrityCheck()
			if (ic == nil) != (fc == nil) || (ic != nil && ic.Error() != fc.Error()) {
				t.Fatalf("cfg %d seed %d: integrity mismatch: cold %v, forked %v", ci, seed, ic, fc)
			}
			if d := diffWorlds(cold, forked); d != "" {
				t.Fatalf("cfg %d seed %d: cold and forked worlds diverged: %s", ci, seed, d)
			}
		}
	}
}

// TestForkIsolation proves mutations never travel between forks: a sibling
// fork and the live parent both run a different schedule between two
// identical replays, and the replays must still agree exactly.
func TestForkIsolation(t *testing.T) {
	cfg := Config{Platform: "tegra3", Defences: AllDefences(), Steps: 60}
	seed := int64(5)
	schedA := Generate(sim.NewRNG(seed), 60, cfg.Faults)
	schedB := Generate(sim.NewRNG(seed+100), 60, cfg.Faults)

	parent := NewWorld(cfg, seed)
	snap := snapshot.Capture(parent)

	first := snap.Fork()
	replayFrom(first, schedA)

	// Contamination attempts: the parent keeps running after capture, and a
	// sibling fork runs a different schedule.
	replayFrom(parent, schedB)
	sibling := snap.Fork()
	replayFrom(sibling, schedB)

	second := snap.Fork()
	replayFrom(second, schedA)
	if d := diffWorlds(first, second); d != "" {
		t.Fatalf("snapshot contaminated by parent or sibling mutations: %s", d)
	}
}

// TestConcurrentForks forks one snapshot from many goroutines at once (the
// parallel bench pattern); under -race this proves the concurrent-fork
// contract, and every fork must produce the identical end state.
func TestConcurrentForks(t *testing.T) {
	cfg := Config{Platform: "tegra3", Defences: AllDefences(), Steps: 60}
	seed := int64(3)
	sched := Generate(sim.NewRNG(seed), 60, cfg.Faults)
	snap := snapshot.Capture(NewWorld(cfg, seed))

	const n = 8
	worlds := make([]*World, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := snap.Fork()
			replayFrom(w, sched)
			worlds[i] = w
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if d := diffWorlds(worlds[0], worlds[i]); d != "" {
			t.Fatalf("concurrent fork %d diverged: %s", i, d)
		}
	}
}

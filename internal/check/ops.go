package check

import (
	"fmt"
	"strconv"
	"strings"

	"sentry/internal/faults"
	"sentry/internal/sim"
)

// OpCode identifies one operation in the checker's alphabet. The alphabet
// spans the three actors of the paper's setting: the user/OS (lock, unlock,
// suspend, idle, touches, frees), the environment (power cuts, held resets,
// bit flips), and the attacker (DMA scrapes, glitched resets).
type OpCode int

// The operation alphabet.
const (
	OpLock OpCode = iota
	OpUnlock
	OpBadPIN
	OpFgTouch
	OpBgBegin
	OpBgTouch
	OpFreePage
	OpPressure
	OpFlushMasked
	OpSuspend
	OpWake
	OpIdle
	OpDrainZero
	OpDMAScrape
	OpBitFlip
	OpPowerCut
	OpHeldReset
	OpGlitchReset
	OpPrimeProbe
	OpEvictReload
	OpOccupancy
	OpDFAFault
	OpDFACollect
	numOpCodes
)

var opNames = [numOpCodes]string{
	OpLock:        "lock",
	OpUnlock:      "unlock",
	OpBadPIN:      "bad-pin",
	OpFgTouch:     "fg-touch",
	OpBgBegin:     "bg-begin",
	OpBgTouch:     "bg-touch",
	OpFreePage:    "free-page",
	OpPressure:    "pressure",
	OpFlushMasked: "flush-masked",
	OpSuspend:     "suspend",
	OpWake:        "wake",
	OpIdle:        "idle",
	OpDrainZero:   "drain-zero",
	OpDMAScrape:   "dma-scrape",
	OpBitFlip:     "bit-flip",
	OpPowerCut:    "power-cut",
	OpHeldReset:   "held-reset",
	OpGlitchReset: "glitch-reset",
	OpPrimeProbe:  "prime-probe",
	OpEvictReload: "evict-reload",
	OpOccupancy:   "occupancy-probe",
	OpDFAFault:    "dfa-fault",
	OpDFACollect:  "dfa-collect",
}

func (c OpCode) String() string {
	if c >= 0 && c < numOpCodes {
		return opNames[c]
	}
	return fmt.Sprintf("op(%d)", int(c))
}

// terminal reports whether the op kills the device (ends the schedule).
func (c OpCode) terminal() bool {
	return c == OpPowerCut || c == OpHeldReset || c == OpGlitchReset
}

// Terminal reports whether the op kills the device. The explorer uses it to
// give tree branches ending in a kill a subtree budget of exactly one node.
func (c OpCode) Terminal() bool { return c.terminal() }

// Op is one schedule step. Arg carries the operation's parameter (page
// index, wake source, RNG salt, ...) — parameters are fixed at generation
// time, never drawn at apply time, so removing ops during shrinking cannot
// shift the meaning of the ops that remain.
type Op struct {
	Code OpCode
	Arg  uint32
}

func (o Op) String() string {
	if o.Arg == 0 {
		return o.Code.String()
	}
	return fmt.Sprintf("%s:%d", o.Code, o.Arg)
}

// Schedule is an operation sequence.
type Schedule []Op

func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, op := range s {
		parts[i] = op.String()
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses the String form ("lock,fg-touch:3,power-cut").
func ParseSchedule(text string) (Schedule, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	var out Schedule
	for _, tok := range strings.Split(text, ",") {
		name, argStr, hasArg := strings.Cut(strings.TrimSpace(tok), ":")
		code := OpCode(-1)
		for c := OpCode(0); c < numOpCodes; c++ {
			if opNames[c] == name {
				code = c
				break
			}
		}
		if code < 0 {
			return nil, fmt.Errorf("check: unknown op %q", name)
		}
		op := Op{Code: code}
		if hasArg {
			arg, err := strconv.ParseUint(argStr, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("check: bad arg in %q: %v", tok, err)
			}
			op.Arg = uint32(arg)
		}
		out = append(out, op)
	}
	return out, nil
}

// opWeight is one row of the generation table.
type opWeight struct {
	code   OpCode
	weight int
}

// weights returns the generation table for a fault profile. Bit flips only
// make sense with an injector that can flip bits; glitched resets are an
// adversarial fault. Terminal ops are rare so most schedules explore a long
// live prefix, but common enough that power loss at every step boundary
// gets coverage across a campaign.
func weights(prof faults.Profile) []opWeight {
	w := []opWeight{
		{OpLock, 10},
		{OpUnlock, 10},
		{OpBadPIN, 2},
		{OpFgTouch, 10},
		{OpBgBegin, 6},
		{OpBgTouch, 10},
		{OpFreePage, 8},
		{OpPressure, 6},
		{OpFlushMasked, 6},
		{OpSuspend, 5},
		{OpWake, 5},
		{OpIdle, 4},
		{OpDrainZero, 4},
		{OpDMAScrape, 5},
		{OpPowerCut, 2},
		{OpHeldReset, 1},
	}
	if prof.BitFlipMax > 0 {
		w = append(w, opWeight{OpBitFlip, 5})
	}
	if prof.GlitchReset {
		w = append(w, opWeight{OpGlitchReset, 2})
	}
	return w
}

// opWeights returns the full generation table for a config: the fault-profile
// table plus one row per enabled cache attacker. A config without attacks
// generates exactly what the profile-only table always generated, so every
// pre-existing campaign, corpus entry, and wallclock budget is untouched.
func (c Config) opWeights() []opWeight {
	w := weights(c.Faults)
	for _, a := range c.attackList() {
		switch a {
		case AttackPrimeProbe:
			w = append(w, opWeight{OpPrimeProbe, 6})
		case AttackEvictReload:
			w = append(w, opWeight{OpEvictReload, 6})
		case AttackOccupancy:
			w = append(w, opWeight{OpOccupancy, 6})
		}
	}
	if c.DFA != "" {
		// A DFA campaign is fault-heavy by design: the attacker needs
		// several faulted ciphertexts per state column before a collect can
		// converge, so dfa-fault outweighs dfa-collect.
		w = append(w, opWeight{OpDFAFault, 14}, opWeight{OpDFACollect, 6})
	}
	return w
}

// Generate draws a schedule of up to steps operations. Generation stops
// early after a terminal op — the device is dead. All randomness (op choice
// and op arguments) comes from rng, so a schedule is a pure function of
// (seed, steps, profile). Kept for profile-only callers; configs with cache
// attackers enabled must use GenerateFor.
func Generate(rng *sim.RNG, steps int, prof faults.Profile) Schedule {
	return GenerateFor(Config{Faults: prof}, rng, steps)
}

// GenerateFor draws a schedule from the config's full op alphabet —
// including the cache-attack ops when cfg.Attacks enables them.
func GenerateFor(cfg Config, rng *sim.RNG, steps int) Schedule {
	table := cfg.opWeights()
	total := 0
	for _, row := range table {
		total += row.weight
	}
	sched := make(Schedule, 0, steps)
	for i := 0; i < steps; i++ {
		pick := rng.Intn(total)
		var code OpCode
		for _, row := range table {
			if pick < row.weight {
				code = row.code
				break
			}
			pick -= row.weight
		}
		op := Op{Code: code, Arg: rng.Uint32() >> 8} // keep args printable-small
		sched = append(sched, op)
		if code.terminal() {
			break
		}
	}
	return sched
}

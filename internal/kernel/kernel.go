// Package kernel is the miniature operating system the Sentry port lives
// in: processes with paged address spaces, a physical page allocator with
// the freed-page zeroing thread, a screen-lock state machine with PIN and
// deep-lock semantics, a priority-ordered crypto-provider registry
// mirroring the Linux Crypto API, and page-fault dispatch that Sentry hooks
// for decrypt-on-demand.
package kernel

import (
	"errors"
	"fmt"

	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/obs"
	"sentry/internal/soc"
)

// Sentinel errors for lock-state failures. They are wrapped with context by
// the operations that return them; test with errors.Is.
var (
	// ErrBadPIN reports a PIN that did not match.
	ErrBadPIN = errors.New("kernel: wrong PIN")
	// ErrLocked reports an operation the current lock state forbids (an
	// unlock attempt while deep-locked, background work while unlocked, ...).
	ErrLocked = errors.New("kernel: lock state forbids this operation")
	// ErrNoMemory reports physical-frame exhaustion. Unlike ErrLocked it is
	// not retryable on an otherwise-idle device: memory comes back only when
	// something frees pages. Test with errors.Is.
	ErrNoMemory = errors.New("kernel: out of physical memory")
)

// LockState is the device lock state machine.
type LockState int

// Lock states.
const (
	Unlocked LockState = iota
	ScreenLocked
	// DeepLocked is entered after too many wrong PINs; only a full
	// power-cycle (with password re-entry) leaves it.
	DeepLocked
)

func (s LockState) String() string {
	switch s {
	case Unlocked:
		return "unlocked"
	case ScreenLocked:
		return "screen-locked"
	case DeepLocked:
		return "deep-locked"
	}
	return fmt.Sprintf("LockState(%d)", int(s))
}

// MaxPINAttempts before the device deep-locks.
const MaxPINAttempts = 5

// Range is a physical address range.
type Range struct {
	Base mem.PhysAddr
	Size uint64
}

// Process is one user process.
type Process struct {
	PID  int
	Name string
	AS   *mmu.AddressSpace

	// Sensitive marks the process for Sentry protection (the paper's
	// settings-menu extension where users pick apps to protect).
	Sensitive bool
	// Background marks processes allowed to run while the screen is locked
	// (music players, mail polling).
	Background bool
	// Schedulable is cleared when Sentry parks an encrypted process in the
	// unschedulable queue.
	Schedulable bool

	// DMARegions are physical ranges I/O devices access directly (GPU
	// surfaces, network buffers). They never page-fault, so Sentry must
	// decrypt them eagerly on unlock.
	DMARegions []Range

	// SharedWith lists PIDs this process shares pages with; Sentry's
	// shared-page policy consults it.
	sharedPages map[mmu.VirtAddr][]int

	nextMap mmu.VirtAddr
}

// Kernel is the OS instance on one SoC.
type Kernel struct {
	SoC *soc.SoC

	procs   map[int]*Process
	nextPID int
	current *Process

	pages *PageAllocator

	Crypto *CryptoAPI

	lockState   LockState
	pin         string
	pinFailures int

	// OnLock/OnUnlock hooks run on state transitions (Sentry's
	// encrypt-on-lock / arm-decrypt-on-unlock live here). OnDeepLock runs
	// once when repeated PIN failures push the device into DeepLocked —
	// Sentry destroys the volatile key there, since no unlock path out of
	// DeepLocked exists short of a power cycle.
	OnLock     []func()
	OnUnlock   []func()
	OnDeepLock []func()

	// FlushMaskFn supplies the way mask every kernel-initiated L2
	// maintenance operation must use. Sentry installs it so locked ways are
	// never flushed (the paper's 428→676-line kernel change); the default
	// is all ways.
	FlushMaskFn func() uint32

	// SensitiveKernelRanges are physical ranges of OS subsystems (keyrings,
	// crypto contexts) registered for Sentry protection; the paper's title
	// promise covers "applications and OS components".
	SensitiveKernelRanges []NamedRange

	// IdleLockSeconds is the inactivity threshold after which the device
	// locks itself (the paper's "idle for more than a short period, e.g.
	// 15 minutes"). Zero disables auto-lock.
	IdleLockSeconds float64
	idleSeconds     float64
	suspended       bool

	// FaultHook, if set, sees every page fault first; returning true means
	// handled. Sentry installs its decrypt-on-page-in here.
	FaultHook func(p *Process, f *mmu.Fault) bool

	// Faults is nil unless a fault injector is attached; the zero-queue
	// drain consults it behind a single nil check.
	Faults FaultInjector

	zeroQueue []mem.PhysAddr

	// AliasRegion is the way-aligned DRAM range reserved at boot for L2
	// way locking.
	AliasRegion Range

	// Stats
	ZeroedBytes uint64
}

// kernelReserved is DRAM held back at the bottom for the kernel image and
// static allocations; user frames are handed out above it.
const kernelReserved = 64 << 20

// New boots a kernel on s with the given unlock PIN.
func New(s *soc.SoC, pin string) *Kernel {
	waySize := uint64(s.Prof.Cache.WaySize)
	aliasSize := uint64(s.Prof.Cache.Ways) * waySize
	aliasBase := soc.DRAMBase + mem.PhysAddr(s.Prof.DRAMSize-aliasSize)
	k := &Kernel{
		SoC:         s,
		procs:       make(map[int]*Process),
		nextPID:     1,
		Crypto:      &CryptoAPI{},
		pin:         pin,
		AliasRegion: Range{Base: aliasBase, Size: aliasSize},
	}
	k.pages = NewPageAllocator(soc.DRAMBase+kernelReserved, aliasBase)
	s.CPU.KernelStack = soc.DRAMBase + kernelReserved - 0x1000
	s.CPU.FaultHandler = k.handleFault
	return k
}

// Pages exposes the physical page allocator.
func (k *Kernel) Pages() *PageAllocator { return k.pages }

// Clone rebuilds this kernel's state over the forked SoC s2: processes and
// their address spaces (deep-copied), the frame allocator, lock state, PIN
// failure count, zero queue, and counters. It returns the clone plus an
// old→new process map so the software above (Sentry) can re-bind its
// per-process references.
//
// Deliberately NOT carried: the hook slices (OnLock/OnUnlock/OnDeepLock),
// FlushMaskFn, FaultHook, the Crypto registry's providers, and Faults. Those
// are closures over the OLD world's objects; whoever installed them on this
// kernel must re-install equivalents bound to the clone, exactly as at boot.
// The CPU's fault handler is re-pointed at the clone.
func (k *Kernel) Clone(s2 *soc.SoC) (*Kernel, map[*Process]*Process) {
	n := &Kernel{
		SoC:             s2,
		procs:           make(map[int]*Process, len(k.procs)),
		nextPID:         k.nextPID,
		Crypto:          &CryptoAPI{},
		lockState:       k.lockState,
		pin:             k.pin,
		pinFailures:     k.pinFailures,
		IdleLockSeconds: k.IdleLockSeconds,
		idleSeconds:     k.idleSeconds,
		suspended:       k.suspended,
		AliasRegion:     k.AliasRegion,
		ZeroedBytes:     k.ZeroedBytes,
	}
	pa := *k.pages
	pa.free = append([]mem.PhysAddr(nil), k.pages.free...)
	n.pages = &pa
	n.zeroQueue = append([]mem.PhysAddr(nil), k.zeroQueue...)
	n.SensitiveKernelRanges = append([]NamedRange(nil), k.SensitiveKernelRanges...)
	pm := make(map[*Process]*Process, len(k.procs))
	for pid, p := range k.procs {
		cp := &Process{
			PID: p.PID, Name: p.Name, AS: p.AS.Clone(),
			Sensitive: p.Sensitive, Background: p.Background, Schedulable: p.Schedulable,
			DMARegions:  append([]Range(nil), p.DMARegions...),
			sharedPages: make(map[mmu.VirtAddr][]int, len(p.sharedPages)),
			nextMap:     p.nextMap,
		}
		for v, peers := range p.sharedPages {
			cp.sharedPages[v] = append([]int(nil), peers...)
		}
		cp.AS.SetObs(s2.Metrics)
		n.procs[pid] = cp
		pm[p] = cp
	}
	if k.current != nil {
		n.current = pm[k.current]
		s2.CPU.AS = n.current.AS
	}
	s2.CPU.FaultHandler = n.handleFault
	return n, pm
}

// stateChange moves the lock state machine and emits one StateChange event
// labelled "old->new".
func (k *Kernel) stateChange(to LockState) {
	from := k.lockState
	k.lockState = to
	if tr := k.SoC.Trace; tr != nil && from != to {
		tr.Emit(obs.Event{
			Cycle: k.SoC.Clock.Cycles(),
			Kind:  obs.KindStateChange,
			Arg:   uint64(to),
			Label: from.String() + "->" + to.String(),
		})
	}
}

// State returns the current lock state.
func (k *Kernel) State() LockState { return k.lockState }

// NewProcess creates a process.
func (k *Kernel) NewProcess(name string, sensitive, background bool) *Process {
	p := &Process{
		PID: k.nextPID, Name: name, AS: mmu.NewAddressSpace(),
		Sensitive: sensitive, Background: background, Schedulable: true,
		sharedPages: make(map[mmu.VirtAddr][]int),
		nextMap:     0x0001_0000,
	}
	p.AS.SetObs(k.SoC.Metrics)
	k.nextPID++
	k.procs[p.PID] = p
	if k.current == nil {
		k.Switch(p)
	}
	return p
}

// Process returns the process with the given PID, or nil.
func (k *Kernel) Process(pid int) *Process { return k.procs[pid] }

// Processes returns all live processes in PID order.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for pid := 1; pid < k.nextPID; pid++ {
		if p, ok := k.procs[pid]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Current returns the running process.
func (k *Kernel) Current() *Process { return k.current }

// Switch context-switches to p (subject to the CPU's IRQ mask).
func (k *Kernel) Switch(p *Process) bool {
	if p == k.current {
		return true
	}
	if !k.SoC.CPU.ContextSwitch(p.AS) && k.current != nil {
		return false
	}
	k.SoC.CPU.AS = p.AS
	k.current = p
	return true
}

// MapAnon maps n fresh zeroed pages into p and returns the base virtual
// address.
func (k *Kernel) MapAnon(p *Process, n int) (mmu.VirtAddr, error) {
	base := p.nextMap
	for i := 0; i < n; i++ {
		frame, err := k.pages.Alloc()
		if err != nil {
			return 0, err
		}
		p.AS.Map(base+mmu.VirtAddr(i*mmu.PageSize), mmu.PTE{
			Phys: frame, Present: true, Writable: true, Young: true,
		})
	}
	p.nextMap = base + mmu.VirtAddr(n*mmu.PageSize) + mmu.PageSize // guard gap
	return base, nil
}

// SharePage maps the frame behind (owner, v) into peer at the same virtual
// address, marking the PTE shared in both.
func (k *Kernel) SharePage(owner *Process, v mmu.VirtAddr, peer *Process) error {
	pte := owner.AS.Lookup(v)
	if pte == nil {
		return fmt.Errorf("kernel: share of unmapped page %#x", uint64(v))
	}
	pte.Shared = true
	shared := *pte
	peer.AS.Map(v, shared)
	vp := mmu.PageBase(v)
	owner.sharedPages[vp] = append(owner.sharedPages[vp], peer.PID)
	peer.sharedPages[vp] = append(peer.sharedPages[vp], owner.PID)
	return nil
}

// SharedPeers returns the PIDs the page at v is shared with.
func (k *Kernel) SharedPeers(p *Process, v mmu.VirtAddr) []int {
	return p.sharedPages[mmu.PageBase(v)]
}

// UnmapAndFree unmaps the page at v and queues its frame for the zeroing
// thread (freed pages of sensitive apps may hold secrets; Linux zeroes them
// asynchronously, and Sentry waits for that before locking).
func (k *Kernel) UnmapAndFree(p *Process, v mmu.VirtAddr) {
	pte := p.AS.Lookup(v)
	if pte == nil {
		return
	}
	p.AS.Unmap(v)
	k.zeroQueue = append(k.zeroQueue, mem.PageBase(pte.Phys))
}

// PendingZeroBytes reports how much freed memory awaits the zeroing thread.
func (k *Kernel) PendingZeroBytes() uint64 {
	return uint64(len(k.zeroQueue)) * mem.PageSize
}

// FaultInjector is the kernel's slice of a fault injector. Both hooks sit
// on the zero-queue drain: OnDrainFrame fires before each queued frame is
// cleared and may panic (with a faults.Abort) to model power loss mid-drain;
// DrainDelayCycles returns extra cycles the zeroing thread loses to
// preemption before it starts. A delay never skips the drain — Sentry's
// defence is waiting for the zeroing thread, however long it takes.
type FaultInjector interface {
	OnDrainFrame(i int, frame mem.PhysAddr)
	DrainDelayCycles(pendingBytes uint64) uint64
}

// zeroRateBytesPerSec is the paper's measured freed-page zeroing rate
// (4.014 GB/s on the Nexus 4).
const zeroRateBytesPerSec = 4.014e9

// DrainZeroQueue runs the kernel zeroing thread to completion, physically
// clearing every queued frame and charging the measured time and energy
// (4.014 GB/s, 2.8 µJ/MB).
func (k *Kernel) DrainZeroQueue() {
	if f := k.Faults; f != nil && len(k.zeroQueue) > 0 {
		k.SoC.Clock.Advance(f.DrainDelayCycles(k.PendingZeroBytes()))
	}
	zero := make([]byte, mem.PageSize)
	for i, frame := range k.zeroQueue {
		if f := k.Faults; f != nil {
			f.OnDrainFrame(i, frame)
		}
		k.SoC.DRAM.Write(frame, zero)
		// Stale cache lines may still hold the freed page's plaintext and
		// would be written back over the zeroed frame later; drop them.
		k.SoC.L2.InvalidateRange(frame, mem.PageSize)
		k.ZeroedBytes += mem.PageSize
		k.pages.Release(frame)
	}
	n := float64(len(k.zeroQueue)) * mem.PageSize
	k.zeroQueue = nil
	cycles := uint64(n / zeroRateBytesPerSec * float64(k.SoC.Prof.CPUHz))
	k.SoC.Clock.Advance(cycles)
	k.SoC.Meter.Charge(n / (1 << 20) * k.SoC.Prof.Energy.PageZeroPerMB)
}

func (k *Kernel) handleFault(f *mmu.Fault) bool {
	if k.FaultHook != nil && k.current != nil && k.FaultHook(k.current, f) {
		return true
	}
	// Default access-flag handling: Linux uses young-bit faults for page
	// aging; the handler just sets the bit and resumes. Encrypted pages are
	// Sentry's business — if its hook declined, the access must not proceed
	// (the process should have been parked).
	if f.Kind == mmu.FaultAccessFlag && k.current != nil {
		if pte := k.current.AS.Lookup(f.Addr); pte != nil && !pte.Encrypted {
			pte.Young = true
			return true
		}
	}
	return false
}

// Lock transitions to ScreenLocked, running every OnLock hook first (while
// the device still counts as "going to sleep"), then marks the SoC locked
// so hardware governors (crypto accelerator) down-clock.
func (k *Kernel) Lock() {
	if k.lockState != Unlocked {
		return
	}
	for _, fn := range k.OnLock {
		fn()
	}
	k.stateChange(ScreenLocked)
	k.SoC.ScreenLocked = true
}

// Unlock attempts a PIN unlock. Too many failures deep-lock the device.
// Failures are errors.Is-testable: ErrLocked while deep-locked, ErrBadPIN
// for a wrong PIN.
func (k *Kernel) Unlock(pin string) error {
	switch k.lockState {
	case Unlocked:
		return nil
	case DeepLocked:
		return fmt.Errorf("device is deep-locked: %w", ErrLocked)
	}
	if pin != k.pin {
		k.pinFailures++
		if k.pinFailures >= MaxPINAttempts {
			k.stateChange(DeepLocked)
			for _, fn := range k.OnDeepLock {
				fn()
			}
		}
		return fmt.Errorf("%w (%d/%d attempts)", ErrBadPIN, k.pinFailures, MaxPINAttempts)
	}
	k.pinFailures = 0
	k.stateChange(Unlocked)
	k.SoC.ScreenLocked = false
	for _, fn := range k.OnUnlock {
		fn()
	}
	return nil
}

// NamedRange is a labelled physical range.
type NamedRange struct {
	Name string
	Range
}

// RegisterSensitiveKernelRange marks a kernel subsystem's physical memory
// for protection at lock time.
func (k *Kernel) RegisterSensitiveKernelRange(name string, r Range) {
	k.SensitiveKernelRanges = append(k.SensitiveKernelRanges, NamedRange{Name: name, Range: r})
}

// FlushMask returns the way mask kernel cache maintenance must use.
func (k *Kernel) FlushMask() uint32 {
	if k.FlushMaskFn != nil {
		return k.FlushMaskFn()
	}
	return k.SoC.L2.AllWaysMask()
}

// WakeSource identifies what woke a suspended device.
type WakeSource int

// Wake sources (§7: user interaction, hardware events, timers).
const (
	WakeUser WakeSource = iota
	WakeIncomingCall
	WakeTimer
)

func (w WakeSource) String() string {
	switch w {
	case WakeUser:
		return "user"
	case WakeIncomingCall:
		return "incoming-call"
	case WakeTimer:
		return "timer"
	}
	return "unknown"
}

// Suspend models the ACPI-S3 suspend-to-RAM smartphones enter after brief
// inactivity: DRAM keeps refreshing (contents preserved — which is exactly
// why lock-time encryption matters), while the caches are cleaned (masked!)
// and powered down and the register file is lost.
func (k *Kernel) Suspend() {
	if k.suspended {
		return
	}
	k.SoC.L2.CleanInvalidateWays(k.FlushMask())
	k.SoC.CPU.ZeroRegs()
	k.suspended = true
}

// Suspended reports whether the device is in S3.
func (k *Kernel) Suspended() bool { return k.suspended }

// Wake leaves S3. The wake source decides what may run: a user wake goes
// to the PIN screen (still locked); calls and timers run background work
// only.
func (k *Kernel) Wake(src WakeSource) {
	k.suspended = false
}

// Idle advances simulated time with no user interaction. When the idle
// threshold passes, the device locks (running every Sentry hook) and
// suspends.
func (k *Kernel) Idle(seconds float64) {
	k.SoC.Clock.Advance(uint64(seconds * float64(k.SoC.Prof.CPUHz)))
	k.idleSeconds += seconds
	if k.IdleLockSeconds > 0 && k.idleSeconds >= k.IdleLockSeconds && k.lockState == Unlocked {
		k.Lock()
		k.Suspend()
	}
}

// Interact resets the idle timer (the user touched the device).
func (k *Kernel) Interact() { k.idleSeconds = 0 }

// RunnableBackground returns the background processes that may execute in
// the current lock state.
func (k *Kernel) RunnableBackground() []*Process {
	var out []*Process
	for _, p := range k.Processes() {
		if p.Background && p.Schedulable {
			out = append(out, p)
		}
	}
	return out
}

// MapDMA allocates n physically contiguous frames for a device-visible
// buffer (GPU surface, NIC ring), maps them into p, and records the range
// in p.DMARegions. Devices access the range with physical addresses and no
// page faults, which is why Sentry must treat it eagerly.
func (k *Kernel) MapDMA(p *Process, n int) (mmu.VirtAddr, Range, error) {
	phys, err := k.pages.AllocContig(n)
	if err != nil {
		return 0, Range{}, err
	}
	base := p.nextMap
	for i := 0; i < n; i++ {
		p.AS.Map(base+mmu.VirtAddr(i*mmu.PageSize), mmu.PTE{
			Phys: phys + mem.PhysAddr(i*mmu.PageSize), Present: true, Writable: true, Young: true,
		})
	}
	p.nextMap = base + mmu.VirtAddr(n*mmu.PageSize) + mmu.PageSize
	r := Range{Base: phys, Size: uint64(n) * mem.PageSize}
	p.DMARegions = append(p.DMARegions, r)
	return base, r, nil
}

// PageAllocator hands out physical frames in [base, limit).
type PageAllocator struct {
	next  mem.PhysAddr
	limit mem.PhysAddr
	free  []mem.PhysAddr
}

// NewPageAllocator returns an allocator over [base, limit), page aligned.
func NewPageAllocator(base, limit mem.PhysAddr) *PageAllocator {
	return &PageAllocator{next: mem.PageBase(base + mem.PageSize - 1), limit: limit}
}

// Alloc returns a free frame.
func (a *PageAllocator) Alloc() (mem.PhysAddr, error) {
	if n := len(a.free); n > 0 {
		f := a.free[n-1]
		a.free = a.free[:n-1]
		return f, nil
	}
	if a.next+mem.PageSize > a.limit {
		return 0, fmt.Errorf("%w: frame allocator at limit %#x", ErrNoMemory, uint64(a.limit))
	}
	f := a.next
	a.next += mem.PageSize
	return f, nil
}

// AllocContig returns n physically contiguous frames from the bump region
// (the free list cannot guarantee contiguity).
func (a *PageAllocator) AllocContig(n int) (mem.PhysAddr, error) {
	need := mem.PhysAddr(n) * mem.PageSize
	if a.next+need > a.limit {
		return 0, fmt.Errorf("%w: no %d contiguous frames", ErrNoMemory, n)
	}
	f := a.next
	a.next += need
	return f, nil
}

// Release returns a frame to the allocator (already zeroed by the caller).
func (a *PageAllocator) Release(f mem.PhysAddr) {
	a.free = append(a.free, mem.PageBase(f))
}

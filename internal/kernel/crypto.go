package kernel

import (
	"fmt"
	"sort"
)

// CipherProvider is the kernel Crypto API contract: a named AES-CBC
// implementation with a priority. Mirrors the Linux Crypto API semantics
// the paper relies on: "We register our AES implementation with the API,
// providing it with a higher priority than the default AES implementation"
// — so legacy users (dm-crypt) transparently pick up AES On SoC.
type CipherProvider interface {
	Name() string
	Priority() int
	EncryptCBC(dst, src, iv []byte) error
	DecryptCBC(dst, src, iv []byte) error
}

// CryptoAPI is the provider registry.
type CryptoAPI struct {
	providers []CipherProvider
}

// Register adds a provider.
func (c *CryptoAPI) Register(p CipherProvider) {
	c.providers = append(c.providers, p)
	sort.SliceStable(c.providers, func(i, j int) bool {
		return c.providers[i].Priority() > c.providers[j].Priority()
	})
}

// Unregister removes the provider with the given name.
func (c *CryptoAPI) Unregister(name string) {
	for i, p := range c.providers {
		if p.Name() == name {
			c.providers = append(c.providers[:i], c.providers[i+1:]...)
			return
		}
	}
}

// Best returns the highest-priority provider, or an error if none is
// registered.
func (c *CryptoAPI) Best() (CipherProvider, error) {
	if len(c.providers) == 0 {
		return nil, fmt.Errorf("kernel: no cipher provider registered")
	}
	return c.providers[0], nil
}

// ByName returns a provider by name.
func (c *CryptoAPI) ByName(name string) (CipherProvider, error) {
	for _, p := range c.providers {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("kernel: no cipher provider %q", name)
}

// Providers lists registered providers, highest priority first.
func (c *CryptoAPI) Providers() []CipherProvider {
	out := make([]CipherProvider, len(c.providers))
	copy(out, c.providers)
	return out
}

package kernel

import (
	"bytes"
	"testing"

	"sentry/internal/mem"
)

// readFrame returns the DRAM contents of a physical frame prefix.
func readFrame(k *Kernel, frame mem.PhysAddr, n int) []byte {
	buf := make([]byte, n)
	k.SoC.DRAM.Read(frame, buf)
	return buf
}

// TestSuspendTwiceIsNoOp: a second Suspend while already in S3 must do
// nothing — in particular it must not run cache maintenance, or a dirty
// line created "during suspend" would be flushed by a state the hardware
// is not actually in.
func TestSuspendTwiceIsNoOp(t *testing.T) {
	k, s := boot()
	p := k.NewProcess("app", true, false)
	base, err := k.MapAnon(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	frame := mem.PageBase(p.AS.Lookup(base).Phys)

	k.Suspend()
	if !k.Suspended() {
		t.Fatal("not suspended after Suspend")
	}
	data := []byte("dirty-after-first-suspend")
	if err := s.CPU.Store(base, data); err != nil {
		t.Fatal(err)
	}
	k.Suspend() // no-op: must not clean the new dirty line
	if got := readFrame(k, frame, len(data)); bytes.Equal(got, data) {
		t.Fatal("second Suspend performed cache maintenance (dirty line reached DRAM)")
	}
	s.L2.CleanWays(s.L2.AllWaysMask())
	if got := readFrame(k, frame, len(data)); !bytes.Equal(got, data) {
		t.Fatal("dirty line lost: it was neither in DRAM nor in the cache")
	}
}

// TestWakeWithoutSuspend: waking a device that never suspended is harmless
// for every wake source.
func TestWakeWithoutSuspend(t *testing.T) {
	for _, src := range []WakeSource{WakeUser, WakeIncomingCall, WakeTimer} {
		k, _ := boot()
		k.Wake(src)
		if k.Suspended() {
			t.Fatalf("Wake(%v) left a never-suspended device suspended", src)
		}
		if k.State() != Unlocked {
			t.Fatalf("Wake(%v) changed lock state to %v", src, k.State())
		}
	}
}

// TestIdleLockThreshold: the idle auto-lock fires exactly at the threshold,
// accumulates across calls, resets on interaction, and is disabled at zero.
func TestIdleLockThreshold(t *testing.T) {
	tests := []struct {
		name      string
		threshold float64
		run       func(k *Kernel)
		wantLock  bool
	}{
		{
			name: "below threshold stays unlocked", threshold: 100,
			run:      func(k *Kernel) { k.Idle(99.9) },
			wantLock: false,
		},
		{
			name: "exact threshold locks", threshold: 100,
			run:      func(k *Kernel) { k.Idle(100) },
			wantLock: true,
		},
		{
			name: "idle accumulates", threshold: 100,
			run:      func(k *Kernel) { k.Idle(60); k.Idle(40) },
			wantLock: true,
		},
		{
			name: "interaction resets the timer", threshold: 100,
			run:      func(k *Kernel) { k.Idle(60); k.Interact(); k.Idle(60) },
			wantLock: false,
		},
		{
			name: "zero threshold disables auto-lock", threshold: 0,
			run:      func(k *Kernel) { k.Idle(1e6) },
			wantLock: false,
		},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			k, _ := boot()
			k.IdleLockSeconds = tt.threshold
			tt.run(k)
			locked := k.State() != Unlocked
			if locked != tt.wantLock {
				t.Fatalf("lock state %v after idling, want locked=%v", k.State(), tt.wantLock)
			}
			if locked != k.Suspended() {
				t.Fatalf("idle lock and suspend disagree: locked=%v suspended=%v",
					locked, k.Suspended())
			}
		})
	}
}

// TestSuspendPreservesZeroQueue: suspend must not drain (or drop) the
// freed-page zero queue — Sentry's lock path owns that — and a drain after
// wake still physically zeroes the queued frames.
func TestSuspendPreservesZeroQueue(t *testing.T) {
	k, s := boot()
	p := k.NewProcess("app", true, false)
	base, err := k.MapAnon(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	frame := mem.PageBase(p.AS.Lookup(base).Phys)
	secret := []byte("freed-page-plaintext")
	if err := s.CPU.Store(base, secret); err != nil {
		t.Fatal(err)
	}
	k.UnmapAndFree(p, base)
	if got := k.PendingZeroBytes(); got != mem.PageSize {
		t.Fatalf("pending %d bytes after free, want %d", got, mem.PageSize)
	}

	k.Suspend()
	if got := k.PendingZeroBytes(); got != mem.PageSize {
		t.Fatalf("suspend changed the zero queue: pending %d bytes, want %d", got, mem.PageSize)
	}
	// Suspend's masked clean pushed the freed page's dirty plaintext to
	// DRAM — exactly why lock must wait for the zeroing thread.
	if got := readFrame(k, frame, len(secret)); !bytes.Equal(got, secret) {
		t.Fatal("expected the freed page's plaintext in DRAM after suspend's clean")
	}

	k.Wake(WakeUser)
	k.DrainZeroQueue()
	if got := k.PendingZeroBytes(); got != 0 {
		t.Fatalf("pending %d bytes after drain, want 0", got)
	}
	if got := readFrame(k, frame, len(secret)); !bytes.Equal(got, make([]byte, len(secret))) {
		t.Fatal("drained frame still holds plaintext in DRAM")
	}
}

package kernel

import "testing"

type fakeProvider struct {
	name string
	prio int
}

func (f *fakeProvider) Name() string                         { return f.name }
func (f *fakeProvider) Priority() int                        { return f.prio }
func (f *fakeProvider) EncryptCBC(dst, src, iv []byte) error { return nil }
func (f *fakeProvider) DecryptCBC(dst, src, iv []byte) error { return nil }

func TestCryptoAPIPriorityOrdering(t *testing.T) {
	api := &CryptoAPI{}
	if _, err := api.Best(); err == nil {
		t.Fatal("empty registry returned a provider")
	}
	generic := &fakeProvider{name: "aes-generic", prio: 100}
	onsoc := &fakeProvider{name: "aes-onsoc", prio: 300}
	api.Register(generic)
	best, _ := api.Best()
	if best != generic {
		t.Fatal("single provider not best")
	}
	// The paper: registering AES On SoC at higher priority makes existing
	// Crypto API users pick it up transparently.
	api.Register(onsoc)
	best, _ = api.Best()
	if best != onsoc {
		t.Fatal("higher-priority provider not preferred")
	}
}

func TestCryptoAPIByNameAndUnregister(t *testing.T) {
	api := &CryptoAPI{}
	a := &fakeProvider{name: "a", prio: 1}
	b := &fakeProvider{name: "b", prio: 2}
	api.Register(a)
	api.Register(b)
	got, err := api.ByName("a")
	if err != nil || got != a {
		t.Fatal("ByName failed")
	}
	if _, err := api.ByName("zzz"); err == nil {
		t.Fatal("unknown name resolved")
	}
	api.Unregister("b")
	if best, _ := api.Best(); best != a {
		t.Fatal("unregister did not remove provider")
	}
	if len(api.Providers()) != 1 {
		t.Fatal("providers list wrong")
	}
}

func TestRegisterStableForEqualPriority(t *testing.T) {
	api := &CryptoAPI{}
	first := &fakeProvider{name: "first", prio: 5}
	second := &fakeProvider{name: "second", prio: 5}
	api.Register(first)
	api.Register(second)
	if best, _ := api.Best(); best != first {
		t.Fatal("equal-priority ordering not stable")
	}
}

package kernel

import (
	"bytes"
	"math"
	"testing"

	"sentry/internal/mem"
	"sentry/internal/mmu"
	"sentry/internal/soc"
)

func boot() (*Kernel, *soc.SoC) {
	s := soc.Tegra3(1)
	return New(s, "1234"), s
}

func TestProcessLifecycle(t *testing.T) {
	k, _ := boot()
	p := k.NewProcess("twitter", true, false)
	if p.PID != 1 || !p.Sensitive || p.Background {
		t.Fatalf("proc = %+v", p)
	}
	if k.Current() != p {
		t.Fatal("first process should be current")
	}
	q := k.NewProcess("mp3", true, true)
	if k.Process(q.PID) != q || len(k.Processes()) != 2 {
		t.Fatal("process table wrong")
	}
}

func TestMapAnonAndAccess(t *testing.T) {
	k, s := boot()
	p := k.NewProcess("app", false, false)
	base, err := k.MapAnon(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("z"), 3*mmu.PageSize)
	if err := s.CPU.Store(base, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
}

func TestMapAnonLeavesGuardGap(t *testing.T) {
	k, _ := boot()
	p := k.NewProcess("app", false, false)
	a, _ := k.MapAnon(p, 2)
	b, _ := k.MapAnon(p, 2)
	if b <= a+2*mmu.PageSize {
		t.Fatal("no guard gap between mappings")
	}
}

func TestDefaultYoungBitHandling(t *testing.T) {
	k, s := boot()
	p := k.NewProcess("app", false, false)
	base, _ := k.MapAnon(p, 1)
	p.AS.ClearYoungAll()
	if err := s.CPU.Store(base, []byte{1}); err != nil {
		t.Fatalf("young-bit fault not repaired: %v", err)
	}
	if !p.AS.Lookup(base).Young {
		t.Fatal("young bit not set by handler")
	}
	_ = k
}

func TestFaultHookSeesFaultsFirst(t *testing.T) {
	k, s := boot()
	p := k.NewProcess("app", true, false)
	base, _ := k.MapAnon(p, 1)
	p.AS.ClearYoungAll()
	hooked := 0
	k.FaultHook = func(proc *Process, f *mmu.Fault) bool {
		hooked++
		if proc != p {
			t.Fatal("wrong process in hook")
		}
		proc.AS.Lookup(f.Addr).Young = true
		return true
	}
	if err := s.CPU.Load(base, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if hooked != 1 {
		t.Fatalf("hook ran %d times", hooked)
	}
}

func TestLockStateMachine(t *testing.T) {
	k, s := boot()
	lockRan, unlockRan := 0, 0
	k.OnLock = append(k.OnLock, func() { lockRan++ })
	k.OnUnlock = append(k.OnUnlock, func() { unlockRan++ })

	k.Lock()
	if k.State() != ScreenLocked || lockRan != 1 || !s.ScreenLocked {
		t.Fatal("lock transition wrong")
	}
	k.Lock() // idempotent
	if lockRan != 1 {
		t.Fatal("double lock re-ran hooks")
	}
	if err := k.Unlock("9999"); err == nil {
		t.Fatal("wrong PIN accepted")
	}
	if err := k.Unlock("1234"); err != nil {
		t.Fatal(err)
	}
	if k.State() != Unlocked || unlockRan != 1 || s.ScreenLocked {
		t.Fatal("unlock transition wrong")
	}
}

func TestDeepLockAfterPINFailures(t *testing.T) {
	k, _ := boot()
	k.Lock()
	for i := 0; i < MaxPINAttempts; i++ {
		_ = k.Unlock("0000")
	}
	if k.State() != DeepLocked {
		t.Fatalf("state = %v, want deep-locked", k.State())
	}
	if err := k.Unlock("1234"); err == nil {
		t.Fatal("deep-locked device unlocked with correct PIN")
	}
}

func TestPINFailureCounterResets(t *testing.T) {
	k, _ := boot()
	k.Lock()
	_ = k.Unlock("0000")
	if err := k.Unlock("1234"); err != nil {
		t.Fatal(err)
	}
	k.Lock()
	for i := 0; i < MaxPINAttempts-1; i++ {
		_ = k.Unlock("0000")
	}
	if k.State() == DeepLocked {
		t.Fatal("failure counter did not reset on success")
	}
}

func TestZeroQueueDrain(t *testing.T) {
	k, s := boot()
	p := k.NewProcess("app", true, false)
	base, _ := k.MapAnon(p, 2)
	frame := p.AS.Lookup(base).Phys
	if err := s.CPU.Store(base, bytes.Repeat([]byte{0xEE}, 4096)); err != nil {
		t.Fatal(err)
	}
	s.L2.CleanWays(s.L2.AllWaysMask())
	k.UnmapAndFree(p, base)
	if k.PendingZeroBytes() != mem.PageSize {
		t.Fatalf("pending = %d", k.PendingZeroBytes())
	}

	c0 := s.Clock.Cycles()
	e0 := s.Meter.PJ()
	k.DrainZeroQueue()
	if k.PendingZeroBytes() != 0 {
		t.Fatal("queue not drained")
	}
	if s.DRAM.ByteAt(frame) != 0 {
		t.Fatal("freed page not physically zeroed")
	}
	// Time: 4 KB at 4.014 GB/s.
	wantSec := 4096.0 / 4.014e9
	gotSec := float64(s.Clock.Cycles()-c0) / float64(s.Prof.CPUHz)
	if math.Abs(gotSec-wantSec)/wantSec > 0.01 {
		t.Fatalf("zeroing took %.2e s, want %.2e s", gotSec, wantSec)
	}
	// Energy: 2.8 µJ/MB.
	wantPJ := 4096.0 / (1 << 20) * 2.8e6
	if math.Abs((s.Meter.PJ()-e0)-wantPJ)/wantPJ > 0.01 {
		t.Fatalf("zeroing energy = %v pJ, want %v", s.Meter.PJ()-e0, wantPJ)
	}
}

func TestSharedPages(t *testing.T) {
	k, s := boot()
	a := k.NewProcess("a", true, false)
	b := k.NewProcess("b", true, false)
	base, _ := k.MapAnon(a, 1)
	if err := k.SharePage(a, base, b); err != nil {
		t.Fatal(err)
	}
	if !a.AS.Lookup(base).Shared || !b.AS.Lookup(base).Shared {
		t.Fatal("shared flag missing")
	}
	peers := k.SharedPeers(a, base)
	if len(peers) != 1 || peers[0] != b.PID {
		t.Fatalf("peers = %v", peers)
	}
	// Both map the same frame.
	if a.AS.Lookup(base).Phys != b.AS.Lookup(base).Phys {
		t.Fatal("share did not alias the frame")
	}
	_ = s
}

func TestRunnableBackground(t *testing.T) {
	k, _ := boot()
	k.NewProcess("fg", true, false)
	bg := k.NewProcess("mp3", true, true)
	parked := k.NewProcess("mail", true, true)
	parked.Schedulable = false
	got := k.RunnableBackground()
	if len(got) != 1 || got[0] != bg {
		t.Fatalf("runnable = %v", got)
	}
}

func TestAliasRegionReservedAtTop(t *testing.T) {
	k, s := boot()
	wantSize := uint64(s.Prof.Cache.Ways * s.Prof.Cache.WaySize)
	if k.AliasRegion.Size != wantSize {
		t.Fatalf("alias size = %d", k.AliasRegion.Size)
	}
	if k.AliasRegion.Base+mem.PhysAddr(wantSize) != soc.DRAMBase+mem.PhysAddr(s.Prof.DRAMSize) {
		t.Fatal("alias region not at top of DRAM")
	}
	if uint64(k.AliasRegion.Base)%uint64(s.Prof.Cache.WaySize) != 0 {
		t.Fatal("alias region not way aligned")
	}
	// The page allocator must never hand out alias frames.
	for i := 0; i < 100; i++ {
		f, err := k.Pages().Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if f >= k.AliasRegion.Base {
			t.Fatal("allocator dispensed an alias frame")
		}
	}
}

func TestPageAllocatorReuse(t *testing.T) {
	a := NewPageAllocator(0x80000000, 0x80010000)
	f1, _ := a.Alloc()
	a.Release(f1)
	f2, _ := a.Alloc()
	if f1 != f2 {
		t.Fatal("released frame not reused")
	}
	for {
		if _, err := a.Alloc(); err != nil {
			break // exhaustion must error, not panic
		}
	}
}

func TestContextSwitchBetweenProcesses(t *testing.T) {
	k, s := boot()
	a := k.NewProcess("a", false, false)
	b := k.NewProcess("b", false, false)
	if !k.Switch(b) || k.Current() != b || s.CPU.AS != b.AS {
		t.Fatal("switch to b failed")
	}
	s.CPU.DisableIRQ()
	if k.Switch(a) {
		t.Fatal("switch succeeded with IRQs masked")
	}
	s.CPU.EnableIRQ()
	if !k.Switch(a) {
		t.Fatal("switch failed with IRQs on")
	}
}

func TestLockStateStrings(t *testing.T) {
	for _, s := range []LockState{Unlocked, ScreenLocked, DeepLocked, LockState(9)} {
		if s.String() == "" {
			t.Fatal("empty string")
		}
	}
}

func TestSuspendWakeCycle(t *testing.T) {
	k, s := boot()
	p := k.NewProcess("app", false, false)
	base, _ := k.MapAnon(p, 1)
	_ = s.CPU.Store(base, []byte("still-here"))
	k.Suspend()
	if !k.Suspended() {
		t.Fatal("not suspended")
	}
	k.Suspend() // idempotent
	// DRAM keeps refreshing across S3: the data survives.
	k.Wake(WakeIncomingCall)
	if k.Suspended() {
		t.Fatal("still suspended after wake")
	}
	got := make([]byte, 10)
	if err := s.CPU.Load(base, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "still-here" {
		t.Fatal("suspend lost DRAM contents")
	}
	// Registers do not survive S3.
	s.CPU.Regs[0] = 0x1234
	k.suspended = false
	k.Suspend()
	if s.CPU.Regs[0] != 0 {
		t.Fatal("registers survived suspend")
	}
}

func TestIdleAutoLock(t *testing.T) {
	k, _ := boot()
	k.IdleLockSeconds = 900 // the paper's ~15 minutes
	k.Idle(600)
	if k.State() != Unlocked {
		t.Fatal("locked too early")
	}
	k.Interact()
	k.Idle(600)
	if k.State() != Unlocked {
		t.Fatal("interaction did not reset the idle timer")
	}
	k.Idle(301)
	if k.State() != ScreenLocked || !k.Suspended() {
		t.Fatalf("state=%v suspended=%v after idle threshold", k.State(), k.Suspended())
	}
	// Zero threshold disables auto-lock.
	k2, _ := boot()
	k2.Idle(1e6)
	if k2.State() != Unlocked {
		t.Fatal("auto-lock fired with zero threshold")
	}
}

func TestFlushMaskDefaultsToAllWays(t *testing.T) {
	k, s := boot()
	if k.FlushMask() != s.L2.AllWaysMask() {
		t.Fatal("default flush mask wrong")
	}
	k.FlushMaskFn = func() uint32 { return 0x3 }
	if k.FlushMask() != 0x3 {
		t.Fatal("FlushMaskFn ignored")
	}
}

func TestWakeSourceStrings(t *testing.T) {
	for _, w := range []WakeSource{WakeUser, WakeIncomingCall, WakeTimer, WakeSource(9)} {
		if w.String() == "" {
			t.Fatal("empty wake source string")
		}
	}
}

func TestRegisterSensitiveKernelRange(t *testing.T) {
	k, _ := boot()
	k.RegisterSensitiveKernelRange("keyring", Range{Base: 0x80001000, Size: 8192})
	if len(k.SensitiveKernelRanges) != 1 || k.SensitiveKernelRanges[0].Name != "keyring" {
		t.Fatal("range not registered")
	}
}

package kernel

import (
	"errors"
	"testing"

	"sentry/internal/soc"
)

// FuzzUnlockPIN drives the lock/unlock state machine with arbitrary PIN
// strings and op sequences, checking it against an independent model: the
// real kernel must agree with the model on lock state and failure count
// after every step, never panic, and never leave DeepLocked short of a
// power cycle.
func FuzzUnlockPIN(f *testing.F) {
	f.Add([]byte{0, 1})                               // lock, correct unlock
	f.Add([]byte{0, 2, 2, 2, 2, 2, 1})                // five failures -> deep lock
	f.Add([]byte{0, 3, 4, 'x', 0, 1})                 // arbitrary pin then re-lock
	f.Add([]byte{5, 0, 5, 5})                         // empty pins
	f.Add([]byte{0, 3, 4, '4', '3', '2', '1', 0, 2})  // correct pin via arbitrary bytes
	f.Fuzz(func(t *testing.T, data []byte) {
		const pin = "4321"
		s := soc.Tegra3(1)
		k := New(s, pin)

		// The independent model.
		state := Unlocked
		failures := 0
		modelUnlock := func(attempt string) {
			switch state {
			case Unlocked, DeepLocked:
				return
			}
			if attempt == pin {
				state = Unlocked
				failures = 0
				return
			}
			failures++
			if failures >= MaxPINAttempts {
				state = DeepLocked
			}
		}

		for i := 0; i < len(data); i++ {
			switch data[i] % 6 {
			case 0:
				k.Lock()
				if state == Unlocked {
					state = ScreenLocked
				}
			case 1:
				err := k.Unlock(pin)
				wasDeep := state == DeepLocked
				modelUnlock(pin)
				if wasDeep {
					if !errors.Is(err, ErrLocked) {
						t.Fatalf("step %d: deep-locked unlock returned %v, want ErrLocked", i, err)
					}
				} else if err != nil {
					t.Fatalf("step %d: correct PIN rejected: %v", i, err)
				}
			case 2:
				err := k.Unlock("9999")
				wasLocked := state == ScreenLocked
				modelUnlock("9999")
				if wasLocked && !errors.Is(err, ErrBadPIN) {
					t.Fatalf("step %d: wrong PIN returned %v, want ErrBadPIN", i, err)
				}
			case 3:
				// Arbitrary attempt string drawn from the input itself.
				if i+1 >= len(data) {
					break
				}
				n := int(data[i+1]) % 8
				end := i + 2 + n
				if end > len(data) {
					end = len(data)
				}
				attempt := string(data[i+2 : end])
				_ = k.Unlock(attempt)
				modelUnlock(attempt)
				i = end - 1
			case 4:
				k.Lock()
				if state == Unlocked {
					state = ScreenLocked
				}
				err := k.Unlock(pin)
				wasDeep := state == DeepLocked
				modelUnlock(pin)
				if !wasDeep && err != nil {
					t.Fatalf("step %d: correct PIN rejected: %v", i, err)
				}
			case 5:
				_ = k.Unlock("")
				modelUnlock("")
			}
			if k.State() != state {
				t.Fatalf("step %d: kernel state %v, model %v", i, k.State(), state)
			}
			if k.pinFailures != failures {
				t.Fatalf("step %d: kernel failures %d, model %d", i, k.pinFailures, failures)
			}
		}
	})
}

package bus

import (
	"bytes"
	"testing"

	"sentry/internal/mem"
	"sentry/internal/sim"
)

func testBus() (*Bus, *sim.Clock, *sim.Meter) {
	clock := sim.NewClock(1e9)
	meter := &sim.Meter{}
	costs := &sim.CostTable{DRAMAccess: 10}
	energy := &sim.EnergyTable{DRAMAccessPJ: 100}
	dram := mem.NewDevice("dram", mem.TechDRAM, 0x80000000, 1<<24)
	return New(clock, meter, costs, energy, mem.NewMap(dram)), clock, meter
}

type recorder struct{ txs []Transaction }

func (r *recorder) Observe(tx Transaction) { r.txs = append(r.txs, tx) }

func TestBusReadWriteRoundTrip(t *testing.T) {
	b, _, _ := testBus()
	data := []byte("hello-bus")
	b.WriteFrom("test", 0x80000100, data)
	got := make([]byte, len(data))
	b.ReadInto("test", 0x80000100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestBusChargesTimeAndEnergy(t *testing.T) {
	b, clock, meter := testBus()
	b.WriteFrom("test", 0x80000000, make([]byte, 32)) // 8 words
	if clock.Cycles() != 80 {
		t.Fatalf("cycles = %d, want 80", clock.Cycles())
	}
	if meter.PJ() != 800 {
		t.Fatalf("energy = %v pJ, want 800", meter.PJ())
	}
}

func TestBusMonitorSeesEverything(t *testing.T) {
	b, _, _ := testBus()
	rec := &recorder{}
	b.Attach(rec)
	b.WriteFrom("l2", 0x80000000, []byte{1, 2, 3, 4})
	b.ReadInto("dma0", 0x80000000, make([]byte, 4))
	if len(rec.txs) != 2 {
		t.Fatalf("monitor saw %d txs, want 2", len(rec.txs))
	}
	if rec.txs[0].Op != Write || rec.txs[0].Initiator != "l2" {
		t.Fatalf("tx0 = %+v", rec.txs[0])
	}
	if rec.txs[1].Op != Read || !bytes.Equal(rec.txs[1].Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("tx1 = %+v", rec.txs[1])
	}
}

func TestBusMonitorGetsCopy(t *testing.T) {
	b, _, _ := testBus()
	rec := &recorder{}
	b.Attach(rec)
	buf := []byte{9, 9}
	b.WriteFrom("x", 0x80000000, buf)
	buf[0] = 0
	if rec.txs[0].Data[0] != 9 {
		t.Fatal("monitor data aliases caller buffer")
	}
}

func TestBusDetach(t *testing.T) {
	b, _, _ := testBus()
	rec := &recorder{}
	b.Attach(rec)
	b.Detach(rec)
	b.WriteFrom("x", 0x80000000, []byte{1})
	if len(rec.txs) != 0 {
		t.Fatal("detached monitor still observing")
	}
}

func TestBusStats(t *testing.T) {
	b, _, _ := testBus()
	b.WriteFrom("x", 0x80000000, make([]byte, 10))
	b.ReadInto("x", 0x80000000, make([]byte, 6))
	s := b.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.BytesWrote != 10 || s.BytesRead != 6 {
		t.Fatalf("stats = %+v", s)
	}
	b.ResetStats()
	if b.Stats() != (Stats{}) {
		t.Fatal("ResetStats failed")
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Op.String")
	}
}

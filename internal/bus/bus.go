// Package bus models the external memory bus between the SoC and the DRAM
// chips. Every transaction that leaves the SoC package — L2 line fills and
// write-backs, uncached CPU accesses, DMA transfers — crosses this bus and
// is therefore observable by a physically attached bus monitor (the probe
// attack of §3.1 of the paper). Traffic that stays on-SoC (iRAM accesses,
// cache hits) never appears here, which is precisely the property Sentry's
// on-SoC storage exploits.
package bus

import (
	"sync"

	"sentry/internal/mem"
	"sentry/internal/obs"
	"sentry/internal/sim"
)

// Op is a bus transaction direction.
type Op int

// Bus operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Transaction is one observable transfer on the external bus. Data is a
// copy; monitors may retain it.
type Transaction struct {
	Cycle     uint64
	Op        Op
	Addr      mem.PhysAddr
	Data      []byte
	Initiator string // "l2", "cpu-uncached", "dma0", ...
}

// Monitor receives every transaction on the bus. Implementations must not
// block; they model passive probes.
type Monitor interface {
	Observe(tx Transaction)
}

// Stats aggregates bus traffic counters.
type Stats struct {
	Reads      uint64
	Writes     uint64
	BytesRead  uint64
	BytesWrote uint64
}

// Bus is the external memory bus. It forwards transfers to the devices in
// its address map, charges time and energy, and fans transactions out to
// attached monitors.
type Bus struct {
	mu       sync.Mutex
	clock    *sim.Clock
	meter    *sim.Meter
	costs    *sim.CostTable
	energy   *sim.EnergyTable
	devices  *mem.Map
	monitors []Monitor
	stats    Stats

	// Observability: all nil (and nil-safe) until SetObs wires them.
	trace      *obs.Tracer
	ctrReads   *obs.Counter
	ctrWrites  *obs.Counter
	ctrRdBytes *obs.Counter
	ctrWrBytes *obs.Counter
}

// New returns a bus over the given device map, charging the given cost and
// energy tables.
func New(clock *sim.Clock, meter *sim.Meter, costs *sim.CostTable, energy *sim.EnergyTable, devices *mem.Map) *Bus {
	return &Bus{clock: clock, meter: meter, costs: costs, energy: energy, devices: devices}
}

// Devices returns the bus's address map (the off-SoC devices).
func (b *Bus) Devices() *mem.Map { return b.devices }

// SetObs wires the observability layer. Either argument may be nil; the
// emit points are nil-gated so a disabled layer costs one branch.
func (b *Bus) SetObs(tr *obs.Tracer, reg *obs.Registry) {
	b.mu.Lock()
	b.trace = tr
	b.ctrReads = reg.Counter("bus.reads")
	b.ctrWrites = reg.Counter("bus.writes")
	b.ctrRdBytes = reg.Counter("bus.bytes_read")
	b.ctrWrBytes = reg.Counter("bus.bytes_wrote")
	b.mu.Unlock()
}

// Attach adds a monitor. Attaching a probe requires physical access; the
// attack packages call this to model the adversary.
func (b *Bus) Attach(m Monitor) {
	b.mu.Lock()
	b.monitors = append(b.monitors, m)
	b.mu.Unlock()
}

// Detach removes a previously attached monitor.
func (b *Bus) Detach(m Monitor) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, x := range b.monitors {
		if x == m {
			b.monitors = append(b.monitors[:i], b.monitors[i+1:]...)
			return
		}
	}
}

// Stats returns a snapshot of the traffic counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// ResetStats zeroes the traffic counters.
func (b *Bus) ResetStats() {
	b.mu.Lock()
	b.stats = Stats{}
	b.mu.Unlock()
}

func (b *Bus) charge(nbytes int) {
	words := uint64((nbytes + 3) / 4)
	b.clock.Advance(words * b.costs.DRAMAccess)
	b.meter.Charge(float64(words) * b.energy.DRAMAccessPJ)
}

func (b *Bus) observe(op Op, initiator string, addr mem.PhysAddr, data []byte) {
	b.mu.Lock()
	if op == Read {
		b.stats.Reads++
		b.stats.BytesRead += uint64(len(data))
		b.ctrReads.Inc()
		b.ctrRdBytes.Add(uint64(len(data)))
	} else {
		b.stats.Writes++
		b.stats.BytesWrote += uint64(len(data))
		b.ctrWrites.Inc()
		b.ctrWrBytes.Add(uint64(len(data)))
	}
	mons := b.monitors
	tr := b.trace
	b.mu.Unlock()
	if tr != nil {
		tr.Emit(obs.Event{
			Cycle: b.clock.Cycles(),
			Kind:  obs.KindBusTxn,
			Addr:  uint64(addr),
			Size:  uint64(len(data)),
			Arg:   uint64(op),
			Label: initiator,
		})
	}
	if len(mons) == 0 {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	tx := Transaction{Cycle: b.clock.Cycles(), Op: op, Addr: addr, Data: cp, Initiator: initiator}
	for _, m := range mons {
		m.Observe(tx)
	}
}

// ReadInto performs a bus read of len(dst) bytes at addr on behalf of
// initiator, filling dst.
func (b *Bus) ReadInto(initiator string, addr mem.PhysAddr, dst []byte) {
	d := b.devices.MustFind(addr)
	d.Read(addr, dst)
	b.charge(len(dst))
	b.observe(Read, initiator, addr, dst)
}

// WriteFrom performs a bus write of src at addr on behalf of initiator.
func (b *Bus) WriteFrom(initiator string, addr mem.PhysAddr, src []byte) {
	d := b.devices.MustFind(addr)
	d.Write(addr, src)
	b.charge(len(src))
	b.observe(Write, initiator, addr, src)
}

// Package bus models the external memory bus between the SoC and the DRAM
// chips. Every transaction that leaves the SoC package — L2 line fills and
// write-backs, uncached CPU accesses, DMA transfers — crosses this bus and
// is therefore observable by a physically attached bus monitor (the probe
// attack of §3.1 of the paper). Traffic that stays on-SoC (iRAM accesses,
// cache hits) never appears here, which is precisely the property Sentry's
// on-SoC storage exploits.
package bus

import (
	"sentry/internal/mem"
	"sentry/internal/obs"
	"sentry/internal/sim"
)

// Op is a bus transaction direction.
type Op int

// Bus operations.
const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Transaction is one observable transfer on the external bus. Data is a
// copy; monitors may retain it.
type Transaction struct {
	Cycle     uint64
	Op        Op
	Addr      mem.PhysAddr
	Data      []byte
	Initiator string // "l2", "cpu-uncached", "dma0", ...
}

// Monitor receives every transaction on the bus. Implementations must not
// block; they model passive probes.
type Monitor interface {
	Observe(tx Transaction)
}

// FaultInjector perturbs write transactions in flight. It is consulted only
// when one is attached (a single nil check otherwise), mirroring the
// slow-path gating of the observability layer.
type FaultInjector interface {
	// FilterWrite returns how many leading bytes of data actually reach the
	// device, in [0, len(data)]. Fewer than len(data) models a torn write:
	// power loss or a glitch interrupting the burst mid-transfer.
	FilterWrite(addr mem.PhysAddr, data []byte) int
}

// Stats aggregates bus traffic counters.
type Stats struct {
	Reads      uint64
	Writes     uint64
	BytesRead  uint64
	BytesWrote uint64
}

// Bus is the external memory bus. It forwards transfers to the devices in
// its address map, charges time and energy, and fans transactions out to
// attached monitors.
//
// A Bus belongs to exactly one platform and, like sim.Clock, is owned by a
// single goroutine (bench.RunAll isolates concurrent experiments with
// per-experiment platforms). observe is on the critical path of every
// off-SoC transfer, so the stats and monitor list are deliberately
// unsynchronised.
type Bus struct {
	clock    *sim.Clock
	meter    *sim.Meter
	costs    *sim.CostTable
	energy   *sim.EnergyTable
	devices  *mem.Map
	monitors []Monitor
	stats    Stats

	// dev caches the last device hit: bursts stream within one device, so
	// the map search is skipped on nearly every transfer. The cache is
	// revalidated by range check on every access, so it stays correct even
	// if devices are added later.
	dev *mem.Device

	// slow is true when any observer — tracer, counters, or monitors — is
	// attached; the transfer fast path checks just this one bool.
	slow bool

	// faults is nil unless a fault injector is attached.
	faults FaultInjector

	// Observability: all nil (and nil-safe) until SetObs wires them.
	trace      *obs.Tracer
	ctrReads   *obs.Counter
	ctrWrites  *obs.Counter
	ctrRdBytes *obs.Counter
	ctrWrBytes *obs.Counter
}

// New returns a bus over the given device map, charging the given cost and
// energy tables.
func New(clock *sim.Clock, meter *sim.Meter, costs *sim.CostTable, energy *sim.EnergyTable, devices *mem.Map) *Bus {
	return &Bus{clock: clock, meter: meter, costs: costs, energy: energy, devices: devices}
}

// Devices returns the bus's address map (the off-SoC devices).
func (b *Bus) Devices() *mem.Map { return b.devices }

// Clone returns a bus over the given clock, meter, and device map carrying
// this bus's traffic counters. Cost and energy tables are shared (they are
// immutable); monitors, fault injectors, and observability wiring are not
// carried — a forked world re-attaches its own.
func (b *Bus) Clone(clock *sim.Clock, meter *sim.Meter, devices *mem.Map) *Bus {
	n := New(clock, meter, b.costs, b.energy, devices)
	n.stats = b.stats
	return n
}

// SetObs wires the observability layer. Either argument may be nil; the
// emit points are nil-gated so a disabled layer costs one branch.
func (b *Bus) SetObs(tr *obs.Tracer, reg *obs.Registry) {
	b.trace = tr
	b.ctrReads = reg.Counter("bus.reads")
	b.ctrWrites = reg.Counter("bus.writes")
	b.ctrRdBytes = reg.Counter("bus.bytes_read")
	b.ctrWrBytes = reg.Counter("bus.bytes_wrote")
	b.reslow()
}

// reslow recomputes the slow-path gate after observer wiring changes.
func (b *Bus) reslow() {
	b.slow = b.trace != nil || b.ctrReads != nil || len(b.monitors) > 0
}

// SetFaults attaches (or, with nil, detaches) a fault injector.
func (b *Bus) SetFaults(f FaultInjector) { b.faults = f }

// Attach adds a monitor. Attaching a probe requires physical access; the
// attack packages call this to model the adversary.
func (b *Bus) Attach(m Monitor) {
	b.monitors = append(b.monitors, m)
	b.reslow()
}

// Detach removes a previously attached monitor.
func (b *Bus) Detach(m Monitor) {
	for i, x := range b.monitors {
		if x == m {
			b.monitors = append(b.monitors[:i], b.monitors[i+1:]...)
			b.reslow()
			return
		}
	}
}

// Stats returns a snapshot of the traffic counters.
func (b *Bus) Stats() Stats {
	return b.stats
}

// ResetStats zeroes the traffic counters.
func (b *Bus) ResetStats() {
	b.stats = Stats{}
}

func (b *Bus) charge(nbytes int) {
	words := uint64((nbytes + 3) / 4)
	b.clock.Advance(words * b.costs.DRAMAccess)
	b.meter.Charge(float64(words) * b.energy.DRAMAccessPJ)
}

// observe runs the slow observability path: counters, trace events, and
// monitor fan-out. The raw Stats increments happen inline in the transfer
// fast path; this is only reached when b.slow is set.
func (b *Bus) observe(op Op, initiator string, addr mem.PhysAddr, data []byte) {
	if op == Read {
		if b.ctrReads != nil {
			b.ctrReads.Inc()
			b.ctrRdBytes.Add(uint64(len(data)))
		}
	} else {
		if b.ctrWrites != nil {
			b.ctrWrites.Inc()
			b.ctrWrBytes.Add(uint64(len(data)))
		}
	}
	if tr := b.trace; tr != nil {
		tr.Emit(obs.Event{
			Cycle: b.clock.Cycles(),
			Kind:  obs.KindBusTxn,
			Addr:  uint64(addr),
			Size:  uint64(len(data)),
			Arg:   uint64(op),
			Label: initiator,
		})
	}
	if len(b.monitors) == 0 {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	tx := Transaction{Cycle: b.clock.Cycles(), Op: op, Addr: addr, Data: cp, Initiator: initiator}
	for _, m := range b.monitors {
		m.Observe(tx)
	}
}

// find returns the device containing addr, consulting the one-entry device
// cache before falling back to the map search.
func (b *Bus) find(addr mem.PhysAddr) *mem.Device {
	if d := b.dev; d != nil && d.Contains(addr) {
		return d
	}
	d := b.devices.MustFind(addr)
	b.dev = d
	return d
}

// ReadInto performs a bus read of len(dst) bytes at addr on behalf of
// initiator, filling dst.
func (b *Bus) ReadInto(initiator string, addr mem.PhysAddr, dst []byte) {
	b.find(addr).Read(addr, dst)
	b.charge(len(dst))
	b.stats.Reads++
	b.stats.BytesRead += uint64(len(dst))
	if b.slow {
		b.observe(Read, initiator, addr, dst)
	}
}

// WriteFrom performs a bus write of src at addr on behalf of initiator.
// With a fault injector attached the write may be torn: only a prefix
// reaches the device (and the charge, stats, and monitors see the prefix —
// the rest of the burst never happened).
func (b *Bus) WriteFrom(initiator string, addr mem.PhysAddr, src []byte) {
	if f := b.faults; f != nil {
		if n := f.FilterWrite(addr, src); n < len(src) {
			src = src[:max(n, 0)]
		}
	}
	b.find(addr).Write(addr, src)
	b.charge(len(src))
	b.stats.Writes++
	b.stats.BytesWrote += uint64(len(src))
	if b.slow {
		b.observe(Write, initiator, addr, src)
	}
}

package aes

import "testing"

// TestTable4Breakdown checks every cell of the paper's Table 4 against the
// implementation-derived accounting.
func TestTable4Breakdown(t *testing.T) {
	want := map[string][3]int{ // AES-128, AES-192, AES-256
		"Input block":    {16, 16, 16},
		"Key":            {16, 24, 32},
		"Round Index":    {1, 1, 1},
		"Round Keys":     {320, 368, 416},
		"2 Round Tables": {2048, 2048, 2048},
		"2 S-box":        {512, 512, 512},
		"Rcon":           {40, 40, 40},
		"Block Index":    {1, 1, 1},
		"CBC block/ivec": {16, 16, 16},
	}
	for i, bits := range []int{128, 192, 256} {
		rows := StateBreakdown(bits)
		if len(rows) != len(want) {
			t.Fatalf("breakdown has %d rows, want %d", len(rows), len(want))
		}
		for _, r := range rows {
			w, ok := want[r.Name]
			if !ok {
				t.Fatalf("unexpected row %q", r.Name)
			}
			if r.Bytes != w[i] {
				t.Errorf("AES-%d %s = %d bytes, want %d", bits, r.Name, r.Bytes, w[i])
			}
		}
	}
}

func TestTable4Totals(t *testing.T) {
	// "Summing up the sizes of each piece of state leads to 2970 bytes of
	// state for implementing encryption and decryption in AES-128."
	if got := TotalState(128); got != 2970 {
		t.Fatalf("AES-128 total = %d, want 2970", got)
	}
	if got := TotalState(192); got != 3026 {
		t.Fatalf("AES-192 total = %d, want 3026", got)
	}
	if got := TotalState(256); got != 3082 {
		t.Fatalf("AES-256 total = %d, want 3082", got)
	}
}

func TestTable4SensitivitySplit(t *testing.T) {
	// "the OpenSSL AES-128 implementation has 352 bytes of secret state,
	// 2600 bytes of access-protected state, and 18 bytes of public state."
	got := TotalBySensitivity(128)
	if got[Secret] != 352 {
		t.Errorf("secret = %d, want 352", got[Secret])
	}
	if got[AccessProtected] != 2600 {
		t.Errorf("access-protected = %d, want 2600", got[AccessProtected])
	}
	if got[Public] != 18 {
		t.Errorf("public = %d, want 18", got[Public])
	}
}

func TestStateBreakdownBadKeySize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StateBreakdown(100)
}

func TestSensitivityStrings(t *testing.T) {
	if Secret.String() != "Secret" || Public.String() != "Public" ||
		AccessProtected.String() != "Access-protected" || Sensitivity(9).String() != "Unknown" {
		t.Fatal("sensitivity strings wrong")
	}
}

func TestScheduleViolationsAndReconstruction(t *testing.T) {
	key := []byte("0123456789abcdef")
	c, _ := NewCipher(key)
	w := make([]uint32, 44)
	copy(w, c.EncSchedule())
	if ScheduleViolations(w) != 0 || !ScheduleRelationHolds(w) {
		t.Fatal("pristine schedule flagged")
	}
	// Damage a middle word: a couple of relations break, and the
	// reconstruction still returns the key.
	w[20] ^= 0xFFFF
	if v := ScheduleViolations(w); v == 0 || v > 3 {
		t.Fatalf("violations = %d", v)
	}
	got, ok := ReconstructKeyFromDamagedSchedule(w, 33)
	if !ok {
		t.Fatal("reconstruction failed")
	}
	for i := range key {
		if got[i] != key[i] {
			t.Fatal("wrong key reconstructed")
		}
	}
	// Damage the key words themselves: a later anchor must still work.
	copy(w, c.EncSchedule())
	w[0] ^= 0xDEAD
	w[2] ^= 0xBEEF
	got, ok = ReconstructKeyFromDamagedSchedule(w, 33)
	if !ok {
		t.Fatal("reconstruction through damaged key words failed")
	}
	for i := range key {
		if got[i] != key[i] {
			t.Fatal("wrong key from backward reconstruction")
		}
	}
	if ScheduleViolations(w[:10]) != 44 {
		t.Fatal("short input not rejected")
	}
	if _, ok := ReconstructKeyFromDamagedSchedule(w[:10], 33); ok {
		t.Fatal("short input reconstructed")
	}
}

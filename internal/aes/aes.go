// Package aes is a from-scratch implementation of the Advanced Encryption
// Standard (FIPS 197) with CBC chaining, written so that every piece of
// cipher state has an explicit, accountable location. It exists because
// Sentry cannot use an off-the-shelf library: a generic implementation
// scatters key schedules and lookup tables through DRAM and passes secrets
// on the stack, and Sentry's whole point is controlling exactly where that
// state lives (§6 of the paper).
//
// Two execution forms are provided:
//
//   - Cipher: the reference form with state in host memory. Used for
//     validation (it is tested byte-for-byte against crypto/aes) and as the
//     data-transformation engine behind bulk cost-modelled encryption.
//   - PlacedCipher (placed.go): the same algorithm with every piece of
//     state resident in *simulated* memory through a Store, so the memory
//     system observes exactly the traffic a real implementation generates.
package aes

import (
	stdaes "crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySizeError reports an unsupported key length.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("aes: invalid key size %d (want 16, 24, or 32)", int(k))
}

// rounds returns Nr for a key of n bytes, or 0 if unsupported.
func rounds(keyLen int) int {
	switch keyLen {
	case 16:
		return 10
	case 24:
		return 12
	case 32:
		return 14
	}
	return 0
}

// expandKey computes the encryption schedule (4·(Nr+1) words) and the
// equivalent-inverse-cipher decryption schedule from key.
func expandKey(key []byte) (enc, dec []uint32) {
	nk := len(key) / 4
	nr := rounds(len(key))
	n := 4 * (nr + 1)
	enc = make([]uint32, n)
	for i := 0; i < nk; i++ {
		enc[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := nk; i < n; i++ {
		t := enc[i-1]
		switch {
		case i%nk == 0:
			t = subWord(t<<8|t>>24) ^ rcon[i/nk-1]
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		enc[i] = enc[i-nk] ^ t
	}
	// Decryption schedule: reverse round order; apply InvMixColumns to all
	// but the first and last round keys.
	dec = make([]uint32, n)
	for i := 0; i < n; i += 4 {
		for j := 0; j < 4; j++ {
			w := enc[n-4-i+j]
			if i > 0 && i < n-4 {
				w = invMixColumnsWord(w)
			}
			dec[i+j] = w
		}
	}
	return enc, dec
}

// Cipher is the reference AES implementation. It implements the same
// Encrypt/Decrypt/BlockSize contract as crypto/cipher.Block.
//
// Cipher transforms data in *host* memory — it is the engine behind the
// bulk cost-modelled paths, where simulated-memory traffic is charged
// separately through Touch. Its block operations therefore delegate to
// crypto/aes (hardware AES where available) for raw speed; the output is
// byte-identical, and the from-scratch tables below remain the ground truth
// for PlacedCipher, which is the form whose state placement the simulation
// observes.
type Cipher struct {
	nr  int
	enc []uint32
	dec []uint32
	std cipher.Block // fast host-side block transform; same bytes out
}

// NewCipher returns an AES cipher for a 16-, 24-, or 32-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	nr := rounds(len(key))
	if nr == 0 {
		return nil, KeySizeError(len(key))
	}
	enc, dec := expandKey(key)
	std, err := stdaes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Cipher{nr: nr, enc: enc, dec: dec, std: std}, nil
}

// BlockSize returns the AES block size (16).
func (c *Cipher) BlockSize() int { return BlockSize }

// Rounds returns the number of rounds (10, 12, or 14).
func (c *Cipher) Rounds() int { return c.nr }

// EncSchedule exposes the encryption key schedule; the cold-boot key-finder
// attack and the placed cipher both need it.
func (c *Cipher) EncSchedule() []uint32 { return c.enc }

// Encrypt encrypts one 16-byte block. dst and src may overlap entirely or
// not at all.
func (c *Cipher) Encrypt(dst, src []byte) {
	if c.std != nil {
		c.std.Encrypt(dst, src)
		return
	}
	c.encryptGeneric(dst, src)
}

// encryptGeneric is the from-scratch T-table form; it must agree with the
// delegated path bit-for-bit (aes_test cross-checks both against crypto/aes).
func (c *Cipher) encryptGeneric(dst, src []byte) {
	s0 := binary.BigEndian.Uint32(src[0:]) ^ c.enc[0]
	s1 := binary.BigEndian.Uint32(src[4:]) ^ c.enc[1]
	s2 := binary.BigEndian.Uint32(src[8:]) ^ c.enc[2]
	s3 := binary.BigEndian.Uint32(src[12:]) ^ c.enc[3]
	k := 4
	for r := 1; r < c.nr; r++ {
		t0 := te[s0>>24] ^ ror(te[s1>>16&0xFF], 8) ^ ror(te[s2>>8&0xFF], 16) ^ ror(te[s3&0xFF], 24) ^ c.enc[k]
		t1 := te[s1>>24] ^ ror(te[s2>>16&0xFF], 8) ^ ror(te[s3>>8&0xFF], 16) ^ ror(te[s0&0xFF], 24) ^ c.enc[k+1]
		t2 := te[s2>>24] ^ ror(te[s3>>16&0xFF], 8) ^ ror(te[s0>>8&0xFF], 16) ^ ror(te[s1&0xFF], 24) ^ c.enc[k+2]
		t3 := te[s3>>24] ^ ror(te[s0>>16&0xFF], 8) ^ ror(te[s1>>8&0xFF], 16) ^ ror(te[s2&0xFF], 24) ^ c.enc[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
	u0 := sboxWord(s0, s1, s2, s3) ^ c.enc[k]
	u1 := sboxWord(s1, s2, s3, s0) ^ c.enc[k+1]
	u2 := sboxWord(s2, s3, s0, s1) ^ c.enc[k+2]
	u3 := sboxWord(s3, s0, s1, s2) ^ c.enc[k+3]
	binary.BigEndian.PutUint32(dst[0:], u0)
	binary.BigEndian.PutUint32(dst[4:], u1)
	binary.BigEndian.PutUint32(dst[8:], u2)
	binary.BigEndian.PutUint32(dst[12:], u3)
}

// sboxWord assembles a final-round word from the s-box of the shifted rows.
func sboxWord(a, b, c, d uint32) uint32 {
	return uint32(sbox[a>>24])<<24 | uint32(sbox[b>>16&0xFF])<<16 |
		uint32(sbox[c>>8&0xFF])<<8 | uint32(sbox[d&0xFF])
}

// Decrypt decrypts one 16-byte block. dst and src may overlap entirely or
// not at all.
func (c *Cipher) Decrypt(dst, src []byte) {
	if c.std != nil {
		c.std.Decrypt(dst, src)
		return
	}
	c.decryptGeneric(dst, src)
}

func (c *Cipher) decryptGeneric(dst, src []byte) {
	s0 := binary.BigEndian.Uint32(src[0:]) ^ c.dec[0]
	s1 := binary.BigEndian.Uint32(src[4:]) ^ c.dec[1]
	s2 := binary.BigEndian.Uint32(src[8:]) ^ c.dec[2]
	s3 := binary.BigEndian.Uint32(src[12:]) ^ c.dec[3]
	k := 4
	for r := 1; r < c.nr; r++ {
		t0 := td[s0>>24] ^ ror(td[s3>>16&0xFF], 8) ^ ror(td[s2>>8&0xFF], 16) ^ ror(td[s1&0xFF], 24) ^ c.dec[k]
		t1 := td[s1>>24] ^ ror(td[s0>>16&0xFF], 8) ^ ror(td[s3>>8&0xFF], 16) ^ ror(td[s2&0xFF], 24) ^ c.dec[k+1]
		t2 := td[s2>>24] ^ ror(td[s1>>16&0xFF], 8) ^ ror(td[s0>>8&0xFF], 16) ^ ror(td[s3&0xFF], 24) ^ c.dec[k+2]
		t3 := td[s3>>24] ^ ror(td[s2>>16&0xFF], 8) ^ ror(td[s1>>8&0xFF], 16) ^ ror(td[s0&0xFF], 24) ^ c.dec[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	u0 := invSboxWord(s0, s3, s2, s1) ^ c.dec[k]
	u1 := invSboxWord(s1, s0, s3, s2) ^ c.dec[k+1]
	u2 := invSboxWord(s2, s1, s0, s3) ^ c.dec[k+2]
	u3 := invSboxWord(s3, s2, s1, s0) ^ c.dec[k+3]
	binary.BigEndian.PutUint32(dst[0:], u0)
	binary.BigEndian.PutUint32(dst[4:], u1)
	binary.BigEndian.PutUint32(dst[8:], u2)
	binary.BigEndian.PutUint32(dst[12:], u3)
}

func invSboxWord(a, b, c, d uint32) uint32 {
	return uint32(invSbox[a>>24])<<24 | uint32(invSbox[b>>16&0xFF])<<16 |
		uint32(invSbox[c>>8&0xFF])<<8 | uint32(invSbox[d&0xFF])
}

// EncryptCBC encrypts src (a multiple of BlockSize) into dst in CBC mode —
// the mode Sentry, Android, and Linux default to. dst and src may overlap
// entirely or not at all (the in-place form is what encrypt-on-lock uses).
func (c *Cipher) EncryptCBC(dst, src, iv []byte) error {
	if err := checkCBCArgs(dst, src, iv); err != nil {
		return err
	}
	if c.std != nil {
		// Whole-buffer chaining in one call: the per-block Go loop (chain
		// XOR + copies) costs more than the block cipher itself on the bulk
		// encrypt-on-lock path.
		cipher.NewCBCEncrypter(c.std, iv).CryptBlocks(dst[:len(src)], src)
		return nil
	}
	var chain [BlockSize]byte
	copy(chain[:], iv)
	for off := 0; off < len(src); off += BlockSize {
		var in [BlockSize]byte
		for i := 0; i < BlockSize; i++ {
			in[i] = src[off+i] ^ chain[i]
		}
		c.Encrypt(dst[off:off+BlockSize], in[:])
		copy(chain[:], dst[off:off+BlockSize])
	}
	return nil
}

// DecryptCBC decrypts src (a multiple of BlockSize) into dst in CBC mode.
// dst and src may overlap entirely or not at all.
func (c *Cipher) DecryptCBC(dst, src, iv []byte) error {
	if err := checkCBCArgs(dst, src, iv); err != nil {
		return err
	}
	if c.std != nil {
		cipher.NewCBCDecrypter(c.std, iv).CryptBlocks(dst[:len(src)], src)
		return nil
	}
	var chain, next [BlockSize]byte
	copy(chain[:], iv)
	for off := 0; off < len(src); off += BlockSize {
		copy(next[:], src[off:off+BlockSize])
		c.Decrypt(dst[off:off+BlockSize], src[off:off+BlockSize])
		for i := 0; i < BlockSize; i++ {
			dst[off+i] ^= chain[i]
		}
		chain = next
	}
	return nil
}

func checkCBCArgs(dst, src, iv []byte) error {
	if len(src)%BlockSize != 0 {
		return fmt.Errorf("aes: CBC input length %d is not a multiple of the block size", len(src))
	}
	if len(dst) < len(src) {
		return fmt.Errorf("aes: CBC output shorter than input")
	}
	if len(iv) != BlockSize {
		return fmt.Errorf("aes: CBC IV length %d, want %d", len(iv), BlockSize)
	}
	return nil
}

package aes

import "encoding/binary"

// This file implements the *placed* AES: the same cipher as Cipher, but
// with every table, round key, index, and staging block resident in a Store
// — an arena of simulated memory. Where that arena lives decides what an
// attacker sees:
//
//   - arena in DRAM  → every table lookup is (potentially) bus-visible and
//     the key schedule is recoverable by cold boot: the generic-AES baseline.
//   - arena in iRAM or a locked L2 way → nothing crosses the SoC boundary:
//     the paper's AES On SoC.

// Arena layout: fixed offsets of each state region within the Store. The
// whole arena fits one 4 KB page, which is what lets Sentry run with a
// two-page on-SoC minimum (§7).
const (
	offTe      = 0    // 1024 B encryption round table
	offTd      = 1024 // 1024 B decryption round table
	offSbox    = 2048 // 256 B S-box
	offInvSbox = 2304 // 256 B inverse S-box
	offRcon    = 2560 // 40 B round constants
	offRound   = 2600 // 1 B round index (public)
	offBlock   = 2601 // 1 B block index (public)
	offIV      = 2604 // 16 B CBC chaining block (public)
	offInput   = 2620 // 16 B input/output staging block (secret)
	offEncKeys = 2636 // ≤240 B encryption schedule (secret; first Nk words are the key)
	offDecKeys = 2876 // ≤240 B decryption schedule (secret)

	// ArenaSize is the total simulated memory the placed cipher needs.
	ArenaSize = 3116
)

// Store is the backing memory of a placed cipher's arena. Offsets are
// arena-relative; implementations map them onto simulated physical memory
// (DRAM through the cache, iRAM, or a locked way) and charge time/energy.
type Store interface {
	Load32(off int) uint32
	Store32(off int, v uint32)
	LoadByte(off int) byte
	StoreByte(off int, b byte)

	// Touch charges the cost of n further word-sized accesses to the arena
	// without naming addresses; the bulk path uses it so multi-megabyte
	// operations don't simulate 20 lookups per round individually.
	Touch(nWords int, write bool)

	// Compute charges ALU cycles.
	Compute(cycles uint64)

	// Yield marks a block boundary where the OS may preempt. Generic AES
	// runs with interrupts enabled, so a context switch here spills the
	// working state in the register file to DRAM; AES On SoC brackets the
	// whole operation in an IRQ-disable so Yield can never preempt.
	Yield()
}

// RegMirror is optionally implemented by stores wired to a CPU: the placed
// cipher mirrors its working state into the architectural registers, which
// is what a real register-allocated inner loop holds there.
type RegMirror interface {
	MirrorRegs(ws [4]uint32)
}

// MapStore is a plain in-host-memory Store with no cost accounting, for
// tests and tooling.
type MapStore struct {
	Data [ArenaSize]byte
}

// Load32 reads a big-endian word at off.
func (m *MapStore) Load32(off int) uint32 { return binary.BigEndian.Uint32(m.Data[off:]) }

// Store32 writes a big-endian word at off.
func (m *MapStore) Store32(off int, v uint32) { binary.BigEndian.PutUint32(m.Data[off:], v) }

// LoadByte reads the byte at off.
func (m *MapStore) LoadByte(off int) byte { return m.Data[off] }

// StoreByte writes b at off.
func (m *MapStore) StoreByte(off int, b byte) { m.Data[off] = b }

// Touch is a no-op: MapStore charges nothing.
func (m *MapStore) Touch(nWords int, write bool) {}

// Compute is a no-op.
func (m *MapStore) Compute(cycles uint64) {}

// Yield is a no-op.
func (m *MapStore) Yield() {}

// PlacedCipher executes AES against state resident in a Store.
type PlacedCipher struct {
	st          Store
	nr          int
	nk          int
	roundCycles uint64
	native      *Cipher // same key; used by the Bulk fast path

	// hook, when non-nil, is consulted at every round entry of the
	// full-fidelity encryption path and may fault the state (see RoundFault).
	hook RoundFault
	// cm is the fault-detection countermeasure; detected latches the
	// fail-safe abort until the surrounding CBC loop collects it.
	cm       Countermeasure
	detected *FaultDetectedError
}

// NewPlaced initialises the arena in st — tables, S-boxes, Rcon, key, and
// both expanded schedules — and returns the cipher. roundCycles is the
// platform's ALU cost per AES round per block (CostTable.AESRoundCompute).
func NewPlaced(st Store, key []byte, roundCycles uint64) (*PlacedCipher, error) {
	nr := rounds(len(key))
	if nr == 0 {
		return nil, KeySizeError(len(key))
	}
	native, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	p := &PlacedCipher{st: st, nr: nr, nk: len(key) / 4, roundCycles: roundCycles, native: native}

	for i, w := range te {
		st.Store32(offTe+4*i, w)
	}
	for i, w := range td {
		st.Store32(offTd+4*i, w)
	}
	for i, b := range sbox {
		st.StoreByte(offSbox+i, b)
	}
	for i, b := range invSbox {
		st.StoreByte(offInvSbox+i, b)
	}
	for i, w := range rcon {
		st.Store32(offRcon+4*i, w)
	}
	// The schedules are expanded host-side (expandKey is the same code the
	// reference cipher uses) and written into the arena word by word, so
	// the secret bytes genuinely reside in simulated memory.
	enc, dec := expandKey(key)
	for i, w := range enc {
		st.Store32(offEncKeys+4*i, w)
	}
	for i, w := range dec {
		st.Store32(offDecKeys+4*i, w)
	}
	return p, nil
}

// AdoptPlaced returns a cipher over an arena that ALREADY holds the tables
// and expanded schedules for key — a copy-on-write fork of an arena that
// NewPlaced initialised earlier. Nothing is written and no simulated time is
// charged: the content arrives with the forked memory, and writing it again
// would double-charge the clone's clock relative to the original world.
func AdoptPlaced(st Store, key []byte, roundCycles uint64) (*PlacedCipher, error) {
	nr := rounds(len(key))
	if nr == 0 {
		return nil, KeySizeError(len(key))
	}
	native, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &PlacedCipher{st: st, nr: nr, nk: len(key) / 4, roundCycles: roundCycles, native: native}, nil
}

// AdoptPlacedFrom is AdoptPlaced for a clone of parent. The host-side native
// cipher is immutable once built — expanded schedules are only read, and the
// crypto/aes block is safe for concurrent use — and it is a pure function of
// key, so the clone shares parent's instead of re-expanding the schedule.
// World forks run an adoption per AES engine, and the schedule expansion
// (inverse MixColumns over every decryption round key) dominates an
// otherwise cheap clone.
// The countermeasure travels with the adoption (it is configuration, like
// the key), but the fault hook does not: a hook is wired to one world's
// injector, and the harness that forked the world re-installs its clone.
func AdoptPlacedFrom(parent *PlacedCipher, st Store, key []byte, roundCycles uint64) (*PlacedCipher, error) {
	if rounds(len(key)) != parent.nr {
		return nil, KeySizeError(len(key))
	}
	return &PlacedCipher{st: st, nr: parent.nr, nk: parent.nk, roundCycles: roundCycles,
		native: parent.native, cm: parent.cm}, nil
}

// SetRoundFault installs (or with nil removes) the adversarial fault hook on
// the full-fidelity encryption path.
func (p *PlacedCipher) SetRoundFault(h RoundFault) { p.hook = h }

// SetCountermeasure selects the fault-detection countermeasure.
func (p *PlacedCipher) SetCountermeasure(cm Countermeasure) { p.cm = cm }

// Countermeasure returns the configured fault-detection countermeasure.
func (p *PlacedCipher) Countermeasure() Countermeasure { return p.cm }

// FaultDetected returns the pending fail-safe abort latched by a
// countermeasure, nil if none. EncryptCBC collects (and clears) the latch
// itself; the accessor exists for callers driving EncryptBlock directly.
func (p *PlacedCipher) FaultDetected() *FaultDetectedError { return p.detected }

// Rounds returns the number of AES rounds.
func (p *PlacedCipher) Rounds() int { return p.nr }

// BlockReadWords returns how many word-sized state reads one block
// operation performs: 4 input + 4 initial round keys, 20 per middle round,
// and 20 in the final round. Bulk mode charges exactly this via Touch.
func (p *PlacedCipher) BlockReadWords() int { return 20*p.nr + 8 }

// BlockWriteWords returns the word-sized state writes per block (staging
// the block in and out of the arena).
const BlockWriteWords = 8

func (p *PlacedCipher) mirror(s0, s1, s2, s3 uint32) {
	if rm, ok := p.st.(RegMirror); ok {
		rm.MirrorRegs([4]uint32{s0, s1, s2, s3})
	}
}

// EncryptBlock encrypts one block with full memory fidelity: every table
// lookup, round-key fetch, and staging access is an individually addressed
// access to the arena. This is the path security experiments observe — and
// therefore the path the adversarial fault hook and the countermeasures
// cover. With no hook and CMNone the access/compute sequence is exactly the
// historical one.
func (p *PlacedCipher) EncryptBlock(dst, src []byte) {
	st := p.st
	for i := 0; i < 4; i++ {
		st.Store32(offInput+4*i, binary.BigEndian.Uint32(src[4*i:]))
	}
	u := p.encryptRounds()
	if p.cm != CMNone && !p.verifyBlock(u, src) {
		// Fail-safe abort: zeroise the staging block and the register
		// mirror, withhold the ciphertext, and latch the typed error for
		// the CBC loop (or a direct caller) to collect.
		for i := 0; i < 4; i++ {
			st.Store32(offInput+4*i, 0)
		}
		p.mirror(0, 0, 0, 0)
		p.detected = &FaultDetectedError{Countermeasure: p.cm}
		for i := 0; i < BlockSize; i++ {
			dst[i] = 0
		}
		return
	}
	for i, w := range u {
		st.Store32(offInput+4*i, w)
		binary.BigEndian.PutUint32(dst[4*i:], w)
	}
}

// encryptRounds runs the round function over the block staged at offInput
// and returns the four output words without releasing them. Each round entry
// (including the final round, round nr) consults the fault hook.
func (p *PlacedCipher) encryptRounds() [4]uint32 {
	st := p.st
	s0 := st.Load32(offInput+0) ^ st.Load32(offEncKeys+0)
	s1 := st.Load32(offInput+4) ^ st.Load32(offEncKeys+4)
	s2 := st.Load32(offInput+8) ^ st.Load32(offEncKeys+8)
	s3 := st.Load32(offInput+12) ^ st.Load32(offEncKeys+12)
	k := 16
	ld := func(idx uint32) uint32 { return st.Load32(offTe + 4*int(idx)) }
	for r := 1; r < p.nr; r++ {
		if p.hook != nil {
			if f, ok := p.hook.FaultRound(r); ok {
				s0 ^= binary.BigEndian.Uint32(f[0:])
				s1 ^= binary.BigEndian.Uint32(f[4:])
				s2 ^= binary.BigEndian.Uint32(f[8:])
				s3 ^= binary.BigEndian.Uint32(f[12:])
			}
		}
		st.StoreByte(offRound, byte(r))
		t0 := ld(s0>>24) ^ ror(ld(s1>>16&0xFF), 8) ^ ror(ld(s2>>8&0xFF), 16) ^ ror(ld(s3&0xFF), 24) ^ st.Load32(offEncKeys+k)
		t1 := ld(s1>>24) ^ ror(ld(s2>>16&0xFF), 8) ^ ror(ld(s3>>8&0xFF), 16) ^ ror(ld(s0&0xFF), 24) ^ st.Load32(offEncKeys+k+4)
		t2 := ld(s2>>24) ^ ror(ld(s3>>16&0xFF), 8) ^ ror(ld(s0>>8&0xFF), 16) ^ ror(ld(s1&0xFF), 24) ^ st.Load32(offEncKeys+k+8)
		t3 := ld(s3>>24) ^ ror(ld(s0>>16&0xFF), 8) ^ ror(ld(s1>>8&0xFF), 16) ^ ror(ld(s2&0xFF), 24) ^ st.Load32(offEncKeys+k+12)
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 16
		st.Compute(p.roundCycles)
		p.mirror(s0, s1, s2, s3)
	}
	if p.hook != nil {
		if f, ok := p.hook.FaultRound(p.nr); ok {
			s0 ^= binary.BigEndian.Uint32(f[0:])
			s1 ^= binary.BigEndian.Uint32(f[4:])
			s2 ^= binary.BigEndian.Uint32(f[8:])
			s3 ^= binary.BigEndian.Uint32(f[12:])
		}
	}
	sb := func(idx uint32) uint32 { return uint32(st.LoadByte(offSbox + int(idx))) }
	u0 := sb(s0>>24)<<24 | sb(s1>>16&0xFF)<<16 | sb(s2>>8&0xFF)<<8 | sb(s3&0xFF) ^ st.Load32(offEncKeys+k)
	u1 := sb(s1>>24)<<24 | sb(s2>>16&0xFF)<<16 | sb(s3>>8&0xFF)<<8 | sb(s0&0xFF) ^ st.Load32(offEncKeys+k+4)
	u2 := sb(s2>>24)<<24 | sb(s3>>16&0xFF)<<16 | sb(s0>>8&0xFF)<<8 | sb(s1&0xFF) ^ st.Load32(offEncKeys+k+8)
	u3 := sb(s3>>24)<<24 | sb(s0>>16&0xFF)<<16 | sb(s1>>8&0xFF)<<8 | sb(s2&0xFF) ^ st.Load32(offEncKeys+k+12)
	st.Compute(p.roundCycles)
	return [4]uint32{u0, u1, u2, u3}
}

// verifyBlock checks the output words against the countermeasure's
// reference before release. src is the block as staged (already chained in
// CBC mode).
func (p *PlacedCipher) verifyBlock(u [4]uint32, src []byte) bool {
	switch p.cm {
	case CMRedundant:
		// Second full pass over the staged input; the output has not been
		// written back, so offInput still holds the block. A one-shot fault
		// corrupted only one of the two passes.
		return p.encryptRounds() == u
	case CMTag:
		// Truncated 32-bit tag: XOR-fold of the ciphertext words, verified
		// against an independent (host-side) datapath. The fold covers all
		// four byte lanes, so the ≤4 single-lane diffs of a one-round fault
		// can never cancel. Charge one round's worth of ALU for the check.
		var ref [BlockSize]byte
		p.native.Encrypt(ref[:], src[:BlockSize])
		p.st.Compute(p.roundCycles)
		tag := u[0] ^ u[1] ^ u[2] ^ u[3]
		rtag := binary.BigEndian.Uint32(ref[0:]) ^ binary.BigEndian.Uint32(ref[4:]) ^
			binary.BigEndian.Uint32(ref[8:]) ^ binary.BigEndian.Uint32(ref[12:])
		return tag == rtag
	}
	return true
}

// DecryptBlock decrypts one block with full memory fidelity.
func (p *PlacedCipher) DecryptBlock(dst, src []byte) {
	st := p.st
	for i := 0; i < 4; i++ {
		st.Store32(offInput+4*i, binary.BigEndian.Uint32(src[4*i:]))
	}
	s0 := st.Load32(offInput+0) ^ st.Load32(offDecKeys+0)
	s1 := st.Load32(offInput+4) ^ st.Load32(offDecKeys+4)
	s2 := st.Load32(offInput+8) ^ st.Load32(offDecKeys+8)
	s3 := st.Load32(offInput+12) ^ st.Load32(offDecKeys+12)
	k := 16
	ld := func(idx uint32) uint32 { return st.Load32(offTd + 4*int(idx)) }
	for r := 1; r < p.nr; r++ {
		st.StoreByte(offRound, byte(r))
		t0 := ld(s0>>24) ^ ror(ld(s3>>16&0xFF), 8) ^ ror(ld(s2>>8&0xFF), 16) ^ ror(ld(s1&0xFF), 24) ^ st.Load32(offDecKeys+k)
		t1 := ld(s1>>24) ^ ror(ld(s0>>16&0xFF), 8) ^ ror(ld(s3>>8&0xFF), 16) ^ ror(ld(s2&0xFF), 24) ^ st.Load32(offDecKeys+k+4)
		t2 := ld(s2>>24) ^ ror(ld(s1>>16&0xFF), 8) ^ ror(ld(s0>>8&0xFF), 16) ^ ror(ld(s3&0xFF), 24) ^ st.Load32(offDecKeys+k+8)
		t3 := ld(s3>>24) ^ ror(ld(s2>>16&0xFF), 8) ^ ror(ld(s1>>8&0xFF), 16) ^ ror(ld(s0&0xFF), 24) ^ st.Load32(offDecKeys+k+12)
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 16
		st.Compute(p.roundCycles)
		p.mirror(s0, s1, s2, s3)
	}
	sb := func(idx uint32) uint32 { return uint32(st.LoadByte(offInvSbox + int(idx))) }
	u0 := sb(s0>>24)<<24 | sb(s3>>16&0xFF)<<16 | sb(s2>>8&0xFF)<<8 | sb(s1&0xFF) ^ st.Load32(offDecKeys+k)
	u1 := sb(s1>>24)<<24 | sb(s0>>16&0xFF)<<16 | sb(s3>>8&0xFF)<<8 | sb(s2&0xFF) ^ st.Load32(offDecKeys+k+4)
	u2 := sb(s2>>24)<<24 | sb(s1>>16&0xFF)<<16 | sb(s0>>8&0xFF)<<8 | sb(s3&0xFF) ^ st.Load32(offDecKeys+k+8)
	u3 := sb(s3>>24)<<24 | sb(s2>>16&0xFF)<<16 | sb(s1>>8&0xFF)<<8 | sb(s0&0xFF) ^ st.Load32(offDecKeys+k+12)
	st.Compute(p.roundCycles)
	for i, u := range [4]uint32{u0, u1, u2, u3} {
		st.Store32(offInput+4*i, u)
		binary.BigEndian.PutUint32(dst[4*i:], u)
	}
}

// EncryptCBC encrypts src into dst in CBC mode with full fidelity, chaining
// through the arena's IV region and offering a Yield point per block.
func (p *PlacedCipher) EncryptCBC(dst, src, iv []byte) error {
	if err := checkCBCArgs(dst, src, iv); err != nil {
		return err
	}
	st := p.st
	for i := 0; i < 4; i++ {
		st.Store32(offIV+4*i, binary.BigEndian.Uint32(iv[4*i:]))
	}
	var in [BlockSize]byte
	for off, blk := 0, 0; off < len(src); off, blk = off+BlockSize, blk+1 {
		st.StoreByte(offBlock, byte(blk))
		for i := 0; i < 4; i++ {
			chain := st.Load32(offIV + 4*i)
			binary.BigEndian.PutUint32(in[4*i:], binary.BigEndian.Uint32(src[off+4*i:])^chain)
		}
		p.EncryptBlock(dst[off:off+BlockSize], in[:])
		if e := p.detected; e != nil {
			// Fail-safe abort: wipe the whole destination — the blocks
			// already produced and whatever the caller staged beyond the
			// fault — and surface the typed error for rekeying.
			p.detected = nil
			e.Block = blk
			for i := range dst {
				dst[i] = 0
			}
			return e
		}
		for i := 0; i < 4; i++ {
			st.Store32(offIV+4*i, binary.BigEndian.Uint32(dst[off+4*i:]))
		}
		st.Yield()
	}
	return nil
}

// DecryptCBC decrypts src into dst in CBC mode with full fidelity.
func (p *PlacedCipher) DecryptCBC(dst, src, iv []byte) error {
	if err := checkCBCArgs(dst, src, iv); err != nil {
		return err
	}
	st := p.st
	for i := 0; i < 4; i++ {
		st.Store32(offIV+4*i, binary.BigEndian.Uint32(iv[4*i:]))
	}
	var cipherBlk [BlockSize]byte
	for off, blk := 0, 0; off < len(src); off, blk = off+BlockSize, blk+1 {
		st.StoreByte(offBlock, byte(blk))
		copy(cipherBlk[:], src[off:off+BlockSize])
		p.DecryptBlock(dst[off:off+BlockSize], cipherBlk[:])
		for i := 0; i < 4; i++ {
			chain := st.Load32(offIV + 4*i)
			binary.BigEndian.PutUint32(dst[off+4*i:], binary.BigEndian.Uint32(dst[off+4*i:])^chain)
			st.Store32(offIV+4*i, binary.BigEndian.Uint32(cipherBlk[4*i:]))
		}
		st.Yield()
	}
	return nil
}

// EncryptCBCBulk produces exactly the bytes EncryptCBC would, but charges
// the arena traffic statistically through Touch instead of simulating the
// 20 lookups per round individually. Macro experiments (tens of megabytes
// per device lock) use this path; its per-block charge is derived from the
// fidelity path's exact operation counts.
func (p *PlacedCipher) EncryptCBCBulk(dst, src, iv []byte) error {
	if err := p.native.EncryptCBC(dst, src, iv); err != nil {
		return err
	}
	p.chargeBulk(len(src) / BlockSize)
	return nil
}

// DecryptCBCBulk is the bulk twin of DecryptCBC.
func (p *PlacedCipher) DecryptCBCBulk(dst, src, iv []byte) error {
	if err := p.native.DecryptCBC(dst, src, iv); err != nil {
		return err
	}
	p.chargeBulk(len(src) / BlockSize)
	return nil
}

func (p *PlacedCipher) chargeBulk(blocks int) {
	st := p.st
	// Per block: the block-op reads/writes plus 8 chaining words in CBC.
	st.Touch(blocks*(p.BlockReadWords()+4), false)
	st.Touch(blocks*(BlockWriteWords+4), true)
	st.Compute(uint64(blocks) * uint64(p.nr) * p.roundCycles)
	ws := [4]uint32{}
	if rm, ok := st.(RegMirror); ok {
		// Registers hold working state for the duration; mirror the first
		// schedule words as representative secret content.
		ws[0] = st.Load32(offEncKeys)
		ws[1] = st.Load32(offEncKeys + 4)
		ws[2] = st.Load32(offEncKeys + 8)
		ws[3] = st.Load32(offEncKeys + 12)
		rm.MirrorRegs(ws)
	}
	for b := 0; b < blocks; b += 256 {
		st.Yield()
	}
}

package aes

// Exports used by the attack implementations. These describe the *public*
// structure of AES — table geometry, lookup order, key-schedule relations —
// that real attacks (Halderman et al.'s keyfinder, Tromer/Osvik/Shamir
// access-pattern analysis) exploit. Nothing here weakens the cipher; it
// encodes what any attacker already knows from FIPS 197.

// TeOffset is the arena offset of the encryption round table; a bus monitor
// watching reads in [base+TeOffset, base+TeOffset+1024) observes the
// cipher's access-protected state.
const TeOffset = offTe

// SboxOffset is the arena offset of the S-box (final-round lookups).
const SboxOffset = offSbox

// EncKeysOffset is the arena offset of the encryption key schedule — what a
// cold-boot attacker greps a DRAM dump for.
const EncKeysOffset = offEncKeys

// FirstRoundOrder maps the i-th round-1 T-table lookup to the plaintext
// byte that indexes it: lookup i uses index plaintext[FirstRoundOrder[i]] ^
// key[FirstRoundOrder[i]]. This is fixed by ShiftRows and lets a bus
// monitor solve for the key byte-by-byte from known plaintexts.
var FirstRoundOrder = [16]int{0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11}

// ScheduleF is the AES-128 key-expansion feedback: w[i] = w[i-4] ^
// ScheduleF(i, w[i-1]). Exposed for the keyfinder's error-correcting
// reconstruction.
func ScheduleF(i int, prev uint32) uint32 {
	if i%4 == 0 {
		return subWord(prev<<8|prev>>24) ^ rcon[i/4-1]
	}
	return prev
}

// InvSub applies the inverse S-box to one byte. The DFA key-recovery
// pipeline peels the final round with it: invS(C ^ k10) ^ invS(C* ^ k10)
// must equal a MixColumns multiple of the injected fault.
func InvSub(b byte) byte { return invSbox[b] }

// ScheduleRelationHolds reports whether the 44 words form a valid AES-128
// encryption key schedule — the invariant Halderman et al.'s keyfinder uses
// to locate keys in memory dumps: round keys are massively redundant, so a
// random 176-byte window essentially never satisfies it.
func ScheduleRelationHolds(w []uint32) bool {
	return ScheduleViolations(w) == 0
}

// ScheduleViolations counts how many of the 40 expansion relations the
// window breaks; a handful of bit-decayed bytes breaks only a few.
func ScheduleViolations(w []uint32) int {
	if len(w) != 44 {
		return 44
	}
	bad := 0
	for i := 4; i < 44; i++ {
		if w[i] != w[i-4]^ScheduleF(i, w[i-1]) {
			bad++
		}
	}
	return bad
}

// ReconstructKeyFromDamagedSchedule exploits the schedule's redundancy the
// way the cold-boot literature does: any intact aligned 4-word group
// determines the entire schedule, so try each group as an anchor, rebuild
// the full schedule from it (expanding forward and inverting the feedback
// backward), and accept the anchor whose reconstruction agrees with the
// dump on at least agreeThreshold of the 44 words. Returns the recovered
// 16-byte key.
func ReconstructKeyFromDamagedSchedule(w []uint32, agreeThreshold int) ([]byte, bool) {
	if len(w) != 44 {
		return nil, false
	}
	for a := 0; a+4 <= 44; a += 4 {
		full := rebuildFromAnchor(w, a)
		agree := 0
		for i := range w {
			if full[i] == w[i] {
				agree++
			}
		}
		if agree >= agreeThreshold {
			key := make([]byte, 16)
			for i := 0; i < 4; i++ {
				key[4*i] = byte(full[i] >> 24)
				key[4*i+1] = byte(full[i] >> 16)
				key[4*i+2] = byte(full[i] >> 8)
				key[4*i+3] = byte(full[i])
			}
			return key, true
		}
	}
	return nil, false
}

// rebuildFromAnchor assumes w[a..a+3] are intact and regenerates all 44
// words from them.
func rebuildFromAnchor(w []uint32, a int) [44]uint32 {
	var full [44]uint32
	copy(full[a:a+4], w[a:a+4])
	// Backward: w[i-4] = w[i] ^ F(i, w[i-1]), peeling one word at a time.
	for i := a + 3; i >= 4; i-- {
		full[i-4] = full[i] ^ ScheduleF(i, full[i-1])
	}
	// Forward from wherever we now have four consecutive known words.
	for i := a + 4; i < 44; i++ {
		full[i] = full[i-4] ^ ScheduleF(i, full[i-1])
	}
	return full
}

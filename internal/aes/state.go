package aes

// State accounting for the paper's Table 4: every piece of AES state, its
// size in bytes, and its sensitivity class. The sizes are computed from the
// implementation's actual structures so the table generator cannot drift
// from the code.

// Sensitivity classifies AES state per §6.1 of the paper.
type Sensitivity int

// Sensitivity classes.
const (
	// Secret state compromises the cipher if leaked: the input block, the
	// key, and the round keys.
	Secret Sensitivity = iota
	// Public state is harmless to leak: loop indices, the CBC chaining
	// block (ciphertext).
	Public
	// AccessProtected state has harmless *contents* but sensitive *access
	// patterns*: the round tables, S-boxes, and Rcon. Bus monitoring of
	// lookups into these tables recovers key material.
	AccessProtected
)

func (s Sensitivity) String() string {
	switch s {
	case Secret:
		return "Secret"
	case Public:
		return "Public"
	case AccessProtected:
		return "Access-protected"
	default:
		return "Unknown"
	}
}

// RegionInfo is one row of the state breakdown.
type RegionInfo struct {
	Name  string
	Bytes int
	Sens  Sensitivity
}

// scheduleWords returns the number of 32-bit words in one direction's key
// schedule for the given key size.
func scheduleWords(keyBytes int) int { return 4 * (rounds(keyBytes) + 1) }

// StateBreakdown returns the Table 4 rows for a key of keyBits (128, 192,
// or 256). The "Round Keys" row counts both the encryption and decryption
// schedules minus the original-key words each contains (those are the "Key"
// row), matching the paper's accounting: 320/368/416 bytes.
func StateBreakdown(keyBits int) []RegionInfo {
	keyBytes := keyBits / 8
	if rounds(keyBytes) == 0 {
		panic(KeySizeError(keyBytes))
	}
	derived := 2 * (scheduleWords(keyBytes)*4 - keyBytes)
	return []RegionInfo{
		{"Input block", BlockSize, Secret},
		{"Key", keyBytes, Secret},
		{"Round Index", 1, Public},
		{"Round Keys", derived, Secret},
		{"2 Round Tables", (len(te) + len(td)) * 4, AccessProtected},
		{"2 S-box", len(sbox) + len(invSbox), AccessProtected},
		{"Rcon", len(rcon) * 4, AccessProtected},
		{"Block Index", 1, Public},
		{"CBC block/ivec", BlockSize, Public},
	}
}

// TotalState sums the breakdown (2970 bytes for AES-128).
func TotalState(keyBits int) int {
	total := 0
	for _, r := range StateBreakdown(keyBits) {
		total += r.Bytes
	}
	return total
}

// TotalBySensitivity sums the breakdown per class. For AES-128 the paper's
// split is 352 secret, 2600 access-protected, 18 public.
func TotalBySensitivity(keyBits int) map[Sensitivity]int {
	out := make(map[Sensitivity]int)
	for _, r := range StateBreakdown(keyBits) {
		out[r.Sens] += r.Bytes
	}
	return out
}

package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"crypto/cipher"
	"testing"
	"testing/quick"

	"sentry/internal/sim"
)

// fips197Vectors are the appendix C known-answer tests of FIPS 197.
var fips197Vectors = []struct {
	key, plain, cipher string
}{
	{
		"000102030405060708090a0b0c0d0e0f",
		"00112233445566778899aabbccddeeff",
		"69c4e0d86a7b0430d8cdb78070b4c55a",
	},
	{
		"000102030405060708090a0b0c0d0e0f1011121314151617",
		"00112233445566778899aabbccddeeff",
		"dda97ca4864cdfe06eaf70a0ec0d7191",
	},
	{
		"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
		"00112233445566778899aabbccddeeff",
		"8ea2b7ca516745bfeafc49904b496089",
	},
}

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	out := make([]byte, len(s)/2)
	for i := range out {
		hi := hexNib(s[2*i])
		lo := hexNib(s[2*i+1])
		if hi < 0 || lo < 0 {
			t.Fatalf("bad hex %q", s)
		}
		out[i] = byte(hi<<4 | lo)
	}
	return out
}

func hexNib(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	}
	return -1
}

func TestFIPS197KnownAnswers(t *testing.T) {
	for _, v := range fips197Vectors {
		key, plain, want := unhex(t, v.key), unhex(t, v.plain), unhex(t, v.cipher)
		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		c.Encrypt(got, plain)
		if !bytes.Equal(got, want) {
			t.Fatalf("key %s: encrypt = %x, want %x", v.key, got, want)
		}
		back := make([]byte, 16)
		c.Decrypt(back, got)
		if !bytes.Equal(back, plain) {
			t.Fatalf("key %s: decrypt = %x, want %x", v.key, back, plain)
		}
	}
}

func TestInvalidKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 31, 33} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Fatalf("key size %d accepted", n)
		}
	}
	if KeySizeError(3).Error() == "" {
		t.Fatal("empty error string")
	}
}

// Property: byte-for-byte agreement with the standard library for random
// keys and blocks, all key sizes.
func TestMatchesCryptoAES(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, keyLen := range []int{16, 24, 32} {
		for trial := 0; trial < 200; trial++ {
			key := make([]byte, keyLen)
			rng.Read(key)
			block := make([]byte, 16)
			rng.Read(block)

			ours, err := NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			// Exercise the from-scratch T-table path explicitly: Encrypt
			// delegates to crypto/aes, so comparing it alone would be
			// vacuous. All three forms must agree.
			a, b, g := make([]byte, 16), make([]byte, 16), make([]byte, 16)
			ours.Encrypt(a, block)
			ref.Encrypt(b, block)
			ours.encryptGeneric(g, block)
			if !bytes.Equal(a, b) || !bytes.Equal(g, b) {
				t.Fatalf("keyLen=%d: encrypt mismatch", keyLen)
			}
			ours.Decrypt(a, block)
			ref.Decrypt(b, block)
			ours.decryptGeneric(g, block)
			if !bytes.Equal(a, b) || !bytes.Equal(g, b) {
				t.Fatalf("keyLen=%d: decrypt mismatch", keyLen)
			}
		}
	}
}

func TestCBCMatchesCryptoCipher(t *testing.T) {
	rng := sim.NewRNG(11)
	for _, keyLen := range []int{16, 24, 32} {
		key := make([]byte, keyLen)
		rng.Read(key)
		iv := make([]byte, 16)
		rng.Read(iv)
		msg := make([]byte, 4096)
		rng.Read(msg)

		ours, _ := NewCipher(key)
		got := make([]byte, len(msg))
		if err := ours.EncryptCBC(got, msg, iv); err != nil {
			t.Fatal(err)
		}

		ref, _ := stdaes.NewCipher(key)
		want := make([]byte, len(msg))
		cipher.NewCBCEncrypter(ref, iv).CryptBlocks(want, msg)
		if !bytes.Equal(got, want) {
			t.Fatalf("keyLen=%d: CBC encrypt mismatch", keyLen)
		}

		back := make([]byte, len(msg))
		if err := ours.DecryptCBC(back, got, iv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, msg) {
			t.Fatal("CBC round trip failed")
		}

		// Same data through the from-scratch per-block CBC loop (std == nil
		// forces the T-table fallback); it must match the delegated path.
		gen := &Cipher{nr: ours.nr, enc: ours.enc, dec: ours.dec}
		genCT := make([]byte, len(msg))
		if err := gen.EncryptCBC(genCT, msg, iv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(genCT, want) {
			t.Fatalf("keyLen=%d: generic CBC encrypt mismatch", keyLen)
		}
		genPT := make([]byte, len(msg))
		if err := gen.DecryptCBC(genPT, genCT, iv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(genPT, msg) {
			t.Fatal("generic CBC round trip failed")
		}
	}
}

func TestCBCArgValidation(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	iv := make([]byte, 16)
	if err := c.EncryptCBC(make([]byte, 15), make([]byte, 15), iv); err == nil {
		t.Fatal("non-multiple length accepted")
	}
	if err := c.EncryptCBC(make([]byte, 8), make([]byte, 16), iv); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := c.EncryptCBC(make([]byte, 16), make([]byte, 16), iv[:8]); err == nil {
		t.Fatal("short IV accepted")
	}
}

// Property: encrypt∘decrypt is the identity for arbitrary keys and data.
func TestEncryptDecryptIdentity(t *testing.T) {
	f := func(keySeed, dataSeed int64, keyPick uint8, nBlocks uint8) bool {
		keyLen := []int{16, 24, 32}[int(keyPick)%3]
		krng, drng := sim.NewRNG(keySeed), sim.NewRNG(dataSeed)
		key := make([]byte, keyLen)
		krng.Read(key)
		n := (int(nBlocks)%32 + 1) * 16
		msg := make([]byte, n)
		drng.Read(msg)
		iv := make([]byte, 16)
		drng.Read(iv)
		c, err := NewCipher(key)
		if err != nil {
			return false
		}
		ct := make([]byte, n)
		pt := make([]byte, n)
		if c.EncryptCBC(ct, msg, iv) != nil || c.DecryptCBC(pt, ct, iv) != nil {
			return false
		}
		return bytes.Equal(pt, msg) && !bytes.Equal(ct, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSboxIsPermutationAndInverse(t *testing.T) {
	seen := [256]bool{}
	for i := 0; i < 256; i++ {
		if seen[sbox[i]] {
			t.Fatal("sbox not a permutation")
		}
		seen[sbox[i]] = true
		if invSbox[sbox[i]] != byte(i) {
			t.Fatal("invSbox is not the inverse of sbox")
		}
	}
	// Spot-check the canonical values.
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xED || invSbox[0x63] != 0x00 {
		t.Fatal("sbox values wrong")
	}
}

func TestGFArithmetic(t *testing.T) {
	if gfMul(0x57, 0x83) != 0xC1 { // FIPS 197 §4.2 worked example
		t.Fatalf("gfMul(0x57,0x83) = %#x", gfMul(0x57, 0x83))
	}
	if gfMul(0x57, 0x13) != 0xFE {
		t.Fatalf("gfMul(0x57,0x13) = %#x", gfMul(0x57, 0x13))
	}
	if gfInv(0) != 0 {
		t.Fatal("gfInv(0) must be 0")
	}
	for i := 1; i < 256; i++ {
		if gfMul(byte(i), gfInv(byte(i))) != 1 {
			t.Fatalf("gfInv(%#x) wrong", i)
		}
	}
}

func TestRconValues(t *testing.T) {
	want := []uint32{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36}
	for i, w := range want {
		if rcon[i] != w<<24 {
			t.Fatalf("rcon[%d] = %#x, want %#x", i, rcon[i], w<<24)
		}
	}
}

func TestRoundsAndSchedule(t *testing.T) {
	for _, tc := range []struct{ keyLen, nr int }{{16, 10}, {24, 12}, {32, 14}} {
		c, _ := NewCipher(make([]byte, tc.keyLen))
		if c.Rounds() != tc.nr {
			t.Fatalf("rounds(%d) = %d", tc.keyLen, c.Rounds())
		}
		if len(c.EncSchedule()) != 4*(tc.nr+1) {
			t.Fatalf("schedule length %d", len(c.EncSchedule()))
		}
	}
}

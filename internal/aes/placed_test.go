package aes

import (
	"bytes"
	"testing"
	"testing/quick"

	"sentry/internal/sim"
)

// countingStore wraps MapStore and counts every access, letting tests prove
// the fidelity path's operation counts match the constants the bulk path
// charges through Touch.
type countingStore struct {
	MapStore
	loads, stores, touchedR, touchedW int
	computed                          uint64
	yields                            int
	mirrored                          [][4]uint32
}

func (c *countingStore) Load32(off int) uint32 { c.loads++; return c.MapStore.Load32(off) }
func (c *countingStore) Store32(off int, v uint32) {
	c.stores++
	c.MapStore.Store32(off, v)
}
func (c *countingStore) LoadByte(off int) byte { c.loads++; return c.MapStore.LoadByte(off) }
func (c *countingStore) StoreByte(off int, b byte) {
	c.stores++
	c.MapStore.StoreByte(off, b)
}
func (c *countingStore) Touch(n int, write bool) {
	if write {
		c.touchedW += n
	} else {
		c.touchedR += n
	}
}
func (c *countingStore) Compute(cy uint64)       { c.computed += cy }
func (c *countingStore) Yield()                  { c.yields++ }
func (c *countingStore) MirrorRegs(ws [4]uint32) { c.mirrored = append(c.mirrored, ws) }

func TestPlacedMatchesNative(t *testing.T) {
	rng := sim.NewRNG(3)
	for _, keyLen := range []int{16, 24, 32} {
		key := make([]byte, keyLen)
		rng.Read(key)
		st := &MapStore{}
		p, err := NewPlaced(st, key, 40)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := NewCipher(key)

		block := make([]byte, 16)
		rng.Read(block)
		a, b := make([]byte, 16), make([]byte, 16)
		p.EncryptBlock(a, block)
		n.Encrypt(b, block)
		if !bytes.Equal(a, b) {
			t.Fatalf("keyLen %d: placed encrypt differs from native", keyLen)
		}
		p.DecryptBlock(a, block)
		n.Decrypt(b, block)
		if !bytes.Equal(a, b) {
			t.Fatalf("keyLen %d: placed decrypt differs from native", keyLen)
		}
	}
}

func TestPlacedCBCEquivalences(t *testing.T) {
	rng := sim.NewRNG(5)
	key := make([]byte, 16)
	rng.Read(key)
	iv := make([]byte, 16)
	rng.Read(iv)
	msg := make([]byte, 256)
	rng.Read(msg)

	p, _ := NewPlaced(&MapStore{}, key, 40)
	n, _ := NewCipher(key)

	fidelity := make([]byte, len(msg))
	if err := p.EncryptCBC(fidelity, msg, iv); err != nil {
		t.Fatal(err)
	}
	bulk := make([]byte, len(msg))
	if err := p.EncryptCBCBulk(bulk, msg, iv); err != nil {
		t.Fatal(err)
	}
	native := make([]byte, len(msg))
	_ = n.EncryptCBC(native, msg, iv)
	if !bytes.Equal(fidelity, native) || !bytes.Equal(bulk, native) {
		t.Fatal("fidelity, bulk, and native CBC must agree")
	}

	back := make([]byte, len(msg))
	if err := p.DecryptCBC(back, fidelity, iv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("fidelity CBC round trip failed")
	}
	if err := p.DecryptCBCBulk(back, fidelity, iv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatal("bulk CBC round trip failed")
	}
}

func TestKeyScheduleResidentInStore(t *testing.T) {
	// The secret bytes must genuinely live in the arena — this is what a
	// cold-boot attacker dumps.
	key := bytes.Repeat([]byte{0xAB}, 16)
	st := &MapStore{}
	if _, err := NewPlaced(st, key, 0); err != nil {
		t.Fatal(err)
	}
	enc, _ := expandKey(key)
	for i, w := range enc {
		if st.Load32(offEncKeys+4*i) != w {
			t.Fatalf("schedule word %d missing from arena", i)
		}
	}
	// And the tables too.
	if st.Load32(offTe) != te[0] || st.LoadByte(offSbox) != sbox[0] {
		t.Fatal("tables not resident")
	}
}

func TestFidelityOperationCountsMatchBulkCharges(t *testing.T) {
	key := make([]byte, 16)
	st := &countingStore{}
	p, _ := NewPlaced(st, key, 40)
	st.loads, st.stores = 0, 0 // discard setup accounting

	block := make([]byte, 16)
	p.EncryptBlock(block, block)
	if st.loads != p.BlockReadWords() {
		t.Fatalf("fidelity block reads = %d, BlockReadWords = %d", st.loads, p.BlockReadWords())
	}
	// 8 staging word-writes plus the public round-index byte per mid round.
	wantStores := BlockWriteWords + p.Rounds() - 1
	if st.stores != wantStores {
		t.Fatalf("fidelity block stores = %d, want %d", st.stores, wantStores)
	}
	if st.computed != uint64(p.Rounds())*40 {
		t.Fatalf("computed = %d, want %d", st.computed, p.Rounds()*40)
	}
}

func TestBulkChargesProportionalToBlocks(t *testing.T) {
	key := make([]byte, 16)
	st := &countingStore{}
	p, _ := NewPlaced(st, key, 40)
	iv := make([]byte, 16)
	msg := make([]byte, 64*16)
	_ = p.EncryptCBCBulk(make([]byte, len(msg)), msg, iv)
	if st.touchedR != 64*(p.BlockReadWords()+4) {
		t.Fatalf("bulk read charge = %d", st.touchedR)
	}
	if st.touchedW != 64*(BlockWriteWords+4) {
		t.Fatalf("bulk write charge = %d", st.touchedW)
	}
	if st.computed != 64*uint64(p.Rounds())*40 {
		t.Fatalf("bulk compute charge = %d", st.computed)
	}
}

func TestYieldCalledPerBlockInFidelityCBC(t *testing.T) {
	st := &countingStore{}
	p, _ := NewPlaced(st, make([]byte, 16), 0)
	msg := make([]byte, 5*16)
	_ = p.EncryptCBC(make([]byte, len(msg)), msg, make([]byte, 16))
	if st.yields != 5 {
		t.Fatalf("yields = %d, want 5", st.yields)
	}
}

func TestWorkingStateMirroredToRegisters(t *testing.T) {
	st := &countingStore{}
	p, _ := NewPlaced(st, make([]byte, 16), 0)
	block := make([]byte, 16)
	p.EncryptBlock(block, block)
	if len(st.mirrored) != p.Rounds()-1 {
		t.Fatalf("mirrored %d times, want %d", len(st.mirrored), p.Rounds()-1)
	}
	if st.mirrored[0] == ([4]uint32{}) {
		t.Fatal("mirrored state is empty")
	}
}

func TestNewPlacedRejectsBadKey(t *testing.T) {
	if _, err := NewPlaced(&MapStore{}, make([]byte, 10), 0); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestArenaLayoutDisjoint(t *testing.T) {
	type region struct {
		name     string
		off, end int
	}
	regions := []region{
		{"te", offTe, offTe + 1024},
		{"td", offTd, offTd + 1024},
		{"sbox", offSbox, offSbox + 256},
		{"invSbox", offInvSbox, offInvSbox + 256},
		{"rcon", offRcon, offRcon + 40},
		{"round", offRound, offRound + 1},
		{"block", offBlock, offBlock + 1},
		{"iv", offIV, offIV + 16},
		{"input", offInput, offInput + 16},
		{"encKeys", offEncKeys, offEncKeys + 240},
		{"decKeys", offDecKeys, offDecKeys + 240},
	}
	for i, a := range regions {
		if a.end > ArenaSize {
			t.Fatalf("%s exceeds arena", a.name)
		}
		for _, b := range regions[i+1:] {
			if a.off < b.end && b.off < a.end {
				t.Fatalf("%s overlaps %s", a.name, b.name)
			}
		}
	}
	if ArenaSize > 4096 {
		t.Fatal("arena must fit one page (Sentry's two-page minimum depends on it)")
	}
}

// Property: placed CBC equals native CBC for random inputs.
func TestPlacedCBCProperty(t *testing.T) {
	f := func(seed int64, nBlocks uint8) bool {
		rng := sim.NewRNG(seed)
		key := make([]byte, 16)
		rng.Read(key)
		iv := make([]byte, 16)
		rng.Read(iv)
		n := (int(nBlocks)%8 + 1) * 16
		msg := make([]byte, n)
		rng.Read(msg)
		p, err := NewPlaced(&MapStore{}, key, 0)
		if err != nil {
			return false
		}
		nat, _ := NewCipher(key)
		a, b := make([]byte, n), make([]byte, n)
		if p.EncryptCBC(a, msg, iv) != nil || nat.EncryptCBC(b, msg, iv) != nil {
			return false
		}
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacedCBCAllKeySizes(t *testing.T) {
	rng := sim.NewRNG(21)
	for _, keyLen := range []int{16, 24, 32} {
		key := make([]byte, keyLen)
		rng.Read(key)
		iv := make([]byte, 16)
		rng.Read(iv)
		msg := make([]byte, 160)
		rng.Read(msg)
		p, err := NewPlaced(&MapStore{}, key, 7)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := NewCipher(key)
		want := make([]byte, len(msg))
		_ = n.EncryptCBC(want, msg, iv)
		got := make([]byte, len(msg))
		if err := p.EncryptCBC(got, msg, iv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("keyLen %d: fidelity CBC mismatch", keyLen)
		}
		back := make([]byte, len(msg))
		if err := p.DecryptCBC(back, got, iv); err != nil || !bytes.Equal(back, msg) {
			t.Fatalf("keyLen %d: fidelity CBC decrypt failed", keyLen)
		}
		if err := p.DecryptCBCBulk(back, got, iv); err != nil || !bytes.Equal(back, msg) {
			t.Fatalf("keyLen %d: bulk CBC decrypt failed", keyLen)
		}
	}
}

func TestPlacedCBCArgValidation(t *testing.T) {
	p, _ := NewPlaced(&MapStore{}, make([]byte, 16), 0)
	iv := make([]byte, 16)
	if err := p.EncryptCBC(make([]byte, 15), make([]byte, 15), iv); err == nil {
		t.Fatal("ragged length accepted")
	}
	if err := p.DecryptCBC(make([]byte, 16), make([]byte, 16), iv[:4]); err == nil {
		t.Fatal("short IV accepted")
	}
	if err := p.EncryptCBCBulk(make([]byte, 15), make([]byte, 15), iv); err == nil {
		t.Fatal("bulk ragged length accepted")
	}
	if err := p.DecryptCBCBulk(make([]byte, 16), make([]byte, 16), iv[:4]); err == nil {
		t.Fatal("bulk short IV accepted")
	}
}

func TestDecryptBlockReadCounts(t *testing.T) {
	// The decrypt path must charge the same traffic profile as encrypt.
	st := &countingStore{}
	p, _ := NewPlaced(st, make([]byte, 16), 40)
	st.loads, st.stores, st.computed = 0, 0, 0
	blk := make([]byte, 16)
	p.DecryptBlock(blk, blk)
	if st.loads != p.BlockReadWords() {
		t.Fatalf("decrypt reads = %d, want %d", st.loads, p.BlockReadWords())
	}
	if st.computed != uint64(p.Rounds())*40 {
		t.Fatalf("decrypt compute = %d", st.computed)
	}
}

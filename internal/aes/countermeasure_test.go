package aes

import (
	"bytes"
	"errors"
	"testing"

	"sentry/internal/sim"
)

// oneShotFault is a minimal RoundFault for tests: armed once, fires on the
// first entry to the configured round, then disarms — the contract a
// redundant recomputation relies on.
type oneShotFault struct {
	round int
	mask  [16]byte
	armed bool
	fired int
}

func (f *oneShotFault) FaultRound(r int) ([16]byte, bool) {
	if !f.armed || r != f.round {
		return [16]byte{}, false
	}
	f.armed = false
	f.fired++
	return f.mask, true
}

func newPlacedForFault(t *testing.T, cm Countermeasure) (*PlacedCipher, *Cipher, []byte) {
	t.Helper()
	rng := sim.NewRNG(77)
	key := make([]byte, 16)
	rng.Read(key)
	p, err := NewPlaced(&MapStore{}, key, 40)
	if err != nil {
		t.Fatal(err)
	}
	p.SetCountermeasure(cm)
	n, _ := NewCipher(key)
	return p, n, key
}

func TestCountermeasuresNoFaultTransparent(t *testing.T) {
	// With no fault injected, every countermeasure must release exactly the
	// native ciphertext: the defence cannot change correct outputs.
	rng := sim.NewRNG(9)
	iv := make([]byte, 16)
	rng.Read(iv)
	msg := make([]byte, 64)
	rng.Read(msg)
	for _, cm := range []Countermeasure{CMNone, CMRedundant, CMTag} {
		p, n, _ := newPlacedForFault(t, cm)
		want := make([]byte, len(msg))
		_ = n.EncryptCBC(want, msg, iv)
		got := make([]byte, len(msg))
		if err := p.EncryptCBC(got, msg, iv); err != nil {
			t.Fatalf("%s: unexpected error: %v", cm, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: ciphertext differs from native with no fault", cm)
		}
	}
}

func TestRoundNineFaultSpreadsToFourBytes(t *testing.T) {
	// The DFA precondition: a single-byte fault entering round 9 of AES-128
	// passes through exactly one MixColumns, so the faulty ciphertext
	// differs from the correct one in exactly 4 bytes, one per state row.
	p, n, _ := newPlacedForFault(t, CMNone)
	src := []byte("DFA-VICTIM-BLOCK")
	want := make([]byte, 16)
	n.Encrypt(want, src)

	hook := &oneShotFault{round: 9, armed: true}
	hook.mask[0] = 0x2A
	p.SetRoundFault(hook)
	got := make([]byte, 16)
	p.EncryptBlock(got, src)
	if hook.fired != 1 {
		t.Fatalf("fault fired %d times, want 1", hook.fired)
	}
	if p.FaultDetected() != nil {
		t.Fatal("CMNone must not detect anything")
	}
	diff := 0
	rows := map[int]bool{}
	for i := range want {
		if got[i] != want[i] {
			diff++
			rows[i%4] = true
		}
	}
	if diff != 4 || len(rows) != 4 {
		t.Fatalf("round-9 fault diff = %d bytes over %d rows, want 4 over 4", diff, len(rows))
	}

	// Disarmed hook: next block is clean again.
	p.EncryptBlock(got, src)
	if !bytes.Equal(got, want) {
		t.Fatal("disarmed hook still faulting")
	}
}

func TestCountermeasuresDetectFault(t *testing.T) {
	rng := sim.NewRNG(13)
	iv := make([]byte, 16)
	rng.Read(iv)
	msg := make([]byte, 4*16)
	rng.Read(msg)
	for _, cm := range []Countermeasure{CMRedundant, CMTag} {
		p, _, _ := newPlacedForFault(t, cm)
		// Seed the staging/destination with sentinels so "withheld" is
		// observable as zeros, not stale bytes.
		dst := bytes.Repeat([]byte{0xEE}, len(msg))
		hook := &oneShotFault{round: 9, armed: false}
		hook.mask[5] = 0x80
		p.SetRoundFault(hook)

		// Arm for the third CBC block, gating on the arena's public block
		// index so the redundant verify pass (which re-enters every round)
		// doesn't skew the count.
		ms := p.st.(*MapStore)
		p.SetRoundFault(roundFaultFunc(func(r int) ([16]byte, bool) {
			if ms.Data[offBlock] == 2 {
				return hook.FaultRound(r)
			}
			return [16]byte{}, false
		}))
		hook.armed = true

		err := p.EncryptCBC(dst, msg, iv)
		var fd *FaultDetectedError
		if !errors.As(err, &fd) {
			t.Fatalf("%s: want FaultDetectedError, got %v", cm, err)
		}
		if fd.Countermeasure != cm || fd.Block != 2 {
			t.Fatalf("%s: error = %+v, want cm=%s block=2", cm, fd, cm)
		}
		for i, b := range dst {
			if b != 0 {
				t.Fatalf("%s: dst[%d] = %#x, ciphertext not withheld", cm, i, b)
			}
		}
		// The arena's staging block must be zeroised too.
		for i := 0; i < 16; i++ {
			if ms.Data[offInput+i] != 0 {
				t.Fatalf("%s: staging byte %d not zeroised", cm, i)
			}
		}
		if p.FaultDetected() != nil {
			t.Fatalf("%s: latch not cleared after collection", cm)
		}
		// The engine stays usable after the abort.
		p.SetRoundFault(nil)
		if err := p.EncryptCBC(dst, msg, iv); err != nil {
			t.Fatalf("%s: engine unusable after abort: %v", cm, err)
		}
	}
}

// roundFaultFunc adapts a func to RoundFault.
type roundFaultFunc func(int) ([16]byte, bool)

func (f roundFaultFunc) FaultRound(r int) ([16]byte, bool) { return f(r) }

func TestFaultDetectedLatchOnDirectBlock(t *testing.T) {
	p, _, _ := newPlacedForFault(t, CMRedundant)
	hook := &oneShotFault{round: 9, armed: true}
	hook.mask[3] = 0x01
	p.SetRoundFault(hook)
	dst := bytes.Repeat([]byte{0xEE}, 16)
	p.EncryptBlock(dst, make([]byte, 16))
	fd := p.FaultDetected()
	if fd == nil || fd.Countermeasure != CMRedundant {
		t.Fatalf("latch = %+v", fd)
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("direct block not withheld")
		}
	}
}

func TestTagCountermeasureCatchesFinalRoundFault(t *testing.T) {
	// A fault entering the final round skips MixColumns entirely — the tag
	// fold must still catch the (single-lane) diffs.
	p, _, _ := newPlacedForFault(t, CMTag)
	hook := &oneShotFault{round: p.Rounds(), armed: true}
	hook.mask[7] = 0x40
	p.SetRoundFault(hook)
	dst := make([]byte, 16)
	p.EncryptBlock(dst, make([]byte, 16))
	if p.FaultDetected() == nil {
		t.Fatal("final-round fault escaped the tag check")
	}
}

func TestAdoptCarriesCountermeasureNotHook(t *testing.T) {
	p, _, key := newPlacedForFault(t, CMTag)
	hook := &oneShotFault{round: 9, armed: true}
	p.SetRoundFault(hook)
	st := &MapStore{}
	if _, err := NewPlaced(st, key, 40); err != nil { // materialise the arena
		t.Fatal(err)
	}
	c, err := AdoptPlacedFrom(p, st, key, 40)
	if err != nil {
		t.Fatal(err)
	}
	if c.Countermeasure() != CMTag {
		t.Fatal("adoption dropped the countermeasure")
	}
	if c.hook != nil {
		t.Fatal("adoption must not carry the parent's fault hook")
	}
}

func TestCountermeasureByName(t *testing.T) {
	cases := []struct {
		name string
		cm   Countermeasure
		ok   bool
	}{
		{"", CMNone, true},
		{"none", CMNone, true},
		{"redundant", CMRedundant, true},
		{"tag", CMTag, true},
		{"bogus", CMNone, false},
	}
	for _, c := range cases {
		cm, ok := CountermeasureByName(c.name)
		if cm != c.cm || ok != c.ok {
			t.Fatalf("CountermeasureByName(%q) = %v,%v", c.name, cm, ok)
		}
	}
	if CMRedundant.String() != "redundant" || CMTag.String() != "tag" || CMNone.String() != "none" {
		t.Fatal("String() names drifted")
	}
}

package aes

// This file derives every AES lookup table from first principles (GF(2^8)
// arithmetic) at init time rather than embedding magic constants. The
// layout matches the paper's Table 4 accounting:
//
//   - te, td: the "2 Round Tables" (2 × 1024 B = 2048 B). This is the
//     compact one-table-per-direction variant; the other three tables of
//     the classic 4-table implementation are byte rotations of these.
//   - sbox, invSbox: the "2 S-box" entry (2 × 256 B = 512 B).
//   - rcon: 10 round constants stored as 4-byte words (40 B).
//
// The tables hold no secrets, but the order they are indexed in depends on
// key and plaintext bytes — the "access-protected" class that bus-monitoring
// attacks exploit (Tromer/Osvik/Shamir cache attacks).

// gfMul multiplies two elements of GF(2^8) modulo the AES polynomial
// x^8 + x^4 + x^3 + x + 1 (0x11B).
func gfMul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// gfInv returns the multiplicative inverse in GF(2^8), with gfInv(0) = 0.
func gfInv(a byte) byte {
	if a == 0 {
		return 0
	}
	// a^254 = a^-1 in GF(2^8): square-and-multiply over the fixed exponent.
	result := byte(1)
	base := a
	for e := 254; e > 0; e >>= 1 {
		if e&1 != 0 {
			result = gfMul(result, base)
		}
		base = gfMul(base, base)
	}
	return result
}

var (
	sbox    [256]byte   // SubBytes
	invSbox [256]byte   // InvSubBytes
	te      [256]uint32 // encryption round table: bytes (2·S, S, S, 3·S)
	td      [256]uint32 // decryption round table: bytes (E·Si, 9·Si, D·Si, B·Si)
	rcon    [10]uint32  // round constants, x^i in the high byte
)

func init() {
	// S-box: affine transform of the field inverse.
	for i := 0; i < 256; i++ {
		x := gfInv(byte(i))
		// b_i = x_i ^ x_{i+4} ^ x_{i+5} ^ x_{i+6} ^ x_{i+7} ^ c_i, c = 0x63
		y := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = y
		invSbox[y] = byte(i)
	}
	for i := 0; i < 256; i++ {
		s := sbox[i]
		te[i] = uint32(gfMul(s, 2))<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(gfMul(s, 3))
		si := invSbox[i]
		td[i] = uint32(gfMul(si, 0x0E))<<24 | uint32(gfMul(si, 0x09))<<16 |
			uint32(gfMul(si, 0x0D))<<8 | uint32(gfMul(si, 0x0B))
	}
	x := byte(1)
	for i := 0; i < len(rcon); i++ {
		rcon[i] = uint32(x) << 24
		x = gfMul(x, 2)
	}
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

// ror rotates a 32-bit word right by n bits; te/td rotations yield the
// classic Te1..Te3/Td1..Td3 tables.
func ror(w uint32, n uint) uint32 { return w>>n | w<<(32-n) }

// subWord applies the S-box to each byte of a word (key expansion).
func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xFF])<<16 |
		uint32(sbox[w>>8&0xFF])<<8 | uint32(sbox[w&0xFF])
}

// invMixColumnsWord applies InvMixColumns to one column held as a word,
// used to derive the equivalent-inverse-cipher decryption key schedule.
func invMixColumnsWord(w uint32) uint32 {
	a := byte(w >> 24)
	b := byte(w >> 16)
	c := byte(w >> 8)
	d := byte(w)
	return uint32(gfMul(a, 0x0E)^gfMul(b, 0x0B)^gfMul(c, 0x0D)^gfMul(d, 0x09))<<24 |
		uint32(gfMul(a, 0x09)^gfMul(b, 0x0E)^gfMul(c, 0x0B)^gfMul(d, 0x0D))<<16 |
		uint32(gfMul(a, 0x0D)^gfMul(b, 0x09)^gfMul(c, 0x0E)^gfMul(d, 0x0B))<<8 |
		uint32(gfMul(a, 0x0B)^gfMul(b, 0x0D)^gfMul(c, 0x09)^gfMul(d, 0x0E))
}

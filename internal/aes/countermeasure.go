package aes

import "fmt"

// This file is the defence side of the differential-fault-analysis (DFA)
// adversary: an attacker who can flip bits in the cipher's round state
// mid-encryption recovers the key from one correct/faulty ciphertext pair
// per state column (Piret & Quisquater; "Fault Attacks on Encrypted General
// Purpose Compute Platforms"). The countermeasures below are the classic
// fault-*detecting* responses: compute redundantly (or verify with an
// independent datapath) and refuse to release a ciphertext that disagrees —
// a detected fault aborts the operation fail-safe instead of leaking.

// RoundFault is the adversarial fault hook of the placed cipher's
// full-fidelity encryption path. Before executing round r (1..Rounds(),
// where Rounds() is the final round), the cipher asks the hook for a fault;
// a returned mask is XORed into the 16-byte state entering that round,
// modelling a precisely-timed voltage/EM glitch on the state's resident
// memory. Implementations are expected to be one-shot per arming: a
// redundant recomputation must see a clean second pass, exactly as a real
// one-shot glitch corrupts only one of the two computations.
//
// State byte order is the FIPS 197 column-major layout: mask byte i hits
// state row i%4, column i/4.
type RoundFault interface {
	FaultRound(round int) ([16]byte, bool)
}

// Countermeasure selects the placed cipher's fault-detection mode on the
// full-fidelity encryption path. Detection is fail-safe: the staging state
// is zeroised, no ciphertext is released, and the operation reports a
// *FaultDetectedError so the caller can rekey.
type Countermeasure int

// Countermeasure modes.
const (
	// CMNone releases whatever the datapath produced — the undefended
	// baseline that loses to DFA.
	CMNone Countermeasure = iota
	// CMRedundant recomputes the whole block and compares: a one-shot fault
	// corrupts only one pass, so any mismatch is a detected fault. Costs a
	// second full set of state accesses and round computations.
	CMRedundant
	// CMTag folds the ciphertext into a truncated 32-bit integrity tag and
	// verifies it against an independent datapath before release. Cheaper
	// than full recomputation; the fold covers every byte lane, so any
	// single-round DFA fault (whose diffs land in distinct lanes) is caught.
	CMTag
)

func (c Countermeasure) String() string {
	switch c {
	case CMNone:
		return "none"
	case CMRedundant:
		return "redundant"
	case CMTag:
		return "tag"
	default:
		return fmt.Sprintf("Countermeasure(%d)", int(c))
	}
}

// CountermeasureByName resolves a countermeasure name ("none", "redundant",
// "tag"); the empty string is CMNone.
func CountermeasureByName(name string) (Countermeasure, bool) {
	switch name {
	case "", "none":
		return CMNone, true
	case "redundant":
		return CMRedundant, true
	case "tag":
		return CMTag, true
	}
	return CMNone, false
}

// FaultDetectedError reports that a countermeasure caught a computation
// fault during encryption. The faulty ciphertext was never released: the
// destination and the arena's staging block hold zeros. The engine remains
// usable, but callers should treat the key as glitch-targeted and rekey.
type FaultDetectedError struct {
	// Countermeasure that detected the fault.
	Countermeasure Countermeasure
	// Block is the CBC block index the fault was detected in.
	Block int
}

func (e *FaultDetectedError) Error() string {
	return fmt.Sprintf("aes: computation fault detected by %s countermeasure in block %d: ciphertext withheld", e.Countermeasure, e.Block)
}

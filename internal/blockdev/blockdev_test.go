package blockdev

import (
	"bytes"
	"testing"

	"sentry/internal/soc"
)

func TestRAMDiskRoundTrip(t *testing.T) {
	s := soc.Tegra3(1)
	d := NewRAMDisk(s, 1<<20)
	if d.Sectors() != 1<<20/SectorSize {
		t.Fatalf("sectors = %d", d.Sectors())
	}
	buf := bytes.Repeat([]byte{0xAB}, SectorSize)
	if err := d.WriteSector(7, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SectorSize)
	if err := d.ReadSector(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("sector data lost")
	}
}

func TestRAMDiskBounds(t *testing.T) {
	s := soc.Tegra3(1)
	d := NewRAMDisk(s, 10*SectorSize)
	buf := make([]byte, SectorSize)
	if err := d.ReadSector(10, buf); err == nil {
		t.Fatal("out-of-range sector read succeeded")
	}
	if err := d.WriteSector(0, buf[:100]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestRAMDiskChargesTime(t *testing.T) {
	s := soc.Tegra3(1)
	d := NewRAMDisk(s, 1<<20)
	buf := make([]byte, SectorSize)
	c0 := s.Clock.Cycles()
	for i := 0; i < 100; i++ {
		_ = d.WriteSector(uint64(i), buf)
	}
	if s.Clock.Cycles() == c0 {
		t.Fatal("I/O charged no time")
	}
	// Raw throughput should land in the hundreds of MB/s.
	mbps := float64(100*SectorSize) / (1 << 20) / s.Clock.SecondsFor(s.Clock.Cycles()-c0)
	if mbps < 100 || mbps > 1000 {
		t.Fatalf("raw ramdisk throughput = %v MB/s, want 100–1000", mbps)
	}
}

// Fork shares sector contents copy-on-write and charges the fork's I/O to
// the forked SoC's clock, with writes isolated in both directions.
func TestRAMDiskFork(t *testing.T) {
	s := soc.Tegra3(1)
	d := NewRAMDisk(s, 1<<20)
	a := bytes.Repeat([]byte{0xAA}, SectorSize)
	if err := d.WriteSector(3, a); err != nil {
		t.Fatal(err)
	}

	s2 := soc.Tegra3(2)
	f := d.Fork(s2)
	if f.Sectors() != d.Sectors() {
		t.Fatalf("fork capacity %d != parent %d", f.Sectors(), d.Sectors())
	}
	got := make([]byte, SectorSize)
	if err := f.ReadSector(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("fork does not see pre-fork sector data")
	}

	// Fork writes never reach the parent, and vice versa.
	b := bytes.Repeat([]byte{0xBB}, SectorSize)
	if err := f.WriteSector(3, b); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadSector(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("fork write leaked into the parent")
	}
	c := bytes.Repeat([]byte{0xCC}, SectorSize)
	if err := d.WriteSector(5, c); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadSector(5, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, c) {
		t.Fatal("parent write leaked into the fork")
	}

	// The fork's I/O charges s2, not the parent's clock.
	c0 := s2.Clock.Cycles()
	_ = f.WriteSector(0, b)
	if s2.Clock.Cycles() == c0 {
		t.Fatal("fork I/O charged no time on the forked SoC")
	}
}

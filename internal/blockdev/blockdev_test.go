package blockdev

import (
	"bytes"
	"testing"

	"sentry/internal/soc"
)

func TestRAMDiskRoundTrip(t *testing.T) {
	s := soc.Tegra3(1)
	d := NewRAMDisk(s, 1<<20)
	if d.Sectors() != 1<<20/SectorSize {
		t.Fatalf("sectors = %d", d.Sectors())
	}
	buf := bytes.Repeat([]byte{0xAB}, SectorSize)
	if err := d.WriteSector(7, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SectorSize)
	if err := d.ReadSector(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("sector data lost")
	}
}

func TestRAMDiskBounds(t *testing.T) {
	s := soc.Tegra3(1)
	d := NewRAMDisk(s, 10*SectorSize)
	buf := make([]byte, SectorSize)
	if err := d.ReadSector(10, buf); err == nil {
		t.Fatal("out-of-range sector read succeeded")
	}
	if err := d.WriteSector(0, buf[:100]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestRAMDiskChargesTime(t *testing.T) {
	s := soc.Tegra3(1)
	d := NewRAMDisk(s, 1<<20)
	buf := make([]byte, SectorSize)
	c0 := s.Clock.Cycles()
	for i := 0; i < 100; i++ {
		_ = d.WriteSector(uint64(i), buf)
	}
	if s.Clock.Cycles() == c0 {
		t.Fatal("I/O charged no time")
	}
	// Raw throughput should land in the hundreds of MB/s.
	mbps := float64(100*SectorSize) / (1 << 20) / s.Clock.SecondsFor(s.Clock.Cycles()-c0)
	if mbps < 100 || mbps > 1000 {
		t.Fatalf("raw ramdisk throughput = %v MB/s, want 100–1000", mbps)
	}
}

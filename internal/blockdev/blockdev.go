// Package blockdev provides the block-device substrate under dm-crypt: a
// sector-addressed device interface and the RAM-backed disk the paper's
// §8.2 dm-crypt experiments use (a 450 MB in-memory partition, chosen so
// the benchmark isolates crypto cost from disk latency).
package blockdev

import (
	"fmt"

	"sentry/internal/mem"
	"sentry/internal/soc"
)

// SectorSize is the device sector size in bytes.
const SectorSize = 512

// Device is a sector-addressed block device.
type Device interface {
	// Sectors returns the device capacity in sectors.
	Sectors() uint64
	// ReadSector copies sector n into dst (len SectorSize).
	ReadSector(n uint64, dst []byte) error
	// WriteSector stores src (len SectorSize) at sector n.
	WriteSector(n uint64, src []byte) error
}

// ramWordCycles is the per-word transfer cost of the RAM disk: a kernel
// memcpy between the page cache and the ramdisk region of DRAM. 16 cycles
// per word puts the raw device at roughly 300 MB/s on a 1.2 GHz core,
// matching the headroom the paper's in-memory partition shows before
// crypto is layered on.
const ramWordCycles = 16

// RAMDisk is an in-memory partition living in (simulated) DRAM.
type RAMDisk struct {
	s       *soc.SoC
	store   *mem.Store
	sectors uint64
}

// NewRAMDisk creates a RAM-backed partition of the given size (rounded
// down to whole sectors).
func NewRAMDisk(s *soc.SoC, size uint64) *RAMDisk {
	sectors := size / SectorSize
	return &RAMDisk{s: s, store: mem.NewStore(sectors * SectorSize), sectors: sectors}
}

// Sectors returns the capacity in sectors.
func (d *RAMDisk) Sectors() uint64 { return d.sectors }

// ResidentBytes reports the bytes of sector data the backing store has
// materialised (written pages only) — the disk's share of a parked device's
// resting footprint. The store is copy-on-write like any mem.Store, so
// forks share these pages until rewritten.
func (d *RAMDisk) ResidentBytes() int64 {
	return int64(d.store.ResidentPages()) * mem.PageSize
}

func (d *RAMDisk) check(n uint64, buf []byte) error {
	if n >= d.sectors {
		return fmt.Errorf("blockdev: sector %d beyond device end %d", n, d.sectors)
	}
	if len(buf) != SectorSize {
		return fmt.Errorf("blockdev: buffer is %d bytes, want %d", len(buf), SectorSize)
	}
	return nil
}

func (d *RAMDisk) charge() {
	d.s.Compute(SectorSize / 4 * ramWordCycles)
}

// ReadSector implements Device.
func (d *RAMDisk) ReadSector(n uint64, dst []byte) error {
	if err := d.check(n, dst); err != nil {
		return err
	}
	d.store.Read(n*SectorSize, dst)
	d.charge()
	return nil
}

// WriteSector implements Device.
func (d *RAMDisk) WriteSector(n uint64, src []byte) error {
	if err := d.check(n, src); err != nil {
		return err
	}
	d.store.Write(n*SectorSize, src)
	d.charge()
	return nil
}

// Store exposes the backing store so attacks can scan the "disk" contents
// (e.g. to verify dm-crypt left only ciphertext at rest).
func (d *RAMDisk) Store() *mem.Store { return d.store }

// Fork returns an independent copy of the disk for the forked SoC s2.
// Sector contents are shared copy-on-write with the parent, so the fork
// costs O(touched metadata); transfer charges land on s2's clock.
func (d *RAMDisk) Fork(s2 *soc.SoC) *RAMDisk {
	return &RAMDisk{s: s2, store: d.store.Fork(), sectors: d.sectors}
}

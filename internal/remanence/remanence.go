// Package remanence models the data-remanence effect of volatile memory:
// after a power cut, cells drift toward their ground state over time instead
// of clearing instantly, which is what makes cold-boot attacks possible
// (Halderman et al., USENIX Security '08).
//
// The model is stochastic and per-byte: after t seconds without power at
// temperature T, each byte independently survives with probability r(t, T)
// and otherwise collapses to its ground-state pattern. The DRAM curve is
// calibrated so that the paper's Table 2 pattern-survival measurements are
// reproduced at room temperature:
//
//	~50 ms power blip (device reflash)  → 97.5 % of 8-byte patterns survive
//	2 s reset                           → 0.1 % of 8-byte patterns survive
//
// An n-byte pattern survives iff all n bytes survive, so the per-byte curve
// is the n-th root of the measured pattern-survival curve. SRAM decays an
// order of magnitude more slowly than DRAM (Skorobogatov '02) — which is why
// the paper relies on the boot firmware explicitly zeroing iRAM, not on SRAM
// decay, for cold-boot safety.
package remanence

import (
	"math"

	"sentry/internal/mem"
	"sentry/internal/sim"
)

// RoomTempC is the reference temperature for the calibrated curves.
const RoomTempC = 20.0

// Curve is a stretched-exponential decay curve: the probability that a byte
// still holds its value t seconds after power-off at the reference
// temperature is exp(-(t/Tau)^K).
type Curve struct {
	Tau float64 // characteristic decay time in seconds at RoomTempC
	K   float64 // stretch exponent
}

// Calibrated technology curves. DRAMCurve solves the paper's two Table 2
// anchors exactly (see package comment); SRAMCurve is 10× slower.
var (
	DRAMCurve = Curve{Tau: 2.196, K: 1.5216}
	SRAMCurve = Curve{Tau: 21.96, K: 1.5216}
)

// CurveFor returns the decay curve for a storage technology.
func CurveFor(t mem.Technology) Curve {
	if t == mem.TechSRAM {
		return SRAMCurve
	}
	return DRAMCurve
}

// ByteRetention returns the probability that a single byte survives t
// seconds without power at temperature tempC. Cooling slows decay: Tau
// doubles for every 10 °C below room temperature (and halves above), the
// standard Arrhenius-style approximation used in the cold-boot literature.
func (c Curve) ByteRetention(t, tempC float64) float64 {
	if t <= 0 {
		return 1
	}
	tau := c.Tau * math.Pow(2, (RoomTempC-tempC)/10)
	return math.Exp(-math.Pow(t/tau, c.K))
}

// PatternRetention returns the probability that an n-byte pattern survives
// intact, which is the per-byte retention raised to the n-th power. This is
// the quantity the paper's Table 2 methodology measures by grepping memory
// dumps for an 8-byte pattern.
func (c Curve) PatternRetention(t, tempC float64, n int) float64 {
	return math.Pow(c.ByteRetention(t, tempC), float64(n))
}

// GroundByte returns the value a fully decayed byte collapses to. Real DRAM
// ranks alternate ground polarity by row; we model that as 64-byte rows of
// alternating 0x00/0xFF, which ensures decayed memory does not accidentally
// recreate interesting patterns (and lets tests distinguish "decayed" from
// "never written").
func GroundByte(addr uint64) byte {
	if addr>>6&1 == 1 {
		return 0xFF
	}
	return 0x00
}

// Decay applies t seconds of power-off decay at tempC to every materialised
// byte of the device, in place, drawing randomness from rng. Untouched
// (never-written) pages are already at architectural zero and are skipped.
//
// Each byte independently flips to ground with probability 1-r, but instead
// of one RNG draw per byte (≈1 G draws for a 1 GB fill) the sampler draws
// the gap to the next flipped byte from the geometric distribution the
// per-byte Bernoulli process induces: skip = floor(ln U / ln r) surviving
// bytes precede each flip. The work is O(flipped bytes), and the resulting
// flip pattern has exactly the per-byte distribution of the naive loop.
func Decay(d *mem.Device, rng *sim.RNG, t, tempC float64) {
	r := CurveFor(d.Tech()).ByteRetention(t, tempC)
	if r >= 1 {
		return
	}
	if r <= 0 {
		d.Store().MutatePages(func(base uint64, data []byte) {
			for i := range data {
				data[i] = GroundByte(base + uint64(i))
			}
		})
		return
	}
	invLogR := 1 / math.Log(r)
	d.Store().MutatePages(func(base uint64, data []byte) {
		i := 0
		for i < len(data) {
			u := rng.Float64()
			if u <= 0 {
				// log(0) would overflow the skip; a zero draw means "no flip
				// within any representable gap".
				return
			}
			gap := math.Floor(math.Log(u) * invLogR)
			if gap >= float64(len(data)-i) {
				return
			}
			i += int(gap)
			data[i] = GroundByte(base + uint64(i))
			i++
		}
	})
}

package remanence

import (
	"math"
	"testing"
	"testing/quick"

	"sentry/internal/mem"
	"sentry/internal/sim"
)

func TestCalibrationAnchors(t *testing.T) {
	// The DRAM curve must reproduce the paper's Table 2 pattern-survival
	// numbers at room temperature: 97.5 % after the ~50 ms reflash blip and
	// 0.1 % after the 2 s reset, measured on 8-byte patterns.
	got := DRAMCurve.PatternRetention(0.05, RoomTempC, 8)
	if math.Abs(got-0.975) > 0.005 {
		t.Errorf("reflash pattern retention = %.4f, want ~0.975", got)
	}
	got = DRAMCurve.PatternRetention(2.0, RoomTempC, 8)
	if math.Abs(got-0.001) > 0.0005 {
		t.Errorf("2s reset pattern retention = %.5f, want ~0.001", got)
	}
}

func TestZeroTimeRetainsEverything(t *testing.T) {
	if DRAMCurve.ByteRetention(0, RoomTempC) != 1 {
		t.Fatal("no power loss must retain 100%")
	}
}

func TestSRAMDecaysSlowerThanDRAM(t *testing.T) {
	for _, tt := range []float64{0.01, 0.1, 1, 2, 10} {
		if SRAMCurve.ByteRetention(tt, RoomTempC) <= DRAMCurve.ByteRetention(tt, RoomTempC) {
			t.Fatalf("SRAM should retain more than DRAM at t=%v", tt)
		}
	}
}

func TestColdSlowsDecay(t *testing.T) {
	warm := DRAMCurve.ByteRetention(2, RoomTempC)
	frozen := DRAMCurve.ByteRetention(2, -20)
	if frozen <= warm {
		t.Fatalf("freezing must slow decay: frozen=%v warm=%v", frozen, warm)
	}
	// The FROST attack works because a frozen phone retains most contents
	// through a reboot-length power cut.
	if frozen < 0.9 {
		t.Fatalf("frozen 2s retention = %v, expected > 0.9", frozen)
	}
}

// Property: retention is monotone non-increasing in time and temperature.
func TestRetentionMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint16, tempRaw int8) bool {
		a, b := float64(aRaw)/1000, float64(bRaw)/1000
		if a > b {
			a, b = b, a
		}
		temp := float64(tempRaw)
		if DRAMCurve.ByteRetention(a, temp) < DRAMCurve.ByteRetention(b, temp) {
			return false
		}
		// colder retains at least as much
		return DRAMCurve.ByteRetention(b, temp-10) >= DRAMCurve.ByteRetention(b, temp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecayDevice(t *testing.T) {
	d := mem.NewDevice("dram", mem.TechDRAM, 0, 1<<20)
	pattern := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04}
	for off := uint64(0); off < 1<<20; off += 8 {
		d.Store().Write(off, pattern)
	}
	rng := sim.NewRNG(42)
	Decay(d, rng, 2.0, RoomTempC)

	// Count surviving patterns; expect ~0.1%.
	survived, total := 0, 0
	buf := make([]byte, 8)
	for off := uint64(0); off < 1<<20; off += 8 {
		d.Store().Read(off, buf)
		total++
		if string(buf) == string(pattern) {
			survived++
		}
	}
	frac := float64(survived) / float64(total)
	if frac > 0.01 {
		t.Fatalf("after 2s, %.4f of patterns survived; want ~0.001", frac)
	}
}

func TestDecayZeroSecondsIsNoOp(t *testing.T) {
	d := mem.NewDevice("dram", mem.TechDRAM, 0, 4096)
	d.Store().Write(0, []byte{1, 2, 3, 4})
	Decay(d, sim.NewRNG(1), 0, RoomTempC)
	buf := make([]byte, 4)
	d.Store().Read(0, buf)
	if buf[0] != 1 || buf[3] != 4 {
		t.Fatal("zero-time decay mutated memory")
	}
}

func TestGroundByteAlternatesByRow(t *testing.T) {
	if GroundByte(0) != 0x00 || GroundByte(64) != 0xFF || GroundByte(128) != 0x00 {
		t.Fatal("ground pattern should alternate per 64-byte row")
	}
}

func TestCurveForTechnology(t *testing.T) {
	if CurveFor(mem.TechSRAM) != SRAMCurve || CurveFor(mem.TechDRAM) != DRAMCurve {
		t.Fatal("CurveFor mismatch")
	}
}

package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"sentry/internal/bus"
	"sentry/internal/mem"
	"sentry/internal/sim"
)

const dramBase = 0x80000000

func testRig(cfg Config) (*L2, *bus.Bus, *mem.Device, *sim.Clock) {
	clock := sim.NewClock(1e9)
	meter := &sim.Meter{}
	costs := &sim.CostTable{DRAMAccess: 10, L2Hit: 1}
	energy := &sim.EnergyTable{DRAMAccessPJ: 10, L2HitPJ: 1}
	dram := mem.NewDevice("dram", mem.TechDRAM, dramBase, 64<<20)
	b := bus.New(clock, meter, costs, energy, mem.NewMap(dram))
	return New(cfg, clock, meter, costs, energy, b), b, dram, clock
}

var smallCfg = Config{Ways: 4, WaySize: 4096, LineSize: 32}

func TestReadWriteRoundTrip(t *testing.T) {
	c, _, _, _ := testRig(smallCfg)
	data := []byte("the quick brown fox jumps over the lazy dog") // crosses lines
	c.Write(dramBase+100, data)
	got := make([]byte, len(data))
	c.Read(dramBase+100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestWriteBackOnlyOnEviction(t *testing.T) {
	c, b, dram, _ := testRig(smallCfg)
	c.Write(dramBase, []byte{0xAA})
	// Dirty line resides in cache; DRAM must still be zero.
	if dram.ByteAt(dramBase) != 0 {
		t.Fatal("write-through behaviour: dirty data reached DRAM early")
	}
	if hit, _, dirty := c.Probe(dramBase); !hit || !dirty {
		t.Fatal("line should be resident and dirty")
	}
	// Touch enough conflicting lines to force eviction: same set repeats
	// every WaySize bytes; 4 ways means the 5th conflicting line evicts.
	for i := 1; i <= 4; i++ {
		c.Read(dramBase+mem.PhysAddr(i*smallCfg.WaySize), make([]byte, 1))
	}
	if dram.ByteAt(dramBase) != 0xAA {
		t.Fatal("evicted dirty line was not written back")
	}
	if b.Stats().Writes == 0 {
		t.Fatal("write-back should appear on the bus")
	}
}

func TestHitProducesNoBusTraffic(t *testing.T) {
	c, b, _, _ := testRig(smallCfg)
	c.Write(dramBase, make([]byte, 32))
	before := b.Stats()
	for i := 0; i < 100; i++ {
		c.Read(dramBase, make([]byte, 32))
		c.Write(dramBase, make([]byte, 32))
	}
	after := b.Stats()
	if before != after {
		t.Fatalf("cache hits leaked to the bus: %+v -> %+v", before, after)
	}
}

func TestLockedWayLinesNeverEvicted(t *testing.T) {
	c, _, dram, _ := testRig(smallCfg)
	secret := []byte("PINNED-SECRET-0xFEEDFACE-PINNED!") // 32 bytes, one line

	// Paper §4.5 lock sequence: flush, enable only way 0, warm, enable rest.
	c.CleanInvalidateWays(c.AllWaysMask())
	c.SetAllocMask(1 << 0)
	c.Write(dramBase+0x40, secret)
	c.SetAllocMask(c.AllWaysMask() &^ (1 << 0)) // lock way 0

	// Hammer the same set with conflicting lines; way 0 must survive.
	for i := 1; i < 64; i++ {
		c.Read(dramBase+mem.PhysAddr(0x40+i*smallCfg.WaySize), make([]byte, 32))
	}
	if hit, way, _ := c.Probe(dramBase + 0x40); !hit || way != 0 {
		t.Fatalf("locked line gone: hit=%v way=%d", hit, way)
	}
	// And the secret must never have reached DRAM.
	buf := make([]byte, 32)
	dram.Read(dramBase+0x40, buf)
	if bytes.Contains(buf, []byte("PINNED")) {
		t.Fatal("locked-way data leaked to DRAM")
	}
	// But reads still hit it.
	got := make([]byte, 32)
	c.Read(dramBase+0x40, got)
	if !bytes.Equal(got, secret) {
		t.Fatal("locked line no longer readable")
	}
}

func TestMaskedFlushSkipsLockedWay(t *testing.T) {
	c, _, dram, _ := testRig(smallCfg)
	c.SetAllocMask(1 << 0)
	c.Write(dramBase, []byte("lockme"))
	c.SetAllocMask(c.AllWaysMask() &^ 1)
	// The kernel's patched flush path: all ways except locked way 0.
	c.CleanInvalidateWays(c.AllWaysMask() &^ 1)
	buf := make([]byte, 6)
	dram.Read(dramBase, buf)
	if bytes.Equal(buf, []byte("lockme")) {
		t.Fatal("masked flush pushed locked data to DRAM")
	}
	if hit, _, _ := c.Probe(dramBase); !hit {
		t.Fatal("masked flush invalidated the locked way")
	}
}

func TestUnmaskedFlushLeaksLockedWay(t *testing.T) {
	// The hazard the paper's kernel change exists to prevent: a full flush
	// DOES clean locked ways out to DRAM.
	c, _, dram, _ := testRig(smallCfg)
	c.SetAllocMask(1 << 0)
	c.Write(dramBase, []byte("lockme"))
	c.SetAllocMask(c.AllWaysMask() &^ 1)
	c.CleanInvalidateWays(c.AllWaysMask())
	buf := make([]byte, 6)
	dram.Read(dramBase, buf)
	if !bytes.Equal(buf, []byte("lockme")) {
		t.Fatal("expected unmasked flush to write locked data back (the documented hazard)")
	}
}

func TestAllWaysLockedBypassesToDRAM(t *testing.T) {
	c, b, _, _ := testRig(smallCfg)
	c.SetAllocMask(0)
	before := b.Stats()
	c.Write(dramBase+0x1000, []byte{1, 2, 3, 4})
	got := make([]byte, 4)
	c.Read(dramBase+0x1000, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatal("bypass lost data")
	}
	if b.Stats().Writes == before.Writes {
		t.Fatal("bypass write should hit the bus")
	}
	if c.Stats().Bypasses == 0 {
		t.Fatal("bypass not counted")
	}
}

func TestInvalidateDropsDirtyData(t *testing.T) {
	c, _, dram, _ := testRig(smallCfg)
	c.Write(dramBase, []byte{0x77})
	c.InvalidateWays(c.AllWaysMask())
	if dram.ByteAt(dramBase) != 0 {
		t.Fatal("invalidate must not write back")
	}
	if hit, _, _ := c.Probe(dramBase); hit {
		t.Fatal("line survived invalidate")
	}
	// A subsequent read refetches (zero) from DRAM.
	buf := make([]byte, 1)
	c.Read(dramBase, buf)
	if buf[0] != 0 {
		t.Fatal("stale data after invalidate")
	}
}

func TestSnoopDoesNotPerturb(t *testing.T) {
	c, _, _, clock := testRig(smallCfg)
	c.Write(dramBase, []byte("abcd"))
	s0, c0 := c.Stats(), clock.Cycles()
	buf := make([]byte, 4)
	if !c.Snoop(dramBase, buf) || !bytes.Equal(buf, []byte("abcd")) {
		t.Fatal("snoop failed on resident line")
	}
	if c.Stats() != s0 || clock.Cycles() != c0 {
		t.Fatal("snoop perturbed stats or time")
	}
	if c.Snoop(dramBase+mem.PhysAddr(16*smallCfg.WaySize), buf) {
		t.Fatal("snoop hit on absent line")
	}
}

func TestValidLines(t *testing.T) {
	c, _, _, _ := testRig(smallCfg)
	c.SetAllocMask(1)
	c.Write(dramBase, make([]byte, 64)) // two lines into way 0
	if got := c.ValidLines(0); got != 2 {
		t.Fatalf("ValidLines(0) = %d, want 2", got)
	}
}

func TestStatsCounting(t *testing.T) {
	c, _, _, _ := testRig(smallCfg)
	c.Read(dramBase, make([]byte, 4)) // miss
	c.Read(dramBase, make([]byte, 4)) // hit
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats failed")
	}
}

// Property: under arbitrary interleavings of cached reads, writes, and
// maintenance operations, a read always observes the most recent write
// (single-master coherence against a flat model).
func TestCacheCoherenceAgainstFlatModel(t *testing.T) {
	f := func(ops []struct {
		Kind byte
		Off  uint16
		Val  byte
	}) bool {
		c, _, dram, _ := testRig(Config{Ways: 2, WaySize: 512, LineSize: 32})
		model := make([]byte, 1<<16)
		for _, op := range ops {
			off := mem.PhysAddr(op.Off)
			switch op.Kind % 5 {
			case 0:
				c.Write(dramBase+off, []byte{op.Val})
				model[op.Off] = op.Val
			case 1:
				got := make([]byte, 1)
				c.Read(dramBase+off, got)
				if got[0] != model[op.Off] {
					return false
				}
			case 2:
				c.CleanWays(c.AllWaysMask())
			case 3:
				c.CleanInvalidateWays(c.AllWaysMask())
			case 4:
				// Clean then check DRAM directly matches the model.
				c.CleanWays(c.AllWaysMask())
				if dram.ByteAt(dramBase+off) != model[op.Off] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad geometry")
		}
	}()
	testRig(Config{Ways: 0, WaySize: 4096, LineSize: 32})
}

func TestTegra3Geometry(t *testing.T) {
	c, _, _, _ := testRig(Tegra3Config)
	if c.SizeBytes() != 1<<20 {
		t.Fatalf("Tegra3 L2 = %d bytes, want 1 MB", c.SizeBytes())
	}
	if c.Sets() != 4096 {
		t.Fatalf("sets = %d, want 4096", c.Sets())
	}
}

func TestInvalidateRangeDropsLines(t *testing.T) {
	c, _, dram, _ := testRig(smallCfg)
	c.Write(dramBase+0x100, []byte("0123456789abcdef0123456789abcdef0123456789abcdef")) // 48B: two lines
	c.InvalidateRange(dramBase+0x100, 48)
	if hit, _, _ := c.Probe(dramBase + 0x100); hit {
		t.Fatal("line survived InvalidateRange")
	}
	if hit, _, _ := c.Probe(dramBase + 0x120); hit {
		t.Fatal("second line survived InvalidateRange")
	}
	// Nothing reached DRAM (no write-back).
	if dram.ByteAt(dramBase+0x100) != 0 {
		t.Fatal("InvalidateRange wrote back")
	}
	// Lines outside the range survive.
	c.Write(dramBase+0x200, []byte{1})
	c.InvalidateRange(dramBase+0x100, 32)
	if hit, _, _ := c.Probe(dramBase + 0x200); !hit {
		t.Fatal("InvalidateRange hit unrelated line")
	}
}

func TestCleanRangeWritesBack(t *testing.T) {
	c, _, dram, _ := testRig(smallCfg)
	c.Write(dramBase+0x40, []byte("dma-bound-data"))
	if dram.ByteAt(dramBase+0x40) != 0 {
		t.Fatal("premature write-back")
	}
	c.CleanRange(dramBase+0x40, 14)
	buf := make([]byte, 14)
	dram.Read(dramBase+0x40, buf)
	if !bytes.Equal(buf, []byte("dma-bound-data")) {
		t.Fatal("CleanRange did not write back")
	}
	// Line stays valid after a clean.
	if hit, _, _ := c.Probe(dramBase + 0x40); !hit {
		t.Fatal("clean invalidated the line")
	}
}

package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"sentry/internal/mem"
)

// cachesIdentical compares every architecturally visible piece of state:
// per-position validity, flags, tags, contents, victim pointers, lockdown,
// and stats.
func cachesIdentical(t *testing.T, a, b *L2) {
	t.Helper()
	if a.stats != b.stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.stats, b.stats)
	}
	if a.allocMask != b.allocMask || a.master != b.master || a.indexKey != b.indexKey {
		t.Fatal("registers diverged")
	}
	for s := 0; s < a.sets; s++ {
		if a.validMask[s] != b.validMask[s] {
			t.Fatalf("set %d validMask %#x vs %#x", s, a.validMask[s], b.validMask[s])
		}
		if a.victim[s] != b.victim[s] {
			t.Fatalf("set %d victim %d vs %d", s, a.victim[s], b.victim[s])
		}
		for w := 0; w < a.cfg.Ways; w++ {
			la, lb := &a.lines[s][w], &b.lines[s][w]
			if la.valid != lb.valid {
				t.Fatalf("set %d way %d valid %v vs %v", s, w, la.valid, lb.valid)
			}
			if !la.valid {
				continue
			}
			if la.tag != lb.tag || la.dirty != lb.dirty || la.holder != lb.holder {
				t.Fatalf("set %d way %d meta diverged", s, w)
			}
			if !bytes.Equal(a.lineData(la), b.lineData(lb)) {
				t.Fatalf("set %d way %d contents diverged", s, w)
			}
		}
	}
	for w := 0; w < a.cfg.Ways; w++ {
		if a.validCount[w] != b.validCount[w] {
			t.Fatalf("way %d validCount %d vs %d", w, a.validCount[w], b.validCount[w])
		}
	}
}

// driveTraffic applies a deterministic mixed workload derived from ops.
func driveTraffic(c *L2, ops []uint16) {
	buf := make([]byte, 48)
	for i, op := range ops {
		addr := dramBase + mem.PhysAddr(op)*13
		switch op % 7 {
		case 0, 1, 2:
			c.Write(addr, buf[:1+op%32])
		case 3, 4:
			c.Read(addr, buf[:1+op%48])
		case 5:
			c.CleanRange(addr, 64)
		default:
			if i%3 == 0 {
				c.InvalidateRange(addr, 64)
			} else {
				c.CleanWays(1 << (op % 4))
			}
		}
	}
}

// TestDeflateInflateRoundTrip drives random traffic on a fork of a frozen
// base, deflates it, and demands the inflated reconstruction be identical —
// in state and in subsequent behaviour — to a plain clone taken before the
// deflate.
func TestDeflateInflateRoundTrip(t *testing.T) {
	f := func(warm, ops []uint16) bool {
		base, _, _, _ := testRig(smallCfg)
		driveTraffic(base, warm)
		base.FreezeShared()

		clock := base.clock
		child := base.Clone(clock, base.meter, base.bus)
		driveTraffic(child, ops)

		// Reference: an ordinary clone of the diverged child.
		want := child.Clone(clock, base.meter, base.bus)
		if n := child.Deflate(base); n < 0 {
			t.Fatal("negative footprint")
		}
		got := child.Clone(clock, base.meter, base.bus)
		cachesIdentical(t, want, got)

		// The reconstruction must also behave identically going forward and
		// stay isolated from the base.
		baseBefore := base.stats
		driveTraffic(want, ops[:len(ops)/2])
		driveTraffic(got, ops[:len(ops)/2])
		cachesIdentical(t, want, got)
		if base.stats != baseBefore {
			t.Fatal("traffic on the reconstruction mutated the frozen base")
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeflateShrinksFootprint pins the point of the exercise: a deflated
// cache must cost a small fraction of its dense encoding.
func TestDeflateShrinksFootprint(t *testing.T) {
	base, _, _, _ := testRig(Tegra3Config)
	for i := 0; i < 64; i++ {
		base.Write(dramBase+mem.PhysAddr(i*4096), []byte("boot"))
	}
	base.FreezeShared()
	child := base.Clone(base.clock, base.meter, base.bus)
	for i := 0; i < 16; i++ {
		child.Write(dramBase+mem.PhysAddr(i*64), []byte("diverged"))
	}
	dense := child.FootprintBytes()
	delta := child.Deflate(base)
	if delta*20 > dense {
		t.Fatalf("deflate kept %d of %d dense bytes — expected >20x reduction", delta, dense)
	}
	// Repeated hydration from the same delta must keep working.
	a := child.Clone(base.clock, base.meter, base.bus)
	b := child.Clone(base.clock, base.meter, base.bus)
	cachesIdentical(t, a, b)
}

package cache

import (
	"testing"

	"sentry/internal/mem"
)

// platformCfg mirrors the Tegra 3 L2 shape: 8-way, 1 MB, 32-byte lines.
var platformCfg = Config{Ways: 8, WaySize: 128 * 1024, LineSize: 32}

// BenchmarkFillSweep streams reads through a span larger than one way, so
// every access misses and allocates a line. This is the path the lazy
// line-data arena optimises: line backing storage is allocated at first
// fill, not at cache construction.
func BenchmarkFillSweep(b *testing.B) {
	span := mem.PhysAddr(2 * platformCfg.WaySize)
	var buf [1]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, _, _, _ := testRig(platformCfg)
		for off := mem.PhysAddr(0); off < span; off += mem.PhysAddr(platformCfg.LineSize) {
			c.Read(dramBase+off, buf[:])
		}
	}
}

// BenchmarkNewCold measures bare cache construction. With lazy line data
// this is metadata-only regardless of capacity.
func BenchmarkNewCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, _, _, _ := testRig(platformCfg)
		_ = c
	}
}

// BenchmarkCleanWaysSparse measures a masked clean of a nearly-empty cache:
// the per-way valid-line counters let CleanWays skip empty ways without
// walking their sets.
func BenchmarkCleanWaysSparse(b *testing.B) {
	c, _, _, _ := testRig(platformCfg)
	var buf [1]byte
	c.Read(dramBase, buf[:]) // one resident line
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CleanWays(0xFF)
	}
}

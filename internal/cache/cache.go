// Package cache models the shared L2 cache of a Cortex-A9 class SoC managed
// by a PL310-style controller. It implements the three behaviours Sentry
// depends on:
//
//   - Lockdown by way: ways can be excluded from allocation, so lines already
//     resident in an excluded ("locked") way remain hittable but are never
//     evicted or written back until the way is unlocked. This is the paper's
//     §4.2/§4.5 mechanism for pinning plaintext on the SoC.
//   - Maskable maintenance: clean/invalidate operations take a way mask, so
//     an OS can flush "the whole cache" while skipping locked ways — the
//     Linux change the paper describes (428 → 676 lines in their port).
//   - DMA bypass: DMA engines transfer against DRAM directly (package dma),
//     never through this cache, so locked plaintext is invisible to DMA.
//
// The cache is physically indexed and tagged, write-back, write-allocate,
// with round-robin victim selection among allocation-enabled ways. When no
// way in a set is allocation-enabled, accesses bypass the cache and go to
// DRAM uncached — matching the PL310's behaviour when software locks every
// way.
package cache

import (
	"fmt"
	"math/bits"
	"sync"

	"sentry/internal/bus"
	"sentry/internal/mem"
	"sentry/internal/obs"
	"sentry/internal/sim"
)

// Config sizes the cache geometry and selects behavioural variants.
type Config struct {
	Ways     int // associativity (PL310: up to 16; Tegra 3 uses 8)
	WaySize  int // bytes per way (Tegra 3: 128 KB)
	LineSize int // bytes per line (PL310: 32)

	// AutoLock models the inclusive-L2 behaviour Green et al. describe
	// (AutoLock, PAPERS.md): a line held in another core's L1 is
	// transparently locked in L2 — a different core cannot evict it. Each
	// line tracks a holder bitmask of the masters that touched it since its
	// fill; pickVictim skips ways whose line is cross-held, and an access
	// that finds no evictable way bypasses to DRAM.
	AutoLock bool

	// RandomizedIndex enables a keyed set-index permutation (the
	// randomized-cache defence variant, PAPERS.md): the set for a line is
	// its base index XORed with a keyed hash of the tag, re-keyed per boot
	// via SetIndexKey. Congruence — which addresses contend for a set —
	// becomes secret, defeating eviction-set construction.
	RandomizedIndex bool
}

// Tegra3Config is the 1 MB, 8-way, 32 B/line geometry of the Tegra 3 board.
var Tegra3Config = Config{Ways: 8, WaySize: 128 * 1024, LineSize: 32}

// Stats counts cache events since the last reset.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	WriteBacks uint64
	Bypasses   uint64 // accesses that went uncached because no way could allocate
}

// line is deliberately pointer-free (16 bytes): the per-cache slab holds
// sets×ways of them, and a pointer-free slab costs the allocator a plain
// memclr and the garbage collector nothing at all — with a []byte inside,
// every booted world added a megabyte the GC had to scan. Line contents live
// in the cache's bufs table; buf is a 1-based index into it (0 = no buffer,
// which is also the zero value, so a fresh slab needs no initialisation).
type line struct {
	valid bool
	dirty bool
	// shared marks the line's buffer as aliased with a clone
	// (copy-on-write): every mutation of the contents must go through own()
	// or install a fresh buffer. Reads (write-backs, hits, ReadLine) use
	// shared buffers freely.
	shared bool
	// holder is the bitmask of masters (cores) that touched the line since
	// its fill — the AutoLock "held in some L1" approximation. Only
	// maintained when Config.AutoLock is set; it occupies struct padding,
	// so the slab stays the same size and remains pointer-free.
	holder uint8
	tag    uint64
	buf    uint32
}

// L2 is the second-level cache. It is not safe for concurrent use; the
// simulated platform is single-threaded by design.
type L2 struct {
	cfg    Config
	sets   int
	clock  *sim.Clock
	meter  *sim.Meter
	costs  *sim.CostTable
	energy *sim.EnergyTable
	bus    *bus.Bus

	// Geometry is power-of-two, so set/tag extraction is shift-and-mask —
	// index() runs on every access and must not divide.
	lineShift uint
	setShift  uint
	setMask   uint64
	offMask   uint64

	// lines is indexed [set][way]: lookup and victim selection walk the
	// ways of one set, so a set's ways must be contiguous in memory. All
	// rows are windows into slab, which Clone copies with one memmove.
	lines [][]line
	slab  []line
	// bufs is the line-contents table; line.buf indexes it 1-based. Its
	// length tracks the peak number of concurrently-filled lines, not the
	// cache capacity, and a clone shares the parent's buffers copy-on-write.
	// freeBufs lists slots detached by invalidation, reused by the next
	// fill so that invalidate/refill cycles do not grow the table.
	bufs     [][]byte
	freeBufs []uint32
	// meta owns slab, lines, validMask, validCount, tags, and victim (the
	// fields alias it); Release recycles the bundle through a pool so the
	// model checker's fork-heavy sweeps do not re-allocate ~¾ MB per clone.
	meta *metaArrays
	validMask []uint32 // per-set bitmask of ways holding a valid line
	// validCount[w] is the number of valid lines way w holds — the sum of
	// validMask bit w over all sets. Maintenance walks consult it to skip
	// empty ways outright and to stop a walk once every valid line has been
	// visited: campaign workloads keep most ways nearly empty, so the full
	// Ways×Sets sweep is almost always cut short.
	validCount []int
	// dataArena is the tail of the current line-data allocation chunk; see
	// newLineData.
	dataArena []byte
	// tags mirrors the per-line tag fields as a dense flat array
	// (tags[set*Ways+way]): a tag-match scan touches one or two cache
	// lines of host memory instead of striding across line structs.
	// Entries go stale on invalidation; validMask arbitrates.
	tags      []uint64
	allocMask uint32 // bit w set => way w may allocate new lines
	victim    []int  // per-set round-robin pointer
	stats     Stats

	// master is the core id charged with subsequent accesses (AutoLock
	// holder tracking). The simulated platform is single-threaded, so this
	// is a mode switch, not a concurrency hazard; core 0 is the victim
	// system, attack drivers run as core 1.
	master uint8
	// indexKey keys the randomized index permutation (Config.RandomizedIndex);
	// re-drawn per boot by the SoC layer via SetIndexKey.
	indexKey uint64

	// Observability: nil (and nil-safe) until SetObs wires them.
	trace       *obs.Tracer
	ctrHits     *obs.Counter
	ctrMisses   *obs.Counter
	ctrBypasses *obs.Counter
	ctrWBs      *obs.Counter
	gaugeLocked *obs.Gauge

	// faults is nil unless a fault injector is attached; only the
	// maintenance entry points consult it, never the access fast path.
	faults FaultInjector

	// frozen marks a cache that FreezeShared pinned read-only: every valid
	// line's buffer is already flagged shared, so Clone skips its parent-side
	// mutation pass and concurrent Clone/Deflate against it are safe.
	frozen bool
	// defl, when non-nil, means the cache has been re-encoded as a delta
	// against a frozen base (Deflate): the dense arrays are released and the
	// only legal operations are Clone (which inflates) and Release.
	defl *l2Delta
}

// FaultInjector perturbs cache-maintenance operations. DropMaint is
// consulted once at the entry of each kernel-reachable maintenance
// operation (op names: "clean-ways", "invalidate-ways", "clean-range",
// "invalidate-range"); returning true silently drops the whole operation
// (a glitched controller command). Implementations may instead panic to
// model power loss at that point — no part of the operation has run yet.
type FaultInjector interface {
	DropMaint(op string) bool
}

// metaArrays bundles the dense per-cache metadata every cache owns
// privately: the line slab, its per-set windows, the tag mirror, the
// validity tracking, and the per-set victim pointers. Forking a world
// clones its L2, and a model-checking sweep forks worlds thousands of
// times a second — a fresh ~¾ MB of zeroed allocations per clone made a
// fork cost as much as a cold boot, nearly all of it allocator and GC
// work. Dead caches hand their bundle back through Release, and the next
// New or Clone reuses it.
type metaArrays struct {
	sets, ways int
	slab       []line
	lines      [][]line
	validMask  []uint32
	validCount []int
	tags       []uint64
	victim     []int
}

var metaPool sync.Pool

// newMeta returns a bundle for the geometry, reusing a pooled one when the
// dimensions match. zeroed guarantees cleared contents (a cold boot needs
// an empty cache); Clone passes false because it overwrites every entry
// from the parent and the clearing would be pure waste.
func newMeta(sets, ways int, zeroed bool) *metaArrays {
	if a, _ := metaPool.Get().(*metaArrays); a != nil && a.sets == sets && a.ways == ways {
		if zeroed {
			clear(a.slab)
			clear(a.validMask)
			clear(a.validCount)
			clear(a.tags)
			clear(a.victim)
		}
		return a
	}
	a := &metaArrays{
		sets: sets, ways: ways,
		slab:       make([]line, sets*ways),
		lines:      make([][]line, sets),
		validMask:  make([]uint32, sets),
		validCount: make([]int, ways),
		tags:       make([]uint64, sets*ways),
		victim:     make([]int, sets),
	}
	// All line structs come from one pointer-free slab allocation: tens of
	// thousands of tiny per-line allocations per booted platform add up
	// across experiments. Line contents are NOT allocated here — a line
	// gets a buffer on first fill (newLineData) — because campaign and
	// experiment workloads touch a small fraction of the cache, and zeroing
	// a capacity-sized data slab per booted world dominated the boot
	// profile.
	for s, slab := 0, a.slab; s < sets; s++ {
		a.lines[s], slab = slab[:ways:ways], slab[ways:]
	}
	return a
}

// Release returns the cache's private metadata arrays to the clone pool
// and leaves the cache unusable. Only an exclusive owner may call it —
// the arrays are recycled into future caches, so any later use of this
// one would corrupt an unrelated world. Line-content buffers are never
// recycled: they may be shared copy-on-write with live clones.
func (c *L2) Release() {
	if c.meta == nil {
		return
	}
	metaPool.Put(c.meta)
	c.meta = nil
	c.lines, c.slab, c.validMask, c.validCount, c.tags, c.victim = nil, nil, nil, nil, nil, nil
}

// New returns an L2 of the given geometry in front of the given bus.
func New(cfg Config, clock *sim.Clock, meter *sim.Meter, costs *sim.CostTable, energy *sim.EnergyTable, b *bus.Bus) *L2 {
	return newL2(cfg, clock, meter, costs, energy, b, true)
}

func newL2(cfg Config, clock *sim.Clock, meter *sim.Meter, costs *sim.CostTable, energy *sim.EnergyTable, b *bus.Bus, zeroed bool) *L2 {
	if cfg.Ways <= 0 || cfg.Ways > 32 {
		panic(fmt.Sprintf("cache: unsupported way count %d", cfg.Ways))
	}
	if cfg.WaySize%cfg.LineSize != 0 {
		panic("cache: way size must be a multiple of line size")
	}
	sets := cfg.WaySize / cfg.LineSize
	if bits.OnesCount(uint(cfg.LineSize)) != 1 || bits.OnesCount(uint(sets)) != 1 {
		panic("cache: line size and set count must be powers of two")
	}
	c := &L2{
		cfg: cfg, sets: sets,
		clock: clock, meter: meter, costs: costs, energy: energy, bus: b,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setShift:  uint(bits.TrailingZeros(uint(sets))),
		setMask:   uint64(sets - 1),
		offMask:   uint64(cfg.LineSize - 1),
		allocMask: (1 << cfg.Ways) - 1,
	}
	c.meta = newMeta(sets, cfg.Ways, zeroed)
	c.slab = c.meta.slab
	c.lines = c.meta.lines
	c.validMask = c.meta.validMask
	c.validCount = c.meta.validCount
	c.tags = c.meta.tags
	c.victim = c.meta.victim
	return c
}

// newLineData returns a zeroed line-sized buffer, carving it from a chunked
// arena so filling N distinct lines costs N/chunk allocations, not N.
func (c *L2) newLineData() []byte {
	if len(c.dataArena) < c.cfg.LineSize {
		c.dataArena = make([]byte, 256*c.cfg.LineSize)
	}
	d := c.dataArena[:c.cfg.LineSize:c.cfg.LineSize]
	c.dataArena = c.dataArena[c.cfg.LineSize:]
	return d
}

// lineData returns ln's contents. Valid lines always have a buffer.
func (c *L2) lineData(ln *line) []byte { return c.bufs[ln.buf-1] }

// newBuf installs a private buffer for ln and returns its contents,
// preferring a slot detached by an earlier invalidation. The buffer is NOT
// zeroed: every caller overwrites the whole line (bus refill in fill, full
// copy in own).
func (c *L2) newBuf(ln *line) []byte {
	if n := len(c.freeBufs); n > 0 {
		idx := c.freeBufs[n-1]
		c.freeBufs = c.freeBufs[:n-1]
		d := c.bufs[idx-1]
		if d == nil { // slot was shared with a clone, or emptied by Clone
			d = c.newLineData()
			c.bufs[idx-1] = d
		}
		ln.buf, ln.shared = idx, false
		return d
	}
	d := c.newLineData()
	c.bufs = append(c.bufs, d)
	ln.buf, ln.shared = uint32(len(c.bufs)), false
	return d
}

// dropBuf detaches ln's buffer (if any) on invalidation, recycling its slot.
// A buffer shared with a clone is left to the clone: the slot is nilled so
// a later reuse allocates fresh storage.
func (c *L2) dropBuf(ln *line) {
	if ln.buf == 0 {
		return
	}
	if ln.shared {
		c.bufs[ln.buf-1] = nil
	}
	c.freeBufs = append(c.freeBufs, ln.buf)
	ln.buf, ln.shared = 0, false
}

// own makes ln's contents private before a partial mutation, copying the
// shared buffer aside. No-op for lines that already own their buffer.
func (c *L2) own(ln *line) {
	if !ln.shared {
		return
	}
	old := c.lineData(ln)
	copy(c.newBuf(ln), old)
}

// Config returns the cache geometry.
func (c *L2) Config() Config { return c.cfg }

// Sets returns the number of sets per way.
func (c *L2) Sets() int { return c.sets }

// SizeBytes returns the total cache capacity.
func (c *L2) SizeBytes() int { return c.cfg.Ways * c.cfg.WaySize }

// Stats returns a snapshot of the event counters.
func (c *L2) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters.
func (c *L2) ResetStats() { c.stats = Stats{} }

// SetFaults attaches (or, with nil, detaches) a fault injector.
func (c *L2) SetFaults(f FaultInjector) { c.faults = f }

// SetObs wires the observability layer. Either argument may be nil.
func (c *L2) SetObs(tr *obs.Tracer, reg *obs.Registry) {
	c.trace = tr
	c.ctrHits = reg.Counter("cache.hits")
	c.ctrMisses = reg.Counter("cache.misses")
	c.ctrBypasses = reg.Counter("cache.bypasses")
	c.ctrWBs = reg.Counter("cache.writebacks")
	c.gaugeLocked = reg.Gauge("cache.locked_ways")
	c.gaugeLocked.Set(int64(c.lockedWays()))
}

// lockedWays counts ways currently excluded from allocation.
func (c *L2) lockedWays() int {
	return c.cfg.Ways - bits.OnesCount32(c.allocMask)
}

// AllocMask returns the current allocation-enable mask. Bit w set means way
// w accepts new allocations; a clear bit is a "locked" way in the paper's
// terminology (its resident lines are pinned).
func (c *L2) AllocMask() uint32 { return c.allocMask }

// SetAllocMask programs the lockdown register. This is a secure-world-only
// operation on real hardware; the tz package enforces that, this method is
// the raw controller interface.
func (c *L2) SetAllocMask(mask uint32) {
	old := c.allocMask
	c.allocMask = mask & ((1 << c.cfg.Ways) - 1)
	if c.trace != nil && old != c.allocMask {
		// One event per way whose lockdown state flipped: a newly cleared
		// alloc bit is a lock, a newly set bit an unlock.
		cyc := c.clock.Cycles()
		for w := 0; w < c.cfg.Ways; w++ {
			bit := uint32(1) << w
			switch {
			case old&bit != 0 && c.allocMask&bit == 0:
				c.trace.Emit(obs.Event{Cycle: cyc, Kind: obs.KindCacheLock, Size: uint64(w), Arg: uint64(c.allocMask)})
			case old&bit == 0 && c.allocMask&bit != 0:
				c.trace.Emit(obs.Event{Cycle: cyc, Kind: obs.KindCacheUnlock, Size: uint64(w), Arg: uint64(c.allocMask)})
			}
		}
	}
	c.gaugeLocked.Set(int64(c.lockedWays()))
}

// SetMaster selects the core id charged with subsequent accesses. Only
// meaningful under Config.AutoLock, where it decides which holder bit an
// access sets and which holders block eviction. The victim system is core 0
// (the default); attack drivers switch to core 1 around their accesses.
func (c *L2) SetMaster(core int) { c.master = uint8(core) }

// Master returns the current accessing core id.
func (c *L2) Master() int { return int(c.master) }

// SetIndexKey keys the randomized index permutation and enables it. Only
// legal on an empty cache (the key changes where every line lives): the SoC
// layer calls it at cold boot and after every power cycle, right after the
// controller reset.
func (c *L2) SetIndexKey(key uint64) {
	for _, n := range c.validCount {
		if n != 0 {
			panic("cache: SetIndexKey on a non-empty cache")
		}
	}
	c.indexKey = key
	c.cfg.RandomizedIndex = true
}

// SetIndex returns the set index addr maps to under the current index
// function (including the randomized permutation when enabled). Test and
// attack-driver instrumentation.
func (c *L2) SetIndex(addr mem.PhysAddr) int {
	set, _ := c.index(addr)
	return set
}

// mix64 is the splitmix64 finalizer — a cheap invertible mixer used to key
// the randomized index permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// scrambleSet applies the keyed index permutation for tag. XOR with a
// per-tag hash is self-inverse, so the same function maps base→scrambled in
// index() and scrambled→base in lineBase().
func (c *L2) scrambleSet(set int, tag uint64) int {
	return set ^ int(mix64(tag^c.indexKey)&c.setMask)
}

func (c *L2) index(addr mem.PhysAddr) (set int, tag uint64) {
	lineN := uint64(addr) >> c.lineShift
	set = int(lineN & c.setMask)
	tag = lineN >> c.setShift
	if c.cfg.RandomizedIndex {
		set = c.scrambleSet(set, tag)
	}
	return set, tag
}

// lookup returns the way holding (set, tag), or -1. It scans the dense tag
// array; a matching but stale entry is rejected by its clear validMask bit
// (and a fresh copy of the same tag in another way is then still found).
func (c *L2) lookup(set int, tag uint64) int {
	vm := c.validMask[set]
	if vm == 0 {
		return -1
	}
	base := set * c.cfg.Ways
	row := c.tags[base : base+c.cfg.Ways]
	for w := range row {
		if row[w] == tag && vm&(1<<w) != 0 {
			return w
		}
	}
	return -1
}

// pickVictim chooses an allocation-enabled way in set, preferring invalid
// lines, else round-robin. Returns -1 if no way may allocate.
func (c *L2) pickVictim(set int) int {
	if c.allocMask == 0 {
		return -1
	}
	// Lowest allocation-enabled way without a valid line, if any — one mask
	// op instead of a scan across the ways.
	if inv := c.allocMask &^ c.validMask[set]; inv != 0 {
		return bits.TrailingZeros32(inv)
	}
	avail := c.allocMask
	if c.cfg.AutoLock {
		// AutoLock: a valid line held in another core's L1 is transparently
		// locked — the current master may not evict it. Invalid ways were
		// handled above, so every candidate line here is valid.
		other := ^(uint8(1) << c.master)
		row := c.lines[set]
		for w := 0; w < c.cfg.Ways; w++ {
			if avail&(1<<w) != 0 && row[w].holder&other != 0 {
				avail &^= 1 << w
			}
		}
		if avail == 0 {
			return -1
		}
	}
	// Round-robin: the first available way at or after the pointer, found
	// by rotating the mask instead of scanning way by way.
	ways := c.cfg.Ways
	start := c.victim[set]
	full := uint32(1)<<ways - 1
	rot := (avail >> start) | (avail << (ways - start))
	w := start + bits.TrailingZeros32(rot&full)
	if w >= ways {
		w -= ways
	}
	if w+1 == ways {
		c.victim[set] = 0
	} else {
		c.victim[set] = w + 1
	}
	return w
}

func (c *L2) lineBase(set int, tag uint64) mem.PhysAddr {
	if c.cfg.RandomizedIndex {
		set = c.scrambleSet(set, tag) // XOR permutation is self-inverse
	}
	return mem.PhysAddr((tag*uint64(c.sets) + uint64(set)) * uint64(c.cfg.LineSize))
}

// writeBack cleans one line to DRAM over the bus.
func (c *L2) writeBack(set, way int) {
	ln := &c.lines[set][way]
	if !ln.valid || !ln.dirty {
		return
	}
	c.bus.WriteFrom("l2", c.lineBase(set, ln.tag), c.lineData(ln))
	ln.dirty = false
	c.stats.WriteBacks++
	c.ctrWBs.Inc()
}

// fill allocates (set,way) with the line containing addr, evicting as needed.
func (c *L2) fill(set, way int, tag uint64) *line {
	ln := &c.lines[set][way]
	if ln.valid {
		c.stats.Evictions++
		c.writeBack(set, way)
	}
	if ln.buf == 0 || ln.shared {
		// First fill, or the old contents are shared with a clone: either
		// way the bus read below overwrites the whole line, so take a fresh
		// buffer rather than copying.
		c.newBuf(ln)
	}
	ln.valid = true
	if c.validMask[set]&(1<<way) == 0 {
		c.validMask[set] |= 1 << way
		c.validCount[way]++
	}
	ln.dirty = false
	ln.holder = 0 // a refill replaces the previous occupant's holders
	ln.tag = tag
	c.tags[set*c.cfg.Ways+way] = tag
	c.bus.ReadInto("l2", c.lineBase(set, tag), c.lineData(ln))
	return ln
}

func (c *L2) chargeHit(nbytes int) {
	words := uint64((nbytes + 3) / 4)
	c.clock.Advance(words * c.costs.L2Hit)
	c.meter.Charge(float64(words) * c.energy.L2HitPJ)
}

// access performs one within-line cacheable access.
func (c *L2) access(addr mem.PhysAddr, buf []byte, isWrite bool) {
	set, tag := c.index(addr)
	way := c.lookup(set, tag)
	if way < 0 {
		victim := c.pickVictim(set)
		if victim < 0 {
			// Every way locked: the controller bypasses to DRAM with
			// single-beat transactions (no burst amortisation).
			c.stats.Bypasses++
			c.ctrBypasses.Inc()
			c.clock.Advance(c.costs.BypassPenalty)
			if isWrite {
				c.bus.WriteFrom("cpu-uncached", addr, buf)
			} else {
				c.bus.ReadInto("cpu-uncached", addr, buf)
			}
			return
		}
		c.stats.Misses++
		c.ctrMisses.Inc()
		c.fill(set, victim, tag)
		way = victim
	} else {
		c.stats.Hits++
		c.ctrHits.Inc()
	}
	ln := &c.lines[set][way]
	if c.cfg.AutoLock {
		ln.holder |= 1 << c.master
	}
	off := int(uint64(addr) & c.offMask)
	if isWrite {
		c.own(ln)
		copy(c.lineData(ln)[off:], buf)
		ln.dirty = true
	} else {
		copy(buf, c.lineData(ln)[off:off+len(buf)])
	}
	c.chargeHit(len(buf))
}

// splitByLine runs fn once per line-sized fragment of [addr, addr+len(b)).
func (c *L2) splitByLine(addr mem.PhysAddr, b []byte, fn func(a mem.PhysAddr, frag []byte)) {
	for len(b) > 0 {
		off := int(uint64(addr) & c.offMask)
		n := c.cfg.LineSize - off
		if n > len(b) {
			n = len(b)
		}
		fn(addr, b[:n])
		addr += mem.PhysAddr(n)
		b = b[n:]
	}
}

// ReadBytes is the burst read path: it moves one cache line per step with a
// plain loop (no per-fragment closure dispatch), charging exactly the same
// hits, misses, bypasses, write-backs, and bus transactions as a sequence of
// per-word accesses over the same range — the trace-bus experiment and
// TestTraceSumsEqualStats cross-check that equivalence.
func (c *L2) ReadBytes(addr mem.PhysAddr, dst []byte) {
	for len(dst) > 0 {
		n := c.cfg.LineSize - int(uint64(addr)&c.offMask)
		if n > len(dst) {
			n = len(dst)
		}
		c.access(addr, dst[:n], false)
		addr += mem.PhysAddr(n)
		dst = dst[n:]
	}
}

// WriteBytes is the burst write twin of ReadBytes.
func (c *L2) WriteBytes(addr mem.PhysAddr, src []byte) {
	for len(src) > 0 {
		n := c.cfg.LineSize - int(uint64(addr)&c.offMask)
		if n > len(src) {
			n = len(src)
		}
		c.access(addr, src[:n], true)
		addr += mem.PhysAddr(n)
		src = src[n:]
	}
}

// Read performs a cacheable read of len(dst) bytes at addr.
func (c *L2) Read(addr mem.PhysAddr, dst []byte) { c.ReadBytes(addr, dst) }

// Write performs a cacheable write of src at addr.
func (c *L2) Write(addr mem.PhysAddr, src []byte) { c.WriteBytes(addr, src) }

// CleanWays writes back every dirty line in the ways selected by mask,
// leaving them valid.
func (c *L2) CleanWays(mask uint32) {
	if f := c.faults; f != nil && f.DropMaint("clean-ways") {
		return
	}
	// The walk consults the per-set valid bitmap instead of dereferencing
	// every line struct: a full clean visits Ways×Sets lines, almost all of
	// which are invalid in the campaign workloads, and the bitmap scan reads
	// 4 bytes per set instead of a 40-byte struct per line. writeBack itself
	// still rechecks valid||dirty, and the visit order (way-outer,
	// set-inner) is unchanged — the energy meter is an order-sensitive float
	// accumulator, so reordering write-backs would shift recorded results.
	for w := 0; w < c.cfg.Ways; w++ {
		bit := uint32(1) << w
		if mask&bit == 0 || c.validCount[w] == 0 {
			continue
		}
		left := c.validCount[w]
		for s := 0; s < c.sets && left > 0; s++ {
			if c.validMask[s]&bit != 0 {
				c.writeBack(s, w)
				left--
			}
		}
	}
}

// InvalidateWays drops every line in the selected ways without writing
// anything back. Dirty data is lost — this is the dangerous half of cache
// maintenance, and also how the firmware resets the cache at boot.
func (c *L2) InvalidateWays(mask uint32) {
	if f := c.faults; f != nil && f.DropMaint("invalidate-ways") {
		return
	}
	c.invalidateWays(mask)
}

// invalidateWays drops the selected ways' valid lines. Invalid lines are
// skipped entirely (validMask gate — this walk was the single hottest
// function in the campaign profile before it), and invalidation simply
// detaches the line's buffer: only valid lines are ever read, so nothing
// needs zeroing, and a buffer shared with a clone stays intact for the
// clone. The next fill installs a fresh buffer.
func (c *L2) invalidateWays(mask uint32) {
	for w := 0; w < c.cfg.Ways; w++ {
		bit := uint32(1) << w
		if mask&bit == 0 {
			continue
		}
		for s := 0; s < c.sets && c.validCount[w] > 0; s++ {
			if c.validMask[s]&bit == 0 {
				continue
			}
			ln := &c.lines[s][w]
			ln.valid = false
			ln.dirty = false
			ln.holder = 0
			c.dropBuf(ln)
			c.validMask[s] &^= bit
			c.validCount[w]--
		}
	}
}

// Reset models the cache losing power: every line, every tag, and the
// lockdown register are physically lost, with nothing written back. Unlike
// the maintenance operations this is not a controller command an attacker
// could glitch — de-powered SRAM simply forgets — so it bypasses any
// attached fault injector.
func (c *L2) Reset() {
	c.SetAllocMask(c.AllWaysMask())
	c.invalidateWays(c.AllWaysMask())
}

// CleanInvalidateWays cleans then invalidates the selected ways. Calling it
// with a mask that includes a locked way WILL push that way's plaintext to
// DRAM — exactly the hazard the paper's kernel change guards against; the
// kernel package is responsible for masking locked ways out.
func (c *L2) CleanInvalidateWays(mask uint32) {
	c.CleanWays(mask)
	c.InvalidateWays(mask)
}

// AllWaysMask returns the mask selecting every way.
func (c *L2) AllWaysMask() uint32 { return (1 << c.cfg.Ways) - 1 }

// InvalidateRange drops every line overlapping [addr, addr+n) in any way,
// without write-back — the PL310's "invalidate by PA" operation. The
// kernel's zeroing thread uses it to discard stale plaintext lines after
// clearing a freed frame.
func (c *L2) InvalidateRange(addr mem.PhysAddr, n int) {
	if f := c.faults; f != nil && f.DropMaint("invalidate-range") {
		return
	}
	first := uint64(addr) / uint64(c.cfg.LineSize)
	last := (uint64(addr) + uint64(n) - 1) / uint64(c.cfg.LineSize)
	for ln := first; ln <= last; ln++ {
		// Route through index() so "by PA" maintenance finds the line under
		// the randomized index permutation too.
		set, tag := c.index(mem.PhysAddr(ln << c.lineShift))
		if w := c.lookup(set, tag); w >= 0 {
			e := &c.lines[set][w]
			e.valid = false
			e.dirty = false
			e.holder = 0
			c.dropBuf(e)
			c.validMask[set] &^= 1 << w
			c.validCount[w]--
		}
	}
}

// CleanRange writes back any dirty lines overlapping [addr, addr+n) —
// "clean by PA", the operation drivers use before starting a DMA read.
func (c *L2) CleanRange(addr mem.PhysAddr, n int) {
	if f := c.faults; f != nil && f.DropMaint("clean-range") {
		return
	}
	first := uint64(addr) / uint64(c.cfg.LineSize)
	last := (uint64(addr) + uint64(n) - 1) / uint64(c.cfg.LineSize)
	for ln := first; ln <= last; ln++ {
		set, tag := c.index(mem.PhysAddr(ln << c.lineShift))
		if w := c.lookup(set, tag); w >= 0 {
			c.writeBack(set, w)
		}
	}
}

// Probe reports, without side effects or timing charges, whether addr is
// resident, and if so in which way and whether dirty. Test instrumentation.
func (c *L2) Probe(addr mem.PhysAddr) (hit bool, way int, dirty bool) {
	set, tag := c.index(addr)
	w := c.lookup(set, tag)
	if w < 0 {
		return false, -1, false
	}
	return true, w, c.lines[set][w].dirty
}

// Snoop copies the cached bytes for addr into dst without timing charges or
// allocation, returning false if the line is not resident. Used by tests and
// by the confidentiality scanner, which must observe cache contents without
// perturbing them.
func (c *L2) Snoop(addr mem.PhysAddr, dst []byte) bool {
	ok := true
	c.splitByLine(addr, dst, func(a mem.PhysAddr, frag []byte) {
		set, tag := c.index(a)
		w := c.lookup(set, tag)
		if w < 0 {
			ok = false
			return
		}
		off := int(uint64(a) & c.offMask)
		copy(frag, c.lineData(&c.lines[set][w])[off:off+len(frag)])
	})
	return ok
}

// Clone returns an independent copy of the cache — geometry, lockdown
// register, victim pointers, stats, and every valid line's contents — wired
// to the given clock, meter, and bus. Valid lines' data is shared
// copy-on-write: both sides keep reading the same buffers, and whichever
// side first mutates a line (partial write, refill, invalidate) takes a
// private copy. Clone cost is therefore O(valid-line metadata), not O(data);
// a snapshot fork of a boot-warmed 1 MB cache copies pointers, not
// megabytes. Observability and fault wiring are left to the caller: a
// cloned world re-runs SetObs/SetFaults against its own registry and
// injector.
func (c *L2) Clone(clock *sim.Clock, meter *sim.Meter, b *bus.Bus) *L2 {
	if c.defl != nil {
		return c.inflate(clock, meter, b)
	}
	// Mark every valid line's buffer shared in the parent first, so the slab
	// memmove below propagates the flag to the clone in the same pass. A
	// frozen cache had this done once by FreezeShared and must not be written
	// again (clones may be taken from it concurrently).
	if !c.frozen {
		for s := 0; s < c.sets; s++ {
			vm := c.validMask[s]
			for vm != 0 {
				w := bits.TrailingZeros32(vm)
				vm &= vm - 1
				c.lines[s][w].shared = true
			}
		}
	}
	n := newL2(c.cfg, clock, meter, c.costs, c.energy, b, false)
	copy(n.slab, c.slab)
	copy(n.validMask, c.validMask)
	copy(n.validCount, c.validCount)
	copy(n.tags, c.tags)
	copy(n.victim, c.victim)
	n.allocMask = c.allocMask
	n.stats = c.stats
	n.master = c.master
	n.indexKey = c.indexKey
	n.bufs = append([][]byte(nil), c.bufs...)
	n.freeBufs = append([]uint32(nil), c.freeBufs...)
	// Free slots still hold reusable buffers on the parent side; the clone
	// must not reuse those same buffers, so empty them in its table.
	for _, idx := range n.freeBufs {
		n.bufs[idx-1] = nil
	}
	return n
}

// ValidLines returns the number of valid lines currently held in way w.
func (c *L2) ValidLines(w int) int { return c.validCount[w] }

// FreezeShared pins the cache read-only for cloning: every valid line's
// buffer is marked shared once, so Clone and Deflate against this cache
// never write to it again and may run concurrently. The caller promises the
// cache will never be accessed or maintained after the freeze — it exists
// to serve as the immutable base of a fork/delta population (the fleet's
// shared boot world). Idempotent.
func (c *L2) FreezeShared() {
	if c.frozen {
		return
	}
	for s := 0; s < c.sets; s++ {
		vm := c.validMask[s]
		for vm != 0 {
			w := bits.TrailingZeros32(vm)
			vm &= vm - 1
			c.lines[s][w].shared = true
		}
	}
	c.frozen = true
}

// l2Delta is a cache re-encoded against a frozen base: the sparse set of
// line positions whose (tag, flags, contents) differ from the base, packed
// line data for the valid ones, sparse victim-pointer diffs, and the scalar
// registers. ~40 bytes per diverged line instead of ~2 MB of dense arrays.
type l2Delta struct {
	base       *L2
	recs       []deltaLine
	data       []byte // packed line contents; valid recs consume LineSize each, in order
	victimSets []int32
	victimVals []uint8
	allocMask  uint32
	stats      Stats
	master     uint8
	indexKey   uint64
	randomized bool
}

// deltaLine is one diverged line position. valid=false records a line the
// base holds but this cache does not (inflate must invalidate it).
type deltaLine struct {
	set    int32
	way    uint8
	valid  bool
	dirty  bool
	holder uint8
	tag    uint64
}

// Deflate re-encodes the cache as a delta against base, releasing its dense
// metadata arrays to the clone pool. base must be frozen (FreezeShared) and
// share this cache's geometry. After Deflate the only legal operations are
// Clone — which reconstructs a dense, fully independent cache from
// base+delta — and Release. It returns an estimate of the bytes the delta
// retains, the cache's marginal cost over the shared base.
func (c *L2) Deflate(base *L2) int64 {
	if c.defl != nil {
		panic("cache: Deflate on an already-deflated cache")
	}
	if !base.frozen {
		panic("cache: Deflate against an unfrozen base (FreezeShared it first)")
	}
	if c.cfg.Ways != base.cfg.Ways || c.cfg.WaySize != base.cfg.WaySize || c.cfg.LineSize != base.cfg.LineSize {
		panic("cache: Deflate geometry mismatch")
	}
	d := &l2Delta{
		base:      base,
		allocMask: c.allocMask, stats: c.stats, master: c.master,
		indexKey: c.indexKey, randomized: c.cfg.RandomizedIndex,
	}
	ls := c.cfg.LineSize
	for s := 0; s < c.sets; s++ {
		cm, bm := c.validMask[s], base.validMask[s]
		for un := cm | bm; un != 0; {
			w := bits.TrailingZeros32(un)
			un &= un - 1
			bit := uint32(1) << w
			switch {
			case cm&bit != 0:
				ln := &c.lines[s][w]
				if bm&bit != 0 {
					bl := &base.lines[s][w]
					if ln.tag == bl.tag && ln.dirty == bl.dirty && ln.holder == bl.holder {
						cd, bd := c.lineData(ln), base.lineData(bl)
						// Same backing buffer (still COW-shared since the
						// fork), or equal bytes: either way, not a diff.
						if &cd[0] == &bd[0] || string(cd) == string(bd) {
							continue
						}
					}
				}
				d.recs = append(d.recs, deltaLine{
					set: int32(s), way: uint8(w), valid: true,
					dirty: ln.dirty, holder: ln.holder, tag: ln.tag,
				})
				d.data = append(d.data, c.lineData(ln)[:ls]...)
			default: // base holds a line here, this cache does not
				d.recs = append(d.recs, deltaLine{set: int32(s), way: uint8(w)})
			}
		}
		if c.victim[s] != base.victim[s] {
			d.victimSets = append(d.victimSets, int32(s))
			d.victimVals = append(d.victimVals, uint8(c.victim[s]))
		}
	}
	c.defl = d
	c.Release()
	c.bufs, c.freeBufs, c.dataArena = nil, nil, nil
	return c.FootprintBytes()
}

// inflate reconstructs a dense cache from base+delta. The base is frozen, so
// cloning it mutates nothing; delta lines are applied with private buffers.
func (c *L2) inflate(clock *sim.Clock, meter *sim.Meter, b *bus.Bus) *L2 {
	d := c.defl
	n := d.base.Clone(clock, meter, b)
	data := d.data
	ls := n.cfg.LineSize
	for _, rec := range d.recs {
		s, w := int(rec.set), int(rec.way)
		ln := &n.lines[s][w]
		bit := uint32(1) << w
		wasValid := n.validMask[s]&bit != 0
		if !rec.valid {
			ln.valid, ln.dirty, ln.holder = false, false, 0
			n.dropBuf(ln)
			if wasValid {
				n.validMask[s] &^= bit
				n.validCount[w]--
			}
			continue
		}
		if ln.buf != 0 {
			n.dropBuf(ln)
		}
		copy(n.newBuf(ln), data[:ls])
		data = data[ls:]
		ln.valid, ln.dirty, ln.holder, ln.tag = true, rec.dirty, rec.holder, rec.tag
		n.tags[s*n.cfg.Ways+w] = rec.tag
		if !wasValid {
			n.validMask[s] |= bit
			n.validCount[w]++
		}
	}
	for i, s := range d.victimSets {
		n.victim[s] = int(d.victimVals[i])
	}
	n.allocMask = d.allocMask
	n.stats = d.stats
	n.master = d.master
	n.indexKey = d.indexKey
	n.cfg.RandomizedIndex = d.randomized
	return n
}

// FootprintBytes estimates the private bytes this cache pins beyond any
// shared base: for a dense cache, its metadata arrays plus line buffers; for
// a deflated one, the delta records and packed data. Comparative gauge for
// the fleet's parked-bytes accounting, not an exact allocator measurement.
func (c *L2) FootprintBytes() int64 {
	if d := c.defl; d != nil {
		const recBytes = 16 // deltaLine struct, padded
		return int64(len(d.recs))*recBytes + int64(len(d.data)) +
			int64(len(d.victimSets))*5 + 64
	}
	nline := int64(c.sets * c.cfg.Ways)
	meta := nline*16 /* line */ + nline*8 /* tags */ +
		int64(c.sets)*(4 /* validMask */ +8 /* victim */) + int64(c.cfg.Ways)*8
	var bufBytes int64
	for _, b := range c.bufs {
		if b != nil {
			bufBytes += int64(len(b))
		}
	}
	return meta + bufBytes
}

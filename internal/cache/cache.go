// Package cache models the shared L2 cache of a Cortex-A9 class SoC managed
// by a PL310-style controller. It implements the three behaviours Sentry
// depends on:
//
//   - Lockdown by way: ways can be excluded from allocation, so lines already
//     resident in an excluded ("locked") way remain hittable but are never
//     evicted or written back until the way is unlocked. This is the paper's
//     §4.2/§4.5 mechanism for pinning plaintext on the SoC.
//   - Maskable maintenance: clean/invalidate operations take a way mask, so
//     an OS can flush "the whole cache" while skipping locked ways — the
//     Linux change the paper describes (428 → 676 lines in their port).
//   - DMA bypass: DMA engines transfer against DRAM directly (package dma),
//     never through this cache, so locked plaintext is invisible to DMA.
//
// The cache is physically indexed and tagged, write-back, write-allocate,
// with round-robin victim selection among allocation-enabled ways. When no
// way in a set is allocation-enabled, accesses bypass the cache and go to
// DRAM uncached — matching the PL310's behaviour when software locks every
// way.
package cache

import (
	"fmt"
	"math/bits"

	"sentry/internal/bus"
	"sentry/internal/mem"
	"sentry/internal/obs"
	"sentry/internal/sim"
)

// Config sizes the cache geometry.
type Config struct {
	Ways     int // associativity (PL310: up to 16; Tegra 3 uses 8)
	WaySize  int // bytes per way (Tegra 3: 128 KB)
	LineSize int // bytes per line (PL310: 32)
}

// Tegra3Config is the 1 MB, 8-way, 32 B/line geometry of the Tegra 3 board.
var Tegra3Config = Config{Ways: 8, WaySize: 128 * 1024, LineSize: 32}

// Stats counts cache events since the last reset.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	WriteBacks uint64
	Bypasses   uint64 // accesses that went uncached because no way could allocate
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	data  []byte
}

// L2 is the second-level cache. It is not safe for concurrent use; the
// simulated platform is single-threaded by design.
type L2 struct {
	cfg    Config
	sets   int
	clock  *sim.Clock
	meter  *sim.Meter
	costs  *sim.CostTable
	energy *sim.EnergyTable
	bus    *bus.Bus

	// Geometry is power-of-two, so set/tag extraction is shift-and-mask —
	// index() runs on every access and must not divide.
	lineShift uint
	setShift  uint
	setMask   uint64
	offMask   uint64

	// lines is indexed [set][way]: lookup and victim selection walk the
	// ways of one set, so a set's ways must be contiguous in memory.
	lines     [][]line
	validMask []uint32 // per-set bitmask of ways holding a valid line
	// tags mirrors the per-line tag fields as a dense flat array
	// (tags[set*Ways+way]): a tag-match scan touches one or two cache
	// lines of host memory instead of striding across 40-byte line
	// structs. Entries go stale on invalidation; validMask arbitrates.
	tags      []uint64
	allocMask uint32 // bit w set => way w may allocate new lines
	victim    []int  // per-set round-robin pointer
	stats     Stats

	// Observability: nil (and nil-safe) until SetObs wires them.
	trace       *obs.Tracer
	ctrHits     *obs.Counter
	ctrMisses   *obs.Counter
	ctrBypasses *obs.Counter
	ctrWBs      *obs.Counter
	gaugeLocked *obs.Gauge

	// faults is nil unless a fault injector is attached; only the
	// maintenance entry points consult it, never the access fast path.
	faults FaultInjector
}

// FaultInjector perturbs cache-maintenance operations. DropMaint is
// consulted once at the entry of each kernel-reachable maintenance
// operation (op names: "clean-ways", "invalidate-ways", "clean-range",
// "invalidate-range"); returning true silently drops the whole operation
// (a glitched controller command). Implementations may instead panic to
// model power loss at that point — no part of the operation has run yet.
type FaultInjector interface {
	DropMaint(op string) bool
}

// New returns an L2 of the given geometry in front of the given bus.
func New(cfg Config, clock *sim.Clock, meter *sim.Meter, costs *sim.CostTable, energy *sim.EnergyTable, b *bus.Bus) *L2 {
	if cfg.Ways <= 0 || cfg.Ways > 32 {
		panic(fmt.Sprintf("cache: unsupported way count %d", cfg.Ways))
	}
	if cfg.WaySize%cfg.LineSize != 0 {
		panic("cache: way size must be a multiple of line size")
	}
	sets := cfg.WaySize / cfg.LineSize
	if bits.OnesCount(uint(cfg.LineSize)) != 1 || bits.OnesCount(uint(sets)) != 1 {
		panic("cache: line size and set count must be powers of two")
	}
	c := &L2{
		cfg: cfg, sets: sets,
		clock: clock, meter: meter, costs: costs, energy: energy, bus: b,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		setShift:  uint(bits.TrailingZeros(uint(sets))),
		setMask:   uint64(sets - 1),
		offMask:   uint64(cfg.LineSize - 1),
		allocMask: (1 << cfg.Ways) - 1,
		victim:    make([]int, sets),
	}
	c.lines = make([][]line, sets)
	c.validMask = make([]uint32, sets)
	c.tags = make([]uint64, sets*cfg.Ways)
	// All line structs and all line data come from two slab allocations:
	// tens of thousands of tiny per-line allocations per booted platform
	// add up across experiments, and pointer-free slabs are cheap for the
	// garbage collector to scan.
	slab := make([]line, sets*cfg.Ways)
	data := make([]byte, sets*cfg.Ways*cfg.LineSize)
	for s := range c.lines {
		c.lines[s], slab = slab[:cfg.Ways:cfg.Ways], slab[cfg.Ways:]
		for w := range c.lines[s] {
			c.lines[s][w].data, data = data[:cfg.LineSize:cfg.LineSize], data[cfg.LineSize:]
		}
	}
	return c
}

// Config returns the cache geometry.
func (c *L2) Config() Config { return c.cfg }

// Sets returns the number of sets per way.
func (c *L2) Sets() int { return c.sets }

// SizeBytes returns the total cache capacity.
func (c *L2) SizeBytes() int { return c.cfg.Ways * c.cfg.WaySize }

// Stats returns a snapshot of the event counters.
func (c *L2) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters.
func (c *L2) ResetStats() { c.stats = Stats{} }

// SetFaults attaches (or, with nil, detaches) a fault injector.
func (c *L2) SetFaults(f FaultInjector) { c.faults = f }

// SetObs wires the observability layer. Either argument may be nil.
func (c *L2) SetObs(tr *obs.Tracer, reg *obs.Registry) {
	c.trace = tr
	c.ctrHits = reg.Counter("cache.hits")
	c.ctrMisses = reg.Counter("cache.misses")
	c.ctrBypasses = reg.Counter("cache.bypasses")
	c.ctrWBs = reg.Counter("cache.writebacks")
	c.gaugeLocked = reg.Gauge("cache.locked_ways")
	c.gaugeLocked.Set(int64(c.lockedWays()))
}

// lockedWays counts ways currently excluded from allocation.
func (c *L2) lockedWays() int {
	return c.cfg.Ways - bits.OnesCount32(c.allocMask)
}

// AllocMask returns the current allocation-enable mask. Bit w set means way
// w accepts new allocations; a clear bit is a "locked" way in the paper's
// terminology (its resident lines are pinned).
func (c *L2) AllocMask() uint32 { return c.allocMask }

// SetAllocMask programs the lockdown register. This is a secure-world-only
// operation on real hardware; the tz package enforces that, this method is
// the raw controller interface.
func (c *L2) SetAllocMask(mask uint32) {
	old := c.allocMask
	c.allocMask = mask & ((1 << c.cfg.Ways) - 1)
	if c.trace != nil && old != c.allocMask {
		// One event per way whose lockdown state flipped: a newly cleared
		// alloc bit is a lock, a newly set bit an unlock.
		cyc := c.clock.Cycles()
		for w := 0; w < c.cfg.Ways; w++ {
			bit := uint32(1) << w
			switch {
			case old&bit != 0 && c.allocMask&bit == 0:
				c.trace.Emit(obs.Event{Cycle: cyc, Kind: obs.KindCacheLock, Size: uint64(w), Arg: uint64(c.allocMask)})
			case old&bit == 0 && c.allocMask&bit != 0:
				c.trace.Emit(obs.Event{Cycle: cyc, Kind: obs.KindCacheUnlock, Size: uint64(w), Arg: uint64(c.allocMask)})
			}
		}
	}
	c.gaugeLocked.Set(int64(c.lockedWays()))
}

func (c *L2) index(addr mem.PhysAddr) (set int, tag uint64) {
	lineN := uint64(addr) >> c.lineShift
	return int(lineN & c.setMask), lineN >> c.setShift
}

// lookup returns the way holding (set, tag), or -1. It scans the dense tag
// array; a matching but stale entry is rejected by its clear validMask bit
// (and a fresh copy of the same tag in another way is then still found).
func (c *L2) lookup(set int, tag uint64) int {
	vm := c.validMask[set]
	if vm == 0 {
		return -1
	}
	base := set * c.cfg.Ways
	row := c.tags[base : base+c.cfg.Ways]
	for w := range row {
		if row[w] == tag && vm&(1<<w) != 0 {
			return w
		}
	}
	return -1
}

// pickVictim chooses an allocation-enabled way in set, preferring invalid
// lines, else round-robin. Returns -1 if no way may allocate.
func (c *L2) pickVictim(set int) int {
	if c.allocMask == 0 {
		return -1
	}
	// Lowest allocation-enabled way without a valid line, if any — one mask
	// op instead of a scan across the ways.
	if inv := c.allocMask &^ c.validMask[set]; inv != 0 {
		return bits.TrailingZeros32(inv)
	}
	// Round-robin: the first allocation-enabled way at or after the
	// pointer, found by rotating the mask instead of scanning way by way.
	ways := c.cfg.Ways
	start := c.victim[set]
	full := uint32(1)<<ways - 1
	rot := (c.allocMask >> start) | (c.allocMask << (ways - start))
	w := start + bits.TrailingZeros32(rot&full)
	if w >= ways {
		w -= ways
	}
	if w+1 == ways {
		c.victim[set] = 0
	} else {
		c.victim[set] = w + 1
	}
	return w
}

func (c *L2) lineBase(set int, tag uint64) mem.PhysAddr {
	return mem.PhysAddr((tag*uint64(c.sets) + uint64(set)) * uint64(c.cfg.LineSize))
}

// writeBack cleans one line to DRAM over the bus.
func (c *L2) writeBack(set, way int) {
	ln := &c.lines[set][way]
	if !ln.valid || !ln.dirty {
		return
	}
	c.bus.WriteFrom("l2", c.lineBase(set, ln.tag), ln.data)
	ln.dirty = false
	c.stats.WriteBacks++
	c.ctrWBs.Inc()
}

// fill allocates (set,way) with the line containing addr, evicting as needed.
func (c *L2) fill(set, way int, tag uint64) *line {
	ln := &c.lines[set][way]
	if ln.valid {
		c.stats.Evictions++
		c.writeBack(set, way)
	}
	ln.valid = true
	c.validMask[set] |= 1 << way
	ln.dirty = false
	ln.tag = tag
	c.tags[set*c.cfg.Ways+way] = tag
	c.bus.ReadInto("l2", c.lineBase(set, tag), ln.data)
	return ln
}

func (c *L2) chargeHit(nbytes int) {
	words := uint64((nbytes + 3) / 4)
	c.clock.Advance(words * c.costs.L2Hit)
	c.meter.Charge(float64(words) * c.energy.L2HitPJ)
}

// access performs one within-line cacheable access.
func (c *L2) access(addr mem.PhysAddr, buf []byte, isWrite bool) {
	set, tag := c.index(addr)
	way := c.lookup(set, tag)
	if way < 0 {
		victim := c.pickVictim(set)
		if victim < 0 {
			// Every way locked: the controller bypasses to DRAM with
			// single-beat transactions (no burst amortisation).
			c.stats.Bypasses++
			c.ctrBypasses.Inc()
			c.clock.Advance(c.costs.BypassPenalty)
			if isWrite {
				c.bus.WriteFrom("cpu-uncached", addr, buf)
			} else {
				c.bus.ReadInto("cpu-uncached", addr, buf)
			}
			return
		}
		c.stats.Misses++
		c.ctrMisses.Inc()
		c.fill(set, victim, tag)
		way = victim
	} else {
		c.stats.Hits++
		c.ctrHits.Inc()
	}
	ln := &c.lines[set][way]
	off := int(uint64(addr) & c.offMask)
	if isWrite {
		copy(ln.data[off:], buf)
		ln.dirty = true
	} else {
		copy(buf, ln.data[off:off+len(buf)])
	}
	c.chargeHit(len(buf))
}

// splitByLine runs fn once per line-sized fragment of [addr, addr+len(b)).
func (c *L2) splitByLine(addr mem.PhysAddr, b []byte, fn func(a mem.PhysAddr, frag []byte)) {
	for len(b) > 0 {
		off := int(uint64(addr) & c.offMask)
		n := c.cfg.LineSize - off
		if n > len(b) {
			n = len(b)
		}
		fn(addr, b[:n])
		addr += mem.PhysAddr(n)
		b = b[n:]
	}
}

// ReadBytes is the burst read path: it moves one cache line per step with a
// plain loop (no per-fragment closure dispatch), charging exactly the same
// hits, misses, bypasses, write-backs, and bus transactions as a sequence of
// per-word accesses over the same range — the trace-bus experiment and
// TestTraceSumsEqualStats cross-check that equivalence.
func (c *L2) ReadBytes(addr mem.PhysAddr, dst []byte) {
	for len(dst) > 0 {
		n := c.cfg.LineSize - int(uint64(addr)&c.offMask)
		if n > len(dst) {
			n = len(dst)
		}
		c.access(addr, dst[:n], false)
		addr += mem.PhysAddr(n)
		dst = dst[n:]
	}
}

// WriteBytes is the burst write twin of ReadBytes.
func (c *L2) WriteBytes(addr mem.PhysAddr, src []byte) {
	for len(src) > 0 {
		n := c.cfg.LineSize - int(uint64(addr)&c.offMask)
		if n > len(src) {
			n = len(src)
		}
		c.access(addr, src[:n], true)
		addr += mem.PhysAddr(n)
		src = src[n:]
	}
}

// Read performs a cacheable read of len(dst) bytes at addr.
func (c *L2) Read(addr mem.PhysAddr, dst []byte) { c.ReadBytes(addr, dst) }

// Write performs a cacheable write of src at addr.
func (c *L2) Write(addr mem.PhysAddr, src []byte) { c.WriteBytes(addr, src) }

// CleanWays writes back every dirty line in the ways selected by mask,
// leaving them valid.
func (c *L2) CleanWays(mask uint32) {
	if f := c.faults; f != nil && f.DropMaint("clean-ways") {
		return
	}
	for w := 0; w < c.cfg.Ways; w++ {
		if mask&(1<<w) == 0 {
			continue
		}
		for s := 0; s < c.sets; s++ {
			c.writeBack(s, w)
		}
	}
}

// InvalidateWays drops every line in the selected ways without writing
// anything back. Dirty data is lost — this is the dangerous half of cache
// maintenance, and also how the firmware resets the cache at boot.
func (c *L2) InvalidateWays(mask uint32) {
	if f := c.faults; f != nil && f.DropMaint("invalidate-ways") {
		return
	}
	c.invalidateWays(mask)
}

func (c *L2) invalidateWays(mask uint32) {
	for w := 0; w < c.cfg.Ways; w++ {
		if mask&(1<<w) == 0 {
			continue
		}
		for s := 0; s < c.sets; s++ {
			ln := &c.lines[s][w]
			ln.valid = false
			ln.dirty = false
			c.validMask[s] &^= 1 << w
			clear(ln.data)
		}
	}
}

// Reset models the cache losing power: every line, every tag, and the
// lockdown register are physically lost, with nothing written back. Unlike
// the maintenance operations this is not a controller command an attacker
// could glitch — de-powered SRAM simply forgets — so it bypasses any
// attached fault injector.
func (c *L2) Reset() {
	c.SetAllocMask(c.AllWaysMask())
	c.invalidateWays(c.AllWaysMask())
}

// CleanInvalidateWays cleans then invalidates the selected ways. Calling it
// with a mask that includes a locked way WILL push that way's plaintext to
// DRAM — exactly the hazard the paper's kernel change guards against; the
// kernel package is responsible for masking locked ways out.
func (c *L2) CleanInvalidateWays(mask uint32) {
	c.CleanWays(mask)
	c.InvalidateWays(mask)
}

// AllWaysMask returns the mask selecting every way.
func (c *L2) AllWaysMask() uint32 { return (1 << c.cfg.Ways) - 1 }

// InvalidateRange drops every line overlapping [addr, addr+n) in any way,
// without write-back — the PL310's "invalidate by PA" operation. The
// kernel's zeroing thread uses it to discard stale plaintext lines after
// clearing a freed frame.
func (c *L2) InvalidateRange(addr mem.PhysAddr, n int) {
	if f := c.faults; f != nil && f.DropMaint("invalidate-range") {
		return
	}
	first := uint64(addr) / uint64(c.cfg.LineSize)
	last := (uint64(addr) + uint64(n) - 1) / uint64(c.cfg.LineSize)
	for ln := first; ln <= last; ln++ {
		set := int(ln % uint64(c.sets))
		tag := ln / uint64(c.sets)
		if w := c.lookup(set, tag); w >= 0 {
			e := &c.lines[set][w]
			e.valid = false
			e.dirty = false
			c.validMask[set] &^= 1 << w
			clear(e.data)
		}
	}
}

// CleanRange writes back any dirty lines overlapping [addr, addr+n) —
// "clean by PA", the operation drivers use before starting a DMA read.
func (c *L2) CleanRange(addr mem.PhysAddr, n int) {
	if f := c.faults; f != nil && f.DropMaint("clean-range") {
		return
	}
	first := uint64(addr) / uint64(c.cfg.LineSize)
	last := (uint64(addr) + uint64(n) - 1) / uint64(c.cfg.LineSize)
	for ln := first; ln <= last; ln++ {
		set := int(ln % uint64(c.sets))
		tag := ln / uint64(c.sets)
		if w := c.lookup(set, tag); w >= 0 {
			c.writeBack(set, w)
		}
	}
}

// Probe reports, without side effects or timing charges, whether addr is
// resident, and if so in which way and whether dirty. Test instrumentation.
func (c *L2) Probe(addr mem.PhysAddr) (hit bool, way int, dirty bool) {
	set, tag := c.index(addr)
	w := c.lookup(set, tag)
	if w < 0 {
		return false, -1, false
	}
	return true, w, c.lines[set][w].dirty
}

// Snoop copies the cached bytes for addr into dst without timing charges or
// allocation, returning false if the line is not resident. Used by tests and
// by the confidentiality scanner, which must observe cache contents without
// perturbing them.
func (c *L2) Snoop(addr mem.PhysAddr, dst []byte) bool {
	ok := true
	c.splitByLine(addr, dst, func(a mem.PhysAddr, frag []byte) {
		set, tag := c.index(a)
		w := c.lookup(set, tag)
		if w < 0 {
			ok = false
			return
		}
		off := int(uint64(a) & c.offMask)
		copy(frag, c.lines[set][w].data[off:off+len(frag)])
	})
	return ok
}

// ValidLines returns the number of valid lines currently held in way w.
func (c *L2) ValidLines(w int) int {
	n := 0
	for s := 0; s < c.sets; s++ {
		if c.validMask[s]&(1<<w) != 0 {
			n++
		}
	}
	return n
}

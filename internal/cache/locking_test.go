package cache

import (
	"testing"
	"testing/quick"

	"sentry/internal/mem"
	"sentry/internal/obs"
)

// TestWayLockRoundTripProperty drives random lock / fill / unlock / flush
// round-trips and asserts the three views of lockdown state never diverge:
// the raw allocMask register, the derived lockedWays() count, and the
// cache.locked_ways gauge the observability layer exports. SetAllocMask
// must also clamp to the geometry — bits above Ways-1 can never stick.
func TestWayLockRoundTripProperty(t *testing.T) {
	f := func(ops []struct {
		Kind byte
		Mask uint32
		Off  uint16
	}) bool {
		c, _, _, _ := testRig(smallCfg)
		reg := obs.NewRegistry()
		c.SetObs(nil, reg)
		gauge := reg.Gauge("cache.locked_ways")
		for _, op := range ops {
			switch op.Kind % 4 {
			case 0: // program the lockdown register with an arbitrary mask
				c.SetAllocMask(op.Mask)
			case 1: // fill traffic
				c.Write(dramBase+mem.PhysAddr(op.Off), []byte{byte(op.Mask)})
			case 2: // masked flush of the unlocked (allocatable) ways
				c.CleanWays(c.AllocMask())
			case 3: // full unlock round-trip
				prev := c.AllocMask()
				c.SetAllocMask(c.AllWaysMask())
				c.SetAllocMask(prev)
			}
			if c.AllocMask()&^c.AllWaysMask() != 0 {
				return false // mask escaped the geometry
			}
			want := 0
			for w := 0; w < c.Config().Ways; w++ {
				if c.AllocMask()&(1<<w) == 0 {
					want++
				}
			}
			if c.lockedWays() != want || gauge.Value() != int64(want) {
				return false // register, count, and gauge diverged
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCleanWaysFullyLockedIsNoOp: with every way locked the kernel's masked
// flush mask is empty, and CleanWays(0) must be a total no-op — no write-
// backs, no bus traffic, no stats movement, dirty lines still dirty. This
// is the property the end-of-step invariant scan and the POR inertness
// argument both lean on.
func TestCleanWaysFullyLockedIsNoOp(t *testing.T) {
	c, b, dram, clock := testRig(smallCfg)
	c.Write(dramBase+0x40, []byte("dirty-line-stays-dirty"))
	c.SetAllocMask(0) // lock every way

	busBefore, statsBefore, cycBefore := b.Stats(), c.Stats(), clock.Cycles()
	c.CleanWays(c.AllocMask()) // masked flush of the unlocked ways: empty mask
	if b.Stats() != busBefore {
		t.Fatalf("empty-mask CleanWays reached the bus: %+v -> %+v", busBefore, b.Stats())
	}
	if c.Stats() != statsBefore || clock.Cycles() != cycBefore {
		t.Fatal("empty-mask CleanWays perturbed stats or time")
	}
	if dram.ByteAt(dramBase+0x40) != 0 {
		t.Fatal("empty-mask CleanWays wrote dirty data back")
	}
	if hit, _, dirty := c.Probe(dramBase + 0x40); !hit || !dirty {
		t.Fatal("dirty line did not survive the no-op flush")
	}
}

package sim

import (
	"bytes"
	"math/rand"
	"testing"
)

// drain runs a mixed operation sequence against an RNG-like surface and
// returns a byte transcript of everything produced. Read sizes are chosen
// to exercise the 7-byte carry (mid-word snapshot positions included).
type drawer interface {
	Float64() float64
	Intn(n int) int
	Uint32() uint32
	Uint64() uint64
	Read(p []byte) (int, error)
	Perm(n int) []int
}

func transcript(t *testing.T, g drawer, rounds int) []byte {
	t.Helper()
	var out bytes.Buffer
	buf := make([]byte, 64)
	for i := 0; i < rounds; i++ {
		out.WriteByte(byte(g.Intn(251)))
		u := g.Uint64()
		for s := 0; s < 64; s += 8 {
			out.WriteByte(byte(u >> s))
		}
		f := g.Float64()
		out.WriteByte(byte(int(f * 256)))
		n := 1 + (i*13)%29 // odd sizes straddle the 7-byte read carry
		if _, err := g.Read(buf[:n]); err != nil {
			t.Fatalf("Read: %v", err)
		}
		out.Write(buf[:n])
		u32 := g.Uint32()
		out.WriteByte(byte(u32))
		for _, p := range g.Perm(5) {
			out.WriteByte(byte(p))
		}
	}
	return out.Bytes()
}

// TestRNGMatchesMathRand pins the RNG's streams to math/rand's: the counting
// source and the reimplemented Read must not change a single byte relative
// to rand.New(rand.NewSource(seed)), or every recorded experiment value in
// EXPERIMENTS.md would shift.
func TestRNGMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1 << 40} {
		got := transcript(t, NewRNG(seed), 200)
		want := transcript(t, rand.New(rand.NewSource(seed)), 200)
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: sim.RNG diverges from math/rand", seed)
		}
	}
}

// TestRNGStateRestore interrupts a stream at awkward positions (including
// mid-Read carries), restores from the captured state, and checks the
// restored RNG continues byte-for-byte like the original.
func TestRNGStateRestore(t *testing.T) {
	g := NewRNG(99)
	buf := make([]byte, 11)
	for i := 0; i < 50; i++ {
		g.Uint64()
		g.Read(buf) // 11 bytes: leaves a partial word carried
		g.Float64()

		st := g.State()
		r := RestoreRNG(st)
		a := transcript(t, g, 20)
		b := transcript(t, r, 20)
		if !bytes.Equal(a, b) {
			t.Fatalf("iteration %d: restored RNG diverges", i)
		}
		// g has now advanced past the transcript; resync the original from
		// the restored copy's state for the next round.
		if g.State() != r.State() {
			t.Fatalf("iteration %d: states diverge after identical draws: %+v vs %+v",
				i, g.State(), r.State())
		}
	}
}

// TestFibSourceMatchesMathRand pins the reimplemented generator directly to
// rand.NewSource at the raw step level, across seed normalisation edges
// (zero, negative, over int32 range). The extracted rngCooked table and the
// recurrence must reproduce the stdlib bit-for-bit — this is the contract
// scripts/extract_rng_cooked.sh relies on.
func TestFibSourceMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 89482311, int32Max, int32Max + 1, -(1 << 40), 1<<62 + 3} {
		var f fibSource
		f.Seed(seed)
		ref := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 2000; i++ {
			if got, want := f.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d step %d: fibSource %#x, math/rand %#x", seed, i, got, want)
			}
		}
		if got, want := f.Int63(), ref.Int63(); got != want {
			t.Fatalf("seed %d: Int63 %#x, math/rand %#x", seed, got, want)
		}
	}
}

// TestRNGCloneContinuesAndDiverges: a clone taken mid-stream (including a
// mid-Read carry) produces the same continuation as the original, and the
// two advance independently afterwards — the struct-copy Clone shares no
// state with its parent.
func TestRNGCloneContinuesAndDiverges(t *testing.T) {
	g := NewRNG(123)
	buf := make([]byte, 5)
	for i := 0; i < 1000; i++ {
		g.Uint64()
	}
	g.Read(buf) // leave a partial word carried into the clone

	c := g.Clone()
	a := transcript(t, g, 30)
	b := transcript(t, c, 30)
	if !bytes.Equal(a, b) {
		t.Fatal("clone diverges from original continuation")
	}
	// Advance only the original; the clone must not move with it.
	before := c.State()
	g.Uint64()
	if c.State() != before {
		t.Fatal("advancing the original moved the clone")
	}
	if g.State() == c.State() {
		t.Fatal("original failed to advance past its clone")
	}
}

package sim

import "testing"

func TestClockAdvance(t *testing.T) {
	c := NewClock(1_200_000_000)
	c.Advance(600_000_000)
	if got := c.Seconds(); got != 0.5 {
		t.Fatalf("Seconds = %v, want 0.5", got)
	}
	if c.Cycles() != 600_000_000 {
		t.Fatalf("Cycles = %d", c.Cycles())
	}
}

func TestClockSpan(t *testing.T) {
	c := NewClock(1e9)
	n := c.Span(func() { c.Advance(42) })
	if n != 42 {
		t.Fatalf("Span = %d, want 42", n)
	}
}

func TestClockZeroHzPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClock(0)
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Charge(2.5e12)
	if got := m.Joules(); got != 2.5 {
		t.Fatalf("Joules = %v", got)
	}
	if got := m.MicroJoules(); got != 2.5e6 {
		t.Fatalf("MicroJoules = %v", got)
	}
	d := m.Span(func() { m.Charge(100) })
	if d != 100 {
		t.Fatalf("Span = %v", d)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestRNGRead(t *testing.T) {
	g := NewRNG(1)
	buf := make([]byte, 32)
	n, err := g.Read(buf)
	if n != 32 || err != nil {
		t.Fatalf("Read = %d, %v", n, err)
	}
	allZero := true
	for _, b := range buf {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("Read produced all zeroes")
	}
}

func TestTracerBounded(t *testing.T) {
	tr := NewTracer(2)
	tr.Record(1, "a", "x")
	tr.Record(2, "b", "y=%d", 2)
	tr.Record(3, "c", "dropped")
	ev := tr.Events()
	if len(ev) != 2 || ev[1].Attrs != "y=2" {
		t.Fatalf("events = %+v", ev)
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(1, "a", "x") // must not panic
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
	tr.Reset()
}

func TestRNGHelpers(t *testing.T) {
	g := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		v := g.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 5 {
		t.Fatal("Intn suspiciously non-uniform")
	}
	p := g.Perm(8)
	if len(p) != 8 {
		t.Fatal("Perm length")
	}
	mask := 0
	for _, v := range p {
		mask |= 1 << v
	}
	if mask != 0xFF {
		t.Fatal("Perm is not a permutation")
	}
	if g.Float64() < 0 || g.Float64() >= 1 {
		t.Fatal("Float64 range")
	}
	_ = g.Uint32()
}

func TestSecondsFor(t *testing.T) {
	c := NewClock(2_000_000_000)
	if got := c.SecondsFor(1_000_000_000); got != 0.5 {
		t.Fatalf("SecondsFor = %v", got)
	}
	if c.Hz() != 2_000_000_000 {
		t.Fatal("Hz")
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	for i := 0; i < 5000; i++ {
		tr.Record(uint64(i), "k", "v")
	}
	if len(tr.Events()) != 4096 {
		t.Fatalf("default cap = %d events", len(tr.Events()))
	}
}

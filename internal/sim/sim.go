// Package sim provides the deterministic simulation core shared by every
// hardware model in this repository: a cycle-accurate virtual clock, the
// per-platform cost and energy tables, and a seeded random source.
//
// Everything that "takes time" in the simulated SoC — a DRAM burst, an L2
// hit, an AES round, a page-fault trap — charges cycles to a Clock and
// picojoules to an energy Meter. Wall-clock time never leaks into results,
// which keeps every experiment reproducible bit-for-bit from a seed.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
)

// Clock is the simulated time source. One Clock is shared by all components
// of a platform, and a platform is owned by exactly one goroutine — the
// parallel harness (bench.RunAll) isolates experiments by giving each its
// own platform rather than sharing one. Advance sits on the critical path of
// every simulated memory access, so the counter is a plain field: no mutex,
// no atomic. Under `-race`, genuine cross-goroutine sharing of a platform is
// then a detectable bug instead of a silent interleaving.
type Clock struct {
	cycles uint64
	// hz is the frequency used to convert cycles to wall time.
	hz uint64
}

// NewClock returns a clock ticking at the given base frequency in Hz.
func NewClock(hz uint64) *Clock {
	if hz == 0 {
		panic("sim: clock frequency must be non-zero")
	}
	return &Clock{hz: hz}
}

// Clone returns an independent clock at the same cycle count and frequency.
func (c *Clock) Clone() *Clock {
	n := *c
	return &n
}

// Advance charges n cycles to the clock.
func (c *Clock) Advance(n uint64) {
	c.cycles += n
}

// Cycles returns the total cycles elapsed.
func (c *Clock) Cycles() uint64 {
	return c.cycles
}

// Hz returns the clock's base frequency.
func (c *Clock) Hz() uint64 { return c.hz }

// Seconds converts the elapsed cycles to seconds.
func (c *Clock) Seconds() float64 {
	return float64(c.Cycles()) / float64(c.hz)
}

// SecondsFor converts a cycle count to seconds at this clock's frequency.
func (c *Clock) SecondsFor(cycles uint64) float64 {
	return float64(cycles) / float64(c.hz)
}

// Span measures the cycles consumed by fn.
func (c *Clock) Span(fn func()) uint64 {
	start := c.Cycles()
	fn()
	return c.Cycles() - start
}

// CostTable holds the cycle cost of every primitive hardware operation. The
// defaults are calibrated per platform in package soc so that the absolute
// throughput anchors from the paper (e.g. AES MB/s in Figure 11) come out in
// the right range.
type CostTable struct {
	// Memory hierarchy, per 32-bit word access unless noted.
	DRAMAccess  uint64 // CPU load/store that reaches DRAM (L2 miss, uncached)
	L2Hit       uint64 // CPU load/store served by the L2 cache
	IRAMAccess  uint64 // CPU load/store to on-SoC SRAM
	DRAMBurst   uint64 // per cache-line fill/write-back on the external bus
	DMAWordCost uint64 // DMA engine per-word transfer cost

	// CPU events.
	ContextSwitch uint64 // register spill + scheduler dispatch
	PageFaultTrap uint64 // trap entry/exit overhead, excluding handler work
	IRQToggle     uint64 // enable or disable interrupts
	TLBFill       uint64 // page-table walk on translation
	BypassPenalty uint64 // extra cost when the L2 cannot allocate (all ways
	// locked): single-beat non-cacheable transactions forgo burst transfers

	// Crypto.
	AESRoundCompute uint64 // ALU work per AES round per 16-byte block,
	// excluding the table-lookup memory traffic which is charged through the
	// memory hierarchy costs above.
	AcceleratorSetup   uint64  // fixed cost to program the crypto accelerator
	AcceleratorPerByte float64 // accelerator cycles per byte at full clock
}

// EnergyTable holds per-operation energy in picojoules. Values are
// calibrated so full-system numbers (Figure 5, Figure 12, the 70 J
// whole-memory encryption anchor) land in the paper's range.
type EnergyTable struct {
	DRAMAccessPJ   float64 // per 32-bit word moved over the external bus
	L2HitPJ        float64
	IRAMAccessPJ   float64
	CPUCyclePJ     float64 // dynamic energy per busy CPU cycle
	AccelByteP_J   float64 // accelerator energy per byte
	AccelSetupPJ   float64
	PageZeroPerMB  float64 // µJ per MB for the freed-page zeroing thread, in pJ units
	BatteryJ       float64 // usable battery capacity in Joules
	IdleSystemPJPC float64 // static leakage per cycle (whole SoC)
}

// Meter accumulates energy in picojoules. Like Clock it is charged on every
// simulated access and shares the single-goroutine ownership contract, so
// the accumulator is a plain float — float addition is order-sensitive, and
// a fixed owner goroutine is also what keeps the sum bit-reproducible.
type Meter struct {
	pj float64
}

// Clone returns an independent meter at the same accumulated energy.
func (m *Meter) Clone() *Meter {
	n := *m
	return &n
}

// Charge adds pj picojoules to the meter.
func (m *Meter) Charge(pj float64) {
	m.pj += pj
}

// PJ returns accumulated picojoules.
func (m *Meter) PJ() float64 {
	return m.pj
}

// Joules returns accumulated energy in Joules.
func (m *Meter) Joules() float64 { return m.PJ() * 1e-12 }

// MicroJoules returns accumulated energy in µJ.
func (m *Meter) MicroJoules() float64 { return m.PJ() * 1e-6 }

// Span measures the energy consumed by fn.
func (m *Meter) Span(fn func()) float64 {
	start := m.PJ()
	fn()
	return m.PJ() - start
}

// fibSource is math/rand's additive lagged-Fibonacci generator (Mitchell &
// Reeds, x[n] = x[n-273] + x[n-607]), reimplemented in-repo so the whole
// generator state is a copyable value: cloning an RNG is a struct copy
// instead of a replay of every step consumed since seeding, which is what
// makes world forking O(1) in stream position. Output is bit-identical to
// rand.NewSource for every seed (TestFibSourceMatchesMathRand); the frozen
// seeding table it folds in lives in rngcooked_gen.go, extracted from the
// toolchain by scripts/extract_rng_cooked.sh.
type fibSource struct {
	tap, feed int
	vec       [fibLen]int64
}

const (
	fibLen   = 607
	fibTap   = 273
	fibMask  = 1<<63 - 1
	int32Max = 1<<31 - 1
)

// seedrand advances the Lehmer LCG (a=48271 over 2^31-1, computed via
// Schrage's decomposition to stay in 32 bits) that stirs the seed into the
// initial vector.
func seedrand(x int32) int32 {
	const a, q, r = 48271, 44488, 3399
	hi := x / q
	lo := x % q
	x = a*lo - r*hi
	if x < 0 {
		x += int32Max
	}
	return x
}

// Seed initialises the vector deterministically from seed, exactly as
// math/rand does: three LCG draws per slot, whitened by the cooked table.
func (f *fibSource) Seed(seed int64) {
	f.tap = 0
	f.feed = fibLen - fibTap

	seed %= int32Max
	if seed < 0 {
		seed += int32Max
	}
	if seed == 0 {
		seed = 89482311
	}

	x := int32(seed)
	for i := -20; i < fibLen; i++ {
		x = seedrand(x)
		if i >= 0 {
			u := int64(x) << 40
			x = seedrand(x)
			u ^= int64(x) << 20
			x = seedrand(x)
			u ^= int64(x)
			u ^= rngCooked[i]
			f.vec[i] = u
		}
	}
}

// Uint64 advances the recurrence one step.
func (f *fibSource) Uint64() uint64 {
	f.tap--
	if f.tap < 0 {
		f.tap += fibLen
	}
	f.feed--
	if f.feed < 0 {
		f.feed += fibLen
	}
	x := f.vec[f.feed] + f.vec[f.tap]
	f.vec[f.feed] = x
	return uint64(x)
}

// Int63 returns the step masked to 63 bits, as rand.Source.Int63 does.
func (f *fibSource) Int63() int64 { return int64(f.Uint64() & fibMask) }

// countingSource wraps the generator and counts how many times it has been
// stepped. The generator advances exactly one internal step per Int63 or
// Uint64 call, so the pair (seed, steps) is a complete, restorable
// description of the generator's position — the hook that makes RNG state
// capturable for world snapshots without giving up math/rand's exact output
// streams.
type countingSource struct {
	src fibSource
	n   uint64 // generator steps delivered since seeding
}

func (s *countingSource) Int63() int64    { s.n++; return s.src.Int63() }
func (s *countingSource) Uint64() uint64  { s.n++; return s.src.Uint64() }
func (s *countingSource) Seed(seed int64) { s.src.Seed(seed); s.n = 0 }

// RNG wraps a seeded deterministic random source. All stochastic models
// (remanence decay, workload access patterns) draw from an RNG owned by the
// platform so experiments replay identically for a fixed seed. Determinism
// requires a fixed draw order, which in turn requires a single owner
// goroutine — so, like Clock and Meter, RNG is deliberately unsynchronised.
//
// Every value-producing method delegates to a *rand.Rand over the counting
// source, except Read: rand.Rand keeps its byte-carry state (readVal,
// readPos) in unexported fields, so Read reimplements math/rand's exact
// read algorithm over the same source to keep that carry state here, where
// State can capture it. The byte streams are identical to rand.Rand.Read's.
type RNG struct {
	seed    int64
	src     countingSource
	r       *rand.Rand
	readVal int64
	readPos int8
}

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed int64) *RNG {
	g := &RNG{seed: seed}
	g.src.Seed(seed)
	g.r = rand.New(&g.src)
	return g
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uint32 returns a uniform 32-bit value.
func (g *RNG) Uint32() uint32 { return g.r.Uint32() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Read fills p with random bytes. It always returns len(p), nil. The
// algorithm mirrors math/rand's read: seven bytes are peeled off each
// generator step, and the partially consumed word carries across calls.
func (g *RNG) Read(p []byte) (int, error) {
	pos, val := g.readPos, g.readVal
	for n := 0; n < len(p); n++ {
		if pos == 0 {
			val = g.src.Int63()
			pos = 7
		}
		p[n] = byte(val)
		val >>= 8
		pos--
	}
	g.readPos, g.readVal = pos, val
	return len(p), nil
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// RNGState is a compact capture of an RNG's position in its deterministic
// stream: the seed, the number of generator steps consumed, and the
// byte-read carry. RestoreRNG rebuilds an RNG that continues the stream
// exactly where the captured one stood.
type RNGState struct {
	Seed    int64
	Steps   uint64
	ReadVal int64
	ReadPos int8
}

// State captures the RNG's current stream position.
func (g *RNG) State() RNGState {
	return RNGState{Seed: g.seed, Steps: g.src.n, ReadVal: g.readVal, ReadPos: g.readPos}
}

// Clone returns an independent RNG positioned at the same stream point.
// The generator state is a value, so this is a struct copy — O(1) in how
// far the stream has advanced, unlike RestoreRNG's replay (which exists
// for rebuilding from a serialised RNGState, where the vector is absent).
func (g *RNG) Clone() *RNG {
	n := &RNG{seed: g.seed, src: g.src, readVal: g.readVal, readPos: g.readPos}
	n.r = rand.New(&n.src)
	return n
}

// RestoreRNG returns a fresh RNG positioned at the captured state by
// replaying the recorded number of generator steps. Steps are cheap
// (one feedback-register update each), so restore cost is nanoseconds per
// thousand draws — negligible against the boot it replaces.
func RestoreRNG(st RNGState) *RNG {
	g := NewRNG(st.Seed)
	for i := uint64(0); i < st.Steps; i++ {
		g.src.src.Uint64()
	}
	g.src.n = st.Steps
	g.readVal, g.readPos = st.ReadVal, st.ReadPos
	return g
}

// Event is a single entry in a component trace.
type Event struct {
	Cycle uint64
	Kind  string
	Attrs string
}

// Tracer is an optional, bounded event recorder. A nil *Tracer is valid and
// records nothing, so components can trace unconditionally.
type Tracer struct {
	mu     sync.Mutex
	max    int
	events []Event
}

// NewTracer returns a tracer retaining at most max events (0 means 4096).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = 4096
	}
	return &Tracer{max: max}
}

// Record appends an event unless the tracer is nil or full.
func (t *Tracer) Record(cycle uint64, kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.max {
		return
	}
	t.events = append(t.events, Event{Cycle: cycle, Kind: kind, Attrs: fmt.Sprintf(format, args...)})
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Reset clears the recorded events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = nil
	t.mu.Unlock()
}

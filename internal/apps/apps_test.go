package apps

import (
	"testing"

	"sentry/internal/attack"
	"sentry/internal/core"
	"sentry/internal/kernel"
	"sentry/internal/sim"
	"sentry/internal/soc"
)

func TestProfilesMatchPaperConstants(t *testing.T) {
	t.Parallel()
	if Maps().UnlockMB() != 38 {
		t.Fatal("Maps must decrypt 38 MB at unlock (paper §7)")
	}
	if Maps().LockMB() != 48 {
		t.Fatal("Maps must encrypt 48 MB at lock")
	}
	for _, p := range Profiles() {
		if p.ResumeMB+p.RuntimeMB > p.ResidentMB {
			t.Fatalf("%s: resume+runtime exceeds resident", p.Name)
		}
	}
	if Contacts().DMAMB != 1 || Twitter().DMAMB != 3 || Maps().DMAMB != 15 {
		t.Fatal("DMA regions must be 1/3/15 MB (paper §7)")
	}
	if Twitter().ScriptSeconds != 17 || Maps().ScriptSeconds != 20 ||
		Contacts().ScriptSeconds != 23 || MP3().ScriptSeconds != 300 {
		t.Fatal("script lengths must match §8.2")
	}
	if len(Profiles()) != 4 || len(BgProfiles()) != 3 {
		t.Fatal("profile sets wrong")
	}
}

func TestLaunchAndResumeWithoutSentry(t *testing.T) {
	t.Parallel()
	s := soc.Nexus4(1)
	k := kernel.New(s, "1234")
	app, err := Launch(k, Contacts(), true)
	if err != nil {
		t.Fatal(err)
	}
	if app.Proc.Name != "contacts" || !app.Proc.Sensitive {
		t.Fatal("process wrong")
	}
	if len(app.Proc.DMARegions) != 1 {
		t.Fatal("DMA region missing")
	}
	if err := app.Resume(); err != nil {
		t.Fatal(err)
	}
	dur, err := app.RunScript()
	if err != nil {
		t.Fatal(err)
	}
	// Without Sentry the script should take essentially its nominal time.
	if dur < 22.9 || dur > 23.5 {
		t.Fatalf("baseline script took %.2f s, want ≈23", dur)
	}
}

func TestAppSecretsVisibleToColdBootWithoutSentry(t *testing.T) {
	t.Parallel()
	s := soc.Tegra3(1)
	k := kernel.New(s, "1234")
	if _, err := Launch(k, MP3(), false); err != nil {
		t.Fatal(err)
	}
	k.Lock() // no Sentry installed: nothing encrypts
	s.L2.CleanWays(s.L2.AllWaysMask())
	d, err := attack.MountColdBoot(s, Reflash())
	if err != nil {
		t.Fatal(err)
	}
	if !d.ContainsSecret([]byte(SecretMarker)) {
		t.Fatal("unprotected app secrets should survive a reflash cold boot")
	}
}

// Reflash re-exported to keep the test readable.
func Reflash() attack.ColdBootVariant { return attack.Reflash }

func TestSentryProtectsAppAcrossLockUnlock(t *testing.T) {
	t.Parallel()
	s := soc.Nexus4(1)
	k := kernel.New(s, "1234")
	sn, err := core.New(k, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := Launch(k, Contacts(), true)
	if err != nil {
		t.Fatal(err)
	}
	k.Lock()
	s.L2.CleanWays(s.L2.AllWaysMask())
	// Give the attacker a DMA port even on this locked platform: Sentry's
	// guarantee must not depend on the port being closed.
	s.Prof.OpenDMAPort = true
	scrape, err := attack.MountDMAScrape(s)
	if err != nil {
		t.Fatal(err)
	}
	if scrape.ContainsSecret([]byte(SecretMarker)) {
		t.Fatal("DMA scrape found app plaintext while locked")
	}
	if err := k.Unlock("1234"); err != nil {
		t.Fatal(err)
	}
	if err := app.Resume(); err != nil {
		t.Fatal(err)
	}
	if _, err := app.RunScript(); err != nil {
		t.Fatal(err)
	}
	if sn.Stats().DemandDecryptedBytes == 0 {
		t.Fatal("no demand decryption recorded")
	}
}

func TestScriptOverheadSmallWithSentry(t *testing.T) {
	t.Parallel()
	// Figure 3's claim: runtime overhead between 0.2 % and ~5 %.
	s := soc.Nexus4(1)
	k := kernel.New(s, "1234")
	if _, err := core.New(k, core.Config{}); err != nil {
		t.Fatal(err)
	}
	app, err := Launch(k, Twitter(), true)
	if err != nil {
		t.Fatal(err)
	}
	k.Lock()
	_ = k.Unlock("1234")
	_ = app.Resume()
	dur, err := app.RunScript()
	if err != nil {
		t.Fatal(err)
	}
	overhead := (dur - app.Prof.ScriptSeconds) / app.Prof.ScriptSeconds
	if overhead < 0 || overhead > 0.10 {
		t.Fatalf("script overhead = %.1f%%, want small positive", overhead*100)
	}
}

func TestBackgroundLoopBaseline(t *testing.T) {
	t.Parallel()
	s := soc.Tegra3(1)
	k := kernel.New(s, "1234")
	app, err := LaunchBackground(k, Vlock())
	if err != nil {
		t.Fatal(err)
	}
	kt, err := app.RunBackgroundLoop(Vlock(), sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if kt <= 0 || kt > 1 {
		t.Fatalf("vlock baseline kernel time = %.3f s", kt)
	}
}

func TestBackgroundLoopUnderSentry(t *testing.T) {
	t.Parallel()
	s := soc.Tegra3(1)
	k := kernel.New(s, "1234")
	sn, err := core.New(k, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	app, err := LaunchBackground(k, Alpine())
	if err != nil {
		t.Fatal(err)
	}
	k.Lock()
	if err := sn.BeginBackground(app.Proc, 256); err != nil {
		t.Fatal(err)
	}
	kt, err := app.RunBackgroundLoop(Alpine(), sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if kt <= 0 {
		t.Fatal("no kernel time measured")
	}
	if sn.Stats().BgPageIns == 0 {
		t.Fatal("background paging never engaged")
	}
}

func TestKernelCompileSlowsWithLockedWays(t *testing.T) {
	t.Parallel()
	run := func(lockWays int) float64 {
		s := soc.Tegra3(1)
		if lockWays > 0 {
			mask := s.L2.AllWaysMask() &^ ((1 << lockWays) - 1)
			_ = s.TZ.WithSecure(func() error { return s.TZ.SetCacheAllocMask(s.L2, mask) })
		}
		kc := KernelCompile{HotBytes: 896 << 10, Accesses: 200_000, ComputePerLine: 780}
		return kc.Run(s, soc.DRAMBase+0x100000, sim.NewRNG(1))
	}
	t0 := run(0)
	t1 := run(1)
	t7 := run(7)
	if t1 < t0 {
		t.Fatal("locking a way sped up the compile")
	}
	if (t1-t0)/t0 > 0.05 {
		t.Fatalf("one locked way costs %.1f%%, paper says <1%%-ish", (t1-t0)/t0*100)
	}
	if t7 <= t1 {
		t.Fatal("compile time should keep growing with locked ways")
	}
}

func TestAppWriteRead(t *testing.T) {
	t.Parallel()
	s := soc.Tegra3(1)
	k := kernel.New(s, "1234")
	app, err := Launch(k, MP3(), false)
	if err != nil {
		t.Fatal(err)
	}
	rec := []byte("user-record-12345")
	if err := app.Write(5*4096+100, rec); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(rec))
	if err := app.Read(5*4096+100, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(rec) {
		t.Fatal("app write/read mismatch")
	}
}

func TestLaunchFailsWhenMemoryExhausted(t *testing.T) {
	t.Parallel()
	s := soc.Tegra3(1)
	k := kernel.New(s, "1234")
	// Exhaust physical memory with giant launches; eventually Launch errors
	// instead of panicking.
	var err error
	for i := 0; i < 100; i++ {
		_, err = Launch(k, Profile{Name: "hog", ResidentMB: 256, ScriptSeconds: 1}, false)
		if err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("no error after exhausting DRAM")
	}
}

func TestBgProfileColdRatioBounds(t *testing.T) {
	t.Parallel()
	for _, p := range BgProfiles() {
		if p.ColdRatio <= 0 || p.ColdRatio >= 1 {
			t.Fatalf("%s: cold ratio %v out of (0,1)", p.Name, p.ColdRatio)
		}
		if p.HotPages <= 0 || p.Iterations <= 0 || p.TouchesPerIter <= 0 {
			t.Fatalf("%s: degenerate profile", p.Name)
		}
	}
}
